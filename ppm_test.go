package ppm_test

import (
	"fmt"
	"log"
	"strings"
	"testing"

	"ppm"
)

// ExampleRun shows the smallest complete PPM program: a shared histogram
// filled by a thousand virtual processors across four nodes.
func ExampleRun() {
	rep, err := ppm.Run(ppm.Options{Nodes: 4, Machine: ppm.GenericMachine()}, func(rt *ppm.Runtime) {
		hist := ppm.AllocGlobal[int64](rt, "hist", 10)
		rt.Do(1000, func(vp *ppm.VP) {
			vp.GlobalPhase(func() {
				hist.Add(vp, vp.GlobalRank()%10, 1)
			})
		})
		if rt.NodeID() == 0 {
			fmt.Println("bucket 0:", hist.At(rt, 0))
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", rep.Cluster.Nodes)
	// Output:
	// bucket 0: 400
	// nodes: 4
}

// ExampleVP_GlobalPhase demonstrates the model's core guarantee: within a
// phase, reads observe the values from the beginning of the phase; writes
// appear only afterwards.
func ExampleVP_GlobalPhase() {
	_, err := ppm.Run(ppm.Options{Nodes: 1, Machine: ppm.GenericMachine()}, func(rt *ppm.Runtime) {
		a := ppm.AllocGlobal[int64](rt, "a", 1)
		rt.Do(1, func(vp *ppm.VP) {
			vp.GlobalPhase(func() {
				a.Write(vp, 0, 42)
				fmt.Println("inside the phase:", a.Read(vp, 0))
			})
			vp.GlobalPhase(func() {
				fmt.Println("next phase:", a.Read(vp, 0))
			})
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// inside the phase: 0
	// next phase: 42
}

// ExamplePrefixSumGlobal shows the parallel-prefix utility.
func ExamplePrefixSumGlobal() {
	_, err := ppm.Run(ppm.Options{Nodes: 3, Machine: ppm.GenericMachine()}, func(rt *ppm.Runtime) {
		g := ppm.AllocGlobal[int64](rt, "g", 6)
		ppm.CopyIn(rt, g, []int64{1, 2, 3, 4, 5, 6})
		ppm.PrefixSumGlobal(rt, g)
		if rt.NodeID() == 0 {
			fmt.Println(ppm.CopyOut(rt, g))
		} else {
			ppm.CopyOut(rt, g) // collective: all nodes participate
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// [0 1 3 6 10 15]
}

func TestPublicAPISurface(t *testing.T) {
	// The facade must expose the model end to end: allocation, phases,
	// reductions, 2-D views, system variables, machine presets.
	rep, err := ppm.Run(ppm.Options{Nodes: 2, Machine: ppm.Franklin()}, func(rt *ppm.Runtime) {
		if rt.NodeCount() != 2 || rt.CoresPerNode() != 4 {
			t.Errorf("system variables: %d nodes, %d cores", rt.NodeCount(), rt.CoresPerNode())
		}
		g := ppm.AllocGlobal[float64](rt, "g", 16)
		nd := ppm.AllocNode[float64](rt, "n", 4)
		m := ppm.AllocGlobal2D[int64](rt, "m", 4, 4)
		ppm.FillGlobal(rt, g, 1)
		rt.Do(4, func(vp *ppm.VP) {
			vp.GlobalPhase(func() {
				lo, hi := ppm.ChunkRange(16, vp.K()*vp.Nodes(), vp.GlobalRank())
				for i := lo; i < hi; i++ {
					g.Write(vp, i, g.Read(vp, i)+float64(i))
					m.Write(vp, i/4, i%4, int64(i))
				}
			})
			vp.NodePhase(func() {
				nd.Write(vp, vp.NodeRank(), float64(vp.NodeRank()))
			})
		})
		sum := ppm.ReduceGlobal(rt, g, func(a, b float64) float64 { return a + b })
		if sum != 16+120 {
			t.Errorf("ReduceGlobal = %v, want 136", sum)
		}
		if got := rt.AllReduce(1, ppm.OpSum); got != 2 {
			t.Errorf("AllReduce = %v", got)
		}
		if rt.NodeID() == 0 && m.At(rt, 3, 3) != 15 {
			t.Errorf("Global2D[3,3] = %d", m.At(rt, 3, 3))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan() <= 0 {
		t.Error("no simulated time")
	}
	if !strings.Contains(rep.String(), "nodes=2") {
		t.Errorf("report: %s", rep)
	}
}

func TestMachinePresets(t *testing.T) {
	for _, m := range []*ppm.Machine{ppm.Franklin(), ppm.GenericMachine(), ppm.Manycore(32)} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if ppm.Manycore(32).CoresPerNode != 32 {
		t.Error("Manycore cores not applied")
	}
}

func TestErrorsSurfaceThroughFacade(t *testing.T) {
	_, err := ppm.Run(ppm.Options{Nodes: 2, Machine: ppm.GenericMachine()}, func(rt *ppm.Runtime) {
		rt.Do(1, func(vp *ppm.VP) {
			if vp.Node() == 1 {
				panic("surface me")
			}
			vp.NodePhase(func() {})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "surface me") {
		t.Errorf("expected surfaced panic, got %v", err)
	}
}

func TestTimeTypesExposed(t *testing.T) {
	var tm ppm.Time = 1.5
	var d ppm.Duration = 0.5
	if tm.Add(d) != 2 {
		t.Error("time arithmetic through facade broken")
	}
}
