GO ?= go

.PHONY: check build vet ppmvet langcheck test race bench-hotpath figures

## check: the tier-1 gate — build, static analysis (go vet + the
## phase-semantics analyzers over both front ends) and race-test.
check: build vet ppmvet langcheck race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## ppmvet: phase-semantics static analysis of Go PPM programs.
ppmvet:
	$(GO) run ./cmd/ppmvet ./...

## langcheck: phase-semantics analysis of the example .ppm programs.
langcheck:
	$(GO) run ./cmd/ppmc check examples/language/*.ppm

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-hotpath: regenerate BENCH_hotpath.json (host costs of the
## shared-access hot path; see bench_test.go).
bench-hotpath:
	BENCH_HOTPATH=1 $(GO) test -run TestHotpathBenchArtifact -v .

## figures: print the paper's figure sweeps.
figures:
	$(GO) run ./cmd/ppm-figures
