GO ?= go

.PHONY: check build vet test race bench-hotpath figures

## check: the tier-1 gate — build, vet and race-test everything.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench-hotpath: regenerate BENCH_hotpath.json (host costs of the
## shared-access hot path; see bench_test.go).
bench-hotpath:
	BENCH_HOTPATH=1 $(GO) test -run TestHotpathBenchArtifact -v .

## figures: print the paper's figure sweeps.
figures:
	$(GO) run ./cmd/ppm-figures
