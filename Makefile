GO ?= go

.PHONY: check build vet ppmvet ppmvet-examples vet-all vet-report langcheck test race race-parallel bench-hotpath bench-parallel bench-wire bench-steady plancache-equiv dist-smoke server-smoke chaos rescale-smoke figures

## check: the tier-1 gate — build, static analysis (go vet + the
## phase-semantics analyzers over both front ends, gated by the
## findings baseline) and race-test.
check: build vet vet-all ppmvet-examples langcheck race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## ppmvet: phase-semantics static analysis of Go PPM programs.
ppmvet:
	$(GO) run ./cmd/ppmvet ./...

## ppmvet-examples: the same analyzers over the runnable examples, which
## are what new users copy from — kept green explicitly.
ppmvet-examples:
	$(GO) run ./cmd/ppmvet ./examples/...

## vet-all: every analyzer over the whole tree (apps, examples,
## commands, runtime), gated by the checked-in findings baseline:
## findings recorded in VET_BASELINE.json are tolerated, any NEW
## finding fails the build. Accept a finding by regenerating the
## baseline with `make vet-report && cp ppmvet-report.json VET_BASELINE.json`
## (or better, fix or //ppmvet:ignore it with a reason).
vet-all:
	$(GO) run ./cmd/ppmvet -baseline VET_BASELINE.json ./...

## vet-report: machine-readable findings report for CI artifacts and
## baseline regeneration. Exit status is ignored: the report is the
## product, vet-all is the gate.
vet-report:
	$(GO) run ./cmd/ppmvet -json ./... > ppmvet-report.json; true

## langcheck: phase-semantics analysis of the example .ppm programs.
langcheck:
	$(GO) run ./cmd/ppmc check examples/language/*.ppm

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## race-parallel: the whole suite under the race detector with the
## parallel in-run scheduler forced on for every cluster.Run. Passing
## means the parallel scheduler is data-race-free AND bit-identical to
## the sequential one on every golden test in the repo.
race-parallel:
	PPM_PARALLEL=1 $(GO) test -race ./...

## bench-hotpath: regenerate BENCH_hotpath.json (host costs of the
## shared-access hot path; see bench_test.go).
bench-hotpath:
	BENCH_HOTPATH=1 $(GO) test -run TestHotpathBenchArtifact -v .

## bench-parallel: regenerate BENCH_parallel.json (host wall-clock of
## the full Figure 1 sweep, sequential vs the parallel harness; see
## parallel_bench_test.go).
bench-parallel:
	BENCH_PARALLEL=1 $(GO) test -run TestParallelBenchArtifact -v .

## bench-wire: regenerate BENCH_wire.json (bytes on wire, frames,
## flushes, and wall-clock of the distributed wire path: fixed bundling
## vs adaptive vs the delta commit codec; see internal/dist/wire_bench_test.go).
bench-wire:
	BENCH_WIRE=1 $(GO) test -run TestWireBenchArtifact -v ./internal/dist/

## bench-steady: regenerate BENCH_steady.json (cold vs warm steady-state
## phase iteration costs; see steady_bench_test.go). The artifact test
## enforces the contract: warm CG and Jacobi iterations allocate nothing
## and run at least 1.5x faster than cold (plan cache off).
bench-steady:
	BENCH_STEADY=1 $(GO) test -run TestSteadyBenchArtifact -v .

## plancache-equiv: the figure-app equivalence matrix with the plan
## cache forced off and forced on — both must be green, proving the
## cache changes no observable bit anywhere in the suite.
plancache-equiv:
	PPM_PLAN_CACHE=0 $(GO) test -count=1 -run 'Equivalence|MatchesSimulator|TestPlanCache|TestFleetPlanCache' . ./internal/core/ ./internal/dist/
	PPM_PLAN_CACHE=1 $(GO) test -count=1 -run 'Equivalence|MatchesSimulator|TestPlanCache|TestFleetPlanCache' . ./internal/core/ ./internal/dist/

## dist-smoke: real multi-process runs — 2 ppm-node processes over
## loopback TCP solving a small cg point, launched by ppm-run; once
## with the default wire path, once with the delta commit codec, and
## once with adaptive bundling plus a flush stagger.
dist-smoke:
	$(GO) build -o bin/ ./cmd/ppm-run ./cmd/ppm-node
	./bin/ppm-run -distributed -app cg -nodes 2 -cores 2 -cg-grid 8x8x8 -cg-iters 6
	./bin/ppm-run -distributed -app cg -nodes 2 -cores 2 -cg-grid 8x8x8 -cg-iters 6 -wire-codec delta
	./bin/ppm-run -distributed -app jacobi -nodes 2 -cores 2 -jacobi-grid 10x6x4 -jacobi-sweeps 6 -bundle-adaptive -flush-stagger 100us

## server-smoke: the full-binary serving path — a real ppm-server
## process fronting warm serve-mode ppm-node fleets, driven over HTTP:
## cg + jacobi + scatter submitted concurrently, a duplicate served
## from the content-addressed cache, every Series diffed bit-for-bit
## against direct `ppm-run -spec -json`, and a SIGTERM drain. Writes
## the /metrics snapshot to server-metrics.json (CI artifact).
server-smoke:
	PPM_SERVER_SMOKE=1 PPM_SERVER_METRICS_OUT=$(CURDIR)/server-metrics.json \
		$(GO) test -count=1 -run TestServerSmoke -v ./internal/server/

## chaos: the seeded fault matrix under the race detector — injected
## drop/delay/dup/trunc/partition/kill faults against real ppm-node
## fleets, plus the kill-recovery and fast-partition-abort scenarios.
## Deterministic (seeded rng streams), so a failure replays exactly.
chaos:
	PPM_CHAOS=1 $(GO) test -race -run 'TestChaosMatrix|TestSubprocessKillRecovery|TestSubprocessPartitionAborts|TestHeartbeat|TestFetchTimeout|TestCommitWaitTimeout' -v ./internal/dist/

## rescale-smoke: elastic-rescale recovery under the race detector — a
## 3-process fleet loses host 2 permanently (killhost re-arms on every
## relaunch), the supervisor exhausts the per-host restart budget,
## rescales to 2 host processes (rank 2 restored from its checkpoint
## onto host 1), and cg/jacobi/scatter finish bit-identical to an
## uninterrupted 3-rank run. Also pins the MinNodes floor error and the
## in-process rescaled-restore identity.
rescale-smoke:
	$(GO) test -race -count=1 -run 'TestSubprocessRescale|TestRescaled' -v ./internal/dist/

## figures: print the paper's figure sweeps.
figures:
	$(GO) run ./cmd/ppm-figures
