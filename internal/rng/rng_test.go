package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// The stream must be stable forever: golden values pin it down.
func TestGoldenStream(t *testing.T) {
	r := New(42)
	want := []uint64{
		13679457532755275413, 2949826092126892291, 5139283748462763858,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("Uint64 #%d = %d, want %d", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(9)
	s1 := r.Split(1)
	s2 := r.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Error("splits with different salts should differ")
	}
	// Split must not advance the parent.
	r2 := New(9)
	if r.Uint64() != r2.Uint64() {
		t.Error("Split advanced the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64() // must not panic
}
