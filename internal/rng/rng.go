// Package rng provides a small, fast, deterministic random number
// generator (SplitMix64) with a stable stream across platforms and Go
// releases. The simulator and the workload generators must produce
// identical inputs on every run, so they cannot depend on math/rand's
// unspecified stream evolution.
package rng

import "math"

// RNG is a SplitMix64 generator. The zero value is a valid generator
// seeded with 0; use New for an explicit seed.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is independent of r's,
// derived deterministically from r's current state and the given salt.
// It does not advance r.
func (r *RNG) Split(salt uint64) *RNG {
	// Mix the salt through one SplitMix64 round against the current state.
	z := r.state + 0x9e3779b97f4a7c15*(salt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style bounded generation via 128-bit multiply emulation is
	// overkill here; modulo bias is negligible for n << 2^63 and keeps the
	// stream trivially portable.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform (the polar-free form keeps the stream consumption fixed at
// exactly two draws per call).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n) via Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, via Fisher–Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
