package partition

import (
	"testing"
	"testing/quick"
)

func TestRangeCoversAll(t *testing.T) {
	b := NewBlock(10, 3)
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for p, w := range want {
		lo, hi := b.Range(p)
		if lo != w[0] || hi != w[1] {
			t.Errorf("Range(%d) = [%d,%d), want %v", p, lo, hi, w)
		}
	}
}

func TestOwnerMatchesRange(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw%500) + 1
		parts := int(pRaw%37) + 1
		b := NewBlock(n, parts)
		// Every index is owned by exactly the part whose range contains it.
		for i := 0; i < n; i++ {
			p := b.Owner(i)
			lo, hi := b.Range(p)
			if i < lo || i >= hi {
				return false
			}
		}
		// Ranges tile [0,n).
		total := 0
		prevHi := 0
		for p := 0; p < parts; p++ {
			lo, hi := b.Range(p)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
			total += hi - lo
			if b.Size(p) != hi-lo {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMorePartsThanItems(t *testing.T) {
	b := NewBlock(2, 5)
	sizes := b.Counts()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 2 {
		t.Errorf("counts %v do not total 2", sizes)
	}
	if b.Owner(0) != 0 || b.Owner(1) != 1 {
		t.Errorf("owners: %d, %d", b.Owner(0), b.Owner(1))
	}
}

func TestEmpty(t *testing.T) {
	b := NewBlock(0, 3)
	for p := 0; p < 3; p++ {
		if b.Size(p) != 0 {
			t.Errorf("part %d not empty", p)
		}
	}
}

func TestCountsDispls(t *testing.T) {
	b := NewBlock(11, 4)
	counts, displs := b.Counts(), b.Displs()
	off := 0
	for p := range counts {
		if displs[p] != off {
			t.Errorf("displs[%d] = %d, want %d", p, displs[p], off)
		}
		off += counts[p]
	}
	if off != 11 {
		t.Errorf("total %d", off)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"neg n":      func() { NewBlock(-1, 2) },
		"zero parts": func() { NewBlock(4, 0) },
		"bad part":   func() { NewBlock(4, 2).Range(2) },
		"bad index":  func() { NewBlock(4, 2).Owner(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
