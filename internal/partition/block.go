// Package partition provides index-space distributions used to place
// shared arrays across nodes. PPM's runtime handles data distribution
// automatically; block distribution is its default placement policy.
package partition

import "fmt"

// Block is a block (contiguous-range) distribution of n indices over
// parts owners. The first n%parts owners hold one extra element.
type Block struct {
	N     int
	Parts int
}

// NewBlock returns a block distribution of n items over parts owners.
func NewBlock(n, parts int) Block {
	if n < 0 || parts <= 0 {
		panic(fmt.Sprintf("partition: invalid Block(%d, %d)", n, parts))
	}
	return Block{N: n, Parts: parts}
}

// Range returns the half-open index range owned by part p.
func (b Block) Range(p int) (lo, hi int) {
	if p < 0 || p >= b.Parts {
		panic(fmt.Sprintf("partition: part %d out of %d", p, b.Parts))
	}
	base := b.N / b.Parts
	rem := b.N % b.Parts
	lo = p*base + minInt(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

// Size returns the number of indices owned by part p.
func (b Block) Size(p int) int {
	lo, hi := b.Range(p)
	return hi - lo
}

// Owner returns the part that owns index i.
func (b Block) Owner(i int) int {
	if i < 0 || i >= b.N {
		panic(fmt.Sprintf("partition: index %d out of %d", i, b.N))
	}
	base := b.N / b.Parts
	rem := b.N % b.Parts
	cut := rem * (base + 1)
	if i < cut {
		return i / (base + 1)
	}
	return rem + (i-cut)/base
}

// Counts returns the per-part sizes (useful for gather/scatter plans).
func (b Block) Counts() []int {
	out := make([]int, b.Parts)
	for p := range out {
		out[p] = b.Size(p)
	}
	return out
}

// Displs returns the per-part starting offsets.
func (b Block) Displs() []int {
	out := make([]int, b.Parts)
	for p := range out {
		out[p], _ = b.Range(p)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
