package cluster

import "ppm/internal/vtime"

// This file implements the conservative parallel scheduler selected by
// Config.Parallel (or PPM_PARALLEL=1).
//
// # Protocol
//
// The sequential scheduler interleaves processes so that exactly one
// runs at a time: a process runs from the point it is resumed until it
// blocks, performing all of its operations on shared simulator state
// (sends, receives, barrier entries, NIC acquisitions) inside that
// span. The parallel scheduler keeps that span — the "turn" — as the
// unit of serialization but lets every runnable process execute its
// pure compute sections concurrently:
//
//   - All processes are resumed at start and whenever they become
//     runnable (message wake, barrier release). They compute ahead
//     freely: Charge/AdvanceTo and all application arithmetic touch
//     only process-local state.
//   - The first operation that touches shared state parks the process
//     (parkReq -> turnCh) until the scheduler grants it the turn.
//   - The scheduler grants turns in exactly the sequential order: the
//     runnable process with the smallest (pickClock, rank), where
//     pickClock is the virtual clock at which the process last became
//     runnable. This equals the clock the sequential scheduler would
//     compare, because a sequential process never advances its clock
//     while runnable-but-not-running.
//   - A granted process keeps the turn across consecutive operations
//     (exactly like an uninterrupted sequential span) and releases it
//     when it blocks, yields, or exits.
//
// # Safe horizon / determinism argument
//
// This is conservative parallel discrete-event simulation with the
// strongest possible lookahead: because the total mutation order is
// fixed in advance (it is the sequential turn order), no event is ever
// executed speculatively and no rollback is needed. The "safe horizon"
// for a process is its own next shared-state operation: everything
// before it is process-local and may run at any host time; everything
// from it on waits for the turn. Compute-ahead cannot observe a stale
// value because, by construction of the simulator's layers, compute
// sections read no shared mutable state: cluster-level shared state is
// only reachable through operations (which park), and PPM phase
// semantics make shared arrays read-only between the barrier that opens
// a phase window and the barrier that closes it. Consequently the
// sequence of operations, their arguments, and their interleaving are
// identical to the sequential schedule, and reports, observer streams,
// and committed state are bit-identical. Failure paths (panics mid-run,
// teardown) do not carry this guarantee: event streams of failed runs
// may differ between modes.
//
// All cross-goroutine visibility is induced by channel operations: a
// compute-ahead section is bounded by a resume/turn-grant receive at
// the start and a parkReq/yield send at the end, so every shared-state
// access is ordered by happens-before edges through the scheduler.

// scheduleParallel is the parallel counterpart of schedule, run on the
// caller's goroutine.
func (c *Cluster) scheduleParallel() error {
	// Launch every process; each computes ahead until its first
	// operation parks it. Every process starts runnable at clock 0, so
	// the grant heap is seeded with all of them.
	for _, p := range c.procs {
		c.noteRunnable(p)
		p.resume <- true
	}
	for {
		if c.failure != nil {
			c.teardownParallel()
			return c.failure
		}
		cur := c.pickTurn()
		if cur == nil {
			if c.allDone() {
				return c.failure
			}
			err := c.deadlockError()
			c.failure = err
			c.teardownParallel()
			return err
		}
		// Wait for cur to reach its next operation (it may still be
		// computing ahead); meanwhile record other processes parking.
		for !cur.parked {
			p := <-c.parkReq
			p.parked = true
		}
		cur.parked = false
		cur.state = stateRunning
		if c.tracing {
			c.trace("resume rank=%d clock=%v op=%s", cur.rank, cur.pickClock, cur.pendingOp)
		}
		cur.turnCh <- true
		// The turn ends when cur blocks, yields, or exits; park
		// requests from other processes keep arriving meanwhile.
		for {
			stop := false
			select {
			case p := <-c.parkReq:
				p.parked = true
			case q := <-c.yield:
				if c.tracing {
					c.trace("yield rank=%d state=%v", q.rank, q.state)
				}
				stop = true
			}
			if stop {
				break
			}
		}
	}
}

// turnEnt is one pending grant key in the turn heap: the (pickClock,
// rank) a process became runnable with. Entries are never updated in
// place; a process that becomes runnable again simply pushes a new
// entry, and entries whose process is no longer runnable at that exact
// key are dropped lazily at pop time.
type turnEnt struct {
	clock vtime.Time
	rank  int
}

func (e turnEnt) less(o turnEnt) bool {
	return e.clock < o.clock || (e.clock == o.clock && e.rank < o.rank)
}

// noteRunnable registers p's runnable transition in the turn heap.
// Every site that sets state = stateRunnable under the parallel
// scheduler calls it (start seed, message wake, barrier release,
// Yield); sequential runs keep the heap empty. Duplicate entries for
// the same (clock, rank) are harmless: the first grants, the rest are
// dropped as stale because the process is no longer runnable — or, if
// it became runnable again at the same key, granting on the duplicate
// is exactly what the scan would have picked anyway.
func (c *Cluster) noteRunnable(p *Proc) {
	if !c.parallel {
		return
	}
	h := append(c.turnHeap, turnEnt{clock: p.pickClock, rank: p.rank})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	c.turnHeap = h
}

// popTurn removes the minimum heap entry.
func (c *Cluster) popTurn() {
	h := c.turnHeap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].less(h[small]) {
			small = l
		}
		if r < n && h[r].less(h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	c.turnHeap = h
}

// pickTurn returns the runnable process with the smallest
// (pickClock, rank), or nil if none are runnable. It may only be
// called between turns, when every pickClock it reads was published by
// a channel operation.
//
// The heap makes a grant O(log P) instead of the old O(P) scan (kept
// below as pickTurnScan, the oracle for the equivalence unit test). An
// entry is live iff its process is still runnable at exactly the
// recorded (clock, rank) key; anything else is a leftover from a
// transition that was since consumed — granted, re-blocked, completed
// a barrier by its own arrival, or exited — and is discarded. Because
// every runnable process has a live entry (noteRunnable runs at every
// runnable transition, and pickClock is frozen while runnable), an
// empty heap means no process is runnable.
func (c *Cluster) pickTurn() *Proc {
	for len(c.turnHeap) > 0 {
		top := c.turnHeap[0]
		c.popTurn()
		p := c.procs[top.rank]
		if p.state == stateRunnable && p.pickClock == top.clock {
			return p
		}
	}
	return nil
}

// pickTurnScan is the original O(P) grant scan, retained as the test
// oracle for pickTurn.
func (c *Cluster) pickTurnScan() *Proc {
	var best *Proc
	for _, p := range c.procs {
		if p.state != stateRunnable {
			continue
		}
		if best == nil || p.pickClock < best.pickClock ||
			(p.pickClock == best.pickClock && p.rank < best.rank) {
			best = p
		}
	}
	return best
}

// teardownParallel unwinds every live process goroutine after a
// failure: parked processes get a false turn grant, blocked processes a
// false resume, and processes still computing ahead abort at their next
// operation. It returns once every process has sent its final yield.
func (c *Cluster) teardownParallel() {
	remaining := 0
	for _, p := range c.procs {
		switch {
		case p.state == stateDone:
		case p.parked:
			p.parked = false
			p.turnCh <- false
			remaining++
		case p.state == stateBlockedRecv || p.state == stateBlockedBarrier:
			p.resume <- false
			remaining++
		default:
			// Still computing ahead; it will park at its next
			// operation (every process exits through one) and be
			// aborted then.
			remaining++
		}
	}
	for remaining > 0 {
		select {
		case p := <-c.parkReq:
			p.turnCh <- false
		case q := <-c.yield:
			if q.state == stateDone {
				remaining--
			}
		}
	}
}
