package cluster

import "ppm/internal/vtime"

// EventKind classifies observer events.
type EventKind int

// Observer event kinds.
const (
	EvSend    EventKind = iota // a message left a rank
	EvRecv                     // a message was consumed by a rank
	EvBarrier                  // a barrier released (reported once per participant)
	EvExit                     // a rank's program returned
)

func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvBarrier:
		return "barrier"
	case EvExit:
		return "exit"
	default:
		return "invalid"
	}
}

// Event is one structured observation of the run. Events are emitted in
// a deterministic order (the cooperative schedule's order).
type Event struct {
	Kind  EventKind
	Rank  int        // the rank the event happened on
	Peer  int        // send: destination; recv: source; else -1
	Tag   int        // message tag, if any
	Bytes int        // modeled payload size, if any
	Intra bool       // message stayed on-node
	Time  vtime.Time // virtual time of the event at Rank
}

// observe emits an event if an observer is configured.
func (c *Cluster) observe(ev Event) {
	if c.cfg.Observer != nil {
		c.cfg.Observer(ev)
	}
}
