package cluster_test

import (
	"fmt"
	"log"

	"ppm/internal/cluster"
	"ppm/internal/machine"
)

// Example shows the simulator's essentials: SPMD processes exchanging a
// message in virtual time. The receiver's clock reflects the modeled
// send overhead, wire time and latency — not host time.
func Example() {
	rep, err := cluster.Run(cluster.Config{Procs: 2, ProcsPerNode: 1, Machine: machine.Generic()},
		func(p *cluster.Proc) {
			switch p.Rank() {
			case 0:
				p.ChargeFlops(1_000_000) // 1 ms of modeled compute
				p.Send(1, 0, "ready", 1000)
			case 1:
				msg := p.Recv(0, 0)
				fmt.Printf("rank 1 got %q from %d\n", msg.Payload, msg.Src)
			}
			p.Barrier()
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan > 1ms: %v\n", rep.Makespan.Seconds() > 1e-3)
	// Output:
	// rank 1 got "ready" from 0
	// makespan > 1ms: true
}
