package cluster

import (
	"reflect"
	"strings"
	"testing"

	"ppm/internal/machine"
	"ppm/internal/vtime"
)

// gnarly is a deliberately awkward message-passing program: uneven
// compute, wildcard receives, a TryRecv poll loop, yields, explicit NIC
// holds, and repeated barriers. It exercises every scheduler decision
// point the parallel turn-grant protocol must reproduce exactly.
func gnarly(p *Proc) {
	procs := p.Procs()
	for round := 0; round < 4; round++ {
		p.Charge(vtime.Duration(float64((p.Rank()*7+round*3)%5) * 1e-5))
		next := (p.Rank() + 1) % procs
		prev := (p.Rank() + procs - 1) % procs
		p.Send(next, round, p.Rank()*100+round, 64+32*round)
		if round%2 == 0 {
			p.Recv(AnySource, round) // wildcard: global send order decides
		} else {
			for p.TryRecv(prev, round) == nil {
				p.Yield()
			}
		}
		if p.Rank() == round%procs {
			p.NICAcquire(p.Clock(), 1e-5)
		}
		p.Barrier()
	}
	// Ragged tail: low ranks exchange one extra pair after the others
	// have exited, so barrier bookkeeping sees finished procs.
	if p.Rank() < 2 && procs >= 2 {
		peer := 1 - p.Rank()
		p.Send(peer, 99, nil, 8)
		p.Recv(peer, 99)
	}
}

// runBoth runs prog under the sequential and the parallel scheduler with
// identical shapes and returns both reports plus both observer streams.
func runBoth(t *testing.T, procs, perNode int, prog Program) (seq, par *Report, seqEv, parEv []Event) {
	t.Helper()
	run := func(parallel bool) (*Report, []Event) {
		var evs []Event
		cfg := Config{
			Procs: procs, ProcsPerNode: perNode, Machine: machine.Generic(),
			Parallel: parallel,
			Observer: func(ev Event) { evs = append(evs, ev) },
		}
		rep, err := Run(cfg, prog)
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		return rep, evs
	}
	seq, seqEv = run(false)
	par, parEv = run(true)
	return seq, par, seqEv, parEv
}

func TestParallelSchedulerEquivalence(t *testing.T) {
	// Two cluster shapes, as the acceptance criteria require: the whole
	// Report (clocks, stats, NIC accounting) and the observer event
	// stream must be bit-identical across schedulers.
	for _, shape := range []struct{ procs, perNode int }{{6, 2}, {12, 4}} {
		seq, par, seqEv, parEv := runBoth(t, shape.procs, shape.perNode, gnarly)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%d/%d: reports differ:\nseq: %+v\npar: %+v", shape.procs, shape.perNode, seq, par)
		}
		if !reflect.DeepEqual(seqEv, parEv) {
			t.Errorf("%d/%d: observer streams differ (%d vs %d events)",
				shape.procs, shape.perNode, len(seqEv), len(parEv))
			for i := range seqEv {
				if i < len(parEv) && seqEv[i] != parEv[i] {
					t.Errorf("  first divergence at event %d: seq=%+v par=%+v", i, seqEv[i], parEv[i])
					break
				}
			}
		}
	}
}

func TestParallelSchedulerRepeatable(t *testing.T) {
	// The parallel scheduler must also be deterministic against itself:
	// repeated runs of the same program give byte-identical reports.
	cfg := Config{Procs: 8, ProcsPerNode: 2, Machine: machine.Generic(), Parallel: true}
	var first *Report
	for i := 0; i < 5; i++ {
		rep, err := Run(cfg, gnarly)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = rep
		} else if !reflect.DeepEqual(first, rep) {
			t.Fatalf("run %d differs from run 0:\n%+v\n%+v", i, rep, first)
		}
	}
}

func TestParallelDeadlockDetected(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		_, err := Run(Config{Procs: 2, ProcsPerNode: 1, Machine: machine.Generic(), Parallel: parallel},
			func(p *Proc) {
				p.Charge(vtime.Duration(float64(p.Rank()+1) * 1e-6))
				p.Recv(1-p.Rank(), 7) // both wait, nobody sends
			})
		if err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("parallel=%v: expected deadlock error, got %v", parallel, err)
		}
		// The diagnostic must name each stuck proc with its virtual
		// clock and pending operation.
		for _, want := range []string{"rank 0:", "rank 1:", "clock=", "pending recv(src=", "tag=7"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("parallel=%v: deadlock error missing %q:\n%v", parallel, want, err)
			}
		}
	}
}

func TestParallelBarrierDeadlockDetail(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		_, err := Run(Config{Procs: 3, ProcsPerNode: 1, Machine: machine.Generic(), Parallel: parallel},
			func(p *Proc) {
				if p.Rank() == 2 {
					p.Recv(0, 0)
				} else {
					p.Barrier()
				}
			})
		if err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("parallel=%v: expected deadlock error, got %v", parallel, err)
		}
		for _, want := range []string{"pending barrier #1 (2 of 3 live entered)", "pending recv(src=0"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("parallel=%v: deadlock error missing %q:\n%v", parallel, want, err)
			}
		}
	}
}

func TestParallelPanicTeardown(t *testing.T) {
	// A panicking rank must abort the run cleanly under the parallel
	// scheduler too: same error, no hang, no goroutine leak.
	_, err := Run(Config{Procs: 4, ProcsPerNode: 2, Machine: machine.Generic(), Parallel: true},
		func(p *Proc) {
			if p.Rank() == 2 {
				panic("boom")
			}
			p.Barrier()
		})
	if err == nil || !strings.Contains(err.Error(), "rank 2 panicked: boom") {
		t.Errorf("expected rank-2 panic error, got %v", err)
	}
}

func TestParallelSerialHelper(t *testing.T) {
	// Proc.Serial must serialize host-side mutations in the sequential
	// cooperative schedule's order under both schedulers, regardless of
	// which goroutine computes ahead fastest. Charging does not yield
	// the turn, so the first Serial per rank lands in initial schedule
	// order; the barrier then re-sorts ranks by release, so the second
	// Serial lands in rank order again — the point is that the parallel
	// scheduler reproduces the exact same interleaving.
	runOrder := func(parallel bool) []int {
		var order []int
		_, err := Run(Config{Procs: 4, ProcsPerNode: 2, Machine: machine.Generic(), Parallel: parallel},
			func(p *Proc) {
				p.Charge(vtime.Duration(float64(3-p.Rank()) * 1e-5))
				p.Serial(func() { order = append(order, p.Rank()) })
				p.Barrier()
				p.Charge(vtime.Duration(float64(p.Rank()) * 1e-6))
				p.Serial(func() { order = append(order, 10+p.Rank()) })
			})
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	seq := runOrder(false)
	par := runOrder(true)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Serial order differs: seq=%v par=%v", seq, par)
	}
	if len(seq) != 8 {
		t.Errorf("expected 8 Serial entries, got %v", seq)
	}
}
