package cluster

import (
	"fmt"
	"strings"

	"ppm/internal/vtime"
)

// Report summarizes a completed (or failed) run.
type Report struct {
	// Procs and Nodes echo the configuration.
	Procs int
	Nodes int
	// Makespan is the latest final clock over all processes: the modeled
	// wall-clock time of the parallel run.
	Makespan vtime.Time
	// FinalClocks holds each process's clock at exit.
	FinalClocks []vtime.Time
	// PerProc holds each process's statistics.
	PerProc []ProcStats
	// Totals aggregates the per-process statistics.
	Totals ProcStats
	// NICs holds each node NIC's final accounting state. Acquisition
	// order affects these values, so they are part of the surface the
	// sequential-vs-parallel equivalence tests compare bit for bit.
	NICs []vtime.ResourceState
}

func (c *Cluster) report() *Report {
	r := &Report{
		Procs:       len(c.procs),
		Nodes:       len(c.nics),
		FinalClocks: make([]vtime.Time, len(c.procs)),
		PerProc:     make([]ProcStats, len(c.procs)),
		NICs:        make([]vtime.ResourceState, len(c.nics)),
	}
	for i, n := range c.nics {
		r.NICs[i] = n.State()
	}
	for i, p := range c.procs {
		r.FinalClocks[i] = p.clock
		r.PerProc[i] = p.stats
		r.Makespan = r.Makespan.Max(p.clock)
		r.Totals.MsgsSent += p.stats.MsgsSent
		r.Totals.MsgsRecvd += p.stats.MsgsRecvd
		r.Totals.BytesSent += p.stats.BytesSent
		r.Totals.BytesRecvd += p.stats.BytesRecvd
		r.Totals.IntraMsgsSent += p.stats.IntraMsgsSent
		r.Totals.Barriers += p.stats.Barriers
		r.Totals.ComputeTime += p.stats.ComputeTime
	}
	return r
}

// String renders a one-paragraph human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "procs=%d nodes=%d makespan=%v", r.Procs, r.Nodes, r.Makespan)
	fmt.Fprintf(&b, " msgs=%d (intra %d) bytes=%d barriers=%d compute=%v",
		r.Totals.MsgsSent, r.Totals.IntraMsgsSent, r.Totals.BytesSent,
		r.Totals.Barriers, r.Totals.ComputeTime)
	return b.String()
}
