package cluster

import (
	"testing"

	"ppm/internal/vtime"
)

// TestPickTurnMatchesScanOnRecordedSchedule drives the turn heap with a
// recorded (seeded, deterministic) schedule of runnable transitions —
// wakes, grants, yields, and the barrier-self-arrival pattern that
// leaves stale heap entries behind — and asserts that every grant
// pickTurn makes is exactly the process the original O(P) scan
// (pickTurnScan, kept as the oracle) would have picked.
func TestPickTurnMatchesScanOnRecordedSchedule(t *testing.T) {
	const procs = 9
	c := &Cluster{parallel: true}
	c.procs = make([]*Proc, procs)
	for r := range c.procs {
		c.procs[r] = &Proc{cluster: c, rank: r, state: stateBlockedRecv}
	}

	// Deterministic LCG: the same schedule replays on every run.
	seed := uint64(0x9e3779b97f4a7c15)
	rnd := func(n uint64) uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return (seed >> 33) % n
	}

	clock := make([]vtime.Time, procs)
	grants := 0
	grant := func() {
		want := c.pickTurnScan()
		got := c.pickTurn()
		if got != want {
			t.Fatalf("grant %d: pickTurn chose %v, scan oracle chose %v", grants, procName(got), procName(want))
		}
		if got == nil {
			return
		}
		grants++
		got.state = stateRunning
		// The turn ends: the process advances (possibly not at all, so
		// identical keys recur) and either yields runnable or blocks.
		clock[got.rank] += vtime.Time(rnd(5))
		got.clock = clock[got.rank]
		if rnd(3) == 0 {
			got.state = stateRunnable
			got.pickClock = got.clock
			c.noteRunnable(got)
		} else {
			got.state = stateBlockedRecv
		}
	}

	for step := 0; step < 20000; step++ {
		switch rnd(4) {
		case 0, 1:
			// A blocked process is woken (message arrival / barrier
			// release) at a clock at or after its last. Zero dwell makes
			// equal-clock rank tiebreaks common.
			p := c.procs[rnd(procs)]
			if p.state == stateBlockedRecv {
				clock[p.rank] += vtime.Time(rnd(3))
				p.state = stateRunnable
				p.pickClock = clock[p.rank]
				c.noteRunnable(p)
			}
		case 2:
			grant()
		case 3:
			// Barrier-self-arrival analog: a runnable process starts
			// running without a grant, orphaning its heap entry; it may
			// then become runnable again — sometimes at the same clock,
			// making the stale and live entries carry identical keys.
			p := c.procs[rnd(procs)]
			if p.state == stateRunnable {
				p.state = stateRunning
				clock[p.rank] += vtime.Time(rnd(4))
				p.clock = clock[p.rank]
				if rnd(2) == 0 {
					p.state = stateRunnable
					p.pickClock = p.clock
					c.noteRunnable(p)
				} else {
					p.state = stateBlockedRecv
				}
			}
		}
	}
	if grants < 1000 {
		t.Fatalf("recorded schedule exercised only %d grants — not a meaningful comparison", grants)
	}

	// Drain every remaining runnable process; the heap must then agree
	// with the scan that nothing is left and end empty.
	for c.pickTurnScan() != nil {
		grant()
		for _, p := range c.procs {
			if p.state == stateRunnable {
				break
			}
		}
		// Block whatever the grant left runnable so draining terminates.
		if p := c.pickTurnScan(); p != nil && rnd(2) == 0 {
			p.state = stateRunning
			p.state = stateBlockedRecv
		}
	}
	if got := c.pickTurn(); got != nil {
		t.Fatalf("scan sees no runnable process but pickTurn granted %v", procName(got))
	}
	if len(c.turnHeap) != 0 {
		t.Fatalf("turn heap not drained: %d entries left", len(c.turnHeap))
	}
}

func procName(p *Proc) any {
	if p == nil {
		return "<none>"
	}
	return p.rank
}
