// Package cluster simulates a distributed-memory parallel machine: a set
// of SPMD processes (ranks) placed on multicore nodes, exchanging
// messages whose cost is charged against a machine model in virtual time.
//
// The simulator is a cooperative, deterministic scheduler. Exactly one
// process goroutine runs at any instant; the scheduler always resumes the
// runnable process with the smallest (virtual clock, rank). Because every
// state mutation happens while its process holds the single execution
// turn, the package needs no locks, and two runs of the same program
// produce bit-identical virtual times, message orders, and results.
//
// Processes run real Go code: all application arithmetic actually
// executes. Virtual time advances only through explicit Charge calls and
// through the modeled cost of communication, so simulated time measures
// the modeled machine rather than the host.
//
// This package is the stand-in for the paper's physical Cray XT4; see
// DESIGN.md section 2 for the substitution argument.
package cluster

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"ppm/internal/machine"
	"ppm/internal/vtime"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config describes the simulated machine shape for one run.
type Config struct {
	// Procs is the number of SPMD processes (ranks).
	Procs int
	// ProcsPerNode is how many ranks share each physical node. A
	// message-passing job typically places one rank per core; a PPM job
	// places one rank per node. Procs must be a multiple unless the last
	// node is allowed to be ragged (it is; the last node holds the
	// remainder).
	ProcsPerNode int
	// Machine is the cost model. If nil, machine.Franklin() is used.
	Machine *machine.Machine
	// Trace, if non-nil, receives one line per scheduling event. Meant
	// for debugging small runs; output volume is O(events).
	Trace func(line string)
	// Observer, if non-nil, receives structured events (sends, receives,
	// barrier releases, exits) in deterministic schedule order. Used by
	// the trace/timeline tooling.
	Observer func(Event)
	// Parallel selects the conservative parallel scheduler: process
	// compute sections execute concurrently on host cores while every
	// operation on shared simulator state is re-serialized in exactly
	// the order the sequential scheduler would run it, so reports,
	// observer streams, and all modeled results stay bit-identical.
	// See parallel.go. Setting PPM_PARALLEL=1 in the environment
	// forces this mode for every run (used by CI to exercise the whole
	// test suite under it).
	Parallel bool
}

func (c *Config) validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("cluster: Procs must be positive, got %d", c.Procs)
	}
	if c.ProcsPerNode <= 0 {
		return fmt.Errorf("cluster: ProcsPerNode must be positive, got %d", c.ProcsPerNode)
	}
	if c.Machine != nil {
		if err := c.Machine.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Program is the SPMD entry point: it is invoked once per rank, on that
// rank's goroutine, with that rank's Proc handle.
type Program func(p *Proc)

// procState enumerates the scheduler-visible states of a process.
type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateBlockedRecv
	stateBlockedBarrier
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateRunnable:
		return "runnable"
	case stateRunning:
		return "running"
	case stateBlockedRecv:
		return "blocked-recv"
	case stateBlockedBarrier:
		return "blocked-barrier"
	case stateDone:
		return "done"
	default:
		return "invalid"
	}
}

// Message is a delivered point-to-point message.
type Message struct {
	Src     int
	Tag     int
	Payload any
	// Bytes is the modeled payload size used for cost accounting. It
	// need not equal any real in-memory size of Payload.
	Bytes int
	// Arrival is the virtual time the message became available at the
	// destination.
	Arrival vtime.Time

	seq int64 // global send order, for deterministic matching
}

// errAbort is panicked into process goroutines to unwind them when the
// run is being torn down after another process failed.
type abortSignal struct{}

// Cluster is the run state shared by the scheduler and all processes.
// Only the currently running process (or the scheduler, when no process
// is running) touches it, so it needs no locking.
type Cluster struct {
	cfg   Config
	mach  *machine.Machine
	procs []*Proc
	nics  []*vtime.Resource // one per node

	yield chan *Proc // processes announce they stopped running

	// Parallel-scheduler state: parkReq is where a process announces it
	// reached an operation and needs the turn (buffered so announcing
	// never blocks the scheduler's grant cycle). turnHeap is the grant
	// queue: one (pickClock, rank) entry per runnable-transition, popped
	// in key order with lazy invalidation (see pickTurn).
	parallel bool
	parkReq  chan *Proc
	turnHeap []turnEnt

	// tracing caches cfg.Trace != nil so hot scheduler paths can skip
	// trace calls entirely: the variadic call site boxes its arguments
	// before trace can test for a nil sink, which would put allocations
	// on every turn grant even in untraced runs.
	tracing bool

	sendSeq    int64
	barrierGen int64
	inBarrier  int

	failure error // first process panic, if any
}

// Run executes prog as an SPMD program over the configured cluster and
// returns the run report. It returns an error for invalid configuration,
// deadlock, or a panic in any process (the panic value is wrapped).
func Run(cfg Config, prog Program) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mach := cfg.Machine
	if mach == nil {
		mach = machine.Franklin()
	}
	nodes := (cfg.Procs + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	c := &Cluster{
		cfg:      cfg,
		mach:     mach,
		yield:    make(chan *Proc),
		parallel: cfg.Parallel || envParallel,
		tracing:  cfg.Trace != nil,
	}
	if c.parallel {
		c.parkReq = make(chan *Proc, cfg.Procs)
	}
	c.nics = make([]*vtime.Resource, nodes)
	for i := range c.nics {
		c.nics[i] = vtime.NewResource(fmt.Sprintf("nic-%d", i))
	}
	c.procs = make([]*Proc, cfg.Procs)
	for r := 0; r < cfg.Procs; r++ {
		c.procs[r] = &Proc{
			cluster: c,
			rank:    r,
			node:    r / cfg.ProcsPerNode,
			state:   stateRunnable,
			resume:  make(chan bool),
			turnCh:  make(chan bool),
		}
	}
	for _, p := range c.procs {
		go p.run(prog)
	}
	var err error
	if c.parallel {
		err = c.scheduleParallel()
	} else {
		err = c.schedule()
	}
	rep := c.report()
	return rep, err
}

// envParallel forces the parallel scheduler for every run in the
// process when PPM_PARALLEL=1, regardless of Config.Parallel. CI uses
// it to run the full test suite (including the race detector) under the
// parallel scheduler.
var envParallel = os.Getenv("PPM_PARALLEL") == "1"

// schedule is the main scheduling loop, run on the caller's goroutine.
func (c *Cluster) schedule() error {
	for {
		if c.failure != nil {
			c.teardown()
			return c.failure
		}
		p := c.pickRunnable()
		if p == nil {
			if c.allDone() {
				return c.failure
			}
			if c.failure != nil {
				c.teardown()
				return c.failure
			}
			err := c.deadlockError()
			c.failure = err
			c.teardown()
			return err
		}
		p.state = stateRunning
		if c.tracing {
			c.trace("resume rank=%d clock=%v", p.rank, p.clock)
		}
		p.resume <- true
		q := <-c.yield
		if c.tracing {
			c.trace("yield rank=%d state=%v clock=%v", q.rank, q.state, q.clock)
		}
	}
}

// pickRunnable returns the runnable process with the smallest
// (clock, rank), or nil if none are runnable.
func (c *Cluster) pickRunnable() *Proc {
	var best *Proc
	for _, p := range c.procs {
		if p.state != stateRunnable {
			continue
		}
		if best == nil || p.clock < best.clock || (p.clock == best.clock && p.rank < best.rank) {
			best = p
		}
	}
	return best
}

func (c *Cluster) allDone() bool {
	for _, p := range c.procs {
		if p.state != stateDone {
			return false
		}
	}
	return true
}

// teardown unblocks every non-finished process with an abort signal so
// its goroutine can exit; it then drains their final yields.
func (c *Cluster) teardown() {
	for _, p := range c.procs {
		if p.state == stateDone {
			continue
		}
		p.state = stateRunning
		p.resume <- false
		<-c.yield
	}
}

// deadlockError builds a diagnostic for a run with live processes but
// nothing runnable: per stuck process it reports the virtual clock, the
// pending operation (with wildcard receive arguments spelled out and
// barrier occupancy), and how many unmatched messages sit in its
// mailbox — enough to diagnose a hang in a large sweep without a trace.
func (c *Cluster) deadlockError() error {
	var blocked []*Proc
	recvs, barriers, done := 0, 0, 0
	for _, p := range c.procs {
		switch p.state {
		case stateBlockedRecv:
			recvs++
			blocked = append(blocked, p)
		case stateBlockedBarrier:
			barriers++
			blocked = append(blocked, p)
		case stateDone:
			done++
		}
	}
	live := len(c.procs) - done
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: deadlock — no runnable process among %d (%d waiting on recv, %d in barrier, %d exited)",
		len(c.procs), recvs, barriers, done)
	sort.Slice(blocked, func(i, j int) bool { return blocked[i].rank < blocked[j].rank })
	const maxDetail = 16
	for i, p := range blocked {
		if i == maxDetail {
			fmt.Fprintf(&b, "\n  … %d more stuck process(es)", len(blocked)-i)
			break
		}
		switch p.state {
		case stateBlockedRecv:
			fmt.Fprintf(&b, "\n  rank %d: clock=%v pending recv(src=%s, tag=%s), %d queued message(s), none matching",
				p.rank, p.clock, fmtWild(p.wantSrc, AnySource), fmtWild(p.wantTag, AnyTag), len(p.mailbox))
		case stateBlockedBarrier:
			fmt.Fprintf(&b, "\n  rank %d: clock=%v pending barrier #%d (%d of %d live entered)",
				p.rank, p.clock, c.barrierGen+1, c.inBarrier, live)
		}
	}
	return errors.New(b.String())
}

// fmtWild renders a Recv argument, naming the wildcard.
func fmtWild(v, wild int) string {
	if v == wild {
		return "any"
	}
	return fmt.Sprintf("%d", v)
}

func (c *Cluster) trace(format string, args ...any) {
	if c.cfg.Trace != nil {
		c.cfg.Trace(fmt.Sprintf(format, args...))
	}
}

// tryBarrierRelease releases all processes if every live process has
// entered the barrier. Completed processes do not participate: a program
// must make all ranks reach every barrier (like MPI_Barrier), and a rank
// exiting early while others wait is reported as deadlock. releaser is
// the process whose arrival (or exit) triggered the attempt; under the
// parallel scheduler every other released process is woken immediately
// so its next compute section runs concurrently, while releaser keeps
// the turn.
func (c *Cluster) tryBarrierRelease(releaser *Proc) {
	live := 0
	for _, p := range c.procs {
		if p.state != stateDone {
			live++
		}
	}
	if c.inBarrier < live {
		return
	}
	var latest vtime.Time
	for _, p := range c.procs {
		if p.state == stateBlockedBarrier {
			latest = latest.Max(p.clock)
		}
	}
	release := latest.Add(c.mach.BarrierTime(live))
	c.barrierGen++
	c.inBarrier = 0
	for _, p := range c.procs {
		if p.state == stateBlockedBarrier {
			p.clock = release
			p.pickClock = release
			p.state = stateRunnable
			p.stats.Barriers++
			c.noteRunnable(p)
			c.observe(Event{Kind: EvBarrier, Rank: p.rank, Peer: -1, Time: release})
			if c.parallel && p != releaser {
				p.resume <- true
			}
		}
	}
	if c.tracing {
		c.trace("barrier released at %v (%d procs)", release, live)
	}
}
