package cluster

import (
	"fmt"

	"ppm/internal/machine"
	"ppm/internal/vtime"
)

// ProcStats accumulates per-process accounting over a run.
type ProcStats struct {
	MsgsSent      int64
	MsgsRecvd     int64
	BytesSent     int64
	BytesRecvd    int64
	IntraMsgsSent int64 // subset of MsgsSent that stayed on-node
	Barriers      int64
	ComputeTime   vtime.Duration // total explicitly charged compute
}

// Proc is one simulated SPMD process (rank). All methods must be called
// from the process's own goroutine, i.e. from inside the Program.
//
// Synchronization note: the scheduler and process goroutines hand a
// single execution turn back and forth over the resume/yield channels;
// every access to shared cluster state happens while holding the turn, so
// the accesses are ordered by the channel operations and no locks are
// needed. Under Config.Parallel the turn still exists and still moves in
// the same order; processes merely compute ahead between operations (see
// parallel.go for the full protocol and determinism argument).
type Proc struct {
	cluster *Cluster
	rank    int
	node    int

	clock  vtime.Time
	state  procState
	resume chan bool

	// Parallel-mode fields (see parallel.go). turnCh delivers turn
	// grants to a process parked at an operation; hasTurn is owned by
	// the process goroutine; pickClock is the clock at which the
	// process last became runnable — exactly the frozen clock the
	// sequential scheduler would compare, since a sequential process
	// never advances its clock while runnable-but-not-running. parked
	// is owned by the scheduler and tracks whether the process waits
	// between parkReq and its turn grant; pendingOp names the
	// operation the process is parked at, for diagnostics.
	turnCh    chan bool
	hasTurn   bool
	pickClock vtime.Time
	parked    bool
	pendingOp string

	mailbox []*Message
	wantSrc int
	wantTag int

	stats ProcStats
}

// acquireTurn blocks until this process holds the serialization turn.
// Mutating (or order-sensitively reading) any state outside the
// process's own fields requires the turn; the process then keeps it
// until it blocks, yields, or exits. In sequential mode holding the
// turn is implicit in having been resumed, so this is a no-op.
func (p *Proc) acquireTurn(op string) {
	if !p.cluster.parallel || p.hasTurn {
		return
	}
	p.pendingOp = op
	p.cluster.parkReq <- p
	if !<-p.turnCh {
		panic(abortSignal{})
	}
	p.hasTurn = true
	p.pendingOp = ""
}

// acquireTurnExit is acquireTurn for the exit path: instead of
// panicking when the run is being torn down it reports false, so the
// deferred exit handler can finish without touching shared state.
func (p *Proc) acquireTurnExit() bool {
	if !p.cluster.parallel || p.hasTurn {
		return true
	}
	p.pendingOp = "exit"
	p.cluster.parkReq <- p
	if !<-p.turnCh {
		return false
	}
	p.hasTurn = true
	p.pendingOp = ""
	return true
}

// Serial runs f while holding the serialization turn, then keeps the
// turn (it is released at the process's next block or yield, like any
// other operation). Runtime layers use it to fence sections that touch
// cross-process host state outside the message-passing API — e.g.
// collective registration or shared diagnostic logs — so the sections
// execute in exactly the order the sequential scheduler would run them.
// In sequential mode it simply calls f.
func (p *Proc) Serial(f func()) {
	p.acquireTurn("serial")
	f()
}

// run is the goroutine body wrapping the user program.
func (p *Proc) run(prog Program) {
	defer func() {
		r := recover()
		_, aborted := r.(abortSignal)
		if aborted {
			r = nil
		}
		// Exiting mutates shared state (the observer stream, barrier
		// bookkeeping, the failure slot), so under the parallel
		// scheduler it waits for this process's sequential turn. A
		// false grant means the run is being torn down: finish without
		// touching shared state.
		if !aborted && !p.acquireTurnExit() {
			aborted = true
		}
		if aborted && p.cluster.parallel {
			p.state = stateDone
			p.cluster.yield <- p
			return
		}
		if r != nil && p.cluster.failure == nil {
			p.cluster.failure = fmt.Errorf("cluster: rank %d panicked: %v", p.rank, r)
		}
		p.state = stateDone
		p.cluster.observe(Event{Kind: EvExit, Rank: p.rank, Peer: -1, Time: p.clock})
		// A finished process no longer participates in barriers; waiters
		// must not hang on it.
		p.cluster.tryBarrierRelease(p)
		p.hasTurn = false
		p.cluster.yield <- p
	}()
	// First resume: the scheduler hands us the turn without a prior yield
	// from us. (In parallel mode every process is resumed at start and
	// acquires the turn lazily at its first operation.)
	if cont := <-p.resume; !cont {
		panic(abortSignal{})
	}
	prog(p)
}

// yieldBlocked parks the process in the given blocked state until the
// scheduler (or, in parallel mode, the process that unblocks it) makes
// it runnable again and resumes it. In parallel mode the process
// resumes computing without the turn and reacquires it at its next
// operation.
func (p *Proc) yieldBlocked(s procState) {
	p.state = s
	p.hasTurn = false
	p.cluster.yield <- p
	if cont := <-p.resume; !cont {
		panic(abortSignal{})
	}
}

// Rank returns this process's rank in [0, Procs).
func (p *Proc) Rank() int { return p.rank }

// Procs returns the total number of processes in the run.
func (p *Proc) Procs() int { return len(p.cluster.procs) }

// Node returns the physical node index this process is placed on.
func (p *Proc) Node() int { return p.node }

// Nodes returns the number of physical nodes in the run.
func (p *Proc) Nodes() int { return len(p.cluster.nics) }

// NodeRank returns this process's index among the processes on its node.
func (p *Proc) NodeRank() int { return p.rank % p.cluster.cfg.ProcsPerNode }

// ProcsPerNode returns the configured number of processes per node.
func (p *Proc) ProcsPerNode() int { return p.cluster.cfg.ProcsPerNode }

// Machine returns the cost model in effect.
func (p *Proc) Machine() *machine.Machine { return p.cluster.mach }

// Clock returns this process's current virtual time.
func (p *Proc) Clock() vtime.Time { return p.clock }

// Charge advances this process's clock by d of modeled computation.
func (p *Proc) Charge(d vtime.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("cluster: rank %d charged negative duration %v", p.rank, d))
	}
	p.clock = p.clock.Add(d)
	p.stats.ComputeTime += d
}

// ChargeFlops advances the clock by the modeled time of n flops on one
// core.
func (p *Proc) ChargeFlops(n int64) { p.Charge(p.cluster.mach.FlopTime(n)) }

// ChargeMem advances the clock by the modeled time of streaming n bytes
// through one core.
func (p *Proc) ChargeMem(n int64) { p.Charge(p.cluster.mach.MemTime(n)) }

// AdvanceTo moves the clock forward to t if t is later. Used by runtime
// layers that compute event times themselves (e.g. the PPM bundler).
func (p *Proc) AdvanceTo(t vtime.Time) {
	if t.After(p.clock) {
		p.clock = t
	}
}

// NICAcquire occupies this process's node NIC for d starting no earlier
// than at, returning the completion time. Runtime layers use it to model
// bundled traffic without materializing messages. The NIC is shared by
// every process on the node, so acquisition order is part of the
// deterministic schedule and requires the turn.
func (p *Proc) NICAcquire(at vtime.Time, d vtime.Duration) vtime.Time {
	p.acquireTurn("nic-acquire")
	return p.cluster.nics[p.node].Acquire(at, d)
}

// NICFreeAt returns the earliest idle time of this node's NIC.
func (p *Proc) NICFreeAt() vtime.Time {
	p.acquireTurn("nic-free")
	return p.cluster.nics[p.node].FreeAt()
}

// CountTraffic records modeled traffic in the statistics without
// performing a send; runtime layers use it alongside NICAcquire.
func (p *Proc) CountTraffic(msgs, bytes int64, intra bool) {
	p.stats.MsgsSent += msgs
	p.stats.BytesSent += bytes
	if intra {
		p.stats.IntraMsgsSent += msgs
	}
}

// Stats returns a copy of this process's accumulated statistics.
func (p *Proc) Stats() ProcStats { return p.stats }

// Send delivers a message to rank dst with the given tag. The payload is
// passed by reference (no serialization); bytes is the modeled size used
// for cost accounting. Sends are eager and never block: the sender pays
// its per-message overhead and NIC occupancy, and the message becomes
// available at the destination at the modeled arrival time.
func (p *Proc) Send(dst, tag int, payload any, bytes int) {
	if dst < 0 || dst >= len(p.cluster.procs) {
		panic(fmt.Sprintf("cluster: rank %d Send to invalid rank %d", p.rank, dst))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("cluster: rank %d Send with negative bytes %d", p.rank, bytes))
	}
	p.acquireTurn("send")
	c := p.cluster
	m := c.mach
	target := c.procs[dst]
	var arrival vtime.Time
	intra := target.node == p.node
	if intra {
		p.clock = p.clock.Add(m.IntraSendOverhead())
		arrival = p.clock.Add(vtime.Duration(m.IntraLatency)).Add(m.IntraCopyTime(bytes))
	} else {
		p.clock = p.clock.Add(vtime.Duration(m.SendOverhead))
		nicDone := c.nics[p.node].Acquire(p.clock, m.WireTime(bytes))
		arrival = nicDone.Add(vtime.Duration(m.NetLatency))
	}
	c.sendSeq++
	msg := &Message{
		Src:     p.rank,
		Tag:     tag,
		Payload: payload,
		Bytes:   bytes,
		Arrival: arrival,
		seq:     c.sendSeq,
	}
	target.mailbox = append(target.mailbox, msg)
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(bytes)
	if intra {
		p.stats.IntraMsgsSent++
	}
	if c.tracing {
		c.trace("send %d->%d tag=%d bytes=%d arrival=%v", p.rank, dst, tag, bytes, arrival)
	}
	c.observe(Event{Kind: EvSend, Rank: p.rank, Peer: dst, Tag: tag, Bytes: bytes, Intra: intra, Time: p.clock})
	// If the destination is parked on a matching receive, wake it. Its
	// pick clock is the clock it blocked at (unchanged while blocked),
	// which is what the sequential scheduler would compare.
	if target.state == stateBlockedRecv && matches(target.wantSrc, target.wantTag, msg) {
		target.state = stateRunnable
		target.pickClock = target.clock
		c.noteRunnable(target)
		if c.parallel {
			target.resume <- true
		}
	}
}

func matches(wantSrc, wantTag int, m *Message) bool {
	return (wantSrc == AnySource || wantSrc == m.Src) &&
		(wantTag == AnyTag || wantTag == m.Tag)
}

// Recv blocks until a message matching (src, tag) is available and
// returns it. src may be AnySource and tag may be AnyTag. Messages from
// the same source with the same tag are received in send order
// (non-overtaking); wildcard receives match in global send order, which
// keeps runs deterministic.
func (p *Proc) Recv(src, tag int) *Message {
	for {
		p.acquireTurn("recv")
		if msg := p.consumeMatch(src, tag); msg != nil {
			return msg
		}
		p.wantSrc, p.wantTag = src, tag
		p.yieldBlocked(stateBlockedRecv)
	}
}

// TryRecv returns a matching message if one is already available, without
// blocking. It returns nil when none is queued.
func (p *Proc) TryRecv(src, tag int) *Message {
	p.acquireTurn("recv")
	return p.consumeMatch(src, tag)
}

// consumeMatch removes the first queued message matching (src, tag) in
// global send order, charges receive costs, and returns it; nil if none.
func (p *Proc) consumeMatch(src, tag int) *Message {
	for i, msg := range p.mailbox {
		if !matches(src, tag, msg) {
			continue
		}
		p.mailbox = append(p.mailbox[:i], p.mailbox[i+1:]...)
		m := p.cluster.mach
		intra := p.cluster.procs[msg.Src].node == p.node
		p.clock = p.clock.Max(msg.Arrival)
		if intra {
			p.clock = p.clock.Add(m.IntraRecvOverhead())
		} else {
			p.clock = p.clock.Add(vtime.Duration(m.RecvOverhead))
		}
		p.stats.MsgsRecvd++
		p.stats.BytesRecvd += int64(msg.Bytes)
		if p.cluster.tracing {
			p.cluster.trace("recv %d<-%d tag=%d bytes=%d at %v", p.rank, msg.Src, msg.Tag, msg.Bytes, p.clock)
		}
		p.cluster.observe(Event{Kind: EvRecv, Rank: p.rank, Peer: msg.Src, Tag: msg.Tag, Bytes: msg.Bytes, Intra: intra, Time: p.clock})
		return msg
	}
	return nil
}

// Barrier blocks until every live (not yet finished) process has entered
// the barrier. All participants leave with the same clock: the latest
// arrival plus the machine's modeled barrier cost. Processes that have
// already finished do not participate.
func (p *Proc) Barrier() {
	p.acquireTurn("barrier")
	c := p.cluster
	p.state = stateBlockedBarrier
	c.inBarrier++
	c.tryBarrierRelease(p)
	if p.state == stateRunnable {
		// Our own arrival completed the barrier; we keep the turn.
		p.state = stateRunning
		return
	}
	p.hasTurn = false
	c.yield <- p
	if cont := <-p.resume; !cont {
		panic(abortSignal{})
	}
}

// Yield voluntarily hands the turn back to the scheduler; the process
// remains runnable at its current clock. Useful in tests to force
// interleavings.
func (p *Proc) Yield() {
	if p.cluster.parallel {
		// Give up the turn but keep computing; the next operation
		// parks until the turn comes around again at this clock.
		p.acquireTurn("yield")
		p.state = stateRunnable
		p.pickClock = p.clock
		p.cluster.noteRunnable(p)
		p.hasTurn = false
		p.cluster.yield <- p
		return
	}
	p.yieldBlocked(stateRunnable)
}
