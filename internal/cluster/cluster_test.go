package cluster

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"ppm/internal/machine"
	"ppm/internal/vtime"
)

func genericCfg(procs, perNode int) Config {
	return Config{Procs: procs, ProcsPerNode: perNode, Machine: machine.Generic()}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Procs: 0, ProcsPerNode: 1}, func(p *Proc) {}); err == nil {
		t.Error("Procs=0 accepted")
	}
	if _, err := Run(Config{Procs: 1, ProcsPerNode: 0}, func(p *Proc) {}); err == nil {
		t.Error("ProcsPerNode=0 accepted")
	}
	bad := machine.Generic()
	bad.FlopRate = -1
	if _, err := Run(Config{Procs: 1, ProcsPerNode: 1, Machine: bad}, func(p *Proc) {}); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestTopology(t *testing.T) {
	seen := make([]string, 6)
	_, err := Run(genericCfg(6, 2), func(p *Proc) {
		seen[p.Rank()] = fmt.Sprintf("n%d r%d/%d nr%d", p.Node(), p.Rank(), p.Procs(), p.NodeRank())
		if p.Nodes() != 3 {
			panic("Nodes() wrong")
		}
		if p.ProcsPerNode() != 2 {
			panic("ProcsPerNode() wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"n0 r0/6 nr0", "n0 r1/6 nr1", "n1 r2/6 nr0", "n1 r3/6 nr1", "n2 r4/6 nr0", "n2 r5/6 nr1"}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("rank %d: got %q, want %q", i, seen[i], want[i])
		}
	}
}

func TestRaggedLastNode(t *testing.T) {
	rep, err := Run(genericCfg(5, 2), func(p *Proc) {})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 3 {
		t.Errorf("Nodes = %d, want 3", rep.Nodes)
	}
}

func TestChargeAdvancesClock(t *testing.T) {
	rep, err := Run(genericCfg(1, 1), func(p *Proc) {
		p.Charge(0.5)
		p.ChargeFlops(1e9) // 1s on Generic
		p.ChargeMem(1e10)  // 1s on Generic
		if got := p.Clock(); math.Abs(got.Seconds()-2.5) > 1e-12 {
			panic(fmt.Sprintf("clock = %v, want 2.5s", got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Makespan.Seconds()-2.5) > 1e-12 {
		t.Errorf("makespan = %v, want 2.5s", rep.Makespan)
	}
	if math.Abs(rep.Totals.ComputeTime.Seconds()-2.5) > 1e-12 {
		t.Errorf("compute total = %v, want 2.5s", rep.Totals.ComputeTime)
	}
}

func TestNegativeChargePanicsIntoError(t *testing.T) {
	_, err := Run(genericCfg(1, 1), func(p *Proc) { p.Charge(-1) })
	if err == nil || !strings.Contains(err.Error(), "negative duration") {
		t.Errorf("expected negative-duration error, got %v", err)
	}
}

func TestSendRecvInterNodeCost(t *testing.T) {
	m := machine.Generic() // o=1us, L=1us, BW=1e9, header=0, recv o=1us
	var recvClock vtime.Time
	_, err := Run(Config{Procs: 2, ProcsPerNode: 1, Machine: m}, func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 7, "hello", 1000) // wire = 1us
			// Sender pays only its overhead.
			if got := p.Clock().Seconds(); math.Abs(got-1e-6) > 1e-15 {
				panic(fmt.Sprintf("sender clock %v, want 1us", got))
			}
		case 1:
			msg := p.Recv(0, 7)
			if msg.Payload.(string) != "hello" || msg.Src != 0 || msg.Bytes != 1000 {
				panic("bad message")
			}
			recvClock = p.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// arrival = send o (1us) + wire (1us) + L (1us) = 3us; + recv o = 4us.
	if got := recvClock.Seconds(); math.Abs(got-4e-6) > 1e-15 {
		t.Errorf("receiver clock = %v, want 4us", got)
	}
}

func TestSendRecvIntraNodeCheaper(t *testing.T) {
	m := machine.Generic()
	var interClock, intraClock vtime.Time
	_, err := Run(Config{Procs: 2, ProcsPerNode: 1, Machine: m}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 1000)
		} else {
			p.Recv(0, 0)
			interClock = p.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Procs: 2, ProcsPerNode: 2, Machine: m}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 1000)
		} else {
			p.Recv(0, 0)
			intraClock = p.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !intraClock.Before(interClock) {
		t.Errorf("intra-node message (%v) should be cheaper than inter-node (%v)", intraClock, interClock)
	}
}

func TestNICSerialization(t *testing.T) {
	// Two sends back to back from one rank occupy the NIC sequentially:
	// receiver sees second arrival after first wire time completes.
	m := machine.Generic()
	m.SendOverhead = 0
	m.RecvOverhead = 0
	m.NetLatency = 0
	var second vtime.Time
	_, err := Run(Config{Procs: 2, ProcsPerNode: 1, Machine: m}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 1000) // 1us wire
			p.Send(1, 0, nil, 1000) // queued behind -> arrives at 2us
		} else {
			p.Recv(0, 0)
			p.Recv(0, 0)
			second = p.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Seconds(); math.Abs(got-2e-6) > 1e-15 {
		t.Errorf("second arrival = %v, want 2us (NIC serialized)", got)
	}
}

func TestRecvNonOvertakingSameSource(t *testing.T) {
	var order []int
	_, err := Run(genericCfg(2, 1), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 5, 1, 8)
			p.Send(1, 5, 2, 8)
			p.Send(1, 5, 3, 8)
		} else {
			for i := 0; i < 3; i++ {
				order = append(order, p.Recv(0, 5).Payload.(int))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Errorf("messages overtook: %v", order)
	}
}

func TestRecvByTagSelects(t *testing.T) {
	var got []int
	_, err := Run(genericCfg(2, 1), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, 100, 8)
			p.Send(1, 2, 200, 8)
		} else {
			got = append(got, p.Recv(0, 2).Payload.(int))
			got = append(got, p.Recv(0, 1).Payload.(int))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[200 100]" {
		t.Errorf("tag matching wrong: %v", got)
	}
}

func TestAnySourceDeterministic(t *testing.T) {
	run := func() []int {
		var got []int
		_, err := Run(genericCfg(4, 1), func(p *Proc) {
			if p.Rank() == 0 {
				for i := 0; i < 3; i++ {
					got = append(got, p.Recv(AnySource, AnyTag).Src)
				}
			} else {
				p.Charge(vtime.Duration(float64(4-p.Rank()) * 1e-6)) // stagger
				p.Send(0, 9, nil, 8)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("AnySource nondeterministic: %v vs %v", a, b)
	}
}

func TestTryRecv(t *testing.T) {
	_, err := Run(genericCfg(2, 1), func(p *Proc) {
		if p.Rank() == 0 {
			if m := p.TryRecv(AnySource, AnyTag); m != nil {
				panic("TryRecv returned a message before any send")
			}
			p.Recv(1, 1) // force ordering: wait for the real one
			if m := p.TryRecv(1, 2); m == nil || m.Payload.(int) != 42 {
				panic("TryRecv missed queued message")
			}
		} else {
			p.Send(0, 2, 42, 8)
			p.Send(0, 1, 0, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := machine.Generic()
	clocks := make([]vtime.Time, 4)
	_, err := Run(Config{Procs: 4, ProcsPerNode: 1, Machine: m}, func(p *Proc) {
		p.Charge(vtime.Duration(float64(p.Rank()+1) * 0.001)) // 1..4ms
		p.Barrier()
		clocks[p.Rank()] = p.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := vtime.Time(0.004).Add(m.BarrierTime(4))
	for r, c := range clocks {
		if math.Abs(c.Seconds()-want.Seconds()) > 1e-12 {
			t.Errorf("rank %d clock after barrier = %v, want %v", r, c, want)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	rep, err := Run(genericCfg(3, 1), func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Barriers != 30 {
		t.Errorf("barrier count = %d, want 30", rep.Totals.Barriers)
	}
}

func TestBarrierWithFinishedProcs(t *testing.T) {
	// Rank 2 exits immediately; the others' barrier must still release.
	_, err := Run(genericCfg(3, 1), func(p *Proc) {
		if p.Rank() == 2 {
			return
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(genericCfg(2, 1), func(p *Proc) {
		p.Recv(1-p.Rank(), 0) // both wait, nobody sends
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestBarrierRecvMixDeadlock(t *testing.T) {
	_, err := Run(genericCfg(2, 1), func(p *Proc) {
		if p.Rank() == 0 {
			p.Barrier()
		} else {
			p.Recv(0, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestPanicPropagatesAndTearsDown(t *testing.T) {
	_, err := Run(genericCfg(4, 1), func(p *Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
		p.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2 panicked: boom") {
		t.Errorf("expected rank-2 panic error, got %v", err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	_, err := Run(genericCfg(1, 1), func(p *Proc) { p.Send(5, 0, nil, 0) })
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Errorf("expected invalid-rank error, got %v", err)
	}
}

func TestSendNegativeBytes(t *testing.T) {
	_, err := Run(genericCfg(2, 1), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, -1)
		} else {
			p.Recv(0, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "negative bytes") {
		t.Errorf("expected negative-bytes error, got %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	rep, err := Run(genericCfg(2, 2), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 100)
			p.Send(1, 0, nil, 200)
		} else {
			p.Recv(0, 0)
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.MsgsSent != 2 || rep.Totals.MsgsRecvd != 2 {
		t.Errorf("msg counts: %+v", rep.Totals)
	}
	if rep.Totals.BytesSent != 300 || rep.Totals.BytesRecvd != 300 {
		t.Errorf("byte counts: %+v", rep.Totals)
	}
	if rep.Totals.IntraMsgsSent != 2 {
		t.Errorf("intra count = %d, want 2", rep.Totals.IntraMsgsSent)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() *Report {
		rep, err := Run(genericCfg(8, 2), func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Charge(vtime.Duration(float64(p.Rank()%3) * 1e-5))
				next := (p.Rank() + 1) % p.Procs()
				prev := (p.Rank() + p.Procs() - 1) % p.Procs()
				p.Send(next, i, p.Rank(), 64)
				p.Recv(prev, i)
				p.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.FinalClocks {
		if a.FinalClocks[i] != b.FinalClocks[i] {
			t.Errorf("rank %d final clock differs: %v vs %v", i, a.FinalClocks[i], b.FinalClocks[i])
		}
	}
	if a.String() != b.String() {
		t.Errorf("report strings differ:\n%s\n%s", a, b)
	}
}

func TestYieldKeepsProgress(t *testing.T) {
	_, err := Run(genericCfg(2, 1), func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Yield()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdvanceToOnlyForward(t *testing.T) {
	_, err := Run(genericCfg(1, 1), func(p *Proc) {
		p.Charge(1)
		p.AdvanceTo(0.5) // no-op
		if p.Clock() != 1 {
			panic("AdvanceTo moved clock backwards")
		}
		p.AdvanceTo(2)
		if p.Clock() != 2 {
			panic("AdvanceTo did not move forward")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNICAcquireVisibleAcrossRanksOnNode(t *testing.T) {
	// Two ranks on one node share the NIC resource.
	var done vtime.Time
	_, err := Run(genericCfg(2, 2), func(p *Proc) {
		if p.Rank() == 0 {
			p.NICAcquire(0, 0.001)
		}
		p.Barrier()
		if p.Rank() == 1 {
			done = p.NICAcquire(0, 0.001)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(done.Seconds()-0.002) > 1e-12 {
		t.Errorf("shared NIC completion = %v, want 2ms", done)
	}
}

func TestTraceEmitsEvents(t *testing.T) {
	var lines []string
	cfg := genericCfg(2, 1)
	cfg.Trace = func(s string) { lines = append(lines, s) }
	_, err := Run(cfg, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, nil, 8)
		} else {
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"resume", "send 0->1", "recv 1<-0"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
}

func TestManyProcsPingPong(t *testing.T) {
	const P = 64
	rep, err := Run(genericCfg(P, 4), func(p *Proc) {
		partner := p.Rank() ^ 1
		for i := 0; i < 20; i++ {
			if p.Rank()%2 == 0 {
				p.Send(partner, i, i, 32)
				p.Recv(partner, i)
			} else {
				p.Recv(partner, i)
				p.Send(partner, i, i, 32)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.MsgsSent != P*20 {
		t.Errorf("messages = %d, want %d", rep.Totals.MsgsSent, P*20)
	}
}
