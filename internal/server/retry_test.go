package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"ppm/internal/jobspec"
)

// nopW swallows fleet stderr: the retry tests kill host processes on
// purpose and the victims complain loudly.
type nopW struct{}

func (nopW) Write(p []byte) (int, error) { return len(p), nil }

// distSpec builds a small dist-backend cg spec for the retry tests.
func distSpec(t *testing.T) jobspec.Spec {
	t.Helper()
	var s jobspec.Spec
	raw := `{"app":"cg","backend":"dist","nodes":2,"cores":2,"cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServerJobRetryAfterFleetKill is the server half of the ISSUE's
// acceptance: a fault kills the first fleet mid-job, the server retries
// on a fresh fleet (the one-shot kill is disarmed by the attempt
// number), the job completes with attempts > 1, the result is
// bit-identical to the simulator, and the cache is populated exactly
// once — by the success, never by the failed attempt.
func TestServerJobRetryAfterFleetKill(t *testing.T) {
	t.Setenv("PPM_FAULT", "kill=1@phase:3")
	s := startServer(t, Config{Workers: 1, Stderr: nopW{}})
	base := "http://" + s.Addr()
	spec := distSpec(t)
	want := reference(t, spec)

	resp := submit(t, base, SubmitRequest{Tenant: "retry", Spec: spec})
	st := await(t, base, resp.ID)
	if st.Status != StatusDone {
		t.Fatalf("job status %s (err %q), want done", st.Status, st.Error)
	}
	if st.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one kill, one retry)", st.Attempts)
	}
	sameSeries(t, "retried cg vs simulator", st.Result, want)

	var m Metrics
	if code := getJSON(t, base+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.Jobs.Retried < 1 {
		t.Errorf("jobs_retried = %d, want >= 1", m.Jobs.Retried)
	}
	if m.Fleets.Discarded < 1 {
		t.Errorf("fleets_discarded = %d, want >= 1 (the killed fleet)", m.Fleets.Discarded)
	}
	if m.Recoveries.Rescaled != 0 {
		t.Errorf("recoveries_rescaled = %d, want 0 (first retry keeps the shape)", m.Recoveries.Rescaled)
	}
	if m.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want exactly 1 (success populates once)", m.Cache.Entries)
	}

	// The resubmission must come straight from the cache: no new fleet,
	// no new attempts.
	dup := submit(t, base, SubmitRequest{Tenant: "retry", Spec: spec})
	if dup.Status != StatusDone || dup.Result == nil {
		t.Fatalf("duplicate not served from cache: %+v", dup)
	}
	sameSeries(t, "cached cg vs simulator", dup.Result, want)
}

// TestServerJobRetryRescalesFleet drives the full degradation ladder: a
// killhost fault re-arms on every attempt (the host is permanently
// dead), so the same-shape retry dies too, and the second retry runs the
// 2-node job on ONE host process carrying both logical ranks — which the
// fault, keyed on host index 1, can no longer reach. Output stays
// bit-identical: the logical mesh never changed.
func TestServerJobRetryRescalesFleet(t *testing.T) {
	t.Setenv("PPM_FAULT", "killhost=1@phase:2")
	s := startServer(t, Config{Workers: 1, Stderr: nopW{}})
	base := "http://" + s.Addr()
	spec := distSpec(t)
	want := reference(t, spec)

	resp := submit(t, base, SubmitRequest{Tenant: "rescale", Spec: spec})
	st := await(t, base, resp.ID)
	if st.Status != StatusDone {
		t.Fatalf("job status %s (err %q), want done", st.Status, st.Error)
	}
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (kill, kill again, rescaled success)", st.Attempts)
	}
	sameSeries(t, "rescaled cg vs simulator", st.Result, want)

	var m Metrics
	if code := getJSON(t, base+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.Jobs.Retried < 2 {
		t.Errorf("jobs_retried = %d, want >= 2", m.Jobs.Retried)
	}
	if m.Recoveries.Rescaled < 1 {
		t.Errorf("recoveries_rescaled = %d, want >= 1", m.Recoveries.Rescaled)
	}
	if m.Fleets.Discarded < 2 {
		t.Errorf("fleets_discarded = %d, want >= 2 (both killed fleets)", m.Fleets.Discarded)
	}
}

// TestServerRetryBudgetExhausted pins the failure side: with retries
// disabled, the first fleet death fails the job, attempts stays 1, and
// the cache stays empty.
func TestServerRetryBudgetExhausted(t *testing.T) {
	t.Setenv("PPM_FAULT", "killhost=1@phase:2")
	s := startServer(t, Config{Workers: 1, MaxJobRetries: -1, Stderr: nopW{}})
	base := "http://" + s.Addr()
	spec := distSpec(t)

	resp := submit(t, base, SubmitRequest{Tenant: "nobudget", Spec: spec})
	st := await(t, base, resp.ID)
	if st.Status != StatusFailed {
		t.Fatalf("job status %s, want failed (no retry budget)", st.Status)
	}
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", st.Attempts)
	}
	var m Metrics
	if code := getJSON(t, base+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.Cache.Entries != 0 {
		t.Errorf("cache entries = %d, want 0 (failure must not populate)", m.Cache.Entries)
	}
}

// TestSubmitQueueFullRetryAfter pins the queue-full 503's Retry-After to
// the backlog-proportional value (it was a hardcoded 5 once): the server
// is constructed but never started, so no worker drains the queue and
// the fill is deterministic.
func TestSubmitQueueFullRetryAfter(t *testing.T) {
	s := New(Config{MaxQueue: 4, TenantQuota: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := `{"app":"jacobi","backend":"sim","nodes":2,"cores":2,"jacobi":{"NX":8,"NY":8,"NZ":8,"Sweeps":%d}}`
	for i := 0; i < 4; i++ {
		var sp jobspec.Spec
		if err := json.Unmarshal([]byte(fmt.Sprintf(spec, i+1)), &sp); err != nil {
			t.Fatal(err)
		}
		code, _ := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Tenant: "full", Spec: sp}, nil)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202", i, code)
		}
	}
	var sp jobspec.Spec
	if err := json.Unmarshal([]byte(fmt.Sprintf(spec, 9)), &sp); err != nil {
		t.Fatal(err)
	}
	code, retryAfter := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Tenant: "full", Spec: sp}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-full submit: status %d, want 503", code)
	}
	// 4 queued jobs × 500ms = 2s — proportional to the backlog, not a
	// constant.
	if retryAfter != "2" {
		t.Fatalf("Retry-After = %q, want %q (backlog-proportional)", retryAfter, "2")
	}
}
