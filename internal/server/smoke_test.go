package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ppm/internal/jobspec"
)

// TestServerSmoke is the full-binary serving smoke: it builds
// ppm-server, ppm-node, and ppm-run, boots a real server process,
// submits cg + jacobi + scatter concurrently, resubmits cg as a cache
// hit, diffs every Series bit-for-bit against direct `ppm-run -spec
// -json`, snapshots /metrics (PPM_SERVER_METRICS_OUT), and SIGTERMs
// the server expecting a clean drain (exit 0). Gated behind
// PPM_SERVER_SMOKE=1 (`make server-smoke`) so the default suite stays
// fast.
func TestServerSmoke(t *testing.T) {
	if os.Getenv("PPM_SERVER_SMOKE") == "" {
		t.Skip("set PPM_SERVER_SMOKE=1 to run the serving smoke (make server-smoke)")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"ppm-server", "ppm-node", "ppm-run"} {
		bin := filepath.Join(dir, name)
		if out, err := exec.Command("go", "build", "-o", bin, "ppm/cmd/"+name).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	srv := exec.Command(bins["ppm-server"],
		"-addr", "127.0.0.1:0", "-node-bin", bins["ppm-node"], "-workers", "2")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "ppm-server: listening on "); ok {
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatal("server never reported its listen address")
	}

	specs := map[string]string{
		"cg":      `{"app":"cg","backend":"dist","nodes":2,"cores":2,"cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`,
		"jacobi":  `{"app":"jacobi","backend":"sim","nodes":2,"cores":2,"jacobi":{"NX":8,"NY":8,"NZ":8,"Sweeps":4}}`,
		"scatter": `{"app":"scatter","backend":"dist","nodes":2,"cores":2,"scatter":{"N":400,"VPs":4,"Iters":3,"Seed":7}}`,
	}
	parsed := map[string]jobspec.Spec{}
	for name, raw := range specs {
		var s jobspec.Spec
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			t.Fatal(err)
		}
		parsed[name] = s
	}

	// Concurrent submissions, then await each to done.
	results := map[string]*jobspec.Result{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for name, s := range parsed {
		wg.Add(1)
		go func(name string, s jobspec.Spec) {
			defer wg.Done()
			resp := submit(t, base, SubmitRequest{Tenant: "smoke", Spec: s})
			st := await(t, base, resp.ID)
			if st.Status != StatusDone {
				t.Errorf("%s: status %s, err %q", name, st.Status, st.Error)
				return
			}
			mu.Lock()
			results[name] = st.Result
			mu.Unlock()
		}(name, s)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatalf("submissions failed")
	}

	// The duplicate must come straight from the content-addressed cache.
	dup := submit(t, base, SubmitRequest{Tenant: "smoke", Spec: parsed["cg"]})
	if dup.Status != StatusDone || dup.Result == nil || !dup.Result.Cached {
		t.Fatalf("duplicate cg not served from cache: %+v", dup)
	}
	sameSeries(t, "cached cg vs first cg", dup.Result, results["cg"])

	// Every served Series must be bit-identical to a direct ppm-run of
	// the same spec file.
	for name, raw := range specs {
		specFile := filepath.Join(dir, name+".json")
		if err := os.WriteFile(specFile, []byte(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command(bins["ppm-run"],
			"-spec", specFile, "-json", "-node-bin", bins["ppm-node"]).Output()
		if err != nil {
			t.Fatalf("ppm-run -spec %s: %v", name, err)
		}
		var direct jobspec.Result
		if err := json.Unmarshal(out, &direct); err != nil {
			t.Fatalf("decoding ppm-run output for %s: %v", name, err)
		}
		sameSeries(t, name+" server vs ppm-run", results[name], &direct)
		if results[name].Hash != direct.Hash {
			t.Errorf("%s: hash mismatch: server %s, direct %s", name, results[name].Hash, direct.Hash)
		}
	}

	// Snapshot the metrics (CI uploads the file as an artifact).
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawMetrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.Unmarshal(rawMetrics, &m); err != nil {
		t.Fatal(err)
	}
	// The recovery counters must be present in the raw JSON (the
	// artifact CI uploads) even when zero — dashboards key on the names.
	for _, key := range []string{`"jobs_retried"`, `"recoveries_rescaled"`, `"fleets_discarded"`} {
		if !strings.Contains(string(rawMetrics), key) {
			t.Errorf("metrics JSON is missing %s:\n%s", key, rawMetrics)
		}
	}
	if m.Cache.Hits < 1 {
		t.Errorf("metrics: cache hits = %d, want >= 1", m.Cache.Hits)
	}
	if m.Fleets.Spawned < 1 {
		t.Errorf("metrics: fleets spawned = %d, want >= 1", m.Fleets.Spawned)
	}
	if out := os.Getenv("PPM_SERVER_METRICS_OUT"); out != "" {
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, rawMetrics, "", "  "); err != nil {
			t.Fatal(err)
		}
		pretty.WriteByte('\n')
		if err := os.WriteFile(out, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("metrics snapshot written to %s", out)
	}
	t.Logf("metrics: %+v", m)

	// Operator stop: SIGTERM must drain and exit 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exit after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain within 60s of SIGTERM")
	}
}
