// Package server is the PPM job server: a long-lived control plane that
// accepts concurrent job submissions over HTTP/JSON, runs them through
// the simulator or a pooled distributed fleet, and returns flattened
// jobspec results. Three subsystems do the work:
//
//   - a bounded priority queue with per-tenant admission quotas and
//     per-job deadlines (queue.go),
//   - a fleet pool that keeps warm serve-mode ppm-node fleets alive
//     between jobs so the plan cache and parked VP workers survive
//     across submissions (pool.go),
//   - a content-addressed result cache keyed by the canonical spec
//     hash, serving bit-identical repeats without running anything
//     (cache.go).
//
// server.go ties them together behind the /v1 endpoints.
package server

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"ppm/internal/jobspec"
)

// ErrQueueFull rejects a submission when the queue is at capacity; the
// HTTP layer maps it to 503 with a Retry-After.
var ErrQueueFull = errors.New("server: queue full")

// QueueFullError is the concrete queue-full rejection: it carries the
// backlog depth and a backlog-proportional Retry-After for the HTTP
// layer. It unwraps to ErrQueueFull so existing errors.Is checks hold.
type QueueFullError struct {
	Queued     int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("server: queue full (%d jobs queued); retry in %v", e.Queued, e.RetryAfter)
}

func (e *QueueFullError) Unwrap() error { return ErrQueueFull }

// ErrQueueClosed rejects submissions after shutdown began.
var ErrQueueClosed = errors.New("server: queue closed (shutting down)")

// QuotaError rejects a submission whose tenant already has its full
// quota of jobs admitted (queued + running); the HTTP layer maps it to
// 429 with Retry-After.
type QuotaError struct {
	Tenant     string
	InFlight   int
	Quota      int
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("server: tenant %q has %d jobs in flight (quota %d); retry in %v",
		e.Tenant, e.InFlight, e.Quota, e.RetryAfter)
}

// Job is one admitted submission. The queue orders jobs by descending
// Priority, FIFO within a priority. Fields under mu are the job's
// observable lifecycle; everything else is immutable after Push.
type Job struct {
	ID       string
	Tenant   string
	Priority int
	NoCache  bool // run even on a cache hit (forces a fresh fleet run)
	Spec     jobspec.Spec
	Hash     string
	Deadline time.Time // zero: no deadline

	seq int64 // admission order, ties FIFO

	mu       sync.Mutex
	status   string // StatusQueued ... StatusExpired
	phases   int64
	attempts int // fleet runs spent on this job (retries included)
	result   *jobspec.Result
	errMsg   string
	doneAt   time.Time     // when the job reached a terminal status
	done     chan struct{} // closed on any terminal status
	subs     []chan int64  // phase-progress subscribers
}

// Job lifecycle states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	StatusExpired = "expired"
)

// NewJob returns a queued job with its lifecycle channel armed.
func NewJob(id string) *Job {
	return &Job{ID: id, status: StatusQueued, done: make(chan struct{})}
}

// Status returns the job's current lifecycle snapshot.
func (j *Job) Status() (status string, phases int64, result *jobspec.Result, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.phases, j.result, j.errMsg
}

// Done returns the channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// noteAttempt counts one fleet run spent on this job.
func (j *Job) noteAttempt() {
	j.mu.Lock()
	j.attempts++
	j.mu.Unlock()
}

// attemptCount reports how many fleet runs the job has consumed.
func (j *Job) attemptCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// setRunning moves a queued job to running; it reports false when the
// job already left the queued state (expired by the janitor).
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	return true
}

// finish moves the job to a terminal state and wakes all waiters. A
// second terminal transition is ignored (janitor expiry can race the
// dispatcher's own deadline check).
func (j *Job) finish(status string, result *jobspec.Result, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusExpired {
		return
	}
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.doneAt = time.Now()
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	close(j.done)
}

// notifyPhase records phase progress and fans it out to stream
// subscribers without blocking the run (slow consumers drop ticks).
func (j *Job) notifyPhase(ph int64) {
	j.mu.Lock()
	j.phases = ph
	subs := j.subs
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ph:
		default:
		}
	}
}

// subscribe registers a phase-progress channel; it is closed when the
// job finishes. A job already terminal returns a closed channel.
func (j *Job) subscribe() chan int64 {
	ch := make(chan int64, 16)
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case StatusDone, StatusFailed, StatusExpired:
		close(ch)
	default:
		j.subs = append(j.subs, ch)
	}
	return ch
}

// unsubscribe drops a subscriber that stopped listening (stream client
// disconnect) so notifyPhase stops poking its dead channel. A channel
// already removed by finish is a no-op.
func (j *Job) unsubscribe(ch chan int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, sub := range j.subs {
		if sub == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// terminalBefore reports whether the job reached a terminal state
// before cutoff; the server's janitor uses it to evict old jobs.
func (j *Job) terminalBefore(cutoff time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.doneAt.IsZero() && j.doneAt.Before(cutoff)
}

// Queue is the bounded priority queue with per-tenant quotas. A
// tenant's quota covers queued plus running jobs: Pop hands a job to a
// worker without releasing the slot, and the dispatcher calls Release
// when the job reaches a terminal state. Pop blocks until a job is
// available or the queue is closed and drained.
type Queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	heap  jobHeap
	max   int
	quota int // per-tenant admitted jobs (queued + running); 0: unlimited

	inFlight map[string]int // tenant -> admitted jobs
	seq      int64
	closed   bool
}

// NewQueue returns a queue holding at most max jobs (0: 64) admitting
// at most quota jobs per tenant (0: unlimited).
func NewQueue(max, quota int) *Queue {
	if max <= 0 {
		max = 64
	}
	q := &Queue{max: max, quota: quota, inFlight: make(map[string]int)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push admits a job or explains the rejection: ErrQueueFull and
// *QuotaError both leave the queue unchanged, so a rejected submission
// is never half-admitted.
func (q *Queue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.heap) >= q.max {
		n := len(q.heap)
		// Advise a retry pause proportional to the backlog, mirroring
		// the quota path below: the fuller the queue, the longer the
		// wait before a slot plausibly opens.
		ra := time.Duration(n) * 500 * time.Millisecond
		if ra < time.Second {
			ra = time.Second
		}
		if ra > 30*time.Second {
			ra = 30 * time.Second
		}
		return &QueueFullError{Queued: n, RetryAfter: ra}
	}
	if q.quota > 0 && q.inFlight[j.Tenant] >= q.quota {
		n := q.inFlight[j.Tenant]
		// Advise a retry pause proportional to the backlog the tenant
		// itself created, bounded to something a client will tolerate.
		ra := time.Duration(n) * 2 * time.Second
		if ra < time.Second {
			ra = time.Second
		}
		if ra > 60*time.Second {
			ra = 60 * time.Second
		}
		return &QuotaError{Tenant: j.Tenant, InFlight: n, Quota: q.quota, RetryAfter: ra}
	}
	q.seq++
	j.seq = q.seq
	q.inFlight[j.Tenant]++
	heap.Push(&q.heap, j)
	q.cond.Signal()
	return nil
}

// Pop blocks until it can return the highest-priority queued job. ok is
// false only when the queue is closed and fully drained. The tenant's
// quota slot stays held until Release.
func (q *Queue) Pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil, false
	}
	return heap.Pop(&q.heap).(*Job), true
}

// Release returns a tenant's quota slot when their job leaves the
// system (terminal state).
func (q *Queue) Release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := q.inFlight[tenant]; n > 1 {
		q.inFlight[tenant] = n - 1
	} else {
		delete(q.inFlight, tenant)
	}
}

// Position reports a job's 1-based position among queued jobs (the
// order Pop would drain them), or 0 when it is not queued.
func (q *Queue) Position(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var target *Job
	for _, j := range q.heap {
		if j.ID == id {
			target = j
			break
		}
	}
	if target == nil {
		return 0
	}
	pos := 1
	for _, j := range q.heap {
		if j != target && jobLess(j, target) {
			pos++
		}
	}
	return pos
}

// Len reports how many jobs are queued (not yet popped).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// InFlight reports every tenant's admitted (queued + running) count.
func (q *Queue) InFlight() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.inFlight))
	for t, n := range q.inFlight {
		out[t] = n
	}
	return out
}

// Expire removes and returns every queued job whose deadline has
// passed. The caller finishes them (and releases their quota slots);
// the queue only forgets them.
func (q *Queue) Expire(now time.Time) []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var expired []*Job
	keep := q.heap[:0]
	for _, j := range q.heap {
		if !j.Deadline.IsZero() && now.After(j.Deadline) {
			expired = append(expired, j)
		} else {
			keep = append(keep, j)
		}
	}
	if len(expired) > 0 {
		q.heap = keep
		heap.Init(&q.heap)
	}
	return expired
}

// Close stops admissions. Pop keeps draining what is already queued and
// then reports done, which is how shutdown lets in-flight work finish.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// jobLess orders a before b: higher priority first, FIFO within one.
func jobLess(a, b *Job) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

// jobHeap implements container/heap over jobLess.
type jobHeap []*Job

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return jobLess(h[i], h[j]) }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
