package server

import (
	"sync"

	"ppm/internal/jobspec"
)

// resultCache is the content-addressed result store: canonical spec
// hash -> flattened result. Two specs with the same hash are the same
// computation (the canonical encoding covers everything that can change
// the output, and the runtime is deterministic), so a hit returns a
// bit-identical result without running anything. Entries are never
// evicted: a result is a few KB and a server's working set of distinct
// specs is small; an operator who needs a bound restarts the server.
type resultCache struct {
	mu     sync.Mutex
	m      map[string]*jobspec.Result
	hits   int64
	misses int64
}

func newResultCache() *resultCache {
	return &resultCache{m: make(map[string]*jobspec.Result)}
}

// get returns the cached result for hash, marked Cached, or nil. The
// returned value is a shallow copy: the Series backing arrays are
// shared but immutable by convention (nothing writes a stored result).
func (c *resultCache) get(hash string) *jobspec.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[hash]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	out := *r
	out.Cached = true
	return &out
}

// put stores a fresh result under its hash. First write wins: a
// concurrent duplicate run produced a bit-identical result anyway.
func (c *resultCache) put(r *jobspec.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[r.Hash]; !ok {
		c.m[r.Hash] = r
	}
}

// stats returns the hit/miss counters and entry count.
func (c *resultCache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.m)
}
