package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ppm/internal/jobspec"
)

// nodeBin is the serve-mode ppm-node binary TestMain builds once for
// the package; dist-backend jobs fork it.
var nodeBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ppm-node-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin := filepath.Join(dir, "ppm-node")
	if out, err := exec.Command("go", "build", "-o", bin, "ppm/cmd/ppm-node").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building ppm-node: %v\n%s", err, out)
	} else {
		nodeBin = bin
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// startServer boots an in-process server and arranges its drain.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	if cfg.NodeBin == "" {
		cfg.NodeBin = nodeBin
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func postJSON(t *testing.T, url string, body any, out any) (code int, retryAfter string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response (status %d): %v", url, resp.StatusCode, err)
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s (status %d): %v", url, resp.StatusCode, err)
	}
	return resp.StatusCode
}

// submit pushes one job, retrying quota rejections (which must carry
// Retry-After) until admitted — the "rejected or queued, never
// dropped" contract from the client's side.
func submit(t *testing.T, base string, req SubmitRequest) SubmitResponse {
	t.Helper()
	for attempt := 0; ; attempt++ {
		var out SubmitResponse
		code, retryAfter := postJSON(t, base+"/v1/jobs", req, &out)
		switch code {
		case http.StatusOK, http.StatusAccepted:
			return out
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if retryAfter == "" {
				t.Fatalf("status %d without Retry-After", code)
			}
			if attempt > 400 {
				t.Fatalf("job never admitted after %d attempts", attempt)
			}
			time.Sleep(25 * time.Millisecond)
		default:
			t.Fatalf("submit returned %d", code)
		}
	}
}

// await polls a job to its terminal state.
func await(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: %d", id, code)
		}
		switch st.Status {
		case StatusDone, StatusFailed, StatusExpired:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// sameSeries asserts bit-identity of the flattened outputs.
func sameSeries(t *testing.T, label string, got, want *jobspec.Result) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: missing result (got %v, want %v)", label, got, want)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%s: series length %d, want %d", label, len(got.Series), len(want.Series))
	}
	for i := range got.Series {
		if math.Float64bits(got.Series[i]) != math.Float64bits(want.Series[i]) {
			t.Fatalf("%s: series[%d] = %v, want %v", label, i, got.Series[i], want.Series[i])
		}
	}
	if len(got.ISeries) != len(want.ISeries) {
		t.Fatalf("%s: iseries length %d, want %d", label, len(got.ISeries), len(want.ISeries))
	}
	for i := range got.ISeries {
		if got.ISeries[i] != want.ISeries[i] {
			t.Fatalf("%s: iseries[%d] = %d, want %d", label, i, got.ISeries[i], want.ISeries[i])
		}
	}
}

// e2eSpecs are the four distinct jobs the end-to-end test submits twice
// (once per tenant): two dist-backend (exercising the fleet pool), two
// local. Parameters are small so the whole test stays in seconds.
func e2eSpecs(t *testing.T) []jobspec.Spec {
	t.Helper()
	raw := []string{
		`{"app":"cg","backend":"dist","nodes":2,"cores":2,"cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`,
		`{"app":"scatter","backend":"dist","nodes":2,"cores":2,"scatter":{"N":400,"VPs":4,"Iters":3,"Seed":7}}`,
		`{"app":"jacobi","backend":"sim","nodes":2,"cores":2,"jacobi":{"NX":8,"NY":8,"NZ":8,"Sweeps":4}}`,
		`{"app":"search","backend":"sim","nodes":2,"cores":2,"search":{"N":4096,"K":256,"Seed":42}}`,
	}
	specs := make([]jobspec.Spec, len(raw))
	for i, r := range raw {
		if err := json.Unmarshal([]byte(r), &specs[i]); err != nil {
			t.Fatal(err)
		}
		specs[i].Normalize()
		if err := specs[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
	return specs
}

// reference runs a spec's computation locally through the simulator —
// the ground truth every serving path must match bit-for-bit.
func reference(t *testing.T, s jobspec.Spec) *jobspec.Result {
	t.Helper()
	local := s
	local.Backend = jobspec.BackendSim
	res, err := jobspec.RunLocal(&local)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServerEndToEnd is the acceptance scenario: 8 concurrent jobs
// across 2 tenants against a tight quota (excess submissions are
// rejected with Retry-After and later admitted — never dropped), every
// result bit-identical to a direct local run, an identical resubmission
// served from the content-addressed cache, and a forced rerun on the
// reused warm fleet showing plan-cache hits.
func TestServerEndToEnd(t *testing.T) {
	s := startServer(t, Config{TenantQuota: 3, MaxQueue: 32, Workers: 2})
	base := "http://" + s.Addr()
	specs := e2eSpecs(t)

	// 8 concurrent submissions: each tenant submits all four specs.
	// Quota 3 < 4 jobs per tenant guarantees some rejections while both
	// workers are busy; submit retries them through to admission.
	type sub struct {
		tenant string
		spec   int
		resp   SubmitResponse
	}
	subs := make([]sub, 0, 8)
	for _, tenant := range []string{"alice", "bob"} {
		for i := range specs {
			subs = append(subs, sub{tenant: tenant, spec: i})
		}
	}
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subs[i].resp = submit(t, base, SubmitRequest{
				Tenant: subs[i].tenant, Priority: i % 3, Spec: specs[subs[i].spec],
			})
		}(i)
	}
	wg.Wait()

	// Every admitted job reaches done with the reference Series.
	for _, sb := range subs {
		st := await(t, base, sb.resp.ID)
		if st.Status != StatusDone {
			t.Fatalf("job %s (%s/%s): status %s, err %q",
				sb.resp.ID, sb.tenant, specs[sb.spec].App, st.Status, st.Error)
		}
		sameSeries(t, fmt.Sprintf("%s/%s", sb.tenant, specs[sb.spec].App), st.Result, reference(t, specs[sb.spec]))
	}

	// The duplicate submissions above (alice and bob submitted the same
	// four specs) mean at least four cache servings happened already;
	// verify an explicit resubmission is a cache hit too.
	again := submit(t, base, SubmitRequest{Tenant: "alice", Spec: specs[0]})
	if again.Status != StatusDone || again.Result == nil || !again.Result.Cached {
		t.Fatalf("resubmission not served from cache: %+v", again)
	}
	sameSeries(t, "cached cg", again.Result, reference(t, specs[0]))

	// The result is addressable by hash directly.
	var byHash jobspec.Result
	if code := getJSON(t, base+"/v1/results/"+again.Hash, &byHash); code != http.StatusOK {
		t.Fatalf("GET /v1/results/%s: %d", again.Hash, code)
	}
	sameSeries(t, "by-hash cg", &byHash, reference(t, specs[0]))

	// no_cache forces a fresh run of an identical dist spec. It lands on
	// the warm fleet parked by the earlier cg jobs, whose plan-cache
	// session was stashed under this very spec hash — so the rerun must
	// replay recorded phase plans (PlanCache.Hits > 0) and still be
	// bit-identical.
	rerun := submit(t, base, SubmitRequest{Tenant: "bob", NoCache: true, Spec: specs[0]})
	st := await(t, base, rerun.ID)
	if st.Status != StatusDone {
		t.Fatalf("no_cache rerun: status %s, err %q", st.Status, st.Error)
	}
	if st.Result.Cached {
		t.Fatal("no_cache rerun was served from the cache")
	}
	if hits := st.Result.Totals.PlanCache.Hits; hits <= 0 {
		t.Fatalf("warm-fleet rerun reports PlanCache.Hits = %d, want > 0", hits)
	}
	sameSeries(t, "warm rerun cg", st.Result, reference(t, specs[0]))

	// The pool must have reused a fleet for the rerun (and the metrics
	// must say so).
	var m Metrics
	if code := getJSON(t, base+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	if m.Fleets.Reused < 1 {
		t.Fatalf("fleet reuse count = %d, want >= 1", m.Fleets.Reused)
	}
	// At minimum the explicit resubmission and the by-hash fetch hit;
	// duplicate pairs that did not run concurrently add more.
	if m.Cache.Hits < 2 {
		t.Fatalf("cache hits = %d, want >= 2", m.Cache.Hits)
	}
	if m.Jobs.Failed != 0 || m.Jobs.Expired != 0 {
		t.Fatalf("unexpected failures in metrics: %+v", m.Jobs)
	}
}

// TestServerStream covers the phase-progress stream: a dist job's
// stream must deliver phase events and a terminal done event.
func TestServerStream(t *testing.T) {
	s := startServer(t, Config{Workers: 1})
	base := "http://" + s.Addr()
	specs := e2eSpecs(t)

	resp := submit(t, base, SubmitRequest{Tenant: "carol", NoCache: true, Spec: specs[0]})
	hr, err := http.Get(base + "/v1/jobs/" + resp.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	buf := make([]byte, 1<<16)
	var all []byte
	for {
		n, err := hr.Body.Read(buf)
		all = append(all, buf[:n]...)
		if err != nil {
			break
		}
		if bytes.Contains(all, []byte("event: done")) {
			break
		}
	}
	if !bytes.Contains(all, []byte("event: done")) {
		t.Fatalf("stream ended without a done event:\n%s", all)
	}
	st := await(t, base, resp.ID)
	if st.Status != StatusDone {
		t.Fatalf("streamed job: status %s, err %q", st.Status, st.Error)
	}
	if st.Phases <= 0 {
		t.Fatalf("job reported %d phases, want > 0", st.Phases)
	}
}

// TestServerDeadlineExpiresQueuedJob occupies the single worker with a
// deliberately heavy cold dist job — hundreds of ms, far beyond both
// the victim's deadline and an HTTP submit round-trip — and queues a
// 1ms-deadline job behind it: the deadline passes while queued, and
// the job must come back expired — not run, not dropped.
func TestServerDeadlineExpiresQueuedJob(t *testing.T) {
	s := startServer(t, Config{Workers: 1})
	base := "http://" + s.Addr()
	specs := e2eSpecs(t)

	var heavy jobspec.Spec
	raw := `{"app":"scatter","backend":"dist","nodes":2,"cores":2,"scatter":{"N":8000,"VPs":8,"Iters":150,"Seed":7}}`
	if err := json.Unmarshal([]byte(raw), &heavy); err != nil {
		t.Fatal(err)
	}
	blocker := submit(t, base, SubmitRequest{Tenant: "dave", NoCache: true, Spec: heavy})
	doomed := specs[2]
	doomed.DeadlineMS = 1
	victim := submit(t, base, SubmitRequest{Tenant: "dave", NoCache: true, Spec: doomed})

	st := await(t, base, victim.ID)
	if st.Status != StatusExpired {
		t.Fatalf("deadline job: status %s (err %q), want expired", st.Status, st.Error)
	}
	if bs := await(t, base, blocker.ID); bs.Status != StatusDone {
		t.Fatalf("blocker: status %s, err %q", bs.Status, bs.Error)
	}
}
