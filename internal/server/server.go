package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ppm/internal/dist"
	"ppm/internal/jobspec"
)

// Config sizes the server. Zero values get serving defaults.
type Config struct {
	// Addr is the TCP listen address (default 127.0.0.1:0; the bound
	// address is available from Addr after Start).
	Addr string
	// NodeBin is the ppm-node binary the fleet pool forks for
	// dist-backend jobs; sim and parallel jobs run in-process and do
	// not need it.
	NodeBin string
	// MaxQueue bounds queued jobs across all tenants (default 64).
	MaxQueue int
	// TenantQuota bounds one tenant's queued+running jobs (default 8;
	// negative: unlimited).
	TenantQuota int
	// Workers is how many jobs run concurrently (default 2).
	Workers int
	// IdleTimeout reaps warm fleets parked longer than this (default
	// 2m).
	IdleTimeout time.Duration
	// JobRetention is how long terminal jobs stay queryable via
	// GET /v1/jobs/{id} before the janitor evicts them (default 10m).
	// Cached results outlive the job record via GET /v1/results/{hash}.
	JobRetention time.Duration
	// MaxJobRetries is how many times a dist job whose fleet died is
	// resubmitted before the job is marked failed (default 2; negative:
	// no retries). The first retry gets a fresh full-size fleet; later
	// retries shrink the fleet by one host process each, so a job can
	// outlive a host that deterministically dies at the same phase.
	MaxJobRetries int
	// RetryBackoff is the base of the exponential retry backoff
	// (default 200ms); each retry waits base<<(attempt-1) plus jitter.
	RetryBackoff time.Duration
	// Stderr receives fleet stderr (default os.Stderr).
	Stderr io.Writer
}

// Server is the PPM job server. Create with New, serve with Start,
// drain with Shutdown.
type Server struct {
	cfg   Config
	q     *Queue
	cache *resultCache
	pool  *pool

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID int64

	ln          net.Listener
	hs          *http.Server
	wg          sync.WaitGroup
	janitorStop chan struct{}

	submitted, completed, failed, expired, cachedServed, running int64
	jobsRetried, recoveriesRescaled                              int64
}

// New builds a server from cfg without binding anything.
func New(cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.TenantQuota == 0 {
		cfg.TenantQuota = 8
	} else if cfg.TenantQuota < 0 {
		cfg.TenantQuota = 0 // queue semantics: 0 is unlimited
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = 10 * time.Minute
	}
	if cfg.MaxJobRetries == 0 {
		cfg.MaxJobRetries = 2
	} else if cfg.MaxJobRetries < 0 {
		cfg.MaxJobRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 200 * time.Millisecond
	}
	return &Server{
		cfg:         cfg,
		q:           NewQueue(cfg.MaxQueue, cfg.TenantQuota),
		cache:       newResultCache(),
		pool:        newPool(cfg.NodeBin, cfg.Stderr),
		jobs:        make(map[string]*Job),
		janitorStop: make(chan struct{}),
	}
}

// Start binds the listener and starts the HTTP loop, the dispatcher
// workers, and the janitor.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.Handler()}
	go s.hs.Serve(ln)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go s.janitor()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown drains: the listener stops accepting, the queue stops
// admitting but keeps handing out what is already queued, and the
// workers finish every admitted job. ctx bounds the drain; on timeout
// the error is returned and whatever is still running is abandoned to
// process exit. Warm fleets are retired either way.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hs != nil {
		s.hs.Shutdown(ctx)
	}
	s.q.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain incomplete: %w", ctx.Err())
	}
	close(s.janitorStop)
	s.pool.closeAll()
	return err
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Tenant   string       `json:"tenant"`
	Priority int          `json:"priority"`
	NoCache  bool         `json:"no_cache,omitempty"`
	Spec     jobspec.Spec `json:"spec"`
}

// SubmitResponse answers a submission: 200 with the result when the
// cache already had it, 202 with a queue position otherwise.
type SubmitResponse struct {
	ID            string          `json:"id"`
	Status        string          `json:"status"`
	Hash          string          `json:"hash"`
	QueuePosition int             `json:"queue_position,omitempty"`
	Result        *jobspec.Result `json:"result,omitempty"`
}

// JobStatus answers GET /v1/jobs/{id}.
type JobStatus struct {
	ID            string          `json:"id"`
	Tenant        string          `json:"tenant"`
	Status        string          `json:"status"`
	Hash          string          `json:"hash"`
	QueuePosition int             `json:"queue_position,omitempty"`
	Phases        int64           `json:"phases"`
	Attempts      int             `json:"attempts"`
	Error         string          `json:"error,omitempty"`
	Result        *jobspec.Result `json:"result,omitempty"`
}

// Metrics answers GET /metrics.
type Metrics struct {
	Jobs struct {
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Expired   int64 `json:"expired"`
		Cached    int64 `json:"cached"`
		Queued    int   `json:"queued"`
		Running   int64 `json:"running"`
		Retried   int64 `json:"jobs_retried"`
	} `json:"jobs"`
	Recoveries struct {
		Rescaled int64 `json:"recoveries_rescaled"`
	} `json:"recoveries"`
	Tenants map[string]int `json:"tenants"`
	Cache   struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Entries int   `json:"entries"`
	} `json:"cache"`
	Fleets struct {
		Spawned   int64 `json:"spawned"`
		Reused    int64 `json:"reused"`
		Reaped    int64 `json:"reaped"`
		Discarded int64 `json:"fleets_discarded"`
		Idle      int   `json:"idle"`
	} `json:"fleets"`
}

// Handler returns the HTTP routing table (exported so tests can drive
// the server through httptest without a real socket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req.Spec.Normalize()
	if err := req.Spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Spec.Backend == jobspec.BackendDist && s.cfg.NodeBin == "" {
		writeErr(w, http.StatusBadRequest, "this server has no ppm-node binary configured; dist jobs unavailable")
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	hash := req.Spec.Hash()
	atomic.AddInt64(&s.submitted, 1)

	if !req.NoCache {
		if res := s.cache.get(hash); res != nil {
			atomic.AddInt64(&s.cachedServed, 1)
			j := s.registerJob(req, hash)
			j.finish(StatusDone, res, "")
			writeJSON(w, http.StatusOK, SubmitResponse{ID: j.ID, Status: StatusDone, Hash: hash, Result: res})
			return
		}
	}

	j := s.registerJob(req, hash)
	if req.Spec.DeadlineMS > 0 {
		j.Deadline = time.Now().Add(time.Duration(req.Spec.DeadlineMS) * time.Millisecond)
	}
	if err := s.q.Push(j); err != nil {
		s.forgetJob(j.ID)
		var qe *QuotaError
		var fe *QueueFullError
		switch {
		case errors.As(err, &qe):
			w.Header().Set("Retry-After", strconv.Itoa(int(qe.RetryAfter.Seconds())))
			writeErr(w, http.StatusTooManyRequests, "%v", err)
		case errors.As(err, &fe):
			// Backlog-proportional, like the quota path: a deeper queue
			// earns the client a longer pause.
			w.Header().Set("Retry-After", strconv.Itoa(int(fe.RetryAfter.Seconds())))
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: j.ID, Status: StatusQueued, Hash: hash, QueuePosition: s.q.Position(j.ID),
	})
}

func (s *Server) registerJob(req SubmitRequest, hash string) *Job {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j := NewJob(id)
	j.Tenant = req.Tenant
	j.Priority = req.Priority
	j.NoCache = req.NoCache
	j.Spec = req.Spec
	j.Hash = hash
	s.jobs[id] = j
	s.mu.Unlock()
	return j
}

func (s *Server) forgetJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	status, phases, result, errMsg := j.Status()
	out := JobStatus{
		ID: j.ID, Tenant: j.Tenant, Status: status, Hash: j.Hash,
		Phases: phases, Attempts: j.attemptCount(), Error: errMsg, Result: result,
	}
	if status == StatusQueued {
		out.QueuePosition = s.q.Position(j.ID)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStream is the phase-progress stream: server-sent events, one
// "phase" event per committed global phase (rank 0's view) and a final
// "done" event carrying the terminal status.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	ch := j.subscribe()
	status, phases, _, _ := j.Status()
	emit("status", map[string]any{"status": status, "phases": phases})
	for {
		select {
		case ph, ok := <-ch:
			if !ok {
				status, phases, _, errMsg := j.Status()
				emit("done", map[string]any{"status": status, "phases": phases, "error": errMsg})
				return
			}
			emit("phase", map[string]int64{"phase": ph})
		case <-r.Context().Done():
			j.unsubscribe(ch)
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res := s.cache.get(r.PathValue("hash"))
	if res == nil {
		writeErr(w, http.StatusNotFound, "no cached result for that hash")
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var m Metrics
	m.Jobs.Submitted = atomic.LoadInt64(&s.submitted)
	m.Jobs.Completed = atomic.LoadInt64(&s.completed)
	m.Jobs.Failed = atomic.LoadInt64(&s.failed)
	m.Jobs.Expired = atomic.LoadInt64(&s.expired)
	m.Jobs.Cached = atomic.LoadInt64(&s.cachedServed)
	m.Jobs.Queued = s.q.Len()
	m.Jobs.Running = atomic.LoadInt64(&s.running)
	m.Jobs.Retried = atomic.LoadInt64(&s.jobsRetried)
	m.Recoveries.Rescaled = atomic.LoadInt64(&s.recoveriesRescaled)
	m.Tenants = s.q.InFlight()
	m.Cache.Hits, m.Cache.Misses, m.Cache.Entries = s.cache.stats()
	m.Fleets.Spawned, m.Fleets.Reused, m.Fleets.Reaped, m.Fleets.Discarded, m.Fleets.Idle = s.pool.stats()
	writeJSON(w, http.StatusOK, m)
}

// worker is one dispatcher loop: pop, run, release the tenant's quota
// slot. Exits when the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.Pop()
		if !ok {
			return
		}
		s.runJob(j)
		s.q.Release(j.Tenant)
	}
}

// runJob drives one popped job to a terminal state.
func (s *Server) runJob(j *Job) {
	if !j.Deadline.IsZero() {
		remain := time.Until(j.Deadline)
		if remain <= 0 {
			atomic.AddInt64(&s.expired, 1)
			j.finish(StatusExpired, nil, "deadline expired while queued")
			return
		}
		// The run itself gets only what is left of the deadline; the
		// node-side engine deadline enforces it with the rank and
		// in-flight operation named.
		if ms := remain.Milliseconds(); ms >= 1 && (j.Spec.DeadlineMS == 0 || ms < j.Spec.DeadlineMS) {
			j.Spec.DeadlineMS = ms
		}
	}
	if !j.setRunning() {
		return // janitor expired it between Pop and here
	}
	atomic.AddInt64(&s.running, 1)
	defer atomic.AddInt64(&s.running, -1)

	// A duplicate may have completed while this one queued.
	if !j.NoCache {
		if res := s.cache.get(j.Hash); res != nil {
			atomic.AddInt64(&s.cachedServed, 1)
			atomic.AddInt64(&s.completed, 1)
			j.finish(StatusDone, res, "")
			return
		}
	}

	var res *jobspec.Result
	var err error
	if j.Spec.Backend == jobspec.BackendDist {
		res, err = s.runDist(j)
	} else {
		res, err = jobspec.RunLocal(&j.Spec)
	}
	if err != nil {
		atomic.AddInt64(&s.failed, 1)
		j.finish(StatusFailed, nil, err.Error())
		return
	}
	s.cache.put(res)
	atomic.AddInt64(&s.completed, 1)
	j.finish(StatusDone, res, "")
}

// runDist runs a dist-backend job, retrying a fleet failure against the
// configured budget with exponential backoff + jitter. Attempt 0 uses
// the warm pool; every retry spawns a fresh fleet (an idle fleet from
// the same era carries attempt-0 fault arming and may be poisoned by
// whatever killed the first run), and retries after the first shrink
// the fleet by one host process each — the same logical node count on
// fewer processes — so a host that deterministically dies at the same
// phase cannot fail the job forever.
func (s *Server) runDist(j *Job) (*jobspec.Result, error) {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.MaxJobRetries; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(&s.jobsRetried, 1)
			d := s.cfg.RetryBackoff << (attempt - 1)
			d += time.Duration(rand.Int63n(int64(d)/2 + 1))
			if !j.Deadline.IsZero() && time.Now().Add(d).After(j.Deadline) {
				break
			}
			time.Sleep(d)
		}
		res, err := s.runDistOnce(j, attempt)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// runDistOnce runs one attempt of a dist job on a pooled or fresh
// fleet. Any failure discards the fleet (a distributed abort poisons
// the engines); success parks it warm for the next job of its shape.
func (s *Server) runDistOnce(j *Job, attempt int) (*jobspec.Result, error) {
	j.noteAttempt()
	procs := j.Spec.Nodes
	if attempt > 1 {
		procs -= attempt - 1
		if procs < 1 {
			procs = 1
		}
	}
	key := fleetKey{nodes: j.Spec.Nodes, procs: procs, cores: j.Spec.Cores, preset: j.Spec.Preset}
	var f *fleet
	var err error
	if attempt == 0 {
		f, _, err = s.pool.acquire(key)
	} else {
		if procs < j.Spec.Nodes {
			atomic.AddInt64(&s.recoveriesRescaled, 1)
		}
		f, err = s.pool.acquireFresh(key, attempt)
	}
	if err != nil {
		return nil, err
	}
	results, err := f.run(j.ID, &j.Spec, j.notifyPhase)
	if err != nil {
		s.pool.discard(f)
		return nil, err
	}
	m, err := dist.Merge(j.Spec.AppSpec(), results)
	if err != nil {
		s.pool.discard(f)
		return nil, err
	}
	s.pool.release(f)
	return jobspec.FromMerged(&j.Spec, m)
}

// janitor expires queued jobs past their deadline, reaps idle fleets,
// and evicts terminal job records past the retention window.
func (s *Server) janitor() {
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-t.C:
			for _, j := range s.q.Expire(now) {
				atomic.AddInt64(&s.expired, 1)
				j.finish(StatusExpired, nil, "deadline expired while queued")
				s.q.Release(j.Tenant)
			}
			s.pool.reap(now.Add(-s.cfg.IdleTimeout))
			s.evictJobs(now.Add(-s.cfg.JobRetention))
		}
	}
}

// evictJobs drops terminal jobs that finished before cutoff so s.jobs
// stays bounded on a long-lived server. Queued and running jobs are
// never touched; their records go terminal first.
func (s *Server) evictJobs(cutoff time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, j := range s.jobs {
		if j.terminalBefore(cutoff) {
			delete(s.jobs, id)
		}
	}
}
