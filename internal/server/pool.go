package server

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"ppm/internal/dist"
	"ppm/internal/jobspec"
)

// fleetKey identifies a reusable fleet shape. Jobs only share a fleet
// when node count, machine preset, and core width all match: the serve
// protocol would run any spec on any fleet of the right node count, but
// keeping shapes apart keeps a fleet's plan-cache session relevant to
// the jobs routed at it.
type fleetKey struct {
	nodes  int
	cores  int
	preset string
}

// nodeProc is one serve-mode ppm-node process of a fleet.
type nodeProc struct {
	cmd     *exec.Cmd
	stdin   io.WriteCloser
	replies chan jobspec.NodeReply // decoded stdout lines; closed on EOF
	dead    chan struct{}          // closed when the process exits
}

// fleet is a connected set of serve-mode node processes. One job runs
// at a time (the pool hands a fleet to exactly one worker); between
// jobs the processes idle with their TCP mesh up and their plan-cache
// sessions parked, which is the whole point of pooling them.
type fleet struct {
	key    fleetKey
	procs  []*nodeProc
	dir    string // rendezvous dir, removed at stop
	served int    // jobs completed on this fleet
	broken bool   // a run errored; the engines may be poisoned
}

// run submits one job to every rank and gathers the per-rank terminal
// replies. Rank 0's phase-progress replies stream through onPhase as
// they arrive. Any rank dying mid-job or replying with an error marks
// the fleet broken; the caller must discard it.
func (f *fleet) run(id string, spec *jobspec.Spec, onPhase func(int64)) ([]dist.NodeResult, error) {
	line, err := json.Marshal(jobspec.NodeJob{ID: id, Spec: *spec})
	if err != nil {
		return nil, fmt.Errorf("server: encoding job %s: %v", id, err)
	}
	line = append(line, '\n')
	for r, p := range f.procs {
		if _, err := p.stdin.Write(line); err != nil {
			f.broken = true
			return nil, fmt.Errorf("server: fleet write to rank %d: %v", r, err)
		}
	}
	results := make([]dist.NodeResult, len(f.procs))
	errs := make([]error, len(f.procs))
	var wg sync.WaitGroup
	for r, p := range f.procs {
		wg.Add(1)
		go func(r int, p *nodeProc) {
			defer wg.Done()
			for rep := range p.replies {
				if rep.ID != id {
					continue // stale line from an aborted predecessor
				}
				if !rep.Done {
					if r == 0 && onPhase != nil {
						onPhase(rep.Phase)
					}
					continue
				}
				if rep.Result == nil {
					errs[r] = fmt.Errorf("rank %d: terminal reply without a result", r)
				} else {
					results[r] = *rep.Result
				}
				return
			}
			errs[r] = fmt.Errorf("rank %d: exited mid-job", r)
		}(r, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			f.broken = true
			return nil, fmt.Errorf("server: fleet failed job %s: %v", id, err)
		}
	}
	for _, res := range results {
		if res.Err != "" {
			f.broken = true
		}
	}
	f.served++
	return results, nil
}

// healthy reports whether every rank is still running.
func (f *fleet) healthy() bool {
	if f.broken {
		return false
	}
	for _, p := range f.procs {
		select {
		case <-p.dead:
			return false
		default:
		}
	}
	return true
}

// stop retires the fleet: closing stdin is the drain signal (serve mode
// exits 0 on EOF); ranks that linger past the grace are killed. Broken
// fleets skip the grace — their engines are wedged or dead already.
func (f *fleet) stop() {
	for _, p := range f.procs {
		p.stdin.Close()
	}
	grace := 5 * time.Second
	if f.broken {
		grace = 100 * time.Millisecond
	}
	deadline := time.Now().Add(grace)
	for _, p := range f.procs {
		select {
		case <-p.dead:
		case <-time.After(time.Until(deadline)):
			p.cmd.Process.Kill()
			<-p.dead
		}
	}
	os.RemoveAll(f.dir)
}

// idleFleet is a pooled fleet with its park timestamp.
type idleFleet struct {
	f     *fleet
	since time.Time
}

// pool keeps warm fleets between jobs. acquire prefers the most
// recently parked fleet of the right shape (its plan cache is most
// likely to still match); release parks a healthy fleet, discard kills
// a broken one; reap retires fleets idle past the configured timeout.
type pool struct {
	nodeBin string
	stderr  io.Writer

	mu     sync.Mutex
	idle   map[fleetKey][]idleFleet
	seq    int
	closed bool

	spawned, reused, reaped, discarded int64
}

func newPool(nodeBin string, stderr io.Writer) *pool {
	if stderr == nil {
		stderr = os.Stderr
	}
	return &pool{nodeBin: nodeBin, stderr: stderr, idle: make(map[fleetKey][]idleFleet)}
}

// acquire returns a warm fleet for key, or spawns one. reused reports
// whether the fleet had served before (the e2e tests assert warm-path
// behavior through it).
func (p *pool) acquire(key fleetKey) (f *fleet, reusedFleet bool, err error) {
	p.mu.Lock()
	for {
		fleets := p.idle[key]
		if len(fleets) == 0 {
			break
		}
		cand := fleets[len(fleets)-1].f
		p.idle[key] = fleets[:len(fleets)-1]
		if !cand.healthy() {
			p.discarded++
			p.mu.Unlock()
			cand.stop()
			p.mu.Lock()
			continue
		}
		p.reused++
		p.mu.Unlock()
		return cand, true, nil
	}
	if p.closed {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("server: pool closed")
	}
	p.seq++
	seq := p.seq
	p.spawned++
	p.mu.Unlock()
	f, err = p.spawn(key, seq)
	return f, false, err
}

// release parks a fleet for reuse; broken or dead fleets are retired
// instead.
func (p *pool) release(f *fleet) {
	if !f.healthy() {
		p.discard(f)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		f.stop()
		return
	}
	p.idle[f.key] = append(p.idle[f.key], idleFleet{f: f, since: time.Now()})
	p.mu.Unlock()
}

// discard retires a fleet without pooling it.
func (p *pool) discard(f *fleet) {
	p.mu.Lock()
	p.discarded++
	p.mu.Unlock()
	f.stop()
}

// reap retires every fleet idle since before cutoff.
func (p *pool) reap(cutoff time.Time) {
	p.mu.Lock()
	var victims []*fleet
	for key, fleets := range p.idle {
		keep := fleets[:0]
		for _, idf := range fleets {
			if idf.since.Before(cutoff) {
				victims = append(victims, idf.f)
			} else {
				keep = append(keep, idf)
			}
		}
		if len(keep) == 0 {
			delete(p.idle, key)
		} else {
			p.idle[key] = keep
		}
	}
	p.reaped += int64(len(victims))
	p.mu.Unlock()
	for _, f := range victims {
		f.stop()
	}
}

// closeAll drains every idle fleet and refuses new spawns. Fleets
// currently running jobs are retired by their workers via release.
func (p *pool) closeAll() {
	p.mu.Lock()
	p.closed = true
	var victims []*fleet
	for _, fleets := range p.idle {
		for _, idf := range fleets {
			victims = append(victims, idf.f)
		}
	}
	p.idle = make(map[fleetKey][]idleFleet)
	p.mu.Unlock()
	for _, f := range victims {
		f.stop()
	}
}

// stats snapshots the pool counters and current idle fleet count.
func (p *pool) stats() (spawned, reused, reaped, discarded int64, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fleets := range p.idle {
		idle += len(fleets)
	}
	return p.spawned, p.reused, p.reaped, p.discarded, idle
}

// spawn forks and connects one serve-mode fleet.
func (p *pool) spawn(key fleetKey, seq int) (*fleet, error) {
	dir, err := os.MkdirTemp("", "ppm-serve-")
	if err != nil {
		return nil, fmt.Errorf("server: rendezvous dir: %w", err)
	}
	runID := fmt.Sprintf("serve-%d-%d", os.Getpid(), seq)
	f := &fleet{key: key, dir: dir}
	for r := 0; r < key.nodes; r++ {
		cmd := exec.Command(p.nodeBin,
			"-serve",
			"-rank", strconv.Itoa(r),
			"-nodes", strconv.Itoa(key.nodes),
			"-rendezvous", dir,
			"-run-id", runID,
		)
		stdin, err := cmd.StdinPipe()
		if err == nil {
			var stdout io.ReadCloser
			stdout, err = cmd.StdoutPipe()
			if err == nil {
				cmd.Stderr = p.stderr
				if err = cmd.Start(); err == nil {
					proc := &nodeProc{
						cmd:   cmd,
						stdin: stdin,
						// Buffered so a fleet killed mid-job cannot wedge
						// its reader goroutine on a send nobody drains.
						replies: make(chan jobspec.NodeReply, 1024),
						dead:    make(chan struct{}),
					}
					go func() {
						dec := json.NewDecoder(stdout)
						for {
							var rep jobspec.NodeReply
							if err := dec.Decode(&rep); err != nil {
								close(proc.replies)
								return
							}
							proc.replies <- rep
						}
					}()
					go func() {
						cmd.Wait()
						close(proc.dead)
					}()
					f.procs = append(f.procs, proc)
					continue
				}
			}
		}
		f.broken = true
		f.stop()
		return nil, fmt.Errorf("server: spawning rank %d of fleet %v: %v", r, key, err)
	}
	return f, nil
}
