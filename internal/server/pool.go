package server

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"ppm/internal/dist"
	"ppm/internal/jobspec"
	"ppm/internal/partition"
)

// fleetKey identifies a reusable fleet shape. Jobs only share a fleet
// when node count, host-process count, machine preset, and core width
// all match: the serve protocol would run any spec on any fleet of the
// right node count, but keeping shapes apart keeps a fleet's plan-cache
// session relevant to the jobs routed at it. procs < nodes is a
// rescaled fleet — fewer processes block-hosting the same logical mesh
// — used by job retries after a fleet death.
type fleetKey struct {
	nodes  int
	procs  int
	cores  int
	preset string
}

// nodeProc is one serve-mode ppm-node process of a fleet, hosting one
// or more logical ranks.
type nodeProc struct {
	cmd     *exec.Cmd
	stdin   io.WriteCloser
	ranks   []int                  // logical ranks this process hosts
	replies chan jobspec.NodeReply // decoded stdout lines; closed on EOF
	dead    chan struct{}          // closed when the process exits
}

// fleet is a connected set of serve-mode node processes. One job runs
// at a time (the pool hands a fleet to exactly one worker); between
// jobs the processes idle with their TCP mesh up and their plan-cache
// sessions parked, which is the whole point of pooling them.
type fleet struct {
	key    fleetKey
	procs  []*nodeProc
	dir    string // rendezvous dir, removed at stop
	served int    // jobs completed on this fleet
	broken bool   // a run errored; the engines may be poisoned
}

// run submits one job to every host process and gathers one terminal
// reply per hosted rank, routed by the reported Result.Rank. Rank 0's
// phase-progress replies (host 0 hosts it) stream through onPhase as
// they arrive. Any host dying mid-job or replying with an error marks
// the fleet broken; the caller must discard it.
func (f *fleet) run(id string, spec *jobspec.Spec, onPhase func(int64)) ([]dist.NodeResult, error) {
	line, err := json.Marshal(jobspec.NodeJob{ID: id, Spec: *spec})
	if err != nil {
		return nil, fmt.Errorf("server: encoding job %s: %v", id, err)
	}
	line = append(line, '\n')
	for pi, p := range f.procs {
		if _, err := p.stdin.Write(line); err != nil {
			f.broken = true
			return nil, fmt.Errorf("server: fleet write to host %d: %v", pi, err)
		}
	}
	results := make([]dist.NodeResult, f.key.nodes)
	errs := make([]error, len(f.procs))
	var wg sync.WaitGroup
	for pi, p := range f.procs {
		wg.Add(1)
		go func(pi int, p *nodeProc) {
			defer wg.Done()
			got := 0
			for rep := range p.replies {
				if rep.ID != id {
					continue // stale line from an aborted predecessor
				}
				if !rep.Done {
					if pi == 0 && onPhase != nil {
						onPhase(rep.Phase)
					}
					continue
				}
				if rep.Result == nil {
					errs[pi] = fmt.Errorf("host %d: terminal reply without a result", pi)
					return
				}
				r := rep.Result.Rank
				if r < 0 || r >= len(results) {
					errs[pi] = fmt.Errorf("host %d: terminal reply for unknown rank %d", pi, r)
					return
				}
				results[r] = *rep.Result
				if got++; got == len(p.ranks) {
					return
				}
			}
			errs[pi] = fmt.Errorf("host %d (ranks %v): exited mid-job", pi, p.ranks)
		}(pi, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			f.broken = true
			return nil, fmt.Errorf("server: fleet failed job %s: %v", id, err)
		}
	}
	for _, res := range results {
		if res.Err != "" {
			f.broken = true
		}
	}
	f.served++
	return results, nil
}

// healthy reports whether every rank is still running.
func (f *fleet) healthy() bool {
	if f.broken {
		return false
	}
	for _, p := range f.procs {
		select {
		case <-p.dead:
			return false
		default:
		}
	}
	return true
}

// stop retires the fleet: closing stdin is the drain signal (serve mode
// exits 0 on EOF); ranks that linger past the grace are killed. Broken
// fleets skip the grace — their engines are wedged or dead already.
func (f *fleet) stop() {
	for _, p := range f.procs {
		p.stdin.Close()
	}
	grace := 5 * time.Second
	if f.broken {
		grace = 100 * time.Millisecond
	}
	deadline := time.Now().Add(grace)
	for _, p := range f.procs {
		select {
		case <-p.dead:
		case <-time.After(time.Until(deadline)):
			p.cmd.Process.Kill()
			<-p.dead
		}
	}
	os.RemoveAll(f.dir)
}

// idleFleet is a pooled fleet with its park timestamp.
type idleFleet struct {
	f     *fleet
	since time.Time
}

// pool keeps warm fleets between jobs. acquire prefers the most
// recently parked fleet of the right shape (its plan cache is most
// likely to still match); release parks a healthy fleet, discard kills
// a broken one; reap retires fleets idle past the configured timeout.
type pool struct {
	nodeBin string
	stderr  io.Writer

	mu     sync.Mutex
	idle   map[fleetKey][]idleFleet
	seq    int
	closed bool

	spawned, reused, reaped, discarded int64
}

func newPool(nodeBin string, stderr io.Writer) *pool {
	if stderr == nil {
		stderr = os.Stderr
	}
	return &pool{nodeBin: nodeBin, stderr: stderr, idle: make(map[fleetKey][]idleFleet)}
}

// acquire returns a warm fleet for key, or spawns one. reused reports
// whether the fleet had served before (the e2e tests assert warm-path
// behavior through it).
func (p *pool) acquire(key fleetKey) (f *fleet, reusedFleet bool, err error) {
	p.mu.Lock()
	for {
		fleets := p.idle[key]
		if len(fleets) == 0 {
			break
		}
		cand := fleets[len(fleets)-1].f
		p.idle[key] = fleets[:len(fleets)-1]
		if !cand.healthy() {
			p.discarded++
			p.mu.Unlock()
			cand.stop()
			p.mu.Lock()
			continue
		}
		p.reused++
		p.mu.Unlock()
		return cand, true, nil
	}
	if p.closed {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("server: pool closed")
	}
	p.seq++
	seq := p.seq
	p.spawned++
	p.mu.Unlock()
	f, err = p.spawn(key, seq, 0)
	return f, false, err
}

// acquireFresh always spawns a new fleet, bypassing the warm pool, with
// the given launch attempt in the children's PPM_FAULT_ATTEMPT. Job
// retries use it: an idle fleet was spawned as attempt 0 and may be
// armed with (or already poisoned by) the one-shot fault that killed
// the first run.
func (p *pool) acquireFresh(key fleetKey, attempt int) (*fleet, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("server: pool closed")
	}
	p.seq++
	seq := p.seq
	p.spawned++
	p.mu.Unlock()
	return p.spawn(key, seq, attempt)
}

// release parks a fleet for reuse; broken or dead fleets are retired
// instead.
func (p *pool) release(f *fleet) {
	if !f.healthy() {
		p.discard(f)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		f.stop()
		return
	}
	p.idle[f.key] = append(p.idle[f.key], idleFleet{f: f, since: time.Now()})
	p.mu.Unlock()
}

// discard retires a fleet without pooling it.
func (p *pool) discard(f *fleet) {
	p.mu.Lock()
	p.discarded++
	p.mu.Unlock()
	f.stop()
}

// reap retires every fleet idle since before cutoff.
func (p *pool) reap(cutoff time.Time) {
	p.mu.Lock()
	var victims []*fleet
	for key, fleets := range p.idle {
		keep := fleets[:0]
		for _, idf := range fleets {
			if idf.since.Before(cutoff) {
				victims = append(victims, idf.f)
			} else {
				keep = append(keep, idf)
			}
		}
		if len(keep) == 0 {
			delete(p.idle, key)
		} else {
			p.idle[key] = keep
		}
	}
	p.reaped += int64(len(victims))
	p.mu.Unlock()
	for _, f := range victims {
		f.stop()
	}
}

// closeAll drains every idle fleet and refuses new spawns. Fleets
// currently running jobs are retired by their workers via release.
func (p *pool) closeAll() {
	p.mu.Lock()
	p.closed = true
	var victims []*fleet
	for _, fleets := range p.idle {
		for _, idf := range fleets {
			victims = append(victims, idf.f)
		}
	}
	p.idle = make(map[fleetKey][]idleFleet)
	p.mu.Unlock()
	for _, f := range victims {
		f.stop()
	}
}

// stats snapshots the pool counters and current idle fleet count.
func (p *pool) stats() (spawned, reused, reaped, discarded int64, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fleets := range p.idle {
		idle += len(fleets)
	}
	return p.spawned, p.reused, p.reaped, p.discarded, idle
}

// spawn forks and connects one serve-mode fleet of key.procs host
// processes (key.procs < key.nodes block-hosts several logical ranks
// per process). attempt is passed to the children as PPM_FAULT_ATTEMPT
// so one-shot injected faults arm only on a job's first fleet.
func (p *pool) spawn(key fleetKey, seq, attempt int) (*fleet, error) {
	dir, err := os.MkdirTemp("", "ppm-serve-")
	if err != nil {
		return nil, fmt.Errorf("server: rendezvous dir: %w", err)
	}
	runID := fmt.Sprintf("serve-%d-%d", os.Getpid(), seq)
	f := &fleet{key: key, dir: dir}
	procs := key.procs
	if procs <= 0 || procs > key.nodes {
		procs = key.nodes
	}
	hosts := partition.NewBlock(key.nodes, procs)
	for pi := 0; pi < procs; pi++ {
		lo, hi := hosts.Range(pi)
		args := []string{
			"-serve",
			"-rank", strconv.Itoa(lo),
			"-nodes", strconv.Itoa(key.nodes),
			"-rendezvous", dir,
			"-run-id", runID,
		}
		if procs < key.nodes {
			args = append(args, "-procs", strconv.Itoa(procs), "-proc", strconv.Itoa(pi))
		}
		cmd := exec.Command(p.nodeBin, args...)
		cmd.Env = append(os.Environ(), fmt.Sprintf("PPM_FAULT_ATTEMPT=%d", attempt))
		stdin, err := cmd.StdinPipe()
		if err == nil {
			var stdout io.ReadCloser
			stdout, err = cmd.StdoutPipe()
			if err == nil {
				cmd.Stderr = p.stderr
				if err = cmd.Start(); err == nil {
					ranks := make([]int, 0, hi-lo)
					for r := lo; r < hi; r++ {
						ranks = append(ranks, r)
					}
					proc := &nodeProc{
						cmd:   cmd,
						stdin: stdin,
						ranks: ranks,
						// Buffered so a fleet killed mid-job cannot wedge
						// its reader goroutine on a send nobody drains.
						replies: make(chan jobspec.NodeReply, 1024),
						dead:    make(chan struct{}),
					}
					go func() {
						dec := json.NewDecoder(stdout)
						for {
							var rep jobspec.NodeReply
							if err := dec.Decode(&rep); err != nil {
								close(proc.replies)
								return
							}
							proc.replies <- rep
						}
					}()
					go func() {
						cmd.Wait()
						close(proc.dead)
					}()
					f.procs = append(f.procs, proc)
					continue
				}
			}
		}
		f.broken = true
		f.stop()
		return nil, fmt.Errorf("server: spawning host %d of fleet %v: %v", pi, key, err)
	}
	return f, nil
}
