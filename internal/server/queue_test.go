package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func qjob(id, tenant string, prio int) *Job {
	j := NewJob(id)
	j.Tenant = tenant
	j.Priority = prio
	return j
}

// Pop must drain by descending priority, FIFO within one.
func TestQueuePriorityOrder(t *testing.T) {
	q := NewQueue(16, 0)
	for i, p := range []int{0, 5, 1, 5, -2, 3} {
		if err := q.Push(qjob(fmt.Sprintf("j%d", i), "t", p)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"j1", "j3", "j5", "j2", "j0", "j4"}
	for _, id := range want {
		j, ok := q.Pop()
		if !ok || j.ID != id {
			t.Fatalf("popped %v (ok=%v), want %s", j, ok, id)
		}
	}
}

// A tenant at quota is rejected with a Retry-After; releasing a slot
// readmits them. Other tenants are unaffected.
func TestQueueTenantQuota(t *testing.T) {
	q := NewQueue(16, 2)
	if err := q.Push(qjob("a1", "alice", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(qjob("a2", "alice", 0)); err != nil {
		t.Fatal(err)
	}
	err := q.Push(qjob("a3", "alice", 0))
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("third push: %v, want QuotaError", err)
	}
	if qe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", qe.RetryAfter)
	}
	if qe.InFlight != 2 || qe.Quota != 2 {
		t.Fatalf("QuotaError = %+v", qe)
	}
	// Bob is not throttled by Alice's backlog.
	if err := q.Push(qjob("b1", "bob", 0)); err != nil {
		t.Fatal(err)
	}
	// The quota covers queued + running: popping alone frees nothing.
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.Push(qjob("a4", "alice", 0)); !errors.As(err, &qe) {
		t.Fatalf("popped-but-not-released push: %v, want QuotaError", err)
	}
	q.Release("alice")
	if err := q.Push(qjob("a5", "alice", 0)); err != nil {
		t.Fatalf("post-release push: %v", err)
	}
}

// The queue bound rejects cleanly and never half-admits.
func TestQueueFull(t *testing.T) {
	q := NewQueue(2, 0)
	q.Push(qjob("1", "t", 0))
	q.Push(qjob("2", "t", 0))
	if err := q.Push(qjob("3", "t", 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push: %v, want ErrQueueFull", err)
	}
	if got := q.InFlight()["t"]; got != 2 {
		t.Fatalf("rejected push leaked a quota slot: inFlight = %d", got)
	}
}

// Expire removes exactly the deadline-passed jobs, preserving heap
// order among the survivors.
func TestQueueDeadlineExpiryWhileQueued(t *testing.T) {
	q := NewQueue(16, 0)
	now := time.Now()
	late := qjob("late", "t", 9)
	late.Deadline = now.Add(-time.Second)
	ok1 := qjob("ok1", "t", 5)
	ok1.Deadline = now.Add(time.Hour)
	ok2 := qjob("ok2", "t", 7) // no deadline
	for _, j := range []*Job{late, ok1, ok2} {
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	expired := q.Expire(now)
	if len(expired) != 1 || expired[0].ID != "late" {
		t.Fatalf("expired = %v, want [late]", expired)
	}
	if j, _ := q.Pop(); j.ID != "ok2" {
		t.Fatalf("first survivor = %s, want ok2", j.ID)
	}
	if j, _ := q.Pop(); j.ID != "ok1" {
		t.Fatalf("second survivor = %s, want ok1", j.ID)
	}
}

// Position reports drain order among queued jobs.
func TestQueuePosition(t *testing.T) {
	q := NewQueue(16, 0)
	q.Push(qjob("lo", "t", 0))
	q.Push(qjob("hi", "t", 9))
	q.Push(qjob("mid", "t", 5))
	for id, want := range map[string]int{"hi": 1, "mid": 2, "lo": 3, "ghost": 0} {
		if got := q.Position(id); got != want {
			t.Errorf("Position(%s) = %d, want %d", id, got, want)
		}
	}
}

// Seeded concurrent stress: producers hammer Push across tenants while
// workers Pop; under -race this doubles as the data-race check. Every
// admitted job must be popped exactly once — none lost, none duplicated
// — and quota rejections must always be retryable to completion.
func TestQueueConcurrentStress(t *testing.T) {
	const (
		tenants   = 2
		producers = 4
		perProd   = 50
		workers   = 3
		quota     = 8
	)
	q := NewQueue(tenants*producers*perProd, quota)

	var popped sync.Map // id -> pop count
	var done sync.WaitGroup
	for w := 0; w < workers; w++ {
		done.Add(1)
		go func() {
			defer done.Done()
			for {
				j, ok := q.Pop()
				if !ok {
					return
				}
				n, _ := popped.LoadOrStore(j.ID, new(int))
				*(n.(*int))++
				// Simulate a short run before releasing the quota slot.
				time.Sleep(time.Duration(j.Priority%3) * 100 * time.Microsecond)
				q.Release(j.Tenant)
			}
		}()
	}

	var prod sync.WaitGroup
	for p := 0; p < producers; p++ {
		prod.Add(1)
		go func(p int) {
			defer prod.Done()
			rng := rand.New(rand.NewSource(int64(1000 + p)))
			for i := 0; i < perProd; i++ {
				j := qjob(fmt.Sprintf("p%d-%d", p, i), fmt.Sprintf("tenant%d", p%tenants), rng.Intn(10))
				for {
					err := q.Push(j)
					if err == nil {
						break
					}
					var qe *QuotaError
					if !errors.As(err, &qe) {
						t.Errorf("push %s: %v", j.ID, err)
						return
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(p)
	}
	prod.Wait()
	q.Close()
	done.Wait()

	got := 0
	popped.Range(func(_, v any) bool {
		if *(v.(*int)) != 1 {
			t.Errorf("a job popped %d times", *(v.(*int)))
		}
		got++
		return true
	})
	if want := producers * perProd; got != want {
		t.Fatalf("popped %d distinct jobs, want %d", got, want)
	}
	if fl := q.InFlight(); len(fl) != 0 {
		t.Fatalf("quota slots leaked: %v", fl)
	}
}

// A subscriber whose client went away must be removable so notifyPhase
// stops fanning out to it; channels finish already closed stay closed.
func TestJobUnsubscribe(t *testing.T) {
	j := NewJob("j1")
	a := j.subscribe()
	b := j.subscribe()
	j.unsubscribe(a)
	j.notifyPhase(7)
	select {
	case ph := <-b:
		if ph != 7 {
			t.Fatalf("subscriber got phase %d, want 7", ph)
		}
	default:
		t.Fatal("remaining subscriber missed the phase notification")
	}
	select {
	case <-a:
		t.Fatal("unsubscribed channel still receives")
	default:
	}
	j.finish(StatusDone, nil, "")
	if _, open := <-b; open {
		t.Fatal("finish did not close the remaining subscriber")
	}
	j.unsubscribe(b) // after finish: must be a harmless no-op
}

// Terminal jobs age out of the server's job map; live ones never do.
func TestServerEvictsTerminalJobs(t *testing.T) {
	s := New(Config{})
	done := s.registerJob(SubmitRequest{Tenant: "t"}, "h1")
	done.finish(StatusDone, nil, "")
	live := s.registerJob(SubmitRequest{Tenant: "t"}, "h2")
	if !done.terminalBefore(time.Now().Add(time.Second)) {
		t.Fatal("finished job not reported terminal")
	}
	if live.terminalBefore(time.Now().Add(time.Second)) {
		t.Fatal("queued job reported terminal")
	}
	s.evictJobs(time.Now().Add(time.Second))
	if s.lookup(done.ID) != nil {
		t.Fatal("terminal job survived eviction past retention")
	}
	if s.lookup(live.ID) == nil {
		t.Fatal("live job was evicted")
	}
}

// The queue-full rejection advises a pause proportional to the backlog
// — mirroring the quota path — clamped to [1s, 30s]. It was once a
// hardcoded 5 seconds regardless of depth.
func TestQueueFullRetryAfterProportional(t *testing.T) {
	for _, tc := range []struct {
		max  int
		want time.Duration
	}{
		{1, time.Second},        // 1 × 500ms clamps up to the 1s floor
		{4, 2 * time.Second},    // 4 × 500ms
		{16, 8 * time.Second},   // 16 × 500ms
		{100, 30 * time.Second}, // 100 × 500ms clamps down to the 30s cap
	} {
		q := NewQueue(tc.max, 0)
		for i := 0; i < tc.max; i++ {
			if err := q.Push(qjob(fmt.Sprintf("j%d", i), "t", 0)); err != nil {
				t.Fatal(err)
			}
		}
		err := q.Push(qjob("over", "t", 0))
		var fe *QueueFullError
		if !errors.As(err, &fe) {
			t.Fatalf("max=%d: push = %v, want QueueFullError", tc.max, err)
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Errorf("max=%d: QueueFullError does not unwrap to ErrQueueFull", tc.max)
		}
		if fe.Queued != tc.max {
			t.Errorf("max=%d: Queued = %d", tc.max, fe.Queued)
		}
		if fe.RetryAfter != tc.want {
			t.Errorf("max=%d: RetryAfter = %v, want %v", tc.max, fe.RetryAfter, tc.want)
		}
	}
}
