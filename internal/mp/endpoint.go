package mp

import (
	"fmt"
	"reflect"
	"unsafe"

	"ppm/internal/cluster"
)

// Endpoint is the transport a Comm runs on. The simulator's cluster.Proc
// is the canonical implementation; the distributed runtime provides a
// TCP-backed one, so the same collective algorithms (and therefore the
// same combination orders and bit-exact results) execute over real
// sockets.
type Endpoint interface {
	Rank() int
	Procs() int
	// Send delivers payload to dst under tag; sends are eager and never
	// block. bytes is the modeled (and, over TCP, actual) payload size.
	Send(dst, tag int, payload any, bytes int)
	// Recv blocks until a message matching (src, tag) — wildcards
	// allowed — is available, and returns it in global arrival order.
	Recv(src, tag int) *cluster.Message
	// ChargeFlops accounts reduction arithmetic (a no-op off-simulator).
	ChargeFlops(n int64)
}

// RawPayload marks a payload as undecoded wire bytes (native element
// order). Transports that move real bytes deliver it; the typed Recv
// path decodes it into the expected element type.
type RawPayload []byte

// payloadAs decodes a received payload as []T: either the in-simulator
// reference-passed slice, or raw transport bytes copied into a fresh,
// properly aligned slice.
func payloadAs[T Elem](who string, m *cluster.Message) []T {
	switch p := m.Payload.(type) {
	case nil:
		return nil
	case []T:
		return p
	case RawPayload:
		es := SizeOf[T]()
		if len(p)%es != 0 {
			panic(fmt.Sprintf("mp: %s: raw payload of %d bytes is not a whole number of %d-byte elements", who, len(p), es))
		}
		out := make([]T, len(p)/es)
		if len(out) > 0 {
			copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), len(p)), p)
		}
		return out
	default:
		var want []T
		panic(fmt.Sprintf("mp: %s: payload is %T, not %T", who, m.Payload, want))
	}
}

// AppendElems appends the native-order byte image of s to buf. The
// element bytes are written with a byte copy, so buf need not be aligned.
func AppendElems[T Elem](buf []byte, s []T) []byte {
	if len(s) == 0 {
		return buf
	}
	es := SizeOf[T]()
	return append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*es)...)
}

// DecodeElemsInto copies raw native-order bytes over dst, which must be
// exactly len(dst)*sizeof(T) bytes worth. raw may be unaligned.
func DecodeElemsInto[T Elem](dst []T, raw []byte) {
	es := SizeOf[T]()
	if len(raw) != len(dst)*es {
		panic(fmt.Sprintf("mp: DecodeElemsInto: %d raw bytes for %d elements of %d bytes", len(raw), len(dst), es))
	}
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(raw)), raw)
}

// MarshalPayload renders an mp payload as native-order bytes for a real
// transport. It handles every slice type the Elem constraint admits
// (including named types, via the reflection-free unsafe view: all Elem
// instantiations are fixed-size numerics). isNil preserves the nil/empty
// distinction that token messages rely on.
func MarshalPayload(payload any) (data []byte, isNil bool) {
	switch p := payload.(type) {
	case nil:
		return nil, true
	case RawPayload:
		return p, false
	case []float64:
		return AppendElems(nil, p), false
	case []float32:
		return AppendElems(nil, p), false
	case []int64:
		return AppendElems(nil, p), false
	case []int32:
		return AppendElems(nil, p), false
	case []int:
		return AppendElems(nil, p), false
	case []uint64:
		return AppendElems(nil, p), false
	case []uint8:
		return AppendElems(nil, p), false
	default:
		// Named Elem types (~float64 etc.) land here; their memory layout
		// is the underlying numeric's.
		rv := reflect.ValueOf(payload)
		if rv.Kind() != reflect.Slice {
			panic(fmt.Sprintf("mp: cannot marshal payload of type %T for a byte transport", payload))
		}
		switch rv.Type().Elem().Kind() {
		case reflect.Float64, reflect.Float32, reflect.Int64, reflect.Int32,
			reflect.Int, reflect.Uint64, reflect.Uint8:
		default:
			panic(fmt.Sprintf("mp: cannot marshal payload of type %T for a byte transport", payload))
		}
		n := rv.Len() * int(rv.Type().Elem().Size())
		if n == 0 {
			return []byte{}, false
		}
		return append([]byte(nil), unsafe.Slice((*byte)(rv.UnsafePointer()), n)...), false
	}
}
