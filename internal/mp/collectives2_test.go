package mp

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ppm/internal/cluster"
	"ppm/internal/machine"
)

func TestScattervAllSizes(t *testing.T) {
	for _, p := range sizes {
		root := p / 3
		runAll(t, p, func(c *Comm) {
			counts := make([]int, p)
			var data []int64
			if c.Rank() == root {
				for r := 0; r < p; r++ {
					counts[r] = r%2 + 1
					for i := 0; i < counts[r]; i++ {
						data = append(data, int64(r*100+i))
					}
				}
			} else {
				for r := 0; r < p; r++ {
					counts[r] = r%2 + 1
				}
			}
			got := Scatterv(c, root, data, counts)
			want := make([]int64, counts[c.Rank()])
			for i := range want {
				want[i] = int64(c.Rank()*100 + i)
			}
			if !reflect.DeepEqual(got, want) {
				panic(fmt.Sprintf("rank %d: scatterv got %v want %v", c.Rank(), got, want))
			}
		})
	}
}

func TestScatterFixed(t *testing.T) {
	for _, p := range sizes {
		runAll(t, p, func(c *Comm) {
			var data []float64
			if c.Rank() == 0 {
				for i := 0; i < 3*p; i++ {
					data = append(data, float64(i))
				}
			}
			got := Scatter(c, 0, data)
			if len(got) != 3 {
				panic(fmt.Sprintf("rank %d got %d elements", c.Rank(), len(got)))
			}
			for i, v := range got {
				if v != float64(3*c.Rank()+i) {
					panic(fmt.Sprintf("rank %d: got[%d] = %v", c.Rank(), i, v))
				}
			}
		})
	}
}

func TestScatterIndivisiblePanics(t *testing.T) {
	_, err := cluster.Run(cluster.Config{Procs: 3, ProcsPerNode: 1, Machine: machine.Generic()},
		func(proc *cluster.Proc) {
			c := New(proc)
			var data []int64
			if c.Rank() == 0 {
				data = make([]int64, 4) // 4 % 3 != 0
			}
			Scatter(c, 0, data)
		})
	if err == nil || !strings.Contains(err.Error(), "not divisible") {
		t.Errorf("expected divisibility error, got %v", err)
	}
}

func TestGathervScattervRoundTrip(t *testing.T) {
	runAll(t, 5, func(c *Comm) {
		counts := []int{2, 1, 3, 1, 2}
		mine := make([]int, counts[c.Rank()])
		for i := range mine {
			mine[i] = c.Rank()*10 + i
		}
		full := Gatherv(c, 0, mine, counts)
		back := Scatterv(c, 0, full, counts)
		if !reflect.DeepEqual(back, mine) {
			panic(fmt.Sprintf("rank %d: round trip %v != %v", c.Rank(), back, mine))
		}
	})
}

func TestReduceScatter(t *testing.T) {
	for _, p := range sizes {
		runAll(t, p, func(c *Comm) {
			// counts: one element per rank from a vector of length p.
			counts := make([]int, p)
			for i := range counts {
				counts[i] = 1
			}
			data := make([]int64, p)
			for i := range data {
				data[i] = int64(c.Rank() + i)
			}
			got := ReduceScatter(c, data, counts, func(a, b int64) int64 { return a + b })
			// sum over ranks of (rank + i) at i = my rank.
			want := int64(p*(p-1)/2 + p*c.Rank())
			if len(got) != 1 || got[0] != want {
				panic(fmt.Sprintf("rank %d: reduce-scatter got %v want %d", c.Rank(), got, want))
			}
		})
	}
}

func TestScanSum(t *testing.T) {
	for _, p := range sizes {
		runAll(t, p, func(c *Comm) {
			got := ScanSum(c, []int64{int64(c.Rank() + 1), 1})
			r := int64(c.Rank())
			if got[0] != (r+1)*(r+2)/2 || got[1] != r+1 {
				panic(fmt.Sprintf("rank %d: scan got %v", c.Rank(), got))
			}
		})
	}
}

func TestScattervBadCountsPanics(t *testing.T) {
	_, err := cluster.Run(cluster.Config{Procs: 2, ProcsPerNode: 1, Machine: machine.Generic()},
		func(proc *cluster.Proc) {
			c := New(proc)
			Scatterv(c, 0, []int64{1}, []int{1}) // counts too short
		})
	if err == nil || !strings.Contains(err.Error(), "counts has") {
		t.Errorf("expected counts error, got %v", err)
	}
}
