// Package mp is the message-passing layer of the reproduction: an
// MPI-flavored API (ranks, tags, blocking point-to-point operations, and
// the usual collectives) implemented on the cluster simulator.
//
// The paper's baselines are MPI programs and its PPM runtime "runs on top
// of an existing network communication software layer (e.g. MPI)"; mp is
// that layer here. Collectives are built from point-to-point messages
// with textbook algorithms (binomial trees, recursive doubling, ring and
// pairwise exchanges) so that their virtual-time cost emerges from the
// machine model rather than being asserted.
//
// Payloads travel by reference — the simulator shares one address space —
// but every operation charges the modeled size of the data it would have
// moved, and callers must treat received slices as owned by the sender
// unless documented otherwise.
package mp

import (
	"fmt"
	"unsafe"

	"ppm/internal/cluster"
)

// Wildcards re-exported for convenience.
const (
	AnySource = cluster.AnySource
	AnyTag    = cluster.AnyTag
)

// Collective operations use tags at and above tagReserved; user
// point-to-point traffic must stay below it.
const tagReserved = 1 << 24

// Elem constrains the element types the typed helpers and collectives
// accept. Fixed-size numeric types keep modeled byte counts honest.
type Elem interface {
	~float64 | ~float32 | ~int64 | ~int32 | ~int | ~uint64 | ~uint8
}

// SizeOf returns the in-memory (and modeled wire) size of T in bytes.
func SizeOf[T Elem]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// Comm is a communicator over all ranks of the underlying run. Each
// rank constructs its own Comm around its transport endpoint — the
// simulator's Proc, or a real one in the distributed runtime.
type Comm struct {
	ep Endpoint
	p  *cluster.Proc // non-nil only for simulator-backed comms
	// gen separates the reserved-tag space of successive collectives so
	// that no message from collective k can match collective k+1.
	gen int
}

// New returns a communicator for the calling simulator rank.
func New(p *cluster.Proc) *Comm { return &Comm{ep: p, p: p} }

// NewEndpoint returns a communicator over an arbitrary transport.
func NewEndpoint(ep Endpoint) *Comm { return &Comm{ep: ep} }

// Rank returns the calling process's rank.
func (c *Comm) Rank() int { return c.ep.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.ep.Procs() }

// Proc exposes the underlying simulator process (for charging compute);
// nil for comms built over a non-simulator endpoint.
func (c *Comm) Proc() *cluster.Proc { return c.p }

func (c *Comm) checkUserTag(tag int) {
	if tag < 0 || tag >= tagReserved {
		panic(fmt.Sprintf("mp: user tag %d out of range [0, %d)", tag, tagReserved))
	}
}

// nextGen advances and returns the collective generation. Collectives are
// bulk-synchronous across all ranks in program order, so every rank
// computes the same sequence.
func (c *Comm) nextGen() int {
	c.gen++
	return c.gen
}

// collTag builds a reserved tag from (collective id, generation, round).
func collTag(coll, gen, round int) int {
	return tagReserved + coll + 16*(round+1024*gen)
}

// Collective ids for tag construction.
const (
	collBarrier = iota
	collBcast
	collReduce
	collAllreduce
	collGather
	collAllgather
	collAlltoall
	collScan
)

// Send sends a typed slice to dst with a user tag. The receiver must not
// mutate the slice.
func Send[T Elem](c *Comm, dst, tag int, data []T) {
	c.checkUserTag(tag)
	c.ep.Send(dst, tag, data, len(data)*SizeOf[T]())
}

// Recv receives a typed slice from src with a user tag. Both src and tag
// accept their wildcard (AnySource, AnyTag). A wildcard-tag receive
// matches the oldest queued message of any tag — including a collective's
// internal reserved-tag traffic from a peer that has raced ahead — so
// drain wildcard receives before entering the next collective.
func Recv[T Elem](c *Comm, src, tag int) []T {
	if tag != AnyTag {
		c.checkUserTag(tag)
	}
	m := c.ep.Recv(src, tag)
	return payloadAs[T](fmt.Sprintf("rank %d Recv(src=%d, tag=%d)", c.Rank(), src, tag), m)
}

// Sendrecv exchanges typed slices with a partner in a deadlock-free way
// (sends are eager in the simulator, so plain send-then-recv suffices).
func Sendrecv[T Elem](c *Comm, dst, sendTag int, data []T, src, recvTag int) []T {
	Send(c, dst, sendTag, data)
	return Recv[T](c, src, recvTag)
}

// sendColl / recvColl move data under reserved tags (internal).
func sendColl[T Elem](c *Comm, dst, tag int, data []T) {
	c.ep.Send(dst, tag, data, len(data)*SizeOf[T]())
}

func recvColl[T Elem](c *Comm, src, tag int) []T {
	m := c.ep.Recv(src, tag)
	return payloadAs[T]("collective recv", m)
}

// Barrier blocks until all ranks reach it, using a dissemination pattern
// of log2(P) rounds so the cost reflects the machine model.
func (c *Comm) Barrier() {
	gen := c.nextGen()
	p, rank := c.Size(), c.Rank()
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		tag := collTag(collBarrier, gen, round)
		c.ep.Send((rank+k)%p, tag, nil, 0)
		c.ep.Recv((rank-k+p)%p, tag)
	}
}

// Bcast distributes root's buffer to all ranks and returns it (the root
// returns its own slice). Binomial tree.
func Bcast[T Elem](c *Comm, root int, data []T) []T {
	gen := c.nextGen()
	p, rank := c.Size(), c.Rank()
	rel := (rank - root + p) % p // relative rank; root is 0
	tag := collTag(collBcast, gen, 0)
	if rel != 0 {
		data = recvColl[T](c, AnySource, tag)
	}
	// After receiving (or being root), forward to children in the
	// binomial tree: child rel ids are rel + 2^k for 2^k > rel.
	mask := 1
	for mask < p && rel >= mask {
		mask <<= 1
	}
	for ; mask < p; mask <<= 1 {
		childRel := rel + mask
		if childRel < p {
			sendColl(c, (childRel+root)%p, tag, data)
		}
	}
	return data
}

// Reduce combines all ranks' equal-length vectors elementwise with op and
// returns the result on root (nil elsewhere). Binomial tree; combination
// order is fixed by rank structure, so results are deterministic.
func Reduce[T Elem](c *Comm, root int, data []T, op func(a, b T) T) []T {
	gen := c.nextGen()
	p, rank := c.Size(), c.Rank()
	rel := (rank - root + p) % p
	acc := append([]T(nil), data...)
	tag := collTag(collReduce, gen, 0)
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			// Our subtree is complete: pass it up and leave.
			sendColl(c, (rel-mask+root)%p, tag, acc)
			return nil
		}
		if rel+mask < p {
			in := recvColl[T](c, (rel+mask+root)%p, tag)
			combine(acc, in, op)
			c.chargeReduceFlops(len(acc))
		}
	}
	return acc // rel == 0 is the only rank that falls through
}

// Allreduce combines all ranks' equal-length vectors elementwise with op;
// every rank returns the result. Recursive doubling, with a fold-in
// pre-phase for non-power-of-two sizes.
func Allreduce[T Elem](c *Comm, data []T, op func(a, b T) T) []T {
	gen := c.nextGen()
	p, rank := c.Size(), c.Rank()
	acc := append([]T(nil), data...)
	// Largest power of two <= p.
	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	rem := p - pow2
	tagPre := collTag(collAllreduce, gen, 0)
	// Extras (ranks >= pow2) fold into their partner below.
	if rank >= pow2 {
		sendColl(c, rank-pow2, tagPre, acc)
	} else if rank < rem {
		in := recvColl[T](c, rank+pow2, tagPre)
		combine(acc, in, op)
		c.chargeReduceFlops(len(acc))
	}
	if rank < pow2 {
		for mask, round := 1, 1; mask < pow2; mask, round = mask<<1, round+1 {
			partner := rank ^ mask
			tag := collTag(collAllreduce, gen, round)
			sendColl(c, partner, tag, acc)
			in := recvColl[T](c, partner, tag)
			acc = append([]T(nil), acc...) // do not mutate what we sent
			combine(acc, in, op)
			c.chargeReduceFlops(len(acc))
		}
	}
	// Extras get the result back.
	tagPost := collTag(collAllreduce, gen, 99)
	if rank < rem {
		sendColl(c, rank+pow2, tagPost, acc)
	} else if rank >= pow2 {
		acc = recvColl[T](c, rank-pow2, tagPost)
	}
	return acc
}

// combine folds b into a elementwise; lengths must match.
func combine[T Elem](a, b []T, op func(x, y T) T) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mp: reduce length mismatch: %d vs %d", len(a), len(b)))
	}
	for i := range a {
		a[i] = op(a[i], b[i])
	}
}

func (c *Comm) chargeReduceFlops(n int) {
	c.ep.ChargeFlops(int64(n))
}

// Gatherv collects each rank's variable-length contribution on root, in
// rank order. counts must be identical on every rank. Returns the
// concatenation on root, nil elsewhere.
func Gatherv[T Elem](c *Comm, root int, local []T, counts []int) []T {
	gen := c.nextGen()
	p, rank := c.Size(), c.Rank()
	if len(counts) != p {
		panic(fmt.Sprintf("mp: Gatherv counts has %d entries for %d ranks", len(counts), p))
	}
	if len(local) != counts[rank] {
		panic(fmt.Sprintf("mp: Gatherv rank %d contributes %d, counts says %d", rank, len(local), counts[rank]))
	}
	tag := collTag(collGather, gen, 0)
	if rank != root {
		sendColl(c, root, tag, local)
		return nil
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	out := make([]T, 0, total)
	for r := 0; r < p; r++ {
		if r == root {
			out = append(out, local...)
		} else {
			out = append(out, recvColl[T](c, r, tag)...)
		}
	}
	return out
}

// Allgatherv collects every rank's variable-length contribution on every
// rank, concatenated in rank order. Ring algorithm: P-1 steps, each
// forwarding the piece received in the previous step.
func Allgatherv[T Elem](c *Comm, local []T, counts []int) []T {
	gen := c.nextGen()
	p, rank := c.Size(), c.Rank()
	if len(counts) != p {
		panic(fmt.Sprintf("mp: Allgatherv counts has %d entries for %d ranks", len(counts), p))
	}
	if len(local) != counts[rank] {
		panic(fmt.Sprintf("mp: Allgatherv rank %d contributes %d, counts says %d", rank, len(local), counts[rank]))
	}
	pieces := make([][]T, p)
	pieces[rank] = local
	next, prev := (rank+1)%p, (rank-1+p)%p
	cur := local
	curIdx := rank
	for step := 0; step < p-1; step++ {
		tag := collTag(collAllgather, gen, step)
		sendColl(c, next, tag, cur)
		cur = recvColl[T](c, prev, tag)
		curIdx = (curIdx - 1 + p) % p
		pieces[curIdx] = cur
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	out := make([]T, 0, total)
	for r := 0; r < p; r++ {
		if len(pieces[r]) != counts[r] {
			panic(fmt.Sprintf("mp: Allgatherv rank %d: piece %d has %d elems, counts says %d",
				rank, r, len(pieces[r]), counts[r]))
		}
		out = append(out, pieces[r]...)
	}
	return out
}

// Allgather collects one fixed-size contribution per rank on every rank.
func Allgather[T Elem](c *Comm, local []T) []T {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = len(local)
	}
	return Allgatherv(c, local, counts)
}

// Alltoallv sends send[r] to each rank r and returns the vector received
// from each rank (recv[r] came from rank r). Pairwise exchange over P-1
// steps plus the local copy; works for any P.
func Alltoallv[T Elem](c *Comm, send [][]T) [][]T {
	gen := c.nextGen()
	p, rank := c.Size(), c.Rank()
	if len(send) != p {
		panic(fmt.Sprintf("mp: Alltoallv send has %d entries for %d ranks", len(send), p))
	}
	recv := make([][]T, p)
	recv[rank] = send[rank]
	for step := 1; step < p; step++ {
		dst := (rank + step) % p
		src := (rank - step + p) % p
		tag := collTag(collAlltoall, gen, step)
		sendColl(c, dst, tag, send[dst])
		recv[src] = recvColl[T](c, src, tag)
	}
	return recv
}

// ExscanSumInt returns the exclusive prefix sum of each rank's value
// (rank 0 gets 0). Built on Allgather: the per-rank payload is one int,
// so the ring's P-1 small messages are the right cost to model and the
// arithmetic is trivially correct for any P.
func ExscanSumInt(c *Comm, v int) int {
	all := Allgather(c, []int{v})
	sum := 0
	for r := 0; r < c.Rank(); r++ {
		sum += all[r]
	}
	return sum
}
