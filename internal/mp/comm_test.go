package mp

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ppm/internal/cluster"
	"ppm/internal/machine"
	"ppm/internal/rng"
)

// runAll executes body on a P-rank cluster (2 ranks per node to exercise
// both intra- and inter-node paths) and fails the test on any error.
func runAll(t *testing.T, p int, body func(c *Comm)) *cluster.Report {
	t.Helper()
	perNode := 2
	if p < 2 {
		perNode = 1
	}
	rep, err := cluster.Run(cluster.Config{Procs: p, ProcsPerNode: perNode, Machine: machine.Generic()},
		func(proc *cluster.Proc) { body(New(proc)) })
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

var sizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func sumF64(a, b float64) float64 { return a + b }
func maxF64(a, b float64) float64 { return math.Max(a, b) }
func sumInt(a, b int) int         { return a + b }

func TestSendRecvTyped(t *testing.T) {
	runAll(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 3, []float64{1.5, 2.5})
		} else {
			got := Recv[float64](c, 0, 3)
			if !reflect.DeepEqual(got, []float64{1.5, 2.5}) {
				panic(fmt.Sprint("bad payload ", got))
			}
		}
	})
}

func TestRecvTypeMismatchPanics(t *testing.T) {
	_, err := cluster.Run(cluster.Config{Procs: 2, ProcsPerNode: 1, Machine: machine.Generic()},
		func(p *cluster.Proc) {
			c := New(p)
			if c.Rank() == 0 {
				Send(c, 1, 0, []float64{1})
			} else {
				Recv[int](c, 0, 0)
			}
		})
	if err == nil || !strings.Contains(err.Error(), "payload is") {
		t.Errorf("expected type-mismatch panic, got %v", err)
	}
}

func TestUserTagRangeEnforced(t *testing.T) {
	_, err := cluster.Run(cluster.Config{Procs: 1, ProcsPerNode: 1, Machine: machine.Generic()},
		func(p *cluster.Proc) { Send(New(p), 0, tagReserved, []int{1}) })
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected tag-range panic, got %v", err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	runAll(t, 2, func(c *Comm) {
		other := 1 - c.Rank()
		mine := []int{c.Rank() * 10}
		got := Sendrecv(c, other, 1, mine, other, 1)
		if got[0] != other*10 {
			panic("exchange wrong")
		}
	})
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range sizes {
		runAll(t, p, func(c *Comm) {
			for i := 0; i < 3; i++ {
				c.Barrier()
			}
		})
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, p := range sizes {
		for root := 0; root < p; root += (p+2)/3 + 1 {
			want := []float64{3.14, 2.71, float64(root)}
			runAll(t, p, func(c *Comm) {
				var buf []float64
				if c.Rank() == root {
					buf = want
				}
				got := Bcast(c, root, buf)
				if !reflect.DeepEqual(got, want) {
					panic(fmt.Sprintf("rank %d bcast got %v", c.Rank(), got))
				}
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range sizes {
		root := p / 2
		runAll(t, p, func(c *Comm) {
			data := []float64{float64(c.Rank()), 1}
			got := Reduce(c, root, data, sumF64)
			if c.Rank() == root {
				wantSum := float64(p*(p-1)) / 2
				if got[0] != wantSum || got[1] != float64(p) {
					panic(fmt.Sprintf("reduce got %v", got))
				}
			} else if got != nil {
				panic("non-root got a reduce result")
			}
		})
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	for _, p := range sizes {
		runAll(t, p, func(c *Comm) {
			got := Allreduce(c, []float64{float64(c.Rank()), -float64(c.Rank())}, sumF64)
			wantSum := float64(p*(p-1)) / 2
			if got[0] != wantSum || got[1] != -wantSum {
				panic(fmt.Sprintf("rank %d allreduce sum got %v want %v", c.Rank(), got, wantSum))
			}
			gotMax := Allreduce(c, []float64{float64(c.Rank())}, maxF64)
			if gotMax[0] != float64(p-1) {
				panic(fmt.Sprintf("allreduce max got %v", gotMax))
			}
		})
	}
}

// Property: Allreduce(sum) equals the sequential fold for random vectors,
// on awkward (non-power-of-two) rank counts.
func TestAllreduceMatchesSequentialProperty(t *testing.T) {
	f := func(seed uint64, pRaw uint8, nRaw uint8) bool {
		p := int(pRaw%9) + 1
		n := int(nRaw%17) + 1
		r := rng.New(seed)
		inputs := make([][]float64, p)
		want := make([]float64, n)
		for rk := 0; rk < p; rk++ {
			inputs[rk] = make([]float64, n)
			for i := range inputs[rk] {
				inputs[rk][i] = math.Floor(r.Float64()*1000) / 8 // exact in binary
				want[i] += inputs[rk][i]
			}
		}
		ok := true
		_, err := cluster.Run(cluster.Config{Procs: p, ProcsPerNode: 2, Machine: machine.Generic()},
			func(proc *cluster.Proc) {
				c := New(proc)
				got := Allreduce(c, inputs[c.Rank()], sumF64)
				for i := range got {
					if math.Abs(got[i]-want[i]) > 1e-9 {
						ok = false
					}
				}
			})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGatherv(t *testing.T) {
	for _, p := range sizes {
		root := p - 1
		runAll(t, p, func(c *Comm) {
			counts := make([]int, p)
			for i := range counts {
				counts[i] = i + 1
			}
			local := make([]int, c.Rank()+1)
			for i := range local {
				local[i] = c.Rank()*100 + i
			}
			got := Gatherv(c, root, local, counts)
			if c.Rank() != root {
				if got != nil {
					panic("non-root gatherv result")
				}
				return
			}
			idx := 0
			for r := 0; r < p; r++ {
				for i := 0; i <= r; i++ {
					if got[idx] != r*100+i {
						panic(fmt.Sprintf("gatherv[%d] = %d", idx, got[idx]))
					}
					idx++
				}
			}
		})
	}
}

func TestAllgathervAllSizes(t *testing.T) {
	for _, p := range sizes {
		runAll(t, p, func(c *Comm) {
			counts := make([]int, p)
			for i := range counts {
				counts[i] = (i % 3) + 1
			}
			local := make([]int64, counts[c.Rank()])
			for i := range local {
				local[i] = int64(c.Rank()*1000 + i)
			}
			got := Allgatherv(c, local, counts)
			idx := 0
			for r := 0; r < p; r++ {
				for i := 0; i < counts[r]; i++ {
					if got[idx] != int64(r*1000+i) {
						panic(fmt.Sprintf("rank %d: allgatherv[%d] = %d", c.Rank(), idx, got[idx]))
					}
					idx++
				}
			}
		})
	}
}

func TestAllgatherFixed(t *testing.T) {
	runAll(t, 5, func(c *Comm) {
		got := Allgather(c, []int{c.Rank(), -c.Rank()})
		want := []int{0, 0, 1, -1, 2, -2, 3, -3, 4, -4}
		if !reflect.DeepEqual(got, want) {
			panic(fmt.Sprintf("allgather got %v", got))
		}
	})
}

func TestAlltoallv(t *testing.T) {
	for _, p := range sizes {
		runAll(t, p, func(c *Comm) {
			send := make([][]int, p)
			for dst := range send {
				// rank r sends [r, dst, r*dst] to dst; empty to self+1 mod p
				if dst == (c.Rank()+1)%p && p > 1 {
					continue
				}
				send[dst] = []int{c.Rank(), dst, c.Rank() * dst}
			}
			recv := Alltoallv(c, send)
			for src := 0; src < p; src++ {
				if c.Rank() == (src+1)%p && p > 1 {
					if len(recv[src]) != 0 {
						panic("expected empty piece")
					}
					continue
				}
				want := []int{src, c.Rank(), src * c.Rank()}
				if !reflect.DeepEqual(recv[src], want) {
					panic(fmt.Sprintf("rank %d from %d: got %v want %v", c.Rank(), src, recv[src], want))
				}
			}
		})
	}
}

func TestExscanSumInt(t *testing.T) {
	for _, p := range sizes {
		runAll(t, p, func(c *Comm) {
			got := ExscanSumInt(c, c.Rank()+1) // values 1..p
			want := c.Rank() * (c.Rank() + 1) / 2
			if got != want {
				panic(fmt.Sprintf("rank %d exscan got %d want %d", c.Rank(), got, want))
			}
		})
	}
}

func TestCollectivesBackToBackDoNotCrosstalk(t *testing.T) {
	runAll(t, 6, func(c *Comm) {
		for i := 0; i < 5; i++ {
			s := Allreduce(c, []int{1}, sumInt)
			if s[0] != 6 {
				panic("allreduce crosstalk")
			}
			b := Bcast(c, i%6, []int{i * 7})
			if b[0] != i*7 {
				panic("bcast crosstalk")
			}
			c.Barrier()
		}
	})
}

func TestCollectiveCostGrowsWithRanks(t *testing.T) {
	cost := func(p int) float64 {
		rep, err := cluster.Run(cluster.Config{Procs: p, ProcsPerNode: 4, Machine: machine.Franklin()},
			func(proc *cluster.Proc) {
				c := New(proc)
				data := make([]float64, 1024)
				for i := 0; i < 10; i++ {
					Allreduce(c, data, sumF64)
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan.Seconds()
	}
	if !(cost(4) < cost(16) && cost(16) < cost(64)) {
		t.Error("allreduce cost should grow with rank count")
	}
}

func TestReduceDeterministicOrder(t *testing.T) {
	// Floating-point reduce order is fixed: two runs give bitwise-equal
	// results even with values whose sum depends on association order.
	run := func() float64 {
		var out float64
		runAll(t, 7, func(c *Comm) {
			v := []float64{1e-16, 1, -1, 3e16, 7, -3e16, 1e-16}[c.Rank()]
			got := Allreduce(c, []float64{v}, sumF64)
			out = got[0]
		})
		return out
	}
	if a, b := run(), run(); a != b {
		t.Errorf("reduce order nondeterministic: %v vs %v", a, b)
	}
}
