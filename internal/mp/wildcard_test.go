package mp

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"ppm/internal/cluster"
	"ppm/internal/machine"
)

// Wildcard receives and the reserved-tag boundary are load-bearing for
// the collectives (Bcast receives from AnySource under a reserved tag)
// and for the distributed runtime's endpoint mailbox, so they get
// dedicated coverage here.

func TestRecvAnySource(t *testing.T) {
	runAll(t, 4, func(c *Comm) {
		if c.Rank() != 0 {
			Send(c, 0, 7, []int{c.Rank() * 100})
			return
		}
		var got []int
		for i := 0; i < 3; i++ {
			got = append(got, Recv[int](c, AnySource, 7)...)
		}
		sort.Ints(got)
		if !reflect.DeepEqual(got, []int{100, 200, 300}) {
			panic(fmt.Sprint("AnySource payloads ", got))
		}
	})
}

func TestRecvAnyTagDeliversInSendOrder(t *testing.T) {
	runAll(t, 2, func(c *Comm) {
		if c.Rank() == 1 {
			for _, tag := range []int{3, 5, 9} {
				Send(c, 0, tag, []int{tag})
			}
			return
		}
		// One sender: eager sends arrive in program order, and a
		// wildcard-tag receive matches the oldest queued message.
		for _, want := range []int{3, 5, 9} {
			if got := Recv[int](c, 1, AnyTag); got[0] != want {
				panic(fmt.Sprintf("AnyTag got %d, want %d", got[0], want))
			}
		}
	})
}

func TestRecvDoubleWildcard(t *testing.T) {
	runAll(t, 3, func(c *Comm) {
		if c.Rank() != 0 {
			Send(c, 0, 10+c.Rank(), []int{c.Rank()})
			return
		}
		got := map[int]bool{}
		for i := 0; i < 2; i++ {
			got[Recv[int](c, AnySource, AnyTag)[0]] = true
		}
		if !got[1] || !got[2] {
			panic(fmt.Sprint("double wildcard missed a sender: ", got))
		}
	})
}

// TestReservedTagBoundary pins the exact edge: the last user tag works
// end to end, the first reserved tag panics on both Send and Recv.
func TestReservedTagBoundary(t *testing.T) {
	runAll(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, tagReserved-1, []int{42})
		} else {
			if got := Recv[int](c, 0, tagReserved-1); got[0] != 42 {
				panic(fmt.Sprint("boundary-tag payload ", got))
			}
		}
	})
	for _, op := range []struct {
		name string
		body func(c *Comm)
	}{
		{"send", func(c *Comm) { Send(c, 0, tagReserved, []int{1}) }},
		{"recv", func(c *Comm) { Recv[int](c, 0, tagReserved) }},
		{"negative", func(c *Comm) { Send(c, 0, -2, []int{1}) }},
	} {
		_, err := cluster.Run(cluster.Config{Procs: 1, ProcsPerNode: 1, Machine: machine.Generic()},
			func(p *cluster.Proc) { op.body(New(p)) })
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s with out-of-range tag: expected panic, got %v", op.name, err)
		}
	}
}

// TestUserTrafficInvisibleToCollectives checks the boundary's purpose: a
// queued user message must not be matched by a collective's internal
// wildcard-source receive under a reserved tag.
func TestUserTrafficInvisibleToCollectives(t *testing.T) {
	runAll(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 5, []int{99}) // parked in rank 1's mailbox
		}
		// Bcast's non-root receive is Recv(AnySource, reservedTag): it
		// must skip the pending tag-5 user message on rank 1.
		got := Bcast(c, 0, []int{7})
		if got[0] != 7 {
			panic(fmt.Sprint("bcast returned ", got))
		}
		if c.Rank() == 1 {
			if got := Recv[int](c, 0, 5); got[0] != 99 {
				panic(fmt.Sprint("user message clobbered: ", got))
			}
		}
	})
}
