package mp_test

import (
	"fmt"
	"log"

	"ppm/internal/cluster"
	"ppm/internal/machine"
	"ppm/internal/mp"
)

// Example shows the message-passing layer's SPMD style: point-to-point
// exchange plus a collective, on a simulated 4-rank cluster.
func Example() {
	rep, err := cluster.Run(cluster.Config{Procs: 4, ProcsPerNode: 2, Machine: machine.Generic()},
		func(proc *cluster.Proc) {
			c := mp.New(proc)
			// Ring shift: send my rank right, receive from the left.
			right := (c.Rank() + 1) % c.Size()
			left := (c.Rank() + c.Size() - 1) % c.Size()
			mp.Send(c, right, 0, []int64{int64(c.Rank())})
			got := mp.Recv[int64](c, left, 0)
			// Sum of everything each rank has seen, everywhere.
			total := mp.Allreduce(c, []int64{got[0]}, func(a, b int64) int64 { return a + b })
			if c.Rank() == 0 {
				fmt.Println("ring sum:", total[0])
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("messages:", rep.Totals.MsgsSent > 0)
	// Output:
	// ring sum: 6
	// messages: true
}

// ExampleAllgatherv shows variable-length gathers: every rank contributes
// its rank+1 values and everyone receives the concatenation.
func ExampleAllgatherv() {
	_, err := cluster.Run(cluster.Config{Procs: 3, ProcsPerNode: 1, Machine: machine.Generic()},
		func(proc *cluster.Proc) {
			c := mp.New(proc)
			counts := []int{1, 2, 3}
			mine := make([]int64, counts[c.Rank()])
			for i := range mine {
				mine[i] = int64(10*c.Rank() + i)
			}
			all := mp.Allgatherv(c, mine, counts)
			if c.Rank() == 0 {
				fmt.Println(all)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// [0 10 11 20 21 22]
}
