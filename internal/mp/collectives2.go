package mp

import "fmt"

// Additional collectives. Like the core set in comm.go, each is built
// from point-to-point messages with a textbook algorithm so its virtual-
// time cost emerges from the machine model.

// Additional collective ids (continuing the comm.go block).
const (
	collScatter = 8 + iota
	collReduceScatter
	collScanInc
)

// Scatterv distributes root's concatenated buffer to all ranks: rank r
// receives counts[r] elements. The inverse of Gatherv.
func Scatterv[T Elem](c *Comm, root int, data []T, counts []int) []T {
	gen := c.nextGen()
	p, rank := c.Size(), c.Rank()
	if len(counts) != p {
		panic(fmt.Sprintf("mp: Scatterv counts has %d entries for %d ranks", len(counts), p))
	}
	tag := collTag(collScatter, gen, 0)
	if rank == root {
		total := 0
		for _, n := range counts {
			total += n
		}
		if len(data) != total {
			panic(fmt.Sprintf("mp: Scatterv root buffer has %d elements, counts total %d", len(data), total))
		}
		off := 0
		var mine []T
		for r := 0; r < p; r++ {
			piece := data[off : off+counts[r]]
			off += counts[r]
			if r == root {
				mine = piece
				continue
			}
			sendColl(c, r, tag, piece)
		}
		return mine
	}
	return recvColl[T](c, root, tag)
}

// Scatter distributes equal-size pieces from root: the piece size is
// broadcast first, then the pieces scatter.
func Scatter[T Elem](c *Comm, root int, data []T) []T {
	p := c.Size()
	var size int64
	if c.Rank() == root {
		if len(data)%p != 0 {
			panic(fmt.Sprintf("mp: Scatter buffer of %d not divisible by %d ranks", len(data), p))
		}
		size = int64(len(data) / p)
	}
	size = Bcast(c, root, []int64{size})[0]
	counts := make([]int, p)
	for i := range counts {
		counts[i] = int(size)
	}
	return Scatterv(c, root, data, counts)
}

// ReduceScatter combines all ranks' equal-length vectors elementwise with
// op, then scatters the result: rank r returns the slice of the combined
// vector covering [displs[r], displs[r]+counts[r]). Implemented as a
// reduce-to-0 followed by a scatterv (cost-honest, if not the most
// scalable algorithm; the paper-era MPICH did the same for small counts).
func ReduceScatter[T Elem](c *Comm, data []T, counts []int, op func(a, b T) T) []T {
	full := Reduce(c, 0, data, op)
	return Scatterv(c, 0, full, counts)
}

// ScanSum returns the inclusive prefix sum over ranks of the local
// vector: rank r's result element i is the sum of ranks 0..r's element i.
func ScanSum[T Elem](c *Comm, data []T) []T {
	gen := c.nextGen()
	p, rank := c.Size(), c.Rank()
	out := append([]T(nil), data...)
	// Linear pipeline: rank r waits for r-1's partial, adds, forwards.
	// Latency is O(P) but each link carries one message — fine for the
	// small vectors scans are used for here.
	tag := collTag(collScanInc, gen, 0)
	if rank > 0 {
		in := recvColl[T](c, rank-1, tag)
		combine(out, in, func(a, b T) T { return a + b })
		c.chargeReduceFlops(len(out))
	}
	if rank < p-1 {
		sendColl(c, rank+1, tag, out)
	}
	return out
}
