package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeAdd(t *testing.T) {
	tm := Time(1.5)
	got := tm.Add(Duration(0.25))
	if got != Time(1.75) {
		t.Errorf("Add: got %v, want 1.75", got)
	}
}

func TestTimeAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with negative duration did not panic")
		}
	}()
	Time(1).Add(Duration(-1))
}

func TestTimeSub(t *testing.T) {
	if d := Time(3).Sub(Time(1)); d != Duration(2) {
		t.Errorf("Sub: got %v, want 2", d)
	}
	if d := Time(1).Sub(Time(3)); d != Duration(-2) {
		t.Errorf("Sub: got %v, want -2", d)
	}
}

func TestBeforeAfterMax(t *testing.T) {
	a, b := Time(1), Time(2)
	if !a.Before(b) || b.Before(a) {
		t.Error("Before ordering wrong")
	}
	if !b.After(a) || a.After(b) {
		t.Error("After ordering wrong")
	}
	if a.Max(b) != b || b.Max(a) != b {
		t.Error("Max wrong")
	}
}

func TestNeverSortsLast(t *testing.T) {
	if !Time(1e30).Before(Never) {
		t.Error("Never should follow any reachable time")
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{1.5, "1.5s"},
		{0.0025, "2.5ms"},
		{3e-6, "3us"},
		{4e-10, "0.4ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestMaxDuration(t *testing.T) {
	if MaxDuration(1, 2) != 2 || MaxDuration(2, 1) != 2 {
		t.Error("MaxDuration wrong")
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("nic")
	// First job: starts at 1, runs 2 -> done at 3.
	if done := r.Acquire(1, 2); done != 3 {
		t.Fatalf("first acquire done at %v, want 3", done)
	}
	// Second job arrives at 2 while busy -> starts at 3, done at 4.
	if done := r.Acquire(2, 1); done != 4 {
		t.Fatalf("second acquire done at %v, want 4", done)
	}
	// Third job arrives after idle at 10 -> done at 10.5.
	if done := r.Acquire(10, 0.5); done != 10.5 {
		t.Fatalf("third acquire done at %v, want 10.5", done)
	}
	if r.Utilized() != 3.5 {
		t.Errorf("Utilized = %v, want 3.5", r.Utilized())
	}
	if r.Ops() != 3 {
		t.Errorf("Ops = %d, want 3", r.Ops())
	}
	if r.Name() != "nic" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 5)
	r.Reset()
	if r.FreeAt() != Zero || r.Utilized() != 0 || r.Ops() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestResourceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative acquire did not panic")
		}
	}()
	NewResource("x").Acquire(0, -1)
}

// Property: completions are monotonically non-decreasing and utilization
// equals the sum of the requested durations.
func TestResourceMonotoneProperty(t *testing.T) {
	f := func(arrivals []uint16, durs []uint16) bool {
		r := NewResource("p")
		n := len(arrivals)
		if len(durs) < n {
			n = len(durs)
		}
		var last Time
		var total Duration
		for i := 0; i < n; i++ {
			at := Time(float64(arrivals[i]) / 16)
			d := Duration(float64(durs[i]) / 16)
			done := r.Acquire(at, d)
			if done.Before(last) || done.Before(at.Add(d)) {
				return false
			}
			last = done
			total += d
		}
		return math.Abs(float64(r.Utilized()-total)) < 1e-9*math.Max(1, float64(total))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
