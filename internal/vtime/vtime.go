// Package vtime provides the virtual-time primitives used by the cluster
// simulator: a time type, duration helpers, and busy-resource tracking for
// modeling serialized hardware such as NICs and links.
//
// Virtual time is a float64 number of seconds since the start of a run.
// All arithmetic on virtual time is performed in a deterministic order by
// the cooperative scheduler, so results are bit-reproducible across runs.
package vtime

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the run.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration float64

// Zero is the origin of virtual time.
const Zero Time = 0

// Never is a sentinel meaning "no scheduled time"; it sorts after every
// reachable time.
const Never Time = Time(math.MaxFloat64)

// Add returns t advanced by d. Negative durations are rejected because the
// simulator never moves a clock backwards.
func (t Time) Add(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative duration %v", d))
	}
	return t + Time(d)
}

// Sub returns the duration from u to t (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Max returns the later of t and u.
func (t Time) Max(u Time) Time {
	if t > u {
		return t
	}
	return u
}

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the time with microsecond-scale readability.
func (t Time) String() string { return formatSeconds(float64(t)) }

// Seconds returns the duration as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// String formats the duration with microsecond-scale readability.
func (d Duration) String() string { return formatSeconds(float64(d)) }

func formatSeconds(s float64) string {
	abs := math.Abs(s)
	switch {
	case s == 0:
		return "0s"
	case abs >= 1:
		return fmt.Sprintf("%.6gs", s)
	case abs >= 1e-3:
		return fmt.Sprintf("%.6gms", s*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.6gus", s*1e6)
	default:
		return fmt.Sprintf("%.6gns", s*1e9)
	}
}

// MaxTime returns the maximum of a and b.
func MaxTime(a, b Time) Time { return a.Max(b) }

// MaxDuration returns the maximum of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Resource models a serially reusable piece of hardware (a NIC, a link, a
// DMA engine). Work items occupy it back to back: a request that arrives
// while the resource is busy waits until it frees.
//
// A Resource is not internally synchronized, and its results depend on
// acquisition order, so order is part of the simulator's deterministic
// schedule: under the cluster's parallel scheduler every Acquire and
// FreeAt happens while the calling process holds the serialization
// turn, which both orders the calls exactly as the sequential scheduler
// would and publishes the mutations across goroutines through the
// scheduler's channel operations. Charging order therefore never
// changes between scheduler modes.
type Resource struct {
	name string
	free Time // earliest time the resource is idle
	used Duration
	ops  int64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire occupies the resource for d starting no earlier than at, and
// returns the completion time. The start is max(at, previous completion),
// which models FIFO serialization.
func (r *Resource) Acquire(at Time, d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("vtime: resource %q acquired for negative duration %v", r.name, d))
	}
	start := at.Max(r.free)
	r.free = start.Add(d)
	r.used += d
	r.ops++
	return r.free
}

// FreeAt returns the earliest time the resource is idle.
func (r *Resource) FreeAt() Time { return r.free }

// Utilized returns the total busy duration accumulated so far.
func (r *Resource) Utilized() Duration { return r.used }

// Ops returns how many acquisitions have occurred.
func (r *Resource) Ops() int64 { return r.ops }

// Reset returns the resource to the idle state at time zero.
func (r *Resource) Reset() {
	r.free = Zero
	r.used = 0
	r.ops = 0
}

// ResourceState is an immutable snapshot of a Resource's accounting.
// Reports embed it so that equivalence tests can compare the full
// modeled hardware state (not just process clocks) bit for bit between
// scheduler modes.
type ResourceState struct {
	Name string
	Free Time
	Used Duration
	Ops  int64
}

// State returns a snapshot of the resource's accounting.
func (r *Resource) State() ResourceState {
	return ResourceState{Name: r.name, Free: r.free, Used: r.used, Ops: r.ops}
}
