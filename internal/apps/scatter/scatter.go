// Package scatter implements a CG-transpose-style scatter-add workload:
// every virtual processor reads a neighbor node's whole partition and
// then scatter-adds short, near-monotone strided runs back into it. The
// figure apps write owner-locally, so this is the repository's
// commit-plane stress shape — it drives remote CommitData frames (and
// the commit codec) end to end, its fan-in reads exercise fleet-wide
// read coalescing, and its seeded per-phase scatter pattern gives the
// phase-plan cache a stable-but-irregular shape to memoize.
package scatter

import (
	"fmt"

	"ppm/internal/core"
	"ppm/internal/rng"
)

// Params describes one scatter workload.
type Params struct {
	N     int    // global accumulator length
	VPs   int    // virtual processors per node
	Iters int    // scatter-add phases
	Seed  uint64 // workload seed
}

// WithDefaults fills zero fields with the canonical wire-path workload
// (3000 elements, 6 VPs per node, 4 iterations, seed 7).
func (p Params) WithDefaults() Params {
	if p.N == 0 {
		p.N = 3000
	}
	if p.VPs == 0 {
		p.VPs = 6
	}
	if p.Iters == 0 {
		p.Iters = 4
	}
	if p.Seed == 0 {
		p.Seed = 7
	}
	return p
}

func (p Params) validate() error {
	if p.N <= 0 || p.VPs <= 0 || p.Iters <= 0 {
		return fmt.Errorf("scatter: N, VPs, and Iters must be positive, got %d, %d, %d",
			p.N, p.VPs, p.Iters)
	}
	return nil
}

// Prog returns the PPM program, writing each node's final partition of
// the accumulator into out[node]. Reads feed the written values, so a
// wrong byte anywhere on the wire or commit path diverges the output
// bits.
func Prog(p Params, out [][]float64) func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		g := core.AllocGlobal[float64](rt, "acc", p.N)
		// A checkpoint tagged T holds the accumulator after iteration
		// T-1; the per-phase scatter pattern is keyed by (iter, rank), so
		// a restored run replays the remaining iterations bit-exactly.
		start := 0
		if tag, ok := rt.RestoreCheckpoint(); ok {
			start = int(tag)
		}
		for it := start; it < p.Iters; it++ {
			iter := it
			rt.Do(p.VPs, func(vp *core.VP) {
				vp.GlobalPhase(func() {
					nodes := vp.Nodes()
					tgt := (vp.Node() + 1) % nodes
					rlo, rhi := core.ChunkRange(p.N, nodes, tgt)
					buf := make([]float64, rhi-rlo)
					g.ReadBlock(vp, rlo, rhi, buf)
					var sum float64
					for _, v := range buf {
						sum += v
					}
					r := rng.New(p.Seed).Split(uint64(iter*1024 + vp.GlobalRank()))
					for j, i := 0, rlo; j < 40 && i < rhi; j++ {
						g.Add(vp, i, sum*1e-6+r.NormFloat64())
						i += 1 + int(r.Uint64()%4)
					}
				})
			})
			rt.MaybeCheckpoint(int64(it + 1))
		}
		out[rt.NodeID()] = append([]float64(nil), g.Local(rt)...)
	}
}

// RunPPM runs the workload under the in-process simulator and returns
// every node's final partition.
func RunPPM(opt core.Options, p Params) ([][]float64, *core.Report, error) {
	return RunPPMOn(core.Run, opt, p)
}

// RunPPMOn executes the same program under any core.Runner — the
// simulator (core.Run) or one process of a distributed run (which fills
// only its own node's partition slice).
func RunPPMOn(run core.Runner, opt core.Options, p Params) ([][]float64, *core.Report, error) {
	p = p.WithDefaults()
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	out := make([][]float64, opt.Nodes)
	rep, err := run(opt, Prog(p, out))
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}
