// Package colloc implements the paper's Application 2: sparse-matrix
// generation for a multi-scale collocation method for integral equations
// (after Chen, Wu and Xu, the paper's reference [6]; the paper's run
// generated a 1M x 1M matrix with >200M nonzeros).
//
// The discretization is a multi-scale hat-function basis on [0,1] with a
// weakly singular log kernel. The algorithm iterates through the levels;
// at each level an intermediate table of expensive numerical integrations
// is produced and stored as global data, and the matrix entries whose
// quadrature lives at that level then read the table in patterns driven
// by the sparsity structure — high-volume, random, fine-grained access,
// which is exactly what the paper selected this application for.
//
// The three implementations (Generate, RunPPM, RunMPI) produce bitwise-
// identical matrices: every entry combines the same table values in the
// same order.
package colloc

import (
	"fmt"
	"math"
)

type Params struct {
	Levels int     // number of multi-scale levels L
	M0     int     // basis functions at level 0
	Delta  float64 // truncation radius in units of (h_li + h_lj)
}

// DefaultQuad is the inner-quadrature point count for table entries.
const DefaultQuad = 32

func (p Params) validate() error {
	if p.Levels <= 0 || p.Levels > 24 {
		return fmt.Errorf("colloc: Levels must be in [1,24], got %d", p.Levels)
	}
	if p.M0 <= 0 {
		return fmt.Errorf("colloc: M0 must be positive, got %d", p.M0)
	}
	if p.Delta <= 0 {
		return fmt.Errorf("colloc: Delta must be positive, got %v", p.Delta)
	}
	return nil
}

// m returns the basis count at level l.
func (p Params) m(l int) int { return p.M0 << uint(l) }

// q returns the quadrature-node count at level l (two per cell).
func (p Params) q(l int) int { return 2 * p.m(l) }

// offset returns the first global index of level l.
func (p Params) offset(l int) int { return p.M0 * ((1 << uint(l)) - 1) }

// N returns the total number of basis functions (matrix dimension).
func (p Params) N() int { return p.offset(p.Levels) }

// levelOf decomposes a global index into (level, position).
func (p Params) levelOf(i int) (l, k int) {
	for l = 0; l < p.Levels; l++ {
		if i < p.offset(l+1) {
			return l, i - p.offset(l)
		}
	}
	panic(fmt.Sprintf("colloc: index %d out of %d", i, p.N()))
}

// point returns the collocation point of basis (l, k).
func (p Params) point(l, k int) float64 {
	return (float64(k) + 0.5) / float64(p.m(l))
}

// kernel is the weakly singular integral kernel.
func kernel(t, s float64) float64 {
	return math.Log(math.Abs(t-s) + 1e-8)
}

// kernelFlops is the modeled cost of one kernel evaluation in flop-
// equivalents: abs, add and a transcendental log, which costs tens of
// cycles on the modeled Opteron (the machine model's effective flop rate
// is calibrated for memory-bound streaming, so compute-dense
// transcendentals are worth many flop-equivalents).
const kernelFlops = 25

// weight is the smooth density the tables integrate against.
func weight(u float64) float64 { return 1 + u*(1-u) }

// TableEntry computes the level-l intermediate table value at quadrature
// node j: an expensive inner quadrature of the kernel against the weight
// density. Every implementation calls exactly this function.
func TableEntry(p Params, l, j int) (val float64, flops int64) {
	s := (float64(j) + 0.5) / float64(p.q(l))
	for qq := 0; qq < DefaultQuad; qq++ {
		u := (float64(qq) + 0.5) / DefaultQuad
		val += kernel(s, u) * weight(u)
	}
	val /= DefaultQuad
	return val, DefaultQuad * (kernelFlops + 5)
}

// hat evaluates basis function (l, k) at s.
func hat(p Params, l, k int, s float64) float64 {
	h := 1 / float64(p.m(l))
	c := (float64(k) + 0.5) * h
	v := 1 - math.Abs(s-c)/(h/2)
	if v < 0 {
		return 0
	}
	return v
}

// ColRef describes one structurally nonzero entry of a row: the global
// column, its (level, position), and the quadrature level lq where its
// table reads happen (the finer of the row and column levels).
type ColRef struct {
	Col    int
	Lj, Kj int
	Lq     int
}

// RowPattern returns row i's structural nonzeros in increasing column
// order: columns (lj, kj) whose collocation point is within
// Delta*(h_li + h_lj) of t_i.
func RowPattern(p Params, i int) []ColRef {
	li, _ := p.levelOf(i)
	ti := p.point(li, i-p.offset(li))
	hi := 1 / float64(p.m(li))
	var out []ColRef
	for lj := 0; lj < p.Levels; lj++ {
		hj := 1 / float64(p.m(lj))
		radius := p.Delta * (hi + hj)
		kLo := int(math.Floor((ti - radius) / hj))
		kHi := int(math.Ceil((ti + radius) / hj))
		if kLo < 0 {
			kLo = 0
		}
		if kHi > p.m(lj) {
			kHi = p.m(lj)
		}
		for kj := kLo; kj < kHi; kj++ {
			if math.Abs(p.point(lj, kj)-ti) <= radius {
				lq := li
				if lj > lq {
					lq = lj
				}
				out = append(out, ColRef{Col: p.offset(lj) + kj, Lj: lj, Kj: kj, Lq: lq})
			}
		}
	}
	return out
}

// EntryValue computes matrix entry (row i with collocation point ti,
// column c) given read access to the level-c.Lq table. The quadrature
// runs over the level-Lq nodes inside the column basis's support; those
// node indices are the fine-grained reads the runtimes must move.
func EntryValue(p Params, ti float64, c ColRef, gread func(j int) float64) (val float64, flops int64) {
	j0, perCell := EntrySupport(p, c)
	qn := p.q(c.Lq)
	w := 1 / float64(qn)
	for j := j0; j < j0+perCell; j++ {
		s := (float64(j) + 0.5) / float64(qn)
		val += w * kernel(ti, s) * hat(p, c.Lj, c.Kj, s) * gread(j)
	}
	return val, int64(perCell) * (kernelFlops + 8)
}

// EntrySupport returns the contiguous level-Lq table range [j0, j0+n)
// that EntryValue reads for entry c: callers that can fetch the run in
// one block access prefetch it and use EntryValueBlock.
func EntrySupport(p Params, c ColRef) (j0, n int) {
	n = p.q(c.Lq) / p.m(c.Lj) // level-Lq nodes inside the column's support
	return c.Kj * n, n
}

// EntryValueBlock is EntryValue over a prefetched table run: tab[i] must
// hold table value j0+i for the range EntrySupport reports. The floating-
// point evaluation order is identical to EntryValue's, so both produce
// bitwise-equal entries.
func EntryValueBlock(p Params, ti float64, c ColRef, tab []float64) (val float64, flops int64) {
	j0, perCell := EntrySupport(p, c)
	qn := p.q(c.Lq)
	w := 1 / float64(qn)
	for j := j0; j < j0+perCell; j++ {
		s := (float64(j) + 0.5) / float64(qn)
		val += w * kernel(ti, s) * hat(p, c.Lj, c.Kj, s) * tab[j-j0]
	}
	return val, int64(perCell) * (kernelFlops + 8)
}

// Entry is one stored matrix entry.
type Entry struct {
	Col int
	Val float64
}

// Matrix is the generated sparse matrix in row-major entry lists.
type Matrix struct {
	N    int
	Rows [][]Entry
}

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int {
	n := 0
	for _, r := range m.Rows {
		n += len(r)
	}
	return n
}

// Equal reports whether two matrices are identical (structure and bit-
// exact values).
func (m *Matrix) Equal(o *Matrix) bool {
	if m.N != o.N || len(m.Rows) != len(o.Rows) {
		return false
	}
	for i := range m.Rows {
		if len(m.Rows[i]) != len(o.Rows[i]) {
			return false
		}
		for k := range m.Rows[i] {
			if m.Rows[i][k] != o.Rows[i][k] {
				return false
			}
		}
	}
	return true
}

// Generate builds the matrix sequentially: the reference implementation.
func Generate(p Params) (*Matrix, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := p.N()
	// Per-level tables.
	tables := make([][]float64, p.Levels)
	for l := range tables {
		tables[l] = make([]float64, p.q(l))
		for j := range tables[l] {
			tables[l][j], _ = TableEntry(p, l, j)
		}
	}
	m := &Matrix{N: n, Rows: make([][]Entry, n)}
	for i := 0; i < n; i++ {
		li, ki := p.levelOf(i)
		ti := p.point(li, ki)
		for _, c := range RowPattern(p, i) {
			tab := tables[c.Lq]
			v, _ := EntryValue(p, ti, c, func(j int) float64 { return tab[j] })
			m.Rows[i] = append(m.Rows[i], Entry{Col: c.Col, Val: v})
		}
	}
	return m, nil
}
