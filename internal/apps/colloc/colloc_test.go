package colloc

import (
	"math"
	"testing"

	"ppm/internal/core"
	"ppm/internal/machine"
)

var small = Params{Levels: 4, M0: 6, Delta: 2.5}

func TestParams(t *testing.T) {
	if small.N() != 6*15 {
		t.Errorf("N = %d", small.N())
	}
	if small.offset(0) != 0 || small.offset(1) != 6 || small.offset(2) != 18 {
		t.Error("offsets wrong")
	}
	l, k := small.levelOf(0)
	if l != 0 || k != 0 {
		t.Error("levelOf(0)")
	}
	l, k = small.levelOf(17)
	if l != 1 || k != 11 {
		t.Errorf("levelOf(17) = (%d,%d)", l, k)
	}
	if _, err := Generate(Params{Levels: 0, M0: 4, Delta: 1}); err == nil {
		t.Error("bad Levels accepted")
	}
	if _, err := Generate(Params{Levels: 2, M0: 0, Delta: 1}); err == nil {
		t.Error("bad M0 accepted")
	}
	if _, err := Generate(Params{Levels: 2, M0: 4, Delta: 0}); err == nil {
		t.Error("bad Delta accepted")
	}
}

func TestRowPatternProperties(t *testing.T) {
	p := small
	for i := 0; i < p.N(); i++ {
		cols := RowPattern(p, i)
		if len(cols) == 0 {
			t.Fatalf("row %d empty", i)
		}
		// Columns strictly increasing, each within bounds; diagonal present.
		hasDiag := false
		for k, c := range cols {
			if c.Col < 0 || c.Col >= p.N() {
				t.Fatalf("row %d col %d out of range", i, c.Col)
			}
			if k > 0 && cols[k-1].Col >= c.Col {
				t.Fatalf("row %d columns not increasing", i)
			}
			if c.Col == i {
				hasDiag = true
			}
			if want := maxInt(levelOfCol(p, i), c.Lj); c.Lq != want {
				t.Fatalf("row %d col %d: Lq = %d, want %d", i, c.Col, c.Lq, want)
			}
		}
		if !hasDiag {
			t.Fatalf("row %d missing diagonal", i)
		}
	}
}

func levelOfCol(p Params, i int) int {
	l, _ := p.levelOf(i)
	return l
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestGenerateBasicSanity(t *testing.T) {
	m, err := Generate(small)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != small.N() || m.NNZ() == 0 {
		t.Fatal("empty matrix")
	}
	// All values finite; diagonal entries nonzero.
	for i, row := range m.Rows {
		for _, e := range row {
			if math.IsNaN(e.Val) || math.IsInf(e.Val, 0) {
				t.Fatalf("row %d col %d not finite: %v", i, e.Col, e.Val)
			}
		}
	}
	// Sparsity is asymptotic (nnz ~ n log n): density must fall as the
	// level count grows.
	big, err := Generate(Params{Levels: 7, M0: small.M0, Delta: small.Delta})
	if err != nil {
		t.Fatal(err)
	}
	densSmall := float64(m.NNZ()) / float64(m.N*m.N)
	densBig := float64(big.NNZ()) / float64(big.N*big.N)
	if densBig >= densSmall/2 {
		t.Errorf("density did not fall with size: %v -> %v", densSmall, densBig)
	}
}

func TestPPMMatchesSequentialExactly(t *testing.T) {
	ref, err := Generate(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 3, 5} {
		m, rep, err := RunPPM(core.Options{Nodes: nodes, Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if !m.Equal(ref) {
			t.Errorf("nodes=%d: PPM matrix differs from sequential", nodes)
		}
		if nodes > 1 && rep.Totals.RemoteReadElems == 0 {
			t.Errorf("nodes=%d: expected remote table reads", nodes)
		}
	}
}

func TestMPIMatchesSequentialExactly(t *testing.T) {
	ref, err := Generate(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {3, 1}, {2, 4}} {
		m, rep, err := RunMPI(MPIOptions{Nodes: shape[0], CoresPerNode: shape[1], Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if !m.Equal(ref) {
			t.Errorf("shape %v: MPI matrix differs from sequential", shape)
		}
		if shape[0]*shape[1] > 1 && rep.Totals.MsgsSent == 0 {
			t.Errorf("shape %v: no messages sent", shape)
		}
	}
}

func TestPPMEqualsMPI(t *testing.T) {
	a, _, err := RunPPM(core.Options{Nodes: 4, Machine: machine.Generic()}, small)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunMPI(MPIOptions{Nodes: 4, CoresPerNode: 1, Machine: machine.Generic()}, small)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("PPM and MPI matrices differ")
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() float64 {
		_, rep, err := RunPPM(core.Options{Nodes: 3, Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan().Seconds()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestTableEntryDeterministic(t *testing.T) {
	v1, f1 := TableEntry(small, 2, 7)
	v2, f2 := TableEntry(small, 2, 7)
	if v1 != v2 || f1 != f2 {
		t.Error("TableEntry nondeterministic")
	}
	if f1 <= 0 {
		t.Error("no flops reported")
	}
}
