package colloc

import (
	"fmt"
	"sort"

	"ppm/internal/cluster"
	"ppm/internal/machine"
	"ppm/internal/mp"
	"ppm/internal/partition"
)

// MPIOptions configures the message-passing baseline run.
type MPIOptions struct {
	Nodes        int
	CoresPerNode int
	Machine      *machine.Machine
	Parallel     bool // host-parallel scheduler (bit-identical results)
}

func (o MPIOptions) fill() (MPIOptions, error) {
	if o.Machine == nil {
		o.Machine = machine.Franklin()
	}
	if err := o.Machine.Validate(); err != nil {
		return o, err
	}
	if o.CoresPerNode == 0 {
		o.CoresPerNode = o.Machine.CoresPerNode
	}
	if o.Nodes <= 0 || o.CoresPerNode <= 0 {
		return o, fmt.Errorf("colloc: invalid MPI shape %d nodes x %d cores", o.Nodes, o.CoresPerNode)
	}
	return o, nil
}

// RunMPI generates the matrix with the message-passing program: per
// level, each rank computes its block of the table, builds an explicit
// fetch plan for the scattered remote table values its rows need,
// exchanges index lists and packed value replies, and only then computes
// its entries from local + fetched data.
func RunMPI(opt MPIOptions, p Params) (*Matrix, *cluster.Report, error) {
	o, err := opt.fill()
	if err != nil {
		return nil, nil, err
	}
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	n := p.N()
	out := &Matrix{N: n, Rows: make([][]Entry, n)}
	rep, err := cluster.Run(cluster.Config{
		Procs:        o.Nodes * o.CoresPerNode,
		ProcsPerNode: o.CoresPerNode,
		Machine:      o.Machine,
		Parallel:     o.Parallel,
	}, func(proc *cluster.Proc) {
		mpiNode(mp.New(proc), p, out)
	})
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}

func mpiNode(c *mp.Comm, p Params, out *Matrix) {
	n := p.N()
	ranks, me := c.Size(), c.Rank()
	// Cyclic row distribution, same as the PPM program: entry cost grows
	// steeply with the row's level.
	var myRows []int
	for i := me; i < n; i += ranks {
		myRows = append(myRows, i)
	}

	type slot struct {
		row int
		c   ColRef
	}
	var pat []slot
	for _, i := range myRows {
		for _, cr := range RowPattern(p, i) {
			pat = append(pat, slot{row: i, c: cr})
		}
	}
	c.Proc().ChargeFlops(int64(len(pat) * 8))
	vals := make([]float64, len(pat))

	for l := 0; l < p.Levels; l++ {
		tabPart := partition.NewBlock(p.q(l), ranks)
		tlo, thi := tabPart.Range(me)
		chunk := make([]float64, thi-tlo)
		var fl int64
		for j := tlo; j < thi; j++ {
			v, f := TableEntry(p, l, j)
			chunk[j-tlo] = v
			fl += f
		}
		c.Proc().ChargeFlops(fl)

		// Which table indices do my level-l entries need, and who owns
		// them? Dedupe, then exchange request lists and packed replies.
		needSet := make(map[int]bool)
		var mine []int
		for s, sl := range pat {
			if sl.c.Lq != l {
				continue
			}
			mine = append(mine, s)
			perCell := p.q(l) / p.m(sl.c.Lj)
			j0 := sl.c.Kj * perCell
			for j := j0; j < j0+perCell; j++ {
				if j < tlo || j >= thi {
					needSet[j] = true
				}
			}
		}
		reqs := make([][]int64, ranks)
		for j := range needSet {
			owner := tabPart.Owner(j)
			reqs[owner] = append(reqs[owner], int64(j))
		}
		for _, r := range reqs {
			sort.Slice(r, func(a, b int) bool { return r[a] < r[b] })
		}
		gotReqs := mp.Alltoallv(c, reqs)
		replies := make([][]float64, ranks)
		for peer, list := range gotReqs {
			if peer == me || len(list) == 0 {
				continue
			}
			buf := make([]float64, len(list))
			for i, j := range list {
				buf[i] = chunk[int(j)-tlo]
			}
			c.Proc().ChargeMem(int64(8 * len(buf)))
			replies[peer] = buf
		}
		gotVals := mp.Alltoallv(c, replies)
		ghost := make(map[int]float64, len(needSet))
		for peer, list := range reqs {
			if peer == me {
				continue
			}
			vs := gotVals[peer]
			if len(vs) != len(list) {
				panic(fmt.Sprintf("colloc: rank %d: %d values for %d requests from %d", me, len(vs), len(list), peer))
			}
			for i, j := range list {
				ghost[int(j)] = vs[i]
			}
			c.Proc().ChargeMem(int64(8 * len(vs)))
		}
		gread := func(j int) float64 {
			if j >= tlo && j < thi {
				return chunk[j-tlo]
			}
			v, ok := ghost[j]
			if !ok {
				panic(fmt.Sprintf("colloc: rank %d missing table value %d at level %d", me, j, l))
			}
			return v
		}
		fl = 0
		for _, s := range mine {
			sl := pat[s]
			li, ki := p.levelOf(sl.row)
			ti := p.point(li, ki)
			v, f := EntryValue(p, ti, sl.c, gread)
			vals[s] = v
			fl += f
		}
		c.Proc().ChargeFlops(fl)
	}

	// Assemble local rows; they land in the shared output under the
	// simulator's turn discipline (each rank owns disjoint rows).
	for s, sl := range pat {
		out.Rows[sl.row] = append(out.Rows[sl.row], Entry{Col: sl.c.Col, Val: vals[s]})
	}
	c.Proc().ChargeMem(int64(16 * len(pat)))
	c.Barrier()
}
