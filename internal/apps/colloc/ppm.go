package colloc

import (
	"fmt"

	"ppm/internal/core"
)

// RunPPM generates the matrix with the Parallel Phase Model: per level,
// one global phase fills the level's shared table and a second computes
// the entries whose quadrature lives at that level, reading the table
// with global indexing (the runtime bundles the scattered reads).
func RunPPM(opt core.Options, p Params) (*Matrix, *core.Report, error) {
	return RunPPMOn(core.Run, opt, p)
}

// RunPPMOn executes the same PPM program under any core.Runner — the
// simulator (core.Run) or one process of a distributed run. Out.Rows is
// populated only for the calling process's cyclic rows in the latter
// case; the launcher merges the fragments.
func RunPPMOn(run core.Runner, opt core.Options, p Params) (*Matrix, *core.Report, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	n := p.N()
	out := &Matrix{N: n, Rows: make([][]Entry, n)}
	rep, err := run(opt, func(rt *core.Runtime) {
		nodes := rt.NodeCount()
		me := rt.NodeID()
		// Rows are dealt cyclically over the nodes: entry cost grows
		// steeply with the row's level, so a block distribution would
		// concentrate the expensive fine-level rows on the last node.
		var myRows []int
		for i := me; i < n; i += nodes {
			myRows = append(myRows, i)
		}

		// Precompute the local sparsity pattern (node-level, cheap).
		type slot struct {
			row int
			c   ColRef
		}
		var pat []slot
		rowStart := make([]int, len(myRows)+1)
		for r, i := range myRows {
			for _, c := range RowPattern(p, i) {
				pat = append(pat, slot{row: i, c: c})
			}
			rowStart[r+1] = len(pat)
		}
		rt.ChargeFlops(int64(len(pat) * 8))

		// Shared tables, one per level, and a node-shared value buffer
		// sized for the largest node's nonzero count.
		tables := make([]*core.Global[float64], p.Levels)
		for l := range tables {
			tables[l] = core.AllocGlobal[float64](rt, fmt.Sprintf("colloc.G%d", l), p.q(l))
		}
		maxNNZ := int(rt.AllReduceInt(int64(len(pat)), core.OpMax))
		vals := core.AllocNode[float64](rt, "colloc.vals", maxNNZ)

		// Entry costs are heavily skewed (a fine-level row integrating a
		// coarse-level basis reads exponentially many table values), so
		// express much more parallelism than there are cores and let the
		// runtime balance it — the model's intended use of virtualization.
		k := rt.CoresPerNode() * 32
		for l := 0; l < p.Levels; l++ {
			g := tables[l]
			glo, ghi := g.OwnerRange(rt)
			// Entries of this level in the local pattern.
			var mine []int
			for s, sl := range pat {
				if sl.c.Lq == l {
					mine = append(mine, s)
				}
			}
			rt.Do(k, func(vp *core.VP) {
				// Phase A: produce this level's table (own partition).
				// Entries are computed into a scratch row and committed
				// with one block write; the modeled per-element write
				// costs are unchanged because TableEntry charges nothing
				// inline (flops are charged in bulk below).
				vp.GlobalPhase(func() {
					vlo, vhi := core.ChunkRange(ghi-glo, k, vp.NodeRank())
					row := make([]float64, vhi-vlo)
					var fl int64
					for j := glo + vlo; j < glo+vhi; j++ {
						v, f := TableEntry(p, l, j)
						row[j-glo-vlo] = v
						fl += f
					}
					g.WriteBlock(vp, glo+vlo, row)
					vp.ChargeFlops(fl)
				})
				// Phase B: compute the level's matrix entries. Each
				// entry's quadrature reads a contiguous run of the table,
				// so the run is fetched with one block access and the
				// entry evaluated from the prefetched values.
				vp.GlobalPhase(func() {
					vlo, vhi := core.ChunkRange(len(mine), k, vp.NodeRank())
					var tab []float64
					var fl int64
					for _, s := range mine[vlo:vhi] {
						sl := pat[s]
						li, ki := p.levelOf(sl.row)
						ti := p.point(li, ki)
						j0, nj := EntrySupport(p, sl.c)
						if cap(tab) < nj {
							tab = make([]float64, nj)
						}
						g.ReadBlock(vp, j0, j0+nj, tab[:nj])
						v, f := EntryValueBlock(p, ti, sl.c, tab[:nj])
						vals.Write(vp, s, v)
						fl += f
					}
					vp.ChargeFlops(fl)
				})
			})
		}
		// Assemble local rows from the committed value buffer.
		vl := vals.Local(rt)
		for r, i := range myRows {
			row := make([]Entry, 0, rowStart[r+1]-rowStart[r])
			for s := rowStart[r]; s < rowStart[r+1]; s++ {
				row = append(row, Entry{Col: pat[s].c.Col, Val: vl[s]})
			}
			out.Rows[i] = row
		}
		rt.ChargeMem(int64(16 * len(pat)))
		rt.Barrier()
	})
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}
