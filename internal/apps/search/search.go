// Package search implements the paper's Section 5 worked example: given a
// sorted globally shared array A and a node-shared array B, find for each
// element of B its insertion rank in A by parallel binary search — one
// virtual processor per element of B, all searching inside one global
// phase. (The paper notes this is not an optimal parallel algorithm; it
// exists to show the programming model, and here also to exercise a
// latency-chain access pattern the bundler cannot fully hide.)
package search

import (
	"fmt"
	"sort"

	"ppm/internal/core"
	"ppm/internal/rng"
)

// Params describes one search workload.
type Params struct {
	N    int    // sorted global array length
	K    int    // keys per node
	Seed uint64 // workload seed
}

func (p Params) validate() error {
	if p.N <= 0 || p.K <= 0 {
		return fmt.Errorf("search: N and K must be positive, got %d, %d", p.N, p.K)
	}
	return nil
}

// MakeArray returns the sorted array A (deterministic in the seed).
func MakeArray(p Params) []float64 {
	r := rng.New(p.Seed)
	a := make([]float64, p.N)
	v := 0.0
	for i := range a {
		v += r.Float64() + 1e-9
		a[i] = v
	}
	return a
}

// MakeKeys returns node `node`'s key set B.
func MakeKeys(p Params, node int) []float64 {
	r := rng.New(p.Seed).Split(uint64(node) + 1)
	limit := float64(p.N)
	keys := make([]float64, p.K)
	for i := range keys {
		keys[i] = r.Float64() * limit
	}
	return keys
}

// RankSeq is the sequential reference: the insertion rank of key in a.
func RankSeq(a []float64, key float64) int {
	return sort.SearchFloat64s(a, key)
}

// RunPPM runs the paper's listing: per node, K virtual processors each
// binary-search one element of the node-shared B inside global shared A,
// writing the result rank into the node-shared rank array. It returns the
// per-node rank arrays.
func RunPPM(opt core.Options, p Params) ([][]int64, *core.Report, error) {
	return RunPPMOn(core.Run, opt, p)
}

// RunPPMOn executes the same PPM program under any core.Runner — the
// simulator (core.Run) or one process of a distributed run (which fills
// only its own node's rank slice).
func RunPPMOn(run core.Runner, opt core.Options, p Params) ([][]int64, *core.Report, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	a := MakeArray(p)
	out := make([][]int64, opt.Nodes)
	rep, err := run(opt, func(rt *core.Runtime) {
		A := core.AllocGlobal[float64](rt, "A", p.N)
		B := core.AllocNode[float64](rt, "B", p.K)
		rankInA := core.AllocNode[int64](rt, "rank_in_A", p.K)

		// Node-level initialization (A's partition, this node's keys).
		lo, hi := A.OwnerRange(rt)
		copy(A.Local(rt), a[lo:hi])
		rt.ChargeMem(int64(8 * (hi - lo)))
		copy(B.Local(rt), MakeKeys(p, rt.NodeID()))
		rt.ChargeMem(int64(8 * p.K))

		// The listing: PPM_do(K) binary_search(n, A, B, rank_in_A).
		rt.Do(p.K, func(vp *core.VP) {
			vp.GlobalPhase(func() {
				b := B.Read(vp, vp.NodeRank())
				left, right := -1, p.N
				for left+1 < right {
					middle := (left + right) / 2
					if A.Read(vp, middle) < b {
						left = middle
					} else {
						right = middle
					}
				}
				rankInA.Write(vp, vp.NodeRank(), int64(right))
				vp.ChargeFlops(int64(2 * bits(p.N)))
			})
		})

		out[rt.NodeID()] = append([]int64(nil), rankInA.Local(rt)...)
	})
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}

func bits(n int) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}
