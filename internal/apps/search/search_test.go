package search

import (
	"sort"
	"testing"
	"testing/quick"

	"ppm/internal/core"
	"ppm/internal/machine"
)

func TestValidation(t *testing.T) {
	if _, _, err := RunPPM(core.Options{Nodes: 1, Machine: machine.Generic()}, Params{N: 0, K: 1}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, _, err := RunPPM(core.Options{Nodes: 1, Machine: machine.Generic()}, Params{N: 1, K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestArraySortedAndDeterministic(t *testing.T) {
	p := Params{N: 500, K: 10, Seed: 3}
	a := MakeArray(p)
	if !sort.Float64sAreSorted(a) {
		t.Fatal("array not sorted")
	}
	b := MakeArray(p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MakeArray nondeterministic")
		}
	}
	k1, k2 := MakeKeys(p, 2), MakeKeys(p, 2)
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("MakeKeys nondeterministic")
		}
	}
	if MakeKeys(p, 0)[0] == MakeKeys(p, 1)[0] {
		t.Error("different nodes should draw different keys")
	}
}

func TestRanksMatchSequential(t *testing.T) {
	p := Params{N: 2048, K: 64, Seed: 11}
	for _, nodes := range []int{1, 2, 4} {
		ranks, rep, err := RunPPM(core.Options{Nodes: nodes, Machine: machine.Generic()}, p)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		a := MakeArray(p)
		for node := 0; node < nodes; node++ {
			keys := MakeKeys(p, node)
			for i, key := range keys {
				want := int64(RankSeq(a, key))
				if ranks[node][i] != want {
					t.Fatalf("nodes=%d node=%d key %d: rank %d, want %d",
						nodes, node, i, ranks[node][i], want)
				}
			}
		}
		if nodes > 1 && rep.Totals.RemoteReadElems == 0 {
			t.Errorf("nodes=%d: binary search did no remote reads", nodes)
		}
	}
}

// Property: ranks returned are valid insertion points.
func TestRankIsInsertionPointProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := Params{N: 257, K: 16, Seed: seed}
		ranks, _, err := RunPPM(core.Options{Nodes: 3, Machine: machine.Generic()}, p)
		if err != nil {
			return false
		}
		a := MakeArray(p)
		for node := 0; node < 3; node++ {
			keys := MakeKeys(p, node)
			for i, key := range keys {
				r := int(ranks[node][i])
				if r < 0 || r > p.N {
					return false
				}
				if r > 0 && a[r-1] >= key {
					return false
				}
				if r < p.N && a[r] < key {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
