package jacobi

import (
	"fmt"
	"sort"

	"ppm/internal/cluster"
	"ppm/internal/machine"
	"ppm/internal/mp"
	"ppm/internal/partition"
)

// MPIOptions configures the message-passing run.
type MPIOptions struct {
	Nodes        int
	CoresPerNode int
	Machine      *machine.Machine
	Parallel     bool // host-parallel scheduler (bit-identical results)
}

func (o MPIOptions) fill() (MPIOptions, error) {
	if o.Machine == nil {
		o.Machine = machine.Franklin()
	}
	if err := o.Machine.Validate(); err != nil {
		return o, err
	}
	if o.CoresPerNode == 0 {
		o.CoresPerNode = o.Machine.CoresPerNode
	}
	if o.Nodes <= 0 || o.CoresPerNode <= 0 {
		return o, fmt.Errorf("jacobi: invalid MPI shape %d nodes x %d cores", o.Nodes, o.CoresPerNode)
	}
	return o, nil
}

const tagHalo = 2

// RunMPI relaxes the grid with the classic structured message-passing
// pattern: block decomposition, per-sweep halo exchange of the boundary
// planes, pure local updates. This is message passing on its home turf.
func RunMPI(opt MPIOptions, p Params) ([]float64, *cluster.Report, error) {
	o, err := opt.fill()
	if err != nil {
		return nil, nil, err
	}
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	n := p.N()
	out := make([]float64, n)
	rep, err := cluster.Run(cluster.Config{
		Procs:        o.Nodes * o.CoresPerNode,
		ProcsPerNode: o.CoresPerNode,
		Machine:      o.Machine,
		Parallel:     o.Parallel,
	}, func(proc *cluster.Proc) {
		c := mp.New(proc)
		part := partition.NewBlock(n, c.Size())
		lo, hi := part.Range(c.Rank())
		nLocal := hi - lo

		// Halo plan: the out-of-block neighbor indices each point needs.
		needSet := make(map[int]bool)
		for i := lo; i < hi; i++ {
			p.relaxPoint(i, func(j int) float64 {
				if j < lo || j >= hi {
					needSet[j] = true
				}
				return 0
			})
		}
		needed := make([]int, 0, len(needSet))
		for j := range needSet {
			needed = append(needed, j)
		}
		sort.Ints(needed)
		ghostOf := make(map[int]int, len(needed))
		reqs := make([][]int64, c.Size())
		for slot, j := range needed {
			ghostOf[j] = slot
			owner := part.Owner(j)
			reqs[owner] = append(reqs[owner], int64(j))
		}
		gotReqs := mp.Alltoallv(c, reqs)

		u := make([]float64, nLocal)
		next := make([]float64, nLocal)
		ghosts := make([]float64, len(needed))
		for s := 0; s < p.Sweeps; s++ {
			// Exchange boundary planes.
			for peer, list := range gotReqs {
				if peer == c.Rank() || len(list) == 0 {
					continue
				}
				buf := make([]float64, len(list))
				for i, j := range list {
					buf[i] = u[int(j)-lo]
				}
				proc.ChargeMem(int64(8 * len(buf)))
				mp.Send(c, peer, tagHalo, buf)
			}
			for peer, list := range reqs {
				if peer == c.Rank() || len(list) == 0 {
					continue
				}
				buf := mp.Recv[float64](c, peer, tagHalo)
				for i, j := range list {
					ghosts[ghostOf[int(j)]] = buf[i]
				}
				proc.ChargeMem(int64(8 * len(buf)))
			}
			for i := lo; i < hi; i++ {
				next[i-lo] = p.relaxPoint(i, func(j int) float64 {
					if j >= lo && j < hi {
						return u[j-lo]
					}
					return ghosts[ghostOf[j]]
				})
			}
			proc.ChargeFlops(int64(relaxFlops * nLocal))
			u, next = next, u
		}
		full := mp.Gatherv(c, 0, u, part.Counts())
		if c.Rank() == 0 {
			copy(out, full)
		}
	})
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}
