// Package jacobi implements a structured counterpoint to the paper's
// three unstructured applications: 7-point Jacobi relaxation on a regular
// 3-D grid. The paper's introduction concedes that message passing "has
// been very successful in providing good application performance for
// structured (or regular) scientific applications"; this app exists to
// check that the reproduction's cost model honors that concession — the
// MPI version should be at least competitive here, unlike in Figures 1-3.
//
// The PPM version is also a showcase of phase semantics: Jacobi needs
// double buffering (all reads must see the previous sweep), and a global
// phase provides exactly that for free — the program reads and writes the
// same shared array in one phase.
package jacobi

import "fmt"

// Params describes one relaxation problem.
type Params struct {
	NX, NY, NZ int
	Sweeps     int
}

// N returns the number of grid points.
func (p Params) N() int { return p.NX * p.NY * p.NZ }

func (p Params) validate() error {
	if p.NX <= 0 || p.NY <= 0 || p.NZ <= 0 {
		return fmt.Errorf("jacobi: grid %dx%dx%d invalid", p.NX, p.NY, p.NZ)
	}
	if p.Sweeps < 0 {
		return fmt.Errorf("jacobi: Sweeps must be non-negative, got %d", p.Sweeps)
	}
	return nil
}

// source is the fixed right-hand side: a deterministic bump pattern.
func (p Params) source(i int) float64 {
	x, y, z := i%p.NX, (i/p.NX)%p.NY, i/(p.NX*p.NY)
	return float64((x*3+y*5+z*7)%11) / 11
}

// relaxPoint computes one Jacobi update for point i from read access to
// the previous iterate. Shared by all implementations so results are
// bitwise identical.
func (p Params) relaxPoint(i int, read func(j int) float64) float64 {
	x, y, z := i%p.NX, (i/p.NX)%p.NY, i/(p.NX*p.NY)
	sum := p.source(i)
	if x > 0 {
		sum += read(i - 1)
	}
	if x < p.NX-1 {
		sum += read(i + 1)
	}
	if y > 0 {
		sum += read(i - p.NX)
	}
	if y < p.NY-1 {
		sum += read(i + p.NX)
	}
	if z > 0 {
		sum += read(i - p.NX*p.NY)
	}
	if z < p.NZ-1 {
		sum += read(i + p.NX*p.NY)
	}
	return sum / 7
}

// relaxFlops is the modeled cost of one point update.
const relaxFlops = 9

// Solve runs the sequential reference and returns the final grid.
func Solve(p Params) ([]float64, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := p.N()
	u := make([]float64, n)
	next := make([]float64, n)
	for s := 0; s < p.Sweeps; s++ {
		for i := 0; i < n; i++ {
			next[i] = p.relaxPoint(i, func(j int) float64 { return u[j] })
		}
		u, next = next, u
	}
	return u, nil
}
