package jacobi

import (
	"ppm/internal/core"
)

// RunPPM relaxes the grid under the Parallel Phase Model. One global
// phase per sweep: every VP reads its points' neighbors from the shared
// previous iterate — begin-of-phase semantics ARE the double buffer — and
// writes the new values, which commit at the phase end.
func RunPPM(opt core.Options, p Params) ([]float64, *core.Report, error) {
	return RunPPMOn(core.Run, opt, p)
}

// RunPPMOn executes the same PPM program under any core.Runner — the
// simulator (core.Run) or one process of a distributed run.
func RunPPMOn(run core.Runner, opt core.Options, p Params) ([]float64, *core.Report, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	n := p.N()
	out := make([]float64, n)
	rep, err := run(opt, func(rt *core.Runtime) {
		u := core.AllocGlobal[float64](rt, "jacobi.u", n)
		lo, hi := u.OwnerRange(rt)
		nLocal := hi - lo
		k := rt.CoresPerNode() * 4
		// Checkpoint-aware outer loop: the tag is the number of completed
		// sweeps, so a restored run fast-forwards past them (one sweep is
		// one global phase; the array state carries everything else).
		// Under the simulator, or without checkpointing configured, both
		// calls are no-ops and the loop runs from 0 as always.
		start := 0
		if tag, ok := rt.RestoreCheckpoint(); ok {
			start = int(tag)
		}
		for s := start; s < p.Sweeps; s++ {
			rt.Do(k, func(vp *core.VP) {
				vp.GlobalPhase(func() {
					vlo, vhi := core.ChunkRange(nLocal, k, vp.NodeRank())
					for i := lo + vlo; i < lo+vhi; i++ {
						u.Write(vp, i, p.relaxPoint(i, func(j int) float64 {
							return u.Read(vp, j)
						}))
					}
					vp.ChargeFlops(int64(relaxFlops * (vhi - vlo)))
				})
			})
			rt.MaybeCheckpoint(int64(s + 1))
		}
		rt.Barrier()
		if rt.NodeID() == 0 {
			for i := 0; i < n; i++ {
				out[i] = u.At(rt, i)
			}
		}
	})
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}
