package jacobi

import (
	"math"
	"testing"

	"ppm/internal/core"
	"ppm/internal/machine"
)

var small = Params{NX: 8, NY: 6, NZ: 10, Sweeps: 5}

func TestValidation(t *testing.T) {
	if _, err := Solve(Params{NX: 0, NY: 1, NZ: 1, Sweeps: 1}); err == nil {
		t.Error("bad grid accepted")
	}
	if _, err := Solve(Params{NX: 1, NY: 1, NZ: 1, Sweeps: -1}); err == nil {
		t.Error("bad sweeps accepted")
	}
}

func TestSequentialConvergesTowardFixedPoint(t *testing.T) {
	a, err := Solve(Params{NX: 6, NY: 6, NZ: 6, Sweeps: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(Params{NX: 6, NY: 6, NZ: 6, Sweeps: 51})
	if err != nil {
		t.Fatal(err)
	}
	var diff float64
	for i := range a {
		diff = math.Max(diff, math.Abs(a[i]-b[i]))
	}
	if diff > 0.05 {
		t.Errorf("iterates not contracting: step delta %v", diff)
	}
	for _, v := range a {
		if math.IsNaN(v) || v < 0 {
			t.Fatal("grid corrupted")
		}
	}
}

func TestPPMBitwiseMatchesSequential(t *testing.T) {
	ref, err := Solve(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 4} {
		got, rep, err := RunPPM(core.Options{Nodes: nodes, Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("nodes=%d: u[%d] = %v, want %v", nodes, i, got[i], ref[i])
			}
		}
		if nodes > 1 && rep.Totals.RemoteReadElems == 0 {
			t.Errorf("nodes=%d: no halo reads", nodes)
		}
	}
}

func TestMPIBitwiseMatchesSequential(t *testing.T) {
	ref, err := Solve(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {4, 1}} {
		got, rep, err := RunMPI(MPIOptions{Nodes: shape[0], CoresPerNode: shape[1], Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("shape %v: u[%d] = %v, want %v", shape, i, got[i], ref[i])
			}
		}
		if shape[0]*shape[1] > 1 && rep.Totals.MsgsSent == 0 {
			t.Errorf("shape %v: no halo messages", shape)
		}
	}
}

// The paper's concession: message passing is successful on structured
// applications. On this regular stencil the two models must be within a
// small factor of each other — nothing like the 10-20x PPM wins of the
// unstructured Figures 2-3 — and at low node counts (halo small, per-rank
// work large) MPI must not trail PPM at all.
func TestStructuredAppStaysCompetitive(t *testing.T) {
	p := Params{NX: 16, NY: 16, NZ: 32, Sweeps: 8}
	for _, nodes := range []int{4, 16} {
		_, prep, err := RunPPM(core.Options{Nodes: nodes, Machine: machine.Franklin()}, p)
		if err != nil {
			t.Fatal(err)
		}
		_, mrep, err := RunMPI(MPIOptions{Nodes: nodes, Machine: machine.Franklin()}, p)
		if err != nil {
			t.Fatal(err)
		}
		ppmSec := prep.Makespan().Seconds()
		mpiSec := mrep.Makespan.Seconds()
		if ratio := ppmSec / mpiSec; ratio < 0.45 || ratio > 4 {
			t.Errorf("nodes=%d: structured app should keep the models close: PPM/MPI = %v", nodes, ratio)
		}
		if nodes == 4 && ppmSec < mpiSec*0.9 {
			t.Errorf("nodes=%d: MPI should not trail PPM at low node counts: %v vs %v", nodes, ppmSec, mpiSec)
		}
	}
}
