package cg

import (
	"math"

	"ppm/internal/core"
	"ppm/internal/linalg"
	"ppm/internal/sparse"
)

func RunPPM(opt core.Options, prm Params) (*Result, *core.Report, error) {
	return RunPPMOn(core.Run, opt, prm)
}

// RunPPMOn executes the same PPM program under any core.Runner — the
// simulator (core.Run) or one process of a distributed run. A single
// program text for both modes is what makes their results comparable
// bit for bit.
func RunPPMOn(run core.Runner, opt core.Options, prm Params) (*Result, *core.Report, error) {
	if err := prm.validate(); err != nil {
		return nil, nil, err
	}
	res := &Result{}
	rep, err := run(opt, func(rt *core.Runtime) {
		n := prm.N()
		p := core.AllocGlobal[float64](rt, "cg.p", n)
		xOut := core.AllocGlobal[float64](rt, "cg.x", n)
		lo, hi := p.OwnerRange(rt)
		nLocal := hi - lo
		maxLocal := n/rt.NodeCount() + 1
		w := core.AllocNode[float64](rt, "cg.w", maxLocal)
		acc := core.AllocNode[float64](rt, "cg.acc", 1)

		// Assemble the local row block; charge streaming cost.
		a := sparse.Stencil27Rows(prm.NX, prm.NY, prm.NZ, lo, hi)
		rt.ChargeMem(int64(a.NNZ() * 12))
		// Run-length encode the column structure once: each stencil row's
		// 27 columns are nine x-direction triples, so the gather below
		// reads p through block accesses instead of an element at a time.
		runPtr, runs, maxRun := a.ColRuns()

		b := rhsRows(a)
		rt.ChargeFlops(int64(a.NNZ()))
		// x and r live in shared arrays (x doubles as the published
		// solution) so the iteration state is covered by phase-boundary
		// checkpoints and a restored run resumes mid-solve.
		rvec := core.AllocGlobal[float64](rt, "cg.r", n)
		x := xOut.Local(rt)
		r := rvec.Local(rt)
		copy(r, b)
		linalg.Copy(p.Local(rt), r)
		rt.ChargeMem(int64(8 * nLocal))

		dotB, fl := linalg.Dot(b, b)
		rt.ChargeFlops(fl)
		normB := math.Sqrt(rt.AllReduce(dotB, core.OpSum))
		rsLocal, fl := linalg.Dot(r, r)
		rt.ChargeFlops(fl)
		rs := rt.AllReduce(rsLocal, core.OpSum)

		// A checkpoint tagged T holds x, r, and p as of the end of
		// iteration T-1; resume recomputes rs from the restored residual
		// (Dot and the AllReduce grouping are deterministic, so the value
		// is bit-equal to the rsNew the checkpointed iteration saw).
		start := 0
		if tag, ok := rt.RestoreCheckpoint(); ok {
			start = int(tag)
			rsLocal, fl = linalg.Dot(r, r)
			rt.ChargeFlops(fl)
			rs = rt.AllReduce(rsLocal, core.OpSum)
		}

		k := rt.CoresPerNode() * 4
		iters, finalRes := start, math.Sqrt(rs)
		for it := start; it < prm.MaxIter; it++ {
			acc.Local(rt)[0] = 0
			// One global phase: w = A p on local rows, with the search
			// direction read through the globally shared array — remote
			// entries are fetched and bundled by the runtime — and the
			// p·w partial accumulated into node shared memory.
			rt.Do(k, func(vp *core.VP) {
				vp.GlobalPhase(func() {
					vlo, vhi := core.ChunkRange(nLocal, k, vp.NodeRank())
					buf := make([]float64, maxRun)
					var dot float64
					for row := vlo; row < vhi; row++ {
						var s float64
						kk := a.RowPtr[row]
						for _, cr := range runs[runPtr[row]:runPtr[row+1]] {
							p.ReadBlock(vp, cr.Col, cr.Col+cr.N, buf)
							for j := 0; j < cr.N; j++ {
								s += a.Val[kk] * buf[j]
								kk++
							}
						}
						w.Write(vp, row, s)
						dot += s * p.Read(vp, lo+row)
					}
					acc.Add(vp, 0, dot)
					vp.ChargeFlops(int64(2*a.RowNNZ(vlo, vhi) + 2*(vhi-vlo)))
				})
			})
			pw := rt.AllReduce(acc.Local(rt)[0], core.OpSum)
			alpha := rs / pw
			pl := p.Local(rt)
			wl := w.Local(rt)
			fl = linalg.Axpy(alpha, pl, x)
			fl += linalg.Axpy(-alpha, wl[:nLocal], r)
			rt.ChargeFlops(fl)
			rsLocal, fl = linalg.Dot(r, r)
			rt.ChargeFlops(fl)
			rsNew := rt.AllReduce(rsLocal, core.OpSum)
			iters = it + 1
			finalRes = math.Sqrt(rsNew)
			if prm.Tol > 0 && finalRes <= prm.Tol*normB {
				break
			}
			beta := rsNew / rs
			for i := range pl {
				pl[i] = r[i] + beta*pl[i]
			}
			rt.ChargeFlops(int64(2 * nLocal))
			rs = rsNew
			rt.MaybeCheckpoint(int64(it + 1))
		}
		// x already is xOut's local block; charge the publish traffic the
		// copy used to model and let node 0 collect it.
		rt.ChargeMem(int64(8 * nLocal))
		rt.Barrier()
		if rt.NodeID() == 0 {
			out := make([]float64, n)
			for i := range out {
				out[i] = xOut.At(rt, i)
			}
			res.X = out
			res.Iters = iters
			res.Residual = finalRes
		}
	})
	if err != nil {
		return nil, rep, err
	}
	return res, rep, nil
}
