// Package cg implements the paper's Application 1: a parallel linear
// solver for A x = b using the Conjugate Gradient method, where A is the
// 27-point implicit finite-difference operator of a diffusion problem on
// a 3-D chimney domain (the paper's run used 16,777,216 rows with ~400M
// nonzeros; the grid dimensions here are parameters).
//
// Three implementations share the same numerics:
//
//   - Solve: sequential reference.
//   - RunPPM: the PPM program — vectors in global shared memory, SpMV
//     reads the search direction with fine-grained global indexing, and
//     the runtime does the bundling (this is why the PPM source is a
//     fraction of the message-passing version's size, Table 1).
//   - RunMPI: the "highly tuned" message-passing baseline — an explicit
//     communication plan (which remote vector entries each neighbor
//     needs), packed halo exchanges, remapped column indices, and
//     collective reductions; one rank per core.
package cg

import (
	"fmt"
	"math"

	"ppm/internal/linalg"
	"ppm/internal/sparse"
)

type Params struct {
	NX, NY, NZ int     // grid dimensions (chimney: elongate NZ)
	MaxIter    int     // iteration cap
	Tol        float64 // relative residual target; 0 runs exactly MaxIter
}

// N returns the number of unknowns.
func (p Params) N() int { return p.NX * p.NY * p.NZ }

func (p Params) validate() error {
	if p.NX <= 0 || p.NY <= 0 || p.NZ <= 0 {
		return fmt.Errorf("cg: grid %dx%dx%d invalid", p.NX, p.NY, p.NZ)
	}
	if p.MaxIter <= 0 {
		return fmt.Errorf("cg: MaxIter must be positive, got %d", p.MaxIter)
	}
	return nil
}

// Result carries the solver outcome.
type Result struct {
	X        []float64 // solution (on the caller; gathered from rank 0)
	Iters    int
	Residual float64 // final absolute 2-norm of the residual
}

// rhsRows returns b[lo:hi) for the manufactured problem: b = A * 1, so
// the exact solution is the all-ones vector and b's entries are row sums.
func rhsRows(a *sparse.CSR) []float64 {
	b := make([]float64, a.Rows)
	for r := 0; r < a.Rows; r++ {
		var s float64
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			s += a.Val[k]
		}
		b[r] = s
	}
	return b
}

// Solve runs sequential CG on the full operator: the reference the
// parallel versions are validated against.
func Solve(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	a := sparse.Stencil27(p.NX, p.NY, p.NZ)
	b := rhsRows(a)
	n := p.N()
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	pv := append([]float64(nil), b...)
	w := make([]float64, n)
	normB, _ := linalg.Norm2(b)
	rs, _ := linalg.Dot(r, r)
	res := &Result{}
	for it := 0; it < p.MaxIter; it++ {
		a.MulVec(w, pv)
		pw, _ := linalg.Dot(pv, w)
		alpha := rs / pw
		linalg.Axpy(alpha, pv, x)
		linalg.Axpy(-alpha, w, r)
		rsNew, _ := linalg.Dot(r, r)
		res.Iters = it + 1
		res.Residual = math.Sqrt(rsNew)
		if p.Tol > 0 && res.Residual <= p.Tol*normB {
			break
		}
		beta := rsNew / rs
		for i := range pv {
			pv[i] = r[i] + beta*pv[i]
		}
		rs = rsNew
	}
	res.X = x
	return res, nil
}

// RunPPM solves the problem with the Parallel Phase Model and returns the
