package cg

import (
	"math"
	"testing"

	"ppm/internal/core"
	"ppm/internal/linalg"
	"ppm/internal/machine"
)

var small = Params{NX: 6, NY: 5, NZ: 8, MaxIter: 200, Tol: 1e-10}

func TestSequentialConvergesToOnes(t *testing.T) {
	res, err := Solve(small)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= small.MaxIter {
		t.Fatalf("did not converge in %d iterations (residual %g)", res.Iters, res.Residual)
	}
	for i, v := range res.X {
		if math.Abs(v-1) > 1e-7 {
			t.Fatalf("x[%d] = %v, want 1", i, v)
		}
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := Solve(Params{NX: 0, NY: 1, NZ: 1, MaxIter: 5}); err == nil {
		t.Error("bad grid accepted")
	}
	if _, err := Solve(Params{NX: 1, NY: 1, NZ: 1, MaxIter: 0}); err == nil {
		t.Error("bad MaxIter accepted")
	}
	if _, _, err := RunPPM(core.Options{Nodes: 1, Machine: machine.Generic()}, Params{NX: -1, NY: 1, NZ: 1, MaxIter: 1}); err == nil {
		t.Error("RunPPM accepted bad params")
	}
	if _, _, err := RunMPI(MPIOptions{Nodes: 1, Machine: machine.Generic()}, Params{NX: -1, NY: 1, NZ: 1, MaxIter: 1}); err == nil {
		t.Error("RunMPI accepted bad params")
	}
	if _, _, err := RunMPI(MPIOptions{Nodes: -2, Machine: machine.Generic()}, small); err == nil {
		t.Error("RunMPI accepted bad shape")
	}
}

func TestPPMMatchesSequential(t *testing.T) {
	ref, err := Solve(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 3, 4} {
		res, rep, err := RunPPM(core.Options{Nodes: nodes, Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if res.X == nil {
			t.Fatalf("nodes=%d: no solution collected", nodes)
		}
		if d := linalg.MaxAbsDiff(res.X, ref.X); d > 1e-6 {
			t.Errorf("nodes=%d: max diff vs sequential %g", nodes, d)
		}
		if res.Iters >= small.MaxIter {
			t.Errorf("nodes=%d: no convergence", nodes)
		}
		if rep.Makespan() <= 0 {
			t.Errorf("nodes=%d: empty makespan", nodes)
		}
		if nodes > 1 && rep.Totals.RemoteReadElems == 0 {
			t.Errorf("nodes=%d: SpMV produced no remote reads", nodes)
		}
	}
}

func TestMPIMatchesSequential(t *testing.T) {
	ref, err := Solve(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, shape := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {3, 4}} {
		res, rep, err := RunMPI(MPIOptions{Nodes: shape[0], CoresPerNode: shape[1], Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if d := linalg.MaxAbsDiff(res.X, ref.X); d > 1e-6 {
			t.Errorf("shape %v: max diff vs sequential %g", shape, d)
		}
		if shape[0]*shape[1] > 1 && rep.Totals.MsgsSent == 0 {
			t.Errorf("shape %v: no messages", shape)
		}
	}
}

func TestPPMDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		res, rep, err := RunPPM(core.Options{Nodes: 3, Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatal(err)
		}
		return res.Residual, rep.Makespan().Seconds()
	}
	r1, m1 := run()
	r2, m2 := run()
	if r1 != r2 || m1 != m2 {
		t.Errorf("nondeterministic: (%v, %v) vs (%v, %v)", r1, m1, r2, m2)
	}
}

func TestFixedIterationMode(t *testing.T) {
	p := small
	p.Tol = 0
	p.MaxIter = 7
	res, _, err := RunPPM(core.Options{Nodes: 2, Machine: machine.Generic()}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 7 {
		t.Errorf("fixed mode ran %d iterations, want 7", res.Iters)
	}
}

// The MPI baseline's traffic must be halo-sized, not O(n): the plan
// should only move boundary planes.
func TestMPIPlanIsSparse(t *testing.T) {
	p := Params{NX: 8, NY: 8, NZ: 16, MaxIter: 3, Tol: 0}
	_, rep, err := RunMPI(MPIOptions{Nodes: 4, CoresPerNode: 1, Machine: machine.Generic()}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Each of 4 ranks owns 4 z-planes (256 rows); halo = one plane (64) per
	// side. Per iteration per rank: <= 2 messages of 64 values. Plus plan
	// setup and reductions.
	perIter := rep.Totals.BytesSent / 3
	if perIter > 64*1024 {
		t.Errorf("halo traffic per iteration too large: %d bytes", perIter)
	}
}
