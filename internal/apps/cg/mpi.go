package cg

import (
	"fmt"
	"math"
	"sort"

	"ppm/internal/cluster"
	"ppm/internal/linalg"
	"ppm/internal/machine"
	"ppm/internal/mp"
	"ppm/internal/partition"
	"ppm/internal/sparse"
)

type MPIOptions struct {
	Nodes        int
	CoresPerNode int // ranks per node; 0 uses the machine's core count
	Machine      *machine.Machine
	Parallel     bool // host-parallel scheduler (bit-identical results)
}

func (o MPIOptions) fill() (MPIOptions, error) {
	if o.Machine == nil {
		o.Machine = machine.Franklin()
	}
	if err := o.Machine.Validate(); err != nil {
		return o, err
	}
	if o.CoresPerNode == 0 {
		o.CoresPerNode = o.Machine.CoresPerNode
	}
	if o.Nodes <= 0 || o.CoresPerNode <= 0 {
		return o, fmt.Errorf("cg: invalid MPI shape %d nodes x %d cores", o.Nodes, o.CoresPerNode)
	}
	return o, nil
}

// Tags for the halo exchange.
const tagHalo = 1

// RunMPI solves the problem with the hand-tuned message-passing program:
// one rank per core, explicit halo-exchange plan, packed messages.
func RunMPI(opt MPIOptions, prm Params) (*Result, *cluster.Report, error) {
	o, err := opt.fill()
	if err != nil {
		return nil, nil, err
	}
	if err := prm.validate(); err != nil {
		return nil, nil, err
	}
	res := &Result{}
	rep, err := cluster.Run(cluster.Config{
		Procs:        o.Nodes * o.CoresPerNode,
		ProcsPerNode: o.CoresPerNode,
		Machine:      o.Machine,
		Parallel:     o.Parallel,
	}, func(proc *cluster.Proc) {
		mpiNode(mp.New(proc), prm, res)
	})
	if err != nil {
		return nil, rep, err
	}
	return res, rep, nil
}

// haloPlan is the communication plan for the distributed SpMV: for every
// peer, which of my entries it needs (sends) and which of its entries I
// need (recvs), plus the column remap into [own | ghost] local indexing.
type haloPlan struct {
	needed   []int // sorted global indices I need from others
	ghostOf  map[int]int
	sendTo   [][]int // per peer: local offsets (in my block) to pack
	recvFrom [][]int // per peer: ghost slots to fill, in the peer's pack order
}

// buildPlan constructs the halo plan by exchanging index lists.
func buildPlan(c *mp.Comm, a *sparse.CSR, part partition.Block, lo, hi int) *haloPlan {
	me := c.Rank()
	pl := &haloPlan{ghostOf: make(map[int]int)}
	seen := make(map[int]bool)
	for _, col := range a.Col {
		if col < lo || col >= hi {
			if !seen[col] {
				seen[col] = true
				pl.needed = append(pl.needed, col)
			}
		}
	}
	sort.Ints(pl.needed)
	for slot, g := range pl.needed {
		pl.ghostOf[g] = slot
	}
	// Request lists per owner.
	reqs := make([][]int64, c.Size())
	for slot, g := range pl.needed {
		owner := part.Owner(g)
		reqs[owner] = append(reqs[owner], int64(g))
		_ = slot
	}
	// Every rank learns what its peers need from it.
	gotReqs := mp.Alltoallv(c, reqs)
	pl.sendTo = make([][]int, c.Size())
	for peer, list := range gotReqs {
		if peer == me || len(list) == 0 {
			continue
		}
		offs := make([]int, len(list))
		for i, g := range list {
			offs[i] = int(g) - lo
		}
		pl.sendTo[peer] = offs
	}
	pl.recvFrom = make([][]int, c.Size())
	for peer, list := range reqs {
		if peer == me || len(list) == 0 {
			continue
		}
		slots := make([]int, len(list))
		for i, g := range list {
			slots[i] = pl.ghostOf[int(g)]
		}
		pl.recvFrom[peer] = slots
	}
	return pl
}

// postHalo packs and posts this iteration's halo sends (eager; lowest
// peer first for determinism). The matching receives complete later, in
// completeHalo, so that interior computation overlaps the wire time.
func postHalo(c *mp.Comm, pl *haloPlan, local []float64) {
	for peer, offs := range pl.sendTo {
		if len(offs) == 0 {
			continue
		}
		buf := make([]float64, len(offs))
		for i, off := range offs {
			buf[i] = local[off]
		}
		c.Proc().ChargeMem(int64(8 * len(offs)))
		mp.Send(c, peer, tagHalo, buf)
	}
}

// completeHalo receives and unpacks the halos posted by the peers.
func completeHalo(c *mp.Comm, pl *haloPlan, ghosts []float64) {
	for peer, slots := range pl.recvFrom {
		if len(slots) == 0 {
			continue
		}
		buf := mp.Recv[float64](c, peer, tagHalo)
		if len(buf) != len(slots) {
			panic(fmt.Sprintf("cg: halo from %d has %d values, want %d", peer, len(buf), len(slots)))
		}
		for i, slot := range slots {
			ghosts[slot] = buf[i]
		}
		c.Proc().ChargeMem(int64(8 * len(slots)))
	}
}

func mpiNode(c *mp.Comm, prm Params, res *Result) {
	n := prm.N()
	part := partition.NewBlock(n, c.Size())
	lo, hi := part.Range(c.Rank())
	nLocal := hi - lo
	a := sparse.Stencil27Rows(prm.NX, prm.NY, prm.NZ, lo, hi)
	c.Proc().ChargeMem(int64(a.NNZ() * 12))

	pl := buildPlan(c, a, part, lo, hi)

	// Remap columns into [own | ghost] indexing so the inner loop is a
	// single indexed gather (this is the "tuned" part).
	cols := make([]int, len(a.Col))
	for k, g := range a.Col {
		if g >= lo && g < hi {
			cols[k] = g - lo
		} else {
			cols[k] = nLocal + pl.ghostOf[g]
		}
	}

	// Interior/boundary split: rows that touch no ghost can be computed
	// while the halos are in flight (the overlap half of "highly tuned").
	var interior, boundary []int
	for row := 0; row < nLocal; row++ {
		hasGhost := false
		for k := a.RowPtr[row]; k < a.RowPtr[row+1]; k++ {
			if cols[k] >= nLocal {
				hasGhost = true
				break
			}
		}
		if hasGhost {
			boundary = append(boundary, row)
		} else {
			interior = append(interior, row)
		}
	}

	b := rhsRows(a)
	c.Proc().ChargeFlops(int64(a.NNZ()))
	x := make([]float64, nLocal)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	w := make([]float64, nLocal)
	xExt := make([]float64, nLocal+len(pl.needed))

	sum := func(v float64) float64 {
		return mp.Allreduce(c, []float64{v}, func(x, y float64) float64 { return x + y })[0]
	}
	dotB, fl := linalg.Dot(b, b)
	c.Proc().ChargeFlops(fl)
	normB := math.Sqrt(sum(dotB))
	rsLocal, fl := linalg.Dot(r, r)
	c.Proc().ChargeFlops(fl)
	rs := sum(rsLocal)

	spmvRows := func(rows []int, pw *float64) {
		var flops int64
		for _, row := range rows {
			var s float64
			for k := a.RowPtr[row]; k < a.RowPtr[row+1]; k++ {
				s += a.Val[k] * xExt[cols[k]]
			}
			w[row] = s
			*pw += s * p[row]
			flops += int64(2*(a.RowPtr[row+1]-a.RowPtr[row]) + 2)
		}
		c.Proc().ChargeFlops(flops)
	}

	iters, finalRes := 0, math.Sqrt(rs)
	for it := 0; it < prm.MaxIter; it++ {
		copy(xExt[:nLocal], p)
		postHalo(c, pl, p)
		var pw float64
		// Interior rows overlap the halo flight time; the receives then
		// complete (usually already arrived) and boundary rows finish.
		spmvRows(interior, &pw)
		completeHalo(c, pl, xExt[nLocal:])
		spmvRows(boundary, &pw)
		pwAll := sum(pw)
		alpha := rs / pwAll
		fl = linalg.Axpy(alpha, p, x)
		fl += linalg.Axpy(-alpha, w, r)
		c.Proc().ChargeFlops(fl)
		rsLocal, fl = linalg.Dot(r, r)
		c.Proc().ChargeFlops(fl)
		rsNew := sum(rsLocal)
		iters = it + 1
		finalRes = math.Sqrt(rsNew)
		if prm.Tol > 0 && finalRes <= prm.Tol*normB {
			break
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		c.Proc().ChargeFlops(int64(2 * nLocal))
		rs = rsNew
	}
	full := mp.Gatherv(c, 0, x, part.Counts())
	if c.Rank() == 0 {
		res.X = full
		res.Iters = iters
		res.Residual = finalRes
	}
}
