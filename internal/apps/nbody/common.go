// Package nbody implements the paper's Application 3: Barnes–Hut N-body
// simulation (the paper's run used 2M particles). Each time step builds
// an octree over the particles and computes forces through it — O(n log
// n) work with totally data-driven, random, fine-grained access to the
// tree, which the paper singles out as "generally unsuitable for MPI".
//
// The particle set is block-partitioned; every partition builds an octree
// over its own bodies, and the acceleration on a body is the sum of the
// partial accelerations from all partitions' trees. Three implementations
// share this exact decomposition and therefore produce bitwise-identical
// trajectories for the same partition count:
//
//   - RunPartitioned: sequential reference.
//   - RunPPM: trees live in a globally shared array; VPs traverse remote
//     trees in place and the runtime bundles the fine-grained reads —
//     no tree is ever copied wholesale.
//   - RunMPI: the replication baseline the paper cites (Garmire–Ong):
//     every rank allgathers every other rank's flattened tree each step,
//     then computes locally. Simple, but the communication volume is the
//     whole forest.
package nbody

import (
	"fmt"
	"math"

	"ppm/internal/octree"
	"ppm/internal/partition"
	"ppm/internal/rng"
)

type Params struct {
	N     int     // number of bodies
	Steps int     // time steps
	Theta float64 // multipole acceptance angle
	Eps   float64 // Plummer softening
	DT    float64 // time step
	Seed  uint64  // initial-condition seed
}

func (p Params) validate() error {
	if p.N <= 0 {
		return fmt.Errorf("nbody: N must be positive, got %d", p.N)
	}
	if p.Steps < 0 {
		return fmt.Errorf("nbody: Steps must be non-negative, got %d", p.Steps)
	}
	if p.Theta < 0 {
		return fmt.Errorf("nbody: Theta must be non-negative, got %v", p.Theta)
	}
	if p.Eps <= 0 {
		return fmt.Errorf("nbody: Eps must be positive, got %v", p.Eps)
	}
	if p.DT <= 0 {
		return fmt.Errorf("nbody: DT must be positive, got %v", p.DT)
	}
	return nil
}

// State holds the particle phase space in structure-of-arrays layout.
type State struct {
	PX, PY, PZ []float64
	VX, VY, VZ []float64
	M          []float64
}

// Bodies converts the positions and masses to octree bodies.
func (s *State) Bodies(lo, hi int) []octree.Body {
	out := make([]octree.Body, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = octree.Body{X: s.PX[i], Y: s.PY[i], Z: s.PZ[i], M: s.M[i]}
	}
	return out
}

// InitState samples a Plummer-like sphere: the classic Plummer radial
// profile with isotropic directions, small random velocities, and equal
// masses summing to 1.
func InitState(p Params) *State {
	r := rng.New(p.Seed)
	s := &State{
		PX: make([]float64, p.N), PY: make([]float64, p.N), PZ: make([]float64, p.N),
		VX: make([]float64, p.N), VY: make([]float64, p.N), VZ: make([]float64, p.N),
		M: make([]float64, p.N),
	}
	for i := 0; i < p.N; i++ {
		u := r.Float64()
		for u < 1e-9 {
			u = r.Float64()
		}
		rad := 1 / math.Sqrt(math.Pow(u, -2.0/3.0)-1)
		if rad > 10 {
			rad = 10 // clip the rare far tail
		}
		// Uniform direction.
		z := 2*r.Float64() - 1
		phi := 2 * math.Pi * r.Float64()
		sxy := math.Sqrt(1 - z*z)
		s.PX[i] = rad * sxy * math.Cos(phi)
		s.PY[i] = rad * sxy * math.Sin(phi)
		s.PZ[i] = rad * z
		s.VX[i] = 0.05 * r.NormFloat64()
		s.VY[i] = 0.05 * r.NormFloat64()
		s.VZ[i] = 0.05 * r.NormFloat64()
		s.M[i] = 1 / float64(p.N)
	}
	return s
}

// buildFlops models the cost of constructing and summarizing an octree
// over n bodies.
func buildFlops(n int) int64 {
	if n <= 1 {
		return 32
	}
	return int64(80 * n * (1 + int(math.Ceil(math.Log2(float64(n))))))
}

// interactionFlops is the modeled cost of one body/cell interaction.
const interactionFlops = 20

// step advances one partition-decomposed time step given record access to
// every partition's flattened tree. sourceOf must return the tree source
// for partition r. Bodies [lo, hi) are updated in place. Returns the
// interaction count (for cost accounting).
func step(p Params, s *State, part partition.Block, lo, hi int,
	sourceOf func(r int) octree.Source) int64 {
	var inter int64
	for i := lo; i < hi; i++ {
		var ax, ay, az float64
		for r := 0; r < part.Parts; r++ {
			gx, gy, gz, n := octree.Accel(sourceOf(r), s.PX[i], s.PY[i], s.PZ[i], p.Theta, p.Eps)
			ax += gx
			ay += gy
			az += gz
			inter += n
		}
		s.VX[i] += ax * p.DT
		s.VY[i] += ay * p.DT
		s.VZ[i] += az * p.DT
	}
	// Positions move only after all forces are in (matches the phase
	// semantics of the PPM version, where position writes commit at the
	// end of the force phase).
	for i := lo; i < hi; i++ {
		s.PX[i] += s.VX[i] * p.DT
		s.PY[i] += s.VY[i] * p.DT
		s.PZ[i] += s.VZ[i] * p.DT
	}
	return inter
}

// RunPartitioned runs the simulation sequentially with the same
// partition decomposition the parallel versions use: the bitwise
// reference for `parts` partitions.
func RunPartitioned(p Params, parts int) (*State, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if parts <= 0 {
		return nil, fmt.Errorf("nbody: parts must be positive, got %d", parts)
	}
	s := InitState(p)
	part := partition.NewBlock(p.N, parts)
	for st := 0; st < p.Steps; st++ {
		flats := make([][]float64, parts)
		for r := 0; r < parts; r++ {
			rlo, rhi := part.Range(r)
			bodies := s.Bodies(rlo, rhi)
			cx, cy, cz, h := octree.Bounds(bodies)
			flats[r] = octree.Build(bodies, cx, cy, cz, h).Flatten()
		}
		step(p, s, part, 0, p.N, func(r int) octree.Source {
			return octree.SliceSource{Flat: flats[r]}
		})
	}
	return s, nil
}

// segCap returns the per-partition tree segment capacity (in tree nodes)
// for n bodies: enough for any LeafCap>=1 octree over n bodies at sane
// depths, with headroom.
func segCap(nLocalMax int) int {
	return 3*nLocalMax + 64
}

// treeReader adapts a PPM global shared array to octree.Reader, with a
