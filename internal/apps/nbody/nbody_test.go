package nbody

import (
	"math"
	"testing"

	"ppm/internal/core"
	"ppm/internal/machine"
	"ppm/internal/octree"
)

var small = Params{N: 300, Steps: 2, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 7}

func TestValidation(t *testing.T) {
	bad := []Params{
		{N: 0, Steps: 1, Theta: 0.5, Eps: 0.1, DT: 0.01},
		{N: 10, Steps: -1, Theta: 0.5, Eps: 0.1, DT: 0.01},
		{N: 10, Steps: 1, Theta: -1, Eps: 0.1, DT: 0.01},
		{N: 10, Steps: 1, Theta: 0.5, Eps: 0, DT: 0.01},
		{N: 10, Steps: 1, Theta: 0.5, Eps: 0.1, DT: 0},
	}
	for i, p := range bad {
		if _, err := RunPartitioned(p, 1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := RunPartitioned(small, 0); err == nil {
		t.Error("parts=0 accepted")
	}
}

func TestInitStateShape(t *testing.T) {
	s := InitState(small)
	var mass float64
	for i := 0; i < small.N; i++ {
		mass += s.M[i]
		r := math.Sqrt(s.PX[i]*s.PX[i] + s.PY[i]*s.PY[i] + s.PZ[i]*s.PZ[i])
		if r > 10.0001 {
			t.Fatalf("body %d outside clipped radius: %v", i, r)
		}
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Errorf("total mass %v, want 1", mass)
	}
	// Determinism of initial conditions.
	s2 := InitState(small)
	for i := range s.PX {
		if s.PX[i] != s2.PX[i] || s.VZ[i] != s2.VZ[i] {
			t.Fatal("InitState nondeterministic")
		}
	}
}

// The partitioned tree forces must approximate direct summation.
func TestForcesAccurateVsDirect(t *testing.T) {
	p := small
	p.Steps = 0
	s := InitState(p)
	bodies := s.Bodies(0, p.N)
	// Partitioned forest with 3 parts.
	const parts = 3
	var flats [parts][]float64
	for r := 0; r < parts; r++ {
		lo, hi := r*p.N/parts, (r+1)*p.N/parts
		sub := bodies[lo:hi]
		cx, cy, cz, h := octree.Bounds(sub)
		flats[r] = octree.Build(sub, cx, cy, cz, h).Flatten()
	}
	var worst float64
	for i := 0; i < p.N; i += 17 {
		var ax, ay, az float64
		for r := 0; r < parts; r++ {
			gx, gy, gz, _ := octree.Accel(octree.SliceSource{Flat: flats[r]},
				s.PX[i], s.PY[i], s.PZ[i], p.Theta, p.Eps)
			ax += gx
			ay += gy
			az += gz
		}
		dx, dy, dz := octree.DirectAccel(bodies, s.PX[i], s.PY[i], s.PZ[i], p.Eps)
		mag := math.Sqrt(dx*dx+dy*dy+dz*dz) + 1e-12
		err := math.Sqrt((ax-dx)*(ax-dx)+(ay-dy)*(ay-dy)+(az-dz)*(az-dz)) / mag
		if err > worst {
			worst = err
		}
	}
	if worst > 0.05 {
		t.Errorf("worst relative force error %v", worst)
	}
}

func statesEqual(a, b *State) bool {
	for i := range a.PX {
		if a.PX[i] != b.PX[i] || a.PY[i] != b.PY[i] || a.PZ[i] != b.PZ[i] ||
			a.VX[i] != b.VX[i] || a.VY[i] != b.VY[i] || a.VZ[i] != b.VZ[i] {
			return false
		}
	}
	return true
}

func TestPPMMatchesPartitionedReferenceBitwise(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		ref, err := RunPartitioned(small, nodes)
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := RunPPM(core.Options{Nodes: nodes, Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if !statesEqual(ref, got) {
			t.Errorf("nodes=%d: PPM trajectory differs from reference", nodes)
		}
		if nodes > 1 && rep.Totals.RemoteReadElems == 0 {
			t.Errorf("nodes=%d: no remote tree reads", nodes)
		}
	}
}

func TestMPIMatchesPartitionedReferenceBitwise(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		ref, err := RunPartitioned(small, ranks)
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := RunMPI(MPIOptions{Nodes: ranks, CoresPerNode: 1, Machine: machine.Generic()}, small)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !statesEqual(ref, got) {
			t.Errorf("ranks=%d: MPI trajectory differs from reference", ranks)
		}
		if ranks > 1 && rep.Totals.BytesSent == 0 {
			t.Errorf("ranks=%d: no replication traffic", ranks)
		}
	}
}

func TestPPMEqualsMPIWithAlignedPartitions(t *testing.T) {
	a, _, err := RunPPM(core.Options{Nodes: 3, Machine: machine.Generic()}, small)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunMPI(MPIOptions{Nodes: 3, CoresPerNode: 1, Machine: machine.Generic()}, small)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(a, b) {
		t.Error("PPM and MPI trajectories differ despite identical partitioning")
	}
}

// The replication baseline must move far more bytes than PPM's bundled
// fine-grained reads at equal node counts (the paper's Figure 3 driver).
func TestReplicationTrafficDwarfsPPM(t *testing.T) {
	p := Params{N: 1200, Steps: 1, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 3}
	_, ppmRep, err := RunPPM(core.Options{Nodes: 4, Machine: machine.Franklin()}, p)
	if err != nil {
		t.Fatal(err)
	}
	_, mpiRep, err := RunMPI(MPIOptions{Nodes: 4, Machine: machine.Franklin()}, p)
	if err != nil {
		t.Fatal(err)
	}
	ppmBytes := ppmRep.Totals.BytesOut
	mpiBytes := mpiRep.Totals.BytesSent
	if mpiBytes < 2*ppmBytes {
		t.Errorf("expected replication to dominate: MPI %d bytes vs PPM %d", mpiBytes, ppmBytes)
	}
}

func TestEnergyNotExploding(t *testing.T) {
	p := small
	p.Steps = 5
	s, err := RunPartitioned(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.N; i++ {
		if math.IsNaN(s.PX[i]) || math.Abs(s.PX[i]) > 100 {
			t.Fatalf("body %d diverged: %v", i, s.PX[i])
		}
	}
}
