package nbody

import (
	"fmt"

	"ppm/internal/cluster"
	"ppm/internal/machine"
	"ppm/internal/mp"
	"ppm/internal/octree"
	"ppm/internal/partition"
)

type MPIOptions struct {
	Nodes        int
	CoresPerNode int
	Machine      *machine.Machine
	Parallel     bool // host-parallel scheduler (bit-identical results)
}

func (o MPIOptions) fill() (MPIOptions, error) {
	if o.Machine == nil {
		o.Machine = machine.Franklin()
	}
	if err := o.Machine.Validate(); err != nil {
		return o, err
	}
	if o.CoresPerNode == 0 {
		o.CoresPerNode = o.Machine.CoresPerNode
	}
	if o.Nodes <= 0 || o.CoresPerNode <= 0 {
		return o, fmt.Errorf("nbody: invalid MPI shape %d nodes x %d cores", o.Nodes, o.CoresPerNode)
	}
	return o, nil
}

// RunMPI runs the tree-replication message-passing baseline: each step,
// every rank builds its local tree, all trees are allgathered to all
// ranks, and forces are computed locally against the replicated forest.
func RunMPI(opt MPIOptions, p Params) (*State, *cluster.Report, error) {
	o, err := opt.fill()
	if err != nil {
		return nil, nil, err
	}
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	init := InitState(p)
	out := &State{
		PX: make([]float64, p.N), PY: make([]float64, p.N), PZ: make([]float64, p.N),
		VX: make([]float64, p.N), VY: make([]float64, p.N), VZ: make([]float64, p.N),
		M: append([]float64(nil), init.M...),
	}
	rep, err := cluster.Run(cluster.Config{
		Procs:        o.Nodes * o.CoresPerNode,
		ProcsPerNode: o.CoresPerNode,
		Machine:      o.Machine,
		Parallel:     o.Parallel,
	}, func(proc *cluster.Proc) {
		c := mp.New(proc)
		ranks, me := c.Size(), c.Rank()
		part := partition.NewBlock(p.N, ranks)
		lo, hi := part.Range(me)
		nLocal := hi - lo
		s := &State{
			PX: append([]float64(nil), init.PX[lo:hi]...),
			PY: append([]float64(nil), init.PY[lo:hi]...),
			PZ: append([]float64(nil), init.PZ[lo:hi]...),
			VX: append([]float64(nil), init.VX[lo:hi]...),
			VY: append([]float64(nil), init.VY[lo:hi]...),
			VZ: append([]float64(nil), init.VZ[lo:hi]...),
			M:  append([]float64(nil), init.M[lo:hi]...),
		}
		for st := 0; st < p.Steps; st++ {
			bodies := s.Bodies(0, nLocal)
			cx, cy, cz, h := octree.Bounds(bodies)
			flat := octree.Build(bodies, cx, cy, cz, h).Flatten()
			proc.ChargeFlops(buildFlops(nLocal))
			// Replicate the forest: first the sizes, then every tree to
			// every rank. This is the method's defining (and damning)
			// traffic.
			lens := mp.Allgather(c, []int64{int64(len(flat))})
			counts := make([]int, ranks)
			for r := range counts {
				counts[r] = int(lens[r])
			}
			forest := mp.Allgatherv(c, flat, counts)
			offs := make([]int, ranks)
			off := 0
			for r := 0; r < ranks; r++ {
				offs[r] = off
				off += counts[r]
			}
			proc.ChargeMem(int64(8 * len(forest)))
			inter := step(p, s, part, 0, nLocal, func(r int) octree.Source {
				return octree.SliceSource{Flat: forest, Off: offs[r]}
			})
			proc.ChargeFlops(inter * interactionFlops)
			c.Barrier()
		}
		copy(out.PX[lo:hi], s.PX)
		copy(out.PY[lo:hi], s.PY)
		copy(out.PZ[lo:hi], s.PZ)
		copy(out.VX[lo:hi], s.VX)
		copy(out.VY[lo:hi], s.VY)
		copy(out.VZ[lo:hi], s.VZ)
		c.Barrier()
	})
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}
