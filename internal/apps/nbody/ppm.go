package nbody

import (
	"fmt"

	"ppm/internal/core"
	"ppm/internal/octree"
	"ppm/internal/partition"
)

// treeSource adapts a PPM global shared array to octree.Source, with a
// VP-local record cache: within a phase the forest is immutable, so each
// tree node is fetched through the runtime once per VP and reused across
// all of the VP's bodies. Records (not scalars) are the fetch unit, which
// is also what a real runtime would move.
type treeSource struct {
	g     *core.Global[float64]
	vp    *core.VP
	off   int
	cache map[int]*octree.FlatNode // keyed by absolute flat offset
}

func (s *treeSource) Node(i int, out *octree.FlatNode) {
	key := s.off + i*octree.Slots
	if nd, ok := s.cache[key]; ok {
		*out = *nd
		return
	}
	nd := new(octree.FlatNode)
	// A record is two contiguous slot runs (header, inline bodies), so it
	// is fetched with block reads; the elements and their modeled costs
	// match the scalar DecodeNode exactly.
	octree.DecodeNodeRuns(func(lo, hi int, dst []float64) { s.g.ReadBlock(s.vp, lo, hi, dst) }, s.off, i, nd)
	s.cache[key] = nd
	*out = *nd
}

// RunPPM runs the simulation under the Parallel Phase Model.
func RunPPM(opt core.Options, p Params) (*State, *core.Report, error) {
	return RunPPMOn(core.Run, opt, p)
}

// RunPPMOn executes the same PPM program under any core.Runner — the
// simulator (core.Run) or one process of a distributed run. In the
// latter case only the calling process's block of the position/velocity
// arrays is populated; the launcher merges the fragments.
func RunPPMOn(run core.Runner, opt core.Options, p Params) (*State, *core.Report, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	init := InitState(p)
	out := &State{
		PX: make([]float64, p.N), PY: make([]float64, p.N), PZ: make([]float64, p.N),
		VX: make([]float64, p.N), VY: make([]float64, p.N), VZ: make([]float64, p.N),
		M: append([]float64(nil), init.M...),
	}
	rep, err := run(opt, func(rt *core.Runtime) {
		nodes, me := rt.NodeCount(), rt.NodeID()
		part := partition.NewBlock(p.N, nodes)
		lo, hi := part.Range(me)
		nLocal := hi - lo
		capN := segCap(part.Size(0)) // per-node tree segment, in tree nodes
		segLen := capN * octree.Slots
		trees := core.AllocGlobal[float64](rt, "bh.trees", nodes*segLen)
		if glo, _ := trees.OwnerRange(rt); glo != me*segLen {
			panic("nbody: forest segment misaligned with block partition")
		}

		// Local working state: a copy of this node's slice of phase space.
		s := &State{
			PX: append([]float64(nil), init.PX[lo:hi]...),
			PY: append([]float64(nil), init.PY[lo:hi]...),
			PZ: append([]float64(nil), init.PZ[lo:hi]...),
			VX: append([]float64(nil), init.VX[lo:hi]...),
			VY: append([]float64(nil), init.VY[lo:hi]...),
			VZ: append([]float64(nil), init.VZ[lo:hi]...),
			M:  append([]float64(nil), init.M[lo:hi]...),
		}
		// Modest VP counts: force work is uniform per body, and larger
		// per-VP chunks let each VP's record cache amortize across more
		// bodies (#misses scales with VPs x distinct records).
		k := rt.CoresPerNode() * 2
		for st := 0; st < p.Steps; st++ {
			// Build this node's tree over its bodies and publish it into
			// the shared forest segment.
			bodies := s.Bodies(0, nLocal)
			cx, cy, cz, h := octree.Bounds(bodies)
			flat := octree.Build(bodies, cx, cy, cz, h).Flatten()
			if len(flat) > segLen {
				panic(fmt.Sprintf("nbody: tree of %d nodes exceeds segment capacity %d", len(flat)/octree.Slots, capN))
			}
			copy(trees.Local(rt)[:len(flat)], flat)
			rt.ChargeFlops(buildFlops(nLocal))
			rt.ChargeMem(int64(8 * len(flat)))

			// One global phase: every VP computes forces on its body
			// chunk by traversing all partitions' trees in place.
			rt.Do(k, func(vp *core.VP) {
				vp.GlobalPhase(func() {
					vlo, vhi := core.ChunkRange(nLocal, k, vp.NodeRank())
					cache := make(map[int]*octree.FlatNode)
					sources := make([]*treeSource, nodes)
					for r := range sources {
						sources[r] = &treeSource{g: trees, vp: vp, off: r * segLen, cache: cache}
					}
					// step mutates only s.VX/VY/VZ/PX/PY/PZ[i] for i in
					// this VP's [vlo, vhi) chunk, and ChunkRange windows
					// of distinct VPs are disjoint — a per-element
					// partition the analyzer cannot see through the
					// *State indirection.
					//ppmvet:ignore serialescape — writes are chunk-partitioned per VP
					inter := step(p, s, part, vlo, vhi, func(r int) octree.Source { return sources[r] })
					vp.ChargeFlops(inter * interactionFlops)
				})
			})
		}
		// Emit this node's final slice into the shared result.
		copy(out.PX[lo:hi], s.PX)
		copy(out.PY[lo:hi], s.PY)
		copy(out.PZ[lo:hi], s.PZ)
		copy(out.VX[lo:hi], s.VX)
		copy(out.VY[lo:hi], s.VY)
		copy(out.VZ[lo:hi], s.VZ)
		rt.Barrier()
	})
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}
