// Package jobspec defines the serialized description of one PPM job —
// application, parameters, cluster shape, backend — shared by the
// ppm-run CLI (-spec job.json) and the ppm-server control plane, so both
// submit exactly the same object and produce bit-identical results.
//
// The package also defines the canonical byte encoding of a normalized
// spec and its SHA-256 content hash, which keys the server's
// content-addressed result cache: two submissions hash equal exactly
// when the runtime would produce Float64bits-identical Series for them.
// Fields that cannot change the result (the job deadline) are excluded
// from the hash; everything else — including the backend, which changes
// which counters are populated — is included.
package jobspec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/scatter"
	"ppm/internal/apps/search"
	"ppm/internal/core"
	"ppm/internal/dist"
	"ppm/internal/machine"
)

// Backend names for Spec.Backend.
const (
	BackendSim      = "sim"      // sequential simulator (core.Run)
	BackendParallel = "parallel" // simulator on the parallel host scheduler
	BackendDist     = "dist"     // real node processes over TCP (core.RunDist)
)

// Spec describes one job. The zero value is not runnable; Normalize
// fills defaults (the same defaults the ppm-run flags use, so a spec
// submitted over HTTP and the equivalent CLI invocation hash equal).
type Spec struct {
	// App selects the application: cg, colloc, nbody, jacobi, search,
	// or scatter. Exactly one of the parameter blocks below is consulted.
	App string `json:"app"`
	// Backend selects the execution substrate: sim (default), parallel,
	// or dist.
	Backend string `json:"backend,omitempty"`
	// Nodes and Cores shape the cluster (defaults 2 and 4).
	Nodes int `json:"nodes,omitempty"`
	Cores int `json:"cores,omitempty"`
	// Preset names the machine cost model: franklin (default) or generic.
	Preset string `json:"preset,omitempty"`

	// Ablation switches, mirroring the ppm-run flags.
	NoBundling  bool `json:"no_bundling,omitempty"`
	NoOverlap   bool `json:"no_overlap,omitempty"`
	NoReadCache bool `json:"no_readcache,omitempty"`
	Static      bool `json:"static,omitempty"`

	// Per-app parameters; only the block matching App is used.
	CG      *cg.Params      `json:"cg,omitempty"`
	Colloc  *colloc.Params  `json:"colloc,omitempty"`
	Nbody   *nbody.Params   `json:"nbody,omitempty"`
	Jacobi  *jacobi.Params  `json:"jacobi,omitempty"`
	Search  *search.Params  `json:"search,omitempty"`
	Scatter *scatter.Params `json:"scatter,omitempty"`

	// DeadlineMS bounds the whole job in wall-clock milliseconds (0: no
	// deadline). Excluded from the canonical hash: it cannot change the
	// result, only whether one is produced.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Normalize fills defaults in place — the same values the ppm-run and
// ppm-node flag defaults would supply — and returns the spec. Callers
// must normalize before hashing or running, so equivalent submissions
// canonicalize identically.
func (s *Spec) Normalize() *Spec {
	if s.Backend == "" {
		s.Backend = BackendSim
	}
	if s.Nodes == 0 {
		s.Nodes = 2
	}
	if s.Cores == 0 {
		s.Cores = 4
	}
	if s.Preset == "" {
		s.Preset = "franklin"
	}
	switch s.App {
	case "cg":
		if s.CG == nil {
			s.CG = &cg.Params{}
		}
		if s.CG.NX == 0 && s.CG.NY == 0 && s.CG.NZ == 0 {
			s.CG.NX, s.CG.NY, s.CG.NZ = 24, 24, 48
		}
		if s.CG.MaxIter == 0 {
			s.CG.MaxIter = 20
		}
	case "colloc":
		if s.Colloc == nil {
			s.Colloc = &colloc.Params{}
		}
		if s.Colloc.Levels == 0 {
			s.Colloc.Levels = 7
		}
		if s.Colloc.M0 == 0 {
			s.Colloc.M0 = 12
		}
		if s.Colloc.Delta == 0 {
			s.Colloc.Delta = 3
		}
	case "nbody":
		if s.Nbody == nil {
			s.Nbody = &nbody.Params{}
		}
		if s.Nbody.N == 0 {
			s.Nbody.N = 3000
		}
		if s.Nbody.Steps == 0 {
			s.Nbody.Steps = 2
		}
		if s.Nbody.Theta == 0 {
			s.Nbody.Theta = 0.5
		}
		if s.Nbody.Eps == 0 {
			s.Nbody.Eps = 0.05
		}
		if s.Nbody.DT == 0 {
			s.Nbody.DT = 0.01
		}
		if s.Nbody.Seed == 0 {
			s.Nbody.Seed = 42
		}
	case "jacobi":
		if s.Jacobi == nil {
			s.Jacobi = &jacobi.Params{}
		}
		if s.Jacobi.NX == 0 && s.Jacobi.NY == 0 && s.Jacobi.NZ == 0 {
			s.Jacobi.NX, s.Jacobi.NY, s.Jacobi.NZ = 24, 24, 48
		}
		if s.Jacobi.Sweeps == 0 {
			s.Jacobi.Sweeps = 10
		}
	case "search":
		if s.Search == nil {
			s.Search = &search.Params{}
		}
		if s.Search.N == 0 {
			s.Search.N = 1 << 20
		}
		if s.Search.K == 0 {
			s.Search.K = 1 << 14
		}
		if s.Search.Seed == 0 {
			s.Search.Seed = 42
		}
	case "scatter":
		if s.Scatter == nil {
			s.Scatter = &scatter.Params{}
		}
		p := s.Scatter.WithDefaults()
		*s.Scatter = p
	}
	return s
}

// Validate reports the first structural problem with a normalized spec.
func (s *Spec) Validate() error {
	switch s.App {
	case "cg", "colloc", "nbody", "jacobi", "search", "scatter":
	default:
		return fmt.Errorf("jobspec: unknown app %q (want cg, colloc, nbody, jacobi, search, or scatter)", s.App)
	}
	switch s.Backend {
	case BackendSim, BackendParallel, BackendDist:
	default:
		return fmt.Errorf("jobspec: unknown backend %q (want sim, parallel, or dist)", s.Backend)
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("jobspec: nodes must be positive, got %d", s.Nodes)
	}
	if s.Cores <= 0 {
		return fmt.Errorf("jobspec: cores must be positive, got %d", s.Cores)
	}
	if _, err := s.Machine(); err != nil {
		return err
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("jobspec: deadline_ms must be non-negative, got %d", s.DeadlineMS)
	}
	return nil
}

// Machine resolves the preset name into a cost model.
func (s *Spec) Machine() (*machine.Machine, error) {
	switch s.Preset {
	case "franklin", "":
		return machine.Franklin(), nil
	case "generic":
		return machine.Generic(), nil
	default:
		return nil, fmt.Errorf("jobspec: unknown machine preset %q (want franklin or generic)", s.Preset)
	}
}

// Options builds the core.Options this spec runs under. The caller has
// normalized and validated the spec.
func (s *Spec) Options() core.Options {
	mach, _ := s.Machine()
	return core.Options{
		Nodes:          s.Nodes,
		CoresPerNode:   s.Cores,
		Machine:        mach,
		NoBundling:     s.NoBundling,
		NoOverlap:      s.NoOverlap,
		NoReadCache:    s.NoReadCache,
		StaticSchedule: s.Static,
		Parallel:       s.Backend == BackendParallel,
	}
}

// AppSpec converts the per-app parameter block into the distributed
// runtime's AppSpec (value semantics; nil blocks become zero params).
func (s *Spec) AppSpec() dist.AppSpec {
	out := dist.AppSpec{App: s.App}
	if s.CG != nil {
		out.CG = *s.CG
	}
	if s.Colloc != nil {
		out.Colloc = *s.Colloc
	}
	if s.Nbody != nil {
		out.Nbody = *s.Nbody
	}
	if s.Jacobi != nil {
		out.Jacobi = *s.Jacobi
	}
	if s.Search != nil {
		out.Search = *s.Search
	}
	if s.Scatter != nil {
		out.Scatter = *s.Scatter
	}
	return out
}

// Canonical returns the canonical byte encoding of a normalized spec: a
// versioned, explicit-field-order serialization in which every integer
// is fixed-width little-endian and every float is its IEEE-754 bit
// pattern. JSON field order, whitespace, float formatting, and absent-
// vs-zero distinctions therefore cannot perturb the hash; only values
// that can change the result do. DeadlineMS is deliberately excluded.
func (s *Spec) Canonical() []byte {
	var c canon
	c.str("ppm-jobspec-v1")
	c.str(s.App)
	c.str(s.Backend)
	c.i64(int64(s.Nodes))
	c.i64(int64(s.Cores))
	c.str(s.Preset)
	c.bools(s.NoBundling, s.NoOverlap, s.NoReadCache, s.Static)
	switch s.App {
	case "cg":
		p := s.CG
		c.i64(int64(p.NX), int64(p.NY), int64(p.NZ), int64(p.MaxIter))
		c.f64(p.Tol)
	case "colloc":
		p := s.Colloc
		c.i64(int64(p.Levels), int64(p.M0), int64(p.Delta))
	case "nbody":
		p := s.Nbody
		c.i64(int64(p.N), int64(p.Steps))
		c.f64(p.Theta, p.Eps, p.DT)
		c.u64(p.Seed)
	case "jacobi":
		p := s.Jacobi
		c.i64(int64(p.NX), int64(p.NY), int64(p.NZ), int64(p.Sweeps))
	case "search":
		p := s.Search
		c.i64(int64(p.N), int64(p.K))
		c.u64(p.Seed)
	case "scatter":
		p := s.Scatter
		c.i64(int64(p.N), int64(p.VPs), int64(p.Iters))
		c.u64(p.Seed)
	}
	return c.buf
}

// Hash returns the hex SHA-256 of the canonical encoding: the job's
// content address.
func (s *Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// canon accumulates the canonical encoding. Strings are length-prefixed
// so field boundaries can never alias across values.
type canon struct{ buf []byte }

func (c *canon) str(s string) {
	c.i64(int64(len(s)))
	c.buf = append(c.buf, s...)
}

func (c *canon) i64(vs ...int64) {
	for _, v := range vs {
		c.buf = binary.LittleEndian.AppendUint64(c.buf, uint64(v))
	}
}

func (c *canon) u64(v uint64) { c.buf = binary.LittleEndian.AppendUint64(c.buf, v) }

func (c *canon) f64(vs ...float64) {
	for _, v := range vs {
		c.buf = binary.LittleEndian.AppendUint64(c.buf, math.Float64bits(v))
	}
}

func (c *canon) bools(vs ...bool) {
	for _, v := range vs {
		b := byte(0)
		if v {
			b = 1
		}
		c.buf = append(c.buf, b)
	}
}
