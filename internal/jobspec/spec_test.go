package jobspec

import (
	"encoding/json"
	"math"
	"testing"
)

// mustSpec parses and normalizes a JSON spec.
func mustSpec(t *testing.T, raw string) *Spec {
	t.Helper()
	var s Spec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatal(err)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return &s
}

// The hash must not depend on JSON surface form: field order, absent
// fields that normalize to defaults, or explicit defaults all encode to
// the same canonical bytes.
func TestHashCanonicalization(t *testing.T) {
	base := mustSpec(t, `{"app":"cg","backend":"sim","nodes":2,"cores":4,
		"cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`)
	same := []string{
		// Reordered fields.
		`{"cg":{"MaxIter":6,"NZ":8,"NY":8,"NX":8},"cores":4,"nodes":2,"backend":"sim","app":"cg"}`,
		// Defaults made explicit vs left absent.
		`{"app":"cg","backend":"sim","nodes":2,"cores":4,"preset":"franklin",
		  "cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6,"Tol":0}}`,
		// Absent backend/nodes/cores normalize to sim/2/4.
		`{"app":"cg","cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`,
	}
	for i, raw := range same {
		if got := mustSpec(t, raw).Hash(); got != base.Hash() {
			t.Errorf("variant %d: hash %s, want %s", i, got, base.Hash())
		}
	}
}

// DeadlineMS is an execution constraint, not part of the computation:
// it must not perturb the content address.
func TestHashExcludesDeadline(t *testing.T) {
	a := mustSpec(t, `{"app":"jacobi"}`)
	b := mustSpec(t, `{"app":"jacobi","deadline_ms":5000}`)
	if a.Hash() != b.Hash() {
		t.Fatalf("deadline changed the hash: %s vs %s", a.Hash(), b.Hash())
	}
}

// Everything that can change the result must change the hash.
func TestHashSensitivity(t *testing.T) {
	base := mustSpec(t, `{"app":"cg","cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`)
	seen := map[string]string{"base": base.Hash()}
	variants := map[string]string{
		"app":      `{"app":"jacobi"}`,
		"backend":  `{"app":"cg","backend":"parallel","cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`,
		"nodes":    `{"app":"cg","nodes":3,"cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`,
		"cores":    `{"app":"cg","cores":2,"cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`,
		"preset":   `{"app":"cg","preset":"generic","cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`,
		"param":    `{"app":"cg","cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":7}}`,
		"ablation": `{"app":"cg","no_readcache":true,"cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`,
	}
	for name, raw := range variants {
		h := mustSpec(t, raw).Hash()
		for prev, ph := range seen {
			if h == ph {
				t.Errorf("variant %q collides with %q", name, prev)
			}
		}
		seen[name] = h
	}
}

// A normalized spec round-trips through JSON with its hash intact (the
// server hashes what it received; nodes re-derive it after transport).
func TestHashJSONRoundTrip(t *testing.T) {
	s := mustSpec(t, `{"app":"scatter","backend":"dist","nodes":2,
		"scatter":{"N":500,"VPs":4,"Iters":3,"Seed":7}}`)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	back.Normalize()
	if back.Hash() != s.Hash() {
		t.Fatalf("round trip changed hash: %s vs %s", back.Hash(), s.Hash())
	}
}

// RunLocal on sim and parallel backends must agree bit-for-bit — the
// flattened Series is the equivalence surface every serving path is
// judged against.
func TestRunLocalParallelBitIdentical(t *testing.T) {
	sim := mustSpec(t, `{"app":"cg","backend":"sim","nodes":2,"cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`)
	par := mustSpec(t, `{"app":"cg","backend":"parallel","nodes":2,"cg":{"NX":8,"NY":8,"NZ":8,"MaxIter":6}}`)
	a, err := RunLocal(sim)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLocal(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) || len(a.Series) == 0 {
		t.Fatalf("series lengths: sim %d, parallel %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if math.Float64bits(a.Series[i]) != math.Float64bits(b.Series[i]) {
			t.Fatalf("series[%d]: sim %v, parallel %v", i, a.Series[i], b.Series[i])
		}
	}
}
