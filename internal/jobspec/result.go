package jobspec

import (
	"fmt"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/scatter"
	"ppm/internal/apps/search"
	"ppm/internal/core"
	"ppm/internal/dist"
)

// Result is the job outcome every execution path produces: the
// application output flattened into Series/ISeries (a deterministic
// per-app layout, so two runs of the same spec can be compared
// Float64bits-for-Float64bits without knowing the app's native shape),
// plus the run's per-node statistics. It round-trips through JSON
// bit-exactly (Go prints the shortest uniquely-decoding float
// representation).
type Result struct {
	Hash    string `json:"hash"`
	App     string `json:"app"`
	Backend string `json:"backend"`

	// Series is the flattened float64 payload; ISeries the integer
	// payload (lengths, indices, int outputs). See flatten* below for
	// the per-app layout.
	Series  []float64 `json:"series"`
	ISeries []int64   `json:"iseries,omitempty"`

	// Summary is the one-line human description ppm-run would print.
	Summary string `json:"summary"`

	PerNode []core.NodeStats `json:"per_node,omitempty"`
	Totals  core.NodeStats   `json:"totals"`

	// Cached marks a result served from the server's content-addressed
	// cache rather than a fresh run.
	Cached bool `json:"cached,omitempty"`
}

// FromMerged flattens a distributed (or distributed-shaped) merged
// application result into a Result. The layouts are chosen so that
// equal app outputs produce equal Series/ISeries and nothing else does:
//
//	cg:      Series = X ++ [Residual];     ISeries = [Iters]
//	jacobi:  Series = u
//	colloc:  rows ascending: ISeries gets (row, nEntries, cols...),
//	         Series gets the values in the same order
//	nbody:   Series = PX ++ PY ++ PZ ++ VX ++ VY ++ VZ ++ M
//	search:  ISeries = [nodes, len0.., keys0..] (per-node lengths, data)
//	scatter: ISeries = [nodes, len0..]; Series = per-node data
func FromMerged(s *Spec, m *dist.Merged) (*Result, error) {
	r := &Result{
		Hash:    s.Hash(),
		App:     s.App,
		Backend: s.Backend,
		PerNode: m.PerNode,
		Totals:  m.Totals,
	}
	switch s.App {
	case "cg":
		if m.CG == nil {
			return nil, fmt.Errorf("jobspec: cg run produced no result")
		}
		r.Series = append(append([]float64{}, m.CG.X...), m.CG.Residual)
		r.ISeries = []int64{int64(m.CG.Iters)}
		r.Summary = fmt.Sprintf("cg: %d iterations, residual %.3e", m.CG.Iters, m.CG.Residual)
	case "jacobi":
		r.Series = m.Jacobi
		r.Summary = fmt.Sprintf("jacobi: %dx%dx%d grid, %d sweeps",
			s.Jacobi.NX, s.Jacobi.NY, s.Jacobi.NZ, s.Jacobi.Sweeps)
	case "colloc":
		if m.Colloc == nil {
			return nil, fmt.Errorf("jobspec: colloc run produced no result")
		}
		for i, row := range m.Colloc.Rows {
			r.ISeries = append(r.ISeries, int64(i), int64(len(row)))
			for _, e := range row {
				r.ISeries = append(r.ISeries, int64(e.Col))
				r.Series = append(r.Series, e.Val)
			}
		}
		r.Summary = fmt.Sprintf("colloc: %d x %d matrix, %d nonzeros",
			m.Colloc.N, m.Colloc.N, m.Colloc.NNZ())
	case "nbody":
		st := m.Nbody
		if st == nil {
			return nil, fmt.Errorf("jobspec: nbody run produced no result")
		}
		for _, col := range [][]float64{st.PX, st.PY, st.PZ, st.VX, st.VY, st.VZ, st.M} {
			r.Series = append(r.Series, col...)
		}
		r.Summary = fmt.Sprintf("nbody: %d bodies, %d steps", s.Nbody.N, s.Nbody.Steps)
	case "search":
		r.ISeries = append(r.ISeries, int64(len(m.Search)))
		for _, keys := range m.Search {
			r.ISeries = append(r.ISeries, int64(len(keys)))
		}
		for _, keys := range m.Search {
			r.ISeries = append(r.ISeries, keys...)
		}
		r.Summary = fmt.Sprintf("search: %d keys/node in array of %d", s.Search.K, s.Search.N)
	case "scatter":
		r.ISeries = append(r.ISeries, int64(len(m.Scatter)))
		for _, part := range m.Scatter {
			r.ISeries = append(r.ISeries, int64(len(part)))
			r.Series = append(r.Series, part...)
		}
		r.Summary = fmt.Sprintf("scatter: %d elements, %d iterations", s.Scatter.N, s.Scatter.Iters)
	default:
		return nil, fmt.Errorf("jobspec: unknown app %q", s.App)
	}
	return r, nil
}

// RunLocal executes a normalized sim or parallel spec in-process through
// dist.RunApp's single-node-shaped path — the simulator — and flattens
// the output. Distributed specs are the caller's business (they need a
// fleet); passing one is an error.
func RunLocal(s *Spec) (*Result, error) {
	if s.Backend == BackendDist {
		return nil, fmt.Errorf("jobspec: RunLocal cannot run a dist-backend spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m, err := runSim(s)
	if err != nil {
		return nil, err
	}
	return FromMerged(s, m)
}

// runSim runs the spec under the simulator (sequential or parallel per
// Options) and shapes the native output like a distributed merge, so
// FromMerged is the single flattening path for every backend.
func runSim(s *Spec) (*dist.Merged, error) {
	opt := s.Options()
	m := &dist.Merged{}
	var rep *core.Report
	var err error
	switch s.App {
	case "cg":
		m.CG, rep, err = cg.RunPPM(opt, *s.CG)
	case "jacobi":
		m.Jacobi, rep, err = jacobi.RunPPM(opt, *s.Jacobi)
	case "colloc":
		m.Colloc, rep, err = colloc.RunPPM(opt, *s.Colloc)
	case "nbody":
		m.Nbody, rep, err = nbody.RunPPM(opt, *s.Nbody)
	case "search":
		m.Search, rep, err = search.RunPPM(opt, *s.Search)
	case "scatter":
		m.Scatter, rep, err = scatter.RunPPM(opt, *s.Scatter)
	default:
		return nil, fmt.Errorf("jobspec: unknown app %q", s.App)
	}
	if err != nil {
		return nil, err
	}
	m.PerNode = rep.PerNode
	m.Totals = rep.Totals
	return m, nil
}
