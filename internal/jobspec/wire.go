package jobspec

import "ppm/internal/dist"

// NodeJob and NodeReply are the newline-delimited JSON protocol between
// the server's fleet pool and a serve-mode ppm-node (`ppm-node -serve`):
// the pool writes one NodeJob line to every rank's stdin, each rank
// streams back progress replies and exactly one terminal reply per job
// on stdout. Closing a rank's stdin drains the fleet: the rank finishes
// its in-flight job, closes its links, and exits 0.

// NodeJob asks a serve-mode node process to run its share of one job.
type NodeJob struct {
	// ID correlates replies with jobs; opaque to the node.
	ID string `json:"id"`
	// Spec is the normalized job. Its Nodes must match the fleet the
	// node was launched into; its wire-level fields are ignored (those
	// were fixed when the fleet's engine connected).
	Spec Spec `json:"spec"`
}

// NodeReply is one stdout line from a serve-mode node.
type NodeReply struct {
	ID string `json:"id"`
	// Phase reports progress: global phases committed so far on this
	// rank (progress replies only; rank 0 is the fleet's reporter).
	Phase int64 `json:"phase,omitempty"`
	// Done marks the job's terminal reply, which carries the rank's
	// NodeResult (including any error).
	Done   bool             `json:"done,omitempty"`
	Result *dist.NodeResult `json:"result,omitempty"`
}
