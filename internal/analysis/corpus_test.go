package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppm/internal/analysis"
)

// TestSeededCorpus checks the interprocedural layer end to end: the
// seeded fixture plants one bug per rule, each one helper-call level
// below its use site, and every rule must report on its marked line.
// Markers are `SEED:<rule>` comments in the fixture; extra findings on
// other lines are allowed (several seeds trip more than one rule), a
// missed seed is not.
func TestSeededCorpus(t *testing.T) {
	const dir = "testdata/src/seeded"
	src, err := os.ReadFile(filepath.Join(dir, "seeded.go"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int{}
	for i, line := range strings.Split(string(src), "\n") {
		for _, field := range strings.Fields(line) {
			if rule, ok := strings.CutPrefix(field, "SEED:"); ok {
				want[rule] = append(want[rule], i+1)
			}
		}
	}
	rules := analysis.Rules()
	if len(want) != len(rules) {
		t.Fatalf("fixture marks %d rules, suite has %d", len(want), len(rules))
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(wd, "./"+dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range rules {
		lines := want[rule.Name]
		if len(lines) == 0 {
			t.Errorf("no SEED marker for rule %q", rule.Name)
			continue
		}
		diags, err := analysis.Run(pkgs, []*analysis.Analyzer{rule})
		if err != nil {
			t.Fatalf("rule %s: %v", rule.Name, err)
		}
		got := map[int]bool{}
		for _, d := range diags {
			got[d.Pos.Line] = true
		}
		for _, ln := range lines {
			if !got[ln] {
				t.Errorf("rule %s missed its seeded bug on line %d; reported: %v", rule.Name, ln, diags)
			}
		}
	}
}
