package analysis

import (
	"go/ast"
	"go/types"
)

// corePath is the package defining the shared-array and VP types; the
// public ppm package aliases them, so all receivers resolve here.
const corePath = "ppm/internal/core"

// sharedCall is one recognized shared-array accessor call.
type sharedCall struct {
	call    *ast.CallExpr
	recv    ast.Expr     // receiver expression (the array)
	recvObj types.Object // root object of the receiver, if identifier-rooted
	method  string       // Read, Write, Add, ReadBlock, WriteBlock, AddBlock
	write   bool         // Write/Add family (mutates at commit)
	add     bool         // Add/AddBlock (combining, conflict-free)
	block   bool         // block accessor
	indices []ast.Expr   // scalar index, (r,c) pair, or block lo
	typ     string       // Global, Node or Global2D
}

// namedCoreType returns the name of the core named type underlying t
// (stripping pointers and generic instantiation), or "".
func namedCoreType(t types.Type) string {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Origin().Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != corePath {
		return ""
	}
	return obj.Name()
}

// recvRoot returns the types.Object at the root of a selector chain
// (x, x.f, x.f.g → object of x), or nil.
func recvRoot(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// asSharedCall recognizes call as a shared-array accessor and describes
// it; ok is false otherwise.
func asSharedCall(info *types.Info, call *ast.CallExpr) (sharedCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return sharedCall{}, false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return sharedCall{}, false
	}
	typ := namedCoreType(selection.Recv())
	if typ != "Global" && typ != "Node" && typ != "Global2D" {
		return sharedCall{}, false
	}
	sc := sharedCall{
		call:    call,
		recv:    sel.X,
		recvObj: recvRoot(info, sel.X),
		method:  sel.Sel.Name,
		typ:     typ,
	}
	switch sc.method {
	case "Read":
		if typ == "Global2D" {
			if len(call.Args) != 3 {
				return sharedCall{}, false
			}
			sc.indices = call.Args[1:3]
		} else {
			if len(call.Args) != 2 {
				return sharedCall{}, false
			}
			sc.indices = call.Args[1:2]
		}
	case "Write", "Add":
		sc.write = true
		sc.add = sc.method == "Add"
		if typ == "Global2D" {
			if len(call.Args) != 4 {
				return sharedCall{}, false
			}
			sc.indices = call.Args[1:3]
		} else {
			if len(call.Args) != 3 {
				return sharedCall{}, false
			}
			sc.indices = call.Args[1:2]
		}
	case "ReadBlock":
		if typ == "Global2D" || len(call.Args) != 4 {
			return sharedCall{}, false
		}
		sc.block = true
		sc.indices = call.Args[1:2]
	case "WriteBlock", "AddBlock":
		if typ == "Global2D" || len(call.Args) != 3 {
			return sharedCall{}, false
		}
		sc.write = true
		sc.add = sc.method == "AddBlock"
		sc.block = true
		sc.indices = call.Args[1:2]
	default:
		return sharedCall{}, false
	}
	return sc, true
}

// isVPMethod reports whether call invokes the named method on *core.VP.
func isVPMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal || namedCoreType(selection.Recv()) != "VP" {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// isRuntimeMethod reports whether call invokes the named method on
// *core.Runtime.
func isRuntimeMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal || namedCoreType(selection.Recv()) != "Runtime" {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// phaseBodyLit returns the phase-body literal of a GlobalPhase/NodePhase
// call, or nil.
func phaseBodyLit(info *types.Info, call *ast.CallExpr) *ast.FuncLit {
	if !isVPMethod(info, call, "GlobalPhase", "NodePhase") || len(call.Args) != 1 {
		return nil
	}
	lit, _ := call.Args[0].(*ast.FuncLit)
	return lit
}

// doBodyLit returns the VP-body literal of a Runtime.Do call, or nil.
func doBodyLit(info *types.Info, call *ast.CallExpr) *ast.FuncLit {
	if !isRuntimeMethod(info, call, "Do") || len(call.Args) != 2 {
		return nil
	}
	lit, _ := call.Args[1].(*ast.FuncLit)
	return lit
}

// inspectStack walks root in source order, passing each node together
// with the stack of its ancestors (innermost last, including n itself).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}

// phaseCtx is the per-package phase-context index: which func literals
// are phase bodies, which are Do bodies, and which named functions may
// execute outside any phase (via a call-graph fixpoint over the package).
type phaseCtx struct {
	info      *types.Info
	phaseLits map[*ast.FuncLit]bool
	doLits    map[*ast.FuncLit]bool
	decls     map[*types.Func]*ast.FuncDecl
	// mayOutside marks named functions with at least one call site whose
	// context is outside every phase body.
	mayOutside map[*types.Func]bool
}

// callEdge is one package-local call site of a named function.
type callEdge struct {
	callee *types.Func
	stack  []ast.Node
}

// buildPhaseCtx indexes files and runs the call-graph fixpoint.
func buildPhaseCtx(info *types.Info, files []*ast.File) *phaseCtx {
	ctx := &phaseCtx{
		info:       info,
		phaseLits:  map[*ast.FuncLit]bool{},
		doLits:     map[*ast.FuncLit]bool{},
		decls:      map[*types.Func]*ast.FuncDecl{},
		mayOutside: map[*types.Func]bool{},
	}
	var edges []callEdge
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					ctx.decls[obj] = fd
					if fd.Recv == nil && (fd.Name.Name == "main" || fd.Name.Name == "init") {
						ctx.mayOutside[obj] = true
					}
				}
			}
		}
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if lit := phaseBodyLit(info, call); lit != nil {
				ctx.phaseLits[lit] = true
			}
			if lit := doBodyLit(info, call); lit != nil {
				ctx.doLits[lit] = true
			}
			if callee := ctx.localCallee(call); callee != nil {
				edges = append(edges, callEdge{callee: callee, stack: append([]ast.Node(nil), stack...)})
			}
		})
	}
	// Fixpoint: propagate "may run outside a phase" through call sites
	// that are not lexically inside a phase body.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if ctx.mayOutside[e.callee] {
				continue
			}
			if ctx.siteOutsidePhase(e.stack) {
				ctx.mayOutside[e.callee] = true
				changed = true
			}
		}
	}
	return ctx
}

// localCallee resolves call to a function or method declared in this
// package, or nil.
func (ctx *phaseCtx) localCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = ctx.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = ctx.info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if _, declared := ctx.decls[fn]; !declared {
		// Methods on generic types resolve to the origin declaration.
		if orig := fn.Origin(); orig != nil {
			if _, declared := ctx.decls[orig]; declared {
				return orig
			}
		}
		return nil
	}
	return fn
}

// siteOutsidePhase reports whether the site at the top of stack can
// execute outside every phase body: it is not lexically inside a phase
// literal, and its innermost enclosing function may itself run outside a
// phase (a Do body, main/init, or a named function the fixpoint marked).
func (ctx *phaseCtx) siteOutsidePhase(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch h := stack[i].(type) {
		case *ast.FuncLit:
			if ctx.phaseLits[h] {
				return false
			}
			if ctx.doLits[h] {
				return true
			}
			// A plain literal runs where it is defined (a lexical
			// approximation: literals that escape are not tracked).
		case *ast.FuncDecl:
			if obj, ok := ctx.info.Defs[h.Name].(*types.Func); ok {
				return ctx.mayOutside[obj]
			}
			return true
		}
	}
	return true // file scope (var initializers)
}

// enclosingPhaseLit returns the innermost phase-body literal on stack,
// or nil when the site is not lexically inside a phase.
func (ctx *phaseCtx) enclosingPhaseLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		switch h := stack[i].(type) {
		case *ast.FuncLit:
			if ctx.phaseLits[h] {
				return h
			}
			if ctx.doLits[h] {
				return nil
			}
		case *ast.FuncDecl:
			return nil
		}
	}
	return nil
}

// rankDependent reports whether e mentions a per-rank quantity: a VP
// rank/node accessor, Runtime.NodeID, or an identifier initialized from
// one (a one-step taint, enough for the guard idioms in practice).
func rankDependent(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isVPMethod(info, x, "NodeRank", "GlobalRank", "Node", "K", "GlobalK") ||
				isRuntimeMethod(info, x, "NodeID") {
				dep = true
				return false
			}
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && tainted[obj] {
				dep = true
				return false
			}
		}
		return !dep
	})
	return dep
}

// taintedVars collects objects assigned (anywhere in root) from a
// rank-dependent expression — the "lo, hi := ChunkRange(n, vp.K(),
// vp.NodeRank())" pattern and friends.
func taintedVars(info *types.Info, root ast.Node) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	// Two passes pick up one level of indirection through locals.
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(root, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			dep := false
			for _, rhs := range as.Rhs {
				if rankDependent(info, rhs, tainted) {
					dep = true
					break
				}
			}
			if !dep {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						tainted[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						tainted[obj] = true
					}
				}
			}
			return true
		})
	}
	return tainted
}
