// Package analysistest runs ppmvet analyzers over fixture packages and
// checks their findings against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (self-contained here
// because the x/tools module is not vendored).
//
// A fixture line carrying
//
//	a.Write(vp, 3, v) // want `constant index`
//
// asserts that the analyzer reports a diagnostic on that line whose
// message matches the back-quoted regular expression. Every expectation
// must be matched by exactly one diagnostic and every diagnostic must
// match an expectation, or the test fails.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ppm/internal/analysis"
)

// wantRe matches one // want `re` expectation (several may share a line).
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// expectation is one // want assertion.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the package at dir (relative to the current test's working
// directory), applies exactly the given analyzers, and compares the
// diagnostics with the fixture's // want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(wd, "./"+filepath.ToSlash(dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
					}
					wants = append(wants, &expectation{file: name, line: i + 1, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// RunAll is Run with the complete ppmvet rule suite — for fixtures that
// must stay findings-free under every rule.
func RunAll(t *testing.T, dir string) {
	t.Helper()
	Run(t, dir, analysis.Rules()...)
}
