package analysis

// The interprocedural layer: every function declaration and function
// literal in a package becomes a "unit" with a lazily built CFG and
// reaching-definitions solution; call sites into package-local functions
// are expanded by substituting the caller's argument expressions for the
// callee's parameters (a "frame"), so a helper doing sh.Write(i, v) is
// analyzed at each call site with the caller's arguments in place.
// Function summaries (which parameters a function mutates, stores, or
// through which it propagates a Run error) let the simpler rules reason
// about helpers without full expansion.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A unit is one function body: a declaration or a literal.
type unit struct {
	node   ast.Node // *ast.FuncDecl or *ast.FuncLit
	body   *ast.BlockStmt
	ftype  *ast.FuncType
	parent *unit       // lexically enclosing unit (nil for declarations)
	fn     *types.Func // declared functions/methods only
	// vpParam is the *core.VP parameter's object, when the unit is VP
	// code by signature.
	vpParam types.Object
	isPhase bool // GlobalPhase/NodePhase body literal
	isDo    bool // Runtime.Do body literal

	cfg   *CFG
	reach *reaching
}

// isVPEntry reports whether the unit starts VP execution: a Do body or
// any function taking a *core.VP (named VP functions, helpers).
func (u *unit) isVPEntry() bool { return u.isDo || u.vpParam != nil }

// PkgIndex is the shared per-package index every analyzer builds on:
// units, the phase-context fixpoint, Do-site bookkeeping, and the
// summary cache. It is built once per package and cached on Package.
type PkgIndex struct {
	pkg  *Package
	info *types.Info
	fset *token.FileSet
	ctx  *phaseCtx

	units  map[ast.Node]*unit
	byFunc map[*types.Func]*unit
	// litBind maps a variable to the unique function literal assigned to
	// it (renderer := func(vp *ppm.VP) {...}); ambiguous bindings are
	// dropped.
	litBind map[types.Object]*ast.FuncLit
	// doK maps a VP body node (literal, or the declaration of a named VP
	// function passed to Do) to the K expressions of its Do call sites.
	doK map[ast.Node][]ast.Expr

	summaries map[*types.Func]*funcSummary
	inFlight  map[*types.Func]bool
}

// Index returns the package's interprocedural index, building it on
// first use and sharing it across all analyzers of the package.
func (p *Pass) Index() *PkgIndex {
	if p.pkg.index == nil {
		p.pkg.index = buildIndex(p.pkg)
	}
	return p.pkg.index
}

func buildIndex(pkg *Package) *PkgIndex {
	px := &PkgIndex{
		pkg:       pkg,
		info:      pkg.TypesInfo,
		fset:      pkg.Fset,
		ctx:       buildPhaseCtx(pkg.TypesInfo, pkg.Files),
		units:     map[ast.Node]*unit{},
		byFunc:    map[*types.Func]*unit{},
		litBind:   map[types.Object]*ast.FuncLit{},
		doK:       map[ast.Node][]ast.Expr{},
		summaries: map[*types.Func]*funcSummary{},
		inFlight:  map[*types.Func]bool{},
	}
	vpParamOf := func(ft *ast.FuncType) types.Object {
		if ft == nil || ft.Params == nil {
			return nil
		}
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				if obj := px.info.Defs[name]; obj != nil && namedCoreType(obj.Type()) == "VP" {
					return obj
				}
			}
		}
		return nil
	}
	litBound := map[types.Object]int{}
	for _, f := range pkg.Files {
		var stack []*unit
		inspectStack(f, func(n ast.Node, astStack []ast.Node) {
			// Maintain the lexical unit stack from the ancestor stack.
			stack = stack[:0]
			for _, a := range astStack {
				if u := px.units[a]; u != nil {
					stack = append(stack, u)
				}
			}
			var parent *unit
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body == nil {
					return
				}
				u := &unit{node: x, body: x.Body, ftype: x.Type, vpParam: vpParamOf(x.Type)}
				if obj, ok := px.info.Defs[x.Name].(*types.Func); ok {
					u.fn = obj
					px.byFunc[obj] = u
				}
				px.units[x] = u
			case *ast.FuncLit:
				u := &unit{node: x, body: x.Body, ftype: x.Type, parent: parent, vpParam: vpParamOf(x.Type)}
				u.isPhase = px.ctx.phaseLits[x]
				u.isDo = px.ctx.doLits[x]
				px.units[x] = u
			case *ast.AssignStmt:
				if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
					if lit, ok := x.Rhs[0].(*ast.FuncLit); ok {
						if id, ok := x.Lhs[0].(*ast.Ident); ok {
							obj := px.info.Defs[id]
							if obj == nil {
								obj = px.info.Uses[id]
							}
							if obj != nil {
								litBound[obj]++
								if litBound[obj] == 1 {
									px.litBind[obj] = lit
								} else {
									delete(px.litBind, obj)
								}
							}
						}
					}
				}
			}
		})
	}
	// Do-site bookkeeping: which K expressions start which VP bodies.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRuntimeMethod(px.info, call, "Do") || len(call.Args) != 2 {
				return true
			}
			var body ast.Node
			switch arg := call.Args[1].(type) {
			case *ast.FuncLit:
				body = arg
			case *ast.Ident:
				if obj := px.info.Uses[arg]; obj != nil {
					if lit := px.litBind[obj]; lit != nil {
						body = lit
					} else if fn, ok := obj.(*types.Func); ok {
						if u := px.byFunc[fn]; u != nil {
							body = u.node
						}
					}
				}
			}
			if body != nil {
				px.doK[body] = append(px.doK[body], call.Args[0])
			}
			return true
		})
	}
	return px
}

// unitFor returns the unit of fn, building lazy parts on demand.
func (px *PkgIndex) unitFor(n ast.Node) *unit { return px.units[n] }

func (px *PkgIndex) cfgOf(u *unit) *CFG {
	if u.cfg == nil {
		u.cfg = BuildCFG(u.body)
	}
	return u.cfg
}

func (px *PkgIndex) reachOf(u *unit) *reaching {
	if u.reach == nil {
		u.reach = buildReaching(px.info, u.node, px.cfgOf(u))
	}
	return u.reach
}

// declaringUnit finds the unit that lexically contains pos (the
// innermost one), or nil for package scope. The whole node extent is
// used, not just the body, so parameters and receivers belong to
// their function.
func (px *PkgIndex) declaringUnit(pos token.Pos) *unit {
	var best *unit
	for _, u := range px.units {
		if u.node.Pos() <= pos && pos < u.node.End() {
			if best == nil || (u.node.Pos() >= best.node.Pos() && u.node.End() <= best.node.End()) {
				best = u
			}
		}
	}
	return best
}

// vpRoot returns the innermost VP-entry unit enclosing u (possibly u
// itself), or nil when u is host code.
func (px *PkgIndex) vpRoot(u *unit) *unit {
	for w := u; w != nil; w = w.parent {
		if w.isVPEntry() {
			return w
		}
	}
	return nil
}

// localCallee resolves a call to a unit declared in this package:
// a named function/method, or a variable holding a unique literal.
func (px *PkgIndex) localCallee(call *ast.CallExpr) *unit {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := px.info.Uses[fun]
		if fn, ok := obj.(*types.Func); ok {
			if u := px.byFunc[fn]; u != nil {
				return u
			}
			if orig := fn.Origin(); orig != nil {
				return px.byFunc[orig]
			}
			return nil
		}
		if obj != nil {
			if lit := px.litBind[obj]; lit != nil {
				return px.units[lit]
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := px.info.Uses[fun.Sel].(*types.Func); ok {
			if u := px.byFunc[fn]; u != nil {
				return u
			}
			if orig := fn.Origin(); orig != nil {
				return px.byFunc[orig]
			}
		}
	case *ast.FuncLit:
		return px.units[fun]
	}
	return nil
}

// A frame binds one expansion of a unit at a call site: parameter
// objects map to the caller's argument expressions, which are evaluated
// in the parent frame with the loop context active at the call site.
type frame struct {
	unit   *unit
	parent *frame
	// args maps this unit's parameter objects to caller argument
	// expressions (nil for the root frame).
	args map[types.Object]ast.Expr
	// site is the call expression that entered this frame (nil at the
	// root); reportPos walks to the outermost site for diagnostics.
	site *ast.CallExpr
	// loops is the loop stack active at the call site, in the parent
	// frame's context.
	loops []loopRec
}

// loopRec is one loop enclosing an operation, with the frame in which
// its bound expressions are evaluated.
type loopRec struct {
	stmt ast.Node // *ast.ForStmt or *ast.RangeStmt
	fr   *frame
}

// reportPos returns the outermost call position for an op reached
// through fr — the position in the phase body the user wrote.
func (fr *frame) reportPos(fallback token.Pos) token.Pos {
	pos := fallback
	for f := fr; f != nil; f = f.parent {
		if f.site != nil {
			pos = f.site.Pos()
		}
	}
	return pos
}

// bindFrame builds the callee frame for call into callee from caller
// frame fr, or nil when arguments cannot be matched positionally.
func (px *PkgIndex) bindFrame(callee *unit, call *ast.CallExpr, fr *frame, loops []loopRec) *frame {
	nf := &frame{unit: callee, parent: fr, site: call, args: map[types.Object]ast.Expr{}, loops: append([]loopRec(nil), loops...)}
	if callee.ftype == nil || callee.ftype.Params == nil {
		return nf
	}
	args := call.Args
	// Method value receiver (x.m(...)): bind the receiver too.
	if fd, ok := callee.node.(*ast.FuncDecl); ok && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := px.info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
				nf.args[obj] = sel.X
			}
		}
	}
	i := 0
	for _, field := range callee.ftype.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++ // unnamed parameter consumes a slot
			continue
		}
		for _, name := range names {
			if _, variadic := field.Type.(*ast.Ellipsis); variadic {
				return nf // variadic tail: leave unbound
			}
			if i >= len(args) {
				return nf
			}
			if obj := px.info.Defs[name]; obj != nil {
				nf.args[obj] = args[i]
			}
			i++
		}
	}
	return nf
}

// maxExpandDepth bounds helper expansion (one level is required by the
// rules; three covers helper-calls-helper without blowup).
const maxExpandDepth = 3

// opSite is one shared-array accessor reached from a phase body,
// possibly through helper expansion.
type opSite struct {
	sc    sharedCall
	fr    *frame
	loops []loopRec
	depth int
}

// walkOps walks fr.unit's body emitting every shared-array accessor
// reachable from it, expanding package-local calls up to maxExpandDepth
// with argument substitution. Nested function literals are entered only
// when they are phase bodies belonging to this walk's root (the caller
// walks phase lits directly, so plain literals are skipped: they are
// either separate VP bodies or escape analysis scope).
func (px *PkgIndex) walkOps(fr *frame, seen map[*unit]bool, emit func(op opSite)) {
	u := fr.unit
	if seen[u] {
		return
	}
	seen[u] = true
	defer delete(seen, u)

	var walk func(n ast.Node, loops []loopRec)
	walk = func(n ast.Node, loops []loopRec) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // separate unit; not executed inline
		case *ast.ForStmt:
			if x.Init != nil {
				walk(x.Init, loops)
			}
			if x.Cond != nil {
				walk(x.Cond, loops)
			}
			inner := append(append([]loopRec(nil), loops...), loopRec{stmt: x, fr: fr})
			if x.Post != nil {
				walk(x.Post, inner)
			}
			walk(x.Body, inner)
			return
		case *ast.RangeStmt:
			walk(x.X, loops)
			inner := append(append([]loopRec(nil), loops...), loopRec{stmt: x, fr: fr})
			walk(x.Body, inner)
			return
		case *ast.CallExpr:
			for _, a := range x.Args {
				walk(a, loops)
			}
			walk(x.Fun, loops)
			if sc, ok := asSharedCall(px.info, x); ok {
				emit(opSite{sc: sc, fr: fr, loops: loops, depth: frameDepth(fr)})
				return
			}
			if callee := px.localCallee(x); callee != nil && frameDepth(fr) < maxExpandDepth {
				nf := px.bindFrame(callee, x, fr, loops)
				px.walkOps(nf, seen, emit)
			}
			return
		}
		// Generic traversal for everything else, preserving loop context.
		children(n, func(c ast.Node) { walk(c, loops) })
	}
	walk(u.body, fr.loops)
}

func frameDepth(fr *frame) int {
	d := 0
	for f := fr; f != nil; f = f.parent {
		if f.site != nil {
			d++
		}
	}
	return d
}

// children invokes f on each direct child node of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

// funcSummary describes a declared function's behavior for the rules.
type funcSummary struct {
	// mutatesParam[i]: the function assigns through its i-th parameter
	// (field store, element store, or pointer store), directly or via a
	// callee it passes the parameter to.
	mutatesParam []bool
	// escapesParam[i]: the function stores its i-th parameter (or a
	// slice of it) somewhere that outlives the call: a field, a package
	// variable, a return value, or a callee that escapes it.
	escapesParam []bool
}

// paramObjs returns the parameter objects of u in declaration order.
func (px *PkgIndex) paramObjs(u *unit) []types.Object {
	var out []types.Object
	if u.ftype == nil || u.ftype.Params == nil {
		return nil
	}
	for _, field := range u.ftype.Params.List {
		for _, name := range field.Names {
			out = append(out, px.info.Defs[name])
		}
		if len(field.Names) == 0 {
			out = append(out, nil)
		}
	}
	return out
}

// summaryOf computes (and caches) the summary of a declared function.
// Recursive cycles see the partial summary computed so far.
func (px *PkgIndex) summaryOf(fn *types.Func) *funcSummary {
	if s, ok := px.summaries[fn]; ok {
		return s
	}
	u := px.byFunc[fn]
	if u == nil {
		return nil
	}
	if px.inFlight[fn] {
		return nil // cycle: assume nothing extra
	}
	px.inFlight[fn] = true
	defer delete(px.inFlight, fn)

	params := px.paramObjs(u)
	idxOf := func(obj types.Object) int {
		for i, p := range params {
			if p != nil && p == obj {
				return i
			}
		}
		return -1
	}
	s := &funcSummary{
		mutatesParam: make([]bool, len(params)),
		escapesParam: make([]bool, len(params)),
	}

	rootObj := func(e ast.Expr) types.Object {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				obj := px.info.Uses[x]
				if obj == nil {
					obj = px.info.Defs[x]
				}
				return obj
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			default:
				return nil
			}
		}
	}

	ast.Inspect(u.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				// A store through a parameter (p.f = v, p[i] = v, *p = v)
				// mutates it; a plain rebind (p = v) does not.
				if _, plain := lhs.(*ast.Ident); plain {
					continue
				}
				if i := idxOf(rootObj(lhs)); i >= 0 {
					s.mutatesParam[i] = true
				}
			}
			// Storing a parameter into non-local memory escapes it.
			for ri, rhs := range x.Rhs {
				i := idxOf(rootObj(rhs))
				if i < 0 {
					continue
				}
				if ri < len(x.Lhs) {
					lhs := x.Lhs[ri]
					if _, plain := lhs.(*ast.Ident); !plain {
						s.escapesParam[i] = true
					} else if obj := rootObj(lhs); obj != nil && px.declaringUnit(obj.Pos()) == nil {
						s.escapesParam[i] = true // package variable
					}
				}
			}
		case *ast.IncDecStmt:
			if _, plain := x.X.(*ast.Ident); !plain {
				if i := idxOf(rootObj(x.X)); i >= 0 {
					s.mutatesParam[i] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if i := idxOf(rootObj(res)); i >= 0 {
					s.escapesParam[i] = true
				}
			}
		case *ast.CallExpr:
			callee := px.localCallee(x)
			if callee == nil || callee.fn == nil {
				return true
			}
			cs := px.summaryOf(callee.fn)
			if cs == nil {
				return true
			}
			for ai, arg := range x.Args {
				i := idxOf(rootObj(arg))
				if i < 0 {
					continue
				}
				if ai < len(cs.mutatesParam) && cs.mutatesParam[ai] {
					s.mutatesParam[i] = true
				}
				if ai < len(cs.escapesParam) && cs.escapesParam[ai] {
					s.escapesParam[i] = true
				}
			}
		}
		return true
	})

	px.summaries[fn] = s
	return s
}
