package analysis

import (
	"go/ast"
	"go/types"
)

// LocalAliasAnalyzer flags node-level base-image aliases leaking into VP
// code: a slice obtained from Global.Local/Node.Local that is used
// inside a Do body, or Local/At called inside a Do body outright. The
// Local slice aliases the array's committed base image; touching it from
// VP code bypasses the begin-of-phase/commit discipline entirely, and
// the runtime can only catch the direct-call case (Local panics while a
// Do is active) — a retained slice is invisible to it.
var LocalAliasAnalyzer = &Analyzer{
	Name: "localalias",
	Doc: "report Local()/At() base-image access from inside Do bodies, including " +
		"Local slices captured before the Do — they bypass phase semantics",
	Run: runLocalAlias,
}

func runLocalAlias(pass *Pass) error {
	px := pass.Index()
	for _, f := range pass.Files {
		aliases := localSlices(pass.TypesInfo, f)
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			if !insideVPCode(px, stack) {
				return
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				if m, ok := nodeLevelAccessor(pass.TypesInfo, x); ok {
					pass.Reportf(x.Pos(),
						"%s called inside a Do body: node-level accessors bypass phase semantics and panic while a Do is active — use phase Read/Write instead", m)
				}
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[x]; obj != nil && aliases[obj] != "" {
					pass.Reportf(x.Pos(),
						"%s aliases the base image of shared array (via %s) and is used inside a Do body: reads and writes through it bypass phase semantics", x.Name, aliases[obj])
				}
			}
		})
	}
	return nil
}

// localSlices maps variables assigned from a Local() call to the call's
// printed receiver.
func localSlices(info *types.Info, f *ast.File) map[types.Object]string {
	aliases := map[types.Object]string{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		m, ok := nodeLevelAccessor(info, call)
		if !ok {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			aliases[obj] = m
		} else if obj := info.Uses[id]; obj != nil {
			aliases[obj] = m
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					record(x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i := range x.Names {
					record(x.Names[i], x.Values[i])
				}
			}
		}
		return true
	})
	return aliases
}

// nodeLevelAccessor recognizes Local and At calls on the shared-array
// types and returns a printable description.
func nodeLevelAccessor(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	typ := namedCoreType(selection.Recv())
	if typ != "Global" && typ != "Node" && typ != "Global2D" {
		return "", false
	}
	if name := sel.Sel.Name; name == "Local" || name == "At" {
		return types.ExprString(sel.X) + "." + name, true
	}
	return "", false
}

// insideVPCode reports whether the innermost function on stack executes
// as VP code: a Do-body literal, anything nested in one (phase bodies
// included — the alias hazard is the same there), or a named function
// taking a *core.VP parameter (a VP helper called from Do bodies, which
// the pre-index version of this rule was blind to).
func insideVPCode(px *PkgIndex, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch h := stack[i].(type) {
		case *ast.FuncLit:
			if u := px.units[h]; u != nil {
				return px.vpRoot(u) != nil
			}
		case *ast.FuncDecl:
			if u := px.units[h]; u != nil {
				return px.vpRoot(u) != nil
			}
			return false
		}
	}
	return false
}
