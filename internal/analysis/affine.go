package analysis

// Affine index resolution: rewriting shared-array index expressions as
// affine forms over a small symbol vocabulary — VP rank, global rank,
// node id, ChunkRange/OwnerRange results, loop induction variables, and
// opaque-but-uniform values — precise enough to decide whether two VP
// instances of a phase can write the same element (see phaserace.go for
// the decision procedure itself).
//
// Symbols carry a uniformity class, which is what the pair comparison
// exploits: a kUniform symbol has one value for every VP of the program,
// a kNodeVar one value per node, while kNodeRank/kGlobalRank/kChunk*
// vary per VP in ways with known structure (ranks are dense integers;
// ChunkRange intervals partition [0, n) across the ranks of one node).

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

type symKind int

const (
	kUniform    symKind = iota // one value program-wide
	kNodeVar                   // one value per node, unknown across nodes
	kNodeID                    // rt.NodeID(): distinct per node
	kNodeRank                  // vp.NodeRank(): per VP, dense 0..K-1 per node
	kGlobalRank                // vp.GlobalRank(): distinct across all VPs
	kOwnerLo                   // OwnerRange lo of a shared array: per node
	kOwnerHi                   // OwnerRange hi of a shared array: per node
	kChunkLo                   // ChunkRange lo: per VP, partition structure
	kChunkHi                   // ChunkRange hi: per VP, partition structure
	kLoop                      // loop induction variable (substituted away)
)

// sym is one symbolic term. key discriminates distinct symbols of a
// kind: a types.Object, an ast.Node, a string, or a chunk-site key.
type sym struct {
	kind symKind
	key  any
}

// affine is c + Σ terms[s]*s, or unresolvable (ok == false).
type affine struct {
	ok bool
	c  int64
	t  map[sym]int64
}

func aConst(c int64) affine { return affine{ok: true, c: c} }
func aSym(s sym) affine     { return affine{ok: true, t: map[sym]int64{s: 1}} }
func aBad() affine          { return affine{} }

func (a affine) clone() affine {
	b := affine{ok: a.ok, c: a.c, t: map[sym]int64{}}
	for s, c := range a.t {
		b.t[s] = c
	}
	return b
}

func (a affine) addScaled(b affine, k int64) affine {
	if !a.ok || !b.ok {
		return aBad()
	}
	r := a.clone()
	r.c += k * b.c
	for s, c := range b.t {
		r.t[s] += k * c
		if r.t[s] == 0 {
			delete(r.t, s)
		}
	}
	return r
}

func (a affine) add(b affine) affine { return a.addScaled(b, 1) }
func (a affine) sub(b affine) affine { return a.addScaled(b, -1) }

func (a affine) scale(k int64) affine {
	if !a.ok {
		return aBad()
	}
	r := affine{ok: true, c: a.c * k, t: map[sym]int64{}}
	for s, c := range a.t {
		if c*k != 0 {
			r.t[s] = c * k
		}
	}
	return r
}

// isConst reports a pure constant and its value.
func (a affine) isConst() (int64, bool) {
	if !a.ok || len(a.t) != 0 {
		return 0, false
	}
	return a.c, true
}

func (a affine) coef(s sym) int64 { return a.t[s] }

// equal reports structural equality (same symbols, same coefficients).
func (a affine) equal(b affine) bool {
	if !a.ok || !b.ok || a.c != b.c || len(a.t) != len(b.t) {
		return false
	}
	for s, c := range a.t {
		if b.t[s] != c {
			return false
		}
	}
	return true
}

// kindsIn reports whether a mentions any symbol of the given kinds.
func (a affine) kindsIn(kinds ...symKind) bool {
	for s := range a.t {
		for _, k := range kinds {
			if s.kind == k {
				return true
			}
		}
	}
	return false
}

// resolveEnv is the context of one expression resolution: the frame (for
// parameter substitution; nil during lexical ascent), the unit whose
// reaching-definitions govern identifier lookups, and the active loops.
type resolveEnv struct {
	fr    *frame
	u     *unit
	loops []loopRec
}

func envOf(fr *frame, loops []loopRec) resolveEnv {
	return resolveEnv{fr: fr, u: fr.unit, loops: loops}
}

// loopKey identifies one loop in one frame for kLoop symbols.
type loopKey struct {
	stmt ast.Node
	fr   *frame
}

// resolver caches classification and chunk-site metadata for one
// analysis pass over one package.
type resolver struct {
	px *PkgIndex
	// class memoizes object uniformity classification. The int encodes
	// kUniform/kNodeVar, or -1 for per-VP (unresolvable).
	class map[types.Object]int
	// chunk sites are canonicalized by the (n, k) argument affines: two
	// ChunkRange calls with equal arguments compute the same partition,
	// so their lo/hi symbols must be shared for cancellation.
	chunkIDs map[string]int
	chunkN   map[int]affine // chunk id -> n affine
	// symIDs numbers symbols for canonical affine serialization.
	symIDs map[sym]int
	// loopInfo caches validated loop bounds.
	loopInfo map[loopKey]*loopBounds
}

const classPerVP = -1

func newResolver(px *PkgIndex) *resolver {
	return &resolver{
		px:       px,
		class:    map[types.Object]int{},
		chunkIDs: map[string]int{},
		chunkN:   map[int]affine{},
		symIDs:   map[sym]int{},
		loopInfo: map[loopKey]*loopBounds{},
	}
}

// canon serializes an affine into a stable string (used to canonicalize
// chunk sites by their arguments).
func (rv *resolver) canon(a affine) string {
	if !a.ok {
		return "?"
	}
	type term struct {
		id int
		c  int64
	}
	var ts []term
	for s, c := range a.t {
		id, ok := rv.symIDs[s]
		if !ok {
			id = len(rv.symIDs)
			rv.symIDs[s] = id
		}
		ts = append(ts, term{id, c})
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	var b strings.Builder
	fmt.Fprintf(&b, "%d", a.c)
	for _, t := range ts {
		fmt.Fprintf(&b, "+%d*s%d", t.c, t.id)
	}
	return b.String()
}

// chunkSite interns a ChunkRange site by its canonical (n, k) arguments
// and records n for owner-anchoring checks. ok is false when the rank
// argument is not plainly vp.NodeRank(), or n/k are not VP-invariant —
// the partition property then does not relate same-node VPs.
func (rv *resolver) chunkSite(nAff, kAff, rankAff affine) (id int, ok bool) {
	isRankSym := rankAff.ok && rankAff.c == 0 && len(rankAff.t) == 1
	if isRankSym {
		for s, c := range rankAff.t {
			if s.kind != kNodeRank || c != 1 {
				isRankSym = false
			}
		}
	}
	perVP := func(a affine) bool {
		return !a.ok || a.kindsIn(kNodeRank, kGlobalRank, kChunkLo, kChunkHi, kLoop)
	}
	ok = isRankSym && !perVP(nAff) && !perVP(kAff)
	if !ok {
		return 0, false
	}
	key := rv.canon(nAff) + ";" + rv.canon(kAff)
	cid, have := rv.chunkIDs[key]
	if !have {
		cid = len(rv.chunkIDs)
		rv.chunkIDs[key] = cid
		rv.chunkN[cid] = nAff
	}
	return cid, ok
}

// constVal extracts an exact integer constant from the type checker.
func (rv *resolver) constVal(e ast.Expr) (int64, bool) {
	tv, ok := rv.px.info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return v, true
}

// exprAffine resolves e (in env) to an affine form.
func (rv *resolver) exprAffine(e ast.Expr, env resolveEnv) affine {
	return rv.exprAffineD(e, env, 0)
}

const maxResolveDepth = 24

func (rv *resolver) exprAffineD(e ast.Expr, env resolveEnv, depth int) affine {
	if depth > maxResolveDepth {
		return aBad()
	}
	if v, ok := rv.constVal(e); ok {
		return aConst(v)
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return rv.exprAffineD(x.X, env, depth+1)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.ADD:
			return rv.exprAffineD(x.X, env, depth+1)
		case token.SUB:
			return rv.exprAffineD(x.X, env, depth+1).scale(-1)
		}
		return aBad()
	case *ast.BinaryExpr:
		l := rv.exprAffineD(x.X, env, depth+1)
		r := rv.exprAffineD(x.Y, env, depth+1)
		switch x.Op {
		case token.ADD:
			return l.add(r)
		case token.SUB:
			return l.sub(r)
		case token.MUL:
			if c, ok := l.isConst(); ok {
				return r.scale(c)
			}
			if c, ok := r.isConst(); ok {
				return l.scale(c)
			}
		}
		return rv.opaque(e, env)
	case *ast.CallExpr:
		// Conversions like int64(e) are transparent.
		if len(x.Args) == 1 {
			if tv, ok := rv.px.info.Types[x.Fun]; ok && tv.IsType() {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					return rv.exprAffineD(x.Args[0], env, depth+1)
				}
			}
		}
		if isVPMethod(rv.px.info, x, "NodeRank") {
			return aSym(sym{kNodeRank, "rank"})
		}
		if isVPMethod(rv.px.info, x, "GlobalRank") {
			return aSym(sym{kGlobalRank, "grank"})
		}
		if isVPMethod(rv.px.info, x, "K") {
			return aSym(sym{kNodeVar, "vp.K"})
		}
		if isVPMethod(rv.px.info, x, "GlobalK") {
			return aSym(sym{kUniform, "vp.GlobalK"})
		}
		if isVPMethod(rv.px.info, x, "Node", "Nodes", "Cores") {
			if isVPMethod(rv.px.info, x, "Node") {
				return aSym(sym{kNodeID, "node"})
			}
			return aSym(sym{kUniform, "vp." + x.Fun.(*ast.SelectorExpr).Sel.Name})
		}
		if isRuntimeMethod(rv.px.info, x, "NodeID") {
			return aSym(sym{kNodeID, "node"})
		}
		if isRuntimeMethod(rv.px.info, x, "NodeCount", "CoresPerNode") {
			return aSym(sym{kUniform, "rt." + x.Fun.(*ast.SelectorExpr).Sel.Name})
		}
		return rv.opaque(e, env)
	case *ast.Ident:
		return rv.identAffine(x, env, depth)
	}
	return rv.opaque(e, env)
}

// identAffine resolves one identifier: parameter substitution, loop
// induction symbol, unique-definition rewriting, then classification.
func (rv *resolver) identAffine(id *ast.Ident, env resolveEnv, depth int) affine {
	info := rv.px.info
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return aBad()
	}
	// Parameter bound at a call site: resolve the caller's argument in
	// the caller's context.
	if env.fr != nil {
		if arg, ok := env.fr.args[obj]; ok && env.fr.parent != nil {
			penv := resolveEnv{fr: env.fr.parent, u: env.fr.parent.unit, loops: env.fr.loops}
			return rv.exprAffineD(arg, penv, depth+1)
		}
	}
	// Induction variable of an active loop.
	for i := len(env.loops) - 1; i >= 0; i-- {
		lr := env.loops[i]
		if rv.loopOwns(lr, obj) {
			return aSym(sym{kLoop, loopKey{lr.stmt, lr.fr}})
		}
	}
	return rv.resolveObj(obj, id.Pos(), env, depth)
}

// resolveObj resolves obj at pos through its reaching definitions.
func (rv *resolver) resolveObj(obj types.Object, pos token.Pos, env resolveEnv, depth int) affine {
	if depth > maxResolveDepth {
		return aBad()
	}
	r := rv.px.reachOf(env.u)
	d := r.uniqueDef(obj, pos)
	if d == nil {
		return rv.classified(obj)
	}
	if d.site == nil {
		// Entry def: a parameter without a frame binding, or a free
		// variable — ascend one lexical level.
		du := rv.px.declaringUnit(obj.Pos())
		if du == nil || du == env.u {
			return rv.classified(obj)
		}
		// Find the child of du on env.u's lexical parent chain; the
		// variable's value at env.u is its value where that literal
		// appears.
		child := env.u
		for child.parent != nil && child.parent != du {
			child = child.parent
		}
		if child.parent != du {
			return rv.classified(obj)
		}
		return rv.resolveObj(obj, child.node.Pos(), resolveEnv{u: du}, depth+1)
	}
	// Definitions inside loops not active in env would replay per
	// iteration; restrict substitution-context loops to those enclosing
	// the def site.
	denv := env
	denv.loops = nil
	for _, lr := range env.loops {
		if lr.stmt.Pos() <= d.site.Pos() && d.site.Pos() < lr.stmt.End() {
			denv.loops = append(denv.loops, lr)
		}
	}
	rhs, lhsIdx := defRHS(rv.px.info, d)
	if rhs != nil {
		return rv.exprAffineD(rhs, denv, depth+1)
	}
	// Multi-value call: recognize ChunkRange and OwnerRange.
	if as, ok := d.site.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && lhsIdx >= 0 && lhsIdx <= 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && len(as.Lhs) == 2 {
			if isChunkRangeCall(rv.px.info, call) && len(call.Args) == 3 {
				nAff := rv.exprAffineD(call.Args[0], denv, depth+1)
				kAff := rv.exprAffineD(call.Args[1], denv, depth+1)
				rankAff := rv.exprAffineD(call.Args[2], denv, depth+1)
				cid, ok := rv.chunkSite(nAff, kAff, rankAff)
				if !ok {
					return rv.classified(obj)
				}
				kind := kChunkLo
				if lhsIdx == 1 {
					kind = kChunkHi
				}
				return aSym(sym{kind, cid})
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "OwnerRange" {
				if selx := rv.px.info.Selections[sel]; selx != nil && selx.Kind() == types.MethodVal {
					if t := namedCoreType(selx.Recv()); t == "Global" || t == "Node" {
						arr := rv.arrayObj(sel.X, denv)
						if arr != nil {
							kind := kOwnerLo
							if lhsIdx == 1 {
								kind = kOwnerHi
							}
							return aSym(sym{kind, arr})
						}
					}
				}
			}
		}
	}
	return rv.classified(obj)
}

// isChunkRangeCall recognizes core.ChunkRange / ppm.ChunkRange.
func isChunkRangeCall(info *types.Info, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "ChunkRange" || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == corePath || p == "ppm"
}

// arrayObj resolves the root object a shared-array receiver expression
// denotes, substituting frame parameters and unique definitions (so a
// helper's `sh` parameter resolves to the caller's array variable, and
// `g := tables[l]` resolves to `tables`).
func (rv *resolver) arrayObj(e ast.Expr, env resolveEnv) types.Object {
	return rv.arrayObjD(e, env, 0)
}

func (rv *resolver) arrayObjD(e ast.Expr, env resolveEnv, depth int) types.Object {
	if depth > maxResolveDepth {
		return nil
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return rv.arrayObjD(x.X, env, depth+1)
	case *ast.IndexExpr:
		return rv.arrayObjD(x.X, env, depth+1)
	case *ast.SelectorExpr:
		return rv.arrayObjD(x.X, env, depth+1)
	case *ast.StarExpr:
		return rv.arrayObjD(x.X, env, depth+1)
	case *ast.Ident:
		obj := rv.px.info.Uses[x]
		if obj == nil {
			obj = rv.px.info.Defs[x]
		}
		if obj == nil {
			return nil
		}
		if env.fr != nil {
			if arg, ok := env.fr.args[obj]; ok && env.fr.parent != nil {
				penv := resolveEnv{fr: env.fr.parent, u: env.fr.parent.unit, loops: env.fr.loops}
				return rv.arrayObjD(arg, penv, depth+1)
			}
		}
		// Follow a unique alias definition when it resolves to another
		// identifier-rooted expression (g := tables[l]); otherwise the
		// variable itself is the array's identity.
		if env.u != nil {
			r := rv.px.reachOf(env.u)
			if d := r.uniqueDef(obj, x.Pos()); d != nil && d.site != nil {
				if rhs, _ := defRHS(rv.px.info, d); rhs != nil {
					if root := rv.arrayObjD(rhs, env, depth+1); root != nil {
						return root
					}
				}
			}
		}
		return obj
	}
	return nil
}

// loopOwns reports whether lr's loop declares obj as its induction
// variable (for-init define, or range key).
func (rv *resolver) loopOwns(lr loopRec, obj types.Object) bool {
	switch st := lr.stmt.(type) {
	case *ast.ForStmt:
		init, ok := st.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
			return false
		}
		id, ok := init.Lhs[0].(*ast.Ident)
		return ok && rv.px.info.Defs[id] == obj
	case *ast.RangeStmt:
		if id, ok := st.Key.(*ast.Ident); ok && st.Tok == token.DEFINE && rv.px.info.Defs[id] == obj {
			return true
		}
	}
	return false
}

// rangeValueOwner returns the loop whose range VALUE variable is obj.
func rangeValueOwner(info *types.Info, loops []loopRec, obj types.Object) (loopRec, bool) {
	for i := len(loops) - 1; i >= 0; i-- {
		if st, ok := loops[i].stmt.(*ast.RangeStmt); ok && st.Tok == token.DEFINE {
			if id, ok := st.Value.(*ast.Ident); ok && info.Defs[id] == obj {
				return loops[i], true
			}
		}
	}
	return loopRec{}, false
}

// loopBounds is a validated stride-1 loop: the induction variable runs
// over [lo, hi) and is not otherwise assigned in the body.
type loopBounds struct {
	ok     bool
	lo, hi affine
}

// bounds validates lr as a simple counted loop (i := A; i < B; i++, or
// a range over a slice for the key variable) and resolves its bounds in
// the loop's own context. prefix is the loop stack outside lr.
func (rv *resolver) bounds(lr loopRec, prefix []loopRec) *loopBounds {
	key := loopKey{lr.stmt, lr.fr}
	if b, ok := rv.loopInfo[key]; ok {
		return b
	}
	b := &loopBounds{}
	rv.loopInfo[key] = b
	env := resolveEnv{fr: lr.fr, u: lr.fr.unit, loops: prefix}
	switch st := lr.stmt.(type) {
	case *ast.ForStmt:
		init, ok := st.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
			return b
		}
		id, ok := init.Lhs[0].(*ast.Ident)
		if !ok {
			return b
		}
		obj := rv.px.info.Defs[id]
		cond, ok := st.Cond.(*ast.BinaryExpr)
		if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
			return b
		}
		cid, ok := cond.X.(*ast.Ident)
		if !ok || rv.px.info.Uses[cid] != obj {
			return b
		}
		// Post must be i++ (or i += 1).
		switch post := st.Post.(type) {
		case *ast.IncDecStmt:
			pid, ok := post.X.(*ast.Ident)
			if !ok || post.Tok != token.INC || rv.px.info.Uses[pid] != obj {
				return b
			}
		case *ast.AssignStmt:
			if post.Tok != token.ADD_ASSIGN || len(post.Lhs) != 1 || len(post.Rhs) != 1 {
				return b
			}
			pid, ok := post.Lhs[0].(*ast.Ident)
			if !ok || rv.px.info.Uses[pid] != obj {
				return b
			}
			if v, ok := rv.constVal(post.Rhs[0]); !ok || v != 1 {
				return b
			}
		default:
			return b
		}
		if loopReassigns(rv.px.info, st.Body, obj) {
			return b
		}
		lo := rv.exprAffine(init.Rhs[0], env)
		hi := rv.exprAffine(cond.Y, env)
		if cond.Op == token.LEQ {
			hi = hi.add(aConst(1))
		}
		if !lo.ok || !hi.ok {
			return b
		}
		b.ok, b.lo, b.hi = true, lo, hi
		return b
	case *ast.RangeStmt:
		// Key variable over a slice: [0, len(X)). len(X) is modeled as
		// an opaque symbol keyed by the range statement, classified by
		// the range expression's uniformity.
		if loopReassignsKey(rv.px.info, st) {
			return b
		}
		cls := rv.classifyExpr(st.X, env)
		if cls == classPerVP {
			return b
		}
		kind := kUniform
		if cls == int(kNodeVar) {
			kind = kNodeVar
		}
		b.ok = true
		b.lo = aConst(0)
		b.hi = aSym(sym{kind, key})
		return b
	}
	return b
}

// loopReassigns reports whether body assigns, increments, or takes the
// address of obj.
func loopReassigns(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	bad := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
					bad = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := x.X.(*ast.Ident); ok && info.Uses[id] == obj {
				bad = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id, ok := x.X.(*ast.Ident); ok && info.Uses[id] == obj {
					bad = true
				}
			}
		}
		return !bad
	})
	return bad
}

func loopReassignsKey(info *types.Info, st *ast.RangeStmt) bool {
	id, ok := st.Key.(*ast.Ident)
	if !ok || st.Tok != token.DEFINE {
		return false
	}
	obj := info.Defs[id]
	return obj != nil && loopReassigns(info, st.Body, obj)
}

// opaque builds a symbol for an expression the affine grammar cannot
// decompose, classified by uniformity; per-VP opaque values poison the
// form.
func (rv *resolver) opaque(e ast.Expr, env resolveEnv) affine {
	switch rv.classifyExpr(e, env) {
	case classPerVP:
		return aBad()
	case int(kNodeVar):
		return aSym(sym{kNodeVar, ast.Node(e)})
	default:
		return aSym(sym{kUniform, ast.Node(e)})
	}
}

// classified resolves obj to its uniformity symbol.
func (rv *resolver) classified(obj types.Object) affine {
	switch rv.classifyObj(obj, 0) {
	case classPerVP:
		return aBad()
	case int(kNodeVar):
		return aSym(sym{kNodeVar, obj})
	default:
		return aSym(sym{kUniform, obj})
	}
}

// classifyExpr classifies an expression's uniformity: classPerVP if it
// can differ between VPs of one node, kNodeVar if only between nodes,
// kUniform otherwise.
func (rv *resolver) classifyExpr(e ast.Expr, env resolveEnv) int {
	cls := int(kUniform)
	merge := func(c int) {
		if c == classPerVP || cls == classPerVP {
			cls = classPerVP
		} else if c == int(kNodeVar) {
			cls = int(kNodeVar)
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if cls == classPerVP {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isVPMethod(rv.px.info, x, "NodeRank", "GlobalRank") {
				merge(classPerVP)
				return false
			}
			if isVPMethod(rv.px.info, x, "K") || isRuntimeMethod(rv.px.info, x, "NodeID") {
				merge(int(kNodeVar))
				return false
			}
		case *ast.Ident:
			obj := rv.px.info.Uses[x]
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				// Loop variables active in env are per-VP iteration state.
				for _, lr := range env.loops {
					if rv.loopOwns(lr, obj) {
						merge(classPerVP)
						return true
					}
				}
				merge(rv.classifyObj(obj, 0))
			}
		}
		return true
	})
	return cls
}

// classifyObj classifies a variable's uniformity from where it is
// declared and what its definitions mention.
func (rv *resolver) classifyObj(obj types.Object, depth int) int {
	if c, ok := rv.class[obj]; ok {
		return c
	}
	if depth > 8 {
		return int(kNodeVar) // conservative middle class
	}
	// Guard against recursion through cyclic definitions.
	rv.class[obj] = int(kNodeVar)

	cls := int(kUniform)
	du := rv.px.declaringUnit(obj.Pos())
	if du != nil && rv.px.vpRoot(du) != nil {
		cls = classPerVP
	} else if du != nil {
		// Scan the declaring unit's definitions of obj for node- or
		// VP-dependent ingredients.
		merge := func(c int) {
			if c == classPerVP || cls == classPerVP {
				cls = classPerVP
			} else if c == int(kNodeVar) {
				cls = int(kNodeVar)
			}
		}
		scanRHS := func(e ast.Expr) {
			ast.Inspect(e, func(n ast.Node) bool {
				if cls == classPerVP {
					return false
				}
				switch x := n.(type) {
				case *ast.CallExpr:
					if isVPMethod(rv.px.info, x, "NodeRank", "GlobalRank") {
						merge(classPerVP)
						return false
					}
					if isVPMethod(rv.px.info, x, "K") || isRuntimeMethod(rv.px.info, x, "NodeID") {
						merge(int(kNodeVar))
						return false
					}
					if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "OwnerRange" {
						merge(int(kNodeVar))
						return false
					}
					// AllReduce results are uniform across nodes.
					if isRuntimeMethod(rv.px.info, x, "AllReduce", "AllReduceInt") {
						return false
					}
				case *ast.Ident:
					o := rv.px.info.Uses[x]
					if v, ok := o.(*types.Var); ok && !v.IsField() && o != obj {
						merge(rv.classifyObj(o, depth+1))
					}
				}
				return true
			})
		}
		ast.Inspect(du.body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					o := rv.px.info.Defs[id]
					if o == nil {
						o = rv.px.info.Uses[id]
					}
					if o != obj {
						continue
					}
					if len(x.Rhs) == len(x.Lhs) {
						scanRHS(x.Rhs[i])
					} else if len(x.Rhs) == 1 {
						scanRHS(x.Rhs[0])
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if rv.px.info.Defs[name] == obj && i < len(x.Values) {
						scanRHS(x.Values[i])
					}
				}
			case *ast.RangeStmt:
				for _, v := range []ast.Expr{x.Key, x.Value} {
					if id, ok := v.(*ast.Ident); ok && rv.px.info.Defs[id] == obj {
						scanRHS(x.X)
					}
				}
			}
			return true
		})
	}
	rv.class[obj] = cls
	return cls
}
