package analysis

// blockretain: block-transfer slices outliving their phase. A
// WriteBlock/AddBlock source is logically handed to the runtime until
// the end-of-phase commit applies it: the model contract lets the
// runtime stage the slice zero-copy (the simulator happens to copy
// into a commit arena, but portable PPM code must not rely on that).
// Such a slice escaping the phase — stored into a field or a variable
// declared outside the function, stored into package state, returned
// to a caller, or handed to a helper that escapes it
// (funcSummary.escapesParam) — aliases memory the runtime may still
// own across the phase boundary. The fix is always the same: copy the
// data. Results of any view-returning block read accessor are tracked
// the same way (ReadBlock itself fills a caller-owned dst and is not
// tracked).
//
// The check runs per unit: a helper that binds sh.ReadBlock(...) and
// stores it into a field is reported in the helper itself, so the
// through-a-helper case needs no call-site expansion; escape through a
// callee is covered by summaries.

import (
	"go/ast"
	"go/types"
)

// BlockRetainAnalyzer reports phase block slices that escape the phase.
var BlockRetainAnalyzer = &Analyzer{
	Name: "blockretain",
	Doc: "report WriteBlock/AddBlock source slices that escape their phase " +
		"(field store, store to outer or package state, return, or an escaping helper): " +
		"the runtime may stage block sources until the end-of-phase commit",
	Run: runBlockRetain,
}

func runBlockRetain(pass *Pass) error {
	px := pass.Index()
	for _, u := range px.units {
		checkBlockRetain(pass, px, u)
	}
	return nil
}

func checkBlockRetain(pass *Pass, px *PkgIndex, u *unit) {
	// Pass 1: collect the tracked slice variables of this unit — block
	// call results and sources, plus aliases of them. Two sweeps make
	// alias chains in source order converge.
	tracked := map[types.Object]bool{}
	producesTracked := func(e ast.Expr) bool {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.CallExpr:
				sc, ok := asSharedCall(px.info, x)
				return ok && sc.block && !sc.write
			case *ast.Ident:
				obj := px.info.Uses[x]
				return obj != nil && tracked[obj]
			default:
				return false
			}
		}
	}
	ownScan := func(fn func(n ast.Node)) {
		ast.Inspect(u.body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && px.units[lit] != nil {
				_ = lit
				return false // nested unit: scanned separately below
			}
			fn(n)
			return true
		})
	}
	for sweep := 0; sweep < 2; sweep++ {
		ownScan(func(n ast.Node) {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" || len(x.Rhs) != len(x.Lhs) {
						continue
					}
					if producesTracked(x.Rhs[i]) {
						obj := px.info.Defs[id]
						if obj == nil {
							obj = px.info.Uses[id]
						}
						if obj != nil {
							tracked[obj] = true
						}
					}
				}
			case *ast.CallExpr:
				// WriteBlock/AddBlock: the source slice is held by the
				// runtime until the phase commit.
				if sc, ok := asSharedCall(px.info, x); ok && sc.block && sc.write {
					if obj := exprRootVar(px.info, x.Args[len(x.Args)-1]); obj != nil {
						if !declaredOutsideUnit(u, obj) {
							tracked[obj] = true
						}
					}
				}
			}
		})
	}
	if len(tracked) == 0 {
		return
	}

	// Pass 2: escapes in this unit's own statements.
	ownScan(func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if len(x.Rhs) != len(x.Lhs) || !producesTracked(x.Rhs[i]) {
					continue
				}
				reportBlockStore(pass, px, u, tracked, lhs, x)
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if producesTracked(res) {
					pass.Reportf(x.Pos(),
						"phase block slice is returned: it aliases a runtime-owned buffer valid only within the phase — copy the data instead")
				}
			}
		case *ast.CallExpr:
			if _, isShared := asSharedCall(px.info, x); isShared {
				return
			}
			callee := px.localCallee(x)
			if callee == nil || callee.fn == nil {
				return
			}
			s := px.summaryOf(callee.fn)
			if s == nil {
				return
			}
			for i, arg := range x.Args {
				if i < len(s.escapesParam) && s.escapesParam[i] && producesTracked(arg) {
					pass.Reportf(x.Pos(),
						"phase block slice is passed to %s, which stores or returns it: "+
							"the slice aliases a runtime-owned buffer valid only within the phase — copy the data instead",
						callee.fn.Name())
				}
			}
		}
	})

	// Pass 3: nested literals storing a tracked free variable to
	// longer-lived state (the closure-capture escape).
	ast.Inspect(u.body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || px.units[lit] == nil {
			return true
		}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if len(as.Rhs) != len(as.Lhs) {
					continue
				}
				id, ok := as.Rhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := px.info.Uses[id]
				if obj == nil || !tracked[obj] {
					continue
				}
				reportBlockStore(pass, px, u, tracked, lhs, as)
			}
			return true
		})
		return false
	})
}

// reportBlockStore reports an assignment of a tracked slice to lhs when
// the destination outlives the phase: a field/element/pointer store
// whose root is not itself phase-local tracked state, a variable
// declared outside the unit, or a package variable.
func reportBlockStore(pass *Pass, px *PkgIndex, u *unit, tracked map[types.Object]bool, lhs ast.Expr, at ast.Node) {
	if id, ok := lhs.(*ast.Ident); ok {
		obj := px.info.Defs[id]
		if obj == nil {
			obj = px.info.Uses[id]
		}
		if obj == nil {
			return
		}
		if px.declaringUnit(obj.Pos()) == nil {
			pass.Reportf(at.Pos(),
				"phase block slice is stored in package variable %s: it aliases a runtime-owned buffer valid only within the phase — copy the data instead",
				obj.Name())
			return
		}
		if declaredOutsideUnit(u, obj) {
			pass.Reportf(at.Pos(),
				"phase block slice is stored in %s, declared outside this function: it aliases a runtime-owned buffer valid only within the phase — copy the data instead",
				obj.Name())
		}
		return
	}
	root := exprRootVar(px.info, lhs)
	if root != nil && tracked[root] {
		return // writing into the block view itself, not retaining it
	}
	pass.Reportf(at.Pos(),
		"phase block slice is stored into longer-lived state: it aliases a runtime-owned buffer valid only within the phase — copy the data instead")
}
