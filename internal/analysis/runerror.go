package analysis

import (
	"go/ast"
	"go/types"
)

// RunErrorAnalyzer flags ppm.Run (and core.Run / lang.Interpret) calls
// whose error result is discarded. Run's error is how strict-mode
// write-conflict detection, phase-shape violations and VP panics
// surface; dropping it silently accepts a failed run's partial results.
var RunErrorAnalyzer = &Analyzer{
	Name: "runerror",
	Doc: "report discarded ppm.Run errors: strict-mode conflicts and phase-shape " +
		"violations are only observable through them",
	Run: runRunError,
}

// errFuncs lists (package path, function name, index of the error
// result) triples the rule watches.
var errFuncs = []struct {
	pkg, name string
	errIdx    int
}{
	{"ppm", "Run", 1},
	{"ppm/internal/core", "Run", 1},
	{"ppm/internal/lang", "Interpret", 1},
}

func runRunError(pass *Pass) error {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			errIdx, ok := watchedCall(pass.TypesInfo, call)
			if !ok {
				return
			}
			name := types.ExprString(call.Fun)
			if len(stack) < 2 {
				return
			}
			switch parent := stack[len(stack)-2].(type) {
			case *ast.ExprStmt:
				pass.Reportf(call.Pos(),
					"%s error discarded: strict-mode conflicts and run failures surface only through it", name)
			case *ast.GoStmt, *ast.DeferStmt:
				pass.Reportf(call.Pos(),
					"%s error discarded (go/defer): strict-mode conflicts and run failures surface only through it", name)
			case *ast.AssignStmt:
				if len(parent.Rhs) == 1 && parent.Rhs[0] == ast.Expr(call) && errIdx < len(parent.Lhs) {
					if id, ok := parent.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(call.Pos(),
							"%s error assigned to _: strict-mode conflicts and run failures surface only through it", name)
					}
				}
			}
		})
	}
	return nil
}

// watchedCall reports whether call invokes one of the watched
// error-returning entry points, and which result is the error.
func watchedCall(info *types.Info, call *ast.CallExpr) (int, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return 0, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return 0, false
	}
	for _, w := range errFuncs {
		if fn.Pkg().Path() == w.pkg && fn.Name() == w.name {
			return w.errIdx, true
		}
	}
	return 0, false
}
