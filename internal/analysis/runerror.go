package analysis

import (
	"go/ast"
	"go/types"
)

// RunErrorAnalyzer flags ppm.Run (and core.Run / lang.Interpret) calls
// whose error result is discarded — as a bare statement, through go or
// defer, or assigned to the blank identifier. Run's error is how
// strict-mode write-conflict detection, phase-shape violations and VP
// panics surface; dropping it silently accepts a failed run's partial
// results.
//
// The rule is interprocedural: a package-local function that merely
// forwards a watched call's error (`return ppm.Run(...)`, or
// `rep, err := ppm.Run(...); return rep, err`) becomes watched itself,
// so discarding that helper's result is reported at the caller.
var RunErrorAnalyzer = &Analyzer{
	Name: "runerror",
	Doc: "report discarded ppm.Run errors (bare call, go/defer, blank assignment, " +
		"or through an error-forwarding helper): strict-mode conflicts and " +
		"phase-shape violations are only observable through them",
	Run: runRunError,
}

// errFuncs lists (package path, function name, index of the error
// result) triples the rule watches.
var errFuncs = []struct {
	pkg, name string
	errIdx    int
}{
	{"ppm", "Run", 1},
	{"ppm/internal/core", "Run", 1},
	{"ppm/internal/lang", "Interpret", 1},
}

func runRunError(pass *Pass) error {
	px := pass.Index()
	watchedLocal := buildWatchedLocals(px)
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			errIdx, ok := watchedCall(px, call, watchedLocal)
			if !ok {
				return
			}
			name := types.ExprString(call.Fun)
			if len(stack) < 2 {
				return
			}
			switch parent := stack[len(stack)-2].(type) {
			case *ast.ExprStmt:
				pass.Reportf(call.Pos(),
					"%s error discarded: strict-mode conflicts and run failures surface only through it", name)
			case *ast.GoStmt, *ast.DeferStmt:
				pass.Reportf(call.Pos(),
					"%s error discarded (go/defer): strict-mode conflicts and run failures surface only through it", name)
			case *ast.AssignStmt:
				if len(parent.Rhs) == 1 && parent.Rhs[0] == ast.Expr(call) && errIdx < len(parent.Lhs) {
					if id, ok := parent.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(call.Pos(),
							"%s error assigned to _: strict-mode conflicts and run failures surface only through it", name)
					}
				}
			case *ast.ReturnStmt:
				// Forwarding the error is handled by making the
				// enclosing function watched; nothing is discarded here.
			}
		})
	}
	return nil
}

// buildWatchedLocals finds package-local functions that forward a
// watched call's error to their own caller, iterating to a fixpoint so
// forwarding chains are covered. The value is the error's position in
// the function's result list.
func buildWatchedLocals(px *PkgIndex) map[*types.Func]int {
	watched := map[*types.Func]int{}
	for changed := true; changed; {
		changed = false
		for fn, u := range px.byFunc {
			if _, done := watched[fn]; done {
				continue
			}
			if idx, ok := forwardsWatchedError(px, u, watched); ok {
				watched[fn] = idx
				changed = true
			}
		}
	}
	return watched
}

// forwardsWatchedError reports whether some return statement of u
// passes a watched call's error out: a direct tuple forward
// (`return ppm.Run(...)`), an error-position call result, or a variable
// whose unique reaching definition binds the watched call's error.
func forwardsWatchedError(px *PkgIndex, u *unit, watched map[*types.Func]int) (int, bool) {
	found, ok := -1, false
	ast.Inspect(u.body, func(n ast.Node) bool {
		if ok {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit && n != u.node {
			return false // nested literal: its returns are not u's
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		// return f(...): the whole result tuple is forwarded, the error
		// keeps its index.
		if len(ret.Results) == 1 {
			if call, isCall := ret.Results[0].(*ast.CallExpr); isCall {
				if idx, w := watchedCall(px, call, watched); w {
					found, ok = idx, true
					return false
				}
			}
		}
		for i, res := range ret.Results {
			switch x := res.(type) {
			case *ast.CallExpr:
				// return ..., lang.Interpret(...) as a single-result call
				// in the error position.
				if idx, w := watchedCall(px, x, watched); w && idx == 0 {
					found, ok = i, true
					return false
				}
			case *ast.Ident:
				// return rep, err — err's unique definition binds the
				// watched call's error result.
				obj := px.info.Uses[x]
				if obj == nil {
					continue
				}
				r := px.reachOf(u)
				d := r.uniqueDef(obj, x.Pos())
				if d == nil || d.site == nil {
					continue
				}
				as, isAssign := d.site.(*ast.AssignStmt)
				if !isAssign || len(as.Rhs) != 1 {
					continue
				}
				call, isCall := as.Rhs[0].(*ast.CallExpr)
				if !isCall {
					continue
				}
				idx, w := watchedCall(px, call, watched)
				if !w {
					continue
				}
				if _, lhsIdx := defRHS(px.info, d); lhsIdx == idx {
					found, ok = i, true
					return false
				}
			}
		}
		return true
	})
	return found, ok
}

// watchedCall reports whether call invokes a watched error-returning
// entry point — one of the errFuncs, or a package-local forwarder — and
// which result is the error.
func watchedCall(px *PkgIndex, call *ast.CallExpr, watchedLocal map[*types.Func]int) (int, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = px.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = px.info.Uses[fun.Sel]
	default:
		return 0, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return 0, false
	}
	for _, w := range errFuncs {
		if fn.Pkg().Path() == w.pkg && fn.Name() == w.name {
			return w.errIdx, true
		}
	}
	if idx, ok := watchedLocal[fn]; ok {
		return idx, true
	}
	if orig := fn.Origin(); orig != nil {
		if idx, ok := watchedLocal[orig]; ok {
			return idx, true
		}
	}
	return 0, false
}
