package analysis

import (
	"go/ast"
	"go/types"
)

// ConstWriteAnalyzer flags Write/WriteBlock calls whose index is a
// rank-independent constant and which are executed by every VP of a
// phase: every VP stores to the same element, which is a guaranteed
// conflicting-writes abort under Options.StrictWrites (and silently
// order-dependent without it). Writes guarded by a rank-dependent
// condition (e.g. `if vp.NodeRank() == 0`) single out one writer and are
// fine, as are Add/AddBlock (combining updates never conflict).
var ConstWriteAnalyzer = &Analyzer{
	Name: "constwrite",
	Doc: "report phase writes to a rank-independent constant index executed by " +
		"every VP — a guaranteed StrictWrites conflict",
	Run: runConstWrite,
}

func runConstWrite(pass *Pass) error {
	ctx := buildPhaseCtx(pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		tainted := taintedVars(pass.TypesInfo, f)
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sc, ok := asSharedCall(pass.TypesInfo, call)
			if !ok || !sc.write || sc.add {
				return
			}
			lit := ctx.enclosingPhaseLit(stack)
			if lit == nil {
				return // outside phases phasebound reports
			}
			for _, idx := range sc.indices {
				if pass.TypesInfo.Types[idx].Value == nil {
					return // not a compile-time constant
				}
			}
			if rankGuarded(pass.TypesInfo, stack, lit, tainted) {
				return
			}
			// A node array written by a single-VP Do conflicts with
			// nobody on its node.
			if sc.typ == "Node" && doKIsOne(pass.TypesInfo, stack) {
				return
			}
			pass.Reportf(call.Pos(),
				"%s.%s to constant index %s is executed by every VP of the phase: guaranteed conflicting writes under StrictWrites — guard by rank or use Add",
				types.ExprString(sc.recv), sc.method, types.ExprString(sc.indices[0]))
		})
	}
	return nil
}

// rankGuarded reports whether any if-condition between the phase body
// and the access depends on a per-rank quantity.
func rankGuarded(info *types.Info, stack []ast.Node, lit *ast.FuncLit, tainted map[types.Object]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == ast.Node(lit) {
			return false
		}
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if rankDependent(info, ifs.Cond, tainted) {
			return true
		}
	}
	return false
}

// doKIsOne reports whether the enclosing Runtime.Do call on stack starts
// a single VP (constant K == 1).
func doKIsOne(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok || !isRuntimeMethod(info, call, "Do") || len(call.Args) != 2 {
			continue
		}
		tv := info.Types[call.Args[0]]
		return tv.Value != nil && tv.Value.String() == "1"
	}
	return false
}
