package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ConstWriteAnalyzer flags Write/WriteBlock calls whose index is a
// rank-independent constant and which are executed by every VP of a
// phase: every VP stores to the same element, which is a guaranteed
// conflicting-writes abort under Options.StrictWrites (and silently
// order-dependent without it). Writes guarded by a rank-dependent
// condition (e.g. `if vp.NodeRank() == 0`) single out one writer and are
// fine, as are Add/AddBlock (combining updates never conflict).
var ConstWriteAnalyzer = &Analyzer{
	Name: "constwrite",
	Doc: "report phase writes to a rank-independent constant index executed by " +
		"every VP — a guaranteed StrictWrites conflict",
	Run: runConstWrite,
}

func runConstWrite(pass *Pass) error {
	px := pass.Index()
	ctx := px.ctx
	for _, f := range pass.Files {
		tainted := taintedVars(pass.TypesInfo, f)
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sc, ok := asSharedCall(pass.TypesInfo, call)
			if !ok || !sc.write || sc.add {
				return
			}
			lit := ctx.enclosingPhaseLit(stack)
			if lit == nil {
				return // outside phases phasebound reports
			}
			for _, idx := range sc.indices {
				if pass.TypesInfo.Types[idx].Value == nil {
					return // not a compile-time constant
				}
			}
			if rankGuarded(pass.TypesInfo, stack, lit, tainted) {
				return
			}
			// A node array written by a single-VP Do conflicts with
			// nobody on its node.
			if sc.typ == "Node" && doKIsOne(pass.TypesInfo, stack) {
				return
			}
			pass.Reportf(call.Pos(),
				"%s.%s to constant index %s is executed by every VP of the phase: guaranteed conflicting writes under StrictWrites — guard by rank or use Add",
				types.ExprString(sc.recv), sc.method, types.ExprString(sc.indices[0]))
		})
	}
	reportHelperConstWrites(pass, px)
	return nil
}

// reportHelperConstWrites is the interprocedural half of the rule:
// writes reached through package-local helpers whose index, after
// substituting the caller's arguments, is a rank-independent constant.
// The direct (depth-0) case is handled syntactically above, with its
// richer guard analysis; here a write is exempted when a rank-dependent
// if-condition encloses it in any frame of the expansion chain.
func reportHelperConstWrites(pass *Pass, px *PkgIndex) {
	rv := newResolver(px)
	taintedByFile := map[*ast.File]map[types.Object]bool{}
	taintedFor := func(pos token.Pos) map[types.Object]bool {
		for _, f := range pass.Files {
			if f.Pos() <= pos && pos < f.End() {
				t, ok := taintedByFile[f]
				if !ok {
					t = taintedVars(pass.TypesInfo, f)
					taintedByFile[f] = t
				}
				return t
			}
		}
		return nil
	}
	for lit, isPhase := range px.ctx.phaseLits {
		if !isPhase {
			continue
		}
		u := px.unitFor(lit)
		if u == nil {
			continue
		}
		singleVP := phaseSingleVP(pass, px, u)
		px.walkOps(&frame{unit: u}, map[*unit]bool{}, func(op opSite) {
			if op.depth == 0 || !op.sc.write || op.sc.add || op.sc.block {
				return
			}
			env := envOf(op.fr, op.loops)
			for _, idx := range op.sc.indices {
				a := rv.exprAffine(idx, env)
				if _, isConst := a.isConst(); !isConst {
					return
				}
			}
			if op.sc.typ == "Node" && singleVP {
				return
			}
			// Rank guards anywhere along the expansion chain exempt.
			node := ast.Node(op.sc.call)
			for f := op.fr; f != nil && node != nil; f = f.parent {
				if rankGuardedIn(pass, f.unit, node, taintedFor(f.unit.body.Pos())) {
					return
				}
				node = f.site
			}
			arr := rv.arrayObj(op.sc.recv, env)
			name := types.ExprString(op.sc.recv)
			if arr != nil {
				name = arr.Name()
			}
			pass.Reportf(op.fr.reportPos(op.sc.call.Pos()),
				"%s.%s through a helper resolves to a constant index executed by every VP of the phase: guaranteed conflicting writes under StrictWrites — guard by rank or use Add",
				name, op.sc.method)
		})
	}
}

// rankGuardedIn reports whether a rank-dependent if-condition encloses
// node within u's body.
func rankGuardedIn(pass *Pass, u *unit, node ast.Node, tainted map[types.Object]bool) bool {
	guarded := false
	inspectStack(u.body, func(n ast.Node, stack []ast.Node) {
		if n != node || guarded {
			return
		}
		for _, anc := range stack {
			if ifs, ok := anc.(*ast.IfStmt); ok && rankDependent(pass.TypesInfo, ifs.Cond, tainted) {
				guarded = true
				return
			}
		}
	})
	return guarded
}

// rankGuarded reports whether any if-condition between the phase body
// and the access depends on a per-rank quantity.
func rankGuarded(info *types.Info, stack []ast.Node, lit *ast.FuncLit, tainted map[types.Object]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == ast.Node(lit) {
			return false
		}
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if rankDependent(info, ifs.Cond, tainted) {
			return true
		}
	}
	return false
}

// doKIsOne reports whether the enclosing Runtime.Do call on stack starts
// a single VP (constant K == 1).
func doKIsOne(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok || !isRuntimeMethod(info, call, "Do") || len(call.Args) != 2 {
			continue
		}
		tv := info.Types[call.Args[0]]
		return tv.Value != nil && tv.Value.String() == "1"
	}
	return false
}
