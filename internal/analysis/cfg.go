package analysis

// This file is the bottom of the dataflow layer: per-function
// control-flow graphs. A CFG decomposes one function body into basic
// blocks of simple statements (assignments, declarations, calls,
// returns) plus the control expressions that guard the edges between
// them. Compound statements never appear in a block — their pieces do —
// so a dataflow pass can treat Nodes as a straight-line sequence.
//
// The builder handles the full statement grammar the repo uses: if/else
// chains, three-clause and range for loops, switch/type-switch with
// fallthrough, select, labeled break/continue, goto, and early returns.
// Function literals are NOT descended into: a literal's body is its own
// function with its own CFG (see unitIndex in callgraph.go); in the
// enclosing graph the literal is just an expression operand.

import (
	"go/ast"
	"go/token"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks[0] is the entry block; Exit is the single synthetic exit
	// every return and falling-off-the-end path reaches.
	Blocks []*CFGBlock
	Exit   *CFGBlock
}

// A CFGBlock is one basic block: Nodes execute in order, then control
// transfers to one of Succs (no successors only for the exit block and
// blocks ending in panic-like dead ends).
type CFGBlock struct {
	Index int
	// Nodes holds simple statements in execution order, plus control
	// expressions (an if/for/switch condition is the last node of the
	// block that evaluates it). A *ast.RangeStmt node stands for the
	// per-iteration key/value assignment of its loop head.
	Nodes []ast.Node
	Succs []*CFGBlock
	Preds []*CFGBlock
}

// cfgBuilder carries the under-construction graph and the branch
// context (break/continue/goto targets) of the statement being lowered.
type cfgBuilder struct {
	cfg *CFG
	cur *CFGBlock

	// breakTo/continueTo map "" to the innermost target and each label
	// to its labeled construct's target.
	breakTo    map[string][]*CFGBlock
	continueTo map[string][]*CFGBlock
	labels     map[string]*CFGBlock
	gotos      []pendingGoto
	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels, so break/continue with that label resolve correctly.
	pendingLabel string
}

type pendingGoto struct {
	from  *CFGBlock
	label string
}

// BuildCFG lowers one function body to a control-flow graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:        &CFG{},
		breakTo:    map[string][]*CFGBlock{},
		continueTo: map[string][]*CFGBlock{},
		labels:     map[string]*CFGBlock{},
	}
	entry := b.newBlock()
	b.cur = entry
	exit := b.newBlock()
	b.cfg.Exit = exit
	b.stmtList(body.List)
	b.link(b.cur, exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.link(g.from, target)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *CFGBlock) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a simple node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// pushBreak registers target for break (and optionally continue)
// statements naming label or naming nothing, and returns a pop func.
func (b *cfgBuilder) pushTargets(label string, brk, cont *CFGBlock) func() {
	keys := []string{""}
	if label != "" {
		keys = append(keys, label)
	}
	for _, k := range keys {
		b.breakTo[k] = append(b.breakTo[k], brk)
		if cont != nil {
			b.continueTo[k] = append(b.continueTo[k], cont)
		}
	}
	return func() {
		for _, k := range keys {
			b.breakTo[k] = b.breakTo[k][:len(b.breakTo[k])-1]
			if cont != nil {
				b.continueTo[k] = b.continueTo[k][:len(b.continueTo[k])-1]
			}
		}
	}
}

func top(m map[string][]*CFGBlock, label string) *CFGBlock {
	s := m[label]
	if len(s) == 0 {
		return nil
	}
	return s[len(s)-1]
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.LabeledStmt:
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		b.labels[st.Label.Name] = head
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)

	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		join := b.newBlock()
		b.link(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(st.Body)
		b.link(b.cur, join)
		if st.Else != nil {
			elseBlk := b.newBlock()
			b.link(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(st.Else)
			b.link(b.cur, join)
		} else {
			b.link(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		if st.Cond != nil {
			b.add(st.Cond)
		}
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		b.link(head, after) // cond false (or loop exit via cond-less for's break only)
		pop := b.pushTargets(label, after, post)
		b.cur = body
		b.stmt(st.Body)
		pop()
		b.link(b.cur, post)
		b.cur = post
		if st.Post != nil {
			b.add(st.Post)
		}
		b.link(post, head)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.link(b.cur, head)
		// The RangeStmt node itself stands for the loop-head assignment
		// of Key/Value on each iteration.
		head.Nodes = append(head.Nodes, st)
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		b.link(head, after)
		pop := b.pushTargets(label, after, head)
		b.cur = body
		b.stmt(st.Body)
		pop()
		b.link(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var body *ast.BlockStmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			init, tag, body = sw.Init, sw.Tag, sw.Body
		} else {
			tsw := st.(*ast.TypeSwitchStmt)
			init, tag, body = tsw.Init, tsw.Assign, tsw.Body
		}
		if init != nil {
			b.add(init)
		}
		if tag != nil {
			b.add(tag)
		}
		head := b.cur
		after := b.newBlock()
		pop := b.pushTargets(label, after, nil)
		var clauseBlocks []*CFGBlock
		var clauses []*ast.CaseClause
		hasDefault := false
		for _, c := range body.List {
			cc := c.(*ast.CaseClause)
			blk := b.newBlock()
			b.link(head, blk)
			if cc.List == nil {
				hasDefault = true
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauses = append(clauses, cc)
		}
		for i, cc := range clauses {
			b.cur = clauseBlocks[i]
			for _, e := range cc.List {
				b.add(e)
			}
			fallsThrough := false
			for _, cs := range cc.Body {
				if br, ok := cs.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					fallsThrough = true
					continue
				}
				b.stmt(cs)
			}
			if fallsThrough && i+1 < len(clauseBlocks) {
				b.link(b.cur, clauseBlocks[i+1])
			} else {
				b.link(b.cur, after)
			}
		}
		pop()
		if !hasDefault {
			b.link(head, after)
		}
		b.cur = after

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		pop := b.pushTargets(label, after, nil)
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.link(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.link(b.cur, after)
		}
		pop()
		b.cur = after

	case *ast.ReturnStmt:
		b.add(st)
		b.link(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // dead: anything after a return is unreachable

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			label := ""
			if st.Label != nil {
				label = st.Label.Name
			}
			b.link(b.cur, top(b.breakTo, label))
		case token.CONTINUE:
			label := ""
			if st.Label != nil {
				label = st.Label.Name
			}
			b.link(b.cur, top(b.continueTo, label))
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: st.Label.Name})
		}
		// FALLTHROUGH is handled inside switch lowering.
		b.cur = b.newBlock()

	case *ast.EmptyStmt:
		// nothing

	default:
		// Simple statements: assignments, declarations, expression and
		// send statements, go/defer, inc/dec.
		b.add(st)
	}
}
