package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkSrc parses and type-checks one import-free file and returns the
// named top-level function.
func checkSrc(t *testing.T, src, fn string) (*token.FileSet, *types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	if _, err := (&types.Config{}).Check("t", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fset, info, fd
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil, nil
}

// blockOf finds the block containing a node that satisfies pred.
func blockOf(cfg *CFG, pred func(ast.Node) bool) *CFGBlock {
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return b
			}
		}
	}
	return nil
}

// isPlainAssign matches `name = <lit>` (not a := declaration).
func isPlainAssign(name, lit string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name != name {
			return false
		}
		bl, ok := as.Rhs[0].(*ast.BasicLit)
		return ok && bl.Value == lit
	}
}

// reachable returns the blocks reachable from the entry.
func reachable(cfg *CFG) map[*CFGBlock]bool {
	seen := map[*CFGBlock]bool{}
	var walk func(b *CFGBlock)
	walk = func(b *CFGBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(cfg.Blocks[0])
	return seen
}

func TestCFGLinear(t *testing.T) {
	_, _, fd := checkSrc(t, `package t
func f() int {
	x := 1
	y := x + 2
	return y
}`, "f")
	cfg := BuildCFG(fd.Body)
	if len(cfg.Exit.Succs) != 0 {
		t.Errorf("exit block has successors: %v", cfg.Exit.Succs)
	}
	if !reachable(cfg)[cfg.Exit] {
		t.Error("exit not reachable from entry")
	}
	entry := cfg.Blocks[0]
	if len(entry.Nodes) != 3 {
		t.Errorf("straight-line body split across blocks: entry holds %d nodes", len(entry.Nodes))
	}
}

func TestCFGIfElse(t *testing.T) {
	_, _, fd := checkSrc(t, `package t
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	cfg := BuildCFG(fd.Body)
	entry := cfg.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2", len(entry.Succs))
	}
	// Both arms must rejoin before the return.
	thenB := blockOf(cfg, isPlainAssign("x", "1"))
	if thenB == nil || len(thenB.Succs) != 1 {
		t.Fatalf("then arm missing or not rejoining: %+v", thenB)
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	_, _, fd := checkSrc(t, `package t
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	cfg := BuildCFG(fd.Body)
	// The loop body must lead back to the condition: a cycle reachable
	// from the entry.
	body := blockOf(cfg, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok == token.ADD_ASSIGN
	})
	if body == nil {
		t.Fatal("loop body block not found")
	}
	onCycle := false
	var walk func(b *CFGBlock, seen map[*CFGBlock]bool)
	walk = func(b *CFGBlock, seen map[*CFGBlock]bool) {
		if seen[b] {
			onCycle = onCycle || b == body
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s, seen)
		}
	}
	walk(body, map[*CFGBlock]bool{})
	if !onCycle {
		t.Error("no back edge: loop body does not reach itself")
	}
	if !reachable(cfg)[cfg.Exit] {
		t.Error("exit not reachable (loop treated as infinite)")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	_, _, fd := checkSrc(t, `package t
func f(c bool) int {
	x := 1
	if c {
		return 0
	}
	x = 2
	return x
}`, "f")
	cfg := BuildCFG(fd.Body)
	ret := blockOf(cfg, func(n ast.Node) bool {
		r, ok := n.(*ast.ReturnStmt)
		return ok && len(r.Results) == 1 && types.ExprString(r.Results[0]) == "0"
	})
	if ret == nil {
		t.Fatal("early-return block not found")
	}
	if len(ret.Succs) != 1 || ret.Succs[0] != cfg.Exit {
		t.Errorf("early return must jump straight to exit, has succs %v", ret.Succs)
	}
	// The fall-through path must not pass through the return block.
	after := blockOf(cfg, isPlainAssign("x", "2"))
	for _, p := range after.Preds {
		if p == ret {
			t.Error("code after the if is a successor of the return block")
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, _, fd := checkSrc(t, `package t
func f(c int) int {
	x := 0
	switch c {
	case 1:
		x = 1
		fallthrough
	case 2:
		x = 2
	default:
		x = 3
	}
	return x
}`, "f")
	cfg := BuildCFG(fd.Body)
	case1 := blockOf(cfg, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return false
		}
		bl, ok := as.Rhs[0].(*ast.BasicLit)
		return ok && bl.Value == "1"
	})
	case2 := blockOf(cfg, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return false
		}
		bl, ok := as.Rhs[0].(*ast.BasicLit)
		return ok && bl.Value == "2"
	})
	if case1 == nil || case2 == nil {
		t.Fatal("case blocks not found")
	}
	found := false
	for _, s := range case1.Succs {
		if s == case2 {
			found = true
		}
	}
	if !found {
		t.Errorf("fallthrough edge case1->case2 missing (succs %v)", case1.Succs)
	}
	if !reachable(cfg)[cfg.Exit] {
		t.Error("exit not reachable")
	}
}

// objNamed finds the object a function body declares under name.
func objNamed(info *types.Info, name string) types.Object {
	for id, obj := range info.Defs {
		if obj != nil && id.Name == name {
			return obj
		}
	}
	return nil
}

// useOf returns the position of the n-th use of name.
func useOf(t *testing.T, info *types.Info, obj types.Object, n int) token.Pos {
	t.Helper()
	var poss []token.Pos
	for id, o := range info.Uses {
		if o == obj {
			poss = append(poss, id.Pos())
		}
	}
	if len(poss) <= n {
		t.Fatalf("%s has %d uses, want index %d", obj.Name(), len(poss), n)
	}
	// Uses come from map order; sort by position.
	for i := range poss {
		for j := i + 1; j < len(poss); j++ {
			if poss[j] < poss[i] {
				poss[i], poss[j] = poss[j], poss[i]
			}
		}
	}
	return poss[n]
}

func TestReachingStraightLine(t *testing.T) {
	_, info, fd := checkSrc(t, `package t
func f() int {
	x := 1
	y := x + 2
	return y
}`, "f")
	r := buildReaching(info, fd, BuildCFG(fd.Body))
	x := objNamed(info, "x")
	d := r.uniqueDef(x, useOf(t, info, x, 0))
	if d == nil {
		t.Fatal("x has no unique def at its use")
	}
	rhs, _ := defRHS(info, d)
	if types.ExprString(rhs) != "1" {
		t.Errorf("unique def RHS = %s, want 1", types.ExprString(rhs))
	}
}

func TestReachingLoopRedefinition(t *testing.T) {
	_, info, fd := checkSrc(t, `package t
func f(n int) int {
	x := 1
	for i := 0; i < n; i++ {
		x = x + 1
	}
	return x
}`, "f")
	r := buildReaching(info, fd, BuildCFG(fd.Body))
	x := objNamed(info, "x")
	// At the return, both the initial def and the loop redefinition
	// reach: no unique def.
	if d := r.uniqueDef(x, useOf(t, info, x, 2)); d != nil {
		t.Errorf("x at return has unique def %v; loop redefinition must also reach", d)
	}
}

func TestReachingEarlyReturnKillsPath(t *testing.T) {
	_, info, fd := checkSrc(t, `package t
func f(c bool) int {
	x := 1
	if c {
		x = 2
		return x
	}
	return x
}`, "f")
	r := buildReaching(info, fd, BuildCFG(fd.Body))
	x := objNamed(info, "x")
	// The final return is only reached when the branch was not taken:
	// x = 2 returned early, so x := 1 is the unique def there. (Use 0
	// is the x = 2 target, use 1 the early return, use 2 the final.)
	d := r.uniqueDef(x, useOf(t, info, x, 2))
	if d == nil {
		t.Fatal("x at final return has no unique def; x = 2 path should have exited")
	}
	rhs, _ := defRHS(info, d)
	if types.ExprString(rhs) != "1" {
		t.Errorf("unique def RHS = %s, want 1", types.ExprString(rhs))
	}
}

func TestReachingSwitchArms(t *testing.T) {
	_, info, fd := checkSrc(t, `package t
func f(c int) int {
	x := 1
	switch c {
	case 1:
		x = 2
	case 2:
		x = 3
	}
	return x
}`, "f")
	r := buildReaching(info, fd, BuildCFG(fd.Body))
	x := objNamed(info, "x")
	if d := r.uniqueDef(x, useOf(t, info, x, 2)); d != nil {
		t.Errorf("x after switch has unique def %v; three defs reach the return", d)
	}
}
