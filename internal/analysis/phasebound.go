package analysis

import (
	"go/ast"
	"go/types"
)

// PhaseBoundAnalyzer flags shared-variable accessors (Read/Write/Add and
// the block forms) reached outside any GlobalPhase/NodePhase body. The
// runtime panics on such accesses (VP.accessCheck); this reports them
// before the program runs. A package-local call-graph fixpoint keeps
// helper functions that are only ever called from phase bodies quiet.
var PhaseBoundAnalyzer = &Analyzer{
	Name: "phasebound",
	Doc: "report shared-array Read/Write/Add (and block variants) outside any " +
		"GlobalPhase/NodePhase body; the runtime aborts on them at execution time",
	Run: runPhaseBound,
}

func runPhaseBound(pass *Pass) error {
	ctx := pass.Index().ctx
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sc, ok := asSharedCall(pass.TypesInfo, call)
			if !ok {
				return
			}
			if !ctx.siteOutsidePhase(stack) {
				return
			}
			pass.Reportf(call.Pos(),
				"%s.%s of shared array outside any GlobalPhase/NodePhase body: shared variables may only be accessed inside phases (the runtime panics here)",
				types.ExprString(sc.recv), sc.method)
		})
	}
	return nil
}
