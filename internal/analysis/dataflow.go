package analysis

// Reaching definitions over the CFG of cfg.go. Each definition is one
// (variable, site) pair: an assignment, a declaration, an inc/dec, a
// range-loop head, or the function's own parameter list. The classic
// gen/kill bitset worklist computes, for every basic block, which
// definitions can reach its entry; position queries then recover which
// definitions of a variable reach a given use, which is what the affine
// resolver needs ("the unique def of `vlo` reaching this Write call is
// the ChunkRange multi-assign on line N").

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A def is one definition site of one object.
type def struct {
	obj types.Object
	// site is the defining node: *ast.AssignStmt, *ast.ValueSpec,
	// *ast.IncDecStmt, *ast.RangeStmt, or nil for the entry definition
	// of a parameter/receiver/free variable.
	site ast.Node
	// addressed marks conservative defs: the object's address was taken
	// or a nested function literal assigns it, so the value at this
	// point is unknown.
	addressed bool
}

// reaching holds the fixpoint solution for one function body.
type reaching struct {
	info *types.Info
	cfg  *CFG
	defs []def
	// byObj indexes the def list per object (for kill sets).
	byObj map[types.Object][]int
	// in[b] is the bitset of defs reaching block b's entry.
	in []bitset
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) orInto(src bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | src[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// buildReaching runs reaching definitions over one function. fn is the
// *ast.FuncDecl or *ast.FuncLit whose body produced cfg; its parameters
// (and receiver) get entry definitions, as does every outer-scope object
// the body references (free variables are defined "elsewhere").
func buildReaching(info *types.Info, fn ast.Node, cfg *CFG) *reaching {
	r := &reaching{info: info, cfg: cfg, byObj: map[types.Object][]int{}}

	addDef := func(obj types.Object, site ast.Node, addressed bool) {
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); !ok || v.IsField() {
			return
		}
		r.byObj[obj] = append(r.byObj[obj], len(r.defs))
		r.defs = append(r.defs, def{obj: obj, site: site, addressed: addressed})
	}

	var body *ast.BlockStmt
	var ftype *ast.FuncType
	var recv *ast.FieldList
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body, ftype, recv = f.Body, f.Type, f.Recv
	case *ast.FuncLit:
		body, ftype = f.Body, f.Type
	}

	// Entry definitions: receiver, parameters, named results.
	entryDefs := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				addDef(info.Defs[name], nil, false)
			}
		}
	}
	entryDefs(recv)
	if ftype != nil {
		entryDefs(ftype.Params)
		entryDefs(ftype.Results)
	}

	// Free variables referenced but not declared inside fn also get an
	// entry def, so queries on them resolve to "defined elsewhere".
	declared := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	seenFree := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := info.Uses[id]
			if v, isVar := obj.(*types.Var); isVar && !v.IsField() && !declared[obj] && !seenFree[obj] && len(r.byObj[obj]) == 0 {
				seenFree[obj] = true
				addDef(obj, nil, false)
			}
		}
		return true
	})

	// Definition sites inside the body. Nested function literals are
	// scanned only for assignments to objects of THIS function (closure
	// mutation = conservative def at the literal's position); their own
	// locals belong to their own reaching pass.
	lhsObjs := func(e ast.Expr) types.Object {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				return obj
			}
			return info.Uses[id]
		}
		return nil
	}
	scanNode := func(n ast.Node, conservative bool) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				addDef(lhsObjs(lhs), st, conservative)
			}
		case *ast.IncDecStmt:
			addDef(lhsObjs(st.X), st, true) // value = old+1: treat as opaque
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							addDef(info.Defs[name], vs, conservative)
						}
					}
				}
			}
		case *ast.RangeStmt:
			addDef(lhsObjs(st.Key), st, false)
			addDef(lhsObjs(st.Value), st, false)
		}
	}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			scanNode(n, false)
			// Address-of and closure mutations: conservative defs.
			ast.Inspect(n, func(sub ast.Node) bool {
				switch x := sub.(type) {
				case *ast.UnaryExpr:
					if x.Op == token.AND {
						if obj := recvRoot(info, x.X); obj != nil {
							addDef(obj, n, true)
						}
					}
				case *ast.FuncLit:
					ast.Inspect(x.Body, func(inner ast.Node) bool {
						switch ist := inner.(type) {
						case *ast.AssignStmt:
							for _, lhs := range ist.Lhs {
								if obj := lhsObjs(lhs); obj != nil && !declaredIn(info, obj, x) {
									addDef(obj, n, true)
								}
							}
						case *ast.IncDecStmt:
							if obj := lhsObjs(ist.X); obj != nil && !declaredIn(info, obj, x) {
								addDef(obj, n, true)
							}
						}
						return true
					})
					return false
				}
				return true
			})
		}
	}

	r.solve()
	return r
}

// declaredIn reports whether obj's declaration position lies inside lit.
func declaredIn(info *types.Info, obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
}

// solve runs the gen/kill worklist.
func (r *reaching) solve() {
	n := len(r.defs)
	nb := len(r.cfg.Blocks)
	gen := make([]bitset, nb)
	kill := make([]bitset, nb)
	out := make([]bitset, nb)
	r.in = make([]bitset, nb)
	for i := range r.cfg.Blocks {
		gen[i] = newBitset(n)
		kill[i] = newBitset(n)
		out[i] = newBitset(n)
		r.in[i] = newBitset(n)
	}

	// Per-block gen/kill: later defs of the same object kill earlier
	// in-block ones; every def of obj kills all other defs of obj.
	for bi, blk := range r.cfg.Blocks {
		for _, node := range blk.Nodes {
			for di, d := range r.defs {
				if d.site == node {
					for _, other := range r.byObj[d.obj] {
						gen[bi].clear(other)
						kill[bi].set(other)
					}
					gen[bi].set(di)
					kill[bi].clear(di)
				}
			}
		}
	}

	// Entry block additionally generates the entry (site==nil) defs.
	for di, d := range r.defs {
		if d.site == nil && !kill[0].has(di) {
			gen[0].set(di)
		}
	}

	changed := true
	for changed {
		changed = false
		for bi, blk := range r.cfg.Blocks {
			if bi != 0 {
				for i := range r.in[bi] {
					r.in[bi][i] = 0
				}
				for _, p := range blk.Preds {
					r.in[bi].orInto(out[p.Index])
				}
			}
			newOut := r.in[bi].clone()
			for i := range newOut {
				newOut[i] = (newOut[i] &^ kill[bi][i]) | gen[bi][i]
			}
			for i := range newOut {
				if newOut[i] != out[bi][i] {
					out[bi] = newOut
					changed = true
					break
				}
			}
		}
	}
}

// nodeFor finds the block and in-block index of the smallest CFG node
// whose span contains pos. Returns (-1, -1) when pos is not inside any
// recorded node (e.g. inside a nested function literal's body).
func (r *reaching) nodeFor(pos token.Pos) (blockIdx, nodeIdx int) {
	blockIdx, nodeIdx = -1, -1
	var bestSpan token.Pos = 1 << 60
	for bi, blk := range r.cfg.Blocks {
		for ni, n := range blk.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				span := n.End() - n.Pos()
				if span < bestSpan {
					bestSpan = span
					blockIdx, nodeIdx = bi, ni
				}
			}
		}
	}
	return blockIdx, nodeIdx
}

// defsAt returns the definitions of obj that can reach the use at pos.
// A def takes effect after its statement, so the defs in force at pos
// are the block-entry set updated by the in-block nodes strictly before
// the node containing pos.
func (r *reaching) defsAt(obj types.Object, pos token.Pos) []def {
	bi, ni := r.nodeFor(pos)
	if bi < 0 {
		return r.entryDefs(obj)
	}
	live := r.in[bi].clone()
	blk := r.cfg.Blocks[bi]
	if bi == 0 {
		// Entry defs were folded into gen[0] by solve; re-apply them
		// here since in[0] is empty.
		for di, d := range r.defs {
			if d.site == nil {
				live.set(di)
			}
		}
	}
	for i := 0; i < ni; i++ {
		node := blk.Nodes[i]
		for di, d := range r.defs {
			if d.site == node {
				for _, other := range r.byObj[d.obj] {
					live.clear(other)
				}
				live.set(di)
			}
		}
	}
	var out []def
	for _, di := range r.byObj[obj] {
		if live.has(di) {
			out = append(out, r.defs[di])
		}
	}
	return out
}

// entryDefs returns obj's site==nil defs (parameter / free variable).
func (r *reaching) entryDefs(obj types.Object) []def {
	var out []def
	for _, di := range r.byObj[obj] {
		if r.defs[di].site == nil {
			out = append(out, r.defs[di])
		}
	}
	return out
}

// uniqueDef returns the single non-conservative definition of obj
// reaching pos, or nil when there are zero, several, or only
// conservative ones. This is the workhorse of affine resolution: an
// index variable with one reaching def can be rewritten as its RHS.
func (r *reaching) uniqueDef(obj types.Object, pos token.Pos) *def {
	ds := r.defsAt(obj, pos)
	if len(ds) != 1 || ds[0].addressed {
		return nil
	}
	return &ds[0]
}

// defRHS extracts the expression assigned to obj by d, for defs that
// bind obj directly to one expression: `x := e`, `x = e`, `var x = e`,
// and the i-th position of a balanced multi-assign. Multi-value calls
// (x, y := f()) return (nil, idx) with idx = obj's position on the LHS,
// letting callers special-case known functions like ChunkRange.
func defRHS(info *types.Info, d *def) (rhs ast.Expr, lhsIdx int) {
	lhsIdx = -1
	switch site := d.site.(type) {
	case *ast.AssignStmt:
		for i, lhs := range site.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == d.obj {
				lhsIdx = i
				break
			}
		}
		if lhsIdx < 0 {
			return nil, -1
		}
		if len(site.Rhs) == len(site.Lhs) {
			if site.Tok == token.ASSIGN || site.Tok == token.DEFINE {
				return site.Rhs[lhsIdx], lhsIdx
			}
			return nil, lhsIdx // op-assign: value is old op rhs
		}
		return nil, lhsIdx // multi-value call
	case *ast.ValueSpec:
		for i, name := range site.Names {
			if info.Defs[name] == d.obj {
				lhsIdx = i
				break
			}
		}
		if lhsIdx >= 0 && len(site.Values) == len(site.Names) {
			return site.Values[lhsIdx], lhsIdx
		}
		return nil, lhsIdx
	}
	return nil, -1
}
