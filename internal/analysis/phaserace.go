package analysis

// phaserace: the static race detector the phase semantics make possible.
// Under the model, reads observe the begin-of-phase state and writes
// commit at the end-of-phase barrier, so the only data race is two VP
// instances writing (or one writing and one Add-ing) the same element of
// the same shared array within one phase. That is a property of the
// index expressions alone, which this rule resolves to affine forms
// (affine.go) through helper calls (callgraph.go) and compares pairwise:
//
//   - provably disjoint write sets: silent;
//   - provably intersecting: a definite "phaserace" diagnostic;
//   - non-affine or undecidable: a "phaserace.possible" diagnostic
//     (separately suppressible).
//
// Disjointness arguments used, for VP ranks r1 != r2:
//
//   same node: ChunkRange(n, k, rank) intervals partition [0, n), so two
//   ops whose interval is rest + [chunkLo, chunkHi) over the same (n, k)
//   site are disjoint when the rests agree; a constant rest offset (halo
//   writes) makes adjacent chunks collide. Point indices rest + a*rank
//   are disjoint exactly when a != 0 (ranks are distinct).
//
//   across nodes (Global arrays): intervals anchored in an owner range —
//   rest + ownerLo + [chunkLo, chunkHi) with the site's n equal to
//   ownerHi - ownerLo and rest uniform — stay inside their node's owner
//   partition, which is disjoint across nodes. GlobalRank-indexed points
//   are disjoint everywhere; NodeRank-indexed points collide across
//   nodes (equal ranks exist on every node).
//
// Add-vs-Add pairs never conflict (combining semantics); Write-vs-Write
// and Write-vs-Add do.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// PhaseRaceAnalyzer reports phase write-set overlaps between VPs.
var PhaseRaceAnalyzer = &Analyzer{
	Name: "phaserace",
	Doc: "report phase writes where two VP instances can touch the same element: " +
		"write/write and write/add overlaps are races the end-of-phase commit cannot order; " +
		"undecidable index expressions are reported under phaserace.possible",
	Run: runPhaseRace,
}

type verdict int

const (
	vDisjoint verdict = iota
	vOverlap
	vUnknown
)

type wform int

const (
	formPoint wform = iota
	formInterval
	formChunkElems
	formUnknown
)

// dimForm is the resolved write set of one op in one dimension.
type dimForm struct {
	form   wform
	idx    affine // formPoint
	lo, hi affine // formInterval: [lo, hi)
	// formChunkElems: values of slice elems[lo:hi] with elems strictly
	// increasing and [lo, hi) a chunk window.
	elems   types.Object
	chunkID int
}

// writeOp is one write-family accessor reached from the phase body.
type writeOp struct {
	arr    types.Object
	typ    string // Global, Node, Global2D
	add    bool
	dims   []dimForm
	pos    token.Pos // position to report (outermost call site)
	why    string    // non-affine reason for possible diagnostics
	helper bool      // reached through helper expansion
}

func runPhaseRace(pass *Pass) error {
	px := pass.Index()
	rv := newResolver(px)

	for lit, isPhase := range px.ctx.phaseLits {
		if !isPhase {
			continue
		}
		u := px.unitFor(lit)
		if u == nil {
			continue
		}
		ops := collectWrites(px, rv, u)
		checkPhaseRaces(pass, rv, u, ops)
	}
	return nil
}

// collectWrites expands the phase body and resolves each write op.
func collectWrites(px *PkgIndex, rv *resolver, phase *unit) []writeOp {
	var ops []writeOp
	root := &frame{unit: phase}
	px.walkOps(root, map[*unit]bool{}, func(op opSite) {
		if !op.sc.write {
			return
		}
		env := envOf(op.fr, op.loops)
		w := writeOp{
			typ:    op.sc.typ,
			add:    op.sc.add,
			pos:    op.fr.reportPos(op.sc.call.Pos()),
			helper: op.depth > 0,
		}
		w.arr = rv.arrayObj(op.sc.recv, env)
		if w.arr == nil {
			w.why = "cannot identify the target array"
			w.dims = []dimForm{{form: formUnknown}}
			ops = append(ops, w)
			return
		}
		if op.sc.block {
			w.dims = []dimForm{resolveBlockForm(px, rv, op, env)}
		} else {
			w.dims = make([]dimForm, len(op.sc.indices))
			for i, idx := range op.sc.indices {
				w.dims[i] = resolveIndexForm(px, rv, idx, op, env)
			}
		}
		for _, d := range w.dims {
			if d.form == formUnknown && w.why == "" {
				w.why = "index expression is not affine in VP rank and loop variables"
			}
		}
		ops = append(ops, w)
	})
	return ops
}

// resolveIndexForm turns one scalar index expression into a dim form:
// a point, or — when the affine mentions a single validated stride-1
// loop with coefficient 1 — the loop-swept interval, or a chunk-window
// range-over-elements form.
func resolveIndexForm(px *PkgIndex, rv *resolver, idx ast.Expr, op opSite, env resolveEnv) dimForm {
	a := rv.exprAffine(idx, env)
	if a.ok {
		var loopSyms []sym
		for s := range a.t {
			if s.kind == kLoop {
				loopSyms = append(loopSyms, s)
			}
		}
		switch len(loopSyms) {
		case 0:
			return dimForm{form: formPoint, idx: a}
		case 1:
			s := loopSyms[0]
			if a.t[s] != 1 {
				return dimForm{form: formUnknown}
			}
			lk := s.key.(loopKey)
			var lr loopRec
			var prefix []loopRec
			for i, cand := range op.loops {
				if cand.stmt == lk.stmt && cand.fr == lk.fr {
					lr = cand
					prefix = op.loops[:i]
					break
				}
			}
			if lr.stmt == nil {
				return dimForm{form: formUnknown}
			}
			b := rv.bounds(lr, prefix)
			if !b.ok {
				return dimForm{form: formUnknown}
			}
			rest := a.clone()
			delete(rest.t, s)
			return dimForm{form: formInterval, lo: rest.add(b.lo), hi: rest.add(b.hi)}
		default:
			return dimForm{form: formUnknown}
		}
	}
	// Not affine: the range-over-chunk-window idiom
	// (for _, s := range elems[vlo:vhi] { A.Write(vp, s, ...) }).
	if id, ok := idx.(*ast.Ident); ok {
		obj := px.info.Uses[id]
		if lr, ok := rangeValueOwner(px.info, op.loops, obj); ok {
			if d := chunkElemsForm(px, rv, lr, op, env); d.form == formChunkElems {
				return d
			}
		}
	}
	return dimForm{form: formUnknown}
}

// chunkElemsForm recognizes ranging over elems[vlo:vhi] where vlo/vhi
// are one chunk site's bounds and elems is a strictly-increasing int
// slice (appended at most once per iteration from an enclosing range
// key), making the element sets of distinct chunks disjoint.
func chunkElemsForm(px *PkgIndex, rv *resolver, lr loopRec, op opSite, env resolveEnv) dimForm {
	st := lr.stmt.(*ast.RangeStmt)
	sl, ok := st.X.(*ast.SliceExpr)
	if !ok || sl.Low == nil || sl.High == nil || sl.Slice3 {
		return dimForm{form: formUnknown}
	}
	base, ok := sl.X.(*ast.Ident)
	if !ok {
		return dimForm{form: formUnknown}
	}
	obj := px.info.Uses[base]
	if obj == nil || !injectiveIntSlice(px, obj) {
		return dimForm{form: formUnknown}
	}
	lenv := resolveEnv{fr: lr.fr, u: lr.fr.unit, loops: op.loops}
	loAff := rv.exprAffine(sl.Low, lenv)
	hiAff := rv.exprAffine(sl.High, lenv)
	cid, ok := singleChunkPair(loAff, hiAff)
	if !ok {
		return dimForm{form: formUnknown}
	}
	return dimForm{form: formChunkElems, elems: obj, chunkID: cid, lo: loAff, hi: hiAff}
}

// singleChunkPair checks lo == chunkLo(s) and hi == chunkHi(s) for one
// shared chunk site s (no other terms), returning the site.
func singleChunkPair(lo, hi affine) (int, bool) {
	if !lo.ok || !hi.ok || lo.c != 0 || hi.c != 0 || len(lo.t) != 1 || len(hi.t) != 1 {
		return 0, false
	}
	var loID, hiID int = -1, -2
	for s, c := range lo.t {
		if s.kind == kChunkLo && c == 1 {
			loID = s.key.(int)
		}
	}
	for s, c := range hi.t {
		if s.kind == kChunkHi && c == 1 {
			hiID = s.key.(int)
		}
	}
	if loID >= 0 && loID == hiID {
		return loID, true
	}
	return 0, false
}

// injectiveIntSlice reports whether every assignment to obj is either an
// empty declaration or the single statement `obj = append(obj, k)` with
// k the key variable of the enclosing range loop — making obj's values
// strictly increasing, hence injective.
func injectiveIntSlice(px *PkgIndex, obj types.Object) bool {
	du := px.declaringUnit(obj.Pos())
	if du == nil {
		return false
	}
	appends := 0
	okSoFar := true
	ast.Inspect(du.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !okSoFar {
			return okSoFar
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			o := px.info.Defs[id]
			if o == nil {
				o = px.info.Uses[id]
			}
			if o != obj {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			call, isCall := rhs.(*ast.CallExpr)
			if !isCall {
				okSoFar = false
				return false
			}
			fid, isIdent := call.Fun.(*ast.Ident)
			if !isIdent || fid.Name != "append" || len(call.Args) != 2 {
				okSoFar = false
				return false
			}
			if aid, ok := call.Args[0].(*ast.Ident); !ok || px.info.Uses[aid] != obj {
				okSoFar = false
				return false
			}
			// Appended value must be the key of an enclosing range.
			vid, ok := call.Args[1].(*ast.Ident)
			if !ok {
				okSoFar = false
				return false
			}
			vobj := px.info.Uses[vid]
			if vobj == nil || !isEnclosingRangeKey(px, du, as, vobj) {
				okSoFar = false
				return false
			}
			appends++
		}
		return true
	})
	return okSoFar && appends == 1
}

// isEnclosingRangeKey reports whether obj is the key variable of a
// range statement lexically enclosing site within u.
func isEnclosingRangeKey(px *PkgIndex, u *unit, site ast.Node, obj types.Object) bool {
	found := false
	inspectStack(u.body, func(n ast.Node, stack []ast.Node) {
		if n != site || found {
			return
		}
		for _, anc := range stack {
			if rs, ok := anc.(*ast.RangeStmt); ok && rs.Tok == token.DEFINE {
				if id, ok := rs.Key.(*ast.Ident); ok && px.info.Defs[id] == obj {
					found = true
				}
			}
		}
	})
	return found
}

// resolveBlockForm turns a WriteBlock/AddBlock into an interval
// [lo, lo+len(src)), resolving the source slice's length through
// slicing expressions and make-sized definitions.
func resolveBlockForm(px *PkgIndex, rv *resolver, op opSite, env resolveEnv) dimForm {
	lo := rv.exprAffine(op.sc.indices[0], env)
	if !lo.ok {
		return dimForm{form: formUnknown}
	}
	src := op.sc.call.Args[2]
	n := sliceLenAffine(px, rv, src, env, 0)
	if !n.ok {
		return dimForm{form: formUnknown}
	}
	return dimForm{form: formInterval, lo: lo, hi: lo.add(n)}
}

// sliceLenAffine resolves the length of a slice expression: x[a:b] has
// length b-a, make([]T, n) has length n, and an identifier follows its
// unique definition.
func sliceLenAffine(px *PkgIndex, rv *resolver, e ast.Expr, env resolveEnv, depth int) affine {
	if depth > maxResolveDepth {
		return aBad()
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return sliceLenAffine(px, rv, x.X, env, depth+1)
	case *ast.SliceExpr:
		if x.Slice3 {
			return aBad()
		}
		lo := aConst(0)
		if x.Low != nil {
			lo = rv.exprAffine(x.Low, env)
		}
		if x.High == nil {
			return aBad()
		}
		hi := rv.exprAffine(x.High, env)
		return hi.sub(lo)
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) >= 2 {
			return rv.exprAffine(x.Args[1], env)
		}
	case *ast.Ident:
		obj := px.info.Uses[x]
		if obj == nil {
			return aBad()
		}
		if env.fr != nil {
			if arg, ok := env.fr.args[obj]; ok && env.fr.parent != nil {
				penv := resolveEnv{fr: env.fr.parent, u: env.fr.parent.unit, loops: env.fr.loops}
				return sliceLenAffine(px, rv, arg, penv, depth+1)
			}
		}
		r := px.reachOf(env.u)
		d := r.uniqueDef(obj, x.Pos())
		if d == nil || d.site == nil {
			return aBad()
		}
		if rhs, _ := defRHS(px.info, d); rhs != nil {
			denv := env
			denv.loops = nil
			for _, lr := range env.loops {
				if lr.stmt.Pos() <= d.site.Pos() && d.site.Pos() < lr.stmt.End() {
					denv.loops = append(denv.loops, lr)
				}
			}
			return sliceLenAffine(px, rv, rhs, denv, depth+1)
		}
	}
	return aBad()
}

// checkPhaseRaces compares all write pairs per array and reports.
func checkPhaseRaces(pass *Pass, rv *resolver, phase *unit, ops []writeOp) {
	singleVP := phaseSingleVP(pass, rv.px, phase)
	byArr := map[types.Object][]int{}
	var order []types.Object
	for i, op := range ops {
		if op.arr == nil {
			// Unidentifiable target: report possible directly.
			pass.reportTagged(op.pos, "phaserace.possible",
				"cannot prove VP write sets disjoint: %s", op.why)
			continue
		}
		if _, seen := byArr[op.arr]; !seen {
			order = append(order, op.arr)
		}
		byArr[op.arr] = append(byArr[op.arr], i)
	}
	for _, arr := range order {
		idxs := byArr[arr]
		allAdd := true
		for _, i := range idxs {
			if !ops[i].add {
				allAdd = false
			}
		}
		if allAdd {
			continue // Add is combining: add/add pairs never conflict
		}
		reported := map[[2]int]bool{}
		for a := 0; a < len(idxs); a++ {
			for b := a; b < len(idxs); b++ {
				i, j := idxs[a], idxs[b]
				if ops[i].add && ops[j].add {
					continue
				}
				key := [2]int{i, j}
				if reported[key] {
					continue
				}
				v := vDisjoint
				if !singleVP {
					v = pairVerdict(rv, &ops[i], &ops[j], true)
				}
				// Node arrays have per-node instances; everything else
				// (Global, Global2D) is shared across nodes and must also
				// be disjoint for cross-node instance pairs.
				if v == vDisjoint && ops[i].typ != "Node" && ops[j].typ != "Node" {
					v = pairVerdict(rv, &ops[i], &ops[j], false)
				}
				switch v {
				case vOverlap:
					reported[key] = true
					pass.reportTagged(ops[i].pos, "phaserace",
						"VP instances of this phase write overlapping elements of %s%s: "+
							"the end-of-phase commit cannot order them — make the index sets disjoint or use Add",
						arr.Name(), otherSite(pass, ops[i], ops[j]))
				case vUnknown:
					reported[key] = true
					pass.reportTagged(ops[i].pos, "phaserace.possible",
						"cannot prove VP write sets of %s disjoint%s: %s",
						arr.Name(), otherSite(pass, ops[i], ops[j]), whyOf(ops[i], ops[j]))
				}
			}
		}
	}
}

func whyOf(a, b writeOp) string {
	if a.why != "" {
		return a.why
	}
	if b.why != "" {
		return b.why
	}
	return "index forms are affine but their difference is not decidable"
}

func otherSite(pass *Pass, a, b writeOp) string {
	if a.pos == b.pos {
		return ""
	}
	return fmt.Sprintf(" (with the write at line %d)", pass.Fset.Position(b.pos).Line)
}

// phaseSingleVP reports whether every Do site that can start this
// phase's VP body uses a constant K of 1 — then no same-node pair
// exists.
func phaseSingleVP(pass *Pass, px *PkgIndex, phase *unit) bool {
	root := px.vpRoot(phase)
	if root == nil {
		return false
	}
	ks := px.doK[root.node]
	if len(ks) == 0 {
		return false
	}
	for _, k := range ks {
		tv, ok := px.info.Types[k]
		if !ok || tv.Value == nil {
			return false
		}
		v, exact := constant.Int64Val(constant.ToInt(tv.Value))
		if !exact || v != 1 {
			return false
		}
	}
	return true
}

// pairVerdict decides the relation of two ops' write sets for a pair of
// distinct VP instances, on the same node or across nodes.
func pairVerdict(rv *resolver, a, b *writeOp, sameNode bool) verdict {
	if len(a.dims) != len(b.dims) {
		return vUnknown
	}
	// Multi-dimensional: disjoint if any dimension is provably
	// disjoint; overlap only if every dimension provably overlaps.
	res := vOverlap
	for d := range a.dims {
		switch dimVerdict(rv, a.dims[d], b.dims[d], sameNode) {
		case vDisjoint:
			return vDisjoint
		case vUnknown:
			res = vUnknown
		}
	}
	return res
}

func dimVerdict(rv *resolver, a, b dimForm, sameNode bool) verdict {
	switch {
	case a.form == formUnknown || b.form == formUnknown:
		return vUnknown
	case a.form == formPoint && b.form == formPoint:
		return pointPair(a.idx, b.idx, sameNode)
	case a.form == formInterval && b.form == formInterval:
		return intervalPair(rv, a, b, sameNode)
	case a.form == formChunkElems && b.form == formChunkElems:
		if sameNode && a.elems == b.elems && a.chunkID == b.chunkID {
			return vDisjoint
		}
		return vUnknown
	default:
		return vUnknown
	}
}

// pairDiff reduces b - a for a pair of distinct VP instances: symbols
// with equal values for the pair cancel; structured per-VP and per-node
// symbols accumulate into coefficient buckets. decidable is false when
// a symbol with unknown pair behavior (chunk bounds, node variables
// across nodes, loop leftovers) survives.
type pairDiff struct {
	decidable bool
	d         int64 // constant part
	rank      int64 // coefficient of (rank(b) - rank(a)); same-node: δ != 0
	grank     int64 // coefficient of (grank(b) - grank(a))
	nodeID    int64 // cross-node: coefficient of (node(b) - node(a)) != 0
	owner     int64 // cross-node: coefficient of (ownerLo/Hi delta) != 0
}

func diffOf(x, y affine, sameNode bool) pairDiff {
	pd := pairDiff{decidable: x.ok && y.ok}
	if !pd.decidable {
		return pd
	}
	pd.d = y.c - x.c
	union := map[sym]bool{}
	for s := range x.t {
		union[s] = true
	}
	for s := range y.t {
		union[s] = true
	}
	ownerSeen := map[any]int64{}
	for s := range union {
		cx, cy := x.t[s], y.t[s]
		switch s.kind {
		case kUniform:
			if cx != cy {
				pd.decidable = false
			}
		case kNodeVar:
			if cx != cy || (!sameNode && cx != 0) {
				pd.decidable = false
			}
		case kNodeID:
			if cx != cy {
				pd.decidable = false
			} else if !sameNode {
				pd.nodeID += cx
			}
		case kNodeRank:
			if cx != cy {
				pd.decidable = false
			} else {
				pd.rank += cx
			}
		case kGlobalRank:
			if cx != cy {
				pd.decidable = false
			} else {
				pd.grank += cx
			}
		case kOwnerLo, kOwnerHi:
			if cx != cy {
				pd.decidable = false
			} else if !sameNode {
				ownerSeen[s.key] += cx
			}
		case kChunkLo, kChunkHi, kLoop:
			if cx != 0 || cy != 0 {
				pd.decidable = false
			}
		}
	}
	for _, c := range ownerSeen {
		pd.owner += c
	}
	return pd
}

// pointPair decides two point indices.
func pointPair(x, y affine, sameNode bool) verdict {
	pd := diffOf(x, y, sameNode)
	if !pd.decidable {
		return vUnknown
	}
	if sameNode {
		// Same node: grank delta equals rank delta (ranks are dense and
		// node-contiguous), both are the same nonzero δ.
		coef := pd.rank + pd.grank
		switch {
		case coef == 0 && pd.d == 0:
			return vOverlap // same index for every pair
		case coef == 0:
			return vDisjoint
		case pd.d == 0:
			return vDisjoint // coef*δ != 0 for δ != 0
		case pd.d%coef == 0:
			return vOverlap // δ = -d/coef collides (halo idiom)
		default:
			return vDisjoint
		}
	}
	// Cross-node: grank deltas are never zero; nodeID and owner deltas
	// are nonzero; rank deltas can be anything (equal ranks exist).
	switch {
	case pd.rank == 0 && pd.grank != 0 && pd.nodeID == 0 && pd.owner == 0 && pd.d == 0:
		return vDisjoint // globalRank-indexed: distinct everywhere
	case pd.rank == 0 && pd.grank == 0 && (pd.nodeID != 0 || pd.owner != 0) && pd.d == 0 && !(pd.nodeID != 0 && pd.owner != 0):
		return vDisjoint // anchored to a distinct per-node quantity
	case pd.grank == 0 && pd.nodeID == 0 && pd.owner == 0:
		// d + rank*δn with δn free over all integers (including 0).
		if pd.rank == 0 {
			if pd.d == 0 {
				return vOverlap
			}
			return vDisjoint
		}
		if pd.d%pd.rank == 0 {
			return vOverlap // equal or offset ranks collide across nodes
		}
		return vDisjoint
	default:
		return vUnknown
	}
}

// chunkStruct decomposes an interval as rest + [chunkLo(s), chunkHi(s))
// with a single shared chunk site, returning (rest, site, true).
func chunkStruct(d dimForm) (affine, int, bool) {
	if d.form != formInterval || !d.lo.ok || !d.hi.ok {
		return affine{}, 0, false
	}
	var loSite, hiSite = -1, -2
	restLo := d.lo.clone()
	restHi := d.hi.clone()
	for s, c := range d.lo.t {
		if s.kind == kChunkLo {
			if c != 1 || loSite != -1 {
				return affine{}, 0, false
			}
			loSite = s.key.(int)
			delete(restLo.t, s)
		} else if s.kind == kChunkHi {
			return affine{}, 0, false
		}
	}
	for s, c := range d.hi.t {
		if s.kind == kChunkHi {
			if c != 1 || hiSite != -2 {
				return affine{}, 0, false
			}
			hiSite = s.key.(int)
			delete(restHi.t, s)
		} else if s.kind == kChunkLo {
			return affine{}, 0, false
		}
	}
	if loSite < 0 || loSite != hiSite || !restLo.equal(restHi) {
		return affine{}, 0, false
	}
	return restLo, loSite, true
}

// ownerAnchored reports whether rest places a chunk interval inside its
// node's owner partition: rest = uniform + 1*ownerLo(A) and the chunk
// site's n equals ownerHi(A) - ownerLo(A).
func ownerAnchored(rv *resolver, rest affine, cid int) (anchor any, ok bool) {
	var arrKey any
	for s, c := range rest.t {
		switch s.kind {
		case kOwnerLo:
			if c != 1 || arrKey != nil {
				return nil, false
			}
			arrKey = s.key
		case kUniform:
			// fine: same value everywhere
		default:
			return nil, false
		}
	}
	if arrKey == nil {
		return nil, false
	}
	n := rv.chunkN[cid]
	want := aSym(sym{kOwnerHi, arrKey}).sub(aSym(sym{kOwnerLo, arrKey}))
	if !n.equal(want) {
		return nil, false
	}
	return arrKey, true
}

// uniformOnly reports whether every symbol of a is kUniform.
func uniformOnly(a affine) bool {
	if !a.ok {
		return false
	}
	for s := range a.t {
		if s.kind != kUniform {
			return false
		}
	}
	return true
}

// intervalPair decides two interval forms.
func intervalPair(rv *resolver, a, b dimForm, sameNode bool) verdict {
	restA, siteA, structA := chunkStruct(a)
	restB, siteB, structB := chunkStruct(b)

	if sameNode {
		if structA && structB && siteA == siteB {
			// Same partition: disjoint when the rests agree; a constant
			// offset slides one window over the adjacent chunk.
			pd := diffOf(restA, restB, true)
			if pd.decidable && pd.rank == 0 && pd.grank == 0 {
				if pd.d == 0 {
					return vDisjoint
				}
				return vOverlap // halo: adjacent chunks collide
			}
			return vUnknown
		}
		if structA != structB {
			return vUnknown
		}
		if structA && siteA != siteB {
			return vUnknown
		}
		// Unstructured: translated copies of one window.
		pdLo := diffOf(a.lo, b.lo, true)
		pdHi := diffOf(a.hi, b.hi, true)
		if !pdLo.decidable || !pdHi.decidable {
			return vUnknown
		}
		coefLo, coefHi := pdLo.rank+pdLo.grank, pdHi.rank+pdHi.grank
		if coefLo == 0 && coefHi == 0 && pdLo.d == 0 && pdHi.d == 0 {
			return vOverlap // identical interval for every VP
		}
		if coefLo == coefHi && pdLo.d == pdHi.d && pdLo.d == 0 && coefLo != 0 {
			// Translates by coef*δ; disjoint when |coef| >= width.
			if w, ok := a.hi.sub(a.lo).isConst(); ok && w > 0 {
				if coefLo >= w || -coefLo >= w {
					return vDisjoint
				}
				return vOverlap // stride smaller than width
			}
		}
		return vUnknown
	}

	// Cross-node.
	if structA && structB && siteA == siteB {
		anchorA, okA := ownerAnchored(rv, restA, siteA)
		anchorB, okB := ownerAnchored(rv, restB, siteB)
		if okA && okB && anchorA == anchorB {
			// Both windows sit inside their node's owner partition of
			// the same array, and owner partitions are disjoint across
			// nodes; equal rests mean equal structure on every node.
			if restA.equal(restB) {
				return vDisjoint
			}
			if c, isConst := restB.sub(restA).isConst(); isConst && c != 0 {
				return vOverlap // shifted windows cross partition edges
			}
			return vUnknown
		}
		// Same chunk partition with uniform rests and uniform n: equal
		// ranks on two nodes write the same window.
		if uniformOnly(restA) && uniformOnly(restB) && uniformOnly(rv.chunkN[siteA]) {
			pd := diffOf(restA, restB, false)
			if pd.decidable {
				return vOverlap
			}
		}
		return vUnknown
	}
	if !structA && !structB {
		// Identical uniform windows on every node overlap.
		if uniformOnly(a.lo) && uniformOnly(a.hi) && a.lo.equal(b.lo) && a.hi.equal(b.hi) {
			return vOverlap
		}
	}
	return vUnknown
}
