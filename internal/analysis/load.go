package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// Errors holds load, parse or type errors; analysis is skipped for
	// packages that have any.
	Errors []error

	// ignore maps file name -> line -> rules suppressed on that line by
	// a //ppmvet:ignore comment ("" suppresses every rule).
	ignore map[string]map[int][]string
	// ignoreRanges holds function-extent suppressions from //ppmvet:ignore
	// annotations in declaration doc comments.
	ignoreRanges map[string][]ignoreRange

	// index is the lazily built interprocedural index shared by every
	// analyzer running over this package (see callgraph.go).
	index *PkgIndex
}

// ignoreRange suppresses rules over a line range (a whole declaration).
type ignoreRange struct {
	from, to int
	rules    []string
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as the go tool would, e.g. "./...") relative
// to dir, and returns the matched packages parsed and type-checked.
// Dependencies are consumed as compiler export data produced by
// `go list -export`, so loading works without network access and without
// re-type-checking the world; only the matched packages get syntax.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var roots []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			roots = append(roots, e)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p)
	})

	var pkgs []*Package
	for _, e := range roots {
		pkg := &Package{
			ImportPath:   e.ImportPath,
			Dir:          e.Dir,
			Fset:         fset,
			ignore:       map[string]map[int][]string{},
			ignoreRanges: map[string][]ignoreRange{},
		}
		if e.Error != nil {
			pkg.Errors = append(pkg.Errors, fmt.Errorf("%s", e.Error.Err))
		}
		for _, name := range e.GoFiles {
			path := filepath.Join(e.Dir, name)
			src, err := os.ReadFile(path)
			if err != nil {
				pkg.Errors = append(pkg.Errors, err)
				continue
			}
			f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				pkg.Errors = append(pkg.Errors, err)
				continue
			}
			pkg.Files = append(pkg.Files, f)
			pkg.recordIgnores(f, src)
		}
		if len(pkg.Errors) == 0 {
			pkg.TypesInfo = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
			}
			conf := types.Config{Importer: imp}
			tpkg, err := conf.Check(e.ImportPath, fset, pkg.Files, pkg.TypesInfo)
			pkg.Types = tpkg
			if err != nil {
				pkg.Errors = append(pkg.Errors, err)
			}
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// recordIgnores scans f for //ppmvet:ignore comments. An annotation
// suppresses the named rules (all rules when none are named) on its own
// line and — only when the comment stands alone on its line — on the
// following line; an end-of-line annotation applies to its own line
// only, so it cannot silently swallow a finding on the statement below.
// An annotation inside a function's doc comment suppresses over the
// whole function (for infrastructure like the language interpreter,
// whose phase discipline is established dynamically).
func (p *Package) recordIgnores(f *ast.File, src []byte) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			rules, ok := parseIgnore(c.Text)
			if !ok {
				continue
			}
			pos := p.Fset.Position(fd.Pos())
			end := p.Fset.Position(fd.End())
			p.ignoreRanges[pos.Filename] = append(p.ignoreRanges[pos.Filename],
				ignoreRange{from: pos.Line, to: end.Line, rules: rules})
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rules, ok := parseIgnore(c.Text)
			if !ok {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			lines := p.ignore[pos.Filename]
			if lines == nil {
				lines = map[int][]string{}
				p.ignore[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], rules...)
			if standaloneComment(src, pos.Offset) {
				lines[pos.Line+1] = append(lines[pos.Line+1], rules...)
			}
		}
	}
}

// parseIgnore extracts the rule list from one //ppmvet:ignore comment.
// An annotation without rule names (rules == [""]), suppresses all.
// Everything after a "—" or "--" is commentary.
func parseIgnore(comment string) (rules []string, ok bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "ppmvet:ignore") {
		return nil, false
	}
	text = strings.TrimPrefix(text, "ppmvet:ignore")
	if i := strings.IndexAny(text, "—"); i >= 0 {
		text = text[:i]
	}
	if i := strings.Index(text, "--"); i >= 0 {
		text = text[:i]
	}
	rules = strings.Fields(text)
	if len(rules) == 0 {
		rules = []string{""}
	}
	return rules, true
}

// standaloneComment reports whether only whitespace precedes the
// comment starting at offset on its source line.
func standaloneComment(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			// keep scanning
		default:
			return false
		}
	}
	return true // first line of the file
}

// ruleMatches reports whether suppression entry r covers rule: the
// empty entry covers everything, an exact name covers itself, and a
// name covers its dotted sub-rules (ignoring "phaserace" also ignores
// "phaserace.possible"; the reverse does not hold).
func ruleMatches(r, rule string) bool {
	return r == "" || r == rule || strings.HasPrefix(rule, r+".")
}

// suppressed reports whether rule is ignored at pos.
func (p *Package) suppressed(rule string, pos token.Position) bool {
	for _, r := range p.ignore[pos.Filename][pos.Line] {
		if ruleMatches(r, rule) {
			return true
		}
	}
	for _, rng := range p.ignoreRanges[pos.Filename] {
		if pos.Line < rng.from || pos.Line > rng.to {
			continue
		}
		for _, r := range rng.rules {
			if ruleMatches(r, rule) {
				return true
			}
		}
	}
	return false
}
