package analysis_test

import (
	"testing"

	"ppm/internal/analysis"
	"ppm/internal/analysis/analysistest"
)

// Each rule runs alone over its fixture: the // want expectations fail
// the test both when the rule misses a positive case and when it fires
// on a negative one (so disabling a rule breaks its test).
func TestPhaseBound(t *testing.T) {
	analysistest.Run(t, "testdata/src/phasebound", analysis.PhaseBoundAnalyzer)
}

func TestConstWrite(t *testing.T) {
	analysistest.Run(t, "testdata/src/constwrite", analysis.ConstWriteAnalyzer)
}

func TestStaleRead(t *testing.T) {
	analysistest.Run(t, "testdata/src/staleread", analysis.StaleReadAnalyzer)
}

func TestLocalAlias(t *testing.T) {
	analysistest.Run(t, "testdata/src/localalias", analysis.LocalAliasAnalyzer)
}

func TestRunError(t *testing.T) {
	analysistest.Run(t, "testdata/src/runerror", analysis.RunErrorAnalyzer)
}

func TestPhaseRace(t *testing.T) {
	analysistest.Run(t, "testdata/src/phaserace", analysis.PhaseRaceAnalyzer)
}

func TestSerialEscape(t *testing.T) {
	analysistest.Run(t, "testdata/src/serialescape", analysis.SerialEscapeAnalyzer)
}

func TestBlockRetain(t *testing.T) {
	analysistest.Run(t, "testdata/src/blockretain", analysis.BlockRetainAnalyzer)
}

// TestIgnoreAnnotations pins the //ppmvet:ignore contract: standalone
// annotations reach the next line, rule names cover dotted sub-rules,
// and neither a wrong rule name nor an end-of-line annotation on the
// line above suppresses a finding.
func TestIgnoreAnnotations(t *testing.T) {
	analysistest.Run(t, "testdata/src/ignore", analysis.PhaseRaceAnalyzer)
}

// The clean fixture exercises every rule's negative space at once: the
// idiomatic program from the paper's quickstart must stay findings-free.
func TestCleanProgram(t *testing.T) {
	analysistest.RunAll(t, "testdata/src/clean")
}

// TestRulesComplete pins the advertised rule set (the vet suite's
// public contract: the eight documented rules).
func TestRulesComplete(t *testing.T) {
	names := map[string]bool{}
	for _, a := range analysis.Rules() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("rule %+v incomplete", a)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"phasebound", "constwrite", "staleread", "localalias", "runerror",
		"phaserace", "serialescape", "blockretain",
	} {
		if !names[want] {
			t.Errorf("rule %q missing from Rules()", want)
		}
	}
}
