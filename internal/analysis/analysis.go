// Package analysis is a small static-analysis framework for PPM
// programs written in Go, modeled on the golang.org/x/tools/go/analysis
// vet architecture but self-contained (the toolchain's module proxy is
// not assumed to be reachable). It provides the Analyzer/Pass/Diagnostic
// core, a package loader built on `go list -export` plus the standard
// go/types importer, and the ppmvet rule suite that checks the phase
// semantics of the paper's model statically: shared-variable accesses
// outside phases, guaranteed strict-mode write conflicts, same-phase
// read-after-write staleness, node-level aliases leaking into VP code,
// ignored run errors, overlapping VP write sets (an affine analysis of
// index expressions over a CFG/dataflow/call-summary layer), host
// state mutated from VP code without Serial, and block-transfer slices
// escaping their phase.
//
// The runtime enforces each of these dynamically (accessCheck panics,
// StrictWrites commit checks); ppmvet reports them before a program
// runs, with source positions — the "compiler knows the model" advantage
// the paper claims for a language front end, recovered for the Go API.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one static-analysis rule.
type Analyzer struct {
	// Name identifies the rule (a lowercase identifier, used in
	// diagnostics and //ppmvet:ignore comments).
	Name string
	// Doc is a one-paragraph description of what the rule reports.
	Doc string
	// Run applies the rule to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a loaded, type-checked package
// and the diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg  *Package
	sink *[]Diagnostic
}

// Reportf records a diagnostic at pos unless the source line carries a
// //ppmvet:ignore annotation naming this rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Rule:     p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer,
	})
}

// reportTagged records a diagnostic under an explicit rule tag, letting
// one analyzer emit findings of graded certainty ("phaserace" for
// proven overlaps, "phaserace.possible" for undecidable index sets)
// that are suppressible separately. Suppression matches by prefix:
// ignoring the analyzer name also ignores its dotted sub-rules.
func (p *Pass) reportTagged(pos token.Pos, rule string, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.suppressed(rule, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Rule:     rule,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer,
	})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Rule     string
	Pos      token.Position
	Message  string
	Analyzer *Analyzer
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// RuleTiming is the accumulated wall-clock cost of one analyzer across
// every analyzed package.
type RuleTiming struct {
	Rule    string
	Elapsed time.Duration
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position. Packages that failed to load contribute
// their load errors via the returned error (analysis of the remaining
// packages still happens).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkgs, analyzers)
	return diags, err
}

// RunTimed is Run plus per-rule timing, in the analyzers' order.
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []RuleTiming, error) {
	var diags []Diagnostic
	var loadErrs []string
	elapsed := make([]time.Duration, len(analyzers))
	timings := func() []RuleTiming {
		out := make([]RuleTiming, len(analyzers))
		for i, a := range analyzers {
			out[i] = RuleTiming{Rule: a.Name, Elapsed: elapsed[i]}
		}
		return out
	}
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				loadErrs = append(loadErrs, fmt.Sprintf("%s: %v", pkg.ImportPath, e))
			}
			continue
		}
		for ai, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				pkg:       pkg,
				sink:      &diags,
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[ai] += time.Since(start)
			if err != nil {
				return diags, timings(), fmt.Errorf("%s: analyzer %s: %v", pkg.ImportPath, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
	if len(loadErrs) > 0 {
		return diags, timings(), fmt.Errorf("load errors:\n  %s", strings.Join(loadErrs, "\n  "))
	}
	return diags, timings(), nil
}

// Rules returns the ppmvet analyzer suite in a stable order.
func Rules() []*Analyzer {
	return []*Analyzer{
		PhaseBoundAnalyzer,
		ConstWriteAnalyzer,
		StaleReadAnalyzer,
		LocalAliasAnalyzer,
		RunErrorAnalyzer,
		PhaseRaceAnalyzer,
		SerialEscapeAnalyzer,
		BlockRetainAnalyzer,
	}
}

// RuleByName returns the named analyzer, or nil.
func RuleByName(name string) *Analyzer {
	for _, a := range Rules() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
