package analysis

import "testing"

// The affine decision procedure rests on this small symbolic
// arithmetic; these tests pin its algebra directly.

func TestAffineArithmetic(t *testing.T) {
	rank := sym{kNodeRank, "rank"}
	grank := sym{kGlobalRank, "grank"}

	// 2*rank + 3
	a := aSym(rank).scale(2).add(aConst(3))
	if !a.ok || a.c != 3 || a.coef(rank) != 2 {
		t.Fatalf("2*rank+3 built wrong: %+v", a)
	}
	// (2*rank + 3) - 2*rank = 3: matching symbols cancel exactly.
	d := a.sub(aSym(rank).scale(2))
	if c, ok := d.isConst(); !ok || c != 3 {
		t.Errorf("difference = %+v, want constant 3", d)
	}
	// Mixed symbols do not cancel.
	m := a.sub(aSym(grank).scale(2))
	if _, ok := m.isConst(); ok {
		t.Errorf("rank - grank collapsed to a constant: %+v", m)
	}
	if m.coef(rank) != 2 || m.coef(grank) != -2 {
		t.Errorf("mixed difference coefficients wrong: %+v", m)
	}
}

func TestAffineEqualIgnoresZeroCoefficients(t *testing.T) {
	rank := sym{kNodeRank, "rank"}
	a := aConst(5)
	b := aSym(rank).add(aConst(5)).sub(aSym(rank)) // 5 with a cancelled term
	if !a.equal(b) || !b.equal(a) {
		t.Errorf("equal must ignore zero coefficients: %+v vs %+v", a, b)
	}
}

func TestAffineBadPropagates(t *testing.T) {
	bad := aBad()
	for name, a := range map[string]affine{
		"add":       bad.add(aConst(1)),
		"sub":       aConst(1).sub(bad),
		"scale":     bad.scale(2),
		"addScaled": aConst(0).addScaled(bad, 3),
	} {
		if a.ok {
			t.Errorf("%s of a non-affine form claims affine: %+v", name, a)
		}
	}
	if _, ok := bad.isConst(); ok {
		t.Error("non-affine form reports a constant value")
	}
}

func TestAffineScaleZeroDropsSymbols(t *testing.T) {
	rank := sym{kNodeRank, "rank"}
	z := aSym(rank).scale(0)
	if c, ok := z.isConst(); !ok || c != 0 {
		t.Errorf("0 * rank = %+v, want constant 0", z)
	}
}
