// Fixture for the negative space of every rule at once: an idiomatic
// PPM program (the paper's binary-search example, condensed) that must
// produce zero findings.
package clean

import "ppm"

const n = 1 << 10

func Program() error {
	_, err := ppm.Run(ppm.Options{Nodes: 2}, func(rt *ppm.Runtime) {
		a := ppm.AllocGlobal[float64](rt, "a", n)
		out := ppm.AllocNode[int64](rt, "out", 16)

		local := a.Local(rt)
		for i := range local {
			local[i] = float64(i)
		}

		rt.Do(16, func(vp *ppm.VP) {
			buf := make([]float64, 8)
			vp.GlobalPhase(func() {
				lo, hi := ppm.ChunkRange(n, vp.GlobalK(), vp.GlobalRank())
				sum := 0.0
				for s := lo; s < hi; s += len(buf) {
					e := min(s+len(buf), hi)
					a.ReadBlock(vp, s, e, buf[:e-s])
					for _, v := range buf[:e-s] {
						sum += v
					}
				}
				out.Write(vp, vp.NodeRank(), int64(sum))
			})
			vp.NodePhase(func() {
				v := out.Read(vp, vp.NodeRank())
				out.Write(vp, vp.NodeRank(), v+1)
			})
		})

		results := out.Local(rt)
		_ = results[0]
	})
	return err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
