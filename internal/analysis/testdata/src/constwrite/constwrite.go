// Fixture for the constwrite rule: rank-independent constant-index
// writes executed by every VP.
package constwrite

import "ppm"

const slot = 7

func Program(rt *ppm.Runtime) {
	a := ppm.AllocGlobal[float64](rt, "a", 64)
	b := ppm.AllocNode[int64](rt, "b", 8)

	rt.Do(4, func(vp *ppm.VP) {
		vp.GlobalPhase(func() {
			a.Write(vp, 3, 1.0)            // want `constant index 3`
			a.Write(vp, slot, 2.0)         // want `constant index slot`
			a.WriteBlock(vp, 0, buf())     // want `constant index 0`
			a.Write(vp, vp.GlobalRank(), 1) // ok: rank-dependent index
			a.Add(vp, 3, 1.0)               // ok: adds combine
			if vp.NodeRank() == 0 {
				a.Write(vp, 3, 9.0) // ok: rank-guarded (one writer per node)
			}
			if vp.GlobalRank() == 0 {
				a.Write(vp, 5, 9.0) // ok: rank-guarded single writer
			}
			lo, _ := ppm.ChunkRange(64, vp.GlobalK(), vp.GlobalRank())
			a.Write(vp, lo, 4.0) // ok: index tainted by rank
		})
		vp.NodePhase(func() {
			b.Write(vp, 2, 1) // want `constant index 2`
		})
	})

	// A single-VP Do cannot conflict on a node array.
	rt.Do(1, func(vp *ppm.VP) {
		vp.NodePhase(func() {
			b.Write(vp, 2, 1) // ok: K == 1
		})
	})
}

func buf() []float64 { return make([]float64, 4) }
