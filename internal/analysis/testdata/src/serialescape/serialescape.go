// Package serialescape exercises the serialescape rule: VP code
// mutating state declared outside the VP function races between the
// concurrent VP instances unless the update runs under Serial.
package serialescape

import "ppm"

var launches int

type counter struct{ n int }

// bump stores through its parameter; callers passing host state are
// reported at the call site via the function summary.
func bump(c *counter) { c.n++ }

// peek only reads; passing host state to it is fine.
func peek(c *counter) int { return c.n }

func Host(rt *ppm.Runtime) {
	total := 0.0
	ctr := &counter{}
	sums := make([]float64, 4)
	rt.Do(4, func(vp *ppm.VP) {
		local := 0.0
		local += 1.0
		total += local // want `VP code mutates total`
		launches++     // want `VP code mutates launches`
		bump(ctr)      // want `passes ctr, declared outside the VP function, to bump`
		_ = peek(ctr)
		vp.GlobalPhase(func() {
			sums[0] = local // want `VP code mutates sums`
		})
		rt.Serial(func() {
			total += local // serialized: the sanctioned escape hatch
		})
	})
	// A single VP per node cannot race with itself.
	rt.Do(1, func(vp *ppm.VP) {
		total += 1.0
	})
	_ = total
}
