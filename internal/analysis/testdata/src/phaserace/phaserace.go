// Package phaserace exercises the phaserace rule: definite write
// overlaps between VP instances (including one seeded through a
// helper), provably-disjoint patterns that must stay silent, and
// non-affine indices that degrade to phaserace.possible.
package phaserace

import "ppm"

// smear writes a caller-chosen element; the overlap is only visible
// once the call-site argument is substituted into the index.
func smear(vp *ppm.VP, g *ppm.Global[float64], base int) {
	g.Write(vp, base, 2.0)
}

// scatter is deliberately non-affine (modulus of a per-VP quantity).
func scatter(vp *ppm.VP) int { return vp.NodeRank() % 5 }

func Overlaps(rt *ppm.Runtime) {
	a := ppm.AllocGlobal[float64](rt, "a", 64)
	q := ppm.AllocGlobal[float64](rt, "q", 64)
	h := ppm.AllocGlobal[float64](rt, "h", 64)
	d := ppm.AllocNode[float64](rt, "d", 64)
	e := ppm.AllocGlobal[float64](rt, "e", 64)
	m := ppm.AllocGlobal2D[float64](rt, "m", 8, 8)
	rt.Do(4, func(vp *ppm.VP) {
		vp.GlobalPhase(func() {
			a.Write(vp, 0, 1.0)           // want `overlapping elements of a`
			smear(vp, q, 3)               // want `overlapping elements of q`
			h.Write(vp, scatter(vp), 1.0) // want `cannot prove VP write sets of h disjoint`
			m.Write(vp, vp.NodeRank(), 0, 1.0) // want `overlapping elements of m`
		})
		vp.NodePhase(func() {
			lo, hi := ppm.ChunkRange(64, vp.K(), vp.NodeRank())
			for i := lo; i < hi; i++ {
				d.Write(vp, i, 1.0) // want `overlapping elements of d`
				d.Write(vp, i+1, 0.5)
			}
		})
		vp.GlobalPhase(func() {
			// Chunking a Global by the node-local rank partitions within
			// one node but collides with the same window on every other
			// node.
			lo, hi := ppm.ChunkRange(64, vp.K(), vp.NodeRank())
			for i := lo; i < hi; i++ {
				e.Write(vp, i, 1.0) // want `overlapping elements of e`
			}
		})
	})
}

func Disjoint(rt *ppm.Runtime) {
	b := ppm.AllocGlobal[float64](rt, "b", 64)
	c := ppm.AllocNode[float64](rt, "c", 64)
	g := ppm.AllocGlobal[float64](rt, "g", 64)
	m := ppm.AllocGlobal2D[float64](rt, "m2", 64, 4)
	acc := ppm.AllocGlobal[float64](rt, "acc", 1)
	n1 := ppm.AllocNode[float64](rt, "n1", 4)
	glo, ghi := g.OwnerRange(rt)
	rt.Do(4, func(vp *ppm.VP) {
		vp.GlobalPhase(func() {
			// Globally-ranked point writes are distinct per instance.
			b.Write(vp, vp.GlobalRank(), 1.0)
			// Row index distinguishes instances; the column may collide.
			m.Write(vp, vp.GlobalRank(), 2, 1.0)
			// Add is combining: concurrent Adds never conflict.
			acc.Add(vp, 0, 1.0)
			// Chunks of this node's owner partition: disjoint within the
			// node by the chunk split, across nodes by ownership.
			lo, hi := ppm.ChunkRange(ghi-glo, vp.K(), vp.NodeRank())
			for i := lo; i < hi; i++ {
				g.Write(vp, glo+i, 1.0)
			}
		})
		vp.NodePhase(func() {
			// Node arrays have one instance per node; the chunk split
			// alone proves the node-local writes disjoint.
			lo, hi := ppm.ChunkRange(64, vp.K(), vp.NodeRank())
			for i := lo; i < hi; i++ {
				c.Write(vp, i, 1.0)
			}
		})
	})
	// A single VP per node cannot race with itself on node state.
	rt.Do(1, func(vp *ppm.VP) {
		vp.NodePhase(func() {
			n1.Write(vp, 0, 1.0)
		})
	})
}
