// Package ignore exercises //ppmvet:ignore handling: a standalone
// annotation suppresses the next line, rule names cover their dotted
// sub-rules, and the two cases that must NOT suppress — a wrong rule
// name, and an end-of-line annotation on the previous line.
package ignore

import "ppm"

// scatter is deliberately non-affine, to provoke phaserace.possible.
func scatter(vp *ppm.VP) int { return vp.NodeRank() % 3 }

func Run(rt *ppm.Runtime) {
	a := ppm.AllocGlobal[float64](rt, "a", 8)
	b := ppm.AllocGlobal[float64](rt, "b", 8)
	c := ppm.AllocGlobal[float64](rt, "c", 8)
	d := ppm.AllocGlobal[float64](rt, "d", 8)
	e := ppm.AllocGlobal[float64](rt, "e", 8)
	rt.Do(4, func(vp *ppm.VP) {
		vp.GlobalPhase(func() {
			//ppmvet:ignore phaserace -- exact rule name suppresses the next line
			a.Write(vp, 0, 1.0)

			//ppmvet:ignore -- a bare annotation suppresses every rule
			b.Write(vp, 0, 1.0)

			//ppmvet:ignore phaserace -- the name covers phaserace.possible too
			c.Write(vp, scatter(vp), 1.0)

			//ppmvet:ignore staleread -- wrong rule: must not suppress
			d.Write(vp, 0, 1.0) // want `overlapping elements of d`

			x := 0 //ppmvet:ignore phaserace -- end-of-line: own line only
			e.Write(vp, x, 1.0) // want `overlapping elements of e`
		})
	})
}
