// Fixture for the staleread rule: same-phase read-after-write.
package staleread

import "ppm"

func Program(rt *ppm.Runtime) {
	a := ppm.AllocGlobal[float64](rt, "a", 64)
	b := ppm.AllocNode[float64](rt, "b", 8)

	rt.Do(4, func(vp *ppm.VP) {
		i := vp.GlobalRank()
		vp.GlobalPhase(func() {
			a.Write(vp, i, 1.0)
			_ = a.Read(vp, i) // want `reads the begin-of-phase value`
			_ = a.Read(vp, i+1) // ok: different index
		})
		vp.GlobalPhase(func() {
			_ = a.Read(vp, i)   // ok: read before write
			a.Write(vp, i, 2.0) // the intended read-then-write idiom
		})
		vp.GlobalPhase(func() {
			a.Write(vp, i, a.Read(vp, i)+1) // ok: argument read happens before the write
		})
		vp.GlobalPhase(func() {
			_ = a.Read(vp, i) // ok: previous phase's write committed at its barrier
		})
		vp.NodePhase(func() {
			b.Add(vp, 0, 1.0)
			_ = b.Read(vp, 0) // want `reads the begin-of-phase value`
		})
		buf := make([]float64, 4)
		vp.GlobalPhase(func() {
			a.WriteBlock(vp, i, buf)
			a.ReadBlock(vp, i, i+4, buf) // want `reads the begin-of-phase value`
		})
	})
}
