// Fixture for the phasebound rule: shared accessors outside any phase.
package phasebound

import "ppm"

func Program(rt *ppm.Runtime) {
	a := ppm.AllocGlobal[float64](rt, "a", 64)
	b := ppm.AllocNode[int64](rt, "b", 8)

	rt.Do(4, func(vp *ppm.VP) {
		v := a.Read(vp, vp.NodeRank())       // want `outside any GlobalPhase/NodePhase body`
		a.Write(vp, vp.NodeRank(), v)        // want `outside any GlobalPhase/NodePhase body`
		b.AddBlock(vp, 0, []int64{1})        // want `outside any GlobalPhase/NodePhase body`
		helperOutside(vp, a)                 // reported inside the helper
		vp.GlobalPhase(func() {
			w := a.Read(vp, vp.NodeRank()) // ok: inside a phase
			a.Write(vp, vp.NodeRank(), w)  // ok
			helperInPhase(vp, a)           // ok: helper only called here
		})
		vp.NodePhase(func() {
			b.Write(vp, vp.NodeRank(), 1) // ok
		})
	})
}

// helperOutside has a call site outside every phase, so its accesses are
// reported.
func helperOutside(vp *ppm.VP, a *ppm.Global[float64]) {
	a.Write(vp, vp.NodeRank(), 1) // want `outside any GlobalPhase/NodePhase body`
}

// helperInPhase is only ever called from inside a phase body: quiet.
func helperInPhase(vp *ppm.VP, a *ppm.Global[float64]) {
	a.Write(vp, vp.NodeRank(), 2) // ok: every call site is in-phase
}
