// Package seeded plants one bug per ppmvet rule, each hidden one
// helper-call level below its use site. The corpus test asserts every
// rule reports on its SEED-marked line, pinning the interprocedural
// layer end to end. (Lines are marked `SEED:<rule>`; a marker sits on
// the line where the rule is expected to report, which is the phase-
// level call site for call-expanded rules and the helper body for
// rules that report in place.)
package seeded

import "ppm"

// writeAt hides a shared write one level down. Called both outside any
// phase (the phasebound seed reports here, inside the helper) and with
// a constant index from a phase (constwrite and phaserace report at
// that call site).
func writeAt(vp *ppm.VP, g *ppm.Global[float64], i int) {
	g.Write(vp, i, 1.0) // SEED:phasebound
}

// readAt hides a shared read one level down.
func readAt(vp *ppm.VP, g *ppm.Global[float64], i int) float64 {
	return g.Read(vp, i)
}

// peekBase touches the base image from VP code; localalias reports in
// the helper body because the helper takes a *VP.
func peekBase(rt *ppm.Runtime, vp *ppm.VP, g *ppm.Global[float64]) float64 {
	return g.Local(rt)[0] // SEED:localalias
}

// bumpHost stores through its pointer parameter; serialescape reports
// at call sites that pass host state in.
func bumpHost(c *int) { *c++ }

// keepSlice returns its argument; blockretain reports at call sites
// that pass a phase block source in.
func keepSlice(s []float64) []float64 { return s }

// runModel forwards ppm.Run's error, so discarding runModel's own
// result discards a watched error.
func runModel(prog func(rt *ppm.Runtime)) error {
	_, err := ppm.Run(ppm.Options{}, prog)
	return err
}

func Host() {
	count := 0
	runModel(func(rt *ppm.Runtime) { // SEED:runerror
		g := ppm.AllocGlobal[float64](rt, "g", 64)
		rt.Do(4, func(vp *ppm.VP) {
			writeAt(vp, g, vp.GlobalRank()) // outside any phase: phasebound fires in the helper
			vp.GlobalPhase(func() {
				writeAt(vp, g, 7)    // SEED:constwrite SEED:phaserace
				_ = readAt(vp, g, 7) // SEED:staleread
				_ = peekBase(rt, vp, g)
				bumpHost(&count) // SEED:serialescape
				src := make([]float64, 4)
				g.WriteBlock(vp, 8, src)
				_ = keepSlice(src) // SEED:blockretain
			})
		})
	})
	_ = count
}
