// Package blockretain exercises the blockretain rule: a slice handed
// to WriteBlock/AddBlock is logically runtime-owned until the
// end-of-phase commit, so storing it anywhere that outlives the phase
// (fields, outer or package variables, returns, escaping helpers) is
// flagged.
package blockretain

import "ppm"

var sink []float64

type holder struct{ buf []float64 }

// stash returns its argument: passing a block source to it escapes.
func stash(s []float64) []float64 { return s }

// sum only reads its argument; passing a block source to it is fine.
func sum(s []float64) float64 {
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t
}

func Host(rt *ppm.Runtime) {
	g := ppm.AllocGlobal[float64](rt, "g", 64)
	h := &holder{}
	var outer []float64
	var kept []float64
	rt.Do(4, func(vp *ppm.VP) {
		vp.GlobalPhase(func() {
			src := make([]float64, 8)
			for i := range src {
				src[i] = float64(i)
			}
			g.WriteBlock(vp, vp.GlobalRank()*8, src)
			h.buf = src  // want `stored into longer-lived state`
			outer = src  // want `stored in outer, declared outside this function`
			sink = src   // want `stored in package variable sink`
			_ = sum(src) // reading helper: no escape
			view := src[2:4]
			view[0] = 9.0 // writing into the view is not a retention
			kept = view   // want `stored in kept, declared outside this function`
			_ = stash(src) // want `passed to stash, which stores or returns it`
		})
	})
	_, _ = outer, kept
}

// retBlock returns an AddBlock source out of a VP helper.
func retBlock(vp *ppm.VP, g *ppm.Global[float64]) []float64 {
	src := make([]float64, 4)
	g.AddBlock(vp, 0, src)
	return src // want `phase block slice is returned`
}
