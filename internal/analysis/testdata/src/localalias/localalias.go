// Fixture for the localalias rule: base-image aliases inside Do bodies.
package localalias

import "ppm"

func Program(rt *ppm.Runtime) {
	a := ppm.AllocGlobal[float64](rt, "a", 64)
	b := ppm.AllocNode[float64](rt, "b", 8)

	local := a.Local(rt) // ok here: node-level initialization...
	for i := range local {
		local[i] = float64(i) // ok: outside Do
	}

	rt.Do(4, func(vp *ppm.VP) {
		_ = local[0]        // want `bypass phase semantics`
		_ = a.Local(rt)     // want `node-level accessors bypass phase semantics`
		_ = a.At(rt, 3)     // want `node-level accessors bypass phase semantics`
		vp.GlobalPhase(func() {
			local[1] = 2.0 // want `bypass phase semantics`
		})
	})

	// After the Do the alias is safe again.
	_ = local[0] // ok
	_ = b.Local(rt)[0]
}
