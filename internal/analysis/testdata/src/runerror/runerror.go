// Fixture for the runerror rule: discarded ppm.Run errors.
package runerror

import "ppm"

func Program() error {
	ppm.Run(ppm.Options{Nodes: 2}, prog) // want `error discarded`

	rep, _ := ppm.Run(ppm.Options{Nodes: 2}, prog) // want `error assigned to _`
	_ = rep

	go ppm.Run(ppm.Options{Nodes: 2}, prog) // want `error discarded`

	// ok: error consumed.
	if _, err := ppm.Run(ppm.Options{Nodes: 2}, prog); err != nil {
		return err
	}
	_, err := ppm.Run(ppm.Options{Nodes: 2}, prog)
	return err
}

func prog(rt *ppm.Runtime) {}
