package analysis

// serialescape: VP code mutating state that outlives the VP instance.
// All K VP instances of a Do call share the enclosing closure
// environment, so an assignment to a variable declared outside the VP
// function body — a host local captured by the closure, a package
// variable, or pointed-to node state passed in by reference — is a
// plain data race between VP instances (and with the host) that the
// phase commit protocol does nothing to order. The sanctioned escape
// hatch is Proc.Serial / Runtime.Serial, which runs the update in the
// runtime's serial section.
//
// The check is summary-driven at helper boundaries: a call that passes
// outside-declared state to a package-local function which stores
// through that parameter (funcSummary.mutatesParam) is reported at the
// call site, so `step(s, ...)` mutating s.VX through a *State parameter
// is caught without expanding the helper.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// constIntOf extracts an exact integer constant from the type checker.
func constIntOf(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// SerialEscapeAnalyzer reports unserialized mutation of external state
// from VP code.
var SerialEscapeAnalyzer = &Analyzer{
	Name: "serialescape",
	Doc: "report VP code that mutates host or node state declared outside the VP function " +
		"without a Serial wrapper: concurrent VP instances race on such state",
	Run: runSerialEscape,
}

func runSerialEscape(pass *Pass) error {
	px := pass.Index()
	for _, u := range px.units {
		if !u.isVPEntry() {
			continue
		}
		if vpEntrySingleVP(px, u) {
			continue // Do(1, ...): a single instance cannot race with itself
		}
		checkSerialEscape(pass, px, u)
	}
	return nil
}

// vpEntrySingleVP reports whether every Do site starting this unit uses
// a constant K of 1.
func vpEntrySingleVP(px *PkgIndex, u *unit) bool {
	ks := px.doK[u.node]
	if len(ks) == 0 {
		return false
	}
	for _, k := range ks {
		v, ok := constIntOf(px.info, k)
		if !ok || v != 1 {
			return false
		}
	}
	return true
}

func checkSerialEscape(pass *Pass, px *PkgIndex, root *unit) {
	inspectStack(root.body, func(n ast.Node, stack []ast.Node) {
		// Code inside a nested VP entry (another Do body, a VP helper
		// literal) belongs to that root's own check; code inside a
		// Serial callback is the sanctioned escape hatch.
		for _, anc := range stack {
			if lit, ok := anc.(*ast.FuncLit); ok {
				if nu := px.units[lit]; nu != nil && nu != root && nu.isVPEntry() {
					return
				}
			}
			if call, ok := anc.(*ast.CallExpr); ok && isSerialCall(px.info, call) {
				return
			}
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				reportEscapeTarget(pass, px, root, lhs, x.Pos())
			}
		case *ast.IncDecStmt:
			reportEscapeTarget(pass, px, root, x.X, x.Pos())
		case *ast.CallExpr:
			callee := px.localCallee(x)
			if callee == nil || callee.fn == nil {
				return
			}
			s := px.summaryOf(callee.fn)
			if s == nil {
				return
			}
			for i, arg := range x.Args {
				if i >= len(s.mutatesParam) || !s.mutatesParam[i] {
					continue
				}
				obj := exprRootVar(px.info, arg)
				if obj != nil && declaredOutsideUnit(root, obj) && !isSharedArrayVar(obj) {
					pass.Reportf(x.Pos(),
						"VP code passes %s, declared outside the VP function, to %s which mutates it: "+
							"concurrent VP instances race on this state — wrap the update in Serial or make the state per-VP",
						obj.Name(), callee.fn.Name())
				}
			}
		}
	})
}

// reportEscapeTarget reports lhs when its root variable is declared
// outside the VP entry unit.
func reportEscapeTarget(pass *Pass, px *PkgIndex, root *unit, lhs ast.Expr, pos token.Pos) {
	obj := exprRootVar(px.info, lhs)
	if obj == nil || !declaredOutsideUnit(root, obj) || isSharedArrayVar(obj) {
		return
	}
	pass.Reportf(pos,
		"VP code mutates %s, which is declared outside the VP function: "+
			"concurrent VP instances race on it — wrap the update in Serial or make it per-VP state",
		obj.Name())
}

// declaredOutsideUnit reports whether obj's declaration lies outside
// u's extent (parameters and receiver count as inside).
func declaredOutsideUnit(u *unit, obj types.Object) bool {
	return obj.Pos() < u.node.Pos() || obj.Pos() >= u.node.End()
}

// exprRootVar unwraps an assignment target or argument to its root
// variable: s.VX[i] -> s, *p -> p, x -> x. Blank and field identifiers
// yield nil.
func exprRootVar(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isSharedArrayVar reports whether obj holds a shared array handle
// (Global/Node/...): their accessor methods, not Go assignments, are
// the mutation surface the other rules govern.
func isSharedArrayVar(obj types.Object) bool {
	return namedCoreType(obj.Type()) != ""
}

// isSerialCall recognizes the Serial method of the runtime layers
// (core.Runtime, cluster.Proc).
func isSerialCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Serial" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "ppm" || p == corePath || p == "ppm/internal/cluster"
}
