package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StaleReadAnalyzer flags a Read of a shared element after a Write/Add
// of the same element in the same phase body. Phase semantics make every
// read observe the begin-of-phase value: the freshly written value is
// not visible until the implicit barrier at the phase's end, so code
// that reads back what it just wrote is (perhaps surprisingly) reading
// the old value. Read-then-write is the intended idiom and is not
// flagged; neither are accesses in different phases.
var StaleReadAnalyzer = &Analyzer{
	Name: "staleread",
	Doc: "report same-phase read-after-write of one shared element: the read " +
		"observes the begin-of-phase value, not the value written this phase",
	Run: runStaleRead,
}

func runStaleRead(pass *Pass) error {
	ctx := buildPhaseCtx(pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lit := phaseBodyLit(pass.TypesInfo, call); lit != nil && ctx.phaseLits[lit] {
				checkPhaseBody(pass, lit)
			}
			return true
		})
	}
	return nil
}

// accessKey identifies one shared element syntactically: the receiver's
// root object (or printed receiver), the accessor family (scalar/block)
// and the printed index expression.
type accessKey struct {
	recv  any // types.Object or receiver string
	block bool
	index string
}

func keyOf(sc sharedCall) accessKey {
	k := accessKey{block: sc.block, index: types.ExprString(sc.indices[0])}
	if len(sc.indices) == 2 {
		k.index += "," + types.ExprString(sc.indices[1])
	}
	if sc.recvObj != nil {
		k.recv = sc.recvObj
	} else {
		k.recv = types.ExprString(sc.recv)
	}
	return k
}

// checkPhaseBody scans one phase body in source order. A write is
// recorded at its call's End so that reads nested in the write's own
// arguments (`a.Write(vp, i, a.Read(vp, i)+1)`, evaluated before the
// write) are not flagged.
func checkPhaseBody(pass *Pass, lit *ast.FuncLit) {
	writes := map[accessKey]struct {
		end    token.Pos
		method string
	}{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sc, ok := asSharedCall(pass.TypesInfo, call)
		if !ok {
			return true
		}
		key := keyOf(sc)
		if sc.write {
			if _, seen := writes[key]; !seen {
				writes[key] = struct {
					end    token.Pos
					method string
				}{call.End(), sc.method}
			}
			return true
		}
		if w, seen := writes[key]; seen && call.Pos() >= w.end {
			pass.Reportf(call.Pos(),
				"%s.%s(%s) after %s in the same phase reads the begin-of-phase value: writes only commit at the phase's end barrier — split the phases if the new value is needed",
				types.ExprString(sc.recv), sc.method, keyOf(sc).index, w.method)
		}
		return true
	})
}
