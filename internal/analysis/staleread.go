package analysis

import (
	"fmt"
	"go/types"
	"strings"
)

// StaleReadAnalyzer flags a Read of a shared element after a Write/Add
// of the same element in the same phase body. Phase semantics make every
// read observe the begin-of-phase value: the freshly written value is
// not visible until the implicit barrier at the phase's end, so code
// that reads back what it just wrote is (perhaps surprisingly) reading
// the old value. Read-then-write is the intended idiom and is not
// flagged; neither are accesses in different phases.
//
// The rule matches elements two ways: semantically, by the affine form
// of the index with helper arguments substituted (so a write performed
// inside a helper and a read of the same element back in the phase body
// match), and syntactically within one function frame, for indices the
// affine resolver cannot decompose.
var StaleReadAnalyzer = &Analyzer{
	Name: "staleread",
	Doc: "report same-phase read-after-write of one shared element: the read " +
		"observes the begin-of-phase value, not the value written this phase",
	Run: runStaleRead,
}

func runStaleRead(pass *Pass) error {
	px := pass.Index()
	rv := newResolver(px)
	for lit, isPhase := range px.ctx.phaseLits {
		if !isPhase {
			continue
		}
		if u := px.unitFor(lit); u != nil {
			checkStaleReads(pass, px, rv, u)
		}
	}
	return nil
}

// srKey identifies one shared element within one phase walk.
type srKey struct {
	arr   any // types.Object when resolvable, else the printed receiver
	block bool
	idx   string
}

// checkStaleReads walks one phase body (expanding helpers) in execution
// order. Writes are recorded when emitted; since walkOps visits a
// call's arguments before the call itself, a read nested in the write's
// own arguments (`a.Write(vp, i, a.Read(vp, i)+1)`) is seen first and
// not flagged.
func checkStaleReads(pass *Pass, px *PkgIndex, rv *resolver, phase *unit) {
	type written struct{ method string }
	sem := map[srKey]written{} // affine-matched elements
	syn := map[srKey]written{} // syntactic fallback, per frame
	px.walkOps(&frame{unit: phase}, map[*unit]bool{}, func(op opSite) {
		env := envOf(op.fr, op.loops)
		var arrKey any = types.ExprString(op.sc.recv)
		if arr := rv.arrayObj(op.sc.recv, env); arr != nil {
			arrKey = arr
		}
		var semParts, synParts []string
		affOK := true
		for _, idx := range op.sc.indices {
			synParts = append(synParts, types.ExprString(idx))
			a := rv.exprAffine(idx, env)
			if a.ok {
				semParts = append(semParts, rv.canon(a))
			} else {
				affOK = false
			}
		}
		semKey := srKey{arr: arrKey, block: op.sc.block, idx: strings.Join(semParts, ",")}
		synKey := srKey{arr: arrKey, block: op.sc.block,
			idx: fmt.Sprintf("%p|%s", op.fr, strings.Join(synParts, ","))}
		if op.sc.write {
			if affOK {
				if _, seen := sem[semKey]; !seen {
					sem[semKey] = written{op.sc.method}
				}
			}
			if _, seen := syn[synKey]; !seen {
				syn[synKey] = written{op.sc.method}
			}
			return
		}
		w, seen := written{}, false
		if affOK {
			w, seen = sem[semKey]
		}
		if !seen {
			w, seen = syn[synKey]
		}
		if seen {
			pass.Reportf(op.fr.reportPos(op.sc.call.Pos()),
				"%s.%s(%s) after %s in the same phase reads the begin-of-phase value: writes only commit at the phase's end barrier — split the phases if the new value is needed",
				types.ExprString(op.sc.recv), op.sc.method, strings.Join(synParts, ","), w.method)
		}
	})
}
