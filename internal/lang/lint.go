package lang

import "fmt"

// This file holds the phase-semantics lint passes behind Analyze: the
// .ppm counterparts of the Go-side ppmvet rules. They work on the bare
// syntax tree (no type information needed), so they run even over
// programs the checker rejected.

// lintProgram runs every warning pass over prog.
func lintProgram(prog *Program) []Diag {
	consts := map[string]int64{}
	for _, d := range prog.Consts {
		if _, dup := consts[d.Name]; !dup {
			consts[d.Name] = d.Value
		}
	}
	shared := map[string]*SharedDecl{}
	for _, d := range prog.Shared {
		if _, dup := shared[d.Name]; !dup {
			shared[d.Name] = d
		}
	}

	var diags []Diag
	diags = append(diags, lintConstWrite(prog, consts, shared)...)
	diags = append(diags, lintStaleRead(prog, shared)...)
	diags = append(diags, lintPhaseRace(prog, consts, shared)...)
	diags = append(diags, lintUnusedShared(prog)...)
	return diags
}

// rankDependent reports whether e mentions a VP- or node-identifying
// value (directly, or through a tainted local variable), so that its
// value differs between the VPs executing the phase.
func rankDependent(e Expr, tainted map[string]bool) bool {
	found := false
	walkExpr(e, func(x Expr) {
		switch v := x.(type) {
		case *Ident:
			switch v.Name {
			case "vp_node_rank", "vp_global_rank", "node_id":
				found = true
			default:
				if tainted[v.Name] {
					found = true
				}
			}
		case *Call:
			// Owned ranges differ per node.
			if v.Name == "my_lo" || v.Name == "my_hi" {
				found = true
			}
		}
	})
	return found
}

// taintedVars computes the variables of f whose value derives from a
// rank, iterating assignments to a fixed point so chains like
// `var i int = vp_node_rank; var j int = i * 2` are caught.
func taintedVars(f *FuncDecl) map[string]bool {
	tainted := map[string]bool{}
	for changed := true; changed; {
		changed = false
		mark := func(name string, dep bool) {
			if dep && !tainted[name] {
				tainted[name] = true
				changed = true
			}
		}
		walkStmt(f.Body, func(s Stmt) {
			switch st := s.(type) {
			case *VarDecl:
				if st.Init != nil {
					mark(st.Name, rankDependent(st.Init, tainted))
				}
			case *Assign:
				if st.Target.Index == nil {
					mark(st.Target.Name, rankDependent(st.Value, tainted))
				}
			case *For:
				mark(st.Var, rankDependent(st.Lo, tainted) || rankDependent(st.Hi, tainted))
			}
		})
	}
	return tainted
}

// evalConst resolves e to a compile-time integer if it is built from
// literals and consts only.
func evalConst(e Expr, consts map[string]int64) (int64, bool) {
	switch ex := e.(type) {
	case *IntLit:
		return ex.Value, true
	case *Ident:
		v, ok := consts[ex.Name]
		return v, ok
	case *Unary:
		if ex.Op == MINUS {
			v, ok := evalConst(ex.X, consts)
			return -v, ok
		}
	case *Binary:
		l, lok := evalConst(ex.L, consts)
		r, rok := evalConst(ex.R, consts)
		if !lok || !rok {
			return 0, false
		}
		switch ex.Op {
		case PLUS:
			return l + r, true
		case MINUS:
			return l - r, true
		case STAR:
			return l * r, true
		case SLASH:
			if r != 0 {
				return l / r, true
			}
		case PERCENT:
			if r != 0 {
				return l % r, true
			}
		}
	}
	return 0, false
}

// lintConstWrite flags plain writes (not +=) inside a phase whose index
// is a rank-independent constant and which are not guarded by a
// rank-dependent condition: every VP of the phase then writes the same
// element, a guaranteed conflict under the runtime's strict mode. Node
// arrays are exempt when every `do` of the function starts a single VP
// per node; global arrays conflict across nodes regardless of K.
func lintConstWrite(prog *Program, consts map[string]int64, shared map[string]*SharedDecl) []Diag {
	alwaysSingleVP := singleVPFuncs(prog, consts)

	var diags []Diag
	for _, f := range prog.Funcs {
		tainted := taintedVars(f)
		var inPhase func(s Stmt, guarded bool)
		inPhase = func(s Stmt, guarded bool) {
			switch st := s.(type) {
			case *Block:
				for _, n := range st.Stmts {
					inPhase(n, guarded)
				}
			case *If:
				g := guarded || rankDependent(st.Cond, tainted)
				inPhase(st.Then, g)
				if st.Else != nil {
					inPhase(st.Else, g)
				}
			case *While:
				inPhase(st.Body, guarded)
			case *For:
				inPhase(st.Body, guarded)
			case *Assign:
				if st.Add || guarded || st.Target.Index == nil {
					return
				}
				sh := shared[st.Target.Name]
				if sh == nil {
					return
				}
				v, isConst := evalConst(st.Target.Index, consts)
				if !isConst {
					return
				}
				if !sh.GlobalScope && alwaysSingleVP(f.Name) {
					return
				}
				diags = append(diags, Diag{
					Line: st.Target.Pos.Line, Col: st.Target.Pos.Col,
					Rule: "constwrite", Sev: SevWarning,
					Msg: fmt.Sprintf("every VP of the phase writes %s[%d]: guaranteed conflicting writes under strict mode — guard the write by rank or use +=", st.Target.Name, v),
				})
			}
		}
		walkStmt(f.Body, func(s Stmt) {
			if p, ok := s.(*Phase); ok {
				inPhase(p.Body, false)
			}
		})
	}
	return diags
}

// lintStaleRead flags a read of a shared element that an earlier
// statement of the same phase wrote (same array, syntactically
// identical index): the read still observes the begin-of-phase value,
// because writes commit only at the phase's end barrier. Reads
// evaluated before the write of their own statement (`A[i] = A[i]+1`)
// are the model's intended idiom and are not flagged.
func lintStaleRead(prog *Program, shared map[string]*SharedDecl) []Diag {
	var diags []Diag
	key := func(name string, idx Expr) string { return name + "[" + exprString(idx) + "]" }

	lintPhase := func(p *Phase) {
		writes := map[string]Token{}
		checkReads := func(e Expr) {
			walkExpr(e, func(x Expr) {
				ix, ok := x.(*Index)
				if !ok {
					return
				}
				k := key(ix.Name, ix.Inner)
				w, written := writes[k]
				if !written {
					return
				}
				diags = append(diags, Diag{
					Line: ix.Pos.Line, Col: ix.Pos.Col,
					Rule: "staleread", Sev: SevWarning,
					Msg: fmt.Sprintf("read of %s observes the begin-of-phase value: the update at line %d commits only at the phase's end barrier — split the phase if the new value is needed", k, w.Line),
				})
			})
		}
		var scan func(s Stmt)
		scan = func(s Stmt) {
			for _, e := range stmtExprs(s) {
				checkReads(e)
			}
			if a, ok := s.(*Assign); ok && a.Target.Index != nil && shared[a.Target.Name] != nil {
				writes[key(a.Target.Name, a.Target.Index)] = a.Pos
			}
			switch st := s.(type) {
			case *Block:
				for _, n := range st.Stmts {
					scan(n)
				}
			case *If:
				scan(st.Then)
				if st.Else != nil {
					scan(st.Else)
				}
			case *While:
				scan(st.Body)
			case *For:
				scan(st.Body)
			}
		}
		scan(p.Body)
	}

	for _, f := range prog.Funcs {
		walkStmt(f.Body, func(s Stmt) {
			if p, ok := s.(*Phase); ok {
				lintPhase(p)
			}
		})
	}
	return diags
}

// lintUnusedShared flags shared arrays that no expression or
// assignment in the program ever touches.
func lintUnusedShared(prog *Program) []Diag {
	used := map[string]bool{}
	markExpr := func(e Expr) {
		walkExpr(e, func(x Expr) {
			switch v := x.(type) {
			case *Index:
				used[v.Name] = true
			case *Call:
				if (v.Name == "my_lo" || v.Name == "my_hi") && len(v.Args) == 1 {
					if id, ok := v.Args[0].(*Ident); ok {
						used[id.Name] = true
					}
				}
			}
		})
	}
	markStmt := func(s Stmt) {
		for _, e := range stmtExprs(s) {
			markExpr(e)
		}
		if a, ok := s.(*Assign); ok && a.Target.Index != nil {
			used[a.Target.Name] = true
		}
	}
	for _, f := range prog.Funcs {
		walkStmt(f.Body, markStmt)
	}
	walkStmt(prog.Main, markStmt)

	var diags []Diag
	for _, d := range prog.Shared {
		if used[d.Name] {
			continue
		}
		diags = append(diags, Diag{
			Line: d.Pos.Line, Col: d.Pos.Col,
			Rule: "unusedshared", Sev: SevWarning,
			Msg: fmt.Sprintf("shared array %q is declared but never used", d.Name),
		})
	}
	return diags
}
