package lang

import (
	"bytes"
	goparser "go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppm/internal/bench"
	"ppm/internal/core"
	"ppm/internal/machine"
)

// The shipped .ppm example programs must parse, check, interpret
// correctly, and emit valid Go.
func shippedPrograms(t *testing.T) map[string]*Program {
	t.Helper()
	root, err := bench.RepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "examples", "language")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*Program{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".ppm") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if err := Check(prog); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		out[e.Name()] = prog
	}
	if len(out) < 2 {
		t.Fatalf("expected at least 2 shipped programs, found %d", len(out))
	}
	return out
}

func TestShippedProgramsEmitValidGo(t *testing.T) {
	for name, prog := range shippedPrograms(t) {
		src, err := GenerateGo(prog)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fset := token.NewFileSet()
		if _, err := goparser.ParseFile(fset, name, src, 0); err != nil {
			t.Errorf("%s: emitted Go invalid: %v", name, err)
		}
	}
}

func TestShippedSearchProgram(t *testing.T) {
	prog := shippedPrograms(t)["search.ppm"]
	var out bytes.Buffer
	rep, err := Interpret(prog, core.Options{Nodes: 4, Machine: machine.Generic()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "mismatches") {
		t.Errorf("search reported mismatches: %q", out.String())
	}
	if !strings.Contains(out.String(), "found at rank") {
		t.Errorf("search output: %q", out.String())
	}
	if rep.Totals.VPsStarted != 4*1024 {
		t.Errorf("VPs: %d", rep.Totals.VPsStarted)
	}
}

func TestShippedCGProgramConverges(t *testing.T) {
	prog := shippedPrograms(t)["cg.ppm"]
	var out bytes.Buffer
	rep, err := Interpret(prog, core.Options{Nodes: 4, Machine: machine.Generic()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "iterations:") {
		t.Fatalf("cg output: %q", s)
	}
	// The final report line carries the worst deviation from the known
	// solution; it must be tiny.
	if !strings.Contains(s, "worst |x-1|:") {
		t.Fatalf("cg output missing verification: %q", s)
	}
	fields := strings.Fields(s)
	worst := fields[len(fields)-1]
	if !strings.Contains(worst, "e-") {
		t.Errorf("worst deviation not small: %q (output %q)", worst, s)
	}
	if rep.Totals.GlobalPhases == 0 || rep.Totals.RemoteReadElems == 0 {
		t.Errorf("cg did not exercise global phases/remote reads: %+v", rep.Totals)
	}
}

func TestShippedHistogramProgram(t *testing.T) {
	prog := shippedPrograms(t)["histogram.ppm"]
	var out bytes.Buffer
	rep, err := Interpret(prog, core.Options{Nodes: 4, Machine: machine.Generic()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "items: 16384") {
		t.Errorf("histogram output: %q", out.String())
	}
	if rep.Totals.NodePhases == 0 {
		t.Error("histogram should use node phases")
	}
	if rep.Totals.GlobalPhases == 0 {
		t.Error("histogram should use global phases")
	}
}

// A language-level determinism check over a program with heavy sharing.
func TestShippedCGDeterministic(t *testing.T) {
	prog := shippedPrograms(t)["cg.ppm"]
	run := func() (string, float64) {
		var out bytes.Buffer
		rep, err := Interpret(prog, core.Options{Nodes: 3, Machine: machine.Generic()}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String(), rep.Makespan().Seconds()
	}
	o1, m1 := run()
	o2, m2 := run()
	if o1 != o2 || m1 != m2 {
		t.Error("cg.ppm runs diverge")
	}
}
