package lang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Severity classifies a diagnostic. Errors reject the program (Check
// fails, the interpreter and code generator refuse to run it); warnings
// flag phase-semantics hazards — code the runtime will execute but that
// violates the model's intent (guaranteed strict-mode conflicts, reads
// of values that have not committed yet).
type Severity string

// Severities.
const (
	SevError   Severity = "error"
	SevWarning Severity = "warning"
)

// Diag is one positioned diagnostic produced by Analyze. Rule names the
// check that fired, using the same vocabulary as the Go-side ppmvet
// analyzers where the rules coincide (phasebound, constwrite,
// staleread).
type Diag struct {
	Line int      `json:"line"`
	Col  int      `json:"col"`
	Rule string   `json:"rule"`
	Sev  Severity `json:"severity"`
	Msg  string   `json:"message"`
}

func (d Diag) String() string {
	return fmt.Sprintf("%d:%d: %s: %s [%s]", d.Line, d.Col, d.Sev, d.Msg, d.Rule)
}

// Analyze runs the semantic checker plus the phase-semantics lint
// passes over prog and returns every diagnostic, sorted by position.
// Unlike Check it does not stop at the first problem; unlike Check it
// also reports warnings. The lint passes work on the bare syntax tree,
// so hazards are still reported in programs that have type errors
// elsewhere (a broken fixture can show both its write-outside-phase
// error and its guaranteed write conflict at once).
func Analyze(prog *Program) []Diag {
	c := newChecker(prog)
	c.run()
	diags := append(c.diags, lintProgram(prog)...)
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags
}

// exprString renders an expression in source syntax, for diagnostics
// and for comparing indices structurally (two accesses with the same
// rendering touch the same element when evaluated by the same VP).
func exprString(e Expr) string {
	switch ex := e.(type) {
	case *IntLit:
		return strconv.FormatInt(ex.Value, 10)
	case *FloatLit:
		return strconv.FormatFloat(ex.Value, 'g', -1, 64)
	case *BoolLit:
		return strconv.FormatBool(ex.Value)
	case *StrLit:
		return strconv.Quote(ex.Value)
	case *Ident:
		return ex.Name
	case *Index:
		return ex.Name + "[" + exprString(ex.Inner) + "]"
	case *Unary:
		return opText(ex.Op) + exprString(ex.X)
	case *Binary:
		return exprString(ex.L) + " " + opText(ex.Op) + " " + exprString(ex.R)
	case *Call:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = exprString(a)
		}
		return ex.Name + "(" + strings.Join(args, ", ") + ")"
	default:
		return "?"
	}
}

func opText(k Kind) string { return strings.Trim(k.String(), "'") }

// walkStmt visits s and every statement nested inside it, in source
// order.
func walkStmt(s Stmt, f func(Stmt)) {
	if s == nil {
		return
	}
	f(s)
	switch st := s.(type) {
	case *Block:
		for _, n := range st.Stmts {
			walkStmt(n, f)
		}
	case *If:
		walkStmt(st.Then, f)
		if st.Else != nil {
			walkStmt(st.Else, f)
		}
	case *While:
		walkStmt(st.Body, f)
	case *For:
		walkStmt(st.Body, f)
	case *Phase:
		walkStmt(st.Body, f)
	}
}

// walkExpr visits e and all of its subexpressions.
func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch ex := e.(type) {
	case *Index:
		walkExpr(ex.Inner, f)
	case *Unary:
		walkExpr(ex.X, f)
	case *Binary:
		walkExpr(ex.L, f)
		walkExpr(ex.R, f)
	case *Call:
		for _, a := range ex.Args {
			walkExpr(a, f)
		}
	}
}

// stmtExprs returns the expressions a statement evaluates directly
// (not those belonging to nested statements).
func stmtExprs(s Stmt) []Expr {
	switch st := s.(type) {
	case *VarDecl:
		if st.Init != nil {
			return []Expr{st.Init}
		}
	case *Assign:
		var out []Expr
		if st.Target.Index != nil {
			out = append(out, st.Target.Index)
		}
		return append(out, st.Value)
	case *If:
		return []Expr{st.Cond}
	case *While:
		return []Expr{st.Cond}
	case *For:
		return []Expr{st.Lo, st.Hi}
	case *Do:
		return append([]Expr{st.K}, st.Args...)
	case *Print:
		return st.Args
	case *CallStmt:
		return []Expr{st.Call}
	}
	return nil
}
