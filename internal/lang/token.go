// Package lang implements the PPM language front end: the paper's
// programming-model constructs (shared declarations, PPM functions,
// parallel phases, PPM_do) as actual language syntax over a small C-like
// core, the way the paper's source-to-source compiler provided them as
// extensions to C (§3.1, §3.4).
//
// The package contains a lexer, a recursive-descent parser, a semantic
// checker, a tree-walking interpreter that executes programs directly on
// the PPM runtime (internal/core), and a Go code generator that performs
// the paper's source-to-source translation onto this repository's public
// API.
//
// A flavor of the language (the paper's Section 5 example):
//
//	global shared float A[N];
//	node shared float B[K];
//	node shared int rank_in_A[K];
//
//	func binary_search(n int) {
//	    global phase {
//	        var b float = B[vp_node_rank];
//	        var left int = -1;
//	        var right int = n;
//	        while (left + 1 < right) {
//	            var middle int = (left + right) / 2;
//	            if (A[middle] < b) { left = middle; } else { right = middle; }
//	        }
//	        rank_in_A[vp_node_rank] = right;
//	    }
//	}
//
//	main {
//	    do (K) binary_search(N);
//	}
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	FLOAT
	STRING

	// punctuation
	LPAREN
	RPAREN
	LBRACE
	RBRACE
	LBRACKET
	RBRACKET
	COMMA
	SEMI

	// operators
	ASSIGN  // =
	PLUSEQ  // +=
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	EQ      // ==
	NE      // !=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
	ANDAND  // &&
	OROR    // ||
	NOT     // !

	// keywords
	KwGlobal
	KwNode
	KwShared
	KwPhase
	KwFunc
	KwMain
	KwDo
	KwVar
	KwConst
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwInt
	KwFloat
	KwTrue
	KwFalse
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INT: "integer literal",
	FLOAT: "float literal", STRING: "string literal",
	LPAREN: "'('", RPAREN: "')'", LBRACE: "'{'", RBRACE: "'}'",
	LBRACKET: "'['", RBRACKET: "']'", COMMA: "','", SEMI: "';'",
	ASSIGN: "'='", PLUSEQ: "'+='", PLUS: "'+'", MINUS: "'-'", STAR: "'*'",
	SLASH: "'/'", PERCENT: "'%'", EQ: "'=='", NE: "'!='", LT: "'<'",
	LE: "'<='", GT: "'>'", GE: "'>='", ANDAND: "'&&'", OROR: "'||'", NOT: "'!'",
	KwGlobal: "'global'", KwNode: "'node'", KwShared: "'shared'",
	KwPhase: "'phase'", KwFunc: "'func'", KwMain: "'main'", KwDo: "'do'",
	KwVar: "'var'", KwConst: "'const'", KwIf: "'if'", KwElse: "'else'",
	KwWhile: "'while'", KwFor: "'for'", KwReturn: "'return'",
	KwInt: "'int'", KwFloat: "'float'", KwTrue: "'true'", KwFalse: "'false'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]Kind{
	"global": KwGlobal, "node": KwNode, "shared": KwShared,
	"phase": KwPhase, "func": KwFunc, "main": KwMain, "do": KwDo,
	"var": KwVar, "const": KwConst, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn,
	"int": KwInt, "float": KwFloat, "true": KwTrue, "false": KwFalse,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// Error is a front-end diagnostic with a source position. Rule, when
// set, names the semantic check that produced it (see Diag).
type Error struct {
	Line, Col int
	Msg       string
	Rule      string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func errRule(rule string, line, col int, format string, args ...any) *Error {
	e := errf(line, col, format, args...)
	e.Rule = rule
	return e
}

// Lex tokenizes src. Comments run from // to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	emit := func(k Kind, text string, l, c int) {
		toks = append(toks, Token{Kind: k, Text: text, Line: l, Col: c})
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			l, cl := line, col
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			advance(j - i)
			if kw, ok := keywords[word]; ok {
				emit(kw, word, l, cl)
			} else {
				emit(IDENT, word, l, cl)
			}
		case unicode.IsDigit(rune(c)):
			l, cl := line, col
			j := i
			isFloat := false
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				if src[j] == '.' || src[j] == 'e' || src[j] == 'E' {
					isFloat = true
				}
				j++
			}
			text := src[i:j]
			advance(j - i)
			if isFloat {
				emit(FLOAT, text, l, cl)
			} else {
				emit(INT, text, l, cl)
			}
		case c == '"':
			l, cl := line, col
			j := i + 1
			var b strings.Builder
			for j < n && src[j] != '"' {
				if src[j] == '\\' && j+1 < n {
					j++
					switch src[j] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '"':
						b.WriteByte('"')
					case '\\':
						b.WriteByte('\\')
					default:
						return nil, errf(l, cl, "unknown escape \\%c", src[j])
					}
				} else {
					b.WriteByte(src[j])
				}
				j++
			}
			if j >= n {
				return nil, errf(l, cl, "unterminated string literal")
			}
			advance(j + 1 - i)
			emit(STRING, b.String(), l, cl)
		default:
			l, cl := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "+=":
				advance(2)
				emit(PLUSEQ, two, l, cl)
				continue
			case "==":
				advance(2)
				emit(EQ, two, l, cl)
				continue
			case "!=":
				advance(2)
				emit(NE, two, l, cl)
				continue
			case "<=":
				advance(2)
				emit(LE, two, l, cl)
				continue
			case ">=":
				advance(2)
				emit(GE, two, l, cl)
				continue
			case "&&":
				advance(2)
				emit(ANDAND, two, l, cl)
				continue
			case "||":
				advance(2)
				emit(OROR, two, l, cl)
				continue
			}
			single := map[byte]Kind{
				'(': LPAREN, ')': RPAREN, '{': LBRACE, '}': RBRACE,
				'[': LBRACKET, ']': RBRACKET, ',': COMMA, ';': SEMI,
				'=': ASSIGN, '+': PLUS, '-': MINUS, '*': STAR, '/': SLASH,
				'%': PERCENT, '<': LT, '>': GT, '!': NOT,
			}
			k, ok := single[c]
			if !ok {
				return nil, errf(l, cl, "unexpected character %q", string(c))
			}
			advance(1)
			emit(k, string(c), l, cl)
		}
	}
	toks = append(toks, Token{Kind: EOF, Line: line, Col: col})
	return toks, nil
}
