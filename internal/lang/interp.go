package lang

import (
	"fmt"
	"io"
	"math"
	"strings"

	"ppm/internal/core"
)

// value is a runtime value (ints and floats; bools exist transiently).
type value struct {
	t Type
	i int64
	f float64
	b bool
}

func intVal(i int64) value     { return value{t: TypeInt, i: i} }
func floatVal(f float64) value { return value{t: TypeFloat, f: f} }
func boolVal(b bool) value     { return value{t: TypeBool, b: b} }

func (v value) String() string {
	switch v.t {
	case TypeInt:
		return fmt.Sprintf("%d", v.i)
	case TypeFloat:
		return fmt.Sprintf("%g", v.f)
	case TypeBool:
		return fmt.Sprintf("%t", v.b)
	default:
		return "<invalid>"
	}
}

// sharedHandle binds a declared shared array to its runtime object.
type sharedHandle struct {
	decl *SharedDecl
	gi   *core.Global[int64]
	gf   *core.Global[float64]
	ni   *core.Node[int64]
	nf   *core.Node[float64]
}

// frame is the execution context of a statement: the node runtime, the
// current VP (nil in main), and whether a phase is open.
type frame struct {
	in      *interp
	rt      *core.Runtime
	vp      *core.VP
	inPhase bool
	scopes  []map[string]*value
}

// interp holds one node's interpreter state.
type interp struct {
	prog   *Program
	consts map[string]int64
	shared map[string]*sharedHandle
	funcs  map[string]*FuncDecl
	out    io.Writer
}

// Interpret type-checks and executes the program on a simulated PPM
// cluster. Program output (print statements) goes to out in deterministic
// order; pass nil to discard it.
func Interpret(prog *Program, opt core.Options, out io.Writer) (*core.Report, error) {
	if err := Check(prog); err != nil {
		return nil, err
	}
	if out == nil {
		out = io.Discard
	}
	return core.Run(opt, func(rt *core.Runtime) {
		in := &interp{
			prog:   prog,
			consts: map[string]int64{},
			shared: map[string]*sharedHandle{},
			funcs:  map[string]*FuncDecl{},
			out:    out,
		}
		for _, d := range prog.Consts {
			in.consts[d.Name] = d.Value
		}
		for _, f := range prog.Funcs {
			in.funcs[f.Name] = f
		}
		fr := &frame{in: in, rt: rt, scopes: []map[string]*value{{}}}
		// Allocate shared arrays in declaration order (collective).
		for _, d := range prog.Shared {
			size := fr.eval(d.Size)
			h := &sharedHandle{decl: d}
			n := int(size.i)
			switch {
			case d.GlobalScope && d.Elem == TypeInt:
				h.gi = core.AllocGlobal[int64](rt, d.Name, n)
			case d.GlobalScope && d.Elem == TypeFloat:
				h.gf = core.AllocGlobal[float64](rt, d.Name, n)
			case !d.GlobalScope && d.Elem == TypeInt:
				h.ni = core.AllocNode[int64](rt, d.Name, n)
			default:
				h.nf = core.AllocNode[float64](rt, d.Name, n)
			}
			in.shared[d.Name] = h
		}
		fr.execBlock(prog.Main)
	})
}

// InterpretSource is the one-call form: parse, check, run.
func InterpretSource(src string, opt core.Options, out io.Writer) (*core.Report, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Interpret(prog, opt, out)
}

func (fr *frame) fail(pos Token, format string, args ...any) {
	panic(errf(pos.Line, pos.Col, "runtime: %s", fmt.Sprintf(format, args...)))
}

func (fr *frame) push() { fr.scopes = append(fr.scopes, map[string]*value{}) }
func (fr *frame) pop()  { fr.scopes = fr.scopes[:len(fr.scopes)-1] }

func (fr *frame) declare(name string, v value) {
	nv := v
	fr.scopes[len(fr.scopes)-1][name] = &nv
}

func (fr *frame) lookup(name string) *value {
	for i := len(fr.scopes) - 1; i >= 0; i-- {
		if v, ok := fr.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func (fr *frame) execBlock(b *Block) {
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		fr.exec(s)
	}
}

func (fr *frame) exec(s Stmt) {
	switch st := s.(type) {
	case *Block:
		fr.execBlock(st)
	case *VarDecl:
		v := value{t: st.Type}
		if st.Init != nil {
			v = fr.eval(st.Init)
		}
		fr.declare(st.Name, v)
	case *Assign:
		fr.execAssign(st)
	case *If:
		if fr.eval(st.Cond).b {
			fr.execBlock(st.Then)
		} else if st.Else != nil {
			fr.execBlock(st.Else)
		}
	case *While:
		for fr.eval(st.Cond).b {
			fr.execBlock(st.Body)
		}
	case *For:
		lo := fr.eval(st.Lo).i
		hi := fr.eval(st.Hi).i
		fr.push()
		fr.declare(st.Var, intVal(lo))
		iv := fr.lookup(st.Var)
		for x := lo; x < hi; x++ {
			iv.i = x
			fr.execBlock(st.Body)
		}
		fr.pop()
	case *Phase:
		body := func() { fr.wasPhase(st) }
		if st.GlobalScope {
			fr.vp.GlobalPhase(body)
		} else {
			fr.vp.NodePhase(body)
		}
	case *Do:
		k := int(fr.eval(st.K).i)
		f := fr.in.funcs[st.Name]
		args := make([]value, len(st.Args))
		for i, a := range st.Args {
			args[i] = fr.eval(a)
		}
		fr.rt.Do(k, func(vp *core.VP) {
			vfr := &frame{in: fr.in, rt: fr.rt, vp: vp, scopes: []map[string]*value{{}}}
			for i, p := range f.Params {
				vfr.declare(p.Name, args[i])
			}
			vfr.execBlock(f.Body)
		})
	case *Print:
		var parts []string
		for _, a := range st.Args {
			if sl, ok := a.(*StrLit); ok {
				parts = append(parts, sl.Value)
				continue
			}
			parts = append(parts, fr.eval(a).String())
		}
		fmt.Fprintln(fr.in.out, strings.Join(parts, " "))
	case *Barrier:
		fr.rt.Barrier()
	case *CallStmt:
		fr.eval(st.Call)
	default:
		panic(fmt.Sprintf("lang: internal: unknown statement %T", s))
	}
}

// wasPhase executes a phase body with the frame marked in-phase.
func (fr *frame) wasPhase(st *Phase) {
	fr.inPhase = true
	defer func() { fr.inPhase = false }()
	fr.execBlock(st.Body)
}

func (fr *frame) execAssign(st *Assign) {
	v := fr.eval(st.Value)
	lv := st.Target
	if lv.Index == nil {
		dst := fr.lookup(lv.Name)
		if st.Add {
			switch dst.t {
			case TypeInt:
				dst.i += v.i
			case TypeFloat:
				dst.f += v.f
			}
			return
		}
		*dst = v
		return
	}
	h := fr.in.shared[lv.Name]
	idx := int(fr.eval(lv.Index).i)
	fr.storeShared(h, idx, v, st.Add, lv.Pos)
}

// storeShared writes or accumulates into a shared array under the current
// context's rules.
//
//ppmvet:ignore phasebound — the interpreter brokers every shared access
// of interpreted programs; lang.Check proves phase context statically on
// the .ppm side and VP.accessCheck still guards dynamically.
func (fr *frame) storeShared(h *sharedHandle, idx int, v value, add bool, pos Token) {
	if fr.vp != nil {
		// Inside a PPM function: phase semantics.
		switch {
		case h.gi != nil:
			if add {
				h.gi.Add(fr.vp, idx, v.i)
			} else {
				h.gi.Write(fr.vp, idx, v.i)
			}
		case h.gf != nil:
			if add {
				h.gf.Add(fr.vp, idx, v.f)
			} else {
				h.gf.Write(fr.vp, idx, v.f)
			}
		case h.ni != nil:
			if add {
				h.ni.Add(fr.vp, idx, v.i)
			} else {
				h.ni.Write(fr.vp, idx, v.i)
			}
		default:
			if add {
				h.nf.Add(fr.vp, idx, v.f)
			} else {
				h.nf.Write(fr.vp, idx, v.f)
			}
		}
		return
	}
	// Node-level setup/extraction: global arrays may only write the
	// owned partition; node arrays are local.
	switch {
	case h.gi != nil:
		lo, hi := h.gi.OwnerRange(fr.rt)
		if idx < lo || idx >= hi {
			fr.fail(pos, "node-level write to %s[%d] outside the owned range [%d,%d) — use a phase", h.decl.Name, idx, lo, hi)
		}
		if add {
			h.gi.Local(fr.rt)[idx-lo] += v.i
		} else {
			h.gi.Local(fr.rt)[idx-lo] = v.i
		}
	case h.gf != nil:
		lo, hi := h.gf.OwnerRange(fr.rt)
		if idx < lo || idx >= hi {
			fr.fail(pos, "node-level write to %s[%d] outside the owned range [%d,%d) — use a phase", h.decl.Name, idx, lo, hi)
		}
		if add {
			h.gf.Local(fr.rt)[idx-lo] += v.f
		} else {
			h.gf.Local(fr.rt)[idx-lo] = v.f
		}
	case h.ni != nil:
		if add {
			h.ni.Local(fr.rt)[idx] += v.i
		} else {
			h.ni.Local(fr.rt)[idx] = v.i
		}
	default:
		if add {
			h.nf.Local(fr.rt)[idx] += v.f
		} else {
			h.nf.Local(fr.rt)[idx] = v.f
		}
	}
}

// loadShared reads a shared array element under the current context.
//
//ppmvet:ignore phasebound — see storeShared: phase context is checked on
// the .ppm side by lang.Check and dynamically by VP.accessCheck.
func (fr *frame) loadShared(h *sharedHandle, idx int) value {
	if fr.vp != nil {
		switch {
		case h.gi != nil:
			return intVal(h.gi.Read(fr.vp, idx))
		case h.gf != nil:
			return floatVal(h.gf.Read(fr.vp, idx))
		case h.ni != nil:
			return intVal(h.ni.Read(fr.vp, idx))
		default:
			return floatVal(h.nf.Read(fr.vp, idx))
		}
	}
	switch {
	case h.gi != nil:
		return intVal(h.gi.At(fr.rt, idx))
	case h.gf != nil:
		return floatVal(h.gf.At(fr.rt, idx))
	case h.ni != nil:
		return intVal(h.ni.Local(fr.rt)[idx])
	default:
		return floatVal(h.nf.Local(fr.rt)[idx])
	}
}

func (fr *frame) eval(e Expr) value {
	switch ex := e.(type) {
	case *IntLit:
		return intVal(ex.Value)
	case *FloatLit:
		return floatVal(ex.Value)
	case *BoolLit:
		return boolVal(ex.Value)
	case *Ident:
		if v, ok := fr.in.consts[ex.Name]; ok {
			return intVal(v)
		}
		if v := fr.lookup(ex.Name); v != nil {
			return *v
		}
		return fr.builtinIdent(ex)
	case *Index:
		h := fr.in.shared[ex.Name]
		idx := int(fr.eval(ex.Inner).i)
		return fr.loadShared(h, idx)
	case *Unary:
		x := fr.eval(ex.X)
		switch ex.Op {
		case MINUS:
			if x.t == TypeInt {
				return intVal(-x.i)
			}
			return floatVal(-x.f)
		default: // NOT
			return boolVal(!x.b)
		}
	case *Binary:
		return fr.evalBinary(ex)
	case *Call:
		return fr.evalCall(ex)
	default:
		panic(fmt.Sprintf("lang: internal: unknown expression %T", e))
	}
}

func (fr *frame) builtinIdent(ex *Ident) value {
	switch ex.Name {
	case "node_id":
		return intVal(int64(fr.rt.NodeID()))
	case "node_count":
		return intVal(int64(fr.rt.NodeCount()))
	case "cores_per_node":
		return intVal(int64(fr.rt.CoresPerNode()))
	case "vp_node_rank":
		return intVal(int64(fr.vp.NodeRank()))
	case "vp_global_rank":
		return intVal(int64(fr.vp.GlobalRank()))
	case "vp_count":
		return intVal(int64(fr.vp.K()))
	default:
		panic(fmt.Sprintf("lang: internal: unknown builtin identifier %q", ex.Name))
	}
}

func (fr *frame) evalCall(ex *Call) value {
	switch ex.Name {
	case "int":
		v := fr.eval(ex.Args[0])
		if v.t == TypeInt {
			return v
		}
		return intVal(int64(v.f))
	case "float":
		v := fr.eval(ex.Args[0])
		if v.t == TypeFloat {
			return v
		}
		return floatVal(float64(v.i))
	case "my_lo", "my_hi":
		name := ex.Args[0].(*Ident).Name
		h := fr.in.shared[name]
		var lo, hi int
		if h.gi != nil {
			lo, hi = h.gi.OwnerRange(fr.rt)
		} else {
			lo, hi = h.gf.OwnerRange(fr.rt)
		}
		if ex.Name == "my_lo" {
			return intVal(int64(lo))
		}
		return intVal(int64(hi))
	case "reduce_sum":
		return floatVal(fr.rt.AllReduce(fr.eval(ex.Args[0]).f, core.OpSum))
	case "reduce_max":
		return floatVal(fr.rt.AllReduce(fr.eval(ex.Args[0]).f, core.OpMax))
	case "prefix_sum":
		return intVal(int64(fr.rt.PrefixSumInt(int(fr.eval(ex.Args[0]).i))))
	case "sqrt":
		return floatVal(math.Sqrt(fr.eval(ex.Args[0]).f))
	case "abs":
		return floatVal(math.Abs(fr.eval(ex.Args[0]).f))
	case "log":
		return floatVal(math.Log(fr.eval(ex.Args[0]).f))
	case "charge_flops":
		n := fr.eval(ex.Args[0]).i
		if fr.vp != nil {
			fr.vp.ChargeFlops(n)
		} else {
			fr.rt.ChargeFlops(n)
		}
		return intVal(n)
	default:
		panic(fmt.Sprintf("lang: internal: unknown builtin call %q", ex.Name))
	}
}

func (fr *frame) evalBinary(ex *Binary) value {
	l := fr.eval(ex.L)
	// Short-circuit logical operators.
	if ex.Op == ANDAND {
		if !l.b {
			return boolVal(false)
		}
		return fr.eval(ex.R)
	}
	if ex.Op == OROR {
		if l.b {
			return boolVal(true)
		}
		return fr.eval(ex.R)
	}
	r := fr.eval(ex.R)
	if l.t == TypeInt {
		switch ex.Op {
		case PLUS:
			return intVal(l.i + r.i)
		case MINUS:
			return intVal(l.i - r.i)
		case STAR:
			return intVal(l.i * r.i)
		case SLASH:
			if r.i == 0 {
				fr.fail(ex.Pos, "integer division by zero")
			}
			return intVal(l.i / r.i)
		case PERCENT:
			if r.i == 0 {
				fr.fail(ex.Pos, "integer modulo by zero")
			}
			return intVal(l.i % r.i)
		case EQ:
			return boolVal(l.i == r.i)
		case NE:
			return boolVal(l.i != r.i)
		case LT:
			return boolVal(l.i < r.i)
		case LE:
			return boolVal(l.i <= r.i)
		case GT:
			return boolVal(l.i > r.i)
		case GE:
			return boolVal(l.i >= r.i)
		}
	}
	switch ex.Op {
	case PLUS:
		return floatVal(l.f + r.f)
	case MINUS:
		return floatVal(l.f - r.f)
	case STAR:
		return floatVal(l.f * r.f)
	case SLASH:
		return floatVal(l.f / r.f)
	case EQ:
		return boolVal(l.f == r.f)
	case NE:
		return boolVal(l.f != r.f)
	case LT:
		return boolVal(l.f < r.f)
	case LE:
		return boolVal(l.f <= r.f)
	case GT:
		return boolVal(l.f > r.f)
	case GE:
		return boolVal(l.f >= r.f)
	}
	panic(fmt.Sprintf("lang: internal: unknown binary op %v", ex.Op))
}
