package lang

// Type is the language's value type system: 64-bit integers and floats
// (plus bool, which exists only inside expressions).
type Type int

// Types.
const (
	TypeInvalid Type = iota
	TypeInt
	TypeFloat
	TypeBool
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Program is a parsed compilation unit.
type Program struct {
	Consts  []*ConstDecl
	Shared  []*SharedDecl
	Funcs   []*FuncDecl
	Main    *Block
	MainPos Token
}

// ConstDecl is `const NAME = <int literal>;`.
type ConstDecl struct {
	Name  string
	Value int64
	Pos   Token
}

// SharedDecl is `global|node shared int|float NAME[expr];`.
type SharedDecl struct {
	GlobalScope bool // true: PPM_global_shared; false: PPM_node_shared
	Elem        Type
	Name        string
	Size        Expr
	Pos         Token
}

// FuncDecl is a PPM function: `func NAME(params) { ... }`, invoked by do.
type FuncDecl struct {
	Name   string
	Params []Param
	Body   *Block
	Pos    Token
}

// Param is one scalar parameter of a PPM function.
type Param struct {
	Name string
	Type Type
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Stmts []Stmt
	Pos   Token
}

// VarDecl is `var NAME type [= expr];`.
type VarDecl struct {
	Name string
	Type Type
	Init Expr // may be nil
	Pos  Token
}

// Assign is `lvalue = expr;` or `lvalue += expr;`.
type Assign struct {
	Target *LValue
	Add    bool // += (on shared arrays this is the combining Add)
	Value  Expr
	Pos    Token
}

// LValue is a scalar variable or an array element.
type LValue struct {
	Name  string
	Index Expr // nil for scalars
	Pos   Token
}

// If is `if (cond) block [else block]`.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Pos  Token
}

// While is `while (cond) block`.
type While struct {
	Cond Expr
	Body *Block
	Pos  Token
}

// For is `for NAME = lo .. hi block` (half-open, ascending).
type For struct {
	Var    string
	Lo, Hi Expr
	Body   *Block
	Pos    Token
}

// Phase is `global|node phase block`, legal only inside PPM functions.
type Phase struct {
	GlobalScope bool
	Body        *Block
	Pos         Token
}

// Do is `do (K) fname(args);`, legal only in main.
type Do struct {
	K    Expr
	Name string
	Args []Expr
	Pos  Token
}

// Print is `print(args...);` — the language's only I/O.
type Print struct {
	Args []Expr
	Pos  Token
}

// Barrier is `barrier;` (node-level synchronization, main only).
type Barrier struct{ Pos Token }

// CallStmt is a builtin call in statement position with its result
// discarded (e.g. `charge_flops(100);`).
type CallStmt struct {
	Call *Call
	Pos  Token
}

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Phase) stmtNode()    {}
func (*Do) stmtNode()       {}
func (*Print) stmtNode()    {}
func (*Barrier) stmtNode()  {}
func (*CallStmt) stmtNode() {}

// Expr is an expression node. Every expression carries the type the
// checker assigned.
type Expr interface {
	exprNode()
	ExprType() Type
	setType(Type)
	pos() Token
}

type typed struct{ t Type }

func (t *typed) ExprType() Type  { return t.t }
func (t *typed) setType(tt Type) { t.t = tt }

// IntLit is an integer literal.
type IntLit struct {
	typed
	Value int64
	Pos   Token
}

// FloatLit is a float literal.
type FloatLit struct {
	typed
	Value float64
	Pos   Token
}

// BoolLit is `true` or `false`.
type BoolLit struct {
	typed
	Value bool
	Pos   Token
}

// StrLit is a string literal (only valid as a print argument).
type StrLit struct {
	typed
	Value string
	Pos   Token
}

// Ident references a variable, parameter, constant, or builtin.
type Ident struct {
	typed
	Name string
	Pos  Token
}

// Index is `NAME[expr]`: a shared-array element read.
type Index struct {
	typed
	Name  string
	Inner Expr
	Pos   Token
}

// Unary is `-x` or `!x`.
type Unary struct {
	typed
	Op  Kind
	X   Expr
	Pos Token
}

// Binary is a binary operation.
type Binary struct {
	typed
	Op   Kind
	L, R Expr
	Pos  Token
}

// Call is a builtin call in expression position (e.g. float(x), int(x)).
type Call struct {
	typed
	Name string
	Args []Expr
	Pos  Token
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*BoolLit) exprNode()  {}
func (*StrLit) exprNode()   {}
func (*Ident) exprNode()    {}
func (*Index) exprNode()    {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Call) exprNode()     {}

func (e *IntLit) pos() Token   { return e.Pos }
func (e *FloatLit) pos() Token { return e.Pos }
func (e *BoolLit) pos() Token  { return e.Pos }
func (e *StrLit) pos() Token   { return e.Pos }
func (e *Ident) pos() Token    { return e.Pos }
func (e *Index) pos() Token    { return e.Pos }
func (e *Unary) pos() Token    { return e.Pos }
func (e *Binary) pos() Token   { return e.Pos }
func (e *Call) pos() Token     { return e.Pos }
