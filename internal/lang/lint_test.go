package lang

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// finding is the (rule, line, severity) triple a fixture is expected to
// produce.
type finding struct {
	rule string
	line int
	sev  Severity
}

// TestAnalyzeFixtures runs Analyze over the .ppm fixtures in testdata,
// one per diagnostic rule, and asserts the exact findings (both
// directions: everything expected fires, nothing else does).
func TestAnalyzeFixtures(t *testing.T) {
	cases := []struct {
		file string
		want []finding
	}{
		{"phasebound.ppm", []finding{
			{"phasebound", 6, SevError},
			{"phasebound", 7, SevError},
		}},
		{"constwrite.ppm", []finding{
			{"constwrite", 8, SevWarning},
			{"phaserace", 8, SevWarning},
			{"constwrite", 9, SevWarning},
			{"phaserace", 9, SevWarning},
			{"constwrite", 10, SevWarning},
			{"phaserace", 10, SevWarning},
		}},
		{"staleread.ppm", []finding{
			{"staleread", 8, SevWarning},
			{"staleread", 10, SevWarning},
			{"phaserace", 11, SevWarning},
		}},
		{"unusedshared.ppm", []finding{
			{"unusedshared", 3, SevWarning},
		}},
		{"bad_phase.ppm", []finding{
			{"phasebound", 8, SevError},
			{"constwrite", 10, SevWarning},
			{"phaserace", 10, SevWarning},
		}},
		{"phaserace.ppm", []finding{
			{"phaserace", 12, SevWarning},
			{"phaserace", 14, SevWarning},
			{"phaserace.possible", 16, SevWarning},
			{"phaserace", 22, SevWarning},
			{"phaserace.possible", 30, SevWarning},
		}},
		{"clean.ppm", nil},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			got := Analyze(prog)
			gotSet := map[string]bool{}
			for _, d := range got {
				gotSet[fmt.Sprintf("%s@%d:%s", d.Rule, d.Line, d.Sev)] = true
			}
			for _, w := range tc.want {
				k := fmt.Sprintf("%s@%d:%s", w.rule, w.line, w.sev)
				if !gotSet[k] {
					t.Errorf("missing expected diagnostic %s; got %v", k, got)
				}
			}
			if len(got) != len(tc.want) {
				t.Errorf("got %d diagnostics, want %d:\n%v", len(got), len(tc.want), got)
			}
		})
	}
}

// TestAnalyzeMatchesCheck pins the contract that Check returns exactly
// the first error Analyze reports, so the two entry points cannot
// drift.
func TestAnalyzeMatchesCheck(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "bad_phase.ppm"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	cerr := Check(prog)
	if cerr == nil {
		t.Fatal("Check: expected an error")
	}
	e, ok := cerr.(*Error)
	if !ok {
		t.Fatalf("Check: expected *Error, got %T", cerr)
	}
	var firstErr *Diag
	for _, d := range Analyze(prog) {
		if d.Sev == SevError {
			firstErr = &d
			break
		}
	}
	if firstErr == nil {
		t.Fatal("Analyze: expected at least one error")
	}
	if e.Line != firstErr.Line || e.Col != firstErr.Col || e.Msg != firstErr.Msg {
		t.Errorf("Check error %v != first Analyze error %v", e, firstErr)
	}
	if e.Rule != "phasebound" {
		t.Errorf("Check error rule = %q, want phasebound", e.Rule)
	}
}

// TestAnalyzeExamples keeps the shipped example programs clean under
// every lint rule.
func TestAnalyzeExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "language", "*.ppm"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", f, err)
		}
		if diags := Analyze(prog); len(diags) != 0 {
			t.Errorf("%s: expected no diagnostics, got %v", f, diags)
		}
	}
}
