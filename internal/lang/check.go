package lang

import "fmt"

// context distinguishes where code executes, because the model restricts
// what each context may do (the checker enforces the same rules the
// runtime enforces dynamically, at compile time — the advantage of having
// a language).
type context int

const (
	ctxMain  context = iota // node-level SPMD code
	ctxFunc                 // PPM function body, outside any phase
	ctxPhase                // inside a parallel phase
)

// Builtin describes one builtin identifier or call.
type Builtin struct {
	Name   string
	Type   Type // result type
	Arity  int  // -1: not callable (plain identifier)
	ArgTyp Type // argument type for arity-1 builtins
	Ctx    []context
	Doc    string
}

// Builtins is the language's builtin surface, mirroring the paper's
// system variables and utility functions.
var Builtins = []Builtin{
	{Name: "node_id", Type: TypeInt, Arity: -1, Ctx: []context{ctxMain, ctxFunc, ctxPhase}, Doc: "PPM_node_id"},
	{Name: "node_count", Type: TypeInt, Arity: -1, Ctx: []context{ctxMain, ctxFunc, ctxPhase}, Doc: "PPM_node_count"},
	{Name: "cores_per_node", Type: TypeInt, Arity: -1, Ctx: []context{ctxMain, ctxFunc, ctxPhase}, Doc: "PPM_cores_per_node"},
	{Name: "vp_node_rank", Type: TypeInt, Arity: -1, Ctx: []context{ctxFunc, ctxPhase}, Doc: "PPM_VP_node_rank()"},
	{Name: "vp_global_rank", Type: TypeInt, Arity: -1, Ctx: []context{ctxFunc, ctxPhase}, Doc: "PPM_VP_global_rank()"},
	{Name: "vp_count", Type: TypeInt, Arity: -1, Ctx: []context{ctxFunc, ctxPhase}, Doc: "K of the enclosing do"},
	{Name: "my_lo", Type: TypeInt, Arity: 0, Ctx: []context{ctxMain, ctxFunc, ctxPhase}, Doc: "first owned index of a global array"},
	{Name: "my_hi", Type: TypeInt, Arity: 0, Ctx: []context{ctxMain, ctxFunc, ctxPhase}, Doc: "one past the last owned index"},
	{Name: "reduce_sum", Type: TypeFloat, Arity: 1, ArgTyp: TypeFloat, Ctx: []context{ctxMain}, Doc: "all-nodes sum reduction"},
	{Name: "reduce_max", Type: TypeFloat, Arity: 1, ArgTyp: TypeFloat, Ctx: []context{ctxMain}, Doc: "all-nodes max reduction"},
	{Name: "prefix_sum", Type: TypeInt, Arity: 1, ArgTyp: TypeInt, Ctx: []context{ctxMain}, Doc: "exclusive prefix sum over nodes"},
	{Name: "sqrt", Type: TypeFloat, Arity: 1, ArgTyp: TypeFloat, Ctx: []context{ctxMain, ctxFunc, ctxPhase}, Doc: "square root"},
	{Name: "abs", Type: TypeFloat, Arity: 1, ArgTyp: TypeFloat, Ctx: []context{ctxMain, ctxFunc, ctxPhase}, Doc: "absolute value"},
	{Name: "log", Type: TypeFloat, Arity: 1, ArgTyp: TypeFloat, Ctx: []context{ctxMain, ctxFunc, ctxPhase}, Doc: "natural logarithm"},
	{Name: "charge_flops", Type: TypeInt, Arity: 1, ArgTyp: TypeInt, Ctx: []context{ctxMain, ctxFunc, ctxPhase}, Doc: "account modeled computation"},
}

func builtinByName(name string) *Builtin {
	for i := range Builtins {
		if Builtins[i].Name == name {
			return &Builtins[i]
		}
	}
	return nil
}

func ctxAllowed(b *Builtin, ctx context) bool {
	for _, c := range b.Ctx {
		if c == ctx {
			return true
		}
	}
	return false
}

// symbol is a checked name binding.
type symbol struct {
	typ    Type
	shared *SharedDecl // non-nil for shared arrays
	isVar  bool
}

type checker struct {
	prog    *Program
	consts  map[string]int64
	shared  map[string]*SharedDecl
	funcs   map[string]*FuncDecl
	scopes  []map[string]symbol
	ctx     context
	inPhase bool
	diags   []Diag
}

// Check validates the program semantically and annotates expression
// types. It must run before interpretation or code generation. It
// returns the first problem found; Analyze reports all of them.
func Check(prog *Program) error {
	c := newChecker(prog)
	c.run()
	if len(c.diags) > 0 {
		d := c.diags[0]
		return &Error{Line: d.Line, Col: d.Col, Msg: d.Msg, Rule: d.Rule}
	}
	return nil
}

func newChecker(prog *Program) *checker {
	return &checker{
		prog:   prog,
		consts: map[string]int64{},
		shared: map[string]*SharedDecl{},
		funcs:  map[string]*FuncDecl{},
	}
}

// record converts an error into a diagnostic. The checker records
// problems statement by statement and keeps going, so one mistake does
// not hide the rest of the program's.
func (c *checker) record(err error) {
	if err == nil {
		return
	}
	if e, ok := err.(*Error); ok {
		rule := e.Rule
		if rule == "" {
			rule = "check"
		}
		c.diags = append(c.diags, Diag{Line: e.Line, Col: e.Col, Rule: rule, Sev: SevError, Msg: e.Msg})
		return
	}
	c.diags = append(c.diags, Diag{Rule: "internal", Sev: SevError, Msg: err.Error()})
}

func (c *checker) run() {
	for _, d := range c.prog.Consts {
		if _, dup := c.consts[d.Name]; dup {
			c.record(errf(d.Pos.Line, d.Pos.Col, "duplicate const %q", d.Name))
			continue
		}
		c.consts[d.Name] = d.Value
	}
	for _, d := range c.prog.Shared {
		if _, dup := c.shared[d.Name]; dup {
			c.record(errf(d.Pos.Line, d.Pos.Col, "duplicate shared array %q", d.Name))
			continue
		}
		if _, clash := c.consts[d.Name]; clash {
			c.record(errf(d.Pos.Line, d.Pos.Col, "shared array %q collides with a const", d.Name))
			continue
		}
		c.shared[d.Name] = d
		// Sizes are node-level expressions evaluated once at startup.
		c.ctx = ctxMain
		c.scopes = []map[string]symbol{{}}
		t, err := c.expr(d.Size)
		if err != nil {
			c.record(err)
		} else if t != TypeInt {
			c.record(errf(d.Pos.Line, d.Pos.Col, "size of %q must be int, got %v", d.Name, t))
		}
	}
	for _, f := range c.prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			c.record(errf(f.Pos.Line, f.Pos.Col, "duplicate function %q", f.Name))
			continue
		}
		if builtinByName(f.Name) != nil || f.Name == "print" || f.Name == "barrier" {
			c.record(errf(f.Pos.Line, f.Pos.Col, "function %q shadows a builtin", f.Name))
			continue
		}
		c.funcs[f.Name] = f
	}
	for _, f := range c.prog.Funcs {
		c.ctx = ctxFunc
		c.inPhase = false
		c.scopes = []map[string]symbol{{}}
		for _, pr := range f.Params {
			c.record(c.declare(pr.Name, symbol{typ: pr.Type, isVar: true}, f.Pos))
		}
		c.block(f.Body)
	}
	c.ctx = ctxMain
	c.inPhase = false
	c.scopes = []map[string]symbol{{}}
	c.block(c.prog.Main)
}

func (c *checker) declare(name string, s symbol, pos Token) error {
	if _, dup := c.scopes[len(c.scopes)-1][name]; dup {
		return errf(pos.Line, pos.Col, "duplicate declaration of %q in this scope", name)
	}
	if builtinByName(name) != nil || name == "print" || name == "barrier" || name == "to" {
		return errf(pos.Line, pos.Col, "%q shadows a builtin", name)
	}
	if _, clash := c.shared[name]; clash {
		return errf(pos.Line, pos.Col, "%q shadows a shared array", name)
	}
	if _, clash := c.consts[name]; clash {
		return errf(pos.Line, pos.Col, "%q shadows a const", name)
	}
	c.scopes[len(c.scopes)-1][name] = s
	return nil
}

func (c *checker) lookup(name string) (symbol, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	return symbol{}, false
}

func (c *checker) block(b *Block) {
	c.scopes = append(c.scopes, map[string]symbol{})
	defer func() { c.scopes = c.scopes[:len(c.scopes)-1] }()
	for _, s := range b.Stmts {
		c.record(c.stmt(s))
	}
}

func (c *checker) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		c.block(st)
		return nil
	case *VarDecl:
		if st.Init != nil {
			t, err := c.expr(st.Init)
			if err != nil {
				c.record(err)
			} else if t != st.Type {
				c.record(errf(st.Pos.Line, st.Pos.Col, "cannot initialize %v variable %q with %v value (use int()/float())", st.Type, st.Name, t))
			}
		}
		// Declare even when the initializer is bad, so later uses of
		// the variable do not cascade into "undefined" errors.
		return c.declare(st.Name, symbol{typ: st.Type, isVar: true}, st.Pos)
	case *Assign:
		return c.assign(st)
	case *If:
		t, err := c.expr(st.Cond)
		if err != nil {
			c.record(err)
		} else if t != TypeBool {
			c.record(errf(st.Pos.Line, st.Pos.Col, "if condition must be bool, got %v", t))
		}
		c.block(st.Then)
		if st.Else != nil {
			c.block(st.Else)
		}
		return nil
	case *While:
		t, err := c.expr(st.Cond)
		if err != nil {
			c.record(err)
		} else if t != TypeBool {
			c.record(errf(st.Pos.Line, st.Pos.Col, "while condition must be bool, got %v", t))
		}
		c.block(st.Body)
		return nil
	case *For:
		lt, lerr := c.expr(st.Lo)
		ht, herr := c.expr(st.Hi)
		if lerr != nil || herr != nil {
			c.record(lerr)
			c.record(herr)
		} else if lt != TypeInt || ht != TypeInt {
			c.record(errf(st.Pos.Line, st.Pos.Col, "for bounds must be int"))
		}
		c.scopes = append(c.scopes, map[string]symbol{})
		defer func() { c.scopes = c.scopes[:len(c.scopes)-1] }()
		c.record(c.declare(st.Var, symbol{typ: TypeInt, isVar: true}, st.Pos))
		c.block(st.Body)
		return nil
	case *Phase:
		if c.ctx == ctxMain {
			return errf(st.Pos.Line, st.Pos.Col, "phases are only allowed inside PPM functions (the paper's PPM functions)")
		}
		if c.inPhase {
			return errf(st.Pos.Line, st.Pos.Col, "nested phase constructs are not allowed")
		}
		c.inPhase = true
		prev := c.ctx
		c.ctx = ctxPhase
		c.block(st.Body)
		c.ctx = prev
		c.inPhase = false
		return nil
	case *Do:
		if c.ctx != ctxMain {
			return errf(st.Pos.Line, st.Pos.Col, "do is only allowed in main (node-level code)")
		}
		kt, err := c.expr(st.K)
		if err != nil {
			c.record(err)
		} else if kt != TypeInt {
			c.record(errf(st.Pos.Line, st.Pos.Col, "do count must be int, got %v", kt))
		}
		f, ok := c.funcs[st.Name]
		if !ok {
			return errf(st.Pos.Line, st.Pos.Col, "do of undefined function %q", st.Name)
		}
		if len(st.Args) != len(f.Params) {
			return errf(st.Pos.Line, st.Pos.Col, "%q takes %d arguments, got %d", st.Name, len(f.Params), len(st.Args))
		}
		for i, a := range st.Args {
			at, err := c.expr(a)
			if err != nil {
				c.record(err)
				continue
			}
			if at != f.Params[i].Type {
				c.record(errf(st.Pos.Line, st.Pos.Col, "argument %d of %q must be %v, got %v", i+1, st.Name, f.Params[i].Type, at))
			}
		}
		return nil
	case *Print:
		if c.ctx != ctxMain {
			return errf(st.Pos.Line, st.Pos.Col, "print is node-level only (virtual processors have no I/O)")
		}
		for _, a := range st.Args {
			if _, ok := a.(*StrLit); ok {
				continue
			}
			if _, err := c.expr(a); err != nil {
				c.record(err)
			}
		}
		return nil
	case *Barrier:
		if c.ctx != ctxMain {
			return errf(st.Pos.Line, st.Pos.Col, "barrier is node-level (phases synchronize implicitly)")
		}
		return nil
	case *CallStmt:
		_, err := c.expr(st.Call)
		return err
	default:
		return fmt.Errorf("lang: internal: unknown statement %T", s)
	}
}

func (c *checker) assign(st *Assign) error {
	vt, err := c.expr(st.Value)
	if err != nil {
		return err
	}
	lv := st.Target
	if lv.Index != nil {
		sh, ok := c.shared[lv.Name]
		if !ok {
			return errf(lv.Pos.Line, lv.Pos.Col, "%q is not a shared array", lv.Name)
		}
		it, err := c.expr(lv.Index)
		if err != nil {
			return err
		}
		if it != TypeInt {
			return errf(lv.Pos.Line, lv.Pos.Col, "array index must be int, got %v", it)
		}
		if vt != sh.Elem {
			return errf(lv.Pos.Line, lv.Pos.Col, "cannot assign %v to %v array %q", vt, sh.Elem, lv.Name)
		}
		if c.ctx == ctxFunc {
			return errRule("phasebound", lv.Pos.Line, lv.Pos.Col, "shared array %q may only be accessed inside a phase", lv.Name)
		}
		return nil
	}
	s, ok := c.lookup(lv.Name)
	if !ok || !s.isVar {
		return errf(lv.Pos.Line, lv.Pos.Col, "assignment to undeclared variable %q", lv.Name)
	}
	if vt != s.typ {
		return errf(lv.Pos.Line, lv.Pos.Col, "cannot assign %v to %v variable %q", vt, s.typ, lv.Name)
	}
	return nil
}

func (c *checker) expr(e Expr) (Type, error) {
	switch ex := e.(type) {
	case *IntLit:
		ex.setType(TypeInt)
	case *FloatLit:
		ex.setType(TypeFloat)
	case *BoolLit:
		ex.setType(TypeBool)
	case *StrLit:
		return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "string literals are only allowed in print")
	case *Ident:
		if _, ok := c.consts[ex.Name]; ok {
			ex.setType(TypeInt)
			break
		}
		if s, ok := c.lookup(ex.Name); ok {
			ex.setType(s.typ)
			break
		}
		if b := builtinByName(ex.Name); b != nil && b.Arity == -1 {
			if !ctxAllowed(b, c.ctx) {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%q is not available in this context", ex.Name)
			}
			ex.setType(b.Type)
			break
		}
		return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "undefined identifier %q", ex.Name)
	case *Index:
		sh, ok := c.shared[ex.Name]
		if !ok {
			return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%q is not a shared array", ex.Name)
		}
		it, err := c.expr(ex.Inner)
		if err != nil {
			return TypeInvalid, err
		}
		if it != TypeInt {
			return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "array index must be int, got %v", it)
		}
		if c.ctx == ctxFunc {
			return TypeInvalid, errRule("phasebound", ex.Pos.Line, ex.Pos.Col, "shared array %q may only be accessed inside a phase", ex.Name)
		}
		ex.setType(sh.Elem)
	case *Unary:
		xt, err := c.expr(ex.X)
		if err != nil {
			return TypeInvalid, err
		}
		switch ex.Op {
		case MINUS:
			if xt != TypeInt && xt != TypeFloat {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "unary '-' needs a numeric operand, got %v", xt)
			}
			ex.setType(xt)
		case NOT:
			if xt != TypeBool {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "'!' needs a bool operand, got %v", xt)
			}
			ex.setType(TypeBool)
		}
	case *Binary:
		lt, err := c.expr(ex.L)
		if err != nil {
			return TypeInvalid, err
		}
		rt, err := c.expr(ex.R)
		if err != nil {
			return TypeInvalid, err
		}
		switch ex.Op {
		case PLUS, MINUS, STAR, SLASH, PERCENT:
			if lt != rt || (lt != TypeInt && lt != TypeFloat) {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "arithmetic needs matching numeric operands, got %v and %v (use int()/float())", lt, rt)
			}
			if ex.Op == PERCENT && lt != TypeInt {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "'%%' needs int operands")
			}
			ex.setType(lt)
		case EQ, NE, LT, LE, GT, GE:
			if lt != rt || (lt != TypeInt && lt != TypeFloat) {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "comparison needs matching numeric operands, got %v and %v", lt, rt)
			}
			ex.setType(TypeBool)
		case ANDAND, OROR:
			if lt != TypeBool || rt != TypeBool {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "logical operators need bool operands")
			}
			ex.setType(TypeBool)
		}
	case *Call:
		switch ex.Name {
		case "int", "float":
			if len(ex.Args) != 1 {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%s() takes one argument", ex.Name)
			}
			at, err := c.expr(ex.Args[0])
			if err != nil {
				return TypeInvalid, err
			}
			if at != TypeInt && at != TypeFloat {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%s() needs a numeric argument", ex.Name)
			}
			if ex.Name == "int" {
				ex.setType(TypeInt)
			} else {
				ex.setType(TypeFloat)
			}
		case "my_lo", "my_hi":
			if len(ex.Args) != 1 {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%s() takes the shared array as its argument", ex.Name)
			}
			id, ok := ex.Args[0].(*Ident)
			if !ok {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%s() takes a shared array name", ex.Name)
			}
			sh, ok := c.shared[id.Name]
			if !ok || !sh.GlobalScope {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%s() needs a global shared array, %q is not one", ex.Name, id.Name)
			}
			id.setType(TypeInt) // marker; never evaluated as a value
			ex.setType(TypeInt)
		default:
			b := builtinByName(ex.Name)
			if b == nil || b.Arity < 0 {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "unknown function %q", ex.Name)
			}
			if !ctxAllowed(b, c.ctx) {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%q is not available in this context", ex.Name)
			}
			if len(ex.Args) != 1 {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%s() takes one argument", ex.Name)
			}
			at, err := c.expr(ex.Args[0])
			if err != nil {
				return TypeInvalid, err
			}
			if at != b.ArgTyp {
				return TypeInvalid, errf(ex.Pos.Line, ex.Pos.Col, "%s() needs a %v argument, got %v", ex.Name, b.ArgTyp, at)
			}
			ex.setType(b.Type)
		}
	default:
		return TypeInvalid, fmt.Errorf("lang: internal: unknown expression %T", e)
	}
	return e.ExprType(), nil
}
