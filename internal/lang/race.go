package lang

import "fmt"

// This file implements lintPhaseRace, the .ppm counterpart of the
// Go-side phaserace analyzer: it models each in-phase write's index as
// an affine form over the rank builtins, loop variables, and owned-range
// bounds, then decides pairwise whether two VP instances of the phase
// can write the same element. Writes a VP combines with += never
// conflict (the commit adds them); plain writes conflict exactly when
// the index sets of two distinct VPs intersect. Proven intersections
// are reported as "phaserace", undecidable index sets as
// "phaserace.possible".

// Symbol kinds of the affine forms. Each kind fixes how the symbol's
// value differs between two VP instances of the same phase, which is
// all the pairwise test needs.
const (
	rNodeRank   = iota // vp_node_rank: distinct across a node's VPs
	rGlobalRank        // vp_global_rank: distinct across all VPs
	rNodeID            // node_id: distinct across nodes
	rOwnerLo           // my_lo(A): per-node partition start
	rOwnerHi           // my_hi(A): per-node partition end
	rNodeVar           // per-node value (function parameters)
	rUniform           // same value for every VP (vp_count, rank-free vars)
	rLoop              // for-loop offset from its lower bound: [0, extent)
	rVarying           // reassigned rank-free variable: varies per iteration
	rStride            // k*step accumulated by a stride loop
)

type rsym struct {
	kind int
	name string
	seq  int
}

// raff is c + Σ coef·sym, or "not affine" when ok is false.
type raff struct {
	ok bool
	c  int64
	t  map[rsym]int64
}

func rConst(v int64) raff { return raff{ok: true, c: v} }
func rSym(s rsym) raff    { return raff{ok: true, t: map[rsym]int64{s: 1}} }

func (a raff) addScaled(b raff, k int64) raff {
	if !a.ok || !b.ok {
		return raff{}
	}
	out := raff{ok: true, c: a.c + k*b.c, t: map[rsym]int64{}}
	for s, c := range a.t {
		out.t[s] += c
	}
	for s, c := range b.t {
		out.t[s] += k * c
	}
	for s, c := range out.t {
		if c == 0 {
			delete(out.t, s)
		}
	}
	return out
}

func (a raff) add(b raff) raff    { return a.addScaled(b, 1) }
func (a raff) sub(b raff) raff    { return a.addScaled(b, -1) }
func (a raff) scale(k int64) raff { return rConst(0).addScaled(a, k) }

func (a raff) isConst() (int64, bool) {
	if !a.ok {
		return 0, false
	}
	for _, c := range a.t {
		if c != 0 {
			return 0, false
		}
	}
	return a.c, true
}

// pureSym matches a form that is exactly one symbol (coefficient 1, no
// constant part).
func (a raff) pureSym() (rsym, bool) {
	if !a.ok || a.c != 0 || len(a.t) != 1 {
		return rsym{}, false
	}
	for s, c := range a.t {
		if c == 1 {
			return s, true
		}
	}
	return rsym{}, false
}

// loopInfo describes one for loop's canonicalized offset symbol.
type loopInfo struct {
	extent int64  // hi - lo when it folds to a constant
	known  bool   // extent is known
	owner  string // bounds are exactly my_lo(owner) .. my_hi(owner)
}

// raceCtx resolves the scalar variables of one function to affine
// forms.
type raceCtx struct {
	consts  map[string]int64
	shared  map[string]*SharedDecl
	tainted map[string]bool
	defs    map[string][]Expr // every RHS assigned to each scalar
	params  map[string]bool
	env     map[string]raff // in-scope loop-variable bindings
	inres   map[string]bool // cycle guard for resolveVar
	loops   map[rsym]loopInfo
	strides map[rsym]int64 // rStride symbol -> vp_count multiplier
	seq     int
}

func newRaceCtx(f *FuncDecl, consts map[string]int64, shared map[string]*SharedDecl) *raceCtx {
	cx := &raceCtx{
		consts:  consts,
		shared:  shared,
		tainted: taintedVars(f),
		defs:    map[string][]Expr{},
		params:  map[string]bool{},
		env:     map[string]raff{},
		inres:   map[string]bool{},
		loops:   map[rsym]loopInfo{},
		strides: map[rsym]int64{},
	}
	for _, p := range f.Params {
		cx.params[p.Name] = true
	}
	walkStmt(f.Body, func(s Stmt) {
		switch st := s.(type) {
		case *VarDecl:
			init := st.Init
			if init == nil {
				init = &IntLit{}
			}
			cx.defs[st.Name] = append(cx.defs[st.Name], init)
		case *Assign:
			if st.Target.Index != nil {
				return
			}
			rhs := st.Value
			if st.Add {
				rhs = &Binary{Op: PLUS, L: &Ident{Name: st.Target.Name}, R: st.Value}
			}
			cx.defs[st.Target.Name] = append(cx.defs[st.Target.Name], rhs)
		}
	})
	return cx
}

// resolve turns an index expression into an affine form over the race
// symbols, or "not affine".
func (cx *raceCtx) resolve(e Expr) raff {
	switch ex := e.(type) {
	case *IntLit:
		return rConst(ex.Value)
	case *Ident:
		return cx.resolveVar(ex.Name)
	case *Unary:
		if ex.Op == MINUS {
			return cx.resolve(ex.X).scale(-1)
		}
	case *Binary:
		l, r := cx.resolve(ex.L), cx.resolve(ex.R)
		switch ex.Op {
		case PLUS:
			return l.add(r)
		case MINUS:
			return l.sub(r)
		case STAR:
			if v, ok := l.isConst(); ok {
				return r.scale(v)
			}
			if v, ok := r.isConst(); ok {
				return l.scale(v)
			}
		case SLASH, PERCENT:
			lv, lok := l.isConst()
			rv, rok := r.isConst()
			if lok && rok && rv != 0 {
				if ex.Op == SLASH {
					return rConst(lv / rv)
				}
				return rConst(lv % rv)
			}
		}
	case *Call:
		if (ex.Name == "my_lo" || ex.Name == "my_hi") && len(ex.Args) == 1 {
			if id, ok := ex.Args[0].(*Ident); ok {
				kind := rOwnerLo
				if ex.Name == "my_hi" {
					kind = rOwnerHi
				}
				return rSym(rsym{kind: kind, name: id.Name})
			}
		}
	}
	return raff{}
}

func (cx *raceCtx) resolveVar(name string) raff {
	if a, ok := cx.env[name]; ok {
		return a
	}
	switch name {
	case "vp_node_rank":
		return rSym(rsym{kind: rNodeRank})
	case "vp_global_rank":
		return rSym(rsym{kind: rGlobalRank})
	case "node_id":
		return rSym(rsym{kind: rNodeID})
	}
	if v, ok := cx.consts[name]; ok {
		return rConst(v)
	}
	if cx.inres[name] {
		return raff{}
	}
	cx.inres[name] = true
	a := cx.resolveDefs(name)
	delete(cx.inres, name)
	return a
}

func (cx *raceCtx) resolveDefs(name string) raff {
	ds := cx.defs[name]
	if len(ds) == 0 {
		// Never assigned in this function: a parameter or builtin.
		// Parameters come from node-level main code (per-node values);
		// everything else (vp_count, cores_per_node, num_nodes) is the
		// same for every VP of a phase.
		if cx.params[name] {
			return rSym(rsym{kind: rNodeVar, name: name})
		}
		return rSym(rsym{kind: rUniform, name: name})
	}
	if len(ds) == 1 {
		return cx.resolve(ds[0])
	}
	if base, mul, ok := cx.strideForm(name, ds); ok {
		s := rsym{kind: rStride, name: name}
		cx.strides[s] = mul
		return base.add(rSym(s))
	}
	if cx.tainted[name] {
		return raff{}
	}
	return rSym(rsym{kind: rVarying, name: name})
}

// strideForm matches the striding idiom: one base definition plus
// self-increments by the same multiple of vp_count
// (`row = my_lo(A) + vp_node_rank; ... row = row + vp_count`). The
// variable's values are then base + k*m*vp_count, which the pairwise
// test can reason about exactly.
func (cx *raceCtx) strideForm(name string, ds []Expr) (raff, int64, bool) {
	var base Expr
	mul := int64(0)
	for _, d := range ds {
		if inc, ok := selfIncrement(name, d); ok {
			m, ok := cx.vpCountMultiple(inc)
			if !ok || m <= 0 || (mul != 0 && m != mul) {
				return raff{}, 0, false
			}
			mul = m
			continue
		}
		if base != nil {
			return raff{}, 0, false
		}
		base = d
	}
	if base == nil || mul == 0 {
		return raff{}, 0, false
	}
	b := cx.resolve(base)
	if !b.ok {
		return raff{}, 0, false
	}
	return b, mul, true
}

// selfIncrement matches `name + e` or `e + name` and returns e.
func selfIncrement(name string, e Expr) (Expr, bool) {
	b, ok := e.(*Binary)
	if !ok || b.Op != PLUS {
		return nil, false
	}
	if id, ok := b.L.(*Ident); ok && id.Name == name {
		return b.R, true
	}
	if id, ok := b.R.(*Ident); ok && id.Name == name {
		return b.L, true
	}
	return nil, false
}

// vpCountMultiple reports m when e evaluates to m*vp_count.
func (cx *raceCtx) vpCountMultiple(e Expr) (int64, bool) {
	a := cx.resolve(e)
	if !a.ok || a.c != 0 || len(a.t) != 1 {
		return 0, false
	}
	for s, c := range a.t {
		if s.kind == rUniform && s.name == "vp_count" {
			return c, true
		}
	}
	return 0, false
}

// wop is one plain (non-+=) write to a shared array inside a phase.
type wop struct {
	arr     *SharedDecl
	idx     raff
	pos     Token
	inWhile bool // under a rank-dependent while: VPs run different
	// iteration counts, so overlap claims are only "possible"
}

// phaseWrites collects the phase's unguarded plain writes, binding for
// loops to canonical offset symbols on the way (the loop variable
// becomes lo + j with j in [0, hi-lo), so rank-dependent bounds land in
// the affine base where the pairwise test can see them).
func (cx *raceCtx) phaseWrites(p *Phase) []wop {
	var ops []wop
	var scan func(s Stmt, guarded, inWhile bool)
	scan = func(s Stmt, guarded, inWhile bool) {
		switch st := s.(type) {
		case *Block:
			for _, n := range st.Stmts {
				scan(n, guarded, inWhile)
			}
		case *If:
			g := guarded || rankDependent(st.Cond, cx.tainted)
			scan(st.Then, g, inWhile)
			if st.Else != nil {
				scan(st.Else, g, inWhile)
			}
		case *While:
			scan(st.Body, guarded, inWhile || rankDependent(st.Cond, cx.tainted))
		case *For:
			lo, hi := cx.resolve(st.Lo), cx.resolve(st.Hi)
			j := rsym{kind: rLoop, name: st.Var, seq: cx.seq}
			cx.seq++
			info := loopInfo{}
			if ext, ok := hi.sub(lo).isConst(); ok && ext > 0 {
				info.extent, info.known = ext, true
			}
			if ls, ok := lo.pureSym(); ok && ls.kind == rOwnerLo {
				if hs, ok := hi.pureSym(); ok && hs.kind == rOwnerHi && hs.name == ls.name {
					info.owner = ls.name
				}
			}
			cx.loops[j] = info
			binding := raff{}
			if lo.ok && hi.ok {
				binding = lo.add(rSym(j))
			}
			old, had := cx.env[st.Var]
			cx.env[st.Var] = binding
			scan(st.Body, guarded, inWhile)
			if had {
				cx.env[st.Var] = old
			} else {
				delete(cx.env, st.Var)
			}
		case *Assign:
			if guarded || st.Add || st.Target.Index == nil {
				return
			}
			sh := cx.shared[st.Target.Name]
			if sh == nil {
				return
			}
			ops = append(ops, wop{arr: sh, idx: cx.resolve(st.Target.Index), pos: st.Target.Pos, inWhile: inWhile})
		}
	}
	scan(p.Body, false, false)
	return ops
}

// Pairwise verdicts, ordered so that combining with max keeps the worst.
const (
	vSkip     = iota // coefficient mismatch: the difference test says nothing
	vDisjoint        // no two distinct VPs write the same element
	vPossible        // cannot decide
	vOverlap         // two distinct VPs provably write the same element
)

type verdict struct {
	v      int
	reason string
}

func worse(a, b verdict) verdict {
	if b.v > a.v {
		return b
	}
	return a
}

// rterm is the difference contribution coef*(v1 - v2) of one symbol,
// with the delta set the instance pair allows: which deltas are
// possible, whether every possible delta is actually realized by some
// pair of distinct VPs (needed before claiming a proven overlap), and a
// bound when the symbol spans a known range.
type rterm struct {
	c         int64
	zeroOK    bool
	zeroExact bool
	nonZero   bool
	bound     int64 // |delta| < bound when > 0
	exact     bool  // every allowed delta is realized
	sym       rsym
}

func rabs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// pairVerdict decides whether two VP instances (of the same node when
// sameNode, of different nodes otherwise) can write the same element
// through these two writes.
func (cx *raceCtx) pairVerdict(a, b *wop, sameNode bool) verdict {
	if !a.idx.ok || !b.idx.ok {
		return verdict{vPossible, "the index is not an affine function of ranks, constants, and loop bounds"}
	}
	d := a.idx.c - b.idx.c
	syms := map[rsym]bool{}
	for s := range a.idx.t {
		syms[s] = true
	}
	for s := range b.idx.t {
		syms[s] = true
	}
	approx := a.inWhile || b.inWhile
	var terms []rterm
	var stride *rterm
	for s := range syms {
		ca, cb := a.idx.t[s], b.idx.t[s]
		if ca != cb {
			// The two writes scale this symbol differently; their
			// relation is beyond the pairwise difference test, and the
			// per-write (self-pair) tests still cover each side.
			return verdict{vSkip, ""}
		}
		t := rterm{c: ca, sym: s}
		switch s.kind {
		case rUniform:
			continue // same value in both instances: cancels
		case rNodeRank:
			if sameNode {
				t.nonZero, t.exact = true, true
			} else {
				t.zeroOK, t.zeroExact, t.nonZero, t.exact = true, true, true, true
			}
		case rGlobalRank:
			t.nonZero, t.exact = true, true
		case rNodeID:
			if sameNode {
				continue
			}
			t.nonZero, t.exact = true, true
		case rOwnerLo, rOwnerHi:
			if sameNode {
				continue
			}
			// Partition bounds are distinct across nodes, but by an
			// unknown amount.
			t.nonZero = true
		case rNodeVar:
			if sameNode {
				continue
			}
			t.zeroOK, t.nonZero = true, true
		case rLoop:
			info := cx.loops[s]
			t.zeroOK, t.zeroExact, t.nonZero = true, true, true
			if info.known {
				t.bound, t.exact = info.extent, true
				t.nonZero = info.extent > 1
			}
		case rVarying:
			t.zeroOK, t.zeroExact, t.nonZero = true, true, true
		case rStride:
			st := t
			stride = &st
			continue
		}
		terms = append(terms, t)
	}

	if stride != nil {
		return cx.strideVerdict(d, terms, stride, sameNode, approx)
	}
	if !sameNode {
		if v, decided := ownerAnchored(cx, d, terms); decided {
			return v
		}
	}
	return solveTerms(d, terms, approx)
}

// ownerAnchored recognizes the owned-partition idiom across nodes: both
// indices are my_lo(A) + j with j spanning [0, my_hi(A)-my_lo(A)).
// Every element then lies inside the writer's owned range, and owned
// ranges of different nodes are disjoint by construction.
func ownerAnchored(cx *raceCtx, d int64, terms []rterm) (verdict, bool) {
	if len(terms) != 2 {
		return verdict{}, false
	}
	lo, loop := terms[0], terms[1]
	if lo.sym.kind != rOwnerLo {
		lo, loop = loop, lo
	}
	if lo.sym.kind != rOwnerLo || lo.c != 1 || loop.sym.kind != rLoop || loop.c != 1 {
		return verdict{}, false
	}
	if cx.loops[loop.sym].owner != lo.sym.name {
		return verdict{}, false
	}
	if d == 0 {
		return verdict{vDisjoint, ""}, true
	}
	return verdict{vPossible, "the constant offset may cross the owned-range boundary"}, true
}

// strideVerdict handles indices that accumulate m*vp_count per
// iteration. Same-node ranks differ by less than vp_count, so a rank
// term with a small enough coefficient can never be cancelled by whole
// strides: the classic `my_lo(A) + vp_node_rank` + `vp_count` stride is
// proven disjoint here.
func (cx *raceCtx) strideVerdict(d int64, terms []rterm, stride *rterm, sameNode, approx bool) verdict {
	if !sameNode {
		return verdict{vPossible, "stride loops are only compared between VPs of one node"}
	}
	m := rabs(stride.c) * cx.strides[stride.sym]
	if len(terms) == 0 {
		if d == 0 {
			if approx {
				return verdict{vPossible, "every VP strides over the same elements"}
			}
			return verdict{vOverlap, ""}
		}
		return verdict{vPossible, "the offset may land on another VP's stride"}
	}
	if len(terms) == 1 && terms[0].sym.kind == rNodeRank {
		cr := terms[0].c
		if d == 0 && rabs(cr) <= m {
			return verdict{vDisjoint, ""}
		}
		if cr != 0 && d%cr == 0 && rabs(d/cr) == 1 && !approx {
			return verdict{vOverlap, ""}
		}
	}
	return verdict{vPossible, "the stride pattern does not decide this pair"}
}

// solveTerms decides whether d + Σ c_i*delta_i = 0 has a solution in
// the allowed delta sets: none -> the writes are disjoint, a solution
// whose deltas are all realized -> a proven overlap.
func solveTerms(d int64, terms []rterm, approx bool) verdict {
	switch len(terms) {
	case 0:
		if d == 0 {
			if approx {
				return verdict{vPossible, "the VPs' iteration counts differ"}
			}
			return verdict{vOverlap, ""}
		}
		return verdict{vDisjoint, ""}
	case 1:
		return solveOne(d, terms[0], approx)
	case 2:
		// Enumerate a bounded term and decide the rest per value.
		for i := range terms {
			t := terms[i]
			if t.bound > 0 && t.bound <= 4096 {
				other := terms[1-i]
				best := verdict{vDisjoint, ""}
				for delta := -(t.bound - 1); delta < t.bound; delta++ {
					if delta == 0 && !t.zeroOK {
						continue
					}
					if delta != 0 && !t.nonZero {
						continue
					}
					best = worse(best, solveOne(d+t.c*delta, other, approx || !t.exact))
					if best.v == vOverlap {
						return best
					}
				}
				return best
			}
		}
	}
	return verdict{vPossible, "the affine checker cannot relate these index expressions"}
}

// solveOne decides d + c*delta = 0 for a single term.
func solveOne(d int64, t rterm, approx bool) verdict {
	if t.c == 0 || d%t.c != 0 {
		return verdict{vDisjoint, ""}
	}
	q := d / t.c // the solution is delta = -q
	if q == 0 {
		if !t.zeroOK {
			return verdict{vDisjoint, ""}
		}
		if t.zeroExact && !approx {
			return verdict{vOverlap, ""}
		}
		return verdict{vPossible, "two VPs may evaluate the same index"}
	}
	if !t.nonZero || (t.bound > 0 && rabs(q) >= t.bound) {
		return verdict{vDisjoint, ""}
	}
	if t.exact && !approx {
		return verdict{vOverlap, ""}
	}
	return verdict{vPossible, "two VPs may evaluate the same index"}
}

// singleVPFuncs returns the predicate "every do of this function starts
// a single VP per node", used by rules whose same-node hazards vanish
// when K = 1.
func singleVPFuncs(prog *Program, consts map[string]int64) func(string) bool {
	doK := map[string][]Expr{}
	walkStmt(prog.Main, func(s Stmt) {
		if d, ok := s.(*Do); ok {
			doK[d.Name] = append(doK[d.Name], d.K)
		}
	})
	return func(fname string) bool {
		ks := doK[fname]
		if len(ks) == 0 {
			return false
		}
		for _, k := range ks {
			if v, ok := evalConst(k, consts); !ok || v != 1 {
				return false
			}
		}
		return true
	}
}

// lintPhaseRace runs the pairwise write-overlap test over every phase.
// Node arrays have one instance per node, so only same-node pairs are
// compared (and none when every do of the function starts one VP per
// node); global arrays are additionally compared across nodes, where
// same-rank VPs of two nodes are a legal pair. A proven overlap is
// reported at the later write of the pair; an undecidable write is
// reported once, unless it is already part of a proven overlap.
func lintPhaseRace(prog *Program, consts map[string]int64, shared map[string]*SharedDecl) []Diag {
	singleVP := singleVPFuncs(prog, consts)
	var diags []Diag
	for _, f := range prog.Funcs {
		cx := newRaceCtx(f, consts, shared)
		single := singleVP(f.Name)
		walkStmt(f.Body, func(s Stmt) {
			p, ok := s.(*Phase)
			if !ok {
				return
			}
			ops := cx.phaseWrites(p)
			inOverlap := make([]bool, len(ops))
			possible := make([]string, len(ops))
			seen := map[string]bool{}
			for i := 0; i < len(ops); i++ {
				for j := i; j < len(ops); j++ {
					if ops[i].arr != ops[j].arr {
						continue
					}
					best := verdict{vSkip, ""}
					if !single {
						best = worse(best, cx.pairVerdict(&ops[i], &ops[j], true))
					}
					if ops[i].arr.GlobalScope {
						best = worse(best, cx.pairVerdict(&ops[i], &ops[j], false))
					}
					switch best.v {
					case vOverlap:
						inOverlap[i], inOverlap[j] = true, true
						site := ""
						if i != j {
							site = fmt.Sprintf(" (with the write at line %d)", ops[i].pos.Line)
						}
						key := fmt.Sprintf("o%d:%d", ops[i].pos.Line, ops[j].pos.Line)
						if !seen[key] {
							seen[key] = true
							diags = append(diags, Diag{
								Line: ops[j].pos.Line, Col: ops[j].pos.Col,
								Rule: "phaserace", Sev: SevWarning,
								Msg: fmt.Sprintf("VP instances of this phase write overlapping elements of %s%s: the end-of-phase commit cannot order them — make the index sets disjoint or use +=", ops[i].arr.Name, site),
							})
						}
					case vPossible:
						// Attribute the uncertainty to the write that
						// caused it: the non-affine side if only one is.
						at := j
						if !ops[i].idx.ok && ops[j].idx.ok {
							at = i
						}
						if possible[at] == "" {
							possible[at] = best.reason
						}
					}
				}
			}
			for k, reason := range possible {
				if reason == "" || inOverlap[k] {
					continue
				}
				key := fmt.Sprintf("p%d", ops[k].pos.Line)
				if seen[key] {
					continue
				}
				seen[key] = true
				diags = append(diags, Diag{
					Line: ops[k].pos.Line, Col: ops[k].pos.Col,
					Rule: "phaserace.possible", Sev: SevWarning,
					Msg: fmt.Sprintf("cannot prove the VP write sets of %s disjoint: %s", ops[k].arr.Name, reason),
				})
			}
		})
	}
	return diags
}
