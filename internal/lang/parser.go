package lang

import "strconv"

// Parse lexes and parses src into a Program (syntax only; run Check for
// semantic validation).
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Line, t.Col, "expected %v, found %v", k, t.Kind)
	}
	p.i++
	return t, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != EOF {
		t := p.cur()
		switch t.Kind {
		case KwConst:
			d, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			prog.Consts = append(prog.Consts, d)
		case KwGlobal, KwNode:
			// Shared declaration at top level.
			d, err := p.sharedDecl()
			if err != nil {
				return nil, err
			}
			prog.Shared = append(prog.Shared, d)
		case KwFunc:
			d, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, d)
		case KwMain:
			if prog.Main != nil {
				return nil, errf(t.Line, t.Col, "duplicate main block")
			}
			prog.MainPos = p.next()
			b, err := p.block()
			if err != nil {
				return nil, err
			}
			prog.Main = b
		default:
			return nil, errf(t.Line, t.Col, "expected a declaration, found %v", t.Kind)
		}
	}
	if prog.Main == nil {
		return nil, errf(1, 1, "program has no main block")
	}
	return prog, nil
}

func (p *parser) constDecl() (*ConstDecl, error) {
	pos, _ := p.expect(KwConst)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	neg := p.accept(MINUS)
	lit, err := p.expect(INT)
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseInt(lit.Text, 10, 64)
	if err != nil {
		return nil, errf(lit.Line, lit.Col, "bad integer literal %q", lit.Text)
	}
	if neg {
		v = -v
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ConstDecl{Name: name.Text, Value: v, Pos: pos}, nil
}

func (p *parser) sharedDecl() (*SharedDecl, error) {
	scope := p.next() // global | node
	if _, err := p.expect(KwShared); err != nil {
		return nil, err
	}
	elem, err := p.typeName()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACKET); err != nil {
		return nil, err
	}
	size, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RBRACKET); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &SharedDecl{
		GlobalScope: scope.Kind == KwGlobal,
		Elem:        elem,
		Name:        name.Text,
		Size:        size,
		Pos:         scope,
	}, nil
}

func (p *parser) typeName() (Type, error) {
	t := p.next()
	switch t.Kind {
	case KwInt:
		return TypeInt, nil
	case KwFloat:
		return TypeFloat, nil
	default:
		return TypeInvalid, errf(t.Line, t.Col, "expected a type (int or float), found %v", t.Kind)
	}
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	pos, _ := p.expect(KwFunc)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var params []Param
	for p.cur().Kind != RPAREN {
		if len(params) > 0 {
			if _, err := p.expect(COMMA); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		pt, err := p.typeName()
		if err != nil {
			return nil, err
		}
		params = append(params, Param{Name: pn.Text, Type: pt})
	}
	p.next() // RPAREN
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Body: body, Pos: pos}, nil
}

func (p *parser) block() (*Block, error) {
	pos, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: pos}
	for p.cur().Kind != RBRACE {
		if p.cur().Kind == EOF {
			return nil, errf(pos.Line, pos.Col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // RBRACE
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBRACE:
		return p.block()
	case KwVar:
		return p.varDecl()
	case KwIf:
		return p.ifStmt()
	case KwWhile:
		return p.whileStmt()
	case KwFor:
		return p.forStmt()
	case KwGlobal, KwNode:
		scope := p.next()
		if _, err := p.expect(KwPhase); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &Phase{GlobalScope: scope.Kind == KwGlobal, Body: body, Pos: scope}, nil
	case KwDo:
		return p.doStmt()
	case IDENT:
		if t.Text == "print" {
			return p.printStmt()
		}
		if t.Text == "barrier" {
			pos := p.next()
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
			return &Barrier{Pos: pos}, nil
		}
		if b := builtinByName(t.Text); b != nil && b.Arity >= 0 && p.toks[p.i+1].Kind == LPAREN {
			// Builtin call in statement position.
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			call, ok := e.(*Call)
			if !ok {
				return nil, errf(t.Line, t.Col, "expected a call statement")
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
			return &CallStmt{Call: call, Pos: t}, nil
		}
		return p.assign()
	default:
		return nil, errf(t.Line, t.Col, "expected a statement, found %v", t.Kind)
	}
}

func (p *parser) varDecl() (Stmt, error) {
	pos, _ := p.expect(KwVar)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	typ, err := p.typeName()
	if err != nil {
		return nil, err
	}
	var init Expr
	if p.accept(ASSIGN) {
		init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &VarDecl{Name: name.Text, Type: typ, Init: init, Pos: pos}, nil
}

func (p *parser) assign() (Stmt, error) {
	name, _ := p.expect(IDENT)
	lv := &LValue{Name: name.Text, Pos: name}
	if p.accept(LBRACKET) {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBRACKET); err != nil {
			return nil, err
		}
		lv.Index = idx
	}
	add := false
	switch p.cur().Kind {
	case ASSIGN:
		p.next()
	case PLUSEQ:
		p.next()
		add = true
	default:
		t := p.cur()
		return nil, errf(t.Line, t.Col, "expected '=' or '+=' after lvalue, found %v", t.Kind)
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &Assign{Target: lv, Add: add, Value: v, Pos: name}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	pos, _ := p.expect(KwIf)
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els *Block
	if p.accept(KwElse) {
		if p.cur().Kind == KwIf {
			// else-if chains: wrap the nested if in a block.
			inner, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			els = &Block{Stmts: []Stmt{inner}, Pos: pos}
		} else {
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return &If{Cond: cond, Then: then, Else: els, Pos: pos}, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	pos, _ := p.expect(KwWhile)
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Pos: pos}, nil
}

// forStmt parses `for i = lo .. hi { ... }` where `..` is spelled as two
// consecutive dots — we lex them as part of a float otherwise, so the
// grammar uses the keyword form `for i = lo to hi` instead.
func (p *parser) forStmt() (Stmt, error) {
	pos, _ := p.expect(KwFor)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	to := p.cur()
	if to.Kind != IDENT || to.Text != "to" {
		return nil, errf(to.Line, to.Col, "expected 'to' in for statement, found %v", to.Kind)
	}
	p.next()
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &For{Var: name.Text, Lo: lo, Hi: hi, Body: body, Pos: pos}, nil
}

func (p *parser) doStmt() (Stmt, error) {
	pos, _ := p.expect(KwDo)
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	k, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var args []Expr
	for p.cur().Kind != RPAREN {
		if len(args) > 0 {
			if _, err := p.expect(COMMA); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.next() // RPAREN
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &Do{K: k, Name: name.Text, Args: args, Pos: pos}, nil
}

func (p *parser) printStmt() (Stmt, error) {
	pos := p.next() // 'print' ident
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var args []Expr
	for p.cur().Kind != RPAREN {
		if len(args) > 0 {
			if _, err := p.expect(COMMA); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.next()
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &Print{Args: args, Pos: pos}, nil
}

// Expression grammar (precedence climbing):
//
//	or   := and ('||' and)*
//	and  := cmp ('&&' cmp)*
//	cmp  := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
//	add  := mul (('+'|'-') mul)*
//	mul  := unary (('*'|'/'|'%') unary)*
//	unary:= ('-'|'!') unary | primary
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == OROR {
		op := p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OROR, L: l, R: r, Pos: op}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == ANDAND {
		op := p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: ANDAND, L: l, R: r, Pos: op}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case EQ, NE, LT, LE, GT, GE:
		op := p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op.Kind, L: l, R: r, Pos: op}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == PLUS || p.cur().Kind == MINUS {
		op := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op.Kind, L: l, R: r, Pos: op}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == STAR || p.cur().Kind == SLASH || p.cur().Kind == PERCENT {
		op := p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op.Kind, L: l, R: r, Pos: op}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == MINUS || t.Kind == NOT {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Kind, X: x, Pos: t}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad integer literal %q", t.Text)
		}
		return &IntLit{Value: v, Pos: t}, nil
	case FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Line, t.Col, "bad float literal %q", t.Text)
		}
		return &FloatLit{Value: v, Pos: t}, nil
	case STRING:
		p.next()
		return &StrLit{Value: t.Text, Pos: t}, nil
	case KwTrue:
		p.next()
		return &BoolLit{Value: true, Pos: t}, nil
	case KwFalse:
		p.next()
		return &BoolLit{Value: false, Pos: t}, nil
	case KwInt, KwFloat:
		// Conversions: int(x), float(x).
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		name := "int"
		if t.Kind == KwFloat {
			name = "float"
		}
		return &Call{Name: name, Args: []Expr{x}, Pos: t}, nil
	case IDENT:
		p.next()
		if p.accept(LBRACKET) {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			return &Index{Name: t.Text, Inner: idx, Pos: t}, nil
		}
		if p.accept(LPAREN) {
			var args []Expr
			for p.cur().Kind != RPAREN {
				if len(args) > 0 {
					if _, err := p.expect(COMMA); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			p.next()
			return &Call{Name: t.Text, Args: args, Pos: t}, nil
		}
		return &Ident{Name: t.Text, Pos: t}, nil
	case LPAREN:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, errf(t.Line, t.Col, "expected an expression, found %v", t.Kind)
	}
}
