package lang

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"ppm/internal/bench"
	"ppm/internal/core"
	"ppm/internal/machine"
)

// TestEmittedGoCompilesAndRuns performs the full source-to-source loop:
// translate the Section 5 program to Go, build it with the real Go
// toolchain against the public ppm API, run it, and require the same
// program output the interpreter produces. (The emitted scaffold runs on
// 4 nodes with the default Franklin machine, so the interpreter side uses
// the same configuration.)
func TestEmittedGoCompilesAndRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping toolchain round trip")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	prog, err := Parse(searchSrc)
	if err != nil {
		t.Fatal(err)
	}
	goSrc, err := GenerateGo(prog)
	if err != nil {
		t.Fatal(err)
	}
	root, err := bench.RepoRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	// The generated file must live inside the module to import "ppm".
	dir := filepath.Join(root, "cmd", ".ppmc-e2e-test")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(goSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/.ppmc-e2e-test")
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("emitted program failed: %v\nstderr:\n%s\nsource:\n%s", err, stderr.String(), goSrc)
	}
	if !strings.Contains(stdout.String(), "mismatches: 0") {
		t.Errorf("emitted program output: %q", stdout.String())
	}

	// The interpreter on the same configuration must agree.
	var iout bytes.Buffer
	_, err = Interpret(prog, core.Options{Nodes: 4, Machine: machine.Franklin()}, &iout)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(iout.String(), "mismatches: 0") {
		t.Errorf("interpreter output: %q", iout.String())
	}
}
