package lang

import (
	"bytes"
	goparser "go/parser"
	"go/token"
	"strings"
	"testing"

	"ppm/internal/core"
	"ppm/internal/machine"
)

// The paper's Section 5 listing, in the PPM language.
const searchSrc = `
const N = 1024;
const K = 64;

global shared float A[N];
node shared float B[K];
node shared int rank_in_A[K];

func binary_search(n int) {
    global phase {
        var b float = B[vp_node_rank];
        var left int = -1;
        var right int = n;
        while (left + 1 < right) {
            var middle int = (left + right) / 2;
            if (A[middle] < b) {
                left = middle;
            } else {
                right = middle;
            }
        }
        rank_in_A[vp_node_rank] = right;
    }
}

main {
    // Node-level init: A holds even numbers; B holds odd probes.
    for i = my_lo(A) to my_hi(A) {
        A[i] = float(2 * i);
    }
    for j = 0 to K {
        B[j] = float(2 * ((j * 37 + node_id * 11) % N) + 1);
    }
    do (K) binary_search(N);
    var bad int = 0;
    for j = 0 to K {
        var want int = (int(B[j]) / 2) + 1;
        if (rank_in_A[j] != want) {
            bad = bad + 1;
        }
    }
    if (node_id == 0) {
        print("mismatches:", bad);
    }
}
`

func interpSrc(t *testing.T, src string, nodes int) (string, *core.Report) {
	t.Helper()
	var out bytes.Buffer
	rep, err := InterpretSource(src, core.Options{Nodes: nodes, Machine: machine.Generic()}, &out)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	return out.String(), rep
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`func f() { var x int = 1 + 2; } // comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]Kind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.Kind
	}
	want := []Kind{KwFunc, IDENT, LPAREN, RPAREN, LBRACE, KwVar, IDENT, KwInt,
		ASSIGN, INT, PLUS, INT, SEMI, RBRACE, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexOperatorsAndLiterals(t *testing.T) {
	toks, err := Lex(`1.5 2e3 == != <= >= && || += "hi\n"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{FLOAT, FLOAT, EQ, NE, LE, GE, ANDAND, OROR, PLUSEQ, STRING, EOF}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, w)
		}
	}
	if toks[9].Text != "hi\n" {
		t.Errorf("string literal %q", toks[9].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`@`, `"unterminated`, `"bad \q escape"`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) accepted", src)
		}
	}
}

func TestParseSearchProgram(t *testing.T) {
	prog, err := Parse(searchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Consts) != 2 || len(prog.Shared) != 3 || len(prog.Funcs) != 1 || prog.Main == nil {
		t.Fatalf("program shape: %d consts, %d shared, %d funcs", len(prog.Consts), len(prog.Shared), len(prog.Funcs))
	}
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no main":        `const X = 1;`,
		"dup main":       `main {} main {}`,
		"bad decl":       `wibble;`,
		"unclosed block": `main { var x int = 1;`,
		"bad for":        `main { for i = 0 3 {} }`,
		"bad assign op":  `main { var x int; x * 3; }`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var":     `main { x = 1; }`,
		"type mismatch":     `main { var x int = 1.5; }`,
		"mixed arithmetic":  `main { var x float = 1.0 + 1; }`,
		"bad condition":     `main { if (1) {} }`,
		"phase in main":     `main { global phase {} }`,
		"do in func":        `func f() { do (1) f(); } main { do (1) f(); }`,
		"undefined do":      `main { do (4) nope(); }`,
		"arg count":         `func f(x int) {} main { do (1) f(); }`,
		"arg type":          `func f(x int) {} main { do (1) f(1.5); }`,
		"nested phase":      `func f() { global phase { } node phase { } } main { do (1) f(); } func g() { global phase { node phase {} } }`,
		"shadow builtin":    `main { var node_id int = 0; }`,
		"dup const":         `const A = 1; const A = 2; main {}`,
		"dup shared":        `global shared int A[4]; global shared int A[4]; main {}`,
		"not an array":      `main { var x int = 1; x[0] = 2; }`,
		"float index":       `global shared int A[4]; main { A[1.5] = 1; }`,
		"shared outside":    `global shared int A[4]; func f() { A[0] = 1; } main { do (1) f(); }`,
		"print in func":     `func f() { print(1); } main { do (1) f(); }`,
		"vp rank in main":   `main { var x int = vp_node_rank; }`,
		"reduce in phase":   `func f() { global phase { var x float = reduce_sum(1.0); } } main { do (1) f(); }`,
		"modulo float":      `main { var x float = 1.0 % 2.0; }`,
		"string in expr":    `main { var x int = 1; if (node_id == 0) { print(x); } x = x + "s"; }`,
		"my_lo node shared": `node shared int A[4]; main { var x int = my_lo(A); }`,
		"size not int":      `global shared int A[1.5]; main {}`,
	}
	for name, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			continue // parse-time rejection also counts
		}
		if err := Check(prog); err == nil {
			t.Errorf("%s: checked OK, expected error", name)
		}
	}
}

func TestInterpretSearchMatchesPaper(t *testing.T) {
	out, rep := interpSrc(t, searchSrc, 4)
	if !strings.Contains(out, "mismatches: 0") {
		t.Errorf("search output: %q", out)
	}
	if rep.Totals.GlobalPhases != 4 { // one per node
		t.Errorf("global phases: %d", rep.Totals.GlobalPhases)
	}
	if rep.Totals.VPsStarted != 4*64 {
		t.Errorf("VPs: %d", rep.Totals.VPsStarted)
	}
	if rep.Totals.RemoteReadElems == 0 {
		t.Error("no remote reads from the binary searches")
	}
}

func TestInterpretHistogram(t *testing.T) {
	src := `
const BUCKETS = 10;
global shared int hist[BUCKETS];

func count() {
    global phase {
        hist[vp_global_rank % BUCKETS] += 1;
    }
}

main {
    do (250) count();
    barrier;
    if (node_id == 0) {
        var total int = 0;
        for i = 0 to BUCKETS {
            total = total + hist[i];
        }
        print("total:", total);
    }
}
`
	out, _ := interpSrc(t, src, 4)
	if !strings.Contains(out, "total: 1000") {
		t.Errorf("histogram output: %q", out)
	}
}

func TestInterpretUtilitiesAndMath(t *testing.T) {
	src := `
main {
    var x float = reduce_sum(float(node_id + 1));
    var m float = reduce_max(float(node_id));
    var p int = prefix_sum(node_id + 1);
    charge_flops(100);
    if (node_id == 2) {
        print("sum:", x, "max:", m, "prefix:", p, "sqrt:", sqrt(16.0), "abs:", abs(-2.5));
    }
}
`
	out, _ := interpSrc(t, src, 3)
	if !strings.Contains(out, "sum: 6 max: 2 prefix: 3 sqrt: 4 abs: 2.5") {
		t.Errorf("utilities output: %q", out)
	}
}

func TestInterpretPhaseSemanticsVisible(t *testing.T) {
	// Jacobi-style in-place relaxation only works because reads see the
	// begin-of-phase values.
	src := `
const N = 8;
global shared float u[N];

func sweep() {
    global phase {
        var i int = vp_global_rank;
        var left float = 0.0;
        var right float = 0.0;
        if (i > 0) { left = u[i - 1]; }
        if (i < N - 1) { right = u[i + 1]; }
        u[i] = (left + right) / 2.0;
    }
}

main {
    if (node_id == 0) {
        u[0] = 8.0;
    }
    do (N / node_count) sweep();
    barrier;
    if (node_id == 0) {
        print("u0:", u[0], "u1:", u[1]);
    }
}
`
	out, _ := interpSrc(t, src, 2)
	// After one sweep from u = [8,0,...]: u0 = (0+0)/2 = 0, u1 = (8+0)/2 = 4.
	if !strings.Contains(out, "u0: 0 u1: 4") {
		t.Errorf("phase semantics output: %q", out)
	}
}

func TestInterpretRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"division by zero": `main { var z int = 0; var x int = 1 / z; }`,
		"remote node write": `
global shared int A[16];
main { if (node_id == 0) { A[15] = 1; } barrier; }`,
	}
	for name, src := range cases {
		if _, err := InterpretSource(src, core.Options{Nodes: 2, Machine: machine.Generic()}, nil); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestInterpretDeterministic(t *testing.T) {
	run := func() (string, float64) {
		out, rep := interpSrc(t, searchSrc, 3)
		return out, rep.Makespan().Seconds()
	}
	o1, m1 := run()
	o2, m2 := run()
	if o1 != o2 || m1 != m2 {
		t.Error("interpreter runs diverge")
	}
}

func TestGenerateGoIsValidGo(t *testing.T) {
	for name, src := range map[string]string{
		"search": searchSrc,
		"misc": `
const N = 32;
global shared float x[N];
node shared int flags[4];

func work(scale float) {
    node phase {
        flags[vp_node_rank % 4] += 1;
    }
    global phase {
        var i int = vp_global_rank;
        if (i < N) {
            x[i] = float(i) * scale;
            charge_flops(1);
        }
    }
}

main {
    do (cores_per_node) work(2.5);
    barrier;
    var s float = 0.0;
    for i = my_lo(x) to my_hi(x) {
        s = s + x[i];
    }
    var total float = reduce_sum(s);
    if (node_id == 0) { print("total:", total); }
}
`,
	} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := GenerateGo(prog)
		if err != nil {
			t.Fatalf("%s: generate: %v", name, err)
		}
		fset := token.NewFileSet()
		if _, err := goparser.ParseFile(fset, name+".go", out, 0); err != nil {
			t.Errorf("%s: generated Go does not parse: %v\n%s", name, err, out)
		}
		for _, want := range []string{"ppm.Run", "rt.Do", "GlobalPhase", "DO NOT EDIT"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: generated code missing %q", name, want)
			}
		}
	}
}

func TestGenerateRejectsBadPrograms(t *testing.T) {
	prog, err := Parse(`main { x = 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateGo(prog); err == nil {
		t.Error("GenerateGo accepted an unchecked-invalid program")
	}
}
