// Package sparse provides compressed-sparse-row matrices, the 27-point
// 3-D finite-difference stencil generator behind the paper's conjugate-
// gradient experiment, and SpMV kernels with flop accounting.
package sparse

import "fmt"

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	Col        []int // len NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Col) }

// New returns an empty CSR with preallocated row pointers.
func New(rows, cols int) *CSR {
	return &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
}

// Validate checks structural invariants.
func (a *CSR) Validate() error {
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr has %d entries for %d rows", len(a.RowPtr), a.Rows)
	}
	if a.RowPtr[0] != 0 || a.RowPtr[a.Rows] != len(a.Col) || len(a.Col) != len(a.Val) {
		return fmt.Errorf("sparse: inconsistent row pointers / value arrays")
	}
	for r := 0; r < a.Rows; r++ {
		if a.RowPtr[r] > a.RowPtr[r+1] {
			return fmt.Errorf("sparse: row %d has negative length", r)
		}
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if a.Col[k] < 0 || a.Col[k] >= a.Cols {
				return fmt.Errorf("sparse: row %d references column %d of %d", r, a.Col[k], a.Cols)
			}
		}
	}
	return nil
}

// MulVec computes y = A x and returns the flops performed.
func (a *CSR) MulVec(y, x []float64) int64 {
	return a.MulVecRows(y, x, 0, a.Rows)
}

// MulVecRows computes y[lo:hi] = (A x)[lo:hi] for the row range [lo, hi)
// and returns the flops performed. y is indexed globally (y[r] for row r).
func (a *CSR) MulVecRows(y, x []float64, lo, hi int) int64 {
	var flops int64
	for r := lo; r < hi; r++ {
		var s float64
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		y[r] = s
		flops += int64(2 * (a.RowPtr[r+1] - a.RowPtr[r]))
	}
	return flops
}

// RowNNZ returns the number of stored entries in rows [lo, hi).
func (a *CSR) RowNNZ(lo, hi int) int {
	return a.RowPtr[hi] - a.RowPtr[lo]
}

// IsSymmetric reports whether the matrix equals its transpose (O(nnz log)
// via per-row lookups; intended for tests).
func (a *CSR) IsSymmetric() bool {
	if a.Rows != a.Cols {
		return false
	}
	at := make(map[[2]int]float64, len(a.Col))
	for r := 0; r < a.Rows; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			at[[2]int{r, a.Col[k]}] = a.Val[k]
		}
	}
	for r := 0; r < a.Rows; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if v, ok := at[[2]int{a.Col[k], r}]; !ok || v != a.Val[k] {
				return false
			}
		}
	}
	return true
}

// Stencil27Rows builds only rows [lo, hi) of the Stencil27 operator, with
// global column indices. The result has Rows = hi-lo; its row r
// corresponds to global row lo+r. Distributed solvers use it to build
// each owner's row block without materializing the whole matrix.
func Stencil27Rows(nx, ny, nz, lo, hi int) *CSR {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("sparse: Stencil27Rows(%d, %d, %d): dimensions must be positive", nx, ny, nz))
	}
	n := nx * ny * nz
	if lo < 0 || hi > n || lo > hi {
		panic(fmt.Sprintf("sparse: Stencil27Rows: row range [%d,%d) out of [0,%d)", lo, hi, n))
	}
	a := New(hi-lo, n)
	var cols []int
	var vals []float64
	for g := lo; g < hi; g++ {
		x := g % nx
		y := (g / nx) % ny
		z := g / (nx * ny)
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					xx, yy, zz := x+dx, y+dy, z+dz
					if xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz {
						continue
					}
					c := (zz*ny+yy)*nx + xx
					v := -1.0
					if c == g {
						v = 27.0
					}
					cols = append(cols, c)
					vals = append(vals, v)
				}
			}
		}
		a.RowPtr[g-lo+1] = len(cols)
	}
	a.Col = cols
	a.Val = vals
	return a
}

// Stencil27 builds the 27-point implicit finite-difference operator for a
// diffusion problem on an nx x ny x nz box ("chimney" domains elongate
// nz), with Dirichlet boundary truncation: every off-diagonal neighbor
// weight is -1 and the diagonal is 27, which makes the operator strictly
// diagonally dominant and hence symmetric positive definite.
func Stencil27(nx, ny, nz int) *CSR {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("sparse: Stencil27(%d, %d, %d): dimensions must be positive", nx, ny, nz))
	}
	n := nx * ny * nz
	a := New(n, n)
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	// First pass: count entries per row.
	counts := make([]int, n)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := 0
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							xx, yy, zz := x+dx, y+dy, z+dz
							if xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz {
								c++
							}
						}
					}
				}
				counts[idx(x, y, z)] = c
			}
		}
	}
	for r := 0; r < n; r++ {
		a.RowPtr[r+1] = a.RowPtr[r] + counts[r]
	}
	a.Col = make([]int, a.RowPtr[n])
	a.Val = make([]float64, a.RowPtr[n])
	// Second pass: fill (neighbors in lexicographic order, so columns are
	// sorted within each row).
	pos := make([]int, n)
	copy(pos, a.RowPtr[:n])
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				r := idx(x, y, z)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							xx, yy, zz := x+dx, y+dy, z+dz
							if xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz {
								continue
							}
							c := idx(xx, yy, zz)
							v := -1.0
							if c == r {
								v = 27.0
							}
							a.Col[pos[r]] = c
							a.Val[pos[r]] = v
							pos[r]++
						}
					}
				}
			}
		}
	}
	return a
}

// ColRun is one maximal run of consecutive column indices within a row:
// columns Col, Col+1, ..., Col+N-1.
type ColRun struct {
	Col, N int
}

// ColRuns returns a run-length encoding of the matrix's column structure:
// runs[runPtr[r]:runPtr[r+1]] lists row r's maximal runs of consecutive
// columns, preserving the stored column order. maxN is the longest run.
// Stencil matrices compress well (the 27-point stencil's rows become nine
// x-direction triples), which lets gather loops read each run with one
// block access instead of an element at a time.
func (a *CSR) ColRuns() (runPtr []int, runs []ColRun, maxN int) {
	runPtr = make([]int, a.Rows+1)
	for r := 0; r < a.Rows; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; {
			c := a.Col[k]
			n := 1
			for k+n < a.RowPtr[r+1] && a.Col[k+n] == c+n {
				n++
			}
			runs = append(runs, ColRun{Col: c, N: n})
			if n > maxN {
				maxN = n
			}
			k += n
		}
		runPtr[r+1] = len(runs)
	}
	return runPtr, runs, maxN
}
