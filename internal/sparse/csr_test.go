package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"ppm/internal/rng"
)

func TestStencilShape(t *testing.T) {
	a := Stencil27(4, 3, 5)
	if a.Rows != 60 || a.Cols != 60 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior points have all 27 neighbors; corners have 8.
	maxRow, minRow := 0, 1<<30
	for r := 0; r < a.Rows; r++ {
		n := a.RowPtr[r+1] - a.RowPtr[r]
		if n > maxRow {
			maxRow = n
		}
		if n < minRow {
			minRow = n
		}
	}
	if maxRow != 27 {
		t.Errorf("max row nnz = %d, want 27", maxRow)
	}
	if minRow != 8 {
		t.Errorf("min row nnz = %d, want 8 (corner)", minRow)
	}
}

func TestStencilSymmetricSPD(t *testing.T) {
	a := Stencil27(3, 4, 2)
	if !a.IsSymmetric() {
		t.Error("stencil not symmetric")
	}
	// Strict diagonal dominance: diag > sum |offdiag|.
	for r := 0; r < a.Rows; r++ {
		var diag, off float64
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if a.Col[k] == r {
				diag = a.Val[k]
			} else {
				off += math.Abs(a.Val[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not strictly dominant: %v vs %v", r, diag, off)
		}
	}
}

func TestStencilColumnsSorted(t *testing.T) {
	a := Stencil27(5, 5, 5)
	for r := 0; r < a.Rows; r++ {
		for k := a.RowPtr[r] + 1; k < a.RowPtr[r+1]; k++ {
			if a.Col[k] <= a.Col[k-1] {
				t.Fatalf("row %d columns not strictly increasing", r)
			}
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := Stencil27(3, 3, 3)
		x := make([]float64, a.Cols)
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		y := make([]float64, a.Rows)
		flops := a.MulVec(y, x)
		if flops != int64(2*a.NNZ()) {
			return false
		}
		// Dense reference.
		want := make([]float64, a.Rows)
		for row := 0; row < a.Rows; row++ {
			for k := a.RowPtr[row]; k < a.RowPtr[row+1]; k++ {
				want[row] += a.Val[k] * x[a.Col[k]]
			}
		}
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMulVecRowsPartial(t *testing.T) {
	a := Stencil27(4, 4, 4)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	whole := make([]float64, a.Rows)
	a.MulVec(whole, x)
	part := make([]float64, a.Rows)
	mid := a.Rows / 2
	a.MulVecRows(part, x, 0, mid)
	a.MulVecRows(part, x, mid, a.Rows)
	for i := range whole {
		if part[i] != whole[i] {
			t.Fatalf("row %d: %v vs %v", i, part[i], whole[i])
		}
	}
}

func TestRowNNZ(t *testing.T) {
	a := Stencil27(3, 3, 3)
	if got := a.RowNNZ(0, a.Rows); got != a.NNZ() {
		t.Errorf("RowNNZ full = %d, want %d", got, a.NNZ())
	}
	if got := a.RowNNZ(5, 5); got != 0 {
		t.Errorf("empty range nnz = %d", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := Stencil27(2, 2, 2)
	a.Col[0] = 999
	if err := a.Validate(); err == nil {
		t.Error("bad column accepted")
	}
	b := Stencil27(2, 2, 2)
	b.RowPtr[1] = -1
	if err := b.Validate(); err == nil {
		t.Error("bad rowptr accepted")
	}
}

func TestStencilRowsMatchesWhole(t *testing.T) {
	nx, ny, nz := 4, 3, 5
	whole := Stencil27(nx, ny, nz)
	n := nx * ny * nz
	for _, rng := range [][2]int{{0, n}, {7, 23}, {0, 1}, {n - 1, n}, {10, 10}} {
		lo, hi := rng[0], rng[1]
		part := Stencil27Rows(nx, ny, nz, lo, hi)
		if err := part.Validate(); err != nil {
			t.Fatalf("[%d,%d): %v", lo, hi, err)
		}
		for r := lo; r < hi; r++ {
			w0, w1 := whole.RowPtr[r], whole.RowPtr[r+1]
			p0, p1 := part.RowPtr[r-lo], part.RowPtr[r-lo+1]
			if w1-w0 != p1-p0 {
				t.Fatalf("row %d nnz differs", r)
			}
			for k := 0; k < w1-w0; k++ {
				if whole.Col[w0+k] != part.Col[p0+k] || whole.Val[w0+k] != part.Val[p0+k] {
					t.Fatalf("row %d entry %d differs", r, k)
				}
			}
		}
	}
}

func TestRowSumsInteriorZeroish(t *testing.T) {
	// With diagonal 27 and 26 interior neighbors of -1, interior row sums
	// are exactly 1.
	a := Stencil27(5, 5, 5)
	idx := func(x, y, z int) int { return (z*5+y)*5 + x }
	r := idx(2, 2, 2)
	var s float64
	for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
		s += a.Val[k]
	}
	if s != 1 {
		t.Errorf("interior row sum = %v, want 1", s)
	}
}
