package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// The handshake is the one place the runtime parses bytes from a peer it
// has not yet authenticated as a PPM node of the same build and cluster
// shape. Every malformed Hello must produce a descriptive error — never
// a hang, panic, or silent acceptance.

func TestDecodeHelloVersionMismatch(t *testing.T) {
	p := EncodeHello(Hello{Rank: 1, Nodes: 4, LittleEndian: NativeLittleEndian()})
	binary.LittleEndian.PutUint16(p[4:], Version+1)
	_, err := DecodeHello(p, 4)
	if err == nil {
		t.Fatal("future-version hello accepted")
	}
	if !strings.Contains(err.Error(), "version mismatch") {
		t.Errorf("error %q does not name the version mismatch", err)
	}
}

func TestDecodeHelloEndiannessMismatch(t *testing.T) {
	p := EncodeHello(Hello{Rank: 2, Nodes: 4, LittleEndian: !NativeLittleEndian()})
	_, err := DecodeHello(p, 4)
	if err == nil {
		t.Fatal("cross-endian hello accepted")
	}
	if !strings.Contains(err.Error(), "byte-order") || !strings.Contains(err.Error(), "rank 2") {
		t.Errorf("error %q should name the byte-order mismatch and the peer rank", err)
	}
}

func TestDecodeHelloShortAndLong(t *testing.T) {
	good := EncodeHello(Hello{Rank: 0, Nodes: 2, LittleEndian: NativeLittleEndian()})
	if len(good) != 17 {
		t.Fatalf("hello payload is %d bytes, want 17", len(good))
	}
	for _, n := range []int{0, 1, 7, 14, 16} {
		if _, err := DecodeHello(good[:n], 2); err == nil {
			t.Errorf("%d-byte hello accepted", n)
		}
	}
	if _, err := DecodeHello(append(append([]byte{}, good...), 0), 2); err == nil {
		t.Error("18-byte hello accepted")
	}
}

func TestDecodeHelloLegacyAndCodecBytes(t *testing.T) {
	h := Hello{Rank: 1, Nodes: 4, LittleEndian: NativeLittleEndian(),
		Caps: SupportedCaps, Prefer: CodecDelta}
	p := EncodeHello(h)

	got, err := DecodeHello(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Caps != SupportedCaps || got.Prefer != CodecDelta {
		t.Errorf("caps/prefer = %v/%v, want %v/%v", got.Caps, got.Prefer, SupportedCaps, CodecDelta)
	}

	// The first 15 bytes are the pre-codec hello: an old peer's payload
	// must still decode, as a raw-only speaker.
	legacy, err := DecodeHello(p[:15], 4)
	if err != nil {
		t.Fatalf("legacy 15-byte hello rejected: %v", err)
	}
	if legacy.Prefer != CodecRaw || !legacy.Caps.Has(CodecRaw) || legacy.Caps.Has(CodecDelta) {
		t.Errorf("legacy hello decoded as caps=%v prefer=%v, want raw-only", legacy.Caps, legacy.Prefer)
	}
	if legacy.Rank != 1 || legacy.Nodes != 4 {
		t.Errorf("legacy hello identity = rank %d / %d nodes, want 1 / 4", legacy.Rank, legacy.Nodes)
	}

	// Negotiation is symmetric: the sender evaluates the peer's caps, the
	// receiver its own, and both land on the same codec.
	if c := Negotiate(CodecDelta, SupportedCaps); c != CodecDelta {
		t.Errorf("delta vs delta-capable peer negotiated %v", c)
	}
	if c := Negotiate(CodecDelta, legacy.Caps); c != CodecRaw {
		t.Errorf("delta vs raw-only peer negotiated %v", c)
	}
	if c := Negotiate(Codec(9), SupportedCaps); c != CodecRaw {
		t.Errorf("unknown future codec negotiated %v, want raw fallback", c)
	}
}

func TestDecodeHelloGarbage(t *testing.T) {
	// 15 bytes of noise: right length, wrong everything. Must fail on
	// magic, not be misread as a rank.
	garbage := bytes.Repeat([]byte{0x5a}, 15)
	_, err := DecodeHello(garbage, 4)
	if err == nil {
		t.Fatal("garbage hello accepted")
	}
	if !strings.Contains(err.Error(), "magic") {
		t.Errorf("error %q should name the bad magic", err)
	}
}

func TestDecodeHelloRankOutOfRange(t *testing.T) {
	for _, rank := range []int{-1, 4, 100} {
		p := EncodeHello(Hello{Rank: rank, Nodes: 4, LittleEndian: NativeLittleEndian()})
		if _, err := DecodeHello(p, 4); err == nil {
			t.Errorf("out-of-range rank %d accepted", rank)
		}
	}
}

func TestDecodeHelloNodesMismatchNamesBothCounts(t *testing.T) {
	p := EncodeHello(Hello{Rank: 1, Nodes: 8, LittleEndian: NativeLittleEndian()})
	_, err := DecodeHello(p, 4)
	if err == nil {
		t.Fatal("cluster-shape mismatch accepted")
	}
	if !strings.Contains(err.Error(), "8") || !strings.Contains(err.Error(), "4") {
		t.Errorf("error %q should show both node counts", err)
	}
}

func TestHelloFrameFromGarbageStream(t *testing.T) {
	// A non-PPM speaker connects and sends arbitrary bytes. The framing
	// layer either returns a frame (whose Hello then fails validation)
	// or errors — it must not block once bytes stop, and must not panic.
	streams := [][]byte{
		[]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"),
		{0x00, 0x00, 0x00, 0x00},            // zero-length frame
		{0xff, 0xff, 0xff, 0x7f, 0x01},      // absurd length prefix
		{0x05, 0x00, 0x00, 0x00, KindHello}, // hello frame, empty payload
	}
	for i, s := range streams {
		br := bufio.NewReader(bytes.NewReader(s))
		kind, payload, err := ReadFrame(br)
		if err != nil {
			continue // framing rejected it: fine
		}
		if kind != KindHello {
			continue // engine would reject a non-hello first frame
		}
		if _, err := DecodeHello(payload, 4); err == nil {
			t.Errorf("stream %d: garbage survived frame+hello validation", i)
		}
	}
}
