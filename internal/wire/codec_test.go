package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"ppm/internal/rng"
)

// sizes8and4 is the elemBytes callback of a run with two arrays: id 0
// holds float64s, id 1 holds float32s, anything else is unknown.
func sizes8and4(array int) int {
	switch array {
	case 0:
		return 8
	case 1:
		return 4
	}
	return 0
}

// randomRawStream builds a syntactically valid raw commit stream with
// adversarial shapes: unordered offsets, zero-length runs, writer
// jumps, and both element sizes.
func randomRawStream(r *rng.RNG) []byte {
	var buf []byte
	nBlocks := 1 + r.Intn(4)
	for b := 0; b < nBlocks; b++ {
		array := r.Intn(2)
		es := sizes8and4(array)
		nRuns := r.Intn(6)
		buf = AppendBlockHeader(buf, array, nRuns)
		for i := 0; i < nRuns; i++ {
			n := r.Intn(4) // zero-length runs are legal
			h := RunHeader{
				Lo:     r.Intn(1 << 20),
				N:      n,
				Writer: int64(r.Intn(1 << 16)),
				Add:    r.Intn(2) == 0,
			}
			buf = AppendRunHeader(buf, h)
			for k := 0; k < n*es; k++ {
				buf = append(buf, byte(r.Uint64()))
			}
		}
	}
	return buf
}

func TestCommitDeltaRoundTrip(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		raw := randomRawStream(r)
		enc, err := AppendCommitDelta(nil, raw, sizes8and4)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		dec, err := DecodeCommitDelta(enc, sizes8and4)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !bytes.Equal(raw, dec) {
			t.Fatalf("trial %d: round trip changed the stream (%d -> %d -> %d bytes)",
				trial, len(raw), len(enc), len(dec))
		}
	}
	// The empty stream is its own encoding.
	if enc, err := AppendCommitDelta(nil, nil, sizes8and4); err != nil || len(enc) != 0 {
		t.Errorf("empty stream encoded to %d bytes, err %v", len(enc), err)
	}
	if dec, err := DecodeCommitDelta(nil, sizes8and4); err != nil || len(dec) != 0 {
		t.Errorf("empty stream decoded to %d bytes, err %v", len(dec), err)
	}
}

// cgScatterStream models the write set the delta codec targets: a CG /
// stencil transpose scatter — single-element Add runs at small
// ascending strides, long stretches from one writer, offsets deep in a
// large array. This is also the stream shape BENCH_wire measures.
func cgScatterStream(r *rng.RNG, nRuns int) []byte {
	var buf []byte
	buf = AppendBlockHeader(buf, 0, nRuns)
	lo := 100_000 + r.Intn(10_000)
	writer := int64(r.Intn(64))
	for i := 0; i < nRuns; i++ {
		if i > 0 && r.Intn(32) == 0 {
			writer = int64(r.Intn(1024))
			lo += r.Intn(4096)
		}
		lo += 1 + r.Intn(8)
		buf = AppendRunHeader(buf, RunHeader{Lo: lo, N: 1, Writer: writer, Add: true})
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.NormFloat64()))
	}
	return buf
}

func TestCommitDeltaRatioOnScatterStream(t *testing.T) {
	raw := cgScatterStream(rng.New(7), 20_000)
	enc, err := AppendCommitDelta(nil, raw, sizes8and4)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCommitDelta(enc, sizes8and4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, dec) {
		t.Fatal("scatter stream round trip changed the stream")
	}
	ratio := float64(len(raw)) / float64(len(enc))
	if ratio < 1.5 {
		t.Errorf("delta codec compresses the scatter stream %d -> %d bytes (%.2fx), want >= 1.5x",
			len(raw), len(enc), ratio)
	}
	t.Logf("scatter stream: raw %d bytes, delta %d bytes (%.2fx)", len(raw), len(enc), ratio)
}

// TestCommitDeltaNeverMateriallyLarger checks the codec's size bound on
// adversarial streams: the delta form may exceed raw only by the small
// per-run header slack, never by payload expansion.
func TestCommitDeltaNeverMateriallyLarger(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 100; trial++ {
		raw := randomRawStream(r)
		enc, err := AppendCommitDelta(nil, raw, sizes8and4)
		if err != nil {
			t.Fatal(err)
		}
		// Count the runs for the slack bound.
		runs := 0
		rd := NewCommitReader(raw)
		for rd.More() {
			a, n, err := rd.Block()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, _, err := rd.Run(sizes8and4(a)); err != nil {
					t.Fatal(err)
				}
			}
			runs += n
		}
		if len(enc) > len(raw)+3*runs {
			t.Fatalf("trial %d: delta %d bytes vs raw %d with %d runs: exceeds slack bound",
				trial, len(enc), len(raw), runs)
		}
	}
}

// TestCommitDeltaCorruptInput drives the decoder over truncations and
// bit flips of a valid stream: every outcome must be a clean error or a
// clean decode (truncation at a block boundary is a legal shorter
// stream), never a panic or an unterminated parse.
func TestCommitDeltaCorruptInput(t *testing.T) {
	raw := cgScatterStream(rng.New(3), 200)
	enc, err := AppendCommitDelta(nil, raw, sizes8and4)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeCommitDelta(enc[:cut], sizes8and4); err == nil && cut != 0 {
			// Only a prefix ending exactly on a block boundary may decode;
			// for this single-block stream that is offset 0 alone.
			t.Errorf("truncation at %d/%d decoded cleanly", cut, len(enc))
		}
	}
	r := rng.New(12)
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), enc...)
		for k := 0; k < 1+r.Intn(4); k++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		dec, err := DecodeCommitDelta(mut, sizes8and4)
		if err != nil {
			continue
		}
		// A surviving decode must still be a valid raw stream.
		rd := NewCommitReader(dec)
		for rd.More() {
			a, n, err := rd.Block()
			if err != nil {
				break
			}
			es := sizes8and4(a)
			if es <= 0 {
				break
			}
			ok := true
			for i := 0; i < n && ok; i++ {
				_, _, err := rd.Run(es)
				ok = err == nil
			}
			if !ok {
				break
			}
		}
	}
}

func TestCodecParseAndString(t *testing.T) {
	for _, c := range []Codec{CodecRaw, CodecDelta} {
		got, err := ParseCodec(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCodec(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCodec("gzip"); err == nil {
		t.Error("unknown codec name accepted")
	}
	if !SupportedCaps.Has(CodecRaw) || !SupportedCaps.Has(CodecDelta) {
		t.Error("SupportedCaps must include raw and delta")
	}
}
