package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
)

func roundtripFrame(t *testing.T, kind byte, payload []byte) []byte {
	t.Helper()
	framed := AppendFrame(nil, kind, payload)
	gotKind, gotPayload, err := ReadFrame(bufio.NewReader(bytes.NewReader(framed)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if gotKind != kind {
		t.Fatalf("kind = %d, want %d", gotKind, kind)
	}
	return gotPayload
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 4096)} {
		got := roundtripFrame(t, KindMsg, payload)
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestFrameStreamsBackToBack(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, KindMsg, []byte("one"))
	buf = AppendFrame(buf, KindCommitEnd, EncodeCommitEnd(7))
	br := bufio.NewReader(bytes.NewReader(buf))
	k1, p1, err := ReadFrame(br)
	if err != nil || k1 != KindMsg || string(p1) != "one" {
		t.Fatalf("first frame = (%d, %q, %v)", k1, p1, err)
	}
	k2, p2, err := ReadFrame(br)
	if err != nil || k2 != KindCommitEnd {
		t.Fatalf("second frame = (%d, %v)", k2, err)
	}
	if phase, err := DecodeCommitEnd(p2); err != nil || phase != 7 {
		t.Fatalf("commit end = (%d, %v)", phase, err)
	}
	if _, _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("trailing read err = %v, want io.EOF", err)
	}
}

func TestFrameTruncatedAndOversized(t *testing.T) {
	full := AppendFrame(nil, KindMsg, []byte("payload"))
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(full[:len(full)-3]))); err == nil {
		t.Fatal("truncated frame: want error")
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], MaxFrame+1)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge[:]))); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized frame err = %v", err)
	}
	var zero [4]byte
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(zero[:]))); err == nil {
		t.Fatal("zero-length frame: want error")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Rank: 3, Nodes: 8, LittleEndian: NativeLittleEndian(), Caps: SupportedCaps, Prefer: CodecDelta}
	got, err := DecodeHello(EncodeHello(h), 8)
	if err != nil {
		t.Fatalf("DecodeHello: %v", err)
	}
	if got != h {
		t.Fatalf("hello = %+v, want %+v", got, h)
	}
	if _, err := DecodeHello(EncodeHello(h), 4); err == nil {
		t.Fatal("node-count mismatch: want error")
	}
	bad := EncodeHello(h)
	bad[0]++
	if _, err := DecodeHello(bad, 8); err == nil {
		t.Fatal("bad magic: want error")
	}
}

func TestMsgRoundTrip(t *testing.T) {
	tag, data, hasData, err := DecodeMsg(EncodeMsg(42, []byte{9, 8, 7}, true))
	if err != nil || tag != 42 || !hasData || !bytes.Equal(data, []byte{9, 8, 7}) {
		t.Fatalf("msg = (%d, %v, %v, %v)", tag, data, hasData, err)
	}
	// Nil payload (a barrier token) is distinguishable from empty data.
	tag, data, hasData, err = DecodeMsg(EncodeMsg(1<<24, nil, false))
	if err != nil || tag != 1<<24 || hasData || len(data) != 0 {
		t.Fatalf("nil msg = (%d, %v, %v, %v)", tag, data, hasData, err)
	}
	if _, _, _, err := DecodeMsg([]byte{1, 2}); err == nil {
		t.Fatal("short msg: want error")
	}
}

func TestReadReqRespRoundTrip(t *testing.T) {
	id, array, lo, hi, err := DecodeReadReq(EncodeReadReq(99, 2, 10, 250))
	if err != nil || id != 99 || array != 2 || lo != 10 || hi != 250 {
		t.Fatalf("read req = (%d, %d, %d, %d, %v)", id, array, lo, hi, err)
	}
	gotID, data, err := DecodeReadResp(EncodeReadResp(99, []byte{5, 6}))
	if err != nil || gotID != 99 || !bytes.Equal(data, []byte{5, 6}) {
		t.Fatalf("read resp = (%d, %v, %v)", gotID, data, err)
	}
}

func TestCommitStreamRoundTrip(t *testing.T) {
	vals := []float64{1.5, math.Pi, -0.25}
	raw := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	var buf []byte
	buf = AppendBlockHeader(buf, 4, 2)
	buf = AppendRunHeader(buf, RunHeader{Lo: 100, N: 3, Writer: (2 << 32) | 7})
	buf = append(buf, raw...)
	buf = AppendRunHeader(buf, RunHeader{Lo: 0, N: 1, Writer: 1, Add: true})
	buf = append(buf, raw[:8]...)
	buf = AppendBlockHeader(buf, 9, 0)

	r := NewCommitReader(buf)
	if !r.More() {
		t.Fatal("More() = false on non-empty stream")
	}
	array, nRuns, err := r.Block()
	if err != nil || array != 4 || nRuns != 2 {
		t.Fatalf("block 1 = (%d, %d, %v)", array, nRuns, err)
	}
	h, b, err := r.Run(8)
	if err != nil || h.Lo != 100 || h.N != 3 || h.Writer != (2<<32)|7 || h.Add || !bytes.Equal(b, raw) {
		t.Fatalf("run 1 = (%+v, %v)", h, err)
	}
	h, b, err = r.Run(8)
	if err != nil || h.Lo != 0 || h.N != 1 || !h.Add || !bytes.Equal(b, raw[:8]) {
		t.Fatalf("run 2 = (%+v, %v)", h, err)
	}
	array, nRuns, err = r.Block()
	if err != nil || array != 9 || nRuns != 0 {
		t.Fatalf("block 2 = (%d, %d, %v)", array, nRuns, err)
	}
	if r.More() {
		t.Fatal("More() = true at end of stream")
	}
}

func TestCommitStreamCorruption(t *testing.T) {
	var buf []byte
	buf = AppendBlockHeader(buf, 1, 1)
	buf = AppendRunHeader(buf, RunHeader{Lo: 0, N: 10, Writer: 0})
	// Run claims 10 elements but carries only 4 bytes.
	buf = append(buf, 1, 2, 3, 4)
	r := NewCommitReader(buf)
	if _, _, err := r.Block(); err != nil {
		t.Fatalf("Block: %v", err)
	}
	if _, _, err := r.Run(8); err == nil {
		t.Fatal("overrunning run: want error")
	}
	if _, _, err := NewCommitReader([]byte{0x80}).Block(); err == nil {
		t.Fatal("corrupt uvarint: want error")
	}
}
