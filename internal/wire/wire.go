// Package wire defines the binary protocol of the distributed PPM
// runtime: length-prefixed frames carrying the handshake, node-level
// messages (point-to-point sends, reduction and barrier tokens travel as
// ordinary tagged messages), bundled remote reads, phase-commit deltas,
// and abort notices.
//
// Framing is deliberately minimal: a 4-byte little-endian total length,
// one kind byte, and a kind-specific payload. Frame headers and message
// headers are little-endian (or uvarint) so they are unambiguous on the
// wire; element payloads travel in native byte order, which the
// handshake verifies is the same on both ends (the launcher only spawns
// localhost processes, but the check keeps the failure mode honest).
//
// Commit deltas use a run-length grammar mirroring the runtime's staged
// write records, so the distributed commit applies exactly the runs the
// in-process commit would:
//
//	stream := block*
//	block  := uvarint(arrayID) uvarint(nRuns) run^nRuns
//	run    := u8(flags) uvarint(lo) uvarint(n) uvarint(writer) n*elemBytes
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"
)

// Protocol identity, checked during the handshake.
const (
	Magic   = 0x5050_4d31 // "PPM1"
	Version = 1
)

// MaxFrame bounds one frame (length prefix excluded); a peer announcing
// more is protocol corruption, not a large payload.
const MaxFrame = 1 << 30

// Frame kinds.
const (
	KindHello      = byte(iota + 1) // dialer's handshake
	KindHelloAck                    // acceptor's handshake reply
	KindMsg                         // tagged node-level message (mp traffic)
	KindReadReq                     // bundled remote read request
	KindReadResp                    // remote read reply
	KindCommitData                  // one chunk of a phase-commit delta
	KindCommitEnd                   // end of a peer's delta for one phase
	KindAbort                       // fatal error broadcast
	KindBye                         // orderly shutdown announcement (empty payload)
	KindPing                        // failure-detector probe (empty payload)
	KindPong                        // failure-detector reply (empty payload)
)

// NativeLittleEndian reports the host's element byte order, exchanged in
// the handshake.
func NativeLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// AppendFrame appends a complete frame (length prefix, kind, payload) to
// buf and returns the extended slice.
func AppendFrame(buf []byte, kind byte, payload []byte) []byte {
	total := 1 + len(payload)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(total))
	buf = append(buf, kind)
	return append(buf, payload...)
}

// ReadFrame reads one frame from br, returning its kind and payload. The
// payload is freshly allocated (the caller may retain it).
func ReadFrame(br *bufio.Reader) (kind byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	total := binary.LittleEndian.Uint32(hdr[:])
	if total < 1 || total > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range [1, %d]", total, MaxFrame)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return body[0], body[1:], nil
}

// Hello is the handshake payload exchanged on every connection before
// any traffic; both ends verify magic, version, byte order, and the
// cluster shape, and advertise their commit-stream codec support.
type Hello struct {
	Rank         int
	Nodes        int
	LittleEndian bool
	// Caps is the set of commit-stream codecs this side can decode;
	// Prefer is the codec it wants to send with. Peers speaking the
	// 15-byte pre-codec hello decode raw only (see DecodeHello).
	Caps   CodecCaps
	Prefer Codec
}

// EncodeHello builds a Hello (or HelloAck) payload: the 15-byte
// identity block followed by the two codec-negotiation bytes.
func EncodeHello(h Hello) []byte {
	buf := make([]byte, 0, 17)
	buf = binary.LittleEndian.AppendUint32(buf, Magic)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	e := byte(0)
	if h.LittleEndian {
		e = 1
	}
	buf = append(buf, e)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Rank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Nodes))
	caps := h.Caps
	if caps == 0 {
		caps = 1 << CodecRaw
	}
	return append(buf, byte(caps), byte(h.Prefer))
}

// DecodeHello parses and validates a Hello payload against this side's
// view of the cluster. A 15-byte payload is the pre-codec hello: it is
// accepted as a raw-only peer, so commit streams toward (and from) such
// a build fall back to the raw codec.
func DecodeHello(p []byte, wantNodes int) (Hello, error) {
	if len(p) != 15 && len(p) != 17 {
		return Hello{}, fmt.Errorf("wire: hello payload is %d bytes, want 15 or 17", len(p))
	}
	if m := binary.LittleEndian.Uint32(p[0:]); m != Magic {
		return Hello{}, fmt.Errorf("wire: bad magic %#x (not a PPM node?)", m)
	}
	if v := binary.LittleEndian.Uint16(p[4:]); v != Version {
		return Hello{}, fmt.Errorf("wire: protocol version mismatch: peer %d, local %d", v, Version)
	}
	h := Hello{
		LittleEndian: p[6] == 1,
		Rank:         int(int32(binary.LittleEndian.Uint32(p[7:]))),
		Nodes:        int(int32(binary.LittleEndian.Uint32(p[11:]))),
		Caps:         1 << CodecRaw,
		Prefer:       CodecRaw,
	}
	if len(p) == 17 {
		h.Caps = CodecCaps(p[15]) | 1<<CodecRaw
		h.Prefer = Codec(p[16])
	}
	if h.LittleEndian != NativeLittleEndian() {
		return Hello{}, fmt.Errorf("wire: byte-order mismatch with peer rank %d", h.Rank)
	}
	if h.Nodes != wantNodes {
		return Hello{}, fmt.Errorf("wire: peer rank %d believes the cluster has %d nodes, local says %d", h.Rank, h.Nodes, wantNodes)
	}
	if h.Rank < 0 || h.Rank >= wantNodes {
		return Hello{}, fmt.Errorf("wire: peer rank %d out of range [0, %d)", h.Rank, wantNodes)
	}
	return h, nil
}

// EncodeMsg builds a Msg payload: a tagged message with an optional data
// body. hasData distinguishes an empty payload from a nil one (barrier
// and other token messages are nil).
func EncodeMsg(tag int64, data []byte, hasData bool) []byte {
	buf := make([]byte, 0, 9+len(data))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tag))
	b := byte(0)
	if hasData {
		b = 1
	}
	buf = append(buf, b)
	return append(buf, data...)
}

// DecodeMsg parses a Msg payload. data aliases p.
func DecodeMsg(p []byte) (tag int64, data []byte, hasData bool, err error) {
	if len(p) < 9 {
		return 0, nil, false, fmt.Errorf("wire: msg payload is %d bytes, want >= 9", len(p))
	}
	tag = int64(binary.LittleEndian.Uint64(p))
	hasData = p[8] == 1
	if !hasData && len(p) != 9 {
		return 0, nil, false, fmt.Errorf("wire: nil-payload msg carries %d data bytes", len(p)-9)
	}
	return tag, p[9:], hasData, nil
}

// EncodeReadReq builds a ReadReq payload: fetch elements [lo, hi) of the
// identified shared array from their owner.
func EncodeReadReq(id uint64, array, lo, hi int) []byte {
	buf := make([]byte, 0, 28)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(array))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lo))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(hi))
	return buf
}

// DecodeReadReq parses a ReadReq payload.
func DecodeReadReq(p []byte) (id uint64, array, lo, hi int, err error) {
	if len(p) != 28 {
		return 0, 0, 0, 0, fmt.Errorf("wire: read request is %d bytes, want 28", len(p))
	}
	id = binary.LittleEndian.Uint64(p)
	array = int(int32(binary.LittleEndian.Uint32(p[8:])))
	lo = int(int64(binary.LittleEndian.Uint64(p[12:])))
	hi = int(int64(binary.LittleEndian.Uint64(p[20:])))
	return id, array, lo, hi, nil
}

// EncodeReadResp builds a ReadResp payload carrying the requested bytes.
func EncodeReadResp(id uint64, data []byte) []byte {
	buf := make([]byte, 0, 8+len(data))
	buf = binary.LittleEndian.AppendUint64(buf, id)
	return append(buf, data...)
}

// DecodeReadResp parses a ReadResp payload. data aliases p.
func DecodeReadResp(p []byte) (id uint64, data []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("wire: read response is %d bytes, want >= 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// EncodeCommitData builds a CommitData payload: one chunk of the commit
// stream for the given phase sequence number.
func EncodeCommitData(phase int64, chunk []byte) []byte {
	buf := make([]byte, 0, 8+len(chunk))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(phase))
	return append(buf, chunk...)
}

// DecodeCommitData parses a CommitData payload. chunk aliases p.
func DecodeCommitData(p []byte) (phase int64, chunk []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("wire: commit chunk is %d bytes, want >= 8", len(p))
	}
	return int64(binary.LittleEndian.Uint64(p)), p[8:], nil
}

// EncodeCommitEnd builds a CommitEnd payload.
func EncodeCommitEnd(phase int64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), uint64(phase))
}

// DecodeCommitEnd parses a CommitEnd payload.
func DecodeCommitEnd(p []byte) (phase int64, err error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("wire: commit end is %d bytes, want 8", len(p))
	}
	return int64(binary.LittleEndian.Uint64(p)), nil
}

// EncodeAbort builds an Abort payload from the fatal error's message.
func EncodeAbort(msg string) []byte { return []byte(msg) }

// DecodeAbort parses an Abort payload.
func DecodeAbort(p []byte) string { return string(p) }

// RunHeader describes one run of a commit block: n consecutive elements
// starting at lo, written (or added, per Add) by the identified writer.
type RunHeader struct {
	Lo, N  int
	Writer int64
	Add    bool
}

const runFlagAdd = 1

// AppendBlockHeader starts a commit block for one array.
func AppendBlockHeader(buf []byte, array, nRuns int) []byte {
	buf = binary.AppendUvarint(buf, uint64(array))
	return binary.AppendUvarint(buf, uint64(nRuns))
}

// AppendRunHeader appends one run header; the caller appends the run's
// n*elemBytes of native-order element bytes immediately after.
func AppendRunHeader(buf []byte, h RunHeader) []byte {
	flags := byte(0)
	if h.Add {
		flags = runFlagAdd
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(h.Lo))
	buf = binary.AppendUvarint(buf, uint64(h.N))
	return binary.AppendUvarint(buf, uint64(h.Writer))
}

// CommitReader iterates a commit stream (the concatenation of a peer's
// CommitData chunks for one phase).
type CommitReader struct {
	data []byte
	off  int
}

// NewCommitReader wraps a complete commit stream.
func NewCommitReader(data []byte) *CommitReader { return &CommitReader{data: data} }

// Reset repoints the reader at a new stream, allowing value reuse
// without reallocating the reader.
func (r *CommitReader) Reset(data []byte) {
	r.data = data
	r.off = 0
}

// More reports whether another block follows.
func (r *CommitReader) More() bool { return r.off < len(r.data) }

func (r *CommitReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: corrupt commit stream at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// Block reads the next block header.
func (r *CommitReader) Block() (array, nRuns int, err error) {
	a, err := r.uvarint()
	if err != nil {
		return 0, 0, err
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, 0, err
	}
	return int(a), int(n), nil
}

// Run reads the next run of the current block; raw holds the run's
// n*elemBytes element bytes and aliases the stream.
func (r *CommitReader) Run(elemBytes int) (h RunHeader, raw []byte, err error) {
	if r.off >= len(r.data) {
		return h, nil, fmt.Errorf("wire: commit stream ends inside a block")
	}
	h.Add = r.data[r.off]&runFlagAdd != 0
	r.off++
	lo, err := r.uvarint()
	if err != nil {
		return h, nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return h, nil, err
	}
	w, err := r.uvarint()
	if err != nil {
		return h, nil, err
	}
	h.Lo, h.N, h.Writer = int(lo), int(n), int64(w)
	nb := h.N * elemBytes
	if h.N < 0 || nb < 0 || r.off+nb > len(r.data) {
		return h, nil, fmt.Errorf("wire: commit run of %d elements overruns the stream", h.N)
	}
	raw = r.data[r.off : r.off+nb]
	r.off += nb
	return h, raw, nil
}
