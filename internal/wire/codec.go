package wire

import (
	"encoding/binary"
	"fmt"
)

// Commit-stream codecs. A Codec names the encoding of the CommitData
// payload bytes for one direction of one link; both directions of the
// handshake advertise which codecs a side can decode (CodecCaps) and
// which it wants to send (Prefer), and Negotiate derives the same
// per-link answer on both ends. CodecRaw is the PR-4 run-length grammar
// and is mandatory; CodecDelta is an optional delta+varint transcoding
// of the same grammar targeting sparse scatter streams (short runs,
// near-monotone offsets), where the per-run header — flags, absolute
// offset, length, writer id — dominates the element payload.
//
// The delta codec is a pure transcoder: it never changes which runs a
// commit applies, only how their headers travel. Element bytes stay in
// native order uncompressed, so a delta stream is never materially
// larger than its raw form (the bound is a few bytes per block for the
// first run's absolute offset), and decode→apply is bit-identical to
// raw by construction.
//
//	delta  := block*
//	block  := uvarint(arrayID) uvarint(nRuns) run^nRuns
//	run    := uvarint(hdr) [zigzag(writer-prevWriter)] [uvarint(n)] n*elemBytes
//	hdr    := zigzag(lo-prevEnd)<<3 | single(4) | sameWriter(2) | add(1)
//
// prevEnd and prevWriter reset to 0 at each block header; prevEnd is
// the previous run's lo+n. A single-element run (the scatter common
// case) omits its length; a run by the previous run's writer (VPs drain
// their write buffers contiguously) omits its writer.
type Codec byte

const (
	// CodecRaw is the uncompressed commit grammar (wire.go); every build
	// decodes it, and it is the fallback whenever negotiation fails.
	CodecRaw Codec = 0
	// CodecDelta is the delta+varint header transcoding described above.
	CodecDelta Codec = 1
)

func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecDelta:
		return "delta"
	}
	return fmt.Sprintf("codec(%d)", byte(c))
}

// ParseCodec parses a codec name as used by the -wire-codec flag.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "raw":
		return CodecRaw, nil
	case "delta":
		return CodecDelta, nil
	}
	return CodecRaw, fmt.Errorf("wire: unknown codec %q (want raw or delta)", s)
}

// CodecCaps is the bitmask of codecs one side can decode, advertised in
// its Hello: bit i set means Codec(i) is understood.
type CodecCaps byte

// Has reports whether caps includes c.
func (caps CodecCaps) Has(c Codec) bool { return caps&(1<<c) != 0 }

// SupportedCaps is what this build advertises.
const SupportedCaps = CodecCaps(1<<CodecRaw | 1<<CodecDelta)

// Negotiate resolves the codec a sender preferring prefer uses toward a
// receiver advertising caps. Both ends evaluate it — the sender with
// the peer's caps, the receiver with its own — and get the same answer,
// so no extra round trip is needed: anything the receiver cannot decode
// (including codecs from a newer build) falls back to raw.
func Negotiate(prefer Codec, caps CodecCaps) Codec {
	if prefer != CodecRaw && caps.Has(prefer) {
		return prefer
	}
	return CodecRaw
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Delta run-header flag bits (low three bits of hdr).
const (
	deltaAdd        = 1 // run is an Add (same meaning as runFlagAdd)
	deltaSameWriter = 2 // writer equals the previous run's writer
	deltaSingle     = 4 // n == 1, length omitted
)

// AppendCommitDelta transcodes a raw commit stream into the delta codec
// and appends it to dst. elemBytes maps an array id to its element
// size; ids the callback does not know (non-positive return) are
// protocol corruption.
func AppendCommitDelta(dst, raw []byte, elemBytes func(array int) int) ([]byte, error) {
	rd := NewCommitReader(raw)
	for rd.More() {
		array, nRuns, err := rd.Block()
		if err != nil {
			return nil, err
		}
		es := elemBytes(array)
		if es <= 0 {
			return nil, fmt.Errorf("wire: delta encode: unknown array id %d", array)
		}
		dst = AppendBlockHeader(dst, array, nRuns)
		prevEnd, prevWriter := 0, int64(0)
		for i := 0; i < nRuns; i++ {
			h, elems, err := rd.Run(es)
			if err != nil {
				return nil, err
			}
			hdr := zigzag(int64(h.Lo-prevEnd)) << 3
			if h.N == 1 {
				hdr |= deltaSingle
			}
			if h.Writer == prevWriter {
				hdr |= deltaSameWriter
			}
			if h.Add {
				hdr |= deltaAdd
			}
			dst = binary.AppendUvarint(dst, hdr)
			if h.Writer != prevWriter {
				dst = binary.AppendUvarint(dst, zigzag(h.Writer-prevWriter))
			}
			if h.N != 1 {
				dst = binary.AppendUvarint(dst, uint64(h.N))
			}
			dst = append(dst, elems...)
			prevEnd = h.Lo + h.N
			prevWriter = h.Writer
		}
	}
	return dst, nil
}

// DecodeCommitDelta transcodes a delta commit stream back into the raw
// grammar. Every decoded run must be representable in the raw grammar
// (non-negative offset, length, and writer) and every element payload
// must lie inside the stream, so corrupt or truncated input produces an
// error, never a panic or a desynced parse.
func DecodeCommitDelta(enc []byte, elemBytes func(array int) int) ([]byte, error) {
	return DecodeCommitDeltaInto(nil, enc, elemBytes)
}

// DecodeCommitDeltaInto is DecodeCommitDelta appending into dst
// (truncated first), so steady-state callers can reuse one decode
// buffer per peer instead of allocating a fresh stream every commit.
func DecodeCommitDeltaInto(dst, enc []byte, elemBytes func(array int) int) ([]byte, error) {
	if need := len(enc) + len(enc)/2; cap(dst) < need {
		dst = make([]byte, 0, need)
	} else {
		dst = dst[:0]
	}
	off := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(enc[off:])
		if n <= 0 {
			return 0, fmt.Errorf("wire: corrupt delta commit stream at offset %d", off)
		}
		off += n
		return v, nil
	}
	for off < len(enc) {
		arrayU, err := uvarint()
		if err != nil {
			return nil, err
		}
		nRunsU, err := uvarint()
		if err != nil {
			return nil, err
		}
		array, nRuns := int(arrayU), int(nRunsU)
		if array < 0 || nRuns < 0 {
			return nil, fmt.Errorf("wire: delta block header (array %d, %d runs) out of range", array, nRuns)
		}
		es := elemBytes(array)
		if es <= 0 {
			return nil, fmt.Errorf("wire: delta decode: unknown array id %d", array)
		}
		dst = AppendBlockHeader(dst, array, nRuns)
		prevEnd, prevWriter := 0, int64(0)
		for i := 0; i < nRuns; i++ {
			hdr, err := uvarint()
			if err != nil {
				return nil, err
			}
			writer := prevWriter
			if hdr&deltaSameWriter == 0 {
				dw, err := uvarint()
				if err != nil {
					return nil, err
				}
				writer = prevWriter + unzigzag(dw)
			}
			n := 1
			if hdr&deltaSingle == 0 {
				nU, err := uvarint()
				if err != nil {
					return nil, err
				}
				n = int(nU)
			}
			lo := prevEnd + int(unzigzag(hdr>>3))
			if lo < 0 || n < 0 || writer < 0 {
				return nil, fmt.Errorf("wire: delta run (lo=%d, n=%d, writer=%d) not representable", lo, n, writer)
			}
			if n > (len(enc)-off)/es {
				return nil, fmt.Errorf("wire: delta run of %d elements overruns the stream", n)
			}
			nb := n * es
			dst = AppendRunHeader(dst, RunHeader{Lo: lo, N: n, Writer: writer, Add: hdr&deltaAdd != 0})
			dst = append(dst, enc[off:off+nb]...)
			off += nb
			prevEnd = lo + n
			prevWriter = writer
		}
	}
	return dst, nil
}
