// Package core implements the Parallel Phase Model runtime — the paper's
// primary contribution.
//
// A PPM program is SPMD over the nodes of a cluster. On each node it may
// start K virtual processors (VPs) with Runtime.Do; VP bodies contain
// global and node *phases*. Within a phase, every read of a shared
// variable observes the value the variable had at the beginning of the
// phase, and every write takes effect only after the end of the phase,
// where there is an implicit barrier (cluster-wide for global phases,
// node-wide for node phases). Shared variables come in two kinds:
// Global[T] (one array, block-distributed over the cluster's virtual
// shared memory) and Node[T] (one array per node, in node shared memory).
//
// The runtime performs the optimizations the paper describes: fine-
// grained remote accesses are bundled into coarse packages, bundle
// traffic is overlapped with computation, and per-node traffic is
// serialized through one NIC rather than contending per core. Each of
// these is a switch in Options so the benchmarks can ablate them.
package core

import (
	"fmt"
	"os"

	"ppm/internal/cluster"
	"ppm/internal/machine"
	"ppm/internal/vtime"
)

// Options configures one PPM run.
type Options struct {
	// Nodes is the number of cluster nodes (each runs one SPMD copy).
	Nodes int
	// CoresPerNode overrides the machine's core count when positive.
	CoresPerNode int
	// Machine is the cost model; machine.Franklin() if nil.
	Machine *machine.Machine

	// BundleBytes is the maximum payload of one remote-access bundle.
	// Zero selects the default (8192).
	BundleBytes int
	// NoBundling disables remote-access bundling: every fine-grained
	// remote element becomes its own message. Ablation switch for the
	// paper's "bundling fine-grained accesses" claim.
	NoBundling bool
	// NoOverlap disables communication/computation overlap: bundle
	// traffic is charged strictly after the phase's computation.
	NoOverlap bool
	// NoReadCache disables the runtime's per-phase remote-read cache.
	// Within a phase a shared variable is immutable (reads observe the
	// begin-of-phase value), so the runtime normally fetches each remote
	// element at most once per node per phase into node shared memory and
	// serves repeats locally; this switch charges every repeated fine-
	// grained read as fresh traffic. The cache set is tracked per VP
	// (interval runs for block reads, scattered indices for scalar reads)
	// and merged into the node-level dedup counts at commit, so VPs never
	// contend on a lock in the read hot path. Ablation switch.
	NoReadCache bool
	// StaticSchedule maps VPs to cores in contiguous blocks (the naive
	// compiler loop transform) instead of the runtime's dynamic load
	// balancing. Ablation switch.
	StaticSchedule bool
	// StrictWrites makes the commit step fail the run when two different
	// writers Write (not Add) the same element of a shared array in one
	// phase. Costs host time and memory; meant for debugging.
	StrictWrites bool

	// NoPlanCache disables the steady-state phase-plan cache. With the
	// cache on (the default), each Do shape — keyed by (K, body code
	// pointer) — keeps its VP workers warm between invocations and
	// records a per-phase plan of the read-set merge (run lists, merged
	// per-owner traffic, remote fetch cover); repeated phases validate
	// the recorded shape against what the VPs actually accessed and
	// replay the plan instead of re-sorting and re-merging, making warm
	// iterations allocation-free. A mismatch (the program changed its
	// access shape) falls back to the cold rebuild, so results never
	// depend on the cache: modeled counters, outputs, and conflicts are
	// bit-identical either way. Setting PPM_PLAN_CACHE=0 in the
	// environment forces this off for every run; PPM_PLAN_CACHE=1
	// forces it on (used by CI to run the suite both ways).
	NoPlanCache bool

	// Warm, if non-nil, carries the plan cache across RunDist calls on
	// one engine: warm Do workers, their arenas, and recorded phase
	// plans survive the end of the run and are re-adopted by the next
	// RunDist handed the same session — provided the session's key (set
	// with WarmSession.SetKey) is unchanged, which callers use to scope
	// reuse to identical job specs. This is what lets a long-lived
	// serving fleet run repeated jobs at steady-state speed instead of
	// rebuilding the cache per job. Ignored by the simulator and when
	// the plan cache is off.
	Warm *WarmSession

	// OnPhase, if non-nil, is called after each committed global phase
	// in a distributed run with the number of phases this rank has
	// committed. It runs on the node's coordination goroutine — keep it
	// fast and never let it panic. Progress streaming hooks in here.
	OnPhase func(phases int64)

	// Parallel runs the simulator under the cluster's conservative
	// parallel scheduler: node compute sections (phase bodies, commit
	// application) execute concurrently on host cores while every
	// operation on shared simulator state is re-serialized in
	// sequential order, so the report is bit-identical to a sequential
	// run. Host-time optimization only; modeled results never change.
	Parallel bool

	// Trace, if non-nil, receives scheduler events (see cluster.Config).
	Trace func(string)
	// Observer, if non-nil, receives structured cluster events (sends,
	// receives, barriers, exits) for the trace/timeline tooling.
	Observer func(cluster.Event)

	// Checkpoint enables phase-boundary checkpoint/restart in distributed
	// runs (RunDist); the simulator ignores it, so checkpoint-aware
	// programs run unchanged under both backends.
	Checkpoint *CheckpointConfig
}

// CheckpointConfig configures phase-boundary checkpoint/restart. Each
// rank serializes its committed shared-array state plus phase counter
// and NodeStats to a per-rank file in Dir at the program's
// Runtime.MaybeCheckpoint markers; a relaunched fleet started with
// Restore agrees on the newest checkpoint every rank holds and resumes
// from it (see DESIGN.md §4.10).
type CheckpointConfig struct {
	// Dir is the checkpoint directory, shared by all ranks of a
	// localhost fleet (per-rank files never collide across ranks).
	Dir string
	// EveryPhases is the minimum number of committed global phases
	// between checkpoint writes (default 1: every marker that follows at
	// least one new phase writes).
	EveryPhases int
	// Restore makes Runtime.RestoreCheckpoint load the newest checkpoint
	// present on every rank; without it the marker is a no-op.
	Restore bool

	// HostProcs and HostProc describe elastic-rescale hosting: when a
	// fleet of Nodes logical ranks is re-homed onto HostProcs < Nodes
	// host processes (each process hosting a contiguous block of ranks,
	// partition.NewBlock(Nodes, HostProcs)), this rank runs inside host
	// process HostProc. The logical mesh is unchanged — every rank still
	// restores its own per-rank checkpoint — so results stay bit-
	// identical; the fields only let RestoreCheckpoint record the
	// re-homing in NodeStats.Rescale. Zero means native 1:1 hosting.
	HostProcs int
	HostProc  int
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Nodes <= 0 {
		return out, fmt.Errorf("core: Nodes must be positive, got %d", out.Nodes)
	}
	if out.Machine == nil {
		out.Machine = machine.Franklin()
	}
	if err := out.Machine.Validate(); err != nil {
		return out, err
	}
	if out.CoresPerNode == 0 {
		out.CoresPerNode = out.Machine.CoresPerNode
	}
	if out.CoresPerNode <= 0 {
		return out, fmt.Errorf("core: CoresPerNode must be positive, got %d", out.CoresPerNode)
	}
	if out.BundleBytes == 0 {
		out.BundleBytes = 8192
	}
	if out.BundleBytes < 0 {
		return out, fmt.Errorf("core: BundleBytes must be positive, got %d", out.BundleBytes)
	}
	if out.Checkpoint != nil {
		c := *out.Checkpoint
		if c.Dir == "" {
			return out, fmt.Errorf("core: Checkpoint.Dir must be set")
		}
		if c.EveryPhases <= 0 {
			c.EveryPhases = 1
		}
		if c.HostProcs < 0 || c.HostProcs > out.Nodes {
			return out, fmt.Errorf("core: Checkpoint.HostProcs must be in [0, Nodes], got %d", c.HostProcs)
		}
		if c.HostProcs > 0 && (c.HostProc < 0 || c.HostProc >= c.HostProcs) {
			return out, fmt.Errorf("core: Checkpoint.HostProc must be in [0, HostProcs), got %d", c.HostProc)
		}
		out.Checkpoint = &c
	}
	// PPM_PLAN_CACHE overrides the plan-cache switch for every run in
	// the process (read per run, not at init, so tests can toggle it).
	switch os.Getenv("PPM_PLAN_CACHE") {
	case "0":
		out.NoPlanCache = true
	case "1":
		out.NoPlanCache = false
	}
	return out, nil
}

// NodeStats aggregates PPM runtime activity on one node.
type NodeStats struct {
	Dos          int64 // Runtime.Do invocations
	VPsStarted   int64
	GlobalPhases int64
	NodePhases   int64

	SharedReads  int64 // element reads through shared variables
	SharedWrites int64 // element writes (incl. Add) through shared variables

	RemoteReadElems  int64 // reads served from other nodes' partitions
	RemoteWriteElems int64 // writes destined to other nodes' partitions
	BundlesOut       int64 // bundles this node sent (requests + write pushes)
	BundlesIn        int64 // bundles this node received at commit
	BytesOut         int64 // modeled bundle payload bytes sent
	BytesIn          int64

	// Per-phase time breakdown (accumulated over all phases on the node).
	PhaseComputeTime vtime.Duration // VP work spans, incl. dispatch and fixed costs
	PhaseCommTime    vtime.Duration // communication time not hidden by overlap
	PhaseApplyTime   vtime.Duration // receive-side unpack and commit application

	// Wire counts real transport activity. Only distributed runs fill
	// it; the simulator's modeled traffic lives in the fields above, and
	// the equivalence tests compare reports with Wire zeroed (like the
	// vtime fields, it measures the substrate, not the program).
	Wire WireStats

	// PlanCache counts phase-plan cache activity (see Options.
	// NoPlanCache). Like Wire it measures the host substrate, not the
	// program, so the equivalence tests compare reports with it zeroed.
	PlanCache PlanCacheStats

	// Rescale records elastic-rescale recoveries on this rank (see
	// CheckpointConfig.HostProcs). Like Wire and PlanCache it measures
	// the substrate — where the rank physically ran, not what the
	// program computed — so the equivalence tests compare reports with
	// it zeroed.
	Rescale RescaleStats
}

// RescaleStats records rescaled checkpoint restores on one rank: a
// checkpoint written by FromProcs host processes (one per rank) was
// restored into a fleet squeezed onto ToProcs processes. RanksMoved
// counts the restores in which this rank landed on a host process other
// than its own (i.e. it was re-homed), and ElemsMoved totals the shared-
// array elements that moved with it — its Global partitions plus its
// Node arrays. Totals over PerNode therefore give the fleet-wide ranks
// and elements re-homed by the rescale.
type RescaleStats struct {
	FromProcs  int64
	ToProcs    int64
	Restores   int64
	RanksMoved int64
	ElemsMoved int64
}

func (r *RescaleStats) add(o RescaleStats) {
	// FromProcs/ToProcs describe a topology, not a count: keep the
	// widest from/narrowest to across ranks so Totals still reads as
	// "an N-proc fleet's state now lives on M procs".
	if o.FromProcs > r.FromProcs {
		r.FromProcs = o.FromProcs
	}
	if r.ToProcs == 0 || (o.ToProcs > 0 && o.ToProcs < r.ToProcs) {
		r.ToProcs = o.ToProcs
	}
	r.Restores += o.Restores
	r.RanksMoved += o.RanksMoved
	r.ElemsMoved += o.ElemsMoved
}

// PlanCacheStats counts steady-state phase-plan cache activity on one
// node: how often a committed phase replayed a recorded plan (Hits),
// had to build one cold (Misses), or found a previously valid plan no
// longer matching the phase's access shape (Invalidations, a subset of
// Misses). RunsReplayed totals the read-set runs whose sort/merge/
// owner-split was skipped on hits; AllocsSaved and BytesSaved estimate
// the host allocations and bytes of merge scratch those replays avoided
// (modeled from the recorded plan's size, not measured).
type PlanCacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	RunsReplayed  int64
	AllocsSaved   int64
	BytesSaved    int64
}

func (p *PlanCacheStats) add(o PlanCacheStats) {
	p.Hits += o.Hits
	p.Misses += o.Misses
	p.Invalidations += o.Invalidations
	p.RunsReplayed += o.RunsReplayed
	p.AllocsSaved += o.AllocsSaved
	p.BytesSaved += o.BytesSaved
}

// WireStats counts one node process's real wire activity in a
// distributed run: what actually went onto (or was saved from) the
// TCP links, as opposed to the modeled bundle counters. The engine
// supplies the transport-side fields; core fills the commit-codec and
// read-coalescing fields. BENCH_wire.json and any future /metrics
// endpoint read these same numbers.
type WireStats struct {
	FramesOut     int64 // wire frames handed to the per-peer writers
	Flushes       int64 // TCP writes (bundles actually shipped)
	ForcedFlushes int64 // flushes forced early by a critical-path frame
	BytesOnWire   int64 // bytes written to sockets, after bundling and codec

	ReadReqsSent   int64 // remote reads that went to the wire
	ReadsCoalesced int64 // VP fetch waits satisfied by another VP's in-flight request

	CommitBytesRaw int64 // commit-stream bytes before the codec
	CommitBytesEnc int64 // commit-stream bytes after the codec (== raw under CodecRaw)
}

func (w *WireStats) add(o WireStats) {
	w.FramesOut += o.FramesOut
	w.Flushes += o.Flushes
	w.ForcedFlushes += o.ForcedFlushes
	w.BytesOnWire += o.BytesOnWire
	w.ReadReqsSent += o.ReadReqsSent
	w.ReadsCoalesced += o.ReadsCoalesced
	w.CommitBytesRaw += o.CommitBytesRaw
	w.CommitBytesEnc += o.CommitBytesEnc
}

// sub subtracts a baseline snapshot, turning an engine's cumulative
// lifetime counters into one run's share (reused engines serve many
// runs; each run reports only its own traffic).
func (w *WireStats) sub(o WireStats) {
	w.FramesOut -= o.FramesOut
	w.Flushes -= o.Flushes
	w.ForcedFlushes -= o.ForcedFlushes
	w.BytesOnWire -= o.BytesOnWire
	w.ReadReqsSent -= o.ReadReqsSent
	w.ReadsCoalesced -= o.ReadsCoalesced
	w.CommitBytesRaw -= o.CommitBytesRaw
	w.CommitBytesEnc -= o.CommitBytesEnc
}

// Add accumulates o into s field by field (used by the distributed
// launcher to rebuild run totals from per-process reports).
func (s *NodeStats) Add(o NodeStats) { s.add(o) }

func (s *NodeStats) add(o NodeStats) {
	s.Dos += o.Dos
	s.VPsStarted += o.VPsStarted
	s.GlobalPhases += o.GlobalPhases
	s.NodePhases += o.NodePhases
	s.SharedReads += o.SharedReads
	s.SharedWrites += o.SharedWrites
	s.RemoteReadElems += o.RemoteReadElems
	s.RemoteWriteElems += o.RemoteWriteElems
	s.BundlesOut += o.BundlesOut
	s.BundlesIn += o.BundlesIn
	s.BytesOut += o.BytesOut
	s.BytesIn += o.BytesIn
	s.PhaseComputeTime += o.PhaseComputeTime
	s.PhaseCommTime += o.PhaseCommTime
	s.PhaseApplyTime += o.PhaseApplyTime
	s.Wire.add(o.Wire)
	s.PlanCache.add(o.PlanCache)
	s.Rescale.add(o.Rescale)
}

// Report summarizes a PPM run: the underlying cluster report plus PPM
// runtime statistics. Under StrictWrites, Conflicts holds every
// conflicting update detected (the run's error is only the first); it
// is empty otherwise.
type Report struct {
	Cluster   *cluster.Report
	PerNode   []NodeStats
	Totals    NodeStats
	Conflicts []WriteConflict
}

// Makespan returns the modeled wall-clock time of the run. Distributed
// runs (Cluster == nil) do not model time and report zero.
func (r *Report) Makespan() vtime.Time {
	if r.Cluster == nil {
		return 0
	}
	return r.Cluster.Makespan
}

// String renders a short human-readable summary.
func (r *Report) String() string {
	head := any(r.Cluster)
	if r.Cluster == nil {
		head = "distributed"
	}
	return fmt.Sprintf("%v | dos=%d vps=%d phases=%d/%d reads=%d writes=%d remote(r/w)=%d/%d bundles(out/in)=%d/%d",
		head, r.Totals.Dos, r.Totals.VPsStarted,
		r.Totals.GlobalPhases, r.Totals.NodePhases,
		r.Totals.SharedReads, r.Totals.SharedWrites,
		r.Totals.RemoteReadElems, r.Totals.RemoteWriteElems,
		r.Totals.BundlesOut, r.Totals.BundlesIn)
}
