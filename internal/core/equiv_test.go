package core

import (
	"testing"
	"testing/quick"

	"ppm/internal/machine"
	"ppm/internal/rng"
)

// The block accessors (ReadBlock/WriteBlock/AddBlock) are pure fast
// paths: a program that replaces element-wise loops with block calls
// over the same ranges must be indistinguishable in every modeled
// respect — committed shared state, the values reads observe, virtual
// time, and all runtime counters (including bundle counts and the
// remote-read dedup statistics). This property test generates random
// phase programs and runs each twice, once element-wise and once
// through the block calls, under several Options variants.

// equivOp is one shared-array access a VP performs inside a phase.
type equivOp struct {
	kind   int // 0 read, 1 write, 2 add
	onNode bool
	lo, hi int
}

// equivProgram is a full random program: op lists per phase, node and
// VP rank, plus the shapes needed to build it.
type equivProgram struct {
	nodes, k, phases int
	gn, nn           int
	ops              [][][][]equivOp // [phase][node][rank][]
}

func genEquivProgram(seed uint64) equivProgram {
	r := rng.New(seed)
	p := equivProgram{
		nodes:  1 + r.Intn(3),
		k:      1 + r.Intn(4),
		phases: 1 + r.Intn(3),
		gn:     16 + r.Intn(33),
		nn:     8 + r.Intn(9),
	}
	p.ops = make([][][][]equivOp, p.phases)
	for ph := range p.ops {
		nodePhase := ph%2 == 1
		p.ops[ph] = make([][][]equivOp, p.nodes)
		for nd := range p.ops[ph] {
			p.ops[ph][nd] = make([][]equivOp, p.k)
			for rank := range p.ops[ph][nd] {
				nops := 1 + r.Intn(4)
				list := make([]equivOp, nops)
				for o := range list {
					op := equivOp{kind: r.Intn(3)}
					// Node phases reject remote global access, so
					// they exercise the node array only.
					op.onNode = nodePhase || r.Intn(2) == 1
					n := p.gn
					if op.onNode {
						n = p.nn
					}
					op.lo = r.Intn(n)
					op.hi = op.lo + r.Intn(7)
					if op.hi > n {
						op.hi = n
					}
					list[o] = op
				}
				p.ops[ph][nd][rank] = list
			}
		}
	}
	return p
}

// equivVal is the deterministic value op o of (phase, node, rank)
// writes at element i: both program variants write identical data.
func equivVal(ph, nd, rank, o, i int) float64 {
	return float64((ph*1000003+nd*10007+rank*101+o*13+i*7)%997) * 0.5
}

// equivOutcome captures everything observable about one run.
type equivOutcome struct {
	global []float64
	node   [][]float64
	sums   [][]float64 // per (node, rank): checksum of all values read
	totals NodeStats
	span   float64
}

func runEquivProgram(t *testing.T, p equivProgram, o Options, block bool) equivOutcome {
	t.Helper()
	out := equivOutcome{
		global: make([]float64, p.gn),
		node:   make([][]float64, p.nodes),
		sums:   make([][]float64, p.nodes),
	}
	for nd := range out.sums {
		out.sums[nd] = make([]float64, p.k)
	}
	rep := mustRun(t, o, func(rt *Runtime) {
		me := rt.NodeID()
		g := AllocGlobal[float64](rt, "eq.g", p.gn)
		na := AllocNode[float64](rt, "eq.n", p.nn)
		rt.Do(p.k, func(vp *VP) {
			rank := vp.NodeRank()
			buf := make([]float64, 8)
			run := func(ph int) {
				for o, op := range p.ops[ph][me][rank] {
					lo, hi := op.lo, op.hi
					switch {
					case op.kind == 0 && block:
						if op.onNode {
							na.ReadBlock(vp, lo, hi, buf[:hi-lo])
						} else {
							g.ReadBlock(vp, lo, hi, buf[:hi-lo])
						}
						for j := 0; j < hi-lo; j++ {
							out.sums[me][rank] += buf[j]
						}
					case op.kind == 0:
						for i := lo; i < hi; i++ {
							if op.onNode {
								out.sums[me][rank] += na.Read(vp, i)
							} else {
								out.sums[me][rank] += g.Read(vp, i)
							}
						}
					case block:
						src := buf[:hi-lo]
						for i := lo; i < hi; i++ {
							src[i-lo] = equivVal(ph, me, rank, o, i)
						}
						switch {
						case op.kind == 1 && op.onNode:
							na.WriteBlock(vp, lo, src)
						case op.kind == 1:
							g.WriteBlock(vp, lo, src)
						case op.onNode:
							na.AddBlock(vp, lo, src)
						default:
							g.AddBlock(vp, lo, src)
						}
					default:
						for i := lo; i < hi; i++ {
							v := equivVal(ph, me, rank, o, i)
							switch {
							case op.kind == 1 && op.onNode:
								na.Write(vp, i, v)
							case op.kind == 1:
								g.Write(vp, i, v)
							case op.onNode:
								na.Add(vp, i, v)
							default:
								g.Add(vp, i, v)
							}
						}
					}
				}
			}
			for ph := 0; ph < p.phases; ph++ {
				if ph%2 == 1 {
					vp.NodePhase(func() { run(ph) })
				} else {
					vp.GlobalPhase(func() { run(ph) })
				}
			}
		})
		glo, _ := g.OwnerRange(rt)
		copy(out.global[glo:], g.Local(rt))
		out.node[me] = append([]float64(nil), na.Local(rt)...)
		rt.Barrier()
	})
	out.totals = rep.Totals
	out.span = float64(rep.Makespan())
	return out
}

func equalEquivOutcome(a, b equivOutcome) bool {
	// The plan-cache counters are host-side memoization bookkeeping:
	// scalar and block access forms legitimately record different plan
	// shapes, so they are outside the equivalence surface.
	at, bt := a.totals, b.totals
	at.PlanCache, bt.PlanCache = PlanCacheStats{}, PlanCacheStats{}
	if at != bt || a.span != b.span {
		return false
	}
	for i := range a.global {
		if a.global[i] != b.global[i] {
			return false
		}
	}
	for nd := range a.node {
		for i := range a.node[nd] {
			if a.node[nd][i] != b.node[nd][i] {
				return false
			}
		}
		for r := range a.sums[nd] {
			if a.sums[nd][r] != b.sums[nd][r] {
				return false
			}
		}
	}
	return true
}

func TestBlockElementwiseEquivalence(t *testing.T) {
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"default", func(o *Options) {}},
		{"noreadcache", func(o *Options) { o.NoReadCache = true }},
		{"nobundling", func(o *Options) { o.NoBundling = true }},
		{"static", func(o *Options) { o.StaticSchedule = true }},
	}
	prop := func(seed uint64) bool {
		p := genEquivProgram(seed)
		for _, v := range variants {
			o := Options{Nodes: p.nodes, Machine: machine.Generic()}
			v.mod(&o)
			scalar := runEquivProgram(t, p, o, false)
			blocked := runEquivProgram(t, p, o, true)
			if !equalEquivOutcome(scalar, blocked) {
				t.Logf("seed %d variant %s: scalar totals %+v span %v, block totals %+v span %v",
					seed, v.name, scalar.totals, scalar.span, blocked.totals, blocked.span)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 24}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
