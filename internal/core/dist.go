package core

import (
	"fmt"
	"sync"

	"ppm/internal/mp"
	"ppm/internal/wire"
)

// DistEngine is the transport the distributed runtime plugs into core: a
// mesh of real connections between the run's node processes. The
// internal/dist package implements it over TCP; core stays free of
// sockets, and dist stays free of phase semantics.
type DistEngine interface {
	// Rank and Nodes identify this process within the mesh.
	Rank() int
	Nodes() int
	// Endpoint returns the transport for node-level message passing
	// (reductions, barriers, broadcasts).
	Endpoint() mp.Endpoint
	// SetReadServer installs the callback that serves peers' remote
	// reads of this process's partitions; it must return a copy.
	SetReadServer(fn func(array, lo, hi int) ([]byte, error))
	// Fetch reads elements [lo, hi) of the identified array from owner.
	Fetch(array, owner, lo, hi int) ([]byte, error)
	// CommitExchange ships outgoing[dst] (a wire commit stream; empty
	// and self entries are skipped) to every peer and blocks until every
	// peer's complete stream for the same phase has arrived, returned
	// indexed by source.
	CommitExchange(phase int64, outgoing [][]byte) ([][]byte, error)
	// CommitCodec returns the negotiated codec for commit streams this
	// rank sends to dst; PeerCommitCodec the codec src's streams arrive
	// in. Core transcodes around CommitExchange — the engine stays a
	// byte shipper and never parses commit payloads.
	CommitCodec(dst int) wire.Codec
	PeerCommitCodec(src int) wire.Codec
	// WireStats returns the engine-side transport counters accumulated
	// so far (frames, flushes, bytes on wire, read requests).
	WireStats() WireStats
	// Abort broadcasts a fatal error to all peers, best effort.
	Abort(err error)
}

// AbortError wraps a fatal transport error. Engine implementations panic
// with it out of blocking calls (a peer died, the mesh is down) so the
// failure unwinds VP bodies and node-level program code alike; RunDist
// recovers it into the run's error.
type AbortError struct{ Err error }

func (e AbortError) Error() string { return e.Err.Error() }
func (e AbortError) Unwrap() error { return e.Err }

// RunDist executes prog as this process's share of a PPM SPMD program
// whose other nodes are separate OS processes reachable through eng. The
// program semantics — and the application results, bit for bit — are
// those of Run's sequential simulator; what changes is the substrate:
// remote reads really fetch, commits really ship deltas, collectives
// really exchange messages. The returned Report carries this node's
// runtime counters (Report.Cluster is nil: virtual time is a property of
// the simulator, not of a real run).
func RunDist(opt Options, eng DistEngine, prog func(rt *Runtime)) (*Report, error) {
	o, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if o.Nodes != eng.Nodes() {
		return nil, fmt.Errorf("core: Options.Nodes = %d but the engine's mesh has %d nodes", o.Nodes, eng.Nodes())
	}
	if r := eng.Rank(); r < 0 || r >= o.Nodes {
		return nil, fmt.Errorf("core: engine rank %d out of range [0, %d)", r, o.Nodes)
	}
	gs := &globalState{
		opt:       o,
		mach:      o.Machine,
		nodes:     o.Nodes,
		cores:     o.CoresPerNode,
		dist:      eng,
		allocSeq:  make([]int, o.Nodes),
		doK:       make([]int, o.Nodes),
		phaseSeqs: make([]int64, o.Nodes),
		stats:     make([]NodeStats, o.Nodes),
	}
	rt := &Runtime{gs: gs, comm: mp.NewEndpoint(eng.Endpoint()), node: eng.Rank()}

	// The memory mutex embodies the phase-semantics guarantee over the
	// wire: peers may read our partitions exactly while a global phase is
	// open (partitions then hold begin-of-phase values and nobody mutates
	// them), so the write side is held at node level and during commit
	// application, and released only inside open global phases. See
	// DESIGN.md §4.9 for the full argument.
	gs.memMu.Lock()
	gs.memHeld = true
	eng.SetReadServer(func(array, lo, hi int) ([]byte, error) {
		gs.memMu.RLock()
		defer gs.memMu.RUnlock()
		if array < 0 || array >= len(gs.arrays) {
			return nil, fmt.Errorf("core: node %d: remote read of unknown array id %d", rt.node, array)
		}
		return gs.arrays[array].encodeRange(rt.node, lo, hi)
	})

	// The engine's transport counters are cumulative over its lifetime;
	// on a reused engine this run's share is the delta from here.
	wsBase := eng.WireStats()

	// A warm session hands the previous run's parked workers and
	// recorded plans to this one (or is discarded if its key changed);
	// without one, warm state is torn down when the program ends, as
	// always.
	warm := o.Warm
	if o.NoPlanCache {
		warm = nil
	}
	if warm != nil {
		warm.adopt(rt)
	}
	runErr := runRecovered(rt.node, func() {
		if warm == nil {
			defer rt.releaseWarm()
		}
		prog(rt)
	})
	if warm != nil {
		if runErr != nil {
			rt.releaseWarm()
			warm.Discard()
		} else {
			warm.stash(rt)
		}
	}
	if gs.memHeld {
		gs.memMu.Unlock()
		gs.memHeld = false
	}
	if runErr == nil {
		// Exit barrier: no process tears its connections down while a
		// peer still needs them (e.g. to serve a final result fetch).
		runErr = runRecovered(rt.node, func() { rt.comm.Barrier() })
	}

	// Merge the engine-side and core-side wire counters into this rank's
	// stats (each process is authoritative for its own rank only, like
	// every other per-node entry).
	ws := eng.WireStats()
	ws.sub(wsBase)
	ws.ReadsCoalesced = gs.wireCoalesced.Load()
	ws.CommitBytesRaw = gs.wireCommitRaw
	ws.CommitBytesEnc = gs.wireCommitEnc
	gs.stats[rt.node].Wire = ws

	rep := &Report{PerNode: gs.stats, Conflicts: gs.conflicts.list()}
	for _, s := range gs.stats {
		rep.Totals.add(s)
	}
	if runErr != nil {
		eng.Abort(runErr)
		return rep, runErr
	}
	if gs.strictErr != nil {
		return rep, gs.strictErr
	}
	return rep, nil
}

// runRecovered converts panics out of the program (VP coordination
// errors, transport aborts, user bugs) into the run's error.
func runRecovered(node int, f func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch e := r.(type) {
		case AbortError:
			err = e.Err
		case error:
			err = e
		default:
			err = fmt.Errorf("core: node %d: program panicked: %v", node, r)
		}
	}()
	f()
	return nil
}

// openPhaseDist is the distributed global-phase entry: it invalidates
// the remote-read caches, releases the memory mutex so peers can fetch
// begin-of-phase values, and runs the doK allgather that replaces the
// simulator's shared-state prefix sums for GlobalRank/GlobalK.
func (d *doRun) openPhaseDist() {
	rt := d.rt
	gs := rt.gs
	for _, arr := range gs.arrays {
		arr.resetDistCache()
	}
	if gs.memHeld {
		gs.memMu.Unlock()
		gs.memHeld = false
	}
	ks := mp.Allgather(rt.comm, []int{gs.doK[d.node]})
	copy(gs.doK, ks)
	base := 0
	for n := 0; n < d.node; n++ {
		base += gs.doK[n]
	}
	total := base
	for n := d.node; n < gs.nodes; n++ {
		total += gs.doK[n]
	}
	d.rankBase, d.globalK, d.rankValid = base, total, true

	// If this phase ordinal has a valid recorded plan, prefetch its
	// remote cover now: the allgather is a full synchronization, so every
	// peer has released its memory mutex and can serve reads. VPs then
	// find every recorded range already cached and fetch nothing. A plan
	// that later turns out not to match only prefetched ranges the phase
	// was free to read anyway (begin-of-phase values are immutable), so
	// a stale prefetch can cost time, never correctness.
	// (The array-count guard is belt and braces: a plan recorded over a
	// different array population must not drive prefetches.)
	if p := d.peekPlan(); p != nil && p.fcov != nil && p.na == len(gs.arrays) {
		for id, runs := range p.fcov {
			if len(runs) > 0 {
				gs.arrays[id].prefetchCover(d.node, runs)
			}
		}
	}
}

// commitCursor walks one peer's commit stream block by block during the
// array-major apply. Cursors are doRun-scratch values reused across
// commits; live marks sources that sent a stream this commit.
type commitCursor struct {
	rd    wire.CommitReader
	array int
	nRuns int
	valid bool
	live  bool
}

func (c *commitCursor) advance() error {
	if !c.rd.More() {
		c.valid = false
		return nil
	}
	a, n, err := c.rd.Block()
	if err != nil {
		return err
	}
	c.array, c.nRuns, c.valid = a, n, true
	return nil
}

// commitGlobalDist is the distributed global-phase commit. It reproduces
// commitGlobal exactly — same buffer drain order, same traffic-counter
// formulas, same array-major source-ascending apply order — but the
// exchange ships real bytes and nothing touches virtual time.
func (d *doRun) commitGlobalDist() error {
	rt := d.rt
	gs := rt.gs
	mach := gs.mach
	opt := &gs.opt
	st := rt.stats()
	st.GlobalPhases++
	gs.phaseSeqs[d.node]++
	seq := gs.phaseSeqs[d.node]
	nodes := gs.nodes

	// Drain VP write buffers in rank order (fixes the merge order, as in
	// the simulator), then merge the per-VP read sets. Tallies live in
	// the doRun's reusable commit scratch, exactly as in commitGlobal.
	d.resetCommitScratch(nodes)
	strictFirst := d.drainGlobal(seq)
	d.mergeReadSets(d.crrElems, d.crrBytes)
	tally := &d.ctally
	rrElems, rrBytes := d.crrElems, d.crrBytes

	// Model the outgoing bundled traffic with the simulator's formulas:
	// the counter side of the Report stays bit-identical; only the
	// virtual-time fields remain zero.
	var wireBytes, bundles int64
	for n := 0; n < nodes; n++ {
		if n == d.node {
			continue
		}
		if rrElems[n] > 0 {
			req := 8 * rrElems[n]
			rep := rrBytes[n]
			nb := d.bundleCount(rrElems[n], req+rep)
			bundles += nb
			wireBytes += req + rep + 2*nb*int64(mach.HeaderBytes)
			st.RemoteReadElems += rrElems[n]
		}
		if tally.elems[n] > 0 {
			nb := d.bundleCount(tally.elems[n], tally.bytes[n])
			bundles += nb
			wireBytes += tally.bytes[n] + nb*int64(mach.HeaderBytes)
			st.RemoteWriteElems += tally.elems[n]
		}
	}
	st.BundlesOut += bundles
	st.BytesOut += wireBytes

	// Encode the remote-destined staged runs per destination (array
	// order, VP/program order within each array — the stage cells were
	// filled in that order) and exchange. Self-destined runs stay staged
	// and apply below through the same path the simulator uses. The
	// outgoing stream, per-destination encode buffers, decode buffers,
	// and cursors are doRun scratch reused across commits (the engine
	// copies frames before queueing, so reuse never races the wire).
	if cap(d.cout) < nodes {
		d.cout = make([][]byte, nodes)
		d.coutRaw = make([][]byte, nodes)
		d.coutEnc = make([][]byte, nodes)
		d.cdec = make([][]byte, nodes)
		d.ccurs = make([]commitCursor, nodes)
	}
	outgoing := d.cout[:nodes]
	for dst := 0; dst < nodes; dst++ {
		outgoing[dst] = nil
		if dst == d.node {
			continue
		}
		buf := d.coutRaw[dst][:0]
		for _, arr := range gs.arrays {
			buf = arr.encodeStagedWire(d.node, dst, buf)
		}
		d.coutRaw[dst] = buf
		gs.wireCommitRaw += int64(len(buf))
		if len(buf) > 0 && gs.dist.CommitCodec(dst) == wire.CodecDelta {
			enc, err := wire.AppendCommitDelta(d.coutEnc[dst][:0], buf, gs.arrayElemBytes)
			if err != nil {
				return fmt.Errorf("core: node %d: delta-encoding commit for node %d: %w", d.node, dst, err)
			}
			d.coutEnc[dst] = enc
			buf = enc
		}
		gs.wireCommitEnc += int64(len(buf))
		outgoing[dst] = buf
	}
	incoming, err := gs.dist.CommitExchange(seq, outgoing)
	if err != nil {
		return err
	}
	for src := 0; src < nodes; src++ {
		if src == d.node || len(incoming[src]) == 0 {
			continue
		}
		if gs.dist.PeerCommitCodec(src) == wire.CodecDelta {
			raw, err := wire.DecodeCommitDeltaInto(d.cdec[src], incoming[src], gs.arrayElemBytes)
			if err != nil {
				return fmt.Errorf("core: node %d: delta from node %d: %w", d.node, src, err)
			}
			d.cdec[src] = raw
			incoming[src] = raw
		}
	}

	// Every peer has finished its phase body (its complete delta is
	// here), so no remote read of our partitions is outstanding: take the
	// memory mutex and mutate.
	gs.memMu.Lock()
	gs.memHeld = true
	curs := d.ccurs[:nodes]
	for src := 0; src < nodes; src++ {
		c := &curs[src]
		c.live, c.valid = false, false
		if src == d.node || len(incoming[src]) == 0 {
			continue
		}
		c.rd.Reset(incoming[src])
		c.live = true
		if err := c.advance(); err != nil {
			return fmt.Errorf("core: node %d: delta from node %d: %w", d.node, src, err)
		}
	}
	inElems, inBytes := d.cinElems, d.cinBytes
	for id, arr := range gs.arrays {
		for src := 0; src < nodes; src++ {
			if src == d.node {
				if err := arr.applyIncoming(d.node, opt.StrictWrites, seq, inElems, inBytes); err != nil && strictFirst == nil {
					strictFirst = err
				}
				continue
			}
			c := &curs[src]
			if !c.live || !c.valid || c.array != id {
				continue
			}
			elems, sErr, err := arr.applyWireRuns(d.node, opt.StrictWrites, seq, &c.rd, c.nRuns)
			if sErr != nil && strictFirst == nil {
				strictFirst = sErr
			}
			if err != nil {
				return fmt.Errorf("core: node %d: delta from node %d: %w", d.node, src, err)
			}
			inElems[src] += int64(elems)
			inBytes[src] += int64(elems) * int64(arr.elemBytes()+8)
			if err := c.advance(); err != nil {
				return fmt.Errorf("core: node %d: delta from node %d: %w", d.node, src, err)
			}
		}
	}
	for src := range curs {
		if c := &curs[src]; c.live && c.valid {
			return fmt.Errorf("core: node %d: delta from node %d addresses unknown array id %d", d.node, src, c.array)
		}
	}
	var inBundles, inWire int64
	for n := 0; n < nodes; n++ {
		if n == d.node || inElems[n] == 0 {
			continue
		}
		inBundles += d.bundleCount(inElems[n], inBytes[n])
		inWire += inBytes[n]
	}
	st.BundlesIn += inBundles
	st.BytesIn += inWire

	// The apply mutated our partitions: every cached remote range held
	// anywhere locally is stale. (The caches also reset at phase open,
	// which additionally covers node-level Local() mutation.)
	for _, arr := range gs.arrays {
		arr.resetDistCache()
	}

	// Everyone applied before anyone's node-level code (or next phase)
	// reads any partition.
	rt.comm.Barrier()

	if strictFirst != nil {
		gs.noteStrict(strictFirst)
	}
	if opt.OnPhase != nil {
		opt.OnPhase(seq)
	}
	return nil
}

// --- Global[T]'s distributed-side methods -------------------------------

// resetDistCache implements registeredArray: forget every remotely
// fetched range.
func (g *Global[T]) resetDistCache() {
	if g.gs.dist == nil {
		return
	}
	g.dmu.Lock()
	g.dcov = g.dcov[:0]
	g.dmu.Unlock()
}

// encodeRange implements registeredArray: the read-server side of a
// remote fetch. The requested range must lie inside this node's
// partition (the requester split by owner); the returned bytes are a
// copy taken under the caller's read lock.
func (g *Global[T]) encodeRange(node, lo, hi int) ([]byte, error) {
	plo, phi := g.part.Range(node)
	if lo < plo || hi > phi || lo > hi {
		return nil, fmt.Errorf("core: remote read of %s[%d:%d) outside node %d's partition [%d:%d)",
			g.name, lo, hi, node, plo, phi)
	}
	return mp.AppendElems(make([]byte, 0, (hi-lo)*g.es), g.base[lo:hi]), nil
}

// installRange implements registeredArray: land fetched bytes in the
// local image of a remote partition.
func (g *Global[T]) installRange(lo, hi int, data []byte) error {
	if lo < 0 || hi > g.n || lo > hi || len(data) != (hi-lo)*g.es {
		return fmt.Errorf("core: bad remote read reply for %s[%d:%d): %d bytes", g.name, lo, hi, len(data))
	}
	mp.DecodeElemsInto(g.base[lo:hi], data)
	return nil
}

// encodeStagedWire implements registeredArray: serialize (and clear) the
// runs this node's VPs staged for dst, preserving their order.
func (g *Global[T]) encodeStagedWire(self, dst int, buf []byte) []byte {
	recs := g.stage[dst][self]
	if len(recs) == 0 {
		return buf
	}
	buf = wire.AppendBlockHeader(buf, g.id, len(recs))
	var one [1]T
	for i := range recs {
		r := &recs[i]
		buf = wire.AppendRunHeader(buf, wire.RunHeader{Lo: r.lo, N: r.n, Writer: r.writer, Add: r.add})
		if r.vals == nil {
			one[0] = r.val
			buf = mp.AppendElems(buf, one[:])
		} else {
			buf = mp.AppendElems(buf, r.vals)
		}
	}
	g.stage[dst][self] = recs[:0]
	return buf
}

// applyWireRuns implements registeredArray: apply one block of a peer's
// commit stream through the same applyRun the simulator uses. strictErr
// carries strict-mode conflicts (noted, not fatal); err is protocol
// corruption (fatal). The element scratch persists on the array: the
// apply is single-threaded per process (memory mutex held), so one
// buffer serves every block of every commit without reallocating.
func (g *Global[T]) applyWireRuns(node int, strict bool, phaseSeq int64, rd *wire.CommitReader, nRuns int) (elems int, strictErr, err error) {
	for i := 0; i < nRuns; i++ {
		h, raw, err := rd.Run(g.es)
		if err != nil {
			return elems, strictErr, err
		}
		if h.Lo < 0 || h.N < 0 || h.Lo+h.N > g.n {
			return elems, strictErr, fmt.Errorf("core: commit run for %s[%d:%d) out of range [0,%d)", g.name, h.Lo, h.Lo+h.N, g.n)
		}
		if cap(g.wscratch) < h.N {
			g.wscratch = make([]T, h.N)
		}
		vals := g.wscratch[:h.N]
		mp.DecodeElemsInto(vals, raw)
		sr := stageRec[T]{lo: h.Lo, n: h.N, vals: vals, add: h.Add, writer: h.Writer}
		if e := g.applyRun(node, strict, phaseSeq, &sr); e != nil && strictErr == nil {
			strictErr = e
		}
		elems += h.N
	}
	return elems, strictErr, nil
}

// encodeCheckpoint implements registeredArray: this node's partition as
// a single commit-grammar run (an empty partition is a zero-run block,
// kept so restore walks every array uniformly).
func (g *Global[T]) encodeCheckpoint(node int, buf []byte) []byte {
	lo, hi := g.part.Range(node)
	if hi <= lo {
		return wire.AppendBlockHeader(buf, g.id, 0)
	}
	buf = wire.AppendBlockHeader(buf, g.id, 1)
	buf = wire.AppendRunHeader(buf, wire.RunHeader{Lo: lo, N: hi - lo, Writer: int64(node)})
	return mp.AppendElems(buf, g.base[lo:hi])
}

// restoreCheckpoint implements registeredArray: reinstall a checkpoint
// block through the same run-apply path commits use (non-strict: a
// checkpoint is committed state, not a phase's writes).
func (g *Global[T]) restoreCheckpoint(node int, rd *wire.CommitReader, nRuns int) error {
	_, _, err := g.applyWireRuns(node, false, 0, rd, nRuns)
	return err
}

// prefetchCover implements registeredArray: fetch a replayed plan's
// recorded remote ranges before the phase's VPs run, so every one of
// their reads is a cache hit. Called at phase open, after the open
// allgather (all peers can serve reads) and before any VP resumes (no
// concurrent cover mutation); the recorded runs are remote-owned, so
// installRange writes only ranges disjoint from the partitions the
// read server serves.
func (g *Global[T]) prefetchCover(self int, runs []intRun) {
	if g.gs.dist == nil {
		return
	}
	if err := g.fetchRuns(self, runs); err != nil {
		panic(AbortError{Err: err})
	}
	g.dmu.Lock()
	for _, r := range runs {
		g.dcov = coverAdd(g.dcov, r.lo, r.hi)
	}
	g.dmu.Unlock()
}

// distFetch ensures [lo, hi) of g is locally valid, fetching uncovered
// remote subranges from their owners. The per-array cover doubles as the
// fetch cache: within a phase a shared variable is immutable, so every
// range is fetched at most once per node per phase, mirroring the
// simulator's modeled read cache.
//
// The single flight is fleet-wide across this node's VPs: a VP claims
// the sub-gaps nobody else is fetching (dpend), releases the cover
// mutex, and fetches over the wire concurrently with other claimants;
// VPs whose whole gap is already in flight wait on the cover's
// condition and are fanned the result — one wire ReadReq however many
// VPs need the range. Claimed ranges are disjoint by construction, so
// the unlocked installRange calls never overlap each other or a reader
// (a VP only reads ranges the cover already includes).
func (g *Global[T]) distFetch(self, lo, hi int) {
	gs := g.gs
	g.dmu.Lock()
	if g.dcnd == nil {
		g.dcnd = sync.NewCond(&g.dmu)
	}
	waited := false
	for {
		missing := coverMissing(g.dcov, lo, hi)
		if len(missing) == 0 {
			g.dmu.Unlock()
			if waited {
				gs.wireCoalesced.Add(1)
			}
			return
		}
		var mine []intRun
		for _, gap := range missing {
			mine = append(mine, coverMissing(g.dpend, gap.lo, gap.hi)...)
		}
		if len(mine) == 0 {
			// Everything still missing is in flight from other VPs.
			waited = true
			g.dcnd.Wait()
			continue
		}
		for _, r := range mine {
			g.dpend = coverAdd(g.dpend, r.lo, r.hi)
		}
		g.dmu.Unlock()

		err := g.fetchRuns(self, mine)

		g.dmu.Lock()
		for _, r := range mine {
			g.dpend = coverSub(g.dpend, r.lo, r.hi)
			if err == nil {
				g.dcov = coverAdd(g.dcov, r.lo, r.hi)
			}
		}
		// Wake waiters even on failure: they re-claim the ranges, hit the
		// dead engine's fast error path, and unwind instead of hanging.
		g.dcnd.Broadcast()
		if err != nil {
			g.dmu.Unlock()
			panic(AbortError{Err: err})
		}
	}
}

// fetchRuns pulls the given uncovered ranges from their owners, without
// holding the cover mutex. Self-owned stretches need no wire traffic
// (the backing store is authoritative); they are claimed and covered by
// the caller like any other range.
func (g *Global[T]) fetchRuns(self int, runs []intRun) error {
	gs := g.gs
	for _, gap := range runs {
		for s := gap.lo; s < gap.hi; {
			owner := g.part.Owner(s)
			_, oend := g.part.Range(owner)
			e := gap.hi
			if e > oend {
				e = oend
			}
			if owner != self {
				data, err := gs.dist.Fetch(g.id, owner, s, e)
				if err == nil {
					err = g.installRange(s, e, data)
				}
				if err != nil {
					return err
				}
			}
			s = e
		}
	}
	return nil
}

// coverMissing returns the subranges of [lo, hi) not covered by cov
// (sorted, disjoint).
func coverMissing(cov []intRun, lo, hi int) []intRun {
	var out []intRun
	for _, r := range cov {
		if r.hi <= lo {
			continue
		}
		if r.lo >= hi {
			break
		}
		if r.lo > lo {
			out = append(out, intRun{lo: lo, hi: r.lo})
		}
		if r.hi > lo {
			lo = r.hi
		}
		if lo >= hi {
			return out
		}
	}
	if lo < hi {
		out = append(out, intRun{lo: lo, hi: hi})
	}
	return out
}

// coverAdd inserts [lo, hi) into cov, keeping it sorted and disjoint.
// The result is freshly allocated: building into cov[:0] would overwrite
// entries the loop has not read yet when an insert lands mid-slice.
func coverAdd(cov []intRun, lo, hi int) []intRun {
	if lo >= hi {
		return cov
	}
	out := make([]intRun, 0, len(cov)+1)
	inserted := false
	for _, r := range cov {
		switch {
		case r.hi < lo:
			out = append(out, r)
		case r.lo > hi:
			if !inserted {
				out = append(out, intRun{lo: lo, hi: hi})
				inserted = true
			}
			out = append(out, r)
		default:
			// Overlaps or touches: merge into the pending range.
			if r.lo < lo {
				lo = r.lo
			}
			if r.hi > hi {
				hi = r.hi
			}
		}
	}
	if !inserted {
		out = append(out, intRun{lo: lo, hi: hi})
	}
	return out
}

// coverSub removes [lo, hi) from cov, splitting runs that straddle an
// endpoint. Like coverAdd the result is freshly allocated.
func coverSub(cov []intRun, lo, hi int) []intRun {
	if lo >= hi {
		return cov
	}
	out := make([]intRun, 0, len(cov)+1)
	for _, r := range cov {
		if r.hi <= lo || r.lo >= hi {
			out = append(out, r)
			continue
		}
		if r.lo < lo {
			out = append(out, intRun{lo: r.lo, hi: lo})
		}
		if r.hi > hi {
			out = append(out, intRun{lo: hi, hi: r.hi})
		}
	}
	return out
}

// --- Node[T]'s distributed-side methods ---------------------------------
//
// Node arrays are strictly node-local: nothing about them crosses the
// wire, so the distributed hooks are error stubs (reaching one is a
// protocol bug, not a user error).

func (a *Node[T]) resetDistCache() {}

func (a *Node[T]) prefetchCover(self int, runs []intRun) {}

func (a *Node[T]) encodeRange(node, lo, hi int) ([]byte, error) {
	return nil, fmt.Errorf("core: remote read of node-shared %q", a.name)
}

func (a *Node[T]) installRange(lo, hi int, data []byte) error {
	return fmt.Errorf("core: remote install into node-shared %q", a.name)
}

func (a *Node[T]) encodeStagedWire(self, dst int, buf []byte) []byte { return buf }

func (a *Node[T]) applyWireRuns(node int, strict bool, phaseSeq int64, rd *wire.CommitReader, nRuns int) (int, error, error) {
	return 0, nil, fmt.Errorf("core: commit delta addressed to node-shared %q", a.name)
}

// encodeCheckpoint: node arrays never cross the wire mid-run, but their
// local instance is part of this rank's committed state, so checkpoints
// carry it — the full [0, n) image.
func (a *Node[T]) encodeCheckpoint(node int, buf []byte) []byte {
	if a.n == 0 {
		return wire.AppendBlockHeader(buf, a.id, 0)
	}
	buf = wire.AppendBlockHeader(buf, a.id, 1)
	buf = wire.AppendRunHeader(buf, wire.RunHeader{Lo: 0, N: a.n, Writer: int64(node)})
	return mp.AppendElems(buf, a.base[node])
}

func (a *Node[T]) restoreCheckpoint(node int, rd *wire.CommitReader, nRuns int) error {
	var scratch []T
	for i := 0; i < nRuns; i++ {
		h, raw, err := rd.Run(a.es)
		if err != nil {
			return err
		}
		if h.Lo < 0 || h.N < 0 || h.Lo+h.N > a.n {
			return fmt.Errorf("core: checkpoint run for %s[%d:%d) out of range [0,%d)", a.name, h.Lo, h.Lo+h.N, a.n)
		}
		if cap(scratch) < h.N {
			scratch = make([]T, h.N)
		}
		vals := scratch[:h.N]
		mp.DecodeElemsInto(vals, raw)
		sr := stageRec[T]{lo: h.Lo, n: h.N, vals: vals, add: h.Add, writer: h.Writer}
		if err := a.applyRun(node, false, 0, &sr); err != nil {
			return err
		}
	}
	return nil
}
