package core

import (
	"fmt"

	"ppm/internal/mp"
)

// This file provides the paper's "utility functions" (§3.1 item 6) at
// array granularity: reductions, parallel prefix, fills and copies over
// shared arrays, and a 2-D view. All of them are node-level collectives:
// every node must call them in the same program order, outside Do.

// FillGlobal sets every element of g to v (each node fills its own
// partition; cost is charged as streaming writes).
func FillGlobal[T Elem](rt *Runtime, g *Global[T], v T) {
	rt.checkNodeLevel("FillGlobal")
	local := g.Local(rt)
	for i := range local {
		local[i] = v
	}
	rt.ChargeMem(int64(len(local) * g.es))
}

// CopyIn copies src (the full logical array, identical on every node or
// at least agreeing on this node's partition) into g's local partition.
func CopyIn[T Elem](rt *Runtime, g *Global[T], src []T) {
	rt.checkNodeLevel("CopyIn")
	if len(src) != g.n {
		panic(fmt.Sprintf("core: CopyIn(%q): src has %d elements, array has %d", g.name, len(src), g.n))
	}
	lo, hi := g.part.Range(rt.node)
	copy(g.Local(rt), src[lo:hi])
	rt.ChargeMem(int64((hi - lo) * g.es))
}

// CopyOut gathers the whole array onto every node and returns it. The
// traffic of an allgather over the partitions is charged through the
// messaging layer.
func CopyOut[T Elem](rt *Runtime, g *Global[T]) []T {
	rt.checkNodeLevel("CopyOut")
	return mp.Allgatherv(rt.comm, g.Local(rt), g.part.Counts())
}

// ReduceGlobal combines every element of g with op (over the zero-value
// identity of the first element read — callers supply an associative,
// commutative op) and returns the result on every node. Each node folds
// its partition locally, then the node-level contributions combine
// through the messaging layer.
func ReduceGlobal[T Elem](rt *Runtime, g *Global[T], op func(a, b T) T) T {
	rt.checkNodeLevel("ReduceGlobal")
	local := g.Local(rt)
	var acc T
	if len(local) > 0 {
		acc = local[0]
		for _, v := range local[1:] {
			acc = op(acc, v)
		}
	}
	rt.ChargeFlops(int64(len(local)))
	// Nodes with empty partitions contribute the identity-by-omission:
	// gather all per-node partials and fold the non-empty ones in node
	// order, so every node computes the same value deterministically.
	has := int64(0)
	if len(local) > 0 {
		has = 1
	}
	flags := mp.Allgather(rt.comm, []int64{has})
	partials := mp.Allgather(rt.comm, []T{acc})
	var out T
	seeded := false
	for nidx, f := range flags {
		if f == 0 {
			continue
		}
		if !seeded {
			out = partials[nidx]
			seeded = true
		} else {
			out = op(out, partials[nidx])
		}
	}
	rt.ChargeFlops(int64(len(partials)))
	return out
}

// PrefixSumGlobal replaces g in place with its exclusive prefix sum
// (g[i] becomes the sum of the original g[0..i)). The classic three-step
// parallel scan: local scan, exscan of node totals, local offset add.
func PrefixSumGlobal[T Elem](rt *Runtime, g *Global[T]) {
	rt.checkNodeLevel("PrefixSumGlobal")
	local := g.Local(rt)
	var total T
	for i := range local {
		v := local[i]
		local[i] = total
		total += v
	}
	rt.ChargeFlops(int64(2 * len(local)))
	// Exclusive scan of per-node totals.
	totals := mp.Allgather(rt.comm, []T{total})
	var offset T
	for n := 0; n < rt.node; n++ {
		offset += totals[n]
	}
	for i := range local {
		local[i] += offset
	}
	rt.ChargeFlops(int64(len(local) + rt.node))
}

// Global2D is a row-major two-dimensional view over a Global array: the
// paper's programs use multi-dimensional shared arrays, and manual index
// arithmetic is the usual source of bugs.
type Global2D[T Elem] struct {
	g          *Global[T]
	rows, cols int
}

// AllocGlobal2D allocates a rows x cols globally shared array
// (block-distributed over the flattened row-major index space).
func AllocGlobal2D[T Elem](rt *Runtime, name string, rows, cols int) *Global2D[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("core: AllocGlobal2D(%q, %d, %d): negative shape", name, rows, cols))
	}
	return &Global2D[T]{g: AllocGlobal[T](rt, name, rows*cols), rows: rows, cols: cols}
}

// Rows returns the row count.
func (m *Global2D[T]) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Global2D[T]) Cols() int { return m.cols }

// Flat returns the underlying one-dimensional array.
func (m *Global2D[T]) Flat() *Global[T] { return m.g }

func (m *Global2D[T]) index(r, c int) int {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("core: Global2D(%q)[%d,%d] out of %dx%d", m.g.name, r, c, m.rows, m.cols))
	}
	return r*m.cols + c
}

// Read returns element (r, c) under phase semantics.
func (m *Global2D[T]) Read(vp *VP, r, c int) T { return m.g.Read(vp, m.index(r, c)) }

// Write sets element (r, c) at the end of the current phase.
func (m *Global2D[T]) Write(vp *VP, r, c int, v T) { m.g.Write(vp, m.index(r, c), v) }

// Add accumulates into element (r, c) at the end of the current phase.
func (m *Global2D[T]) Add(vp *VP, r, c int, v T) { m.g.Add(vp, m.index(r, c), v) }

// At reads element (r, c) at node level (setup/extraction only).
func (m *Global2D[T]) At(rt *Runtime, r, c int) T { return m.g.At(rt, m.index(r, c)) }
