package core

import (
	"fmt"
	"testing"

	"ppm/internal/machine"
	"ppm/internal/rng"
)

// This file model-checks the phase semantics: random phase-structured
// programs are executed both by the real runtime and by a tiny sequential
// interpreter of the paper's semantics ("reads observe begin-of-phase
// values; writes take effect after the phase; conflicting writes resolve
// in (node, VP, program) order; adds combine"). The final contents of
// every shared array must agree exactly.

// modelOp is one shared-array access in a generated program.
type modelOp struct {
	kind  int // 0 read, 1 write, 2 add
	array int // global array index
	idx   int
	val   int64 // for writes/adds; derived from the op's position for determinism
	// reads feed into a checksum so that read placement matters
}

// modelProgram is a random phase-structured SPMD program: phases[p][node][vp]
// is the op list of one VP in one phase. All phases are global.
type modelProgram struct {
	nodes, vps  int
	arrays      []int // array lengths
	phases      [][][][]modelOp
	checksumIdx int
}

func genProgram(r *rng.RNG) *modelProgram {
	p := &modelProgram{
		nodes: 1 + r.Intn(4),
		vps:   1 + r.Intn(5),
	}
	nArrays := 1 + r.Intn(3)
	for a := 0; a < nArrays; a++ {
		p.arrays = append(p.arrays, 4+r.Intn(12))
	}
	nPhases := 1 + r.Intn(4)
	p.phases = make([][][][]modelOp, nPhases)
	for ph := range p.phases {
		p.phases[ph] = make([][][]modelOp, p.nodes)
		for n := range p.phases[ph] {
			p.phases[ph][n] = make([][]modelOp, p.vps)
			for v := range p.phases[ph][n] {
				nOps := r.Intn(6)
				ops := make([]modelOp, nOps)
				for o := range ops {
					a := r.Intn(nArrays)
					ops[o] = modelOp{
						kind:  r.Intn(3),
						array: a,
						idx:   r.Intn(p.arrays[a]),
						val:   int64(ph*1000000 + n*10000 + v*100 + o),
					}
				}
				p.phases[ph][n][v] = ops
			}
		}
	}
	return p
}

// runModel interprets the program under the specification semantics and
// returns the final array contents plus a per-(node,vp) read checksum.
func runModel(p *modelProgram) ([][]int64, map[[2]int]int64) {
	arrays := make([][]int64, len(p.arrays))
	for a, n := range p.arrays {
		arrays[a] = make([]int64, n)
	}
	sums := make(map[[2]int]int64)
	for _, phase := range p.phases {
		// Reads all observe the begin-of-phase snapshot.
		snap := make([][]int64, len(arrays))
		for a := range arrays {
			snap[a] = append([]int64(nil), arrays[a]...)
		}
		// Apply in (node, vp, program) order: plain writes last-wins,
		// adds accumulate.
		for n := 0; n < p.nodes; n++ {
			for v := 0; v < p.vps; v++ {
				for _, op := range phase[n][v] {
					switch op.kind {
					case 0:
						sums[[2]int{n, v}] += snap[op.array][op.idx]
					case 1:
						arrays[op.array][op.idx] = op.val
					case 2:
						arrays[op.array][op.idx] += op.val
					}
				}
			}
		}
	}
	return arrays, sums
}

// runReal executes the same program under the PPM runtime.
func runReal(t *testing.T, p *modelProgram) ([][]int64, map[[2]int]int64) {
	t.Helper()
	finals := make([][]int64, len(p.arrays))
	// One sums map per node (disjoint slots, parallel-scheduler safe),
	// merged after the run.
	nodeSums := make([]map[[2]int]int64, p.nodes)
	_, err := Run(Options{Nodes: p.nodes, Machine: machine.Generic()}, func(rt *Runtime) {
		gs := make([]*Global[int64], len(p.arrays))
		for a, n := range p.arrays {
			gs[a] = AllocGlobal[int64](rt, fmt.Sprintf("m%d", a), n)
		}
		acc := AllocNode[int64](rt, "sums", p.vps)
		node := rt.NodeID()
		rt.Do(p.vps, func(vp *VP) {
			for _, phase := range p.phases {
				ops := phase[node][vp.NodeRank()]
				vp.GlobalPhase(func() {
					var s int64
					for _, op := range ops {
						switch op.kind {
						case 0:
							s += gs[op.array].Read(vp, op.idx)
						case 1:
							gs[op.array].Write(vp, op.idx, op.val)
						case 2:
							gs[op.array].Add(vp, op.idx, op.val)
						}
					}
					if s != 0 {
						acc.Add(vp, vp.NodeRank(), s)
					}
				})
			}
		})
		rt.Barrier()
		if node == 0 {
			for a := range gs {
				out := make([]int64, p.arrays[a])
				for i := range out {
					out[i] = gs[a].At(rt, i)
				}
				finals[a] = out
			}
		}
		ns := make(map[[2]int]int64)
		for v, s := range acc.Local(rt) {
			if s != 0 {
				ns[[2]int{node, v}] = s
			}
		}
		nodeSums[node] = ns
	})
	if err != nil {
		t.Fatalf("program failed under runtime: %v", err)
	}
	sums := make(map[[2]int]int64)
	for _, ns := range nodeSums {
		for k, v := range ns {
			sums[k] = v
		}
	}
	return finals, sums
}

func TestModelCheckPhaseSemantics(t *testing.T) {
	for trial := 0; trial < 120; trial++ {
		r := rng.New(uint64(trial) * 2654435761)
		p := genProgram(r)
		wantArrays, wantSums := runModel(p)
		gotArrays, gotSums := runReal(t, p)
		for a := range wantArrays {
			for i := range wantArrays[a] {
				if gotArrays[a][i] != wantArrays[a][i] {
					t.Fatalf("trial %d: array %d[%d] = %d, spec says %d (nodes=%d vps=%d phases=%d)",
						trial, a, i, gotArrays[a][i], wantArrays[a][i], p.nodes, p.vps, len(p.phases))
				}
			}
		}
		for k, want := range wantSums {
			if gotSums[k] != want {
				t.Fatalf("trial %d: read checksum of node %d vp %d = %d, spec says %d",
					trial, k[0], k[1], gotSums[k], want)
			}
		}
		for k := range gotSums {
			if _, ok := wantSums[k]; !ok {
				t.Fatalf("trial %d: unexpected checksum at %v", trial, k)
			}
		}
	}
}

// The same model must hold when the ablation switches are flipped: the
// options change modeled time, never semantics.
func TestModelCheckSemanticsUnderAblations(t *testing.T) {
	mutations := []func(*Options){
		func(o *Options) { o.NoBundling = true },
		func(o *Options) { o.NoOverlap = true },
		func(o *Options) { o.NoReadCache = true },
		func(o *Options) { o.StaticSchedule = true },
		func(o *Options) { o.BundleBytes = 32 },
	}
	for mi, mutate := range mutations {
		for trial := 0; trial < 12; trial++ {
			r := rng.New(uint64(mi*1000+trial) + 17)
			p := genProgram(r)
			wantArrays, _ := runModel(p)
			var got []int64
			opt := Options{Nodes: p.nodes, Machine: machine.Generic()}
			mutate(&opt)
			_, err := Run(opt, func(rt *Runtime) {
				gs := make([]*Global[int64], len(p.arrays))
				for a, n := range p.arrays {
					gs[a] = AllocGlobal[int64](rt, fmt.Sprintf("m%d", a), n)
				}
				node := rt.NodeID()
				rt.Do(p.vps, func(vp *VP) {
					for _, phase := range p.phases {
						ops := phase[node][vp.NodeRank()]
						vp.GlobalPhase(func() {
							for _, op := range ops {
								switch op.kind {
								case 0:
									gs[op.array].Read(vp, op.idx)
								case 1:
									gs[op.array].Write(vp, op.idx, op.val)
								case 2:
									gs[op.array].Add(vp, op.idx, op.val)
								}
							}
						})
					}
				})
				rt.Barrier()
				if node == 0 {
					for i := 0; i < p.arrays[0]; i++ {
						got = append(got, gs[0].At(rt, i))
					}
				}
			})
			if err != nil {
				t.Fatalf("mutation %d trial %d: %v", mi, trial, err)
			}
			for i := range got {
				if got[i] != wantArrays[0][i] {
					t.Fatalf("mutation %d trial %d: array 0[%d] = %d, spec says %d",
						mi, trial, i, got[i], wantArrays[0][i])
				}
			}
		}
	}
}
