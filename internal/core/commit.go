package core

import (
	"sort"

	"ppm/internal/vtime"
)

// sendTally accumulates, per destination node, the outgoing write traffic
// flushed from VP buffers at a phase commit.
type sendTally struct {
	elems      []int64 // per dst, remote write elements
	bytes      []int64 // per dst, remote write payload bytes (value+index)
	localElems int64
	localBytes int64
}

// vpFlusher is the per-(VP, array) write buffer interface: the coordinator
// drains buffers in VP rank order at each commit, which fixes the merge
// order and makes commits deterministic.
type vpFlusher interface {
	// flushGlobal stages records for the global-phase exchange (node-
	// array records apply immediately; they are node-local by nature).
	flushGlobal(d *doRun, t *sendTally, phaseSeq int64) error
	// flushNode applies records immediately (node-phase commit) and
	// returns the applied payload bytes.
	flushNode(d *doRun, phaseSeq int64) (bytes int64, err error)
	// owner identifies the array this buffer belongs to.
	owner() any
	// release returns the buffer to its array's pool at the end of a Do.
	release()
}

// gBuf buffers one VP's writes to one Global array as run-length records.
// Block writes land in the arena directly; contiguous scalar writes
// coalesce into arena-backed runs, so the commit path applies whole runs
// with copy instead of iterating 32-byte per-element records.
type gBuf[T Elem] struct {
	g     *Global[T]
	wid   int64 // owning VP's writer id, set when the buffer is acquired
	recs  []writeRec[T]
	arena []T
}

func (b *gBuf[T]) owner() any { return b.g }

func (b *gBuf[T]) release() {
	b.recs = b.recs[:0]
	b.arena = b.arena[:0]
	b.g.bufPool.Put(b)
}

// push buffers one scalar write, extending the previous record when it is
// contiguous with the same combine mode (the writer is the same by
// construction — the buffer belongs to one VP).
func (b *gBuf[T]) push(i int, v T, add bool) {
	if k := len(b.recs); k > 0 {
		last := &b.recs[k-1]
		if last.add == add && last.lo+last.n == i {
			if last.off >= 0 {
				if last.off+last.n == len(b.arena) {
					b.arena = append(b.arena, v)
					last.n++
					return
				}
			} else {
				// Promote the inline scalar to an arena-backed run.
				off := len(b.arena)
				b.arena = append(b.arena, last.val, v)
				last.off = off
				last.n = 2
				return
			}
		}
	}
	b.recs = append(b.recs, writeRec[T]{lo: i, n: 1, off: -1, val: v, add: add, writer: b.wid})
}

// pushRun buffers one block write as a single run.
func (b *gBuf[T]) pushRun(lo int, src []T, add bool) {
	off := len(b.arena)
	b.arena = append(b.arena, src...)
	if k := len(b.recs); k > 0 {
		last := &b.recs[k-1]
		if last.add == add && last.lo+last.n == lo && last.off >= 0 && last.off+last.n == off {
			last.n += len(src)
			return
		}
	}
	b.recs = append(b.recs, writeRec[T]{lo: lo, n: len(src), off: off, add: add, writer: b.wid})
}

// flushGlobal stages this buffer's runs, splitting each at partition
// boundaries so every staged run has a single destination node.
func (b *gBuf[T]) flushGlobal(d *doRun, t *sendTally, phaseSeq int64) error {
	node := d.node
	g := b.g
	es8 := int64(g.es + 8)
	for ri := range b.recs {
		r := &b.recs[ri]
		lo, rest := r.lo, r.n
		for rest > 0 {
			dst := g.part.Owner(lo)
			_, phi := g.part.Range(dst)
			n := rest
			if lo+n > phi {
				n = phi - lo
			}
			sr := stageRec[T]{lo: lo, n: n, add: r.add, writer: r.writer}
			if r.off >= 0 {
				o := r.off + (lo - r.lo)
				sr.vals = b.arena[o : o+n : o+n]
			} else {
				sr.val = r.val
			}
			g.stage[dst][node] = append(g.stage[dst][node], sr)
			if dst != node {
				t.elems[dst] += int64(n)
				t.bytes[dst] += int64(n) * es8
			} else {
				t.localElems += int64(n)
				t.localBytes += int64(n) * es8
			}
			lo += n
			rest -= n
		}
	}
	b.recs = b.recs[:0]
	// The arena may still be aliased by staged runs; truncation is safe
	// because new writes (which would overwrite it) can only be buffered
	// after the commit's final barrier, by which time every node has
	// applied its incoming stage.
	b.arena = b.arena[:0]
	return nil
}

func (b *gBuf[T]) flushNode(d *doRun, phaseSeq int64) (int64, error) {
	var bytes int64
	var firstErr error
	strict := d.rt.gs.opt.StrictWrites
	for ri := range b.recs {
		r := &b.recs[ri]
		sr := stageRec[T]{lo: r.lo, n: r.n, add: r.add, writer: r.writer}
		if r.off >= 0 {
			sr.vals = b.arena[r.off : r.off+r.n]
		} else {
			sr.val = r.val
		}
		if err := b.g.applyRun(d.node, strict, phaseSeq, &sr); err != nil && firstErr == nil {
			firstErr = err
		}
		bytes += int64(r.n) * int64(b.g.es)
	}
	b.recs = b.recs[:0]
	b.arena = b.arena[:0]
	return bytes, firstErr
}

// nBuf buffers one VP's writes to one Node array. Node-array records are
// node-local by definition, so both commit paths apply them directly.
type nBuf[T Elem] struct {
	a     *Node[T]
	wid   int64 // owning VP's writer id, set when the buffer is acquired
	recs  []writeRec[T]
	arena []T
}

func (b *nBuf[T]) owner() any { return b.a }

func (b *nBuf[T]) release() {
	b.recs = b.recs[:0]
	b.arena = b.arena[:0]
	b.a.bufPool.Put(b)
}

func (b *nBuf[T]) push(i int, v T, add bool) {
	if k := len(b.recs); k > 0 {
		last := &b.recs[k-1]
		if last.add == add && last.lo+last.n == i {
			if last.off >= 0 {
				if last.off+last.n == len(b.arena) {
					b.arena = append(b.arena, v)
					last.n++
					return
				}
			} else {
				off := len(b.arena)
				b.arena = append(b.arena, last.val, v)
				last.off = off
				last.n = 2
				return
			}
		}
	}
	b.recs = append(b.recs, writeRec[T]{lo: i, n: 1, off: -1, val: v, add: add, writer: b.wid})
}

func (b *nBuf[T]) pushRun(lo int, src []T, add bool) {
	off := len(b.arena)
	b.arena = append(b.arena, src...)
	if k := len(b.recs); k > 0 {
		last := &b.recs[k-1]
		if last.add == add && last.lo+last.n == lo && last.off >= 0 && last.off+last.n == off {
			last.n += len(src)
			return
		}
	}
	b.recs = append(b.recs, writeRec[T]{lo: lo, n: len(src), off: off, add: add, writer: b.wid})
}

func (b *nBuf[T]) apply(d *doRun, phaseSeq int64) (int64, error) {
	var bytes int64
	var firstErr error
	strict := d.rt.gs.opt.StrictWrites
	for ri := range b.recs {
		r := &b.recs[ri]
		sr := stageRec[T]{lo: r.lo, n: r.n, add: r.add, writer: r.writer}
		if r.off >= 0 {
			sr.vals = b.arena[r.off : r.off+r.n]
		} else {
			sr.val = r.val
		}
		if err := b.a.applyRun(d.node, strict, phaseSeq, &sr); err != nil && firstErr == nil {
			firstErr = err
		}
		bytes += int64(r.n) * int64(b.a.es)
	}
	b.recs = b.recs[:0]
	b.arena = b.arena[:0]
	return bytes, firstErr
}

func (b *nBuf[T]) flushGlobal(d *doRun, t *sendTally, phaseSeq int64) error {
	bytes, err := b.apply(d, phaseSeq)
	t.localElems += bytes / int64(b.a.es)
	t.localBytes += bytes
	return err
}

func (b *nBuf[T]) flushNode(d *doRun, phaseSeq int64) (int64, error) {
	return b.apply(d, phaseSeq)
}

// bufFor finds (or creates, drawing on the array's pool) the calling
// VP's write buffer for g, and notes the owning VP's writer id.
func bufFor[T Elem](vp *VP, g *Global[T]) *gBuf[T] {
	for _, b := range vp.bufs {
		if b.owner() == g {
			return b.(*gBuf[T])
		}
	}
	var b *gBuf[T]
	if v := g.bufPool.Get(); v != nil {
		b = v.(*gBuf[T])
	} else {
		b = &gBuf[T]{g: g}
	}
	b.wid = vp.wid
	vp.bufs = append(vp.bufs, b)
	return b
}

// nodeBufFor finds (or creates) the calling VP's write buffer for a.
func nodeBufFor[T Elem](vp *VP, a *Node[T]) *nBuf[T] {
	for _, b := range vp.bufs {
		if b.owner() == a {
			return b.(*nBuf[T])
		}
	}
	var b *nBuf[T]
	if v := a.bufPool.Get(); v != nil {
		b = v.(*nBuf[T])
	} else {
		b = &nBuf[T]{a: a}
	}
	b.wid = vp.wid
	vp.bufs = append(vp.bufs, b)
	return b
}

// makespan maps the VPs' accumulated per-phase work onto the node's
// cores and returns the modeled elapsed time. extra is added to every
// VP's cost (per-VP dispatch overhead). The runtime's dynamic scheduler
// achieves the greedy bound max(total/cores, max VP); StaticSchedule
// models the naive compiler loop transform, which assigns contiguous
// VP blocks to cores.
func (d *doRun) makespan(extra vtime.Duration) vtime.Duration {
	cores := d.rt.gs.cores
	if d.rt.gs.opt.StaticSchedule {
		var worst vtime.Duration
		for c := 0; c < cores; c++ {
			lo, hi := ChunkRange(d.k, cores, c)
			var sum vtime.Duration
			for i := lo; i < hi; i++ {
				sum += d.vps[i].charge + extra
			}
			if sum > worst {
				worst = sum
			}
		}
		return worst
	}
	var total, maxVP vtime.Duration
	for _, vp := range d.vps {
		c := vp.charge + extra
		total += c
		if c > maxVP {
			maxVP = c
		}
	}
	span := total / vtime.Duration(cores)
	if maxVP > span {
		span = maxVP
	}
	return span
}

// bundleCount models how many messages carry `elems` fine-grained items
// totaling `bytes` of payload: with bundling, items pack into
// BundleBytes-sized packages; without it, each item is its own message.
func (d *doRun) bundleCount(elems, bytes int64) int64 {
	if elems <= 0 {
		return 0
	}
	if d.rt.gs.opt.NoBundling {
		return elems
	}
	bb := int64(d.rt.gs.opt.BundleBytes)
	n := (bytes + bb - 1) / bb
	if n < 1 {
		n = 1
	}
	return n
}

// mergeReadSets folds every VP's phase-local remote-read tracking into
// per-owner element and byte counts. Direct counters (the NoReadCache
// path) sum in VP rank order; the cached path computes the union of the
// per-VP read sets — exactly the set the old node-level map accumulated,
// but without any cross-VP lock. Interval runs are sorted and swept into
// a disjoint cover, scattered indices are deduplicated against each other
// and against the cover, and the result is counted per owning node. All
// counts are integers, so the merge order cannot perturb them.
//
// On a warm doRun the merge is plan-cached (see plan.go): a pass whose
// inputs exactly match the recorded plan replays the recorded per-owner
// deltas instead of sorting and sweeping; any other pass records a fresh
// plan while merging cold, accumulating the sweep into the plan's delta
// slices and then adding them into the commit's counters (integer sums,
// so recording cannot perturb the result).
func (d *doRun) mergeReadSets(rrElems, rrBytes []int64) {
	gs := d.rt.gs
	na := len(gs.arrays)
	if len(d.mrRuns) < na {
		d.mrRuns = append(d.mrRuns, make([][]intRun, na-len(d.mrRuns))...)
		d.mrIdx = append(d.mrIdx, make([][]int, na-len(d.mrIdx))...)
	}
	// Direct counters are already per-owner sums; fold and clear them
	// first — they bypass planning entirely.
	for _, vp := range d.vps {
		if vp.rrElems != nil {
			for n := range rrElems {
				rrElems[n] += vp.rrElems[n]
				rrBytes[n] += vp.rrBytes[n]
				vp.rrElems[n], vp.rrBytes[n] = 0, 0
			}
		}
	}
	p := d.planFor()
	if p != nil && p.valid {
		if d.planMatches(p, na) {
			d.replay(p, rrElems, rrBytes)
			return
		}
		p.valid = false
		d.rt.stats().PlanCache.Invalidations++
	}
	rec := p != nil
	if rec {
		d.rt.stats().PlanCache.Misses++
		p.beginRecord(d.openKind, d.k, na, gs.nodes, gs.dist != nil)
	}
	cached := false
	for _, vp := range d.vps {
		if rec {
			for id := 0; id < na; id++ {
				var rs []intRun
				if id < len(vp.rdRuns) {
					rs = vp.rdRuns[id]
				}
				p.segs = append(p.segs, rs...)
				p.offs = append(p.offs, int32(len(p.segs)))
			}
			var m map[readKey]struct{}
			if len(vp.rdIdx) > 0 {
				m = make(map[readKey]struct{}, len(vp.rdIdx))
				for k := range vp.rdIdx {
					m[k] = struct{}{}
				}
				p.runs += int64(len(m))
			}
			p.idx = append(p.idx, m)
		}
		for id, rs := range vp.rdRuns {
			if len(rs) > 0 {
				d.mrRuns[id] = append(d.mrRuns[id], rs...)
				vp.rdRuns[id] = rs[:0]
				cached = true
			}
		}
		if len(vp.rdIdx) > 0 {
			for k := range vp.rdIdx {
				d.mrIdx[k.array] = append(d.mrIdx[k.array], k.idx)
			}
			clear(vp.rdIdx)
			cached = true
		}
	}
	if rec {
		p.runs += int64(len(p.segs))
		p.bytesSaved = int64(len(p.segs)) * 16
	}
	if !cached {
		if rec {
			p.valid = true // empty shape: replays as a no-op
		}
		return
	}
	// Merge target: the commit's counters directly, or the plan's delta
	// slices on a recording pass (added into the counters below).
	tElems, tBytes := rrElems, rrBytes
	if rec {
		tElems, tBytes = p.rrElems, p.rrBytes
	}
	for id := 0; id < na; id++ {
		runs, idxs := d.mrRuns[id], d.mrIdx[id]
		if len(runs) == 0 && len(idxs) == 0 {
			continue
		}
		arr := gs.arrays[id]
		es := int64(arr.elemBytes())
		// Sweep the runs into a disjoint cover, in place.
		if len(runs) > 1 {
			sort.Slice(runs, func(i, j int) bool { return runs[i].lo < runs[j].lo })
			m := 0
			for i := 1; i < len(runs); i++ {
				if runs[i].lo <= runs[m].hi {
					if runs[i].hi > runs[m].hi {
						runs[m].hi = runs[i].hi
					}
				} else {
					m++
					runs[m] = runs[i]
				}
			}
			runs = runs[:m+1]
			if rec {
				p.allocsSaved += 2 // sort.Slice interface + closure
			}
		}
		for _, r := range runs {
			for s := r.lo; s < r.hi; {
				owner, end := arr.ownerSpan(s)
				e := r.hi
				if e > end {
					e = end
				}
				tElems[owner] += int64(e - s)
				tBytes[owner] += int64(e-s) * es
				if rec && p.fcov != nil && owner != d.node {
					p.fcov[id] = append(p.fcov[id], intRun{lo: s, hi: e})
				}
				s = e
			}
		}
		if len(idxs) > 0 {
			sort.Ints(idxs)
			if rec {
				p.allocsSaved++ // sort.Ints interface conversion
			}
			ri, prev := 0, -1
			for _, ix := range idxs {
				if ix == prev {
					continue
				}
				prev = ix
				for ri < len(runs) && runs[ri].hi <= ix {
					ri++
				}
				if ri < len(runs) && runs[ri].lo <= ix {
					continue // already covered by a block run
				}
				owner, _ := arr.ownerSpan(ix)
				tElems[owner]++
				tBytes[owner] += es
				if rec && p.fcov != nil && owner != d.node {
					p.fcov[id] = append(p.fcov[id], intRun{lo: ix, hi: ix + 1})
				}
			}
		}
		d.mrRuns[id] = runs[:0]
		d.mrIdx[id] = idxs[:0]
	}
	if rec {
		for n := range rrElems {
			rrElems[n] += p.rrElems[n]
			rrBytes[n] += p.rrBytes[n]
		}
		p.valid = true
	}
}

// resetCommitScratch zeroes the doRun's reusable per-commit tallies,
// reallocating only when the node count outgrows their capacity (it
// never does after the first commit).
func (d *doRun) resetCommitScratch(nodes int) {
	d.ctally.elems = resetInt64(d.ctally.elems, nodes)
	d.ctally.bytes = resetInt64(d.ctally.bytes, nodes)
	d.ctally.localElems, d.ctally.localBytes = 0, 0
	d.crrElems = resetInt64(d.crrElems, nodes)
	d.crrBytes = resetInt64(d.crrBytes, nodes)
	d.cinElems = resetInt64(d.cinElems, nodes)
	d.cinBytes = resetInt64(d.cinBytes, nodes)
}

// drainGlobal drains every VP's write buffers in rank order into the
// arrays' stages (fixing the merge order) and folds per-VP access
// counters into the node's stats; traffic accumulates into d.ctally.
// It is a method, not a closure, so the non-strict commit path carries
// no captured variables and stays allocation-free.
func (d *doRun) drainGlobal(seq int64) error {
	st := d.rt.stats()
	var firstErr error
	for _, vp := range d.vps {
		st.SharedReads += vp.reads
		st.SharedWrites += vp.writes
		vp.reads, vp.writes = 0, 0
		for _, b := range vp.bufs {
			if err := b.flushGlobal(d, &d.ctally, seq); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		vp.charge = 0
	}
	return firstErr
}

// drainGlobalSerial is drainGlobal under the node's serial section:
// node-array buffers apply immediately and feed the cross-node strict
// trackers, so strict mode serializes the drain (see commitNode).
func (d *doRun) drainGlobalSerial(seq int64) error {
	var err error
	d.rt.proc.Serial(func() { err = d.drainGlobal(seq) })
	return err
}

// applyGlobalIncoming applies every array's staged incoming records (in
// source order), accumulating per-source traffic into d.cinElems and
// d.cinBytes.
func (d *doRun) applyGlobalIncoming(seq int64) error {
	gs := d.rt.gs
	var firstErr error
	for _, arr := range gs.arrays {
		if err := arr.applyIncoming(d.node, gs.opt.StrictWrites, seq, d.cinElems, d.cinBytes); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// applyGlobalIncomingSerial is applyGlobalIncoming under the serial
// section (strict applies touch cross-node conflict trackers).
func (d *doRun) applyGlobalIncomingSerial(seq int64) error {
	var err error
	d.rt.proc.Serial(func() { err = d.applyGlobalIncoming(seq) })
	return err
}

// commit finalizes one phase: merges VP accounting, models the bundled
// communication, exchanges and applies staged writes (global phases), and
// resets per-VP state.
func (d *doRun) commit(kind phaseKind) error {
	if kind == phaseGlobal {
		if d.rt.gs.dist != nil {
			return d.commitGlobalDist()
		}
		return d.commitGlobal()
	}
	return d.commitNode()
}

// drainNode drains and applies every VP's write buffers in rank order
// (node-phase commit: records apply immediately), returning the applied
// payload bytes and the first strict error.
func (d *doRun) drainNode(seq int64) (int64, error) {
	st := d.rt.stats()
	var applyBytes int64
	var firstErr error
	for _, vp := range d.vps {
		st.SharedReads += vp.reads
		st.SharedWrites += vp.writes
		vp.reads, vp.writes, vp.charge = 0, 0, 0
		for _, b := range vp.bufs {
			bytes, err := b.flushNode(d, seq)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			applyBytes += bytes
		}
	}
	return applyBytes, firstErr
}

// drainNodeSerial is drainNode under the node's serial section.
func (d *doRun) drainNodeSerial(seq int64) (int64, error) {
	var bytes int64
	var err error
	d.rt.proc.Serial(func() { bytes, err = d.drainNode(seq) })
	return bytes, err
}

func (d *doRun) commitNode() error {
	rt := d.rt
	gs := rt.gs
	mach := gs.mach
	st := rt.stats()
	st.NodePhases++
	gs.phaseSeqs[d.node]++
	seq := gs.phaseSeqs[d.node]

	if rt.proc != nil {
		span := d.makespan(vtime.Duration(mach.VPStartCost))
		st.PhaseComputeTime += vtime.Duration(mach.PhaseFixedCost) + span
		rt.proc.AdvanceTo(d.phaseStart.
			Add(vtime.Duration(mach.PhaseFixedCost)).
			Add(span))
	}

	var firstErr error
	var applyBytes int64
	if gs.opt.StrictWrites && rt.proc != nil {
		// Strict-mode applies touch cross-node conflict trackers and the
		// shared conflict log; the turn serializes them in sequential
		// order so attribution order is mode-independent. Non-strict
		// node-phase applies touch only node-owned state and stay
		// concurrent under the parallel scheduler. (A distributed process
		// owns its whole globalState, so no turn exists or is needed.)
		applyBytes, firstErr = d.drainNodeSerial(seq)
	} else {
		applyBytes, firstErr = d.drainNode(seq)
	}
	if rt.proc != nil {
		rt.proc.ChargeMem(applyBytes)
		st.PhaseApplyTime += mach.MemTime(applyBytes)
	}
	if firstErr != nil {
		gs.noteStrict(firstErr)
	}
	return nil // strict errors surface at the end of the run
}

func (d *doRun) commitGlobal() error {
	rt := d.rt
	gs := rt.gs
	mach := gs.mach
	opt := &gs.opt
	st := rt.stats()
	st.GlobalPhases++
	gs.phaseSeqs[d.node]++
	seq := gs.phaseSeqs[d.node]
	nodes := gs.nodes

	// 1. Computation span of the phase body.
	span := d.makespan(vtime.Duration(mach.VPStartCost))
	computeEnd := d.phaseStart.
		Add(vtime.Duration(mach.PhaseFixedCost)).
		Add(span)

	// 2. Drain VP write buffers in rank order (fixes merge order), then
	// merge the per-VP read sets into the node-level traffic tallies.
	// All per-commit tallies live in reusable doRun scratch.
	d.resetCommitScratch(nodes)
	var firstErr error
	if opt.StrictWrites {
		// Node-array buffers apply here and feed the cross-node strict
		// trackers; see commitNode. Global-array buffers only stage into
		// this node's cells, which is safe either way.
		firstErr = d.drainGlobalSerial(seq)
	} else {
		firstErr = d.drainGlobal(seq)
	}
	d.mergeReadSets(d.crrElems, d.crrBytes)
	tally := &d.ctally
	rrElems, rrBytes := d.crrElems, d.crrBytes

	// 3. Model this node's outgoing bundled traffic: read request/reply
	// round trips plus write pushes.
	var cpu vtime.Duration
	var wireBytes int64
	var bundles int64
	var haveReads, haveWrites bool
	for n := 0; n < nodes; n++ {
		if n == d.node {
			continue
		}
		if rrElems[n] > 0 {
			haveReads = true
			req := 8 * rrElems[n] // index list out
			rep := rrBytes[n]     // values back
			nb := d.bundleCount(rrElems[n], req+rep)
			bundles += nb
			cpu += vtime.Duration(float64(nb) * (mach.SendOverhead + mach.RecvOverhead + 2*mach.BundleOverhead))
			wireBytes += req + rep + 2*nb*int64(mach.HeaderBytes)
			st.RemoteReadElems += rrElems[n]
		}
		if tally.elems[n] > 0 {
			haveWrites = true
			nb := d.bundleCount(tally.elems[n], tally.bytes[n])
			bundles += nb
			cpu += vtime.Duration(float64(nb) * (mach.SendOverhead + mach.BundleOverhead))
			wireBytes += tally.bytes[n] + nb*int64(mach.HeaderBytes)
			st.RemoteWriteElems += tally.elems[n]
		}
	}
	st.BundlesOut += bundles
	st.BytesOut += wireBytes

	commStart := d.phaseStart
	if opt.NoOverlap {
		commStart = computeEnd
	}
	end := computeEnd
	if bundles > 0 {
		cpuDone := commStart.Add(cpu)
		nicDone := rt.proc.NICAcquire(commStart, vtime.Duration(float64(wireBytes)/mach.NetBandwidth))
		commEnd := cpuDone.Max(nicDone)
		switch {
		case haveReads:
			commEnd = commEnd.Add(vtime.Duration(2 * mach.NetLatency))
		case haveWrites:
			commEnd = commEnd.Add(vtime.Duration(mach.NetLatency))
		}
		rt.proc.CountTraffic(bundles, wireBytes, false)
		end = end.Max(commEnd)
	}
	st.PhaseComputeTime += computeEnd.Sub(d.phaseStart)
	if end.After(computeEnd) {
		st.PhaseCommTime += end.Sub(computeEnd) // comm not hidden by overlap
	}
	rt.proc.AdvanceTo(end)

	// 4. All nodes have staged: exchange barrier.
	rt.proc.Barrier()

	// 5. Apply incoming records (in source order), paying receive-side
	// costs.
	if opt.StrictWrites {
		// Strict applies serialize (conflict trackers and the conflict
		// log are cross-node); each node still applies only runs staged
		// for its own partition. Without strict mode the applies run
		// concurrently under the parallel scheduler — every node touches
		// only its own partition and its own stage cells, and the phase's
		// exchange barrier (step 4) ordered all staging before any apply.
		if err := d.applyGlobalIncomingSerial(seq); err != nil && firstErr == nil {
			firstErr = err
		}
	} else {
		if err := d.applyGlobalIncoming(seq); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	inElems, inBytes := d.cinElems, d.cinBytes
	var inCPU vtime.Duration
	var inBundles, inWire int64
	var memBytes int64
	for n := 0; n < nodes; n++ {
		memBytes += inBytes[n]
		if n == d.node || inElems[n] == 0 {
			continue
		}
		nb := d.bundleCount(inElems[n], inBytes[n])
		inBundles += nb
		inWire += inBytes[n]
		inCPU += vtime.Duration(float64(nb) * (mach.RecvOverhead + mach.BundleOverhead))
	}
	st.BundlesIn += inBundles
	st.BytesIn += inWire
	rt.proc.Charge(inCPU + mach.MemTime(memBytes))
	st.PhaseApplyTime += inCPU + mach.MemTime(memBytes)

	// 6. Everyone applied: the next phase (or node-level code) may read
	// any partition.
	rt.proc.Barrier()

	if firstErr != nil {
		// After the release the process may no longer hold the turn;
		// "first violation wins" must follow sequential order. The err
		// copy keeps the closure (and its captures) off the hot path:
		// nothing heap-allocates unless a violation actually occurred.
		err := firstErr
		rt.proc.Serial(func() { gs.noteStrict(err) })
	}
	return nil
}
