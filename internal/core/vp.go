package core

import (
	"fmt"

	"ppm/internal/vtime"
)

// phaseKind distinguishes the two parallel phase constructs.
type phaseKind int

const (
	phaseInvalid phaseKind = iota
	phaseGlobal
	phaseNode
)

func (k phaseKind) String() string {
	switch k {
	case phaseGlobal:
		return "global"
	case phaseNode:
		return "node"
	default:
		return "invalid"
	}
}

// vpStatus is the coordinator's view of one VP.
type vpStatus int

const (
	stRunning vpStatus = iota
	stAtBoundary
	stAtPhaseEnd
	stDead
)

type vpEventKind int

const (
	evBoundary vpEventKind = iota
	evPhaseEnd
	evExit
	evPanic
)

type vpEvent struct {
	vp   *VP
	kind vpEventKind
	pk   phaseKind
	err  error
}

// vpAbort unwinds a VP goroutine during teardown.
type vpAbort struct{}

// intRun is a half-open interval [lo, hi) of shared-array indices.
type intRun struct {
	lo, hi int
}

// VP is a virtual processor: one of the K parallel instances of a PPM
// function started by Runtime.Do (the paper's PPM_do construct). All VP
// methods must be called from the VP's own body.
type VP struct {
	d        *doRun
	nodeRank int
	wid      int64 // (node<<32)|nodeRank, precomputed writer id
	resume   chan bool

	// coordinator-only state
	status vpStatus

	inPhase   bool
	phaseKind phaseKind

	// accounting, merged and reset at each phase commit
	charge  vtime.Duration
	reads   int64
	writes  int64
	rrElems []int64 // remote read elements per owner node (NoReadCache)
	rrBytes []int64
	bufs    []vpFlusher

	// Per-VP remote-read tracking for the phase-local read cache: block
	// reads record interval runs per array (indexed by array id), scalar
	// reads record scattered indices. VP goroutines only ever touch their
	// own set — no lock — and the coordinator merges the sets into the
	// node-level dedup counts at commit.
	rdRuns [][]intRun
	rdIdx  map[readKey]struct{}
}

// readKey identifies one element of one shared array for the read cache.
type readKey struct {
	array int
	idx   int
}

// NodeRank returns this VP's rank within its node's Do, in [0, K)
// (PPM_VP_node_rank).
func (vp *VP) NodeRank() int { return vp.nodeRank }

// K returns the number of VPs started by this node's Do.
func (vp *VP) K() int { return vp.d.k }

// Node returns the node id this VP runs on.
func (vp *VP) Node() int { return vp.d.node }

// Nodes returns the cluster's node count.
func (vp *VP) Nodes() int { return vp.d.rt.gs.nodes }

// Cores returns the cores per node.
func (vp *VP) Cores() int { return vp.d.rt.gs.cores }

// GlobalRank returns this VP's rank across all nodes' current Do calls
// (PPM_VP_global_rank): the sum of the K values of lower-numbered nodes
// plus NodeRank. It is well defined only inside a global phase, when all
// nodes are synchronously inside their Do; the prefix sum is computed
// once at phase open instead of per call.
func (vp *VP) GlobalRank() int {
	if vp.d.rankValid {
		return vp.d.rankBase + vp.nodeRank
	}
	gs := vp.d.rt.gs
	s := 0
	for n := 0; n < vp.d.node; n++ {
		s += gs.doK[n]
	}
	return s + vp.nodeRank
}

// GlobalK returns the total VP count across all nodes' current Do calls.
// Like GlobalRank, it is well defined only inside a global phase.
func (vp *VP) GlobalK() int {
	if vp.d.rankValid {
		return vp.d.globalK
	}
	gs := vp.d.rt.gs
	s := 0
	for n := 0; n < gs.nodes; n++ {
		s += gs.doK[n]
	}
	return s
}

// Charge adds d of modeled computation to this VP's work in the current
// phase (or the inter-phase segment).
func (vp *VP) Charge(d vtime.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("core: VP %d charged negative duration %v", vp.nodeRank, d))
	}
	vp.charge += d
}

// ChargeFlops adds the modeled time of n flops on one core.
func (vp *VP) ChargeFlops(n int64) { vp.charge += vp.d.rt.gs.mach.FlopTime(n) }

// ChargeMem adds the modeled time of streaming n bytes through one core.
func (vp *VP) ChargeMem(n int64) { vp.charge += vp.d.rt.gs.mach.MemTime(n) }

// GlobalPhase executes f under global (cluster-wide) phase semantics:
// implicit begin/end synchronization across all VPs of all nodes, reads
// observe begin-of-phase values, writes commit at the end.
func (vp *VP) GlobalPhase(f func()) { vp.phase(phaseGlobal, f) }

// NodePhase executes f under node-level phase semantics: synchronization
// only among this node's VPs, no cluster communication. Shared access is
// limited to node arrays and the node's own partition of global arrays.
func (vp *VP) NodePhase(f func()) { vp.phase(phaseNode, f) }

func (vp *VP) phase(pk phaseKind, f func()) {
	if vp.inPhase {
		panic(fmt.Sprintf("core: nested phase construct (VP %d on node %d)", vp.nodeRank, vp.d.node))
	}
	vp.park(evBoundary, pk)
	vp.inPhase = true
	vp.phaseKind = pk
	f()
	vp.inPhase = false
	vp.phaseKind = phaseInvalid
	vp.park(evPhaseEnd, pk)
}

// park announces a transition to the coordinator and waits to be resumed.
func (vp *VP) park(kind vpEventKind, pk phaseKind) {
	vp.d.events <- vpEvent{vp: vp, kind: kind, pk: pk}
	if !<-vp.resume {
		panic(vpAbort{})
	}
}

// accessCheck guards shared-variable access paths.
func (vp *VP) accessCheck(array, op string) {
	if !vp.inPhase {
		panic(fmt.Sprintf("core: %s of shared %q outside a phase (VP %d on node %d): shared variables may only be accessed inside PPM phases",
			op, array, vp.nodeRank, vp.d.node))
	}
}

// noteRemoteRead accounts one remote element read for bundling. The
// runtime keeps a node-level cache of remote values in node shared
// memory: within a phase the element is immutable, so the node fetches it
// at most once no matter how many VPs read it. Each VP records its own
// read set without locking; the commit merges the sets, so the traffic
// counts are the same union the old global map computed — contention-free.
func (vp *VP) noteRemoteRead(array, idx, owner, elemBytes int) {
	if vp.d.rt.gs.opt.NoReadCache {
		vp.countRemote(owner, 1, int64(elemBytes))
		return
	}
	if vp.rdIdx == nil {
		vp.rdIdx = make(map[readKey]struct{})
	}
	vp.rdIdx[readKey{array: array, idx: idx}] = struct{}{}
}

// noteRemoteRun accounts a remote block read of [lo, hi) as one interval
// run — the bulk counterpart of noteRemoteRead. The caller has already
// split the range so that one owner serves all of it.
func (vp *VP) noteRemoteRun(array, lo, hi, owner, elemBytes int) {
	if vp.d.rt.gs.opt.NoReadCache {
		vp.countRemote(owner, int64(hi-lo), int64((hi-lo)*elemBytes))
		return
	}
	if vp.rdRuns == nil {
		vp.rdRuns = make([][]intRun, len(vp.d.rt.gs.arrays))
	}
	runs := vp.rdRuns[array]
	if k := len(runs); k > 0 {
		if last := &runs[k-1]; lo >= last.lo && lo <= last.hi {
			if hi > last.hi {
				last.hi = hi
			}
			return
		}
	}
	vp.rdRuns[array] = append(runs, intRun{lo: lo, hi: hi})
}

// countRemote tallies uncached remote-read traffic directly (NoReadCache:
// every fine-grained read is fresh traffic).
func (vp *VP) countRemote(owner int, elems, bytes int64) {
	if vp.rrElems == nil {
		n := vp.d.rt.gs.nodes
		vp.rrElems = make([]int64, n)
		vp.rrBytes = make([]int64, n)
	}
	vp.rrElems[owner] += elems
	vp.rrBytes[owner] += bytes
}

// doRun coordinates one Do invocation on one node. With the plan cache
// on it is reused across Do invocations of the same shape (see plan.go):
// its VP goroutines stay parked at a start gate between Dos, and its
// scratch and recorded phase plans carry over, which is what makes warm
// iterations allocation-free.
type doRun struct {
	rt     *Runtime
	node   int
	k      int
	vps    []*VP
	events chan vpEvent

	// Warm-cache state (plan.go). persistent marks a cached doRun whose
	// workers park at the start gate between Dos; body is the current
	// invocation's body (re-set per Do: closures with the same code
	// pointer may capture different state); broken marks a doRun whose
	// workers died on an error path and must not be reused.
	persistent bool
	broken     bool
	body       func(*VP)

	// plans[i] is the recorded plan of the i-th phase of this Do shape
	// (node phases occupy slots but are never consulted).
	plans []phasePlan

	phases     int64
	phaseStart vtime.Time
	openKind   phaseKind // kind of the phase currently open (set by openPhase)

	// Global-rank cache: the doK prefix sums are stable while a global
	// phase is open (every node is synchronously inside its Do), so they
	// are computed once at phase open.
	rankBase  int
	globalK   int
	rankValid bool

	// Commit-time scratch for merging the per-VP read sets (per array id).
	mrRuns [][]intRun
	mrIdx  [][]int

	// Commit-time scratch reused across phases (and, for a persistent
	// doRun, across Dos): the per-peer send tally, the merged per-owner
	// remote-read counters, and the per-source incoming counters.
	ctally   sendTally
	crrElems []int64
	crrBytes []int64
	cinElems []int64
	cinBytes []int64

	// Distributed commit scratch (see commitGlobalDist): the outgoing
	// stream slice, per-destination raw and delta-encode buffers,
	// per-source decode buffers, and the stream cursors.
	cout    [][]byte
	coutRaw [][]byte
	coutEnc [][]byte
	cdec    [][]byte
	ccurs   []commitCursor

	sharedReadCost  vtime.Duration
	sharedWriteCost vtime.Duration
}

// Do starts K virtual processors executing body in parallel on this node
// (the paper's "PPM_do(K) func(...)" construct) and returns when all of
// them have finished. Phases inside body synchronize the VPs; global
// phases additionally synchronize with the other nodes' Do calls, which
// must reach their global phases in matching order.
func (rt *Runtime) Do(k int, body func(vp *VP)) {
	if rt.inDo {
		panic("core: nested Do is not allowed")
	}
	if k <= 0 {
		panic(fmt.Sprintf("core: Do requires K >= 1, got %d", k))
	}
	if body == nil {
		panic("core: Do with nil body")
	}
	rt.inDo = true
	defer func() { rt.inDo = false }()

	st := rt.stats()
	st.Dos++
	st.VPsStarted += int64(k)
	rt.gs.doK[rt.node] = k

	if !rt.gs.opt.NoPlanCache {
		rt.warmDoRun(k, body).coordinate()
		return
	}
	d := newDoRun(rt, k)
	for _, vp := range d.vps {
		go d.vpMain(vp, body)
	}
	d.coordinate()
}

// newDoRun builds a doRun with its K VPs (goroutines not yet started).
func newDoRun(rt *Runtime, k int) *doRun {
	d := &doRun{
		rt:              rt,
		node:            rt.node,
		k:               k,
		vps:             make([]*VP, k),
		events:          make(chan vpEvent, k),
		sharedReadCost:  vtime.Duration(rt.gs.mach.SharedReadCost),
		sharedWriteCost: vtime.Duration(rt.gs.mach.SharedWriteCost),
	}
	widBase := int64(rt.node) << 32
	for i := 0; i < k; i++ {
		vp := &VP{d: d, nodeRank: i, wid: widBase | int64(i), resume: make(chan bool, 1)}
		d.vps[i] = vp
	}
	return d
}

// vpMain is the goroutine body of one VP in a one-shot (plan cache off)
// doRun: run the body once, report, exit.
func (d *doRun) vpMain(vp *VP, body func(*VP)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(vpAbort); ok {
				d.events <- vpEvent{vp: vp, kind: evExit}
				return
			}
			d.events <- vpEvent{vp: vp, kind: evPanic,
				err: fmt.Errorf("core: VP %d on node %d panicked: %v", vp.nodeRank, d.node, r)}
			return
		}
		d.events <- vpEvent{vp: vp, kind: evExit}
	}()
	body(vp)
}

// vpWorker is the goroutine body of one VP in a persistent (warm)
// doRun: it parks at the start gate between Dos and runs d.body once
// per true it receives. A false at the gate — sent by releaseWarm at
// run end or doRun teardown — retires the worker; so does any abort or
// panic inside the body, since both only happen while the run is dying
// and the doRun is then marked broken.
func (d *doRun) vpWorker(vp *VP) {
	for <-vp.resume {
		if !d.runBody(vp) {
			return
		}
	}
}

// runBody executes one Do invocation's body on a warm worker and
// reports the exit event. It returns whether the worker survives for
// another invocation.
func (d *doRun) runBody(vp *VP) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(vpAbort); isAbort {
				d.events <- vpEvent{vp: vp, kind: evExit}
				return
			}
			d.events <- vpEvent{vp: vp, kind: evPanic,
				err: fmt.Errorf("core: VP %d on node %d panicked: %v", vp.nodeRank, d.node, r)}
			return
		}
		ok = true
		d.events <- vpEvent{vp: vp, kind: evExit}
	}()
	d.body(vp)
	return
}

// coordinate runs on the node's proc goroutine: it alternates between
// letting VPs run and performing phase opens/commits, until every VP has
// exited. A phase-shape violation (VPs disagreeing on the next phase) or
// a VP panic aborts the Do by panicking on the proc goroutine, which the
// cluster converts into a run error.
func (d *doRun) coordinate() {
	running := d.k
	alive := d.k
	var firstErr error

	for {
		// Wait until no VP is on CPU.
		for running > 0 {
			ev := <-d.events
			running--
			switch ev.kind {
			case evExit:
				ev.vp.status = stDead
				alive--
			case evPanic:
				ev.vp.status = stDead
				alive--
				if firstErr == nil {
					firstErr = ev.err
				}
			case evBoundary:
				ev.vp.status = stAtBoundary
				ev.vp.phaseKind = ev.pk // remember requested kind for shape check
			case evPhaseEnd:
				ev.vp.status = stAtPhaseEnd
			}
		}
		if firstErr != nil {
			break
		}
		if alive == 0 {
			d.finish()
			return
		}
		// Classify the parked population.
		nBoundary, nEnd := 0, 0
		kind := phaseInvalid
		uniform := true
		for _, vp := range d.vps {
			switch vp.status {
			case stAtBoundary:
				nBoundary++
				if kind == phaseInvalid {
					kind = vp.phaseKind
				} else if kind != vp.phaseKind {
					uniform = false
				}
			case stAtPhaseEnd:
				nEnd++
			}
		}
		switch {
		case nBoundary == alive && nEnd == 0 && uniform:
			// All alive VPs agree on the next phase: open it.
			d.openPhase(kind)
			running = d.resumeParked(stAtBoundary)
		case nEnd == alive && nBoundary == 0:
			// All alive VPs completed the phase body: commit.
			if err := d.commit(d.openKind); err != nil && firstErr == nil {
				firstErr = err
			}
			if firstErr != nil {
				// abort below
			} else {
				running = d.resumeParked(stAtPhaseEnd)
				continue
			}
		default:
			firstErr = fmt.Errorf(
				"core: phase shape mismatch on node %d: %d VPs at a phase boundary, %d at a phase end, %d exited — all K VPs of a Do must execute the same phase sequence",
				d.node, nBoundary, nEnd, d.k-alive)
		}
		if firstErr != nil {
			break
		}
	}
	// Teardown: abort all parked VPs and drain their exits. A warm
	// doRun's workers retire on abort, so the doRun cannot serve another
	// invocation; mark it broken so the cache rebuilds instead of
	// reusing dead workers (only reachable if user code swallows the
	// panic below).
	d.broken = true
	for _, vp := range d.vps {
		if vp.status == stAtBoundary || vp.status == stAtPhaseEnd {
			vp.resume <- false
			running++
		}
	}
	for running > 0 {
		<-d.events
		running--
	}
	panic(firstErr)
}

// resumeParked resumes every VP with the given status and returns how
// many were resumed.
func (d *doRun) resumeParked(s vpStatus) int {
	n := 0
	for _, vp := range d.vps {
		if vp.status == s {
			vp.status = stRunning
			vp.resume <- true
			n++
		}
	}
	return n
}

// openPhase performs the phase-entry synchronization: global phases
// synchronize the cluster so every node's partitions are committed and
// stable before any VP reads them. After that barrier every node's doK
// is stable, so the GlobalRank/GlobalK prefix sums are computed here once
// instead of on every call.
func (d *doRun) openPhase(kind phaseKind) {
	if kind == phaseGlobal {
		if d.rt.gs.dist != nil {
			d.openPhaseDist()
		} else {
			d.rt.proc.Barrier()
			gs := d.rt.gs
			base := 0
			for n := 0; n < d.node; n++ {
				base += gs.doK[n]
			}
			total := base
			for n := d.node; n < gs.nodes; n++ {
				total += gs.doK[n]
			}
			d.rankBase, d.globalK, d.rankValid = base, total, true
		}
	}
	d.openKind = kind
	if d.rt.proc != nil {
		d.phaseStart = d.rt.proc.Clock()
	}
	d.phases++
}

// finish charges any leftover VP work accumulated after the last phase
// (or in a phase-less Do), merges residual counters, and returns the
// VPs' write buffers to their arrays' pools for the next Do.
func (d *doRun) finish() {
	mach := d.rt.gs.mach
	extra := vtime.Duration(0)
	if d.phases == 0 {
		extra = vtime.Duration(mach.VPStartCost)
	}
	if d.rt.proc != nil {
		d.rt.proc.Charge(d.makespan(extra))
	}
	st := d.rt.stats()
	for _, vp := range d.vps {
		st.SharedReads += vp.reads
		st.SharedWrites += vp.writes
		vp.charge, vp.reads, vp.writes = 0, 0, 0
		if d.persistent {
			// Keep the write buffers attached: the next warm invocation
			// of this Do shape reuses them (same VP, same writer id)
			// with their record and arena capacity intact, instead of
			// round-tripping through the pool.
			continue
		}
		for _, b := range vp.bufs {
			b.release()
		}
		vp.bufs = nil
	}
}
