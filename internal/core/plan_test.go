package core

import (
	"math"
	"testing"

	"ppm/internal/machine"
)

// The phase-plan cache must be invisible in every modeled respect: a
// shape-stable program replays its plans (and the counters say so), a
// shape-shifting program falls back to the cold merge (and the counters
// say so), and either way the committed data and modeled statistics are
// bit-identical to a run with the cache disabled.

// planRun executes iters global phases of `phase` over a shared array of
// n elements at the given node count and returns the final array, the
// per-node stats, and the totals. The body of every phase is a function
// of (iteration, VP) only, so cache-on and cache-off runs perform
// exactly the same accesses.
func planRun(t *testing.T, nodes, k, iters, n int, noCache bool,
	phase func(it int, vp *VP, g *Global[float64], buf []float64)) ([]float64, []NodeStats, NodeStats) {
	t.Helper()
	out := make([]float64, n)
	o := Options{Nodes: nodes, Machine: machine.Generic(), NoPlanCache: noCache}
	rep := mustRun(t, o, func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "plan.g", n)
		lo, _ := g.OwnerRange(rt)
		l := g.Local(rt)
		for i := range l {
			l[i] = float64(lo+i) * 0.25
		}
		for it := 0; it < iters; it++ {
			it := it
			rt.Do(k, func(vp *VP) {
				buf := make([]float64, n)
				vp.GlobalPhase(func() { phase(it, vp, g, buf) })
			})
		}
		glo, _ := g.OwnerRange(rt)
		copy(out[glo:], g.Local(rt))
		rt.Barrier()
	})
	return out, rep.PerNode, rep.Totals
}

// samePlanOutcome fails the test unless the two runs committed identical
// bits and identical modeled statistics (PlanCache excluded — it is the
// host-side bookkeeping under test, not part of the model).
func samePlanOutcome(t *testing.T, label string, gotV, wantV []float64, got, want []NodeStats) {
	t.Helper()
	for i := range wantV {
		if math.Float64bits(gotV[i]) != math.Float64bits(wantV[i]) {
			t.Fatalf("%s: element %d = %v (%#x), want %v (%#x)", label, i,
				gotV[i], math.Float64bits(gotV[i]), wantV[i], math.Float64bits(wantV[i]))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d nodes of stats, want %d", label, len(got), len(want))
	}
	for nd := range want {
		g, w := got[nd], want[nd]
		g.PlanCache, w.PlanCache = PlanCacheStats{}, PlanCacheStats{}
		if g != w {
			t.Errorf("%s: node %d counters diverge:\n cache-on  %+v\n cache-off %+v", label, nd, g, w)
		}
	}
}

// TestPlanCacheStableShape: an iteration-invariant phase shape records
// one plan per node on the first pass and replays it on every later one.
func TestPlanCacheStableShape(t *testing.T) {
	t.Setenv("PPM_PLAN_CACHE", "") // counters below assume Options wins
	const nodes, k, iters, n = 2, 3, 6, 48
	phase := func(it int, vp *VP, g *Global[float64], buf []float64) {
		// Fixed remote block read plus one owned write per VP.
		tgt := (vp.Node() + 1) % vp.Nodes()
		rlo, rhi := ChunkRange(n, vp.Nodes(), tgt)
		g.ReadBlock(vp, rlo, rhi, buf[:rhi-rlo])
		var s float64
		for _, v := range buf[:rhi-rlo] {
			s += v
		}
		lo, _ := ChunkRange(n, vp.Nodes(), vp.Node())
		g.Write(vp, lo+vp.NodeRank(), s+float64(it))
	}
	warmV, warmS, warmT := planRun(t, nodes, k, iters, n, false, phase)
	coldV, coldS, coldT := planRun(t, nodes, k, iters, n, true, phase)
	samePlanOutcome(t, "stable", warmV, coldV, warmS, coldS)

	pc := warmT.PlanCache
	if want := int64(nodes); pc.Misses != want {
		t.Errorf("stable shape: Misses = %d, want %d (one cold build per node)", pc.Misses, want)
	}
	if want := int64(nodes * (iters - 1)); pc.Hits != want {
		t.Errorf("stable shape: Hits = %d, want %d", pc.Hits, want)
	}
	if pc.Invalidations != 0 {
		t.Errorf("stable shape: Invalidations = %d, want 0", pc.Invalidations)
	}
	if pc.Hits > 0 && pc.RunsReplayed == 0 {
		t.Error("stable shape: hits replayed no runs")
	}
	if off := coldT.PlanCache; off != (PlanCacheStats{}) {
		t.Errorf("NoPlanCache run still counted plan activity: %+v", off)
	}
}

// TestPlanCacheGrowingReadSet: a read range that grows every iteration
// invalidates the previous iteration's plan each time — all misses, no
// hits, and still bit-identical to the uncached run.
func TestPlanCacheGrowingReadSet(t *testing.T) {
	t.Setenv("PPM_PLAN_CACHE", "")
	const nodes, k, iters, n = 2, 2, 5, 64
	phase := func(it int, vp *VP, g *Global[float64], buf []float64) {
		// The shape-shifting read targets the neighbor's partition: only
		// remote reads enter the merged read set (local reads cost no
		// traffic and are not part of the plan signature).
		tgt := (vp.Node() + 1) % vp.Nodes()
		rlo, _ := ChunkRange(n, vp.Nodes(), tgt)
		sz := 8 + 4*it
		g.ReadBlock(vp, rlo, rlo+sz, buf[:sz])
		var s float64
		for _, v := range buf[:sz] {
			s += v
		}
		lo, _ := ChunkRange(n, vp.Nodes(), vp.Node())
		g.Write(vp, lo+vp.NodeRank(), s)
	}
	warmV, warmS, warmT := planRun(t, nodes, k, iters, n, false, phase)
	coldV, coldS, _ := planRun(t, nodes, k, iters, n, true, phase)
	samePlanOutcome(t, "growing", warmV, coldV, warmS, coldS)

	pc := warmT.PlanCache
	if pc.Hits != 0 {
		t.Errorf("growing read set: Hits = %d, want 0", pc.Hits)
	}
	if want := int64(nodes * iters); pc.Misses != want {
		t.Errorf("growing read set: Misses = %d, want %d", pc.Misses, want)
	}
	if want := int64(nodes * (iters - 1)); pc.Invalidations != want {
		t.Errorf("growing read set: Invalidations = %d, want %d", pc.Invalidations, want)
	}
}

// TestPlanCacheWriteToAddSwitch: halfway through, the kernel switches
// from blind writes to read-modify-add — the scalar read joining the
// access shape invalidates the recorded plan exactly once per node,
// after which the new shape becomes hot again.
func TestPlanCacheWriteToAddSwitch(t *testing.T) {
	t.Setenv("PPM_PLAN_CACHE", "")
	const nodes, k, iters, n = 2, 2, 6, 48
	phase := func(it int, vp *VP, g *Global[float64], buf []float64) {
		tgt := (vp.Node() + 1) % vp.Nodes()
		rlo, rhi := ChunkRange(n, vp.Nodes(), tgt)
		g.ReadBlock(vp, rlo, rhi, buf[:rhi-rlo])
		var s float64
		for _, v := range buf[:rhi-rlo] {
			s += v
		}
		lo, _ := ChunkRange(n, vp.Nodes(), vp.Node())
		i := lo + vp.NodeRank()
		if it < iters/2 {
			g.Write(vp, i, s*1e-3+float64(it))
		} else {
			// The switch: accumulate against a remote sample instead of
			// overwriting. The new scalar remote read changes the access
			// shape, so the recorded plan must be invalidated.
			old := g.Read(vp, rlo+vp.NodeRank())
			g.Add(vp, i, old*1e-6+s*1e-3)
		}
	}
	warmV, warmS, warmT := planRun(t, nodes, k, iters, n, false, phase)
	coldV, coldS, _ := planRun(t, nodes, k, iters, n, true, phase)
	samePlanOutcome(t, "write-to-add", warmV, coldV, warmS, coldS)

	pc := warmT.PlanCache
	if want := int64(nodes); pc.Invalidations != want {
		t.Errorf("write-to-add switch: Invalidations = %d, want %d (one per node at the switch)",
			pc.Invalidations, want)
	}
	if want := int64(nodes * (iters - 2)); pc.Hits != want {
		t.Errorf("write-to-add switch: Hits = %d, want %d (both halves hot after their first pass)",
			pc.Hits, want)
	}
}

// TestPlanCacheNodeCountRanges: a kernel whose read ranges are derived
// from the node layout must stay bit-identical with the cache on and off
// at every node count (plans are per-runtime, so layouts can never share
// one — this pins the observable consequence).
func TestPlanCacheNodeCountRanges(t *testing.T) {
	t.Setenv("PPM_PLAN_CACHE", "")
	const k, iters, n = 3, 4, 60
	for _, nodes := range []int{1, 2, 3} {
		phase := func(it int, vp *VP, g *Global[float64], buf []float64) {
			// Neighbor partition: both the range bounds and the owner
			// split depend on the node count.
			tgt := (vp.Node() + 1) % vp.Nodes()
			rlo, rhi := ChunkRange(n, vp.Nodes(), tgt)
			g.ReadBlock(vp, rlo, rhi, buf[:rhi-rlo])
			var s float64
			for _, v := range buf[:rhi-rlo] {
				s += v
			}
			g.Add(vp, rlo+vp.NodeRank(), s*1e-6)
		}
		warmV, warmS, warmT := planRun(t, nodes, k, iters, n, false, phase)
		coldV, coldS, _ := planRun(t, nodes, k, iters, n, true, phase)
		label := "node-count"
		samePlanOutcome(t, label, warmV, coldV, warmS, coldS)
		if want := int64(nodes * (iters - 1)); warmT.PlanCache.Hits != want {
			t.Errorf("nodes=%d: Hits = %d, want %d", nodes, warmT.PlanCache.Hits, want)
		}
	}
}
