package core

import (
	"math"
	"testing"

	"ppm/internal/machine"
)

// Analytic check of the commit cost model: a single global phase with one
// remote write on a hand-computable machine must produce exactly the
// makespan the model specifies.
func TestGlobalPhaseCostAnalytic(t *testing.T) {
	m := machine.Generic()
	// Make every constant distinct and easy to track.
	m.NetLatency = 10e-6
	m.NetBandwidth = 1e9
	m.SendOverhead = 1e-6
	m.RecvOverhead = 2e-6
	m.SharedReadCost = 0
	m.SharedWriteCost = 4e-6
	m.VPStartCost = 3e-6
	m.BundleOverhead = 5e-6
	m.PhaseFixedCost = 7e-6
	m.HeaderBytes = 0
	m.MemRate = 1e9

	rep, err := Run(Options{Nodes: 2, CoresPerNode: 1, Machine: m}, func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "a", 2) // element 0 on node 0, 1 on node 1
		// Zeroing charge: 1 element * 8 bytes / 1e9 B/s = 8ns, both nodes.
		rt.Do(1, func(vp *VP) {
			vp.GlobalPhase(func() {
				if vp.Node() == 0 {
					g.Write(vp, 1, 5) // one remote write, 16 bytes payload (value+index)
				}
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	// Walk the model by hand.
	// t0: alloc zeroing = 8e-9 on both nodes.
	alloc := 8e-9
	// Phase open barrier (2 procs, 1 round): latest arrival = alloc;
	// barrier cost = NetLatency + SendOverhead + RecvOverhead = 13e-6.
	barrier := m.NetLatency + m.SendOverhead + m.RecvOverhead
	open := alloc + barrier
	// Node 0 phase: fixed 7e-6 + span. Span: 1 VP, charge = one write
	// cost 4e-6, plus dispatch 3e-6 => 7e-6 on 1 core.
	compute0End := open + 7e-6 + 7e-6
	// Node 0 comm (overlapped, starts at phase start = open): 1 bundle,
	// cpu = send 1e-6 + bundle 5e-6 = 6e-6; wire = 16 B / 1e9 = 16e-9;
	// NIC from `open`; commEnd = max(open+6e-6, nic) + latency(one-way).
	cpuDone := open + 6e-6
	nicDone := open + 16e-9
	commEnd := math.Max(cpuDone, nicDone) + m.NetLatency
	end0 := math.Max(compute0End, commEnd)
	// Node 1 phase: fixed 7e-6 + dispatch 3e-6 (no write) => end at
	// open + 10e-6.
	end1 := open + 10e-6
	// Barrier after staging: release = max(end0, end1) + barrier.
	postStage := math.Max(end0, end1) + barrier
	// Apply on node 1: 1 incoming bundle: recv 2e-6 + bundle 5e-6, plus
	// mem 16 B / 1e9 = 16e-9. Node 0 applies nothing.
	apply1 := postStage + 7e-6 + 16e-9
	// Final barrier: release = max(postStage /*node0*/, apply1) + barrier.
	final := apply1 + barrier

	if got := rep.Makespan().Seconds(); math.Abs(got-final) > 1e-12 {
		t.Errorf("makespan = %.9g, analytic model says %.9g (diff %g)", got, final, got-final)
	}
}

// The node-phase cost model, by hand: fixed + span + apply memtime, no
// barriers, no communication.
func TestNodePhaseCostAnalytic(t *testing.T) {
	m := machine.Generic()
	m.SharedWriteCost = 2e-6
	m.VPStartCost = 1e-6
	m.PhaseFixedCost = 4e-6
	m.MemRate = 1e9

	rep, err := Run(Options{Nodes: 1, CoresPerNode: 2, Machine: m}, func(rt *Runtime) {
		a := AllocNode[float64](rt, "n", 4) // zeroing: 32 B / 1e9
		rt.Do(4, func(vp *VP) {
			vp.NodePhase(func() {
				a.Write(vp, vp.NodeRank(), 1)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	alloc := 32e-9
	// Span: 4 VPs each (write 2e-6 + dispatch 1e-6) = 3e-6; dynamic
	// schedule on 2 cores: max(total/2, maxVP) = max(6e-6, 3e-6) = 6e-6.
	// Apply: 4 writes * 8 bytes / 1e9 = 32e-9.
	want := alloc + 4e-6 + 6e-6 + 32e-9
	if got := rep.Makespan().Seconds(); math.Abs(got-want) > 1e-12 {
		t.Errorf("makespan = %.9g, analytic model says %.9g", got, want)
	}
}

// The per-phase breakdown must account for where time goes, and the
// communication share must grow with node count on a comm-heavy workload.
func TestPhaseBreakdown(t *testing.T) {
	run := func(nodes int) (compute, comm, apply float64, makespan float64) {
		o := Options{Nodes: nodes, Machine: machine.Franklin(), NoOverlap: true}
		rep := mustRun(t, o, func(rt *Runtime) {
			g := AllocGlobal[float64](rt, "b", 1<<14)
			rt.Do(16, func(vp *VP) {
				vp.GlobalPhase(func() {
					for j := 0; j < 256; j++ {
						g.Read(vp, (vp.GlobalRank()*2671+j*4099)%(1<<14))
					}
				})
			})
		})
		tot := rep.Totals
		return tot.PhaseComputeTime.Seconds(), tot.PhaseCommTime.Seconds(),
			tot.PhaseApplyTime.Seconds(), rep.Makespan().Seconds()
	}
	c1, m1, _, _ := run(1)
	if m1 != 0 {
		t.Errorf("1 node should have no phase comm time, got %v", m1)
	}
	if c1 <= 0 {
		t.Error("compute time not recorded")
	}
	c8, m8, _, span8 := run(8)
	if m8 <= 0 {
		t.Error("8-node comm time not recorded")
	}
	if frac := m8 / (c8 + m8); frac < 0.05 {
		t.Errorf("comm share suspiciously low on scattered reads: %v", frac)
	}
	if span8 <= 0 {
		t.Error("no makespan")
	}
}
