package core

import "fmt"

// WriterRef identifies one VP that updated a conflicted element, and
// how (plain write or combining add).
type WriterRef struct {
	Node int  // source node
	VP   int  // VP rank within that node
	Add  bool // true when the update was an Add
}

func (w WriterRef) String() string {
	kind := "write"
	if w.Add {
		kind = "add"
	}
	return fmt.Sprintf("VP %d:%d (%s)", w.Node, w.VP, kind)
}

// WriteConflict is one element of a shared array that received
// conflicting updates within a single phase under StrictWrites: more
// than one VP wrote it, or one VP wrote it while another added to it
// (the model leaves such an element's end-of-phase value undefined).
// Adds combining with adds are not conflicts.
type WriteConflict struct {
	Array   string      // shared-array name
	Node    int         // destination node (the instance, for node arrays)
	Index   int         // element index
	Writers []WriterRef // every involved VP, in apply order
}

func (c WriteConflict) String() string {
	s := fmt.Sprintf("core: conflicting writes to %s[%d] in one phase:", c.Array, c.Index)
	for i, w := range c.Writers {
		if i > 0 {
			s += " and"
		}
		s += " " + w.String()
	}
	return s
}

// conflictKey identifies a conflicted element across a run.
type conflictKey struct {
	array string
	node  int
	index int
}

// conflictLog accumulates every strict-mode conflict of a run, keeping
// discovery order. Like the rest of globalState it is mutated only
// under the cluster's cooperative turn discipline, so it needs no lock.
type conflictLog struct {
	order []*WriteConflict
	byKey map[conflictKey]*WriteConflict
}

// note records that writer updated a conflicted element, creating the
// conflict entry on first sight and appending previously unseen
// writers.
func (l *conflictLog) note(array string, node, index int, writers ...WriterRef) *WriteConflict {
	if l.byKey == nil {
		l.byKey = map[conflictKey]*WriteConflict{}
	}
	k := conflictKey{array, node, index}
	c := l.byKey[k]
	if c == nil {
		c = &WriteConflict{Array: array, Node: node, Index: index}
		l.byKey[k] = c
		l.order = append(l.order, c)
	}
	for _, w := range writers {
		seen := false
		for _, have := range c.Writers {
			if have == w {
				seen = true
				break
			}
		}
		if !seen {
			c.Writers = append(c.Writers, w)
		}
	}
	return c
}

// list returns the run's conflicts in discovery order.
func (l *conflictLog) list() []WriteConflict {
	out := make([]WriteConflict, len(l.order))
	for i, c := range l.order {
		out[i] = *c
	}
	return out
}

func writerRef(writer int64, add bool) WriterRef {
	return WriterRef{Node: int(writer >> 32), VP: int(writer & 0xffffffff), Add: add}
}
