package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"ppm/internal/machine"
	"ppm/internal/rng"
)

func TestFillAndCopyOut(t *testing.T) {
	mustRun(t, opts(3), func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "f", 17)
		FillGlobal(rt, g, 2.5)
		all := CopyOut(rt, g)
		if len(all) != 17 {
			panic("CopyOut length")
		}
		for i, v := range all {
			if v != 2.5 {
				panic(fmt.Sprintf("element %d = %v", i, v))
			}
		}
	})
}

func TestCopyInOutRoundTrip(t *testing.T) {
	src := make([]int64, 23)
	for i := range src {
		src[i] = int64(i * i)
	}
	mustRun(t, opts(4), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "rt", len(src))
		CopyIn(rt, g, src)
		got := CopyOut(rt, g)
		for i := range src {
			if got[i] != src[i] {
				panic(fmt.Sprintf("round trip [%d] = %d", i, got[i]))
			}
		}
	})
}

func TestCopyInLengthMismatch(t *testing.T) {
	_, err := Run(opts(1), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "x", 4)
		CopyIn(rt, g, make([]int64, 3))
	})
	if err == nil || !strings.Contains(err.Error(), "src has 3") {
		t.Errorf("expected length error, got %v", err)
	}
}

func TestReduceGlobal(t *testing.T) {
	mustRun(t, opts(3), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "r", 10)
		local := g.Local(rt)
		lo, _ := g.OwnerRange(rt)
		for i := range local {
			local[i] = int64(lo + i + 1) // 1..10
		}
		sum := ReduceGlobal(rt, g, func(a, b int64) int64 { return a + b })
		if sum != 55 {
			panic(fmt.Sprintf("sum = %d", sum))
		}
		max := ReduceGlobal(rt, g, func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if max != 10 {
			panic(fmt.Sprintf("max = %d", max))
		}
	})
}

func TestReduceGlobalEmptyPartitions(t *testing.T) {
	// More nodes than elements: some partitions are empty and must not
	// poison the reduction with zero values.
	mustRun(t, opts(5), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "e", 2)
		if len(g.Local(rt)) > 0 {
			g.Local(rt)[0] = 7
		}
		min := ReduceGlobal(rt, g, func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		})
		if min != 7 {
			panic(fmt.Sprintf("min over {7,7} = %d", min))
		}
	})
}

func TestPrefixSumGlobal(t *testing.T) {
	f := func(seed uint64, nodesRaw, nRaw uint8) bool {
		nodes := int(nodesRaw%5) + 1
		n := int(nRaw%40) + 1
		r := rng.New(seed)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(100)) - 50
		}
		want := make([]int64, n)
		var run int64
		for i := range vals {
			want[i] = run
			run += vals[i]
		}
		ok := true
		_, err := Run(Options{Nodes: nodes, Machine: machine.Generic()}, func(rt *Runtime) {
			g := AllocGlobal[int64](rt, "ps", n)
			CopyIn(rt, g, vals)
			PrefixSumGlobal(rt, g)
			got := CopyOut(rt, g)
			for i := range want {
				if got[i] != want[i] {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGlobal2D(t *testing.T) {
	mustRun(t, opts(2), func(rt *Runtime) {
		m := AllocGlobal2D[float64](rt, "mat", 4, 6)
		if m.Rows() != 4 || m.Cols() != 6 || m.Flat().Len() != 24 {
			panic("shape")
		}
		rt.Do(4, func(vp *VP) {
			vp.GlobalPhase(func() {
				r := vp.GlobalRank() % 4
				for c := 0; c < 6; c++ {
					m.Add(vp, r, c, float64(r*10+c))
				}
			})
			vp.GlobalPhase(func() {
				r := vp.GlobalRank() % 4
				// Two nodes x 4 VPs -> each (r, c) was added twice.
				if got := m.Read(vp, r, 5); got != float64(2*(r*10+5)) {
					panic(fmt.Sprintf("m[%d,5] = %v", r, got))
				}
			})
		})
		if rt.NodeID() == 0 {
			if m.At(rt, 3, 4) != 2*34 {
				panic("At wrong")
			}
		}
	})
}

func TestGlobal2DBounds(t *testing.T) {
	_, err := Run(opts(1), func(rt *Runtime) {
		m := AllocGlobal2D[float64](rt, "b", 2, 3)
		rt.Do(1, func(vp *VP) {
			vp.GlobalPhase(func() { m.Read(vp, 2, 0) })
		})
	})
	if err == nil || !strings.Contains(err.Error(), "out of 2x3") {
		t.Errorf("expected bounds error, got %v", err)
	}
}

func TestUtilitiesRejectedInsideDoToo(t *testing.T) {
	for name, f := range map[string]func(rt *Runtime, g *Global[float64]){
		"FillGlobal": func(rt *Runtime, g *Global[float64]) { FillGlobal(rt, g, 1) },
		"CopyOut":    func(rt *Runtime, g *Global[float64]) { CopyOut(rt, g) },
		"ReduceGlobal": func(rt *Runtime, g *Global[float64]) {
			ReduceGlobal(rt, g, func(a, b float64) float64 { return a + b })
		},
		"PrefixSumGlobal": func(rt *Runtime, g *Global[float64]) { PrefixSumGlobal(rt, g) },
	} {
		_, err := Run(opts(1), func(rt *Runtime) {
			g := AllocGlobal[float64](rt, "g", 4)
			rt.Do(1, func(vp *VP) { f(rt, g) })
		})
		if err == nil {
			t.Errorf("%s inside Do accepted", name)
		}
	}
}
