package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"ppm/internal/mp"
	"ppm/internal/partition"
	"ppm/internal/wire"
)

// Phase-boundary checkpoint/restart for distributed runs.
//
// A checkpoint file is one rank's committed state at a program-chosen
// marker: a fixed header (identity + phase counter + NodeStats), then
// every shared array's authoritative local image as one block of the
// wire commit grammar (internal/wire's block := uvarint(arrayID)
// uvarint(nRuns) run*), then a CRC32 trailer over everything before it.
// Reusing the commit grammar means restore runs through the exact
// applyRun path a phase commit uses, so a restored image is the image a
// commit would have produced — and NodeStats plus phaseSeq ride along so
// a recovered run's counters stay bit-identical to a fault-free one.
//
// Restart is coordinated: the supervisor relaunches the whole fleet, and
// RestoreCheckpoint agrees fleet-wide (an allgather of per-rank newest
// tags) on the highest tag every rank holds. Single-rank rejoin is
// unsound without rolling survivors back — their begin-of-phase images
// would disagree with the rejoiner's — so recovery restarts everyone
// from one consistent cut.
//
// File layout (all fixed-width fields little-endian):
//
//	u32 magic "PPMC"  u16 version  u32 rank  u32 nodes
//	i64 tag  i64 phaseSeq
//	u32 len(statsJSON)  statsJSON
//	u32 nArrays
//	nArrays * commit-grammar block
//	u32 crc32(everything above)
const (
	ckptMagic   = 0x5050_4d43 // "PPMC"
	ckptVersion = 1
)

// MaybeCheckpoint is the program's checkpoint marker, called at node
// level (outside Do) at a point where every rank passes with the same
// tag — typically the top of the outer iteration loop, with the
// iteration number as the tag. It writes a checkpoint when Options.
// Checkpoint is configured, the run is distributed, and at least
// EveryPhases global phases committed since the last checkpoint;
// otherwise it is a no-op, so checkpoint-aware programs run unchanged
// under the simulator. The tag is what RestoreCheckpoint later returns,
// letting the program fast-forward its loop to the checkpointed
// iteration.
func (rt *Runtime) MaybeCheckpoint(tag int64) {
	rt.checkNodeLevel("MaybeCheckpoint")
	gs := rt.gs
	c := gs.opt.Checkpoint
	if c == nil || gs.dist == nil {
		return
	}
	if gs.phaseSeqs[rt.node]-gs.lastCkptPhase < int64(c.EveryPhases) {
		return
	}
	if err := writeCheckpoint(gs, rt.node, c.Dir, tag); err != nil {
		panic(AbortError{Err: fmt.Errorf("core: node %d: checkpoint at tag %d: %w", rt.node, tag, err)})
	}
	gs.lastCkptPhase = gs.phaseSeqs[rt.node]
}

// RestoreCheckpoint resumes from the newest checkpoint every rank of the
// fleet holds. It must be called at node level after all shared arrays
// have been allocated (allocation re-runs normally on restart — SPMD
// re-execution re-establishes identical array ids on every rank) and
// before the first phase. When Options.Checkpoint.Restore is unset, the
// run is not distributed, or no common checkpoint exists (first launch,
// or a rank crashed before its first checkpoint), it returns (0, false)
// and the program runs from the top — the degenerate but correct
// recovery. Otherwise every rank's arrays, NodeStats, and phase counter
// are reinstalled from the agreed tag, which is returned for the
// program's loop fast-forward.
//
// The agreement is a collective (an allgather of each rank's two newest
// valid tags); every rank computes the same choice from the same gathered
// vector, so the fleet restores one consistent cut or none at all.
// Corrupt or torn files (bad CRC) simply drop out of a rank's candidate
// list, falling back to the previous checkpoint fleet-wide.
func (rt *Runtime) RestoreCheckpoint() (tag int64, ok bool) {
	rt.checkNodeLevel("RestoreCheckpoint")
	gs := rt.gs
	c := gs.opt.Checkpoint
	if c == nil || !c.Restore || gs.dist == nil {
		return 0, false
	}
	mine := availableCheckpoints(c.Dir, rt.node, gs.nodes)
	pair := []int64{-1, -1}
	for i := 0; i < len(mine) && i < 2; i++ {
		pair[i] = mine[i]
	}
	all := mp.Allgather(rt.comm, pair)
	chosen := int64(-1)
	for _, cand := range all {
		if cand < 0 || cand <= chosen {
			continue
		}
		common := true
		for n := 0; n < gs.nodes; n++ {
			if all[2*n] != cand && all[2*n+1] != cand {
				common = false
				break
			}
		}
		if common {
			chosen = cand
		}
	}
	if chosen < 0 {
		return 0, false
	}
	if err := loadCheckpoint(gs, rt.node, c.Dir, chosen); err != nil {
		panic(AbortError{Err: fmt.Errorf("core: node %d: restore of tag %d: %w", rt.node, chosen, err)})
	}
	recordRescale(gs, rt.node, c)
	return chosen, true
}

// recordRescale notes in NodeStats.Rescale that this restore landed in
// an elastically rescaled fleet: the checkpoint was written by one host
// process per rank, and the rank now runs inside one of c.HostProcs <
// nodes processes. A rank is "moved" when block-hosting places it on a
// process other than the one matching its own index — its restored
// partitions and node arrays had to be re-homed to a surviving host.
func recordRescale(gs *globalState, node int, c *CheckpointConfig) {
	if c.HostProcs <= 0 || c.HostProcs >= gs.nodes {
		return
	}
	rs := &gs.stats[node].Rescale
	rs.FromProcs = int64(gs.nodes)
	rs.ToProcs = int64(c.HostProcs)
	rs.Restores++
	if partition.NewBlock(gs.nodes, c.HostProcs).Owner(node) == node {
		return
	}
	rs.RanksMoved++
	for _, a := range gs.arrays {
		rs.ElemsMoved += int64(a.localElems(node))
	}
}

func ckptPath(dir string, rank int, tag int64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-r%d-t%d.ppmckpt", rank, tag))
}

func writeCheckpoint(gs *globalState, node int, dir string, tag int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	statsJSON, err := json.Marshal(gs.stats[node])
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 64+len(statsJSON))
	buf = binary.LittleEndian.AppendUint32(buf, ckptMagic)
	buf = binary.LittleEndian.AppendUint16(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(node))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(gs.nodes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tag))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(gs.phaseSeqs[node]))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(statsJSON)))
	buf = append(buf, statsJSON...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(gs.arrays)))
	for _, arr := range gs.arrays {
		buf = arr.encodeCheckpoint(node, buf)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	// Tmp-and-rename so a crash mid-write leaves no torn file under the
	// final name, and the CRC catches anything that slips through.
	tmp := filepath.Join(dir, fmt.Sprintf(".ckpt-r%d-t%d.tmp", node, tag))
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, ckptPath(dir, node, tag)); err != nil {
		return err
	}
	pruneCheckpoints(dir, node)
	return nil
}

// pruneCheckpoints keeps this rank's two newest checkpoint files: the
// newest is the restart target, the previous survives as the fallback if
// a rank dies before completing the newest (the restore agreement then
// falls back to the older common tag).
func pruneCheckpoints(dir string, rank int) {
	tags := listCheckpointTags(dir, rank)
	for _, t := range tags[min(2, len(tags)):] {
		os.Remove(ckptPath(dir, rank, t))
	}
}

// listCheckpointTags returns this rank's checkpoint tags, newest first,
// by filename only (no validation).
func listCheckpointTags(dir string, rank int) []int64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var tags []int64
	for _, ent := range ents {
		var r int
		var t int64
		if n, _ := fmt.Sscanf(ent.Name(), "ckpt-r%d-t%d.ppmckpt", &r, &t); n == 2 && r == rank {
			tags = append(tags, t)
		}
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] > tags[j] })
	return tags
}

// availableCheckpoints returns the tags of this rank's fully valid
// (header + CRC) checkpoint files, newest first.
func availableCheckpoints(dir string, rank, nodes int) []int64 {
	var out []int64
	for _, t := range listCheckpointTags(dir, rank) {
		if _, err := readCheckpoint(dir, rank, nodes, t); err == nil {
			out = append(out, t)
		}
	}
	return out
}

// ckptFile is one parsed and CRC-validated checkpoint.
type ckptFile struct {
	tag      int64
	phaseSeq int64
	stats    NodeStats
	nArrays  int
	blocks   []byte // the commit-grammar block region
}

func readCheckpoint(dir string, rank, nodes int, tag int64) (*ckptFile, error) {
	b, err := os.ReadFile(ckptPath(dir, rank, tag))
	if err != nil {
		return nil, err
	}
	if len(b) < 38 {
		return nil, fmt.Errorf("checkpoint file is %d bytes, too short", len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("checkpoint CRC mismatch (%#x != %#x): torn or corrupt file", got, want)
	}
	if m := binary.LittleEndian.Uint32(body[0:]); m != ckptMagic {
		return nil, fmt.Errorf("bad checkpoint magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != ckptVersion {
		return nil, fmt.Errorf("checkpoint version %d, want %d", v, ckptVersion)
	}
	if r := int(int32(binary.LittleEndian.Uint32(body[6:]))); r != rank {
		return nil, fmt.Errorf("checkpoint is for rank %d, not %d", r, rank)
	}
	if n := int(int32(binary.LittleEndian.Uint32(body[10:]))); n != nodes {
		return nil, fmt.Errorf("checkpoint is from a %d-node fleet, this one has %d", n, nodes)
	}
	f := &ckptFile{
		tag:      int64(binary.LittleEndian.Uint64(body[14:])),
		phaseSeq: int64(binary.LittleEndian.Uint64(body[22:])),
	}
	if f.tag != tag {
		return nil, fmt.Errorf("checkpoint file named tag %d holds tag %d", tag, f.tag)
	}
	sLen := int(binary.LittleEndian.Uint32(body[30:]))
	if 34+sLen+4 > len(body) {
		return nil, fmt.Errorf("checkpoint stats record overruns the file")
	}
	if err := json.Unmarshal(body[34:34+sLen], &f.stats); err != nil {
		return nil, fmt.Errorf("checkpoint stats record: %w", err)
	}
	f.nArrays = int(int32(binary.LittleEndian.Uint32(body[34+sLen:])))
	f.blocks = body[38+sLen:]
	return f, nil
}

func loadCheckpoint(gs *globalState, node int, dir string, tag int64) error {
	f, err := readCheckpoint(dir, node, gs.nodes, tag)
	if err != nil {
		return err
	}
	if f.nArrays > len(gs.arrays) {
		return fmt.Errorf("checkpoint holds %d arrays but the program has allocated %d — call RestoreCheckpoint after all allocations", f.nArrays, len(gs.arrays))
	}
	rd := wire.NewCommitReader(f.blocks)
	for i := 0; i < f.nArrays; i++ {
		id, nRuns, err := rd.Block()
		if err != nil {
			return err
		}
		if id != i {
			return fmt.Errorf("checkpoint block %d is for array id %d — allocation order diverged from the checkpointed run", i, id)
		}
		if err := gs.arrays[id].restoreCheckpoint(node, rd, nRuns); err != nil {
			return err
		}
	}
	if rd.More() {
		return fmt.Errorf("trailing bytes after the last checkpoint block")
	}
	gs.stats[node] = f.stats
	gs.phaseSeqs[node] = f.phaseSeq
	gs.lastCkptPhase = f.phaseSeq
	return nil
}
