package core

import (
	"unsafe"

	"ppm/internal/vtime"
)

// Steady-state phase-plan cache.
//
// PPM programs are overwhelmingly iterative: the same Do/phase shape
// runs hundreds of times per solve. The cache exploits that in two
// layers, both free of any effect on modeled results:
//
//   - Warm doRuns: Do invocations are keyed by (K, body code pointer).
//     The first invocation of a shape builds a doRun and starts its K
//     VP goroutines; between invocations the workers park at a start
//     gate instead of exiting, so warm Dos spawn no goroutines and
//     allocate no coordinator state.
//
//   - Phase plans: at each global-phase commit the read-set merge
//     (sort, dedup, owner split — the metadata-dominated part of the
//     hot path) records its inputs and its result into the doRun's
//     plan for that phase ordinal. The next time the same ordinal
//     commits, the recorded inputs are compared element-wise against
//     what the VPs actually accessed; on a match the merged per-owner
//     traffic deltas are replayed and, in distributed runs, the
//     recorded fetch cover is prefetched at phase open. On any
//     mismatch the plan is invalidated and rebuilt cold.
//
// Validation is exact (run-by-run comparison, set equality for scalar
// indices), never a hash: a collision would silently corrupt modeled
// counters, and the comparison is linear in the data the cold path
// would sort anyway. Correctness therefore never depends on the cache;
// it only short-circuits recomputation of a result it has verified to
// be identical.

// doKey identifies a Do shape: the VP count and the body closure's code
// pointer. Distinct source closures get distinct code pointers, so two
// different Do call sites never share a plan; one call site re-entered
// with different captured state shares the doRun (the body is re-bound
// each invocation) and relies on plan validation to catch any resulting
// access-shape change.
type doKey struct {
	k    int
	body uintptr
}

// funcID returns the code pointer of body. A Go func value is a pointer
// to a closure object whose first word is the code address (the funcval
// layout in runtime/runtime2.go); body is never nil here (Do checks).
func funcID(body func(*VP)) uintptr {
	return **(**uintptr)(unsafe.Pointer(&body))
}

// warmCap bounds how many doRun shapes a Runtime keeps warm. Each warm
// shape holds K parked goroutines and its plan scratch; programs with
// more distinct shapes than this (none of the figure apps come close)
// evict an arbitrary shape, which costs a rebuild, never correctness.
const warmCap = 32

// warmDoRun returns the cached doRun for (k, body), building and
// caching one on first use, and resets it for a new invocation with its
// workers released from the start gate.
func (rt *Runtime) warmDoRun(k int, body func(*VP)) *doRun {
	key := doKey{k: k, body: funcID(body)}
	d := rt.warm[key]
	if d != nil && d.broken {
		delete(rt.warm, key)
		d = nil
	}
	if d == nil {
		if rt.warm == nil {
			rt.warm = make(map[doKey]*doRun)
		}
		for len(rt.warm) >= warmCap {
			for ek, ed := range rt.warm {
				ed.shutdown()
				delete(rt.warm, ek)
				break
			}
		}
		d = newDoRun(rt, k)
		d.persistent = true
		rt.warm[key] = d
		for _, vp := range d.vps {
			go d.vpWorker(vp)
		}
	}
	d.body = body
	d.phases = 0
	d.openKind = phaseInvalid
	d.rankValid = false
	na := len(rt.gs.arrays)
	for _, vp := range d.vps {
		vp.status = stRunning
		// Arrays may have been allocated since this shape last ran;
		// regrow the per-array read tracking so ids stay in range.
		if vp.rdRuns != nil && len(vp.rdRuns) < na {
			vp.rdRuns = append(vp.rdRuns, make([][]intRun, na-len(vp.rdRuns))...)
		}
	}
	for _, vp := range d.vps {
		vp.resume <- true
	}
	return d
}

// WarmSession carries a Runtime's warm doRun cache across RunDist calls
// on one engine, so a long-lived fleet serves repeated jobs with its VP
// workers parked and its phase plans recorded instead of cold-starting
// every submission. It is single-run-at-a-time state (the engine runs
// one job at a time), not a concurrent structure.
//
// Reuse is scoped by key: the caller sets the key describing the next
// job (a canonical spec hash) before RunDist; a session stashed under a
// different key is discarded — its workers retired — and the new run
// starts cold. Keyed reuse is what keeps adoption safe without any
// cross-job validation subtleties: an identical spec re-registers the
// same arrays, with the same ids, lengths, and partitions, in the same
// order, so every recorded plan's ids, ranges, and per-owner deltas
// mean exactly what they meant when recorded (and the usual exact
// validation still guards each phase).
type WarmSession struct {
	key   string // key the next run adopts under (SetKey)
	owner string // key warm was stashed under
	warm  map[doKey]*doRun
}

// NewWarmSession returns an empty session.
func NewWarmSession() *WarmSession { return &WarmSession{} }

// SetKey declares the identity of the next job. Reuse happens only when
// it matches the key the cached state was stashed under.
func (ws *WarmSession) SetKey(key string) { ws.key = key }

// Discard retires any cached workers and empties the session.
func (ws *WarmSession) Discard() {
	for _, d := range ws.warm {
		d.shutdown()
	}
	ws.warm = nil
	ws.owner = ""
}

// adopt hands the session's cached doRuns to rt at run start. State
// recorded under a different key is discarded. Adopted doRuns are
// re-bound to the new run: the Runtime (and through it the new
// globalState), the machine-derived access costs, and every per-array
// or per-arena reference into the previous run's memory are dropped —
// write buffers and read tracking are rebuilt on first use, while the
// recorded phase plans (the expensive part) carry over.
func (ws *WarmSession) adopt(rt *Runtime) {
	if ws.owner != ws.key || ws.key == "" {
		ws.Discard()
		return
	}
	for key, d := range ws.warm {
		if d.broken {
			d.shutdown()
			delete(ws.warm, key)
			continue
		}
		d.rt = rt
		d.sharedReadCost = vtime.Duration(rt.gs.mach.SharedReadCost)
		d.sharedWriteCost = vtime.Duration(rt.gs.mach.SharedWriteCost)
		d.mrRuns, d.mrIdx = nil, nil
		for _, vp := range d.vps {
			vp.bufs = nil
			vp.rdRuns = nil
			vp.rdIdx = nil
			vp.rrElems, vp.rrBytes = nil, nil
		}
	}
	rt.warm = ws.warm
	ws.warm = nil
	ws.owner = ""
}

// stash takes rt's warm cache back into the session at successful run
// end, recording the key it is now valid for.
func (ws *WarmSession) stash(rt *Runtime) {
	ws.warm = rt.warm
	ws.owner = ws.key
	rt.warm = nil
}

// releaseWarm retires every cached doRun's workers. It runs (deferred)
// when a node's program returns or unwinds: all surviving workers are
// parked at the start gate and exit on the false; workers that died on
// an abort path have already retired, and the buffered send is simply
// absorbed by their gate channel.
func (rt *Runtime) releaseWarm() {
	for _, d := range rt.warm {
		d.shutdown()
	}
	rt.warm = nil
}

// shutdown retires this doRun's workers via the start gate.
func (d *doRun) shutdown() {
	for _, vp := range d.vps {
		vp.resume <- false
	}
}

// phasePlan is the recorded read-set merge of one phase ordinal of one
// Do shape.
type phasePlan struct {
	valid bool
	kind  phaseKind
	na    int // len(gs.arrays) at record time

	// Recorded per-(VP, array) read runs, flattened in VP-major order:
	// VP v's runs for array a are segs[offs[v*na+a] : offs[v*na+a+1]].
	segs []intRun
	offs []int32
	// Recorded per-VP scalar read keys (nil when that VP had none).
	idx []map[readKey]struct{}

	// The merge result: per-owner remote-read traffic deltas this
	// phase contributes, replayed into the commit's counters on a hit.
	rrElems []int64
	rrBytes []int64

	// Distributed runs only: the merged remote cover per array id,
	// prefetched at the next phase open so VPs find every range already
	// cached and fetch nothing.
	fcov [][]intRun

	// Replay savings accounting (PlanCacheStats).
	runs        int64
	allocsSaved int64
	bytesSaved  int64
}

// planFor returns the plan slot for the phase being committed (the
// ordinal was incremented at open), or nil when planning is off for
// this doRun. The slot may be invalid (virgin or invalidated): the
// caller records into it after a cold merge.
func (d *doRun) planFor() *phasePlan {
	if !d.persistent {
		return nil
	}
	ord := int(d.phases - 1)
	if ord < 0 {
		return nil
	}
	for len(d.plans) <= ord {
		d.plans = append(d.plans, phasePlan{})
	}
	return &d.plans[ord]
}

// peekPlan returns the plan of the phase about to open (ordinal
// d.phases, pre-increment) if one is recorded and valid, else nil.
func (d *doRun) peekPlan() *phasePlan {
	if !d.persistent || int(d.phases) >= len(d.plans) {
		return nil
	}
	p := &d.plans[int(d.phases)]
	if !p.valid {
		return nil
	}
	return p
}

// beginRecord resets p to record a fresh merge for k VPs over na
// arrays, keeping slice capacity.
func (p *phasePlan) beginRecord(kind phaseKind, k, na, nodes int, dist bool) {
	p.valid = false
	p.kind = kind
	p.na = na
	p.segs = p.segs[:0]
	p.offs = append(p.offs[:0], 0)
	p.idx = p.idx[:0]
	p.rrElems = resetInt64(p.rrElems, nodes)
	p.rrBytes = resetInt64(p.rrBytes, nodes)
	p.runs = 0
	if dist {
		if cap(p.fcov) < na {
			p.fcov = make([][]intRun, na)
		}
		p.fcov = p.fcov[:na]
		for i := range p.fcov {
			p.fcov[i] = p.fcov[i][:0]
		}
	} else {
		p.fcov = nil
	}
}

// matches reports whether the phase the VPs just finished has exactly
// the access shape p recorded: same phase kind, same array count, the
// same run lists per (VP, array) in recorded order (VP bodies are
// deterministic, so a shape-stable program reproduces the order), and
// the same scalar read-key sets (order-independent: map iteration is
// not deterministic, so sets compare by size and membership).
func (d *doRun) planMatches(p *phasePlan, na int) bool {
	if p.kind != d.openKind || p.na != na {
		return false
	}
	base := 0
	for _, vp := range d.vps {
		for id := 0; id < na; id++ {
			var rs []intRun
			if id < len(vp.rdRuns) {
				rs = vp.rdRuns[id]
			}
			seg := p.segs[p.offs[base+id]:p.offs[base+id+1]]
			if len(rs) != len(seg) {
				return false
			}
			for i := range rs {
				if rs[i] != seg[i] {
					return false
				}
			}
		}
		base += na
	}
	for v, vp := range d.vps {
		m := p.idx[v]
		if len(vp.rdIdx) != len(m) {
			return false
		}
		for k := range vp.rdIdx {
			if _, ok := m[k]; !ok {
				return false
			}
		}
	}
	return true
}

// replay applies p's merge result: adds the recorded per-owner traffic
// deltas and clears the VPs' read tracking exactly as the cold harvest
// would have (truncating runs, clearing index sets), without sorting,
// merging, or owner-splitting anything.
func (d *doRun) replay(p *phasePlan, rrElems, rrBytes []int64) {
	for n := range rrElems {
		rrElems[n] += p.rrElems[n]
		rrBytes[n] += p.rrBytes[n]
	}
	for _, vp := range d.vps {
		for id := range vp.rdRuns {
			if len(vp.rdRuns[id]) > 0 {
				vp.rdRuns[id] = vp.rdRuns[id][:0]
			}
		}
		if len(vp.rdIdx) > 0 {
			clear(vp.rdIdx)
		}
	}
	pc := &d.rt.stats().PlanCache
	pc.Hits++
	pc.RunsReplayed += p.runs
	pc.AllocsSaved += p.allocsSaved
	pc.BytesSaved += p.bytesSaved
}

// resetInt64 returns s resized to n and zeroed, reallocating only when
// capacity is insufficient.
func resetInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
