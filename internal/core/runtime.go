package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ppm/internal/cluster"
	"ppm/internal/machine"
	"ppm/internal/mp"
	"ppm/internal/vtime"
	"ppm/internal/wire"
)

// globalState is the host-shared state of one PPM run. Under the
// simulator it is mutated only under the cluster's cooperative turn
// discipline (one node at a time), so it needs no locks and VP goroutines
// never touch it directly. Under the distributed runtime (dist != nil)
// each process holds its own globalState for its single node; the
// per-node slices are indexed by rank but only this rank's entries are
// authoritative, except doK, which is refreshed by allgather at each
// global phase open.
type globalState struct {
	opt   Options
	mach  *machine.Machine
	nodes int
	cores int

	arrays    []registeredArray // creation order, identical on all nodes
	allocSeq  []int             // per node: how many arrays it has allocated
	doK       []int             // current Do's K per node (see VP.GlobalRank)
	phaseSeqs []int64           // per node: phases committed (strict-mode epochs)
	stats     []NodeStats

	strictErr error       // first strict-mode violation
	conflicts conflictLog // every strict-mode conflict, with attribution

	// Distributed mode only (see dist.go). memMu guards every shared
	// array's backing store against the engine's read-server goroutine:
	// write-held whenever this process may mutate partitions (node level,
	// commit apply), released only while a global phase is open. memHeld
	// tracks the write side, which is only ever taken by the run's main
	// goroutine.
	dist    DistEngine
	memMu   sync.RWMutex
	memHeld bool
	// lastCkptPhase is the phaseSeq of this rank's newest checkpoint
	// (written or restored), driving Checkpoint.EveryPhases spacing.
	lastCkptPhase int64
	// Core-side wire counters (see WireStats): fetch waits that rode
	// another VP's in-flight request (atomic — VPs race), and commit
	// stream sizes before/after the codec (commit goroutine only).
	wireCoalesced                atomic.Int64
	wireCommitRaw, wireCommitEnc int64
}

// noteStrict records the first strict-mode violation of the run.
func (gs *globalState) noteStrict(err error) {
	if gs.strictErr == nil {
		gs.strictErr = err
	}
}

// arrayElemBytes is the commit codec's array-id → element-size lookup.
// Ids outside the registered set report 0 (unknown), which the codec
// rejects as protocol corruption.
func (gs *globalState) arrayElemBytes(id int) int {
	if id < 0 || id >= len(gs.arrays) {
		return 0
	}
	return gs.arrays[id].elemBytes()
}

// registeredArray is the commit-side interface every shared array
// implements.
type registeredArray interface {
	// applyIncoming applies all records staged for node (in source
	// order), clears the stage, and accumulates per-source incoming
	// traffic into the caller's reusable tallies.
	applyIncoming(node int, strict bool, phaseSeq int64, inElems, inBytes []int64) error
	// elemBytes returns the modeled element size.
	elemBytes() int
	// ownerSpan returns the node owning element i and the end of that
	// node's partition (for splitting interval runs by owner at the
	// read-set merge); node arrays are always local.
	ownerSpan(i int) (owner, end int)
	// localElems returns how many elements node holds authoritatively
	// (a global array's partition size, a node array's full length);
	// rescaled restores use it to account elements moved between hosts.
	localElems(node int) int
	// label returns a diagnostic name.
	label() string

	// Distributed-mode hooks (see dist.go). Node arrays never cross the
	// wire, so theirs are stubs.
	resetDistCache()
	encodeRange(node, lo, hi int) ([]byte, error)
	installRange(lo, hi int, data []byte) error
	// prefetchCover fetches the recorded remote cover of a replayed
	// phase plan before VPs run, so their reads hit the local cache.
	prefetchCover(self int, runs []intRun)
	encodeStagedWire(self, dst int, buf []byte) []byte
	applyWireRuns(node int, strict bool, phaseSeq int64, rd *wire.CommitReader, nRuns int) (elems int, strictErr, err error)

	// Checkpoint hooks (see checkpoint.go): this node's authoritative
	// image as one wire-grammar commit block, and its reinstallation.
	encodeCheckpoint(node int, buf []byte) []byte
	restoreCheckpoint(node int, rd *wire.CommitReader, nRuns int) error
}

// Runtime is one node's handle to the PPM run: the analog of the paper's
// per-node runtime library instance. Methods on Runtime are node-level
// operations (outside virtual processors); VP-level operations live on VP
// and on the shared-array types.
type Runtime struct {
	gs   *globalState
	proc *cluster.Proc
	comm *mp.Comm
	node int

	inDo bool
	// warm caches doRuns by Do shape so repeated Dos reuse their VP
	// workers and recorded phase plans (see plan.go); nil when the plan
	// cache is off. Released when the node's program finishes.
	warm map[doKey]*doRun
	// serialMu orders Serial sections in distributed runs, where the
	// simulator's cooperative turn discipline is unavailable.
	serialMu sync.Mutex
}

// Runner is the signature shared by Run and the distributed launcher's
// per-process runner. Application packages written against a Runner
// execute identically under the simulator and under real processes —
// which is how distributed bit-identity is obtained by construction.
type Runner func(opt Options, prog func(rt *Runtime)) (*Report, error)

// Run executes prog as a PPM SPMD program on every node of a simulated
// cluster and returns the run report.
func Run(opt Options, prog func(rt *Runtime)) (*Report, error) {
	o, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	gs := &globalState{
		opt:       o,
		mach:      o.Machine,
		nodes:     o.Nodes,
		cores:     o.CoresPerNode,
		allocSeq:  make([]int, o.Nodes),
		doK:       make([]int, o.Nodes),
		phaseSeqs: make([]int64, o.Nodes),
		stats:     make([]NodeStats, o.Nodes),
	}
	crep, err := cluster.Run(cluster.Config{
		Procs:        o.Nodes,
		ProcsPerNode: 1,
		Machine:      o.Machine,
		Trace:        o.Trace,
		Observer:     o.Observer,
		Parallel:     o.Parallel,
	}, func(p *cluster.Proc) {
		rt := &Runtime{gs: gs, proc: p, comm: mp.New(p), node: p.Rank()}
		defer rt.releaseWarm()
		prog(rt)
	})
	rep := &Report{
		Cluster:   crep,
		PerNode:   gs.stats,
		Conflicts: gs.conflicts.list(),
	}
	for _, s := range gs.stats {
		rep.Totals.add(s)
	}
	if err != nil {
		return rep, err
	}
	if gs.strictErr != nil {
		return rep, gs.strictErr
	}
	return rep, nil
}

// NodeCount returns the number of nodes (the paper's PPM_node_count).
func (rt *Runtime) NodeCount() int { return rt.gs.nodes }

// NodeID returns this node's id in [0, NodeCount) (PPM_node_id).
func (rt *Runtime) NodeID() int { return rt.node }

// CoresPerNode returns the number of cores per node (PPM_cores_per_node).
func (rt *Runtime) CoresPerNode() int { return rt.gs.cores }

// Machine returns the cost model in effect.
func (rt *Runtime) Machine() *machine.Machine { return rt.gs.mach }

// Clock returns this node's current virtual time. Distributed runs do
// not model time, so there it is always zero.
func (rt *Runtime) Clock() vtime.Time {
	if rt.proc == nil {
		return 0
	}
	return rt.proc.Clock()
}

// Charge advances this node's clock by d of modeled node-level
// computation (work done outside virtual processors). A no-op in
// distributed runs, where real time passes instead.
func (rt *Runtime) Charge(d vtime.Duration) {
	if rt.proc != nil {
		rt.proc.Charge(d)
	}
}

// ChargeFlops charges n flops of node-level computation on one core.
func (rt *Runtime) ChargeFlops(n int64) {
	if rt.proc != nil {
		rt.proc.ChargeFlops(n)
	}
}

// ChargeMem charges streaming n bytes of node-level data movement.
func (rt *Runtime) ChargeMem(n int64) {
	if rt.proc != nil {
		rt.proc.ChargeMem(n)
	}
}

// Barrier synchronizes all nodes (node-level; rarely needed because
// phases synchronize implicitly, but exposed for setup code).
func (rt *Runtime) Barrier() {
	if rt.proc == nil {
		rt.comm.Barrier()
		return
	}
	rt.proc.Barrier()
}

// Serial runs f in this node's serial section: at most one Serial
// callback executes at a time on the node, ordered with node-level
// code. It is the sanctioned way for VP code to update node state that
// is not a shared array (counters, work queues); ppmvet's serialescape
// rule reports such updates made without it. Under the simulator it
// acquires the cooperative turn; in distributed runs it holds a
// node-local mutex.
func (rt *Runtime) Serial(f func()) {
	if rt.proc != nil {
		rt.proc.Serial(f)
		return
	}
	rt.serialMu.Lock()
	defer rt.serialMu.Unlock()
	f()
}

// stats returns this node's mutable statistics record.
func (rt *Runtime) stats() *NodeStats { return &rt.gs.stats[rt.node] }

// ReduceOp is a binary combining operation for the reduction utilities.
type ReduceOp int

// Reduction operations.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) applyF64(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	default:
		panic(fmt.Sprintf("core: invalid ReduceOp %d", int(op)))
	}
}

func (op ReduceOp) applyInt(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	default:
		panic(fmt.Sprintf("core: invalid ReduceOp %d", int(op)))
	}
}

// AllReduce combines one float64 contribution per node with op and
// returns the result on every node. This is one of the paper's utility
// functions; it is collective over nodes and must be called outside Do.
func (rt *Runtime) AllReduce(v float64, op ReduceOp) float64 {
	rt.checkNodeLevel("AllReduce")
	out := mp.Allreduce(rt.comm, []float64{v}, op.applyF64)
	return out[0]
}

// AllReduceInt is AllReduce for int64 contributions.
func (rt *Runtime) AllReduceInt(v int64, op ReduceOp) int64 {
	rt.checkNodeLevel("AllReduceInt")
	out := mp.Allreduce(rt.comm, []int64{v}, op.applyInt)
	return out[0]
}

// PrefixSumInt returns the exclusive prefix sum over nodes of v (node 0
// gets 0): the paper's parallel-prefix utility at node granularity.
func (rt *Runtime) PrefixSumInt(v int) int {
	rt.checkNodeLevel("PrefixSumInt")
	return mp.ExscanSumInt(rt.comm, v)
}

// Broadcast distributes root's value to all nodes.
func (rt *Runtime) Broadcast(root int, v float64) float64 {
	rt.checkNodeLevel("Broadcast")
	out := mp.Bcast(rt.comm, root, []float64{v})
	return out[0]
}

func (rt *Runtime) checkNodeLevel(what string) {
	if rt.inDo {
		panic(fmt.Sprintf("core: %s is a node-level collective and must not be called from inside Do", what))
	}
}

// ChunkRange splits n items into parts blocks and returns the half-open
// range of block i: the standard owner-computes decomposition helper.
func ChunkRange(n, parts, i int) (lo, hi int) {
	if parts <= 0 || i < 0 || i >= parts {
		panic(fmt.Sprintf("core: ChunkRange(%d, %d, %d) out of range", n, parts, i))
	}
	base := n / parts
	rem := n % parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
