package core

import (
	"testing"

	"ppm/internal/rng"
)

// The interval-cover set (coverAdd / coverSub / coverMissing) is the
// heart of the distributed read cache and of the fleet-wide fetch
// single-flight, so it is checked two ways: a seeded random operation
// sequence against a naive bitmap oracle, and the adjacency edge cases
// spelled out by hand.

const coverUniverse = 64

// coverBits materializes a cover as a bitmap for oracle comparison.
func coverBits(t *testing.T, cov []intRun) [coverUniverse]bool {
	t.Helper()
	var b [coverUniverse]bool
	prevHi := -1
	for i, r := range cov {
		if r.lo >= r.hi {
			t.Fatalf("run %d is empty: [%d,%d)", i, r.lo, r.hi)
		}
		// Sorted, disjoint, and never merely touching: coverAdd merges
		// adjacent runs, so a canonical cover has gaps between runs.
		if r.lo <= prevHi {
			t.Fatalf("run %d [%d,%d) is not strictly after [..,%d)", i, r.lo, r.hi, prevHi)
		}
		prevHi = r.hi
		for j := r.lo; j < r.hi && j < coverUniverse; j++ {
			b[j] = true
		}
	}
	return b
}

func TestCoverPropertyVsBitmapOracle(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		var cov []intRun
		var oracle [coverUniverse]bool
		for step := 0; step < 200; step++ {
			lo := r.Intn(coverUniverse)
			hi := lo + r.Intn(coverUniverse-lo+1)
			switch r.Intn(3) {
			case 0:
				cov = coverAdd(cov, lo, hi)
				for j := lo; j < hi; j++ {
					oracle[j] = true
				}
			case 1:
				cov = coverSub(cov, lo, hi)
				for j := lo; j < hi; j++ {
					oracle[j] = false
				}
			case 2:
				missing := coverMissing(cov, lo, hi)
				var got [coverUniverse]bool
				mPrevHi := -1
				for i, m := range missing {
					if m.lo >= m.hi || m.lo < lo || m.hi > hi {
						t.Fatalf("trial %d step %d: missing run %d [%d,%d) outside query [%d,%d)",
							trial, step, i, m.lo, m.hi, lo, hi)
					}
					if m.lo <= mPrevHi {
						t.Fatalf("trial %d step %d: missing runs unsorted or touching", trial, step)
					}
					mPrevHi = m.hi
					for j := m.lo; j < m.hi; j++ {
						got[j] = true
					}
				}
				for j := lo; j < hi; j++ {
					if got[j] == oracle[j] {
						t.Fatalf("trial %d step %d: index %d missing=%v but covered=%v (cov %v, query [%d,%d))",
							trial, step, j, got[j], oracle[j], cov, lo, hi)
					}
				}
				continue
			}
			if got := coverBits(t, cov); got != oracle {
				t.Fatalf("trial %d step %d: cover %v diverged from oracle", trial, step, cov)
			}
		}
	}
}

func TestCoverAdjacentRunMerges(t *testing.T) {
	// Filling the gap between two runs collapses all three into one.
	cov := coverAdd(coverAdd(nil, 0, 2), 4, 6)
	cov = coverAdd(cov, 2, 4)
	if len(cov) != 1 || cov[0] != (intRun{lo: 0, hi: 6}) {
		t.Fatalf("bridge add left %v, want one [0,6) run", cov)
	}
	// Touching (not overlapping) on either side merges too.
	if got := coverAdd([]intRun{{lo: 0, hi: 2}}, 2, 4); len(got) != 1 || got[0] != (intRun{lo: 0, hi: 4}) {
		t.Fatalf("right-touching add left %v", got)
	}
	if got := coverAdd([]intRun{{lo: 2, hi: 4}}, 0, 2); len(got) != 1 || got[0] != (intRun{lo: 0, hi: 4}) {
		t.Fatalf("left-touching add left %v", got)
	}
	// An empty add is a no-op.
	if got := coverAdd([]intRun{{lo: 1, hi: 3}}, 2, 2); len(got) != 1 || got[0] != (intRun{lo: 1, hi: 3}) {
		t.Fatalf("empty add changed the cover: %v", got)
	}
	// Subtracting the middle splits; subtracting a touching range is a
	// no-op (half-open intervals share no elements).
	if got := coverSub([]intRun{{lo: 0, hi: 6}}, 2, 4); len(got) != 2 ||
		got[0] != (intRun{lo: 0, hi: 2}) || got[1] != (intRun{lo: 4, hi: 6}) {
		t.Fatalf("mid-sub left %v, want [0,2) [4,6)", got)
	}
	if got := coverSub([]intRun{{lo: 0, hi: 2}}, 2, 4); len(got) != 1 || got[0] != (intRun{lo: 0, hi: 2}) {
		t.Fatalf("touching sub changed the cover: %v", got)
	}
	// Missing over an empty cover is the whole query; over a full cover
	// it is nothing.
	if got := coverMissing(nil, 3, 9); len(got) != 1 || got[0] != (intRun{lo: 3, hi: 9}) {
		t.Fatalf("missing over empty cover = %v", got)
	}
	if got := coverMissing([]intRun{{lo: 0, hi: 10}}, 3, 9); len(got) != 0 {
		t.Fatalf("missing over full cover = %v", got)
	}
}
