package core

import (
	"fmt"

	"ppm/internal/mp"
	"ppm/internal/partition"
)

// Elem constrains shared-array element types (fixed-size numerics, so
// modeled byte counts are honest). It is the same constraint the
// messaging layer uses.
type Elem = mp.Elem

// writeRec is one buffered shared-array update.
type writeRec[T Elem] struct {
	idx    int
	val    T
	add    bool  // combine by addition instead of overwrite
	writer int64 // (node<<32)|vpRank, for strict-mode diagnostics
}

// allocArray registers a shared array collectively: every node calls the
// allocator in the same program order; the first caller constructs, the
// rest attach. make constructs the concrete array.
func allocArray[A registeredArray](rt *Runtime, name string, mk func(id int) A) A {
	gs := rt.gs
	if rt.inDo {
		panic(fmt.Sprintf("core: alloc of %q must happen at node level, not inside Do", name))
	}
	if gs.allocSeq == nil {
		gs.allocSeq = make([]int, gs.nodes)
	}
	seq := gs.allocSeq[rt.node]
	gs.allocSeq[rt.node]++
	if seq == len(gs.arrays) {
		a := mk(seq)
		gs.arrays = append(gs.arrays, a)
		return a
	}
	if seq > len(gs.arrays) {
		panic(fmt.Sprintf("core: node %d allocation sequence diverged at %q", rt.node, name))
	}
	a, ok := gs.arrays[seq].(A)
	if !ok || gs.arrays[seq].label() != name {
		panic(fmt.Sprintf("core: node %d allocated %q where other nodes allocated %q — SPMD allocation order diverged",
			rt.node, name, gs.arrays[seq].label()))
	}
	return a
}

// Global is a globally shared array: one logical array of n elements,
// block-distributed across the cluster's nodes through virtual shared
// memory (the paper's PPM_global_shared). Virtual processors access it
// with Read/Write/Add inside phases; node-level code uses Local/At for
// setup and result extraction.
type Global[T Elem] struct {
	gs   *globalState
	id   int
	name string
	n    int
	es   int
	part partition.Block
	base []T
	// stage[dst][src] holds records written by src's VPs this phase,
	// destined for dst's partition; dst applies them after the phase's
	// all-staged barrier.
	stage [][][]writeRec[T]
	// strict-mode conflict tracking, per destination node.
	conflictSeq []int64
	conflict    []map[int]int64
}

// AllocGlobal allocates a globally shared array of n elements, block-
// distributed over the nodes. Collective: every node must call it in the
// same program order with the same name and size.
func AllocGlobal[T Elem](rt *Runtime, name string, n int) *Global[T] {
	if n < 0 {
		panic(fmt.Sprintf("core: AllocGlobal(%q, %d): negative size", name, n))
	}
	g := allocArray(rt, name, func(id int) *Global[T] {
		nodes := rt.gs.nodes
		g := &Global[T]{
			gs:   rt.gs,
			id:   id,
			name: name,
			n:    n,
			es:   mp.SizeOf[T](),
			part: partition.NewBlock(n, nodes),
			base: make([]T, n),
		}
		g.stage = make([][][]writeRec[T], nodes)
		for d := range g.stage {
			g.stage[d] = make([][]writeRec[T], nodes)
		}
		g.conflictSeq = make([]int64, nodes)
		g.conflict = make([]map[int]int64, nodes)
		return g
	})
	// Zeroing the local partition costs streaming time.
	rt.ChargeMem(int64(g.part.Size(rt.node) * g.es))
	return g
}

// Len returns the global length.
func (g *Global[T]) Len() int { return g.n }

// Name returns the allocation name.
func (g *Global[T]) Name() string { return g.name }

// Owner returns the node owning element i.
func (g *Global[T]) Owner(i int) int { return g.part.Owner(i) }

// OwnerRange returns the half-open index range owned by the calling node.
func (g *Global[T]) OwnerRange(rt *Runtime) (lo, hi int) { return g.part.Range(rt.node) }

// Local returns the calling node's partition as a mutable slice. It is a
// node-level escape hatch for initialization and result extraction (the
// paper's casting utilities between node space and global space); it must
// not be used while any Do is active.
func (g *Global[T]) Local(rt *Runtime) []T {
	if rt.inDo {
		panic(fmt.Sprintf("core: Global(%q).Local while Do is active", g.name))
	}
	lo, hi := g.part.Range(rt.node)
	return g.base[lo:hi:hi]
}

// At returns element i at node level (setup/extraction only). Reading a
// remote element outside any phase has no defined synchronization; it is
// allowed for result extraction after phases have committed.
func (g *Global[T]) At(rt *Runtime, i int) T {
	if rt.inDo {
		panic(fmt.Sprintf("core: Global(%q).At while Do is active", g.name))
	}
	return g.base[i]
}

// Read returns element i as observed at the beginning of the current
// phase. Must be called inside a phase. Remote reads require a global
// phase and are accounted for bundling.
func (g *Global[T]) Read(vp *VP, i int) T {
	vp.accessCheck(g.name, "Read")
	vp.reads++
	vp.charge += vp.d.sharedReadCost
	owner := g.part.Owner(i)
	if owner != vp.d.node {
		if vp.phaseKind != phaseGlobal {
			panic(fmt.Sprintf("core: Global(%q).Read(%d): remote access (owner %d) inside a node phase on node %d",
				g.name, i, owner, vp.d.node))
		}
		vp.noteRemoteRead(g.id, i, owner, g.es)
	}
	return g.base[i]
}

// Write sets element i to v, taking effect after the end of the current
// phase (last writer in (node, VP, program) order wins when several VPs
// write the same element; use StrictWrites to flag that).
func (g *Global[T]) Write(vp *VP, i int, v T) { g.put(vp, i, v, false) }

// Add accumulates v into element i at the end of the current phase.
// Unlike Write, concurrent Adds to one element combine (addition is the
// paper's utility-reduction case for shared updates).
func (g *Global[T]) Add(vp *VP, i int, v T) { g.put(vp, i, v, true) }

func (g *Global[T]) put(vp *VP, i int, v T, add bool) {
	vp.accessCheck(g.name, "Write")
	if i < 0 || i >= g.n {
		panic(fmt.Sprintf("core: Global(%q).Write(%d): index out of range [0,%d)", g.name, i, g.n))
	}
	vp.writes++
	vp.charge += vp.d.sharedWriteCost
	owner := g.part.Owner(i)
	if owner != vp.d.node && vp.phaseKind != phaseGlobal {
		panic(fmt.Sprintf("core: Global(%q).Write(%d): remote access (owner %d) inside a node phase on node %d",
			g.name, i, owner, vp.d.node))
	}
	buf := bufFor[T](vp, g)
	buf.recs = append(buf.recs, writeRec[T]{idx: i, val: v, add: add, writer: vp.writerID()})
}

// ReadBlock copies elements [lo, hi) into dst under phase semantics —
// the array-section form of Read for contiguous access.
func (g *Global[T]) ReadBlock(vp *VP, lo, hi int, dst []T) {
	if lo < 0 || hi > g.n || lo > hi {
		panic(fmt.Sprintf("core: Global(%q).ReadBlock[%d:%d] out of [0,%d)", g.name, lo, hi, g.n))
	}
	if len(dst) < hi-lo {
		panic(fmt.Sprintf("core: Global(%q).ReadBlock: dst holds %d of %d elements", g.name, len(dst), hi-lo))
	}
	for i := lo; i < hi; i++ {
		dst[i-lo] = g.Read(vp, i)
	}
}

// WriteBlock writes src over elements [lo, hi), committing at the end of
// the current phase — the array-section form of Write.
func (g *Global[T]) WriteBlock(vp *VP, lo int, src []T) {
	if lo < 0 || lo+len(src) > g.n {
		panic(fmt.Sprintf("core: Global(%q).WriteBlock[%d:%d] out of [0,%d)", g.name, lo, lo+len(src), g.n))
	}
	for i, v := range src {
		g.Write(vp, lo+i, v)
	}
}

// label implements registeredArray.
func (g *Global[T]) label() string { return g.name }

// elemBytes implements registeredArray.
func (g *Global[T]) elemBytes() int { return g.es }

// applyIncoming applies all staged records destined for node, in
// (source node, VP, program) order, and reports per-source traffic.
func (g *Global[T]) applyIncoming(node int, strict bool, phaseSeq int64) (perSrcElems []int, perSrcBytes []int64, err error) {
	nodes := g.gs.nodes
	perSrcElems = make([]int, nodes)
	perSrcBytes = make([]int64, nodes)
	for src := 0; src < nodes; src++ {
		recs := g.stage[node][src]
		if len(recs) == 0 {
			continue
		}
		g.stage[node][src] = nil
		perSrcElems[src] = len(recs)
		perSrcBytes[src] = int64(len(recs) * (g.es + 8))
		for _, r := range recs {
			if strict && !r.add {
				if e := g.checkConflict(node, phaseSeq, r); e != nil && err == nil {
					err = e
				}
			}
			if r.add {
				g.base[r.idx] += r.val
			} else {
				g.base[r.idx] = r.val
			}
		}
	}
	return perSrcElems, perSrcBytes, err
}

// applyDirect applies one record immediately (node-phase commit path).
func (g *Global[T]) applyDirect(node int, strict bool, phaseSeq int64, r writeRec[T]) error {
	var err error
	if strict && !r.add {
		err = g.checkConflict(node, phaseSeq, r)
	}
	if r.add {
		g.base[r.idx] += r.val
	} else {
		g.base[r.idx] = r.val
	}
	return err
}

func (g *Global[T]) checkConflict(node int, phaseSeq int64, r writeRec[T]) error {
	if g.conflictSeq[node] != phaseSeq || g.conflict[node] == nil {
		g.conflict[node] = make(map[int]int64)
		g.conflictSeq[node] = phaseSeq
	}
	if prev, ok := g.conflict[node][r.idx]; ok && prev != r.writer {
		return fmt.Errorf("core: conflicting writes to %s[%d] in one phase: VP %d:%d and VP %d:%d",
			g.name, r.idx, prev>>32, prev&0xffffffff, r.writer>>32, r.writer&0xffffffff)
	}
	g.conflict[node][r.idx] = r.writer
	return nil
}

// Node is a node-shared array: as in the paper's PPM_node_shared, the
// declaration yields one independent instance per node, living in that
// node's physical shared memory. VPs of a node access their node's
// instance with phase semantics; there is no cross-node traffic.
type Node[T Elem] struct {
	gs   *globalState
	id   int
	name string
	n    int
	es   int
	base [][]T
	// strict-mode conflict tracking per node.
	conflictSeq []int64
	conflict    []map[int]int64
}

// AllocNode allocates a node-shared array of n elements on every node.
// Collective in the same sense as AllocGlobal.
func AllocNode[T Elem](rt *Runtime, name string, n int) *Node[T] {
	if n < 0 {
		panic(fmt.Sprintf("core: AllocNode(%q, %d): negative size", name, n))
	}
	a := allocArray(rt, name, func(id int) *Node[T] {
		nodes := rt.gs.nodes
		a := &Node[T]{
			gs:          rt.gs,
			id:          id,
			name:        name,
			n:           n,
			es:          mp.SizeOf[T](),
			base:        make([][]T, nodes),
			conflictSeq: make([]int64, nodes),
			conflict:    make([]map[int]int64, nodes),
		}
		for i := range a.base {
			a.base[i] = make([]T, n)
		}
		return a
	})
	rt.ChargeMem(int64(n * a.es))
	return a
}

// Len returns the per-node length.
func (a *Node[T]) Len() int { return a.n }

// Name returns the allocation name.
func (a *Node[T]) Name() string { return a.name }

// Local returns the calling node's instance as a mutable slice (node-
// level setup/extraction; not while Do is active).
func (a *Node[T]) Local(rt *Runtime) []T {
	if rt.inDo {
		panic(fmt.Sprintf("core: Node(%q).Local while Do is active", a.name))
	}
	return a.base[rt.node]
}

// Read returns element i of the calling node's instance as of the
// beginning of the current phase.
func (a *Node[T]) Read(vp *VP, i int) T {
	vp.accessCheck(a.name, "Read")
	vp.reads++
	vp.charge += vp.d.sharedReadCost
	return a.base[vp.d.node][i]
}

// Write sets element i of the node's instance at the end of the phase.
func (a *Node[T]) Write(vp *VP, i int, v T) { a.put(vp, i, v, false) }

// Add accumulates v into element i at the end of the phase.
func (a *Node[T]) Add(vp *VP, i int, v T) { a.put(vp, i, v, true) }

func (a *Node[T]) put(vp *VP, i int, v T, add bool) {
	vp.accessCheck(a.name, "Write")
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("core: Node(%q).Write(%d): index out of range [0,%d)", a.name, i, a.n))
	}
	vp.writes++
	vp.charge += vp.d.sharedWriteCost
	buf := nodeBufFor[T](vp, a)
	buf.recs = append(buf.recs, writeRec[T]{idx: i, val: v, add: add, writer: vp.writerID()})
}

// label implements registeredArray.
func (a *Node[T]) label() string { return a.name }

// elemBytes implements registeredArray.
func (a *Node[T]) elemBytes() int { return a.es }

// applyIncoming implements registeredArray; node arrays stage nothing, so
// it is a no-op (their records apply at flush).
func (a *Node[T]) applyIncoming(node int, strict bool, phaseSeq int64) ([]int, []int64, error) {
	return nil, nil, nil
}

func (a *Node[T]) applyDirect(node int, strict bool, phaseSeq int64, r writeRec[T]) error {
	var err error
	if strict && !r.add {
		if a.conflictSeq[node] != phaseSeq || a.conflict[node] == nil {
			a.conflict[node] = make(map[int]int64)
			a.conflictSeq[node] = phaseSeq
		}
		if prev, ok := a.conflict[node][r.idx]; ok && prev != r.writer {
			err = fmt.Errorf("core: conflicting writes to %s[%d] in one phase: VP %d:%d and VP %d:%d",
				a.name, r.idx, prev>>32, prev&0xffffffff, r.writer>>32, r.writer&0xffffffff)
		} else {
			a.conflict[node][r.idx] = r.writer
		}
	}
	if r.add {
		a.base[node][r.idx] += r.val
	} else {
		a.base[node][r.idx] = r.val
	}
	return err
}
