package core

import (
	"fmt"
	"sync"

	"ppm/internal/mp"
	"ppm/internal/partition"
)

// Elem constrains shared-array element types (fixed-size numerics, so
// modeled byte counts are honest). It is the same constraint the
// messaging layer uses.
type Elem = mp.Elem

// writeRec is one buffered run of shared-array updates: n consecutive
// elements starting at lo. A scalar write is the n == 1, off < 0 case
// with its value inline; block writes (and scalar writes coalesced into
// them) keep their values in the owning buffer's arena at off. Run-length
// records are what lets the commit path move a whole block with one copy
// instead of one record per element.
type writeRec[T Elem] struct {
	lo     int
	n      int
	off    int // arena offset of the run's values; -1 for inline val
	val    T   // inline value when off < 0 (then n == 1)
	add    bool
	writer int64 // (node<<32)|vpRank, for strict-mode diagnostics
}

// stageRec is one run staged for a destination node at a global-phase
// commit: the same shape as writeRec but with the values resolved to a
// concrete slice (runs may alias the source buffer's arena — safe,
// because every node applies its incoming stage before the commit's
// final barrier lets any VP buffer new writes).
type stageRec[T Elem] struct {
	lo     int
	n      int
	vals   []T // nil for an inline scalar
	val    T
	add    bool
	writer int64
}

// elemUpdaters is the strict-mode record for one element within a
// phase: the VP that last plain-wrote it and the first VP that added to
// it (-1 when no update of that kind happened yet). One of each suffices
// to detect every conflict class; full attribution for elements that do
// conflict accumulates in the run's conflictLog.
type elemUpdaters struct {
	writeBy int64
	addBy   int64
}

// conflictTracker is the strict-mode (StrictWrites) bookkeeping for one
// shared array: per destination node, the updaters of every element
// touched in the current phase. It is allocated lazily at the first
// strict commit, so runs without StrictWrites pay nothing for it.
type conflictTracker struct {
	seq []int64
	m   []map[int]elemUpdaters
}

func newConflictTracker(nodes int) *conflictTracker {
	return &conflictTracker{seq: make([]int64, nodes), m: make([]map[int]elemUpdaters, nodes)}
}

// check validates one resolved run against the phase's previous
// updaters, element by element (run-length records keep strict mode's
// per-element semantics). Conflicts are plain writes to one element by
// different VPs, or a plain write and an add to one element by
// different VPs; adds combine with adds freely. Every conflict is
// recorded in log with full writer attribution; the returned error is
// the run's first (the abort signal).
func (ct *conflictTracker) check(log *conflictLog, name string, node int, phaseSeq int64, lo, n int, writer int64, add bool) error {
	if ct.seq[node] != phaseSeq || ct.m[node] == nil {
		ct.m[node] = make(map[int]elemUpdaters)
		ct.seq[node] = phaseSeq
	}
	mm := ct.m[node]
	var firstErr error
	for i := lo; i < lo+n; i++ {
		rec, ok := mm[i]
		if !ok {
			rec = elemUpdaters{writeBy: -1, addBy: -1}
		}
		prev := int64(-1)
		prevAdd := false
		if add {
			if rec.writeBy >= 0 && rec.writeBy != writer {
				prev = rec.writeBy
			}
			if rec.addBy < 0 {
				rec.addBy = writer
			}
		} else {
			switch {
			case rec.writeBy >= 0 && rec.writeBy != writer:
				prev = rec.writeBy
			case rec.addBy >= 0 && rec.addBy != writer:
				prev, prevAdd = rec.addBy, true
			}
			rec.writeBy = writer
		}
		mm[i] = rec
		if prev < 0 {
			continue
		}
		c := log.note(name, node, i, writerRef(prev, prevAdd), writerRef(writer, add))
		if firstErr == nil {
			firstErr = fmt.Errorf("core: conflicting writes to %s[%d] in one phase: %v and %v",
				name, i, c.Writers[0], writerRef(writer, add))
		}
	}
	return firstErr
}

// allocArray registers a shared array collectively: every node calls the
// allocator in the same program order; the first caller constructs, the
// rest attach. make constructs the concrete array.
func allocArray[A registeredArray](rt *Runtime, name string, mk func(id int) A) A {
	gs := rt.gs
	if rt.inDo {
		panic(fmt.Sprintf("core: alloc of %q must happen at node level, not inside Do", name))
	}
	// The registry (gs.arrays) is cross-node host state mutated outside
	// any phase window, so registration holds the cluster turn: under
	// the parallel scheduler concurrent allocating nodes serialize in
	// sequential order ("first caller constructs" stays deterministic);
	// under the sequential scheduler Serial is free.
	// Distributed mode: each process registers for itself (SPMD program
	// order keeps ids aligned across processes), no turn to take.
	var out A
	register := func(f func()) {
		if rt.proc == nil {
			f()
			return
		}
		rt.proc.Serial(f)
	}
	register(func() {
		if gs.allocSeq == nil {
			gs.allocSeq = make([]int, gs.nodes)
		}
		seq := gs.allocSeq[rt.node]
		gs.allocSeq[rt.node]++
		if seq == len(gs.arrays) {
			out = mk(seq)
			gs.arrays = append(gs.arrays, out)
			return
		}
		if seq > len(gs.arrays) {
			panic(fmt.Sprintf("core: node %d allocation sequence diverged at %q", rt.node, name))
		}
		a, ok := gs.arrays[seq].(A)
		if !ok || gs.arrays[seq].label() != name {
			panic(fmt.Sprintf("core: node %d allocated %q where other nodes allocated %q — SPMD allocation order diverged",
				rt.node, name, gs.arrays[seq].label()))
		}
		out = a
	})
	return out
}

// Global is a globally shared array: one logical array of n elements,
// block-distributed across the cluster's nodes through virtual shared
// memory (the paper's PPM_global_shared). Virtual processors access it
// with Read/Write/Add (or the block forms) inside phases; node-level
// code uses Local/At for setup and result extraction.
type Global[T Elem] struct {
	gs   *globalState
	id   int
	name string
	n    int
	es   int
	part partition.Block
	base []T
	// stage[dst][src] holds runs written by src's VPs this phase,
	// destined for dst's partition; dst applies them after the phase's
	// all-staged barrier.
	stage [][][]stageRec[T]
	// strict-mode conflict tracking, allocated at first strict commit.
	ct *conflictTracker
	// bufPool recycles per-VP write buffers across Do invocations.
	bufPool sync.Pool
	// Distributed mode: dcov (under dmu) is the set of index ranges of
	// g.base that are locally valid this phase — the local partition plus
	// every remotely fetched range. dpend is the set currently being
	// fetched by some VP, and dcnd (lazily built) fans fetched ranges out
	// to the VPs waiting on them. See distFetch in dist.go.
	dmu   sync.Mutex
	dcov  []intRun
	dpend []intRun
	dcnd  *sync.Cond
	// wscratch is the commit-apply element scratch (see applyWireRuns);
	// single-threaded use under the memory mutex.
	wscratch []T
}

// AllocGlobal allocates a globally shared array of n elements, block-
// distributed over the nodes. Collective: every node must call it in the
// same program order with the same name and size.
func AllocGlobal[T Elem](rt *Runtime, name string, n int) *Global[T] {
	if n < 0 {
		panic(fmt.Sprintf("core: AllocGlobal(%q, %d): negative size", name, n))
	}
	g := allocArray(rt, name, func(id int) *Global[T] {
		nodes := rt.gs.nodes
		g := &Global[T]{
			gs:   rt.gs,
			id:   id,
			name: name,
			n:    n,
			es:   mp.SizeOf[T](),
			part: partition.NewBlock(n, nodes),
			base: make([]T, n),
		}
		g.stage = make([][][]stageRec[T], nodes)
		for d := range g.stage {
			g.stage[d] = make([][]stageRec[T], nodes)
		}
		return g
	})
	// Zeroing the local partition costs streaming time.
	rt.ChargeMem(int64(g.part.Size(rt.node) * g.es))
	return g
}

// Len returns the global length.
func (g *Global[T]) Len() int { return g.n }

// Name returns the allocation name.
func (g *Global[T]) Name() string { return g.name }

// Owner returns the node owning element i.
func (g *Global[T]) Owner(i int) int { return g.part.Owner(i) }

// OwnerRange returns the half-open index range owned by the calling node.
func (g *Global[T]) OwnerRange(rt *Runtime) (lo, hi int) { return g.part.Range(rt.node) }

// Local returns the calling node's partition as a mutable slice. It is a
// node-level escape hatch for initialization and result extraction (the
// paper's casting utilities between node space and global space); it must
// not be used while any Do is active.
func (g *Global[T]) Local(rt *Runtime) []T {
	if rt.inDo {
		panic(fmt.Sprintf("core: Global(%q).Local while Do is active", g.name))
	}
	lo, hi := g.part.Range(rt.node)
	return g.base[lo:hi:hi]
}

// At returns element i at node level (setup/extraction only). Reading a
// remote element outside any phase has no defined synchronization; it is
// allowed for result extraction after phases have committed.
func (g *Global[T]) At(rt *Runtime, i int) T {
	if rt.inDo {
		panic(fmt.Sprintf("core: Global(%q).At while Do is active", g.name))
	}
	if g.gs.dist != nil {
		if owner := g.part.Owner(i); owner != rt.node {
			// Result-extraction loops usually walk whole remote
			// partitions; fetch the owner's full block once and serve the
			// rest of the loop from the cache.
			lo, hi := g.part.Range(owner)
			g.distFetch(rt.node, lo, hi)
		}
	}
	return g.base[i]
}

// Read returns element i as observed at the beginning of the current
// phase. Must be called inside a phase. Remote reads require a global
// phase and are accounted for bundling.
func (g *Global[T]) Read(vp *VP, i int) T {
	vp.accessCheck(g.name, "Read")
	vp.reads++
	vp.charge += vp.d.sharedReadCost
	owner := g.part.Owner(i)
	if owner != vp.d.node {
		if vp.phaseKind != phaseGlobal {
			panic(fmt.Sprintf("core: Global(%q).Read(%d): remote access (owner %d) inside a node phase on node %d",
				g.name, i, owner, vp.d.node))
		}
		vp.noteRemoteRead(g.id, i, owner, g.es)
		if g.gs.dist != nil {
			g.distFetch(vp.d.node, i, i+1)
		}
	}
	return g.base[i]
}

// Write sets element i to v, taking effect after the end of the current
// phase (last writer in (node, VP, program) order wins when several VPs
// write the same element; use StrictWrites to flag that).
func (g *Global[T]) Write(vp *VP, i int, v T) { g.put(vp, i, v, false) }

// Add accumulates v into element i at the end of the current phase.
// Unlike Write, concurrent Adds to one element combine (addition is the
// paper's utility-reduction case for shared updates).
func (g *Global[T]) Add(vp *VP, i int, v T) { g.put(vp, i, v, true) }

func (g *Global[T]) put(vp *VP, i int, v T, add bool) {
	vp.accessCheck(g.name, "Write")
	if i < 0 || i >= g.n {
		panic(fmt.Sprintf("core: Global(%q).Write(%d): index out of range [0,%d)", g.name, i, g.n))
	}
	vp.writes++
	vp.charge += vp.d.sharedWriteCost
	owner := g.part.Owner(i)
	if owner != vp.d.node && vp.phaseKind != phaseGlobal {
		panic(fmt.Sprintf("core: Global(%q).Write(%d): remote access (owner %d) inside a node phase on node %d",
			g.name, i, owner, vp.d.node))
	}
	bufFor[T](vp, g).push(i, v, add)
}

// ReadBlock copies elements [lo, hi) into dst under phase semantics —
// the array-section form of Read for contiguous access. It validates
// once, copies with one memmove, and records remote traffic as interval
// runs instead of per-element entries; the modeled per-element costs are
// identical to hi-lo scalar Reads.
func (g *Global[T]) ReadBlock(vp *VP, lo, hi int, dst []T) {
	if lo < 0 || hi > g.n || lo > hi {
		panic(fmt.Sprintf("core: Global(%q).ReadBlock[%d:%d] out of [0,%d)", g.name, lo, hi, g.n))
	}
	if len(dst) < hi-lo {
		panic(fmt.Sprintf("core: Global(%q).ReadBlock: dst holds %d of %d elements", g.name, len(dst), hi-lo))
	}
	if lo == hi {
		return
	}
	vp.accessCheck(g.name, "Read")
	n := hi - lo
	vp.reads += int64(n)
	rc := vp.d.sharedReadCost
	for i := 0; i < n; i++ {
		// Element-wise additions keep the float accumulation bit-identical
		// to n scalar Reads.
		vp.charge += rc
	}
	node := vp.d.node
	for s := lo; s < hi; {
		owner := g.part.Owner(s)
		_, ohi := g.part.Range(owner)
		e := hi
		if e > ohi {
			e = ohi
		}
		if owner != node {
			if vp.phaseKind != phaseGlobal {
				panic(fmt.Sprintf("core: Global(%q).Read(%d): remote access (owner %d) inside a node phase on node %d",
					g.name, s, owner, node))
			}
			vp.noteRemoteRun(g.id, s, e, owner, g.es)
			if g.gs.dist != nil {
				g.distFetch(node, s, e)
			}
		}
		s = e
	}
	copy(dst, g.base[lo:hi])
}

// WriteBlock writes src over elements [lo, lo+len(src)), committing at
// the end of the current phase — the array-section form of Write. The
// run is buffered as a single record and applied with copy at commit.
func (g *Global[T]) WriteBlock(vp *VP, lo int, src []T) { g.putBlock(vp, lo, src, false, "WriteBlock") }

// AddBlock accumulates src into elements [lo, lo+len(src)) at the end of
// the current phase — the array-section form of Add.
func (g *Global[T]) AddBlock(vp *VP, lo int, src []T) { g.putBlock(vp, lo, src, true, "AddBlock") }

func (g *Global[T]) putBlock(vp *VP, lo int, src []T, add bool, op string) {
	if lo < 0 || lo+len(src) > g.n {
		panic(fmt.Sprintf("core: Global(%q).%s[%d:%d] out of [0,%d)", g.name, op, lo, lo+len(src), g.n))
	}
	if len(src) == 0 {
		return
	}
	vp.accessCheck(g.name, "Write")
	n := len(src)
	vp.writes += int64(n)
	wc := vp.d.sharedWriteCost
	for i := 0; i < n; i++ {
		vp.charge += wc
	}
	if vp.phaseKind != phaseGlobal {
		node := vp.d.node
		for s := lo; s < lo+n; {
			owner := g.part.Owner(s)
			if owner != node {
				panic(fmt.Sprintf("core: Global(%q).Write(%d): remote access (owner %d) inside a node phase on node %d",
					g.name, s, owner, node))
			}
			_, ohi := g.part.Range(owner)
			if ohi < lo+n {
				s = ohi
			} else {
				break
			}
		}
	}
	bufFor[T](vp, g).pushRun(lo, src, add)
}

// label implements registeredArray.
func (g *Global[T]) label() string { return g.name }

// localElems implements registeredArray: the size of node's partition.
func (g *Global[T]) localElems(node int) int { return g.part.Size(node) }

// elemBytes implements registeredArray.
func (g *Global[T]) elemBytes() int { return g.es }

// ownerSpan implements registeredArray: the owner of element i and the
// end of that owner's partition, for splitting interval runs by owner.
func (g *Global[T]) ownerSpan(i int) (owner, end int) {
	owner = g.part.Owner(i)
	_, end = g.part.Range(owner)
	return owner, end
}

// applyIncoming applies all staged runs destined for node, in
// (source node, VP, program) order, accumulating per-source traffic
// into the caller's tallies (reused across commits, so the apply path
// allocates nothing).
func (g *Global[T]) applyIncoming(node int, strict bool, phaseSeq int64, inElems, inBytes []int64) (err error) {
	nodes := g.gs.nodes
	for src := 0; src < nodes; src++ {
		recs := g.stage[node][src]
		if len(recs) == 0 {
			continue
		}
		g.stage[node][src] = recs[:0]
		elems := 0
		for i := range recs {
			elems += recs[i].n
			if e := g.applyRun(node, strict, phaseSeq, &recs[i]); e != nil && err == nil {
				err = e
			}
		}
		inElems[src] += int64(elems)
		inBytes[src] += int64(elems) * int64(g.es+8)
	}
	return err
}

// applyRun applies one resolved run to the node's base image.
func (g *Global[T]) applyRun(node int, strict bool, phaseSeq int64, r *stageRec[T]) error {
	var err error
	if strict {
		if g.ct == nil {
			g.ct = newConflictTracker(g.gs.nodes)
		}
		err = g.ct.check(&g.gs.conflicts, g.name, node, phaseSeq, r.lo, r.n, r.writer, r.add)
	}
	switch {
	case r.vals == nil:
		if r.add {
			g.base[r.lo] += r.val
		} else {
			g.base[r.lo] = r.val
		}
	case r.add:
		dst := g.base[r.lo : r.lo+r.n]
		for i, v := range r.vals {
			dst[i] += v
		}
	default:
		copy(g.base[r.lo:r.lo+r.n], r.vals)
	}
	return err
}

// Node is a node-shared array: as in the paper's PPM_node_shared, the
// declaration yields one independent instance per node, living in that
// node's physical shared memory. VPs of a node access their node's
// instance with phase semantics; there is no cross-node traffic.
type Node[T Elem] struct {
	gs   *globalState
	id   int
	name string
	n    int
	es   int
	base [][]T
	// strict-mode conflict tracking, allocated at first strict commit.
	ct *conflictTracker
	// bufPool recycles per-VP write buffers across Do invocations.
	bufPool sync.Pool
}

// AllocNode allocates a node-shared array of n elements on every node.
// Collective in the same sense as AllocGlobal.
func AllocNode[T Elem](rt *Runtime, name string, n int) *Node[T] {
	if n < 0 {
		panic(fmt.Sprintf("core: AllocNode(%q, %d): negative size", name, n))
	}
	a := allocArray(rt, name, func(id int) *Node[T] {
		nodes := rt.gs.nodes
		a := &Node[T]{
			gs:   rt.gs,
			id:   id,
			name: name,
			n:    n,
			es:   mp.SizeOf[T](),
			base: make([][]T, nodes),
		}
		for i := range a.base {
			a.base[i] = make([]T, n)
		}
		return a
	})
	rt.ChargeMem(int64(n * a.es))
	return a
}

// Len returns the per-node length.
func (a *Node[T]) Len() int { return a.n }

// Name returns the allocation name.
func (a *Node[T]) Name() string { return a.name }

// Local returns the calling node's instance as a mutable slice (node-
// level setup/extraction; not while Do is active).
func (a *Node[T]) Local(rt *Runtime) []T {
	if rt.inDo {
		panic(fmt.Sprintf("core: Node(%q).Local while Do is active", a.name))
	}
	return a.base[rt.node]
}

// Read returns element i of the calling node's instance as of the
// beginning of the current phase.
func (a *Node[T]) Read(vp *VP, i int) T {
	vp.accessCheck(a.name, "Read")
	vp.reads++
	vp.charge += vp.d.sharedReadCost
	return a.base[vp.d.node][i]
}

// Write sets element i of the node's instance at the end of the phase.
func (a *Node[T]) Write(vp *VP, i int, v T) { a.put(vp, i, v, false) }

// Add accumulates v into element i at the end of the phase.
func (a *Node[T]) Add(vp *VP, i int, v T) { a.put(vp, i, v, true) }

func (a *Node[T]) put(vp *VP, i int, v T, add bool) {
	vp.accessCheck(a.name, "Write")
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("core: Node(%q).Write(%d): index out of range [0,%d)", a.name, i, a.n))
	}
	vp.writes++
	vp.charge += vp.d.sharedWriteCost
	nodeBufFor[T](vp, a).push(i, v, add)
}

// ReadBlock copies elements [lo, hi) of the node's instance into dst
// under phase semantics — the array-section form of Read.
func (a *Node[T]) ReadBlock(vp *VP, lo, hi int, dst []T) {
	if lo < 0 || hi > a.n || lo > hi {
		panic(fmt.Sprintf("core: Node(%q).ReadBlock[%d:%d] out of [0,%d)", a.name, lo, hi, a.n))
	}
	if len(dst) < hi-lo {
		panic(fmt.Sprintf("core: Node(%q).ReadBlock: dst holds %d of %d elements", a.name, len(dst), hi-lo))
	}
	if lo == hi {
		return
	}
	vp.accessCheck(a.name, "Read")
	n := hi - lo
	vp.reads += int64(n)
	rc := vp.d.sharedReadCost
	for i := 0; i < n; i++ {
		vp.charge += rc
	}
	copy(dst, a.base[vp.d.node][lo:hi])
}

// WriteBlock writes src over elements [lo, lo+len(src)) of the node's
// instance, committing at the end of the phase.
func (a *Node[T]) WriteBlock(vp *VP, lo int, src []T) { a.putBlock(vp, lo, src, false, "WriteBlock") }

// AddBlock accumulates src into elements [lo, lo+len(src)) at the end of
// the phase.
func (a *Node[T]) AddBlock(vp *VP, lo int, src []T) { a.putBlock(vp, lo, src, true, "AddBlock") }

func (a *Node[T]) putBlock(vp *VP, lo int, src []T, add bool, op string) {
	if lo < 0 || lo+len(src) > a.n {
		panic(fmt.Sprintf("core: Node(%q).%s[%d:%d] out of [0,%d)", a.name, op, lo, lo+len(src), a.n))
	}
	if len(src) == 0 {
		return
	}
	vp.accessCheck(a.name, "Write")
	n := len(src)
	vp.writes += int64(n)
	wc := vp.d.sharedWriteCost
	for i := 0; i < n; i++ {
		vp.charge += wc
	}
	nodeBufFor[T](vp, a).pushRun(lo, src, add)
}

// label implements registeredArray.
func (a *Node[T]) label() string { return a.name }

// localElems implements registeredArray: node arrays are whole per node.
func (a *Node[T]) localElems(node int) int { return a.n }

// elemBytes implements registeredArray.
func (a *Node[T]) elemBytes() int { return a.es }

// ownerSpan implements registeredArray; node arrays are always local.
func (a *Node[T]) ownerSpan(i int) (owner, end int) { return 0, a.n }

// applyIncoming implements registeredArray; node arrays stage nothing, so
// it is a no-op (their records apply at flush).
func (a *Node[T]) applyIncoming(node int, strict bool, phaseSeq int64, inElems, inBytes []int64) error {
	return nil
}

// applyRun applies one resolved run to the node's instance.
func (a *Node[T]) applyRun(node int, strict bool, phaseSeq int64, r *stageRec[T]) error {
	var err error
	if strict {
		if a.ct == nil {
			a.ct = newConflictTracker(a.gs.nodes)
		}
		err = a.ct.check(&a.gs.conflicts, a.name, node, phaseSeq, r.lo, r.n, r.writer, r.add)
	}
	base := a.base[node]
	switch {
	case r.vals == nil:
		if r.add {
			base[r.lo] += r.val
		} else {
			base[r.lo] = r.val
		}
	case r.add:
		dst := base[r.lo : r.lo+r.n]
		for i, v := range r.vals {
			dst[i] += v
		}
	default:
		copy(base[r.lo:r.lo+r.n], r.vals)
	}
	return err
}
