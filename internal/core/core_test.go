package core

import (
	"fmt"
	"strings"
	"testing"

	"ppm/internal/machine"
)

func opts(nodes int) Options {
	return Options{Nodes: nodes, Machine: machine.Generic()}
}

func mustRun(t *testing.T, o Options, prog func(rt *Runtime)) *Report {
	t.Helper()
	rep, err := Run(o, prog)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{Nodes: 0}, func(rt *Runtime) {}); err == nil {
		t.Error("Nodes=0 accepted")
	}
	if _, err := Run(Options{Nodes: 1, CoresPerNode: -1}, func(rt *Runtime) {}); err == nil {
		t.Error("negative cores accepted")
	}
	if _, err := Run(Options{Nodes: 1, BundleBytes: -5}, func(rt *Runtime) {}); err == nil {
		t.Error("negative bundle size accepted")
	}
}

func TestSystemVariables(t *testing.T) {
	mustRun(t, opts(3), func(rt *Runtime) {
		if rt.NodeCount() != 3 {
			panic("NodeCount")
		}
		if rt.NodeID() < 0 || rt.NodeID() >= 3 {
			panic("NodeID")
		}
		if rt.CoresPerNode() != 4 {
			panic("CoresPerNode")
		}
	})
}

func TestDoRanks(t *testing.T) {
	const K = 10
	seen := make(map[int][]int)
	mustRun(t, opts(2), func(rt *Runtime) {
		ranks := AllocNode[int64](rt, "ranks", K)
		rt.Do(K, func(vp *VP) {
			if vp.K() != K || vp.Node() != rt.NodeID() || vp.Nodes() != 2 || vp.Cores() != 4 {
				panic("VP system variables wrong")
			}
			vp.NodePhase(func() {
				ranks.Write(vp, vp.NodeRank(), int64(vp.NodeRank()))
			})
		})
		local := ranks.Local(rt)
		got := make([]int, K)
		for i, v := range local {
			got[i] = int(v)
		}
		seen[rt.NodeID()] = got
	})
	for node, got := range seen {
		for i, v := range got {
			if v != i {
				t.Errorf("node %d rank slot %d = %d", node, i, v)
			}
		}
	}
}

func TestDoErrors(t *testing.T) {
	if _, err := Run(opts(1), func(rt *Runtime) { rt.Do(0, func(vp *VP) {}) }); err == nil || !strings.Contains(err.Error(), "K >= 1") {
		t.Errorf("Do(0): %v", err)
	}
	if _, err := Run(opts(1), func(rt *Runtime) { rt.Do(1, nil) }); err == nil || !strings.Contains(err.Error(), "nil body") {
		t.Errorf("Do(nil): %v", err)
	}
	if _, err := Run(opts(1), func(rt *Runtime) {
		rt.Do(1, func(vp *VP) {})
		rt.Do(2, func(vp *VP) { rt.Do(1, func(*VP) {}) })
	}); err == nil || !strings.Contains(err.Error(), "nested Do") {
		t.Errorf("nested Do: %v", err)
	}
}

// The core invariant: within a phase, reads observe begin-of-phase
// values; writes take effect only after the phase.
func TestPhaseReadSemantics(t *testing.T) {
	mustRun(t, opts(2), func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "x", 8)
		for i := range g.Local(rt) {
			g.Local(rt)[i] = 1
		}
		rt.Do(4, func(vp *VP) {
			vp.GlobalPhase(func() {
				i := vp.GlobalRank()
				if got := g.Read(vp, i); got != 1 {
					panic(fmt.Sprintf("pre-write read = %v, want 1", got))
				}
				g.Write(vp, i, 2)
				if got := g.Read(vp, i); got != 1 {
					panic(fmt.Sprintf("own write visible within phase: %v", got))
				}
			})
			vp.GlobalPhase(func() {
				i := vp.GlobalRank()
				if got := g.Read(vp, i); got != 2 {
					panic(fmt.Sprintf("post-phase read = %v, want 2", got))
				}
			})
		})
	})
}

// Cross-node writes become visible to all nodes in the next phase.
func TestCrossNodeWriteVisibility(t *testing.T) {
	const nodes = 4
	mustRun(t, opts(nodes), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "ring", nodes)
		rt.Do(1, func(vp *VP) {
			vp.GlobalPhase(func() {
				// Each node writes into the NEXT node's slot.
				dst := (vp.Node() + 1) % nodes
				g.Write(vp, dst, int64(100+vp.Node()))
			})
			vp.GlobalPhase(func() {
				// Read own slot: must hold previous node's write.
				want := int64(100 + (vp.Node()+nodes-1)%nodes)
				if got := g.Read(vp, vp.Node()); got != want {
					panic(fmt.Sprintf("node %d got %d want %d", vp.Node(), got, want))
				}
			})
		})
	})
}

func TestAddCombines(t *testing.T) {
	mustRun(t, opts(3), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "acc", 1)
		rt.Do(5, func(vp *VP) {
			vp.GlobalPhase(func() {
				g.Add(vp, 0, 1)
				g.Add(vp, 0, 1)
			})
		})
		if rt.NodeID() == 0 {
			if got := g.At(rt, 0); got != 30 { // 3 nodes * 5 VPs * 2 adds
				panic(fmt.Sprintf("Add total = %d, want 30", got))
			}
		}
	})
}

// Conflicting plain writes resolve deterministically: last writer in
// (node, VP) order wins.
func TestLastWriterWinsOrder(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		mustRun(t, opts(3), func(rt *Runtime) {
			g := AllocGlobal[int64](rt, "w", 1)
			rt.Do(4, func(vp *VP) {
				vp.GlobalPhase(func() {
					g.Write(vp, 0, int64(1000*vp.Node()+vp.NodeRank()))
				})
			})
			rt.Barrier()
			if got := g.At(rt, 0); got != 2003 { // node 2, VP 3 applies last
				panic(fmt.Sprintf("winner = %d, want 2003", got))
			}
		})
	}
}

func TestNodeArrayIndependentPerNode(t *testing.T) {
	sums := make([]int64, 3)
	mustRun(t, opts(3), func(rt *Runtime) {
		a := AllocNode[int64](rt, "na", 4)
		rt.Do(4, func(vp *VP) {
			vp.NodePhase(func() {
				a.Write(vp, vp.NodeRank(), int64((rt.NodeID()+1)*10+vp.NodeRank()))
			})
		})
		var s int64
		for _, v := range a.Local(rt) {
			s += v
		}
		sums[rt.NodeID()] = s
	})
	for node, s := range sums {
		want := int64(4*(node+1)*10 + 6)
		if s != want {
			t.Errorf("node %d sum = %d, want %d", node, s, want)
		}
	}
}

func TestNodePhaseRejectsRemoteAccess(t *testing.T) {
	_, err := Run(opts(2), func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "g", 10)
		rt.Do(1, func(vp *VP) {
			vp.NodePhase(func() {
				g.Read(vp, 9-9*vp.Node()) // remote for both nodes
			})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "remote access") {
		t.Errorf("expected remote-access error, got %v", err)
	}
}

func TestAccessOutsidePhasePanics(t *testing.T) {
	_, err := Run(opts(1), func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "g", 4)
		rt.Do(1, func(vp *VP) { g.Read(vp, 0) })
	})
	if err == nil || !strings.Contains(err.Error(), "outside a phase") {
		t.Errorf("expected outside-phase error, got %v", err)
	}
	_, err = Run(opts(1), func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "g", 4)
		rt.Do(1, func(vp *VP) { g.Write(vp, 0, 1) })
	})
	if err == nil || !strings.Contains(err.Error(), "outside a phase") {
		t.Errorf("expected outside-phase error for write, got %v", err)
	}
}

func TestNestedPhasePanics(t *testing.T) {
	_, err := Run(opts(1), func(rt *Runtime) {
		rt.Do(1, func(vp *VP) {
			vp.NodePhase(func() {
				vp.NodePhase(func() {})
			})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "nested phase") {
		t.Errorf("expected nested-phase error, got %v", err)
	}
}

func TestPhaseShapeMismatch(t *testing.T) {
	_, err := Run(opts(1), func(rt *Runtime) {
		rt.Do(2, func(vp *VP) {
			if vp.NodeRank() == 0 {
				vp.NodePhase(func() {})
			} else {
				vp.GlobalPhase(func() {})
			}
		})
	})
	if err == nil || !strings.Contains(err.Error(), "phase shape mismatch") {
		t.Errorf("expected shape-mismatch error, got %v", err)
	}
}

func TestVPPanicPropagates(t *testing.T) {
	_, err := Run(opts(2), func(rt *Runtime) {
		rt.Do(3, func(vp *VP) {
			vp.GlobalPhase(func() {
				if vp.Node() == 1 && vp.NodeRank() == 2 {
					panic("kaboom")
				}
			})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("expected VP panic error, got %v", err)
	}
}

func TestStrictWritesDetectsConflicts(t *testing.T) {
	o := opts(2)
	o.StrictWrites = true
	_, err := Run(o, func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "c", 1)
		rt.Do(2, func(vp *VP) {
			vp.GlobalPhase(func() {
				g.Write(vp, 0, int64(vp.NodeRank()))
			})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "conflicting writes") {
		t.Errorf("expected conflict error, got %v", err)
	}
}

func TestStrictWritesAllowsAddAndDisjoint(t *testing.T) {
	o := opts(2)
	o.StrictWrites = true
	mustRun(t, o, func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "c", 8)
		s := AllocGlobal[int64](rt, "s", 1)
		a := AllocNode[int64](rt, "n", 8)
		rt.Do(4, func(vp *VP) {
			vp.GlobalPhase(func() {
				s.Add(vp, 0, 1)                 // adds combine, never conflict
				g.Write(vp, vp.GlobalRank(), 1) // disjoint writes
			})
			vp.NodePhase(func() {
				a.Write(vp, vp.NodeRank(), 1)
			})
			// A second phase may rewrite the same elements.
			vp.GlobalPhase(func() {
				g.Write(vp, vp.GlobalRank(), 2)
			})
		})
	})
}

func TestStrictWritesNodeArrayConflict(t *testing.T) {
	o := opts(1)
	o.StrictWrites = true
	_, err := Run(o, func(rt *Runtime) {
		a := AllocNode[int64](rt, "n", 1)
		rt.Do(2, func(vp *VP) {
			vp.NodePhase(func() { a.Write(vp, 0, 7) })
		})
	})
	if err == nil || !strings.Contains(err.Error(), "conflicting writes") {
		t.Errorf("expected node-array conflict error, got %v", err)
	}
}

func TestGlobalRank(t *testing.T) {
	mustRun(t, opts(3), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "gr", 3*5)
		rt.Do(5, func(vp *VP) {
			vp.GlobalPhase(func() {
				if vp.GlobalK() != 15 {
					panic("GlobalK wrong")
				}
				g.Write(vp, vp.GlobalRank(), 1)
			})
		})
		if rt.NodeID() == 0 {
			for i := 0; i < 15; i++ {
				if g.At(rt, i) != 1 {
					panic(fmt.Sprintf("global rank %d unwritten or duplicated", i))
				}
			}
		}
	})
}

func TestAllocMismatchDetected(t *testing.T) {
	_, err := Run(opts(2), func(rt *Runtime) {
		if rt.NodeID() == 0 {
			AllocGlobal[float64](rt, "a", 4)
		} else {
			rt.Barrier() // let node 0 allocate first
			AllocGlobal[float64](rt, "b", 4)
		}
		if rt.NodeID() == 0 {
			rt.Barrier()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Errorf("expected divergence error, got %v", err)
	}
}

func TestAllocInsideDoPanics(t *testing.T) {
	_, err := Run(opts(1), func(rt *Runtime) {
		rt.Do(1, func(vp *VP) { AllocGlobal[float64](rt, "x", 1) })
	})
	if err == nil || !strings.Contains(err.Error(), "node level") {
		t.Errorf("expected node-level alloc error, got %v", err)
	}
}

func TestLocalWhileDoPanics(t *testing.T) {
	_, err := Run(opts(1), func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "x", 4)
		rt.Do(1, func(vp *VP) { g.Local(rt) })
	})
	if err == nil || !strings.Contains(err.Error(), "while Do is active") {
		t.Errorf("expected Local-in-Do error, got %v", err)
	}
}

func TestUtilities(t *testing.T) {
	mustRun(t, opts(4), func(rt *Runtime) {
		if got := rt.AllReduce(float64(rt.NodeID()+1), OpSum); got != 10 {
			panic(fmt.Sprintf("AllReduce sum = %v", got))
		}
		if got := rt.AllReduce(float64(rt.NodeID()), OpMax); got != 3 {
			panic(fmt.Sprintf("AllReduce max = %v", got))
		}
		if got := rt.AllReduce(float64(rt.NodeID()), OpMin); got != 0 {
			panic(fmt.Sprintf("AllReduce min = %v", got))
		}
		if got := rt.AllReduceInt(int64(rt.NodeID()), OpSum); got != 6 {
			panic(fmt.Sprintf("AllReduceInt = %v", got))
		}
		if got := rt.PrefixSumInt(rt.NodeID() + 1); got != rt.NodeID()*(rt.NodeID()+1)/2 {
			panic(fmt.Sprintf("PrefixSumInt = %v", got))
		}
		if got := rt.Broadcast(2, float64(rt.NodeID())*7); got != 14 {
			panic(fmt.Sprintf("Broadcast = %v", got))
		}
	})
}

func TestUtilitiesRejectedInsideDo(t *testing.T) {
	_, err := Run(opts(1), func(rt *Runtime) {
		rt.Do(1, func(vp *VP) { rt.AllReduce(1, OpSum) })
	})
	if err == nil || !strings.Contains(err.Error(), "node-level collective") {
		t.Errorf("expected node-level collective error, got %v", err)
	}
}

func TestChunkRange(t *testing.T) {
	covered := make([]int, 10)
	for p := 0; p < 3; p++ {
		lo, hi := ChunkRange(10, 3, p)
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Errorf("index %d covered %d times", i, c)
		}
	}
	if lo, hi := ChunkRange(2, 4, 3); lo != hi {
		t.Errorf("empty chunk expected, got [%d,%d)", lo, hi)
	}
}

func TestStatsCounts(t *testing.T) {
	rep := mustRun(t, opts(2), func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "s", 16)
		rt.Do(4, func(vp *VP) {
			vp.GlobalPhase(func() {
				g.Read(vp, vp.GlobalRank())
				g.Write(vp, vp.GlobalRank(), 1)
			})
			vp.NodePhase(func() {})
		})
	})
	if rep.Totals.Dos != 2 || rep.Totals.VPsStarted != 8 {
		t.Errorf("Dos/VPs: %+v", rep.Totals)
	}
	if rep.Totals.GlobalPhases != 2 || rep.Totals.NodePhases != 2 {
		t.Errorf("phase counts: %+v", rep.Totals)
	}
	if rep.Totals.SharedReads != 8 || rep.Totals.SharedWrites != 8 {
		t.Errorf("access counts: %+v", rep.Totals)
	}
}

func TestRemoteTrafficCounted(t *testing.T) {
	rep := mustRun(t, opts(2), func(rt *Runtime) {
		g := AllocGlobal[float64](rt, "r", 16) // node0: 0..7, node1: 8..15
		rt.Do(4, func(vp *VP) {
			vp.GlobalPhase(func() {
				remote := (1 - vp.Node()) * 8 // an index on the other node
				g.Read(vp, remote+vp.NodeRank())
				g.Write(vp, remote+vp.NodeRank(), 1)
			})
		})
	})
	if rep.Totals.RemoteReadElems != 8 {
		t.Errorf("remote reads = %d, want 8", rep.Totals.RemoteReadElems)
	}
	if rep.Totals.RemoteWriteElems != 8 {
		t.Errorf("remote writes = %d, want 8", rep.Totals.RemoteWriteElems)
	}
	if rep.Totals.BundlesOut == 0 || rep.Totals.BundlesIn == 0 {
		t.Errorf("bundles not counted: %+v", rep.Totals)
	}
}

func TestReadCacheDedupesRemoteReads(t *testing.T) {
	run := func(noCache bool) int64 {
		o := opts(2)
		o.NoReadCache = noCache
		rep := mustRun(t, o, func(rt *Runtime) {
			g := AllocGlobal[float64](rt, "rc", 16)
			rt.Do(2, func(vp *VP) {
				vp.GlobalPhase(func() {
					remote := (1 - vp.Node()) * 8
					for rep := 0; rep < 5; rep++ {
						g.Read(vp, remote) // same remote element 5 times
					}
				})
				vp.GlobalPhase(func() {
					g.Read(vp, (1-vp.Node())*8) // new phase: fresh fetch
				})
			})
		})
		return rep.Totals.RemoteReadElems
	}
	// Node-level cache: each node fetches the one remote element once per
	// phase, no matter how many VPs read it.
	if got := run(false); got != 2*2 { // 2 nodes x 2 phases
		t.Errorf("cached remote reads = %d, want 4", got)
	}
	if got := run(true); got != 2*2*(5+1) {
		t.Errorf("uncached remote reads = %d, want 24", got)
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() string {
		rep := mustRun(t, opts(4), func(rt *Runtime) {
			g := AllocGlobal[float64](rt, "d", 64)
			rt.Do(8, func(vp *VP) {
				for iter := 0; iter < 3; iter++ {
					vp.GlobalPhase(func() {
						i := vp.GlobalRank()
						v := g.Read(vp, (i*7+iter)%64)
						g.Write(vp, i, v+1)
						vp.ChargeFlops(100)
					})
				}
			})
		})
		return fmt.Sprintf("%v|%v", rep.Makespan(), rep)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic run:\n%s\n%s", a, b)
	}
}

// The runtime optimizations must move modeled time in the documented
// directions (these are the paper's §3.3 claims; full ablations live in
// the benchmarks).
func TestBundlingReducesTime(t *testing.T) {
	run := func(noBundling bool) float64 {
		o := Options{Nodes: 4, Machine: machine.Franklin(), NoBundling: noBundling}
		rep := mustRun(t, o, func(rt *Runtime) {
			g := AllocGlobal[float64](rt, "b", 4096)
			rt.Do(64, func(vp *VP) {
				vp.GlobalPhase(func() {
					// Scattered remote reads.
					for j := 0; j < 16; j++ {
						g.Read(vp, (vp.GlobalRank()*97+j*131)%4096)
					}
				})
			})
		})
		return rep.Makespan().Seconds()
	}
	bundled, naive := run(false), run(true)
	if !(bundled < naive) {
		t.Errorf("bundling should reduce time: bundled=%v naive=%v", bundled, naive)
	}
}

func TestOverlapReducesTime(t *testing.T) {
	run := func(noOverlap bool) float64 {
		o := Options{Nodes: 4, Machine: machine.Franklin(), NoOverlap: noOverlap}
		rep := mustRun(t, o, func(rt *Runtime) {
			g := AllocGlobal[float64](rt, "o", 4096)
			rt.Do(64, func(vp *VP) {
				vp.GlobalPhase(func() {
					for j := 0; j < 32; j++ {
						g.Read(vp, (vp.GlobalRank()*31+j*911)%4096)
					}
					vp.ChargeFlops(20000)
				})
			})
		})
		return rep.Makespan().Seconds()
	}
	overlap, serial := run(false), run(true)
	if !(overlap < serial) {
		t.Errorf("overlap should reduce time: overlap=%v serial=%v", overlap, serial)
	}
}

func TestMoreCoresReduceComputeTime(t *testing.T) {
	run := func(cores int) float64 {
		o := Options{Nodes: 2, Machine: machine.Generic(), CoresPerNode: cores}
		rep := mustRun(t, o, func(rt *Runtime) {
			rt.Do(64, func(vp *VP) {
				vp.NodePhase(func() { vp.ChargeFlops(1e6) })
			})
		})
		return rep.Makespan().Seconds()
	}
	if !(run(8) < run(2)) {
		t.Error("more cores should reduce phase compute time")
	}
}

func TestStaticScheduleSlowerOnImbalance(t *testing.T) {
	run := func(static bool) float64 {
		o := Options{Nodes: 1, Machine: machine.Generic(), StaticSchedule: static}
		rep := mustRun(t, o, func(rt *Runtime) {
			rt.Do(16, func(vp *VP) {
				vp.NodePhase(func() {
					// All heavy work lands in the first contiguous block.
					if vp.NodeRank() < 4 {
						vp.ChargeFlops(1e7)
					}
				})
			})
		})
		return rep.Makespan().Seconds()
	}
	dynamic, static := run(false), run(true)
	if !(dynamic < static) {
		t.Errorf("dynamic schedule should beat static on imbalance: %v vs %v", dynamic, static)
	}
}

// Different K per node and node-only phases: the paper's asynchronous
// mode.
func TestAsynchronousNodes(t *testing.T) {
	mustRun(t, opts(3), func(rt *Runtime) {
		k := 2 + rt.NodeID()*3
		a := AllocNode[int64](rt, "async", 16)
		rt.Do(k, func(vp *VP) {
			vp.NodePhase(func() {
				a.Add(vp, 0, 1)
			})
		})
		if got := a.Local(rt)[0]; got != int64(k) {
			panic(fmt.Sprintf("node %d: %d adds, want %d", rt.NodeID(), got, k))
		}
	})
}

func TestBlockOps(t *testing.T) {
	mustRun(t, opts(2), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "blk", 16)
		rt.Do(2, func(vp *VP) {
			vp.GlobalPhase(func() {
				if vp.Node() == 0 && vp.NodeRank() == 0 {
					src := []int64{10, 11, 12, 13, 14, 15}
					g.WriteBlock(vp, 6, src) // spans both partitions
				}
			})
			vp.GlobalPhase(func() {
				dst := make([]int64, 6)
				g.ReadBlock(vp, 6, 12, dst)
				for i, v := range dst {
					if v != int64(10+i) {
						panic(fmt.Sprintf("block read [%d] = %d", i, v))
					}
				}
			})
		})
	})
	_, err := Run(opts(1), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "blk", 4)
		rt.Do(1, func(vp *VP) {
			vp.GlobalPhase(func() { g.ReadBlock(vp, 2, 8, make([]int64, 6)) })
		})
	})
	if err == nil || !strings.Contains(err.Error(), "out of") {
		t.Errorf("expected bounds error, got %v", err)
	}
	_, err = Run(opts(1), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "blk", 8)
		rt.Do(1, func(vp *VP) {
			vp.GlobalPhase(func() { g.ReadBlock(vp, 0, 4, make([]int64, 2)) })
		})
	})
	if err == nil || !strings.Contains(err.Error(), "dst holds") {
		t.Errorf("expected dst error, got %v", err)
	}
}

// Virtualization stress: the model's premise is an "unbounded number of
// virtual processors"; the coordinator must comfortably run tens of
// thousands of VPs through phases.
func TestManyVPs(t *testing.T) {
	const k = 50000
	rep := mustRun(t, opts(1), func(rt *Runtime) {
		acc := AllocNode[int64](rt, "acc", 1)
		rt.Do(k, func(vp *VP) {
			vp.NodePhase(func() {
				acc.Add(vp, 0, 1)
			})
			vp.NodePhase(func() {
				if vp.NodeRank() == 0 && acc.Read(vp, 0) != k {
					panic(fmt.Sprintf("phase-1 adds lost: %d", acc.Read(vp, 0)))
				}
			})
		})
	})
	if rep.Totals.VPsStarted != k {
		t.Errorf("VPs started: %d", rep.Totals.VPsStarted)
	}
}

// Paper §3.3: "the PPM function that is invoked can be different on
// different nodes ... using function pointers", with different K, working
// asynchronously via node phases.
func TestDifferentFunctionsPerNode(t *testing.T) {
	mustRun(t, opts(2), func(rt *Runtime) {
		a := AllocNode[int64](rt, "out", 8)
		producer := func(vp *VP) {
			vp.NodePhase(func() { a.Add(vp, 0, 2) })
		}
		consumer := func(vp *VP) {
			vp.NodePhase(func() { a.Add(vp, 1, 5) })
			vp.NodePhase(func() { a.Add(vp, 1, 5) })
		}
		if rt.NodeID() == 0 {
			rt.Do(3, producer)
			if a.Local(rt)[0] != 6 {
				panic("producer sum wrong")
			}
		} else {
			rt.Do(5, consumer)
			if a.Local(rt)[1] != 50 {
				panic("consumer sum wrong")
			}
		}
	})
}

func TestStrictCrossNodeConflict(t *testing.T) {
	o := opts(3)
	o.StrictWrites = true
	_, err := Run(o, func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "x", 3)
		rt.Do(1, func(vp *VP) {
			vp.GlobalPhase(func() {
				g.Write(vp, 1, int64(vp.Node())) // all three nodes hit element 1
			})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "conflicting writes") {
		t.Errorf("expected cross-node conflict, got %v", err)
	}
}

// TestStrictCollectsAllConflicts checks that a strict run reports every
// conflicting element with full writer attribution, not only the first
// error it aborted with.
func TestStrictCollectsAllConflicts(t *testing.T) {
	o := opts(2)
	o.StrictWrites = true
	rep, err := Run(o, func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "g", 8)
		a := AllocNode[int64](rt, "n", 4)
		rt.Do(2, func(vp *VP) {
			vp.GlobalPhase(func() {
				g.Write(vp, 0, 1) // all 4 VPs
				g.Write(vp, 5, 2) // all 4 VPs
			})
			vp.NodePhase(func() {
				a.Write(vp, 3, int64(vp.NodeRank())) // both VPs of each node
			})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "conflicting writes") {
		t.Fatalf("expected conflict error, got %v", err)
	}
	byKey := map[string]WriteConflict{}
	for _, c := range rep.Conflicts {
		byKey[fmt.Sprintf("%s[%d]@%d", c.Array, c.Index, c.Node)] = c
	}
	// g[0] and g[5] conflict on their owner nodes; n[3] conflicts on
	// every node's instance.
	for _, want := range []string{"g[0]@0", "g[5]@1", "n[3]@0", "n[3]@1"} {
		if _, ok := byKey[want]; !ok {
			t.Errorf("missing conflict %s; got %v", want, rep.Conflicts)
		}
	}
	if len(byKey) != 4 {
		t.Errorf("got %d distinct conflicts, want 4: %v", len(byKey), rep.Conflicts)
	}
	// Four VPs wrote g[0]: attribution names all of them.
	if c := byKey["g[0]@0"]; len(c.Writers) != 4 {
		t.Errorf("g[0] attribution = %v, want all 4 writers", c.Writers)
	}
	for _, c := range rep.Conflicts {
		for _, w := range c.Writers {
			if w.Add {
				t.Errorf("conflict %v attributes an add; all updates were writes", c)
			}
		}
	}
}

// TestStrictCrossKindConflict checks that a combining AddBlock
// overlapping a plain WriteBlock on another node's VP is a conflict
// (the element's end-of-phase value would depend on apply order), while
// adds overlapping adds stay allowed.
func TestStrictCrossKindConflict(t *testing.T) {
	o := opts(2)
	o.StrictWrites = true
	rep, err := Run(o, func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "g", 16)
		rt.Do(1, func(vp *VP) {
			vp.GlobalPhase(func() {
				vals := []int64{1, 1, 1, 1}
				if vp.Node() == 0 {
					g.WriteBlock(vp, 4, vals) // elements 4..7
				} else {
					g.AddBlock(vp, 6, vals) // elements 6..9: overlaps 6,7
				}
			})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "conflicting writes") {
		t.Fatalf("expected cross-kind conflict, got %v", err)
	}
	if len(rep.Conflicts) != 2 {
		t.Fatalf("got %d conflicts, want 2 (elements 6 and 7): %v", len(rep.Conflicts), rep.Conflicts)
	}
	for _, c := range rep.Conflicts {
		if c.Array != "g" || (c.Index != 6 && c.Index != 7) {
			t.Errorf("unexpected conflict %v", c)
		}
		var adds, writes int
		for _, w := range c.Writers {
			if w.Add {
				adds++
			} else {
				writes++
			}
		}
		if adds != 1 || writes != 1 {
			t.Errorf("conflict %v: want one add and one write attributed", c)
		}
	}

	// The same overlap with adds on both sides is fine.
	o = opts(2)
	o.StrictWrites = true
	rep = mustRun(t, o, func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "g", 16)
		rt.Do(1, func(vp *VP) {
			vp.GlobalPhase(func() {
				vals := []int64{1, 1, 1, 1}
				if vp.Node() == 0 {
					g.AddBlock(vp, 4, vals)
				} else {
					g.AddBlock(vp, 6, vals)
				}
			})
		})
	})
	if len(rep.Conflicts) != 0 {
		t.Errorf("add/add overlap reported conflicts: %v", rep.Conflicts)
	}
}

func TestSequentialDosShareState(t *testing.T) {
	mustRun(t, opts(2), func(rt *Runtime) {
		g := AllocGlobal[int64](rt, "seq", 4)
		for round := 0; round < 5; round++ {
			rt.Do(1, func(vp *VP) {
				vp.GlobalPhase(func() { g.Add(vp, 0, 1) })
			})
		}
		rt.Barrier()
		if rt.NodeID() == 0 && g.At(rt, 0) != 10 {
			panic(fmt.Sprintf("accumulated %d, want 10", g.At(rt, 0)))
		}
	})
}

// Section 5 of the paper: parallel binary search of B's elements in a
// sorted global array A, one VP per element of B.
func TestPaperBinarySearchExample(t *testing.T) {
	const N, K = 1024, 64
	results := make([][]int64, 4) // indexed by node: disjoint slots, parallel-scheduler safe
	mustRun(t, opts(4), func(rt *Runtime) {
		A := AllocGlobal[float64](rt, "A", N)
		B := AllocNode[float64](rt, "B", K)
		rankInA := AllocNode[int64](rt, "rank_in_A", K)
		// Node-level initialization: A sorted, B per node.
		lo, hi := A.OwnerRange(rt)
		for i := lo; i < hi; i++ {
			A.Local(rt)[i-lo] = float64(2 * i) // A[i] = 2i, sorted
		}
		for j := 0; j < K; j++ {
			B.Local(rt)[j] = float64(2*((j*37+rt.NodeID()*11)%N) + 1) // odd: falls between
		}
		rt.Do(K, func(vp *VP) {
			vp.GlobalPhase(func() {
				b := B.Read(vp, vp.NodeRank())
				left, right := 0, N
				for left+1 < right {
					middle := (left + right) / 2
					if A.Read(vp, middle) < b {
						left = middle
					} else {
						right = middle
					}
				}
				rankInA.Write(vp, vp.NodeRank(), int64(right))
			})
		})
		results[rt.NodeID()] = append([]int64(nil), rankInA.Local(rt)...)
	})
	for node, rs := range results {
		for j, r := range rs {
			wantVal := 2*((j*37+node*11)%1024) + 1
			want := int64(wantVal/2 + 1) // first index with A[i] >= b
			if r != want {
				t.Errorf("node %d key %d: rank %d, want %d", node, j, r, want)
			}
		}
	}
}
