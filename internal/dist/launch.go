package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// StopExitCode is the exit status of a node or server process stopped
// by an operator signal (SIGINT/SIGTERM) after draining its in-flight
// work. The supervisor treats it as a requested shutdown, not a crash:
// a rank exiting with it is never restarted. Distinct from
// faultinject.KillExitCode (37), which marks an injected crash.
const StopExitCode = 86

// ErrOperatorStop marks a launch attempt that ended because a rank was
// stopped by an operator request rather than a failure; LaunchLocal
// returns it (wrapped, with per-rank detail) without spending restarts.
var ErrOperatorStop = errors.New("fleet stopped by operator request")

// LaunchOpts configures a localhost multi-process launch.
type LaunchOpts struct {
	// Nodes is how many node processes to fork.
	Nodes int
	// NodeBin is the ppm-node binary to exec.
	NodeBin string
	// NodeArgs are appended to every node's command line (app selection,
	// parameters, ablation flags). The launcher itself supplies -rank,
	// -nodes, -rendezvous, -run-id, and the checkpoint flags.
	NodeArgs []string
	// Timeout kills the whole fleet if one attempt exceeds it (default
	// 120s). With the engine's failure detector on, a sick fleet aborts
	// itself long before this backstop.
	Timeout time.Duration
	// Stderr receives every node's stderr (default os.Stderr).
	Stderr io.Writer

	// Env entries are appended to each node's inherited environment
	// (fault specs, mostly); the launcher itself adds PPM_FAULT_ATTEMPT
	// so one-shot injected faults fire only on the first attempt.
	Env []string

	// MaxRestarts upgrades the watchdog to a supervisor: when any rank
	// fails, the supervisor kills the survivors and relaunches the whole
	// fleet — with -restore when CheckpointDir is set, so the new fleet
	// resumes from the last checkpoint every rank completed — up to
	// MaxRestarts times. Restarting all ranks (not just the dead one) is
	// what keeps recovery consistent: survivors cannot roll back to the
	// rejoiner's phase, so everyone restarts from one checkpointed cut.
	MaxRestarts int
	// CheckpointDir, when set, is passed to every node as
	// -checkpoint-dir (with -checkpoint-every CheckpointEvery); it must
	// outlive the attempt, unlike the per-launch rendezvous dir.
	CheckpointDir string
	// CheckpointEvery is the minimum number of committed global phases
	// between checkpoint writes (node default if 0).
	CheckpointEvery int
	// DetectGrace is how long, after the first rank failure of an
	// attempt, the supervisor lets the surviving ranks self-abort (the
	// engine's failure detector normally gets them out in seconds with a
	// precise error) before killing them (default 20s).
	DetectGrace time.Duration
	// OnRestart, if non-nil, is called before each relaunch with the new
	// attempt number (1-based) and the failure that caused it.
	OnRestart func(attempt int, cause error)
}

// LaunchLocal forks Nodes ppm-node processes wired together through a
// temporary rendezvous directory on loopback TCP, waits for them, and
// decodes each one's NodeResult from its stdout. The slice is indexed by
// rank and always has Nodes entries; a non-nil error summarizes every
// process that failed to run or report. With MaxRestarts > 0 it
// supervises: a failed attempt is relaunched (all ranks, fresh run-id,
// -restore when checkpointing) until an attempt succeeds or the restart
// budget is spent, in which case the last attempt's results and error
// are returned.
func LaunchLocal(o LaunchOpts) ([]NodeResult, error) {
	if o.Nodes <= 0 {
		return nil, fmt.Errorf("dist: LaunchLocal with %d nodes", o.Nodes)
	}
	if o.NodeBin == "" {
		return nil, fmt.Errorf("dist: LaunchLocal needs the ppm-node binary path")
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	if o.DetectGrace <= 0 {
		o.DetectGrace = 20 * time.Second
	}
	if o.Stderr == nil {
		o.Stderr = os.Stderr
	}
	dir, err := os.MkdirTemp("", "ppm-dist-")
	if err != nil {
		return nil, fmt.Errorf("dist: rendezvous dir: %w", err)
	}
	defer os.RemoveAll(dir)

	var results []NodeResult
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if o.OnRestart != nil {
				o.OnRestart(attempt, lastErr)
			}
			// Brief backoff so a crash loop does not hammer the host.
			time.Sleep(time.Duration(attempt) * 250 * time.Millisecond)
		}
		results, lastErr = launchOnce(&o, dir, attempt)
		if lastErr == nil || attempt >= o.MaxRestarts || errors.Is(lastErr, ErrOperatorStop) {
			return results, lastErr
		}
	}
}

// launchOnce runs one fleet attempt. The rendezvous dir is reused across
// attempts: the per-attempt run-id in the address files keeps a restarted
// fleet from dialing a dead predecessor's addresses.
func launchOnce(o *LaunchOpts, dir string, attempt int) ([]NodeResult, error) {
	runID := fmt.Sprintf("ppm-%d-a%d", os.Getpid(), attempt)
	cmds := make([]*exec.Cmd, o.Nodes)
	outs := make([]bytes.Buffer, o.Nodes)
	waitErrs := make([]error, o.Nodes)
	for r := 0; r < o.Nodes; r++ {
		args := []string{
			"-rank", strconv.Itoa(r),
			"-nodes", strconv.Itoa(o.Nodes),
			"-rendezvous", dir,
			"-run-id", runID,
		}
		if o.CheckpointDir != "" {
			args = append(args, "-checkpoint-dir", o.CheckpointDir)
			if o.CheckpointEvery > 0 {
				args = append(args, "-checkpoint-every", strconv.Itoa(o.CheckpointEvery))
			}
			if attempt > 0 {
				args = append(args, "-restore")
			}
		}
		args = append(args, o.NodeArgs...)
		cmd := exec.Command(o.NodeBin, args...)
		cmd.Stdout = &outs[r]
		cmd.Stderr = o.Stderr
		cmd.Env = append(os.Environ(), o.Env...)
		cmd.Env = append(cmd.Env, fmt.Sprintf("PPM_FAULT_ATTEMPT=%d", attempt))
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:r] {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("dist: start node %d: %w", r, err)
		}
		cmds[r] = cmd
	}

	// Supervise the attempt: the watchdog backstops a fully hung fleet,
	// and the grace timer bounds how long survivors may outlive the first
	// failed rank (they normally self-abort via the failure detector with
	// a much better error than a kill).
	type exitEv struct {
		rank int
		err  error
	}
	exits := make(chan exitEv, o.Nodes)
	for r, c := range cmds {
		go func(r int, c *exec.Cmd) { exits <- exitEv{rank: r, err: c.Wait()} }(r, c)
	}
	killAll := func() {
		for _, c := range cmds {
			c.Process.Kill()
		}
	}
	var timedOut, graceKilled bool
	watchdog := time.NewTimer(o.Timeout)
	defer watchdog.Stop()
	var grace <-chan time.Time
	for got := 0; got < o.Nodes; {
		select {
		case ev := <-exits:
			waitErrs[ev.rank] = ev.err
			got++
			if ev.err != nil && grace == nil && got < o.Nodes {
				grace = time.After(o.DetectGrace)
			}
		case <-watchdog.C:
			timedOut = true
			killAll()
		case <-grace:
			graceKilled = true
			killAll()
			grace = nil
		}
	}

	results := make([]NodeResult, o.Nodes)
	var errs []string
	var stopped bool
	for r := 0; r < o.Nodes; r++ {
		results[r].Rank = r
		var ee *exec.ExitError
		if errors.As(waitErrs[r], &ee) && ee.ExitCode() == StopExitCode {
			stopped = true
			errs = append(errs, fmt.Sprintf("rank %d: stopped by operator (exit %d)", r, StopExitCode))
			continue
		}
		if err := json.Unmarshal(bytes.TrimSpace(outs[r].Bytes()), &results[r]); err != nil {
			detail := strings.TrimSpace(outs[r].String())
			if len(detail) > 200 {
				detail = detail[:200] + "..."
			}
			errs = append(errs, fmt.Sprintf("rank %d: no result (%v; exit: %v; stdout: %q)", r, err, waitErrs[r], detail))
			continue
		}
		if results[r].Rank != r {
			errs = append(errs, fmt.Sprintf("rank %d: reported rank %d", r, results[r].Rank))
		}
		if results[r].Err != "" {
			errs = append(errs, fmt.Sprintf("rank %d: %s", r, results[r].Err))
		}
	}
	if timedOut {
		errs = append([]string{fmt.Sprintf("run exceeded %v and was killed", o.Timeout)}, errs...)
	}
	if graceKilled {
		errs = append(errs, fmt.Sprintf("supervisor killed surviving ranks %v after the first rank failed", o.DetectGrace))
	}
	if len(errs) > 0 {
		if stopped {
			return results, fmt.Errorf("dist: %w:\n  %s", ErrOperatorStop, strings.Join(errs, "\n  "))
		}
		return results, fmt.Errorf("dist: launch failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return results, nil
}
