package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LaunchOpts configures a localhost multi-process launch.
type LaunchOpts struct {
	// Nodes is how many node processes to fork.
	Nodes int
	// NodeBin is the ppm-node binary to exec.
	NodeBin string
	// NodeArgs are appended to every node's command line (app selection,
	// parameters, ablation flags). The launcher itself supplies -rank,
	// -nodes, and -rendezvous.
	NodeArgs []string
	// Timeout kills the whole fleet if the run exceeds it (default 120s).
	Timeout time.Duration
	// Stderr receives every node's stderr (default os.Stderr).
	Stderr io.Writer
}

// LaunchLocal forks Nodes ppm-node processes wired together through a
// temporary rendezvous directory on loopback TCP, waits for them, and
// decodes each one's NodeResult from its stdout. The slice is indexed by
// rank and always has Nodes entries; a non-nil error summarizes every
// process that failed to run or report.
func LaunchLocal(o LaunchOpts) ([]NodeResult, error) {
	if o.Nodes <= 0 {
		return nil, fmt.Errorf("dist: LaunchLocal with %d nodes", o.Nodes)
	}
	if o.NodeBin == "" {
		return nil, fmt.Errorf("dist: LaunchLocal needs the ppm-node binary path")
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	stderr := o.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	dir, err := os.MkdirTemp("", "ppm-dist-")
	if err != nil {
		return nil, fmt.Errorf("dist: rendezvous dir: %w", err)
	}
	defer os.RemoveAll(dir)

	cmds := make([]*exec.Cmd, o.Nodes)
	outs := make([]bytes.Buffer, o.Nodes)
	waitErrs := make([]error, o.Nodes)
	for r := 0; r < o.Nodes; r++ {
		args := []string{
			"-rank", strconv.Itoa(r),
			"-nodes", strconv.Itoa(o.Nodes),
			"-rendezvous", dir,
		}
		args = append(args, o.NodeArgs...)
		cmd := exec.Command(o.NodeBin, args...)
		cmd.Stdout = &outs[r]
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:r] {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("dist: start node %d: %w", r, err)
		}
		cmds[r] = cmd
	}

	// One watchdog for the fleet: a hung mesh (half-connected, deadlocked
	// peer) must not hang the launcher forever.
	var timedOut bool
	var mu sync.Mutex
	timer := time.AfterFunc(o.Timeout, func() {
		mu.Lock()
		timedOut = true
		mu.Unlock()
		for _, c := range cmds {
			c.Process.Kill()
		}
	})
	for r, c := range cmds {
		waitErrs[r] = c.Wait()
	}
	timer.Stop()

	results := make([]NodeResult, o.Nodes)
	var errs []string
	for r := 0; r < o.Nodes; r++ {
		results[r].Rank = r
		if err := json.Unmarshal(bytes.TrimSpace(outs[r].Bytes()), &results[r]); err != nil {
			detail := strings.TrimSpace(outs[r].String())
			if len(detail) > 200 {
				detail = detail[:200] + "..."
			}
			errs = append(errs, fmt.Sprintf("rank %d: no result (%v; exit: %v; stdout: %q)", r, err, waitErrs[r], detail))
			continue
		}
		if results[r].Rank != r {
			errs = append(errs, fmt.Sprintf("rank %d: reported rank %d", r, results[r].Rank))
		}
		if results[r].Err != "" {
			errs = append(errs, fmt.Sprintf("rank %d: %s", r, results[r].Err))
		}
	}
	mu.Lock()
	if timedOut {
		errs = append([]string{fmt.Sprintf("run exceeded %v and was killed", o.Timeout)}, errs...)
	}
	mu.Unlock()
	if len(errs) > 0 {
		return results, fmt.Errorf("dist: launch failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return results, nil
}
