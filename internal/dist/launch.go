package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"ppm/internal/faultinject"
	"ppm/internal/partition"
)

// StopExitCode is the exit status of a node or server process stopped
// by an operator signal (SIGINT/SIGTERM) after draining its in-flight
// work. The supervisor treats it as a requested shutdown, not a crash:
// a rank exiting with it is never restarted. Distinct from
// faultinject.KillExitCode (37), which marks an injected crash.
const StopExitCode = 86

// ErrOperatorStop marks a launch attempt that ended because a rank was
// stopped by an operator request rather than a failure; LaunchLocal
// returns it (wrapped, with per-rank detail) without spending restarts.
var ErrOperatorStop = errors.New("fleet stopped by operator request")

// LaunchOpts configures a localhost multi-process launch.
type LaunchOpts struct {
	// Nodes is how many node processes to fork.
	Nodes int
	// NodeBin is the ppm-node binary to exec.
	NodeBin string
	// NodeArgs are appended to every node's command line (app selection,
	// parameters, ablation flags). The launcher itself supplies -rank,
	// -nodes, -rendezvous, -run-id, and the checkpoint flags.
	NodeArgs []string
	// Timeout kills the whole fleet if one attempt exceeds it (default
	// 120s). With the engine's failure detector on, a sick fleet aborts
	// itself long before this backstop.
	Timeout time.Duration
	// Stderr receives every node's stderr (default os.Stderr).
	Stderr io.Writer

	// Env entries are appended to each node's inherited environment
	// (fault specs, mostly); the launcher itself adds PPM_FAULT_ATTEMPT
	// so one-shot injected faults fire only on the first attempt.
	Env []string

	// MaxRestarts upgrades the watchdog to a supervisor: when any rank
	// fails, the supervisor kills the survivors and relaunches the whole
	// fleet — with -restore when CheckpointDir is set, so the new fleet
	// resumes from the last checkpoint every rank completed — up to
	// MaxRestarts times. Restarting all ranks (not just the dead one) is
	// what keeps recovery consistent: survivors cannot roll back to the
	// rejoiner's phase, so everyone restarts from one checkpointed cut.
	MaxRestarts int
	// CheckpointDir, when set, is passed to every node as
	// -checkpoint-dir (with -checkpoint-every CheckpointEvery); it must
	// outlive the attempt, unlike the per-launch rendezvous dir.
	CheckpointDir string
	// CheckpointEvery is the minimum number of committed global phases
	// between checkpoint writes (node default if 0).
	CheckpointEvery int
	// DetectGrace is how long, after the first rank failure of an
	// attempt, the supervisor lets the surviving ranks self-abort (the
	// engine's failure detector normally gets them out in seconds with a
	// precise error) before killing them (default 20s).
	DetectGrace time.Duration
	// OnRestart, if non-nil, is called before each relaunch with the new
	// attempt number (1-based) and the failure that caused it.
	OnRestart func(attempt int, cause error)

	// PerRankRestarts is the per-host failure-attribution budget behind
	// elastic rescale (default 2): a host process blamed for that many
	// consecutive failed attempts — it exited with KillExitCode, or died
	// without reporting any result while its peers self-aborted cleanly
	// — is declared permanently dead rather than transiently unlucky.
	// The supervisor then relaunches the fleet on one fewer host
	// process, with -restore-rescale when CheckpointDir is set so the
	// shrunk fleet resumes every logical rank from the last checkpoint.
	PerRankRestarts int
	// MinNodes floors the rescale ladder (default 1): the supervisor
	// never shrinks the fleet below this many host processes; a dead
	// host at the floor surfaces the error instead.
	MinNodes int
	// OnRescale, if non-nil, is called before each shrunken relaunch
	// with the new host-process count and the failure that exhausted
	// the dead host's budget.
	OnRescale func(procs int, cause error)
}

// LaunchLocal forks Nodes ppm-node processes wired together through a
// temporary rendezvous directory on loopback TCP, waits for them, and
// decodes each one's NodeResult from its stdout. The slice is indexed by
// rank and always has Nodes entries; a non-nil error summarizes every
// process that failed to run or report. With MaxRestarts > 0 it
// supervises: a failed attempt is relaunched (all ranks, fresh run-id,
// -restore when checkpointing) until an attempt succeeds or the restart
// budget is spent, in which case the last attempt's results and error
// are returned. The supervisor also attributes failures per host: a
// host blamed PerRankRestarts times in a row is permanently dead, and
// the fleet is relaunched on one fewer host process (each surviving
// process block-hosting several logical ranks, restoring their
// checkpoints via -restore-rescale), down to the MinNodes floor.
func LaunchLocal(o LaunchOpts) ([]NodeResult, error) {
	if o.Nodes <= 0 {
		return nil, fmt.Errorf("dist: LaunchLocal with %d nodes", o.Nodes)
	}
	if o.NodeBin == "" {
		return nil, fmt.Errorf("dist: LaunchLocal needs the ppm-node binary path")
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	if o.DetectGrace <= 0 {
		o.DetectGrace = 20 * time.Second
	}
	if o.Stderr == nil {
		o.Stderr = os.Stderr
	}
	if o.PerRankRestarts <= 0 {
		o.PerRankRestarts = 2
	}
	if o.MinNodes <= 0 {
		o.MinNodes = 1
	}
	if o.MinNodes > o.Nodes {
		o.MinNodes = o.Nodes
	}
	dir, err := os.MkdirTemp("", "ppm-dist-")
	if err != nil {
		return nil, fmt.Errorf("dist: rendezvous dir: %w", err)
	}
	defer os.RemoveAll(dir)

	var results []NodeResult
	var lastErr error
	procs := o.Nodes
	failCounts := make([]int, procs)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if o.OnRestart != nil {
				o.OnRestart(attempt, lastErr)
			}
			// Brief backoff so a crash loop does not hammer the host.
			time.Sleep(time.Duration(attempt) * 250 * time.Millisecond)
		}
		var suspects []int
		results, suspects, lastErr = launchOnce(&o, dir, attempt, procs)
		if lastErr == nil || attempt >= o.MaxRestarts || errors.Is(lastErr, ErrOperatorStop) {
			return results, lastErr
		}
		// Per-host failure attribution: a host blamed for PerRankRestarts
		// consecutive failed attempts is permanently dead — shrink the
		// fleet by one host process and start the ladder over (host
		// indexes re-map under the new block hosting, so stale blame
		// would land on the wrong process).
		for _, p := range suspects {
			if p < len(failCounts) {
				failCounts[p]++
			}
		}
		for p, n := range failCounts {
			if n < o.PerRankRestarts {
				continue
			}
			if procs-1 < o.MinNodes {
				return results, fmt.Errorf("dist: host %d is permanently dead and the fleet is at the MinNodes floor (%d): %w", p, o.MinNodes, lastErr)
			}
			procs--
			failCounts = make([]int, procs)
			if o.OnRescale != nil {
				o.OnRescale(procs, lastErr)
			}
			break
		}
	}
}

// launchOnce runs one fleet attempt on procs host processes (procs <
// Nodes block-hosts several logical ranks per process). The rendezvous
// dir is reused across attempts: the per-attempt run-id in the address
// files keeps a restarted fleet from dialing a dead predecessor's
// addresses. suspects lists the host processes whose death looks like
// the attempt's root cause (injected kill, or dying resultless while
// peers self-aborted with precise errors) for per-host attribution.
func launchOnce(o *LaunchOpts, dir string, attempt, procs int) (results []NodeResult, suspects []int, err error) {
	runID := fmt.Sprintf("ppm-%d-a%d", os.Getpid(), attempt)
	hosts := partition.NewBlock(o.Nodes, procs)
	cmds := make([]*exec.Cmd, procs)
	outs := make([]bytes.Buffer, procs)
	waitErrs := make([]error, procs)
	for p := 0; p < procs; p++ {
		lo, _ := hosts.Range(p)
		args := []string{
			"-rank", strconv.Itoa(lo),
			"-nodes", strconv.Itoa(o.Nodes),
			"-rendezvous", dir,
			"-run-id", runID,
		}
		if procs < o.Nodes {
			args = append(args, "-procs", strconv.Itoa(procs), "-proc", strconv.Itoa(p))
		}
		if o.CheckpointDir != "" {
			args = append(args, "-checkpoint-dir", o.CheckpointDir)
			if o.CheckpointEvery > 0 {
				args = append(args, "-checkpoint-every", strconv.Itoa(o.CheckpointEvery))
			}
			if attempt > 0 {
				if procs < o.Nodes {
					args = append(args, "-restore-rescale")
				} else {
					args = append(args, "-restore")
				}
			}
		}
		args = append(args, o.NodeArgs...)
		cmd := exec.Command(o.NodeBin, args...)
		cmd.Stdout = &outs[p]
		cmd.Stderr = o.Stderr
		cmd.Env = append(os.Environ(), o.Env...)
		cmd.Env = append(cmd.Env, fmt.Sprintf("PPM_FAULT_ATTEMPT=%d", attempt))
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:p] {
				c.Process.Kill()
				c.Wait()
			}
			return nil, nil, fmt.Errorf("dist: start host %d: %w", p, err)
		}
		cmds[p] = cmd
	}

	// Supervise the attempt: the watchdog backstops a fully hung fleet,
	// and the grace timer bounds how long survivors may outlive the first
	// failed rank (they normally self-abort via the failure detector with
	// a much better error than a kill). Processes still alive at a
	// supervisor kill are victims, not suspects: their silence was
	// imposed, not evidence.
	type exitEv struct {
		proc int
		err  error
	}
	exits := make(chan exitEv, procs)
	for p, c := range cmds {
		go func(p int, c *exec.Cmd) { exits <- exitEv{proc: p, err: c.Wait()} }(p, c)
	}
	exited := make([]bool, procs)
	victim := make([]bool, procs)
	killAll := func() {
		for p, c := range cmds {
			if !exited[p] {
				victim[p] = true
			}
			c.Process.Kill()
		}
	}
	var timedOut, graceKilled bool
	watchdog := time.NewTimer(o.Timeout)
	defer watchdog.Stop()
	var grace <-chan time.Time
	for got := 0; got < procs; {
		select {
		case ev := <-exits:
			waitErrs[ev.proc] = ev.err
			exited[ev.proc] = true
			got++
			if ev.err != nil && grace == nil && got < procs {
				grace = time.After(o.DetectGrace)
			}
		case <-watchdog.C:
			timedOut = true
			killAll()
		case <-grace:
			graceKilled = true
			killAll()
			grace = nil
		}
	}

	// Decode each host's stdout: one NodeResult line per hosted rank,
	// routed by the reported Rank field.
	results = make([]NodeResult, o.Nodes)
	seen := make([]bool, o.Nodes)
	parsed := make([]int, procs)
	for r := range results {
		results[r].Rank = r
	}
	for p := 0; p < procs; p++ {
		dec := json.NewDecoder(bytes.NewReader(outs[p].Bytes()))
		for {
			var res NodeResult
			if err := dec.Decode(&res); err != nil {
				break
			}
			if res.Rank >= 0 && res.Rank < o.Nodes && !seen[res.Rank] {
				results[res.Rank] = res
				seen[res.Rank] = true
				parsed[p]++
			}
		}
	}

	var errs []string
	var stopped bool
	stoppedProc := make([]bool, procs)
	for p := 0; p < procs; p++ {
		exitCode := 0
		var ee *exec.ExitError
		if errors.As(waitErrs[p], &ee) {
			exitCode = ee.ExitCode()
		}
		switch {
		case exitCode == StopExitCode:
			stopped = true
			stoppedProc[p] = true
			errs = append(errs, fmt.Sprintf("host %d: stopped by operator (exit %d)", p, StopExitCode))
		case exitCode == faultinject.KillExitCode:
			suspects = append(suspects, p)
		case waitErrs[p] != nil && !victim[p] && parsed[p] == 0:
			// Died without managing to report anything — root-cause
			// behavior, unlike peers that self-abort with a NodeResult.
			suspects = append(suspects, p)
		}
	}
	for r := 0; r < o.Nodes; r++ {
		p := hosts.Owner(r)
		if seen[r] {
			if results[r].Err != "" {
				errs = append(errs, fmt.Sprintf("rank %d: %s", r, results[r].Err))
			}
			continue
		}
		if stoppedProc[p] {
			continue // the stop message already covers this host
		}
		detail := strings.TrimSpace(outs[p].String())
		if len(detail) > 200 {
			detail = detail[:200] + "..."
		}
		errs = append(errs, fmt.Sprintf("rank %d: no result (host %d exit: %v; stdout: %q)", r, p, waitErrs[p], detail))
	}
	if timedOut {
		errs = append([]string{fmt.Sprintf("run exceeded %v and was killed", o.Timeout)}, errs...)
	}
	if graceKilled {
		errs = append(errs, fmt.Sprintf("supervisor killed surviving ranks %v after the first rank failed", o.DetectGrace))
	}
	if len(errs) > 0 {
		if stopped {
			return results, suspects, fmt.Errorf("dist: %w:\n  %s", ErrOperatorStop, strings.Join(errs, "\n  "))
		}
		return results, suspects, fmt.Errorf("dist: launch failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return results, suspects, nil
}
