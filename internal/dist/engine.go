// Package dist is the distributed execution subsystem: it runs a PPM
// program as N real OS processes — one per modeled node — talking over
// TCP. The Engine implements core.DistEngine (remote reads, phase-commit
// delta exchange, abort propagation) and mp.Endpoint (node-level message
// passing for the collectives), so the exact program and collective
// algorithms that run under the simulator run unchanged over sockets.
//
// Wire-level bundling happens in the per-peer writer goroutine: every
// frame queued while a send is in flight — fine-grained messages, read
// requests and replies, commit-delta chunks — coalesces into a single
// TCP write of up to BundleBytes. VPs keep computing while the writer
// ships, which is the overlap the paper's bundling layer exists for.
package dist

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppm/internal/cluster"
	"ppm/internal/core"
	"ppm/internal/faultinject"
	"ppm/internal/mp"
	"ppm/internal/rng"
	"ppm/internal/wire"
)

// Config describes one process's place in the mesh.
type Config struct {
	// Rank and Nodes identify this process; ranks are dense in [0, Nodes).
	Rank  int
	Nodes int
	// RendezvousDir is a shared directory through which the processes
	// exchange their listen addresses (each rank publishes
	// node-<rank>.addr). The usual choice for localhost launches.
	RendezvousDir string
	// Peers gives every rank's listen address explicitly, bypassing the
	// rendezvous. Peers[Rank] is this process's listen address.
	Peers []string
	// ListenAddr is the address to listen on when using the rendezvous
	// (default "127.0.0.1:0").
	ListenAddr string
	// BundleBytes caps the bytes coalesced into one TCP write (default
	// 8192, matching core's modeled bundle size).
	BundleBytes int
	// BundleAdaptive replaces the fixed cap with the adaptive controller
	// (see bundler.go): critical-path frames flush immediately and the
	// cap grows under sustained bulk throughput, BundleBytes remaining
	// the floor.
	BundleAdaptive bool
	// Codec is the commit-stream codec this rank prefers to send with;
	// each link falls back to raw unless the peer advertises support
	// (negotiated in the Hello handshake, see wire.Negotiate).
	Codec wire.Codec
	// FlushStagger, when positive, paces the start of TCP writes across
	// this rank's per-peer writers so they do not burst into the NIC in
	// lockstep at phase boundaries; each flush waits for a slot on a
	// shared clock with this gap. Zero disables pacing.
	FlushStagger time.Duration
	// ConnectTimeout bounds rendezvous plus mesh establishment (default
	// 30s).
	ConnectTimeout time.Duration
	// RunID tags this launch. The rendezvous publishes it in the address
	// files and readers ignore files from a different launch, so a retried
	// run can reuse the rendezvous dir without dialing dead addresses.
	// Empty accepts any file (hand-started fleets).
	RunID string
	// HeartbeatInterval is how often an otherwise-idle link carries a
	// Ping probe (default 500ms; negative disables the detector).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a peer may stay completely silent
	// before it is declared dead (default 5s; negative disables).
	HeartbeatTimeout time.Duration
	// OpTimeout bounds one remote operation: a remote read's reply, or
	// the wait for the slowest peer's commit stream (default 60s;
	// negative disables).
	OpTimeout time.Duration
	// DrainTimeout bounds the orderly bye exchange in Close — how long a
	// surviving rank waits for peers to say goodbye before cutting the
	// links (default 10s, the value previously hardcoded).
	DrainTimeout time.Duration
	// Faults, when non-nil, injects the plan's faults under this rank's
	// wire seams. Test/chaos use only.
	Faults *faultinject.Plan
}

func (c Config) withDefaults() (Config, error) {
	if c.Nodes <= 0 {
		return c, fmt.Errorf("dist: Nodes = %d, need at least 1", c.Nodes)
	}
	if c.Rank < 0 || c.Rank >= c.Nodes {
		return c, fmt.Errorf("dist: Rank = %d out of [0, %d)", c.Rank, c.Nodes)
	}
	if len(c.Peers) > 0 && len(c.Peers) != c.Nodes {
		return c, fmt.Errorf("dist: %d peer addresses for %d nodes", len(c.Peers), c.Nodes)
	}
	if len(c.Peers) == 0 && c.RendezvousDir == "" && c.Nodes > 1 {
		return c, fmt.Errorf("dist: need RendezvousDir or Peers to find the other %d nodes", c.Nodes-1)
	}
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.BundleBytes <= 0 {
		c.BundleBytes = 8192
	}
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = 30 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 60 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c, nil
}

// outFrame is one queued wire frame awaiting the writer's next batch.
type outFrame struct {
	kind    byte
	payload []byte
}

// kindStop is an in-process sentinel (never a wire kind, which start at
// 1) telling a writer goroutine to flush and exit. The out channel is
// never closed, so stray late enqueues from racing goroutines are
// harmless instead of panics.
const kindStop = byte(0)

type peer struct {
	id   int
	conn net.Conn
	br   *bufio.Reader
	out  chan outFrame
	// sendCodec/recvCodec are the handshake-negotiated commit-stream
	// codecs for the two directions of this link (immutable after
	// Connect). Core consults them through CommitCodec/PeerCommitCodec.
	sendCodec wire.Codec
	recvCodec wire.Codec
	// sawBye is set by the peer's reader goroutine when the peer
	// announces orderly shutdown: a subsequent EOF (and silence) is then
	// expected, not a failure. Read by the heartbeat checker too.
	sawBye atomic.Bool
	// lastRecv/lastSent (unix nanos) drive the failure detector: probe
	// when the link has been idle outbound, declare the peer dead when
	// nothing — traffic or pong — has arrived for HeartbeatTimeout.
	lastRecv atomic.Int64
	lastSent atomic.Int64
}

// tryEnqueue queues a frame without blocking (pongs, abort notices,
// heartbeat probes): if the writer is saturated the frame is dropped,
// which is fine for traffic that is retried or best-effort.
func (p *peer) tryEnqueue(f outFrame) bool {
	select {
	case p.out <- f:
		p.lastSent.Store(time.Now().UnixNano())
		return true
	default:
		return false
	}
}

// serveReq is a peer's remote read awaiting the server goroutine.
type serveReq struct {
	dst, array, lo, hi int
	id                 uint64
}

// Engine is one process's connection mesh. It is created by Connect,
// passed to core.RunDist, and closed after the run.
type Engine struct {
	rank     int
	nodes    int
	bundle   int
	adaptive bool
	codec    wire.Codec // preferred send codec, before per-link negotiation
	pace     *pacer     // nil unless FlushStagger > 0

	hbInterval   time.Duration
	hbTimeout    time.Duration
	opTimeout    time.Duration
	drainTimeout time.Duration
	faults       *faultinject.Plan

	// Engine-side wire counters (see core.WireStats); written by the
	// per-peer writers and Fetch, read whole by WireStats.
	wsFrames   atomic.Int64
	wsFlushes  atomic.Int64
	wsForced   atomic.Int64
	wsBytes    atomic.Int64
	wsReadReqs atomic.Int64

	// curOp names the operation currently blocked on the mesh (one of
	// possibly several — VPs fetch concurrently), purely to make detector
	// errors precise. Best-effort by design.
	curOp atomic.Value // string

	hbStop chan struct{}
	hbWg   sync.WaitGroup

	ln    net.Listener
	peers []*peer // peers[rank] == nil

	mail   mailbox
	commit commitPlane

	reqSeq atomic.Uint64
	pendMu sync.Mutex
	pend   map[uint64]chan []byte

	serveCh chan serveReq
	// server is installed by core.RunDist — once per run, so on a
	// reused engine it is replaced between jobs. serverMu orders the
	// swap against in-flight serves; serverOnce closes serverReady on
	// the first installation (the serve loop starts then and never
	// stops between jobs).
	serverMu    sync.RWMutex
	server      func(array, lo, hi int) ([]byte, error)
	serverOnce  sync.Once
	serverReady chan struct{}

	byeCh chan int // peer ids that announced orderly shutdown

	fatalOnce sync.Once
	fatalMu   sync.Mutex
	fatal     error
	fatalCh   chan struct{}

	closing atomic.Bool
	done    chan struct{}
	sendWg  sync.WaitGroup // writer goroutines
	wg      sync.WaitGroup // reader + server goroutines
}

// Connect establishes the full mesh: listen, publish/learn addresses,
// dial every lower rank and accept every higher one (the ordering makes
// sequential establishment deadlock-free), handshake each link, and
// start the per-peer reader and writer goroutines.
func Connect(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		rank:         cfg.Rank,
		nodes:        cfg.Nodes,
		bundle:       cfg.BundleBytes,
		adaptive:     cfg.BundleAdaptive,
		codec:        cfg.Codec,
		pace:         newPacer(cfg.FlushStagger),
		hbInterval:   cfg.HeartbeatInterval,
		hbTimeout:    cfg.HeartbeatTimeout,
		opTimeout:    cfg.OpTimeout,
		drainTimeout: cfg.DrainTimeout,
		faults:       cfg.Faults,
		peers:        make([]*peer, cfg.Nodes),
		pend:         make(map[uint64]chan []byte),
		serveCh:      make(chan serveReq, 1024),
		serverReady:  make(chan struct{}),
		byeCh:        make(chan int, cfg.Nodes),
		fatalCh:      make(chan struct{}),
		done:         make(chan struct{}),
	}
	e.mail.init()
	e.commit.init(cfg.Nodes)
	if cfg.Nodes == 1 {
		e.startServer()
		return e, nil
	}

	deadline := time.Now().Add(cfg.ConnectTimeout)
	listenAddr := cfg.ListenAddr
	if len(cfg.Peers) > 0 {
		listenAddr = cfg.Peers[cfg.Rank]
	}
	e.ln, err = net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d listen: %w", cfg.Rank, err)
	}
	addrs := cfg.Peers
	if len(addrs) == 0 {
		addrs, err = rendezvous(cfg.RendezvousDir, cfg.RunID, cfg.Rank, cfg.Nodes, e.ln.Addr().String(), deadline)
		if err != nil {
			e.ln.Close()
			return nil, err
		}
	}

	fail := func(err error) (*Engine, error) {
		e.ln.Close()
		for _, p := range e.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		return nil, err
	}
	// Dial every lower rank (they are already accepting: rank 0 dials
	// nobody, and by induction rank j < rank finished its dials first).
	for j := 0; j < cfg.Rank; j++ {
		p, err := dialPeer(addrs[j], cfg.Rank, j, cfg.Nodes, deadline, cfg.Codec)
		if err != nil {
			return fail(err)
		}
		e.peers[j] = p
	}
	// Accept every higher rank.
	for n := cfg.Rank + 1; n < cfg.Nodes; n++ {
		if d, ok := e.ln.(*net.TCPListener); ok {
			d.SetDeadline(deadline)
		}
		conn, err := e.ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("dist: rank %d accept: %w", cfg.Rank, err))
		}
		p, err := acceptPeer(conn, cfg.Rank, cfg.Nodes, deadline, cfg.Codec)
		if err != nil {
			conn.Close()
			return fail(err)
		}
		if e.peers[p.id] != nil {
			conn.Close()
			return fail(fmt.Errorf("dist: rank %d: duplicate connection from rank %d", cfg.Rank, p.id))
		}
		e.peers[p.id] = p
	}

	now := time.Now().UnixNano()
	for _, p := range e.peers {
		if p == nil {
			continue
		}
		p.conn.SetDeadline(time.Time{})
		p.lastRecv.Store(now)
		p.lastSent.Store(now)
		e.sendWg.Add(1)
		go e.writeLoop(p)
		e.wg.Add(1)
		go e.readLoop(p)
	}
	if e.hbInterval > 0 && e.hbTimeout > 0 {
		e.hbStop = make(chan struct{})
		e.hbWg.Add(1)
		go e.heartbeatLoop()
	}
	e.startServer()
	return e, nil
}

func (e *Engine) startServer() {
	e.wg.Add(1)
	go e.serveLoop()
}

// rendezvous publishes this rank's address in dir and polls until every
// rank's file is present. Address files carry the launch's run-id on
// their first line; files tagged with a different run-id are leftovers
// from a previous launch and are ignored, so a retried launch can reuse
// the directory without dialing dead addresses. An empty run-id accepts
// anything (hand-started fleets).
func rendezvous(dir, runID string, rank, nodes int, addr string, deadline time.Time) ([]string, error) {
	tmp := filepath.Join(dir, fmt.Sprintf(".node-%d.addr.tmp", rank))
	if err := os.WriteFile(tmp, []byte(runID+"\n"+addr), 0o644); err != nil {
		return nil, fmt.Errorf("dist: rank %d rendezvous: %w", rank, err)
	}
	final := filepath.Join(dir, fmt.Sprintf("node-%d.addr", rank))
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("dist: rank %d rendezvous: %w", rank, err)
	}
	addrs := make([]string, nodes)
	addrs[rank] = addr
	bo := newBackoff(uint64(rank)*131 + 17)
	for {
		missing := -1
		for n := 0; n < nodes; n++ {
			if addrs[n] != "" {
				continue
			}
			a, ok := readAddrFile(filepath.Join(dir, fmt.Sprintf("node-%d.addr", n)), runID)
			if !ok {
				missing = n
				continue
			}
			addrs[n] = a
		}
		if missing < 0 {
			return addrs, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: rank %d rendezvous: timed out waiting for rank %d in %s", rank, missing, dir)
		}
		time.Sleep(bo.next())
	}
}

// readAddrFile loads one rendezvous file, rejecting files published by a
// different launch (stale run-id) and the pre-run-id legacy format when
// a run-id is expected.
func readAddrFile(path, runID string) (string, bool) {
	b, err := os.ReadFile(path)
	if err != nil || len(b) == 0 {
		return "", false
	}
	id, addr, ok := strings.Cut(string(b), "\n")
	if !ok {
		// Legacy single-line file (address only, no run-id tag).
		if runID != "" {
			return "", false
		}
		return string(b), true
	}
	if runID != "" && id != runID {
		return "", false
	}
	if addr == "" {
		return "", false
	}
	return addr, true
}

// backoff is the exponential-backoff-with-jitter schedule shared by the
// rendezvous poll and the dial retry loop: 1ms doubling to a ~1s cap,
// each wait jittered ±50% from a per-caller deterministic stream so an
// N-node storm neither spins the CPU nor thunders in lockstep.
type backoff struct {
	wait time.Duration
	r    *rng.RNG
}

func newBackoff(salt uint64) *backoff {
	return &backoff{wait: time.Millisecond, r: rng.New(0x9e3779b97f4a7c15).Split(salt + 1)}
}

func (b *backoff) next() time.Duration {
	d := b.wait/2 + time.Duration(b.r.Float64()*float64(b.wait))
	if b.wait < time.Second {
		b.wait *= 2
		if b.wait > time.Second {
			b.wait = time.Second
		}
	}
	return d
}

func dialPeer(addr string, self, target, nodes int, deadline time.Time, prefer wire.Codec) (*peer, error) {
	var conn net.Conn
	var err error
	bo := newBackoff(uint64(self)<<16 | uint64(target))
	for {
		conn, err = net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: rank %d dial rank %d (%s): %w", self, target, addr, err)
		}
		time.Sleep(bo.next())
	}
	conn.SetDeadline(deadline)
	hello := wire.EncodeHello(wire.Hello{Rank: self, Nodes: nodes, LittleEndian: wire.NativeLittleEndian(),
		Caps: wire.SupportedCaps, Prefer: prefer})
	if _, err := conn.Write(wire.AppendFrame(nil, wire.KindHello, hello)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d hello to rank %d: %w", self, target, err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	kind, payload, err := wire.ReadFrame(br)
	if err != nil || kind != wire.KindHelloAck {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d handshake with rank %d: kind=%d err=%v", self, target, kind, err)
	}
	h, err := wire.DecodeHello(payload, nodes)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d handshake with rank %d: %w", self, target, err)
	}
	if h.Rank != target {
		conn.Close()
		return nil, fmt.Errorf("dist: rank %d dialed rank %d but reached rank %d", self, target, h.Rank)
	}
	return newPeer(target, conn, br, prefer, h), nil
}

func acceptPeer(conn net.Conn, self, nodes int, deadline time.Time, prefer wire.Codec) (*peer, error) {
	conn.SetDeadline(deadline)
	br := bufio.NewReaderSize(conn, 64<<10)
	kind, payload, err := wire.ReadFrame(br)
	if err != nil || kind != wire.KindHello {
		return nil, fmt.Errorf("dist: rank %d accept handshake: kind=%d err=%v", self, kind, err)
	}
	h, err := wire.DecodeHello(payload, nodes)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d accept handshake: %w", self, err)
	}
	if h.Rank <= self || h.Rank >= nodes {
		return nil, fmt.Errorf("dist: rank %d accepted unexpected rank %d", self, h.Rank)
	}
	ack := wire.EncodeHello(wire.Hello{Rank: self, Nodes: nodes, LittleEndian: wire.NativeLittleEndian(),
		Caps: wire.SupportedCaps, Prefer: prefer})
	if _, err := conn.Write(wire.AppendFrame(nil, wire.KindHelloAck, ack)); err != nil {
		return nil, fmt.Errorf("dist: rank %d hello-ack to rank %d: %w", self, h.Rank, err)
	}
	return newPeer(h.Rank, conn, br, prefer, h), nil
}

// newPeer builds the peer record, resolving the link's codecs from the
// local preference and the peer's Hello. Both ends run the same
// Negotiate on the same two inputs (each side's prefer, the other's
// caps), so sender and receiver agree without an extra round trip.
func newPeer(id int, conn net.Conn, br *bufio.Reader, prefer wire.Codec, h wire.Hello) *peer {
	return &peer{
		id:        id,
		conn:      conn,
		br:        br,
		out:       make(chan outFrame, 1024),
		sendCodec: wire.Negotiate(prefer, h.Caps),
		recvCodec: wire.Negotiate(h.Prefer, wire.SupportedCaps),
	}
}

// --- engine-side fatal handling -----------------------------------------

func (e *Engine) setFatal(err error) {
	e.fatalOnce.Do(func() {
		e.fatalMu.Lock()
		e.fatal = err
		e.fatalMu.Unlock()
		close(e.fatalCh)
		e.mail.kill()
		e.commit.kill()
	})
}

func (e *Engine) fatalErr() error {
	e.fatalMu.Lock()
	defer e.fatalMu.Unlock()
	if e.fatal == nil {
		return fmt.Errorf("dist: rank %d: engine shut down", e.rank)
	}
	return e.fatal
}

// --- failure detector ---------------------------------------------------

// setOp records (and its returned func clears) the mesh operation this
// rank is currently blocked on, so detector errors can name it.
func (e *Engine) setOp(op string) func() {
	e.curOp.Store(op)
	return func() { e.curOp.Store("") }
}

func (e *Engine) currentOp() string {
	if s, _ := e.curOp.Load().(string); s != "" {
		return s
	}
	return "local compute (no wire op in flight)"
}

// heartbeatLoop is the failure detector: it probes links that have been
// idle outbound for HeartbeatInterval and declares a peer dead when
// nothing at all has arrived from it for HeartbeatTimeout. Any inbound
// frame counts as life, so probes only flow on otherwise-quiet links
// (long pure-compute phases). A dead peer's connection is closed to
// unblock its reader and writer goroutines.
func (e *Engine) heartbeatLoop() {
	defer e.hbWg.Done()
	tick := e.hbInterval / 2
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-e.hbStop:
			return
		case <-e.fatalCh:
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		for _, p := range e.peers {
			if p == nil || p.sawBye.Load() {
				continue
			}
			silent := time.Duration(now - p.lastRecv.Load())
			if silent > e.hbTimeout {
				e.setFatal(fmt.Errorf("dist: rank %d: rank %d unresponsive for %v (heartbeat timeout %v) during %s",
					e.rank, p.id, silent.Round(time.Millisecond), e.hbTimeout, e.currentOp()))
				p.conn.Close()
				continue
			}
			if time.Duration(now-p.lastSent.Load()) >= e.hbInterval {
				p.tryEnqueue(outFrame{kind: wire.KindPing})
			}
		}
	}
}

// --- per-peer goroutines ------------------------------------------------

// writeLoop ships queued frames, coalescing everything already waiting
// into one buffered write: the wire-level bundling. The bundler decides
// the coalescing cap and which frames cut a bundle short (with adaptive
// bundling off it reproduces the fixed BundleBytes drain exactly), and
// the engine's pacer — when flush staggering is on — spaces the actual
// TCP writes across this rank's writers. The loop exits on the kindStop
// sentinel (the out channel is never closed).
// The fault-injection seam sits here, under the bundling layer and
// after core's codec transcode, so an injected drop/dup/truncation
// affects exactly one post-codec wire frame.
func (e *Engine) writeLoop(p *peer) {
	defer e.sendWg.Done()
	bw := bufio.NewWriterSize(p.conn, 64<<10)
	bu := newBundler(e.bundle, e.adaptive)
	var buf []byte
	dead := false
	flush := func(forced bool) {
		if dead || len(buf) == 0 {
			buf = buf[:0]
			return
		}
		e.pace.wait()
		n := len(buf)
		_, err := bw.Write(buf)
		if err == nil {
			err = bw.Flush()
		}
		buf = buf[:0]
		if err != nil {
			dead = true
			if !e.closing.Load() {
				e.setFatal(fmt.Errorf("dist: rank %d: write to rank %d: %w", e.rank, p.id, err))
			}
			return
		}
		e.wsFlushes.Add(1)
		e.wsBytes.Add(int64(n))
		if forced {
			e.wsForced.Add(1)
		}
	}
	appendFrame := func(f outFrame) {
		e.wsFrames.Add(1)
		if e.faults != nil {
			if e.faults.Blackholed(p.id) {
				return
			}
			fault := e.faults.Frame(p.id, f.kind)
			if fault.Delay > 0 {
				flush(false)
				time.Sleep(fault.Delay)
			}
			if fault.Drop {
				return
			}
			if fault.Trunc && len(f.payload) > 0 {
				// Re-framed truncation: the shortened payload gets a
				// correct length prefix, so the receiver sees a cleanly
				// corrupted frame (decode error) rather than a desynced
				// byte stream that hangs in ReadFrame forever.
				f.payload = f.payload[:len(f.payload)/2]
			}
			if fault.Dup {
				buf = wire.AppendFrame(buf, f.kind, f.payload)
			}
		}
		buf = wire.AppendFrame(buf, f.kind, f.payload)
	}
	for {
		f := <-p.out
		if f.kind == kindStop {
			flush(false)
			return
		}
		appendFrame(f)
		urgent := bu.urgent(f.kind)
		hitCap := false
	drain:
		for !urgent && len(buf) < bu.limit() {
			select {
			case f2 := <-p.out:
				if f2.kind == kindStop {
					bu.note(len(buf), false)
					flush(false)
					return
				}
				appendFrame(f2)
				urgent = bu.urgent(f2.kind)
			default:
				break drain
			}
		}
		hitCap = !urgent && len(buf) >= bu.limit()
		bu.note(len(buf), hitCap)
		flush(urgent)
	}
}

// readLoop demultiplexes one peer's frames to the mailbox, the read
// server, the pending-fetch table, and the commit plane.
func (e *Engine) readLoop(p *peer) {
	defer e.wg.Done()
	for {
		kind, payload, err := wire.ReadFrame(p.br)
		if err != nil {
			// EOF after the peer's bye (or once we are closing ourselves)
			// is the orderly end of the link, not a failure.
			if !p.sawBye.Load() && !e.closing.Load() {
				e.setFatal(fmt.Errorf("dist: rank %d: read from rank %d (during %s): %w", e.rank, p.id, e.currentOp(), err))
			}
			return
		}
		p.lastRecv.Store(time.Now().UnixNano())
		switch kind {
		case wire.KindMsg:
			tag, data, hasData, err := wire.DecodeMsg(payload)
			if err != nil {
				e.protocolFatal(p.id, err)
				return
			}
			e.mail.put(mailMsg{src: p.id, tag: int(tag), data: data, hasData: hasData})
		case wire.KindReadReq:
			id, array, lo, hi, err := wire.DecodeReadReq(payload)
			if err != nil {
				e.protocolFatal(p.id, err)
				return
			}
			select {
			case e.serveCh <- serveReq{dst: p.id, array: array, lo: lo, hi: hi, id: id}:
			case <-e.fatalCh:
				return
			case <-e.done:
				return
			}
		case wire.KindReadResp:
			id, data, err := wire.DecodeReadResp(payload)
			if err != nil {
				e.protocolFatal(p.id, err)
				return
			}
			e.pendMu.Lock()
			ch := e.pend[id]
			delete(e.pend, id)
			e.pendMu.Unlock()
			if ch != nil {
				ch <- data
			}
		case wire.KindCommitData:
			phase, chunk, err := wire.DecodeCommitData(payload)
			if err != nil {
				e.protocolFatal(p.id, err)
				return
			}
			e.commit.addData(p.id, phase, chunk)
		case wire.KindCommitEnd:
			phase, err := wire.DecodeCommitEnd(payload)
			if err != nil {
				e.protocolFatal(p.id, err)
				return
			}
			e.commit.end(p.id, phase)
		case wire.KindAbort:
			e.setFatal(fmt.Errorf("dist: rank %d aborted: %s", p.id, wire.DecodeAbort(payload)))
			return
		case wire.KindPing:
			p.tryEnqueue(outFrame{kind: wire.KindPong})
		case wire.KindPong:
			// lastRecv above is the whole point.
		case wire.KindBye:
			p.sawBye.Store(true)
			e.byeCh <- p.id // capacity nodes: never blocks
		default:
			e.protocolFatal(p.id, fmt.Errorf("unknown frame kind %d", kind))
			return
		}
	}
}

func (e *Engine) protocolFatal(from int, err error) {
	e.setFatal(fmt.Errorf("dist: rank %d: protocol error from rank %d: %w", e.rank, from, err))
}

// serveLoop answers peers' remote reads once core has installed the read
// server. Serving runs outside the reader goroutines so a request that
// blocks on the memory lock never stalls frame demultiplexing.
func (e *Engine) serveLoop() {
	defer e.wg.Done()
	select {
	case <-e.serverReady:
	case <-e.fatalCh:
		return
	case <-e.done:
		return
	}
	for {
		select {
		case req := <-e.serveCh:
			e.serverMu.RLock()
			server := e.server
			e.serverMu.RUnlock()
			data, err := server(req.array, req.lo, req.hi)
			if err != nil {
				e.Abort(fmt.Errorf("dist: rank %d: serving read for rank %d: %w", e.rank, req.dst, err))
				return
			}
			if e.send(req.dst, wire.KindReadResp, wire.EncodeReadResp(req.id, data)) != nil {
				return
			}
		case <-e.fatalCh:
			return
		case <-e.done:
			return
		}
	}
}

// send queues one frame for dst's writer.
func (e *Engine) send(dst int, kind byte, payload []byte) error {
	if e.closing.Load() {
		return fmt.Errorf("dist: rank %d: send to rank %d after close", e.rank, dst)
	}
	p := e.peers[dst]
	select {
	case p.out <- outFrame{kind: kind, payload: payload}:
		p.lastSent.Store(time.Now().UnixNano())
		return nil
	case <-e.fatalCh:
		return e.fatalErr()
	}
}

// --- mp.Endpoint --------------------------------------------------------

// Rank implements mp.Endpoint and core.DistEngine.
func (e *Engine) Rank() int { return e.rank }

// Procs implements mp.Endpoint.
func (e *Engine) Procs() int { return e.nodes }

// Nodes implements core.DistEngine.
func (e *Engine) Nodes() int { return e.nodes }

// Endpoint implements core.DistEngine.
func (e *Engine) Endpoint() mp.Endpoint { return e }

// Send implements mp.Endpoint: marshal the typed payload to native-order
// bytes and queue it (self-sends skip the wire). The mp API is
// panic-on-failure, so transport death surfaces as core.AbortError.
func (e *Engine) Send(dst, tag int, payload any, bytes int) {
	data, isNil := mp.MarshalPayload(payload)
	if dst == e.rank {
		e.mail.put(mailMsg{src: e.rank, tag: tag, data: data, hasData: !isNil})
		return
	}
	if err := e.send(dst, wire.KindMsg, wire.EncodeMsg(int64(tag), data, !isNil)); err != nil {
		panic(core.AbortError{Err: err})
	}
}

// Recv implements mp.Endpoint: block until a matching message arrives,
// bounded by OpTimeout like every other remote wait — a peer that lost
// the message (or its mind) must not park this rank until the watchdog.
func (e *Engine) Recv(src, tag int) *cluster.Message {
	defer e.setOp(fmt.Sprintf("node-level recv (src=%d, tag=%d)", src, tag))()
	m, ok, timedOut := e.mail.recv(src, tag, e.opTimeout)
	if timedOut {
		panic(core.AbortError{Err: fmt.Errorf("dist: rank %d: recv (src=%d, tag=%d) timed out after %v",
			e.rank, src, tag, e.opTimeout)})
	}
	if !ok {
		panic(core.AbortError{Err: e.fatalErr()})
	}
	msg := &cluster.Message{Src: m.src, Tag: m.tag, Bytes: len(m.data)}
	if m.hasData {
		msg.Payload = mp.RawPayload(m.data)
	}
	return msg
}

// ChargeFlops implements mp.Endpoint; real runs do not model time.
func (e *Engine) ChargeFlops(n int64) {}

// --- core.DistEngine ----------------------------------------------------

// SetReadServer implements core.DistEngine. Each RunDist installs its
// own server (a closure over that run's state); on a reused engine the
// new installation replaces the old. The swap cannot race a peer's read
// of the previous job's data: fetches only happen inside open global
// phases, every phase open starts with a full allgather, and all ranks
// install their new server before entering the next run's first phase.
func (e *Engine) SetReadServer(fn func(array, lo, hi int) ([]byte, error)) {
	e.serverMu.Lock()
	e.server = fn
	e.serverMu.Unlock()
	e.serverOnce.Do(func() { close(e.serverReady) })
}

// CommitCodec implements core.DistEngine: the handshake-negotiated
// codec for commit streams this rank sends to dst (raw for self and
// unconnected ranks).
func (e *Engine) CommitCodec(dst int) wire.Codec {
	if dst >= 0 && dst < len(e.peers) && e.peers[dst] != nil {
		return e.peers[dst].sendCodec
	}
	return wire.CodecRaw
}

// PeerCommitCodec implements core.DistEngine: the codec src's commit
// streams arrive in.
func (e *Engine) PeerCommitCodec(src int) wire.Codec {
	if src >= 0 && src < len(e.peers) && e.peers[src] != nil {
		return e.peers[src].recvCodec
	}
	return wire.CodecRaw
}

// WireStats implements core.DistEngine: the engine-side transport
// counters accumulated so far (core adds its own fields on top).
func (e *Engine) WireStats() core.WireStats {
	return core.WireStats{
		FramesOut:     e.wsFrames.Load(),
		Flushes:       e.wsFlushes.Load(),
		ForcedFlushes: e.wsForced.Load(),
		BytesOnWire:   e.wsBytes.Load(),
		ReadReqsSent:  e.wsReadReqs.Load(),
	}
}

// Fetch implements core.DistEngine: one synchronous remote read,
// bounded by OpTimeout so a wedged owner cannot park the fleet until
// the launcher's watchdog.
func (e *Engine) Fetch(array, owner, lo, hi int) ([]byte, error) {
	defer e.setOp(fmt.Sprintf("remote read of array %d [%d:%d) from rank %d", array, lo, hi, owner))()
	id := e.reqSeq.Add(1)
	ch := make(chan []byte, 1)
	e.pendMu.Lock()
	e.pend[id] = ch
	e.pendMu.Unlock()
	drop := func() {
		e.pendMu.Lock()
		delete(e.pend, id)
		e.pendMu.Unlock()
	}
	if err := e.send(owner, wire.KindReadReq, wire.EncodeReadReq(id, array, lo, hi)); err != nil {
		drop()
		return nil, err
	}
	e.wsReadReqs.Add(1)
	var timeoutCh <-chan time.Time
	if e.opTimeout > 0 {
		tm := time.NewTimer(e.opTimeout)
		defer tm.Stop()
		timeoutCh = tm.C
	}
	select {
	case data := <-ch:
		return data, nil
	case <-e.fatalCh:
		drop()
		return nil, e.fatalErr()
	case <-timeoutCh:
		drop()
		return nil, fmt.Errorf("dist: rank %d: remote read of array %d [%d:%d) from rank %d timed out after %v",
			e.rank, array, lo, hi, owner, e.opTimeout)
	}
}

// CommitExchange implements core.DistEngine: chunk each destination's
// delta stream into bundle-sized frames, mark each stream's end, and
// block until every peer's complete stream for this phase is in (bounded
// by OpTimeout, naming the missing ranks on expiry).
//
// The phase boundary is also where phase-targeted faults trigger: the
// injection plan learns the current phase here, and kill/sever items
// fire on entry — a rank dying exactly at the Nth boundary is the
// checkpoint/restart test's scenario.
func (e *Engine) CommitExchange(phase int64, outgoing [][]byte) ([][]byte, error) {
	if e.faults != nil {
		e.faults.SetPhase(phase)
		if e.faults.KillNow(phase) {
			fmt.Fprintf(os.Stderr, "ppm-node[%d]: fault injection: killing rank at commit of phase %d\n", e.rank, phase)
			os.Exit(faultinject.KillExitCode)
		}
		for _, victim := range e.faults.SeverNow(phase) {
			for _, p := range e.peers {
				if p != nil && (victim == -1 || p.id == victim) {
					p.conn.Close()
				}
			}
		}
	}
	defer e.setOp(fmt.Sprintf("commit exchange for phase %d", phase))()
	for dst := 0; dst < e.nodes; dst++ {
		if dst == e.rank {
			continue
		}
		stream := outgoing[dst]
		for off := 0; off < len(stream); off += e.bundle {
			end := off + e.bundle
			if end > len(stream) {
				end = len(stream)
			}
			if err := e.send(dst, wire.KindCommitData, wire.EncodeCommitData(phase, stream[off:end])); err != nil {
				return nil, err
			}
		}
		if err := e.send(dst, wire.KindCommitEnd, wire.EncodeCommitEnd(phase)); err != nil {
			return nil, err
		}
	}
	in, err := e.commit.wait(phase, e.rank, e.opTimeout)
	if errors.Is(err, errCommitPlaneDead) {
		return nil, e.fatalErr()
	}
	return in, err
}

// Abort implements core.DistEngine: best-effort notification of every
// peer, then local shutdown of all blocking operations.
func (e *Engine) Abort(err error) {
	if err == nil {
		return
	}
	payload := wire.EncodeAbort(err.Error())
	for _, p := range e.peers {
		if p == nil {
			continue
		}
		p.tryEnqueue(outFrame{kind: wire.KindAbort, payload: payload})
	}
	e.setFatal(err)
}

// StartJobDeadline arms a whole-job wall-clock deadline: if it expires
// before the returned cancel function runs, the engine aborts the fleet
// with an error naming this rank, the deadline, and the mesh operation
// in flight (the same curOp attribution the failure detector uses), so
// a wedged or overlong job tears down with a diagnosis instead of
// hanging until an operator kills it. d <= 0 arms nothing.
func (e *Engine) StartJobDeadline(d time.Duration) (cancel func()) {
	if d <= 0 {
		return func() {}
	}
	t := time.AfterFunc(d, func() {
		e.Abort(fmt.Errorf("dist: rank %d: job deadline %v exceeded during %s", e.rank, d, e.currentOp()))
	})
	return func() { t.Stop() }
}

// Close tears the mesh down: announce shutdown to every peer, flush,
// wait for every peer's own announcement, then close the links and join
// all goroutines. Call it after core.RunDist returns.
//
// The bye exchange is what makes close races benign: no connection drops
// until both ends (and, transitively, every rank) have said goodbye, so
// a fast rank's EOF can never cut off frames a slow rank still has in
// flight to a third one.
func (e *Engine) Close() error {
	if !e.closing.CompareAndSwap(false, true) {
		return nil
	}
	if e.hbStop != nil {
		close(e.hbStop) // no probes (or false deaths) during the bye exchange
		e.hbWg.Wait()
	}
	nPeers := 0
	for _, p := range e.peers {
		if p == nil {
			continue
		}
		nPeers++
		p.out <- outFrame{kind: wire.KindBye} // writers drain until the stop sentinel, so this cannot block
		p.out <- outFrame{kind: kindStop}
	}
	e.sendWg.Wait() // writers drain their queues and flush
	timeout := time.After(e.drainTimeout)
byes:
	for got := 0; got < nPeers; got++ {
		select {
		case <-e.byeCh:
		case <-e.fatalCh:
			break byes // mesh already failed; nothing more to wait for
		case <-timeout:
			break byes
		}
	}
	close(e.done)
	if e.ln != nil {
		e.ln.Close()
	}
	for _, p := range e.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	e.setFatal(fmt.Errorf("dist: rank %d: engine closed", e.rank))
	e.wg.Wait()
	return nil
}

// --- mailbox ------------------------------------------------------------

type mailMsg struct {
	src, tag int
	data     []byte
	hasData  bool
}

// mailbox holds undelivered node-level messages in arrival order; recv
// matches exactly like the simulator's (first arrival satisfying the
// src/tag pattern, wildcards allowed), so per-(src, tag) streams are
// non-overtaking over TCP just as they are in the simulator.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []mailMsg
	dead bool
}

func (mb *mailbox) init() { mb.cond = sync.NewCond(&mb.mu) }

func (mb *mailbox) put(m mailMsg) {
	mb.mu.Lock()
	mb.q = append(mb.q, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// recv blocks until a matching message arrives, the mailbox dies, or the
// timeout expires (0 disables it, matching the other op deadlines). The
// timed-out flag is per call: an expiry wakes only its own waiter, not
// every Recv in flight.
func (mb *mailbox) recv(src, tag int, timeout time.Duration) (mailMsg, bool, bool) {
	timedOut := false
	if timeout > 0 {
		tm := time.AfterFunc(timeout, func() {
			mb.mu.Lock()
			timedOut = true
			mb.mu.Unlock()
			mb.cond.Broadcast()
		})
		defer tm.Stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i := range mb.q {
			m := mb.q[i]
			if (src == cluster.AnySource || src == m.src) && (tag == cluster.AnyTag || tag == m.tag) {
				mb.q = append(mb.q[:i], mb.q[i+1:]...)
				return m, true, false
			}
		}
		if mb.dead {
			return mailMsg{}, false, false
		}
		if timedOut {
			return mailMsg{}, false, true
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) kill() {
	mb.mu.Lock()
	mb.dead = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// --- commit plane -------------------------------------------------------

// errCommitPlaneDead wakes a commit wait whose mesh died; CommitExchange
// replaces it with the engine's actual fatal error so the report names
// the dead rank and operation, not just "a peer was lost".
var errCommitPlaneDead = errors.New("dist: commit plane killed")

// commitPlane assembles peers' phase-commit delta streams. Phases are
// keyed by sequence number so a fast peer's next-phase chunks can arrive
// before this node finishes waiting on the current phase.
type commitPlane struct {
	mu     sync.Mutex
	cond   *sync.Cond
	nodes  int
	phases map[int64]*commitBuf
	dead   bool
}

type commitBuf struct {
	data  [][]byte
	done  []bool
	nDone int
}

func (cp *commitPlane) init(nodes int) {
	cp.cond = sync.NewCond(&cp.mu)
	cp.nodes = nodes
	cp.phases = make(map[int64]*commitBuf)
}

func (cp *commitPlane) buf(phase int64) *commitBuf {
	b := cp.phases[phase]
	if b == nil {
		b = &commitBuf{data: make([][]byte, cp.nodes), done: make([]bool, cp.nodes)}
		cp.phases[phase] = b
	}
	return b
}

func (cp *commitPlane) addData(src int, phase int64, chunk []byte) {
	cp.mu.Lock()
	b := cp.buf(phase)
	b.data[src] = append(b.data[src], chunk...)
	cp.mu.Unlock()
}

func (cp *commitPlane) end(src int, phase int64) {
	cp.mu.Lock()
	b := cp.buf(phase)
	if !b.done[src] {
		b.done[src] = true
		b.nDone++
	}
	cp.mu.Unlock()
	cp.cond.Broadcast()
}

func (cp *commitPlane) wait(phase int64, self int, timeout time.Duration) ([][]byte, error) {
	timedOut := false
	if timeout > 0 {
		tm := time.AfterFunc(timeout, func() {
			cp.mu.Lock()
			timedOut = true
			cp.mu.Unlock()
			cp.cond.Broadcast()
		})
		defer tm.Stop()
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	for {
		b := cp.buf(phase)
		if b.nDone == cp.nodes-1 {
			delete(cp.phases, phase)
			return b.data, nil
		}
		if cp.dead {
			// The engine's fatal error (a heartbeat verdict, an EOF, a
			// peer abort) is the real diagnosis; the caller substitutes
			// it for this sentinel.
			return nil, errCommitPlaneDead
		}
		if timedOut {
			var missing []int
			for n := 0; n < cp.nodes; n++ {
				if n != self && !b.done[n] {
					missing = append(missing, n)
				}
			}
			return nil, fmt.Errorf("dist: rank %d: commit of phase %d timed out after %v waiting for rank(s) %v",
				self, phase, timeout, missing)
		}
		cp.cond.Wait()
	}
}

func (cp *commitPlane) kill() {
	cp.mu.Lock()
	cp.dead = true
	cp.mu.Unlock()
	cp.cond.Broadcast()
}
