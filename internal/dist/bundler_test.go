package dist

import (
	"sync"
	"testing"
	"time"

	"ppm/internal/wire"
)

// The bundler is pure policy, so its contract is tested exhaustively in
// isolation: legacy mode is inert, urgency splits traffic by frame
// kind, and the cap grows under sustained saturation and decays back.

func TestBundlerLegacyModeIsInert(t *testing.T) {
	b := newBundler(4096, false)
	kinds := []byte{wire.KindMsg, wire.KindReadReq, wire.KindReadResp,
		wire.KindCommitData, wire.KindCommitEnd, wire.KindAbort, wire.KindPing}
	for _, k := range kinds {
		if b.urgent(k) {
			t.Errorf("legacy bundler marks kind %d urgent", k)
		}
	}
	for i := 0; i < 10; i++ {
		b.note(4096, true)
	}
	if b.limit() != 4096 {
		t.Errorf("legacy limit moved to %d", b.limit())
	}
}

func TestBundlerUrgencySplitsByKind(t *testing.T) {
	b := newBundler(4096, true)
	if b.urgent(wire.KindCommitData) {
		t.Error("bulk commit chunks must not cut bundles short")
	}
	for _, k := range []byte{wire.KindMsg, wire.KindReadReq, wire.KindReadResp,
		wire.KindCommitEnd, wire.KindAbort, wire.KindPing, wire.KindPong, wire.KindBye} {
		if !b.urgent(k) {
			t.Errorf("critical-path kind %d not urgent", k)
		}
	}
}

func TestBundlerGrowsUnderSaturationAndDecays(t *testing.T) {
	base := 4096
	b := newBundler(base, true)
	if b.limit() != base {
		t.Fatalf("initial limit %d, want %d", b.limit(), base)
	}
	// One cap-hitting flush is not a trend; two are.
	b.note(base, true)
	if b.limit() != base {
		t.Fatalf("limit grew after a single full flush")
	}
	b.note(base, true)
	if b.limit() != 2*base {
		t.Fatalf("limit = %d after sustained saturation, want %d", b.limit(), 2*base)
	}
	// Saturation all the way up hits the ceiling and stays there.
	for i := 0; i < 64; i++ {
		b.note(b.limit(), true)
	}
	if b.limit() != bundleGrowthCap(base) {
		t.Fatalf("limit = %d at saturation, want ceiling %d", b.limit(), bundleGrowthCap(base))
	}
	// Small flushes decay the cap back toward (and not below) the base.
	for i := 0; i < 64; i++ {
		b.note(0, false)
	}
	if b.limit() != base {
		t.Fatalf("limit = %d after decay, want base %d", b.limit(), base)
	}
	// A near-full flush that simply ran the queue dry is not shrink
	// evidence; only clearly undersized bundles are.
	b.note(base, true)
	b.note(base, true)
	grown := b.limit()
	b.note(grown-1, false)
	if b.limit() != grown {
		t.Fatalf("limit shrank on a near-full flush")
	}
}

func TestBundleGrowthCapBounds(t *testing.T) {
	if c := bundleGrowthCap(4096); c != 4096*32 {
		t.Errorf("cap(4096) = %d", c)
	}
	if c := bundleGrowthCap(1 << 19); c != 1<<20 {
		t.Errorf("cap(512KiB) = %d, want 1MiB", c)
	}
	if c := bundleGrowthCap(1 << 21); c != 1<<21 {
		t.Errorf("cap(2MiB) = %d, must never sit below base", c)
	}
}

func TestPacerSpacesSlots(t *testing.T) {
	const gap = 5 * time.Millisecond
	p := newPacer(gap)
	const n = 8
	// Per-wakeup timestamps are scheduler noise on a loaded host, but the
	// slot clock itself is exact: n flushes reserve slots gap apart, so
	// the last one cannot return before (n-1)*gap has passed — whether
	// the callers arrive concurrently or back-to-back.
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.wait()
		}()
	}
	wg.Wait()
	if d, want := time.Since(start), (n-1)*gap; d < want {
		t.Fatalf("%d concurrent flushes finished in %v, want >= %v", n, d, want)
	}
	if newPacer(0) != nil {
		t.Error("zero stagger must disable the pacer")
	}
	var nilPacer *pacer
	nilPacer.wait() // must be a no-op, not a panic
}
