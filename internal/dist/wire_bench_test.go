package dist

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"ppm/internal/core"
	"ppm/internal/rng"
	"ppm/internal/wire"
)

// TestWireBenchArtifact regenerates BENCH_wire.json, the checked-in
// snapshot of what the wire-path tuning knobs buy on a commit-heavy
// workload: bytes on the wire, frame and flush counts, and host
// wall-clock for the fixed-bundle baseline against adaptive bundling,
// the delta commit codec, and everything combined with a flush stagger.
// Gated behind an environment variable so routine test runs stay fast:
//
//	BENCH_WIRE=1 go test -run TestWireBenchArtifact -v ./internal/dist/
//
// The workload is benchScatterProg — the CG-transpose shape: thousands
// of near-monotone single-element Add runs into a neighbor node's
// partition per phase, where per-run header overhead dominates the raw
// commit grammar. That is precisely the stream the delta codec targets,
// and the artifact asserts it shrinks by at least 1.5x. Wall-clock over
// loopback TCP mostly measures syscall count, not a NIC, so the bytes
// and flush counters are the durable signal here.
func TestWireBenchArtifact(t *testing.T) {
	if os.Getenv("BENCH_WIRE") == "" {
		t.Skip("set BENCH_WIRE=1 (or run `make bench-wire`) to regenerate BENCH_wire.json")
	}

	const (
		benchN     = 1 << 18
		benchVPs   = 4
		benchIters = 3
		benchAdds  = 2000
	)
	// benchScatterProg is scatterProg rescaled for measurement: a large
	// index space (multi-byte raw offsets), strides >= 2 (every Add is
	// its own run), and a small remote read to keep the fetch path warm.
	prog := func(rt *core.Runtime) {
		g := core.AllocGlobal[float64](rt, "acc", benchN)
		for it := 0; it < benchIters; it++ {
			iter := it
			rt.Do(benchVPs, func(vp *core.VP) {
				vp.GlobalPhase(func() {
					nodes := vp.Nodes()
					tgt := (vp.Node() + 1) % nodes
					rlo, rhi := core.ChunkRange(benchN, nodes, tgt)
					buf := make([]float64, 256)
					g.ReadBlock(vp, rlo, rlo+len(buf), buf)
					var sum float64
					for _, v := range buf {
						sum += v
					}
					r := rng.New(11).Split(uint64(iter*64 + vp.GlobalRank()))
					i := rlo + vp.NodeRank()*(rhi-rlo)/benchVPs
					for j := 0; j < benchAdds && i < rhi; j++ {
						g.Add(vp, i, sum*1e-9+r.NormFloat64())
						i += 2 + int(r.Uint64()%4)
					}
				})
			})
		}
	}

	type counters struct {
		BytesOnWire    int64 `json:"bytes_on_wire"`
		FramesOut      int64 `json:"frames_out"`
		Flushes        int64 `json:"flushes"`
		ForcedFlushes  int64 `json:"forced_flushes"`
		ReadReqsSent   int64 `json:"read_reqs_sent"`
		ReadsCoalesced int64 `json:"reads_coalesced"`
		CommitBytesRaw int64 `json:"commit_bytes_raw"`
		CommitBytesEnc int64 `json:"commit_bytes_enc"`
	}
	type config struct {
		Name       string   `json:"name"`
		BestSec    float64  `json:"best_sec"`
		NsPerPhase float64  `json:"ns_per_phase"`
		Wire       counters `json:"wire"`
	}

	const nodes = 2
	measure := func(name string, mod func(cfg *Config)) config {
		var best float64
		var agg counters
		for rep := 0; rep < 3; rep++ { // best of 3 damps host noise
			stats := make([]core.NodeStats, nodes)
			start := time.Now()
			runMeshWith(t, nodes, func(_ int, cfg *Config) {
				if mod != nil {
					mod(cfg)
				}
			}, func(rank int, eng *Engine) error {
				rep, err := core.RunDist(core.Options{Nodes: nodes, CoresPerNode: 2}, eng, prog)
				if err != nil {
					return err
				}
				stats[rank] = rep.PerNode[rank]
				return nil
			})
			sec := time.Since(start).Seconds()
			if rep == 0 || sec < best {
				best = sec
				agg = counters{}
				for _, s := range stats {
					w := s.Wire
					agg.BytesOnWire += w.BytesOnWire
					agg.FramesOut += w.FramesOut
					agg.Flushes += w.Flushes
					agg.ForcedFlushes += w.ForcedFlushes
					agg.ReadReqsSent += w.ReadReqsSent
					agg.ReadsCoalesced += w.ReadsCoalesced
					agg.CommitBytesRaw += w.CommitBytesRaw
					agg.CommitBytesEnc += w.CommitBytesEnc
				}
			}
		}
		return config{
			Name:       name,
			BestSec:    best,
			NsPerPhase: best * 1e9 / benchIters,
			Wire:       agg,
		}
	}

	configs := []config{
		measure("fixed-raw", nil),
		measure("adaptive", func(cfg *Config) { cfg.BundleAdaptive = true }),
		measure("delta", func(cfg *Config) { cfg.Codec = wire.CodecDelta }),
		measure("adaptive-delta-staggered", func(cfg *Config) {
			cfg.BundleAdaptive = true
			cfg.Codec = wire.CodecDelta
			cfg.FlushStagger = 50 * time.Microsecond
		}),
	}

	var deltaRatio float64
	for _, c := range configs {
		if c.Wire.CommitBytesRaw == 0 {
			t.Fatalf("%s: workload produced no remote commit traffic", c.Name)
		}
		if c.Name == "delta" {
			deltaRatio = float64(c.Wire.CommitBytesRaw) / float64(c.Wire.CommitBytesEnc)
		}
	}
	if deltaRatio < 1.5 {
		t.Errorf("delta codec commit-stream reduction = %.2fx, want >= 1.5x", deltaRatio)
	}

	doc := struct {
		Note               string   `json:"note"`
		Go                 string   `json:"go"`
		HostCPUs           int      `json:"host_cpus"`
		Nodes              int      `json:"nodes"`
		Phases             int      `json:"phases"`
		AddsPerVP          int      `json:"adds_per_vp"`
		Configs            []config `json:"configs"`
		DeltaCommitRatio   float64  `json:"delta_commit_ratio"`
		SeriesBitIdentical bool     `json:"series_bit_identical"`
	}{
		Note: "Wire-path tuning on a commit-heavy CG-transpose scatter workload (2 loopback ppm nodes, " +
			"per-phase single-element Add runs into the neighbor's partition). bytes_on_wire/frames/flushes " +
			"are summed over both ranks at the per-peer writers; commit_bytes_raw vs commit_bytes_enc is the " +
			"commit stream before/after the negotiated codec. delta_commit_ratio is the raw/delta size ratio " +
			"(>= 1.5x enforced). Wall-clock over loopback measures syscalls rather than a NIC; every " +
			"configuration's outputs are bit-identical to the in-process simulator (see scatter_test.go).",
		Go:                 runtime.Version(),
		HostCPUs:           runtime.NumCPU(),
		Nodes:              nodes,
		Phases:             benchIters,
		AddsPerVP:          benchAdds,
		Configs:            configs,
		DeltaCommitRatio:   deltaRatio,
		SeriesBitIdentical: true,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_wire.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_wire.json: delta commit ratio %.2fx; baseline %.3fs, adaptive %.3fs, delta %.3fs",
		deltaRatio, configs[0].BestSec, configs[1].BestSec, configs[2].BestSec)
}
