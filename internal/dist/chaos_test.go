package dist

import (
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/jacobi"
)

// End-to-end fault tolerance over real processes: ppm-node fleets with
// injected faults, supervised by LaunchLocal. The two headline scenarios
// — kill-and-recover-from-checkpoint and partition-detected-fast — run in
// every test invocation; the full fault matrix is the `make chaos` job
// (PPM_CHAOS=1), since it forks a few dozen fleets.

// detectorArgs makes the failure detector and op deadlines fast enough
// for tests without changing any semantics.
var detectorArgs = []string{"-hb-interval", "100ms", "-hb-timeout", "2s", "-op-timeout", "5s"}

// TestSubprocessKillRecoveryJacobi is the ISSUE's acceptance scenario: a
// real rank process dies (os.Exit at the phase-5 commit boundary), the
// supervisor relaunches the fleet with -restore, the new fleet resumes
// from the last common checkpoint — and the final output and counters
// are bit-identical to a fault-free run.
func TestSubprocessKillRecoveryJacobi(t *testing.T) {
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 8}
	want, wrep, err := jacobi.RunPPM(distOpt(2), prm)
	if err != nil {
		t.Fatal(err)
	}

	restarts := 0
	results, err := LaunchLocal(LaunchOpts{
		Nodes:   2,
		NodeBin: nodeBin,
		NodeArgs: append([]string{"-app", "jacobi", "-cores", "2",
			"-jacobi-grid", "10x6x4", "-jacobi-sweeps", "8"}, detectorArgs...),
		Env:             []string{"PPM_FAULT=kill=1@phase:5"},
		MaxRestarts:     2,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 2,
		Stderr:          nopWriter{}, // the killed rank and its survivors complain on purpose
		OnRestart:       func(int, error) { restarts++ },
	})
	if err != nil {
		t.Fatalf("supervised launch did not recover: %v", err)
	}
	if restarts == 0 {
		t.Fatal("fleet succeeded without restarting — the kill fault never fired")
	}
	m, err := Merge(AppSpec{App: "jacobi", Jacobi: prm}, results)
	if err != nil {
		t.Fatal(err)
	}
	sameF64(t, "u (recovered run)", m.Jacobi, want)
	samePerNode(t, m.PerNode, wrep.PerNode)
}

// TestSubprocessPartitionAbortsFast partitions a real fleet mid-run and
// checks the failure detector — not the 120s launcher watchdog — is what
// ends it, with an error naming the unresponsive peer.
func TestSubprocessPartitionAbortsFast(t *testing.T) {
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	start := time.Now()
	_, err := LaunchLocal(LaunchOpts{
		Nodes:   2,
		NodeBin: nodeBin,
		NodeArgs: append([]string{"-app", "jacobi", "-cores", "2",
			"-jacobi-grid", "10x6x4", "-jacobi-sweeps", "8"}, detectorArgs...),
		Env:    []string{"PPM_FAULT=partition=0|1@phase:3"},
		Stderr: nopWriter{},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("partitioned fleet reported success")
	}
	if elapsed > 60*time.Second {
		t.Fatalf("partition took %v to surface — that is watchdog territory, not the detector", elapsed)
	}
	if !strings.Contains(err.Error(), "unresponsive") {
		t.Errorf("launch error does not carry the detector's diagnosis:\n%v", err)
	}
	if !strings.Contains(err.Error(), "rank") {
		t.Errorf("launch error does not name a rank:\n%v", err)
	}
}

// TestChaosMatrix is the seeded fault matrix behind `make chaos`
// (PPM_CHAOS=1): every fault class against two checkpoint-aware apps
// (jacobi, whose tag is the sweep count, and cg, whose tag is the
// iteration count — a kill recovery resumes both from the last common
// checkpoint). Benign faults (delay, dup) and recoverable ones (kill,
// and killhost once the supervisor rescales the dead host away) must
// end bit-identical to the simulator; lossy ones (drop, partition)
// must end in a clean, attributed error well before the watchdog.
func TestChaosMatrix(t *testing.T) {
	if os.Getenv("PPM_CHAOS") == "" {
		t.Skip("set PPM_CHAOS=1 (or run `make chaos`) for the full fault matrix")
	}
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	faults := []struct {
		name    string
		spec    string
		recover bool     // expect bit-identical completion (possibly via restart)
		rescale bool     // give the supervisor a per-rank budget and a floor below Nodes
		args    []string // extra per-node flags (wire tuning)
	}{
		{"delay", "seed=3; delay=0.2:2ms", true, false, nil},
		{"dup", "seed=5; dup=0.3", true, false, nil},
		{"drop", "seed=7; drop=0.4", false, false, nil},
		{"trunc", "seed=9; trunc=0.5", false, false, nil},
		{"partition", "partition=0|1@phase:2", false, false, nil},
		{"kill", "kill=1@phase:3", true, false, nil},
		// Permanent host death: the one-shot relaunch dies the same way,
		// so recovery REQUIRES the rescale path — both ranks finish on
		// the surviving host process.
		{"killhost-rescale", "killhost=1@phase:3", true, true, nil},
		{"killhost-early-rescale", "killhost=1@phase:1", true, true, nil},
		// Wire-tuning interactions: truncation hits post-codec frames, so
		// a delta-encoded fleet must fail just as cleanly (a corrupt
		// delta stream is a decode error, never a wrong answer); benign
		// faults under adaptive bundling must stay bit-identical.
		{"trunc-delta", "seed=9; trunc=0.5", false, false, []string{"-wire-codec", "delta"}},
		{"dup-delta", "seed=5; dup=0.3", true, false, []string{"-wire-codec", "delta"}},
		{"delay-adaptive", "seed=3; delay=0.2:2ms", true, false, []string{"-bundle-adaptive", "-flush-stagger", "100us"}},
		{"killhost-rescale-delta", "killhost=1@phase:3", true, true, []string{"-wire-codec", "delta"}},
	}
	for _, app := range []string{"jacobi", "cg"} {
		for _, f := range faults {
			t.Run(app+"/"+f.name, func(t *testing.T) {
				runChaosCase(t, app, f.spec, f.recover, f.rescale, f.args)
			})
		}
	}
}

func runChaosCase(t *testing.T, app, spec string, expectRecover, rescale bool, extraArgs []string) {
	t.Helper()
	opts := LaunchOpts{
		Nodes:   2,
		NodeBin: nodeBin,
		Env:     []string{"PPM_FAULT=" + spec},
		Stderr:  nopWriter{},
	}
	var appSpec AppSpec
	switch app {
	case "jacobi":
		prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 6}
		appSpec = AppSpec{App: "jacobi", Jacobi: prm}
		opts.NodeArgs = append([]string{"-app", "jacobi", "-cores", "2",
			"-jacobi-grid", "10x6x4", "-jacobi-sweeps", "6"}, detectorArgs...)
	case "cg":
		prm := cg.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 6}
		appSpec = AppSpec{App: "cg", CG: prm}
		opts.NodeArgs = append([]string{"-app", "cg", "-cores", "2",
			"-cg-grid", "8x8x8", "-cg-iters", "6"}, detectorArgs...)
	}
	opts.NodeArgs = append(opts.NodeArgs, extraArgs...)
	if expectRecover {
		opts.MaxRestarts = 2
		opts.CheckpointDir = t.TempDir()
		opts.CheckpointEvery = 2
	}
	if rescale {
		// A permanently dead host needs one more attempt (die, die
		// again, finish rescaled) and permission to shrink to one host
		// process carrying both ranks.
		opts.MaxRestarts = 3
		opts.PerRankRestarts = 2
		opts.MinNodes = 1
	}

	start := time.Now()
	results, err := LaunchLocal(opts)
	elapsed := time.Since(start)

	if !expectRecover {
		if err == nil {
			t.Fatalf("%s under %q reported success; expected a clean abort", app, spec)
		}
		if elapsed > 60*time.Second {
			t.Fatalf("abort took %v — the detector/deadlines did not fire", elapsed)
		}
		return
	}
	if err != nil {
		t.Fatalf("%s under %q did not recover: %v", app, spec, err)
	}
	m, err := Merge(appSpec, results)
	if err != nil {
		t.Fatal(err)
	}
	switch app {
	case "jacobi":
		want, wrep, err := jacobi.RunPPM(distOpt(2), appSpec.Jacobi)
		if err != nil {
			t.Fatal(err)
		}
		sameF64(t, "u", m.Jacobi, want)
		samePerNode(t, m.PerNode, wrep.PerNode)
	case "cg":
		want, wrep, err := cg.RunPPM(distOpt(2), appSpec.CG)
		if err != nil {
			t.Fatal(err)
		}
		if m.CG.Iters != want.Iters || math.Float64bits(m.CG.Residual) != math.Float64bits(want.Residual) {
			t.Fatalf("cg = (%d, %v), want (%d, %v)", m.CG.Iters, m.CG.Residual, want.Iters, want.Residual)
		}
		sameF64(t, "x", m.CG.X, want.X)
		samePerNode(t, m.PerNode, wrep.PerNode)
	}
}
