package dist

import (
	"fmt"
	"math"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/search"
	"ppm/internal/core"
)

// runMesh runs one process-worth of work per goroutine over a real
// loopback TCP mesh — the full engine stack (framing, bundling writer,
// read server, commit plane) inside one test process, so the race
// detector sees all of it at once.
func runMesh(t *testing.T, nodes int, body func(rank int, eng *Engine) error) {
	t.Helper()
	runMeshWith(t, nodes, nil, body)
}

// runMeshWith is runMesh with a per-rank Config hook (wire codec,
// adaptive bundling, flush stagger — the rank is already filled in);
// unlike runMeshCfg (fault_test.go) every rank error fails the test.
func runMeshWith(t *testing.T, nodes int, mod func(rank int, cfg *Config), body func(rank int, eng *Engine) error) {
	t.Helper()
	for r, err := range runMeshCfg(t, nodes, mod, body) {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// runAppMesh runs spec on a loopback mesh and merges the fragments.
func runAppMesh(t *testing.T, nodes int, opt core.Options, spec AppSpec) *Merged {
	t.Helper()
	results := make([]NodeResult, nodes)
	runMesh(t, nodes, func(rank int, eng *Engine) error {
		results[rank] = *RunApp(eng, opt, spec)
		return nil
	})
	m, err := Merge(spec, results)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sameF64(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v (%#x), want %v (%#x)", label, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// stripTimes zeroes the substrate-measurement fields — virtual time
// (which a real run does not model), the real-wire counters (which
// the simulator does not have, and which legitimately vary with codec
// and bundling configuration), and the plan-cache counters (host-side
// memoization bookkeeping that varies with restarts and cache setting),
// and the rescale counters (which record where a rank ran, not what it
// computed). Everything else must match exactly.
func stripTimes(s core.NodeStats) core.NodeStats {
	s.PhaseComputeTime, s.PhaseCommTime, s.PhaseApplyTime = 0, 0, 0
	s.Wire = core.WireStats{}
	s.PlanCache = core.PlanCacheStats{}
	s.Rescale = core.RescaleStats{}
	return s
}

func samePerNode(t *testing.T, got, want []core.NodeStats) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("per-node stats: %d nodes, want %d", len(got), len(want))
	}
	for n := range want {
		g, w := stripTimes(got[n]), stripTimes(want[n])
		if g != w {
			t.Errorf("node %d counters diverge:\n dist %+v\n  sim %+v", n, g, w)
		}
	}
}

func distOpt(nodes int) core.Options {
	return core.Options{Nodes: nodes, CoresPerNode: 2}
}

func TestDistCGMatchesSimulator(t *testing.T) {
	for _, nodes := range []int{2, 3} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			opt := distOpt(nodes)
			prm := cg.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 6}
			want, wrep, err := cg.RunPPM(opt, prm)
			if err != nil {
				t.Fatal(err)
			}
			m := runAppMesh(t, nodes, opt, AppSpec{App: "cg", CG: prm})
			if m.CG.Iters != want.Iters {
				t.Fatalf("iters = %d, want %d", m.CG.Iters, want.Iters)
			}
			if math.Float64bits(m.CG.Residual) != math.Float64bits(want.Residual) {
				t.Fatalf("residual = %v, want %v", m.CG.Residual, want.Residual)
			}
			sameF64(t, "x", m.CG.X, want.X)
			samePerNode(t, m.PerNode, wrep.PerNode)
		})
	}
}

func TestDistJacobiMatchesSimulator(t *testing.T) {
	opt := distOpt(2)
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 5}
	want, wrep, err := jacobi.RunPPM(opt, prm)
	if err != nil {
		t.Fatal(err)
	}
	m := runAppMesh(t, 2, opt, AppSpec{App: "jacobi", Jacobi: prm})
	sameF64(t, "u", m.Jacobi, want)
	samePerNode(t, m.PerNode, wrep.PerNode)
}

func TestDistCollocMatchesSimulator(t *testing.T) {
	opt := distOpt(3)
	prm := colloc.Params{Levels: 4, M0: 6, Delta: 2.5}
	want, wrep, err := colloc.RunPPM(opt, prm)
	if err != nil {
		t.Fatal(err)
	}
	m := runAppMesh(t, 3, opt, AppSpec{App: "colloc", Colloc: prm})
	if m.Colloc.N != want.N {
		t.Fatalf("N = %d, want %d", m.Colloc.N, want.N)
	}
	for i := range want.Rows {
		if len(m.Colloc.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("row %d: %d entries, want %d", i, len(m.Colloc.Rows[i]), len(want.Rows[i]))
		}
		for j, e := range want.Rows[i] {
			g := m.Colloc.Rows[i][j]
			if g.Col != e.Col || math.Float64bits(g.Val) != math.Float64bits(e.Val) {
				t.Fatalf("entry (%d,%d) = (%d,%v), want (%d,%v)", i, j, g.Col, g.Val, e.Col, e.Val)
			}
		}
	}
	samePerNode(t, m.PerNode, wrep.PerNode)
}

func TestDistNbodyMatchesSimulator(t *testing.T) {
	opt := distOpt(2)
	prm := nbody.Params{N: 64, Steps: 2, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 7}
	want, wrep, err := nbody.RunPPM(opt, prm)
	if err != nil {
		t.Fatal(err)
	}
	m := runAppMesh(t, 2, opt, AppSpec{App: "nbody", Nbody: prm})
	sameF64(t, "px", m.Nbody.PX, want.PX)
	sameF64(t, "py", m.Nbody.PY, want.PY)
	sameF64(t, "pz", m.Nbody.PZ, want.PZ)
	sameF64(t, "vx", m.Nbody.VX, want.VX)
	sameF64(t, "vy", m.Nbody.VY, want.VY)
	sameF64(t, "vz", m.Nbody.VZ, want.VZ)
	sameF64(t, "m", m.Nbody.M, want.M)
	samePerNode(t, m.PerNode, wrep.PerNode)
}

func TestDistSearchMatchesSimulator(t *testing.T) {
	opt := distOpt(2)
	prm := search.Params{N: 4096, K: 64, Seed: 7}
	want, wrep, err := search.RunPPM(opt, prm)
	if err != nil {
		t.Fatal(err)
	}
	m := runAppMesh(t, 2, opt, AppSpec{App: "search", Search: prm})
	for n := range want {
		if len(m.Search[n]) != len(want[n]) {
			t.Fatalf("node %d: %d ranks, want %d", n, len(m.Search[n]), len(want[n]))
		}
		for i := range want[n] {
			if m.Search[n][i] != want[n][i] {
				t.Fatalf("node %d rank[%d] = %d, want %d", n, i, m.Search[n][i], want[n][i])
			}
		}
	}
	samePerNode(t, m.PerNode, wrep.PerNode)
}

// TestDistAblationCounters checks the modeled bundling counters stay
// bit-identical to the simulator under the ablation flags too.
func TestDistAblationCounters(t *testing.T) {
	prm := cg.Params{NX: 6, NY: 6, NZ: 6, MaxIter: 3}
	for _, tc := range []struct {
		name string
		mod  func(*core.Options)
	}{
		{"no-bundling", func(o *core.Options) { o.NoBundling = true }},
		{"small-bundles", func(o *core.Options) { o.BundleBytes = 256 }},
		{"no-readcache", func(o *core.Options) { o.NoReadCache = true }},
		{"static", func(o *core.Options) { o.StaticSchedule = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := distOpt(2)
			tc.mod(&opt)
			_, wrep, err := cg.RunPPM(opt, prm)
			if err != nil {
				t.Fatal(err)
			}
			m := runAppMesh(t, 2, opt, AppSpec{App: "cg", CG: prm})
			samePerNode(t, m.PerNode, wrep.PerNode)
		})
	}
}

// TestDistEndpointMessaging drives the raw mp surface over the mesh:
// typed payloads, wildcard receives, and a token (nil-payload) barrier.
func TestDistEndpointMessaging(t *testing.T) {
	runMesh(t, 3, func(rank int, eng *Engine) error {
		if rank != 0 {
			eng.Send(0, 100+rank, []float64{float64(rank), 0.5}, 16)
		} else {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				m := eng.Recv(-1, -1) // AnySource, AnyTag
				if m.Tag != 100+m.Src {
					return fmt.Errorf("tag %d from src %d", m.Tag, m.Src)
				}
				if m.Bytes != 16 {
					return fmt.Errorf("payload %d bytes, want 16", m.Bytes)
				}
				seen[m.Src] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("missing senders: %v", seen)
			}
		}
		return nil
	})
}

func TestDistAbortPropagates(t *testing.T) {
	runMesh(t, 2, func(rank int, eng *Engine) error {
		if rank == 0 {
			eng.Abort(fmt.Errorf("synthetic failure"))
			return nil
		}
		// Rank 1 blocks on a message that never comes; the abort must
		// wake it with an error rather than hang.
		res := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					if ae, ok := r.(core.AbortError); ok {
						err = ae.Err
					} else {
						err = fmt.Errorf("unexpected panic: %v", r)
					}
				}
			}()
			eng.Recv(0, 42)
			return fmt.Errorf("recv returned without a message")
		}()
		if res == nil {
			return fmt.Errorf("expected abort error")
		}
		return nil
	})
}
