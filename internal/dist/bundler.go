package dist

import (
	"sync"
	"time"

	"ppm/internal/wire"
)

// bundler is the per-writer bundling policy: how many queued bytes one
// flush may coalesce, and which frames must not wait for coalescing at
// all. It is pure state-machine — no goroutines, channels, or clocks —
// so the policy is testable in isolation from the writer loop.
//
// Legacy mode (adaptive off) reproduces the fixed-cap behavior exactly:
// nothing is urgent and the limit never moves, so the writer drains
// until the configured BundleBytes or an empty queue, as before.
//
// Adaptive mode splits traffic by criticality. A frame whose receiver
// is (or is about to be) blocked on it — read requests and replies,
// node-level messages feeding collectives, commit-end markers, aborts —
// flushes immediately: bundling it buys bytes and costs a stalled peer.
// Bulk commit-delta chunks are the opposite: nobody reads them until
// the stream's end marker, so the cap grows geometrically while the
// writer keeps hitting it (a saturated phase boundary) and decays back
// once flushes come up short, keeping idle-period latency at the
// configured base.
type bundler struct {
	adaptive bool
	base     int // configured BundleBytes, the floor
	max      int // growth ceiling
	cur      int
	streak   int // consecutive cap-hitting flushes
}

// bundleGrowthCap bounds adaptive growth: 32x the base, at most 1 MiB.
func bundleGrowthCap(base int) int {
	c := base * 32
	if c > 1<<20 {
		c = 1 << 20
	}
	if c < base {
		c = base
	}
	return c
}

func newBundler(base int, adaptive bool) *bundler {
	return &bundler{adaptive: adaptive, base: base, max: bundleGrowthCap(base), cur: base}
}

// limit is the current coalescing cap in bytes.
func (b *bundler) limit() int { return b.cur }

// urgent reports whether kind must cut the current bundle short and go
// to the wire now. Always false in legacy mode.
func (b *bundler) urgent(kind byte) bool {
	if !b.adaptive {
		return false
	}
	// Everything except bulk commit-delta chunks sits on some consumer's
	// critical path. (CommitEnd is what the peer's commit wait actually
	// blocks on, so it stays urgent even though it trails the chunks.)
	return kind != wire.KindCommitData
}

// note records one completed drain: the bundle's size and whether the
// drain stopped because it hit the cap (a hungry writer) rather than
// running the queue dry.
func (b *bundler) note(n int, hitCap bool) {
	if !b.adaptive {
		return
	}
	if hitCap {
		b.streak++
		if b.streak >= 2 && b.cur < b.max {
			b.cur *= 2
			if b.cur > b.max {
				b.cur = b.max
			}
			b.streak = 0
		}
		return
	}
	b.streak = 0
	if n < b.cur/4 && b.cur > b.base {
		b.cur /= 2
		if b.cur < b.base {
			b.cur = b.base
		}
	}
}

// pacer spaces flush starts across one rank's per-peer writers so N
// writers do not burst into the NIC in lockstep at a phase boundary —
// the paper's "schedule communication to reduce NIC contention", in
// its simplest useful form. Each flush reserves the next free slot on
// a shared clock, slots gap apart; a nil pacer (stagger off, the
// default) costs nothing.
type pacer struct {
	gap  time.Duration
	mu   sync.Mutex
	next time.Time
}

func newPacer(gap time.Duration) *pacer {
	if gap <= 0 {
		return nil
	}
	return &pacer{gap: gap}
}

// wait blocks until this flush's reserved slot. Reservation is under
// the mutex; the sleep is outside it, so writers queue up slots without
// serializing their waits.
func (p *pacer) wait() {
	if p == nil {
		return
	}
	p.mu.Lock()
	now := time.Now()
	slot := p.next
	if slot.Before(now) {
		slot = now
	}
	p.next = slot.Add(p.gap)
	p.mu.Unlock()
	if d := slot.Sub(now); d > 0 {
		time.Sleep(d)
	}
}
