package dist

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
)

// nodeBin is the ppm-node binary TestMain builds once for the whole
// package; the subprocess equivalence tests fork it for real.
var nodeBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ppm-node-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin := filepath.Join(dir, "ppm-node")
	if out, err := exec.Command("go", "build", "-o", bin, "ppm/cmd/ppm-node").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building ppm-node: %v\n%s", err, out)
	} else {
		nodeBin = bin
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// launchApp forks nodes real ppm-node processes over loopback and merges
// their reported fragments — the full production path: process boundary,
// TCP mesh, JSON result transport.
func launchApp(t *testing.T, nodes int, spec AppSpec, args ...string) *Merged {
	t.Helper()
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	results, err := LaunchLocal(LaunchOpts{
		Nodes:    nodes,
		NodeBin:  nodeBin,
		NodeArgs: append([]string{"-app", spec.App, "-cores", "2"}, args...),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(spec, results)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubprocessCGMatchesSimulator(t *testing.T) {
	for _, nodes := range []int{2, 3} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			opt := distOpt(nodes)
			prm := cg.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 6}
			want, wrep, err := cg.RunPPM(opt, prm)
			if err != nil {
				t.Fatal(err)
			}
			m := launchApp(t, nodes, AppSpec{App: "cg", CG: prm},
				"-cg-grid", "8x8x8", "-cg-iters", "6")
			if m.CG.Iters != want.Iters {
				t.Fatalf("iters = %d, want %d", m.CG.Iters, want.Iters)
			}
			if math.Float64bits(m.CG.Residual) != math.Float64bits(want.Residual) {
				t.Fatalf("residual = %v, want %v", m.CG.Residual, want.Residual)
			}
			sameF64(t, "x", m.CG.X, want.X)
			samePerNode(t, m.PerNode, wrep.PerNode)
		})
	}
}

func TestSubprocessJacobiMatchesSimulator(t *testing.T) {
	opt := distOpt(2)
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 5}
	want, wrep, err := jacobi.RunPPM(opt, prm)
	if err != nil {
		t.Fatal(err)
	}
	m := launchApp(t, 2, AppSpec{App: "jacobi", Jacobi: prm},
		"-jacobi-grid", "10x6x4", "-jacobi-sweeps", "5")
	sameF64(t, "u", m.Jacobi, want)
	samePerNode(t, m.PerNode, wrep.PerNode)
}

func TestSubprocessCollocMatchesSimulator(t *testing.T) {
	opt := distOpt(2)
	prm := colloc.Params{Levels: 4, M0: 6, Delta: 3} // ppm-node hardwires Delta 3
	want, wrep, err := colloc.RunPPM(opt, prm)
	if err != nil {
		t.Fatal(err)
	}
	m := launchApp(t, 2, AppSpec{App: "colloc", Colloc: prm},
		"-colloc-levels", "4", "-colloc-m0", "6")
	if m.Colloc.N != want.N {
		t.Fatalf("N = %d, want %d", m.Colloc.N, want.N)
	}
	for i := range want.Rows {
		if len(m.Colloc.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("row %d: %d entries, want %d", i, len(m.Colloc.Rows[i]), len(want.Rows[i]))
		}
		for j, e := range want.Rows[i] {
			g := m.Colloc.Rows[i][j]
			if g.Col != e.Col || math.Float64bits(g.Val) != math.Float64bits(e.Val) {
				t.Fatalf("entry (%d,%d) = (%d,%v), want (%d,%v)", i, j, g.Col, g.Val, e.Col, e.Val)
			}
		}
	}
	samePerNode(t, m.PerNode, wrep.PerNode)
}

func TestSubprocessNbodyMatchesSimulator(t *testing.T) {
	opt := distOpt(2)
	prm := nbody.Params{N: 64, Steps: 2, Theta: 0.5, Eps: 0.05, DT: 0.01, Seed: 42}
	want, wrep, err := nbody.RunPPM(opt, prm)
	if err != nil {
		t.Fatal(err)
	}
	m := launchApp(t, 2, AppSpec{App: "nbody", Nbody: prm},
		"-bh-n", "64", "-bh-steps", "2")
	sameF64(t, "px", m.Nbody.PX, want.PX)
	sameF64(t, "py", m.Nbody.PY, want.PY)
	sameF64(t, "pz", m.Nbody.PZ, want.PZ)
	sameF64(t, "vx", m.Nbody.VX, want.VX)
	sameF64(t, "vy", m.Nbody.VY, want.VY)
	sameF64(t, "vz", m.Nbody.VZ, want.VZ)
	sameF64(t, "m", m.Nbody.M, want.M)
	samePerNode(t, m.PerNode, wrep.PerNode)
}

// TestSubprocessFailureSurfaces checks the launcher attributes a failing
// rank: a bogus app makes every node exit non-zero with Err set, and the
// launch error names each rank.
func TestSubprocessFailureSurfaces(t *testing.T) {
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	results, err := LaunchLocal(LaunchOpts{
		Nodes:    2,
		NodeBin:  nodeBin,
		NodeArgs: []string{"-app", "no-such-app"},
		Stderr:   nopWriter{}, // the forked nodes intentionally complain
	})
	if err == nil {
		t.Fatal("expected a launch error")
	}
	for r, res := range results {
		if res.Err == "" {
			t.Errorf("rank %d: error not reported in NodeResult", r)
		}
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
