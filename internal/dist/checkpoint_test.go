package dist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ppm/internal/apps/jacobi"
	"ppm/internal/core"
)

// The checkpoint tests run jacobi — the checkpoint-aware app: its tag is
// the completed-sweep count, so a restored run fast-forwards its loop —
// over the in-process mesh and hold recovered results to the same
// standard as everything else in this package: bit-identical to the
// fault-free simulator run, counters included.

func ckptOpt(nodes int, dir string, every int, restore bool) core.Options {
	opt := distOpt(nodes)
	opt.Checkpoint = &core.CheckpointConfig{Dir: dir, EveryPhases: every, Restore: restore}
	return opt
}

func TestCheckpointWriteAndRestoreFullRun(t *testing.T) {
	dir := t.TempDir()
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 4}
	want, wrep, err := jacobi.RunPPM(distOpt(2), prm)
	if err != nil {
		t.Fatal(err)
	}
	spec := AppSpec{App: "jacobi", Jacobi: prm}

	m := runAppMesh(t, 2, ckptOpt(2, dir, 1, false), spec)
	sameF64(t, "u (checkpointing run)", m.Jacobi, want)
	samePerNode(t, m.PerNode, wrep.PerNode)

	// EveryPhases=1 over 4 sweeps writes tags 1..4; pruning keeps the two
	// newest per rank.
	for rank := 0; rank < 2; rank++ {
		for _, tag := range []int64{3, 4} {
			if _, err := os.Stat(filepath.Join(dir, ckptName(rank, tag))); err != nil {
				t.Errorf("rank %d tag %d checkpoint missing: %v", rank, tag, err)
			}
		}
		if n := len(globCkpts(t, dir, rank)); n != 2 {
			t.Errorf("rank %d has %d checkpoint files, want 2 (pruned)", rank, n)
		}
	}

	// Restore at tag 4 == Sweeps: the loop body never runs again, yet the
	// output and every counter must match the fault-free run exactly.
	m2 := runAppMesh(t, 2, ckptOpt(2, dir, 1, true), spec)
	sameF64(t, "u (restored run)", m2.Jacobi, want)
	samePerNode(t, m2.PerNode, wrep.PerNode)
}

func TestCheckpointResumeMidway(t *testing.T) {
	dir := t.TempDir()
	// Phase 1: a 4-sweep run leaves checkpoints at tags 2 and 4.
	short := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 4}
	runAppMesh(t, 2, ckptOpt(2, dir, 2, false), AppSpec{App: "jacobi", Jacobi: short})

	// Phase 2: restore into a 6-sweep run — resume at sweep 4, run two
	// more. Must equal a fresh 6-sweep run bit-for-bit, counters too:
	// the checkpointed NodeStats make the composed run's counters the
	// fault-free run's counters.
	long := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 6}
	want, wrep, err := jacobi.RunPPM(distOpt(2), long)
	if err != nil {
		t.Fatal(err)
	}
	m := runAppMesh(t, 2, ckptOpt(2, dir, 2, true), AppSpec{App: "jacobi", Jacobi: long})
	sameF64(t, "u (resumed run)", m.Jacobi, want)
	samePerNode(t, m.PerNode, wrep.PerNode)
}

func TestRestoreWithoutCheckpointsRunsFromScratch(t *testing.T) {
	// Restore requested but the directory is empty (a rank died before
	// its first checkpoint, or a first launch with -restore): the
	// degenerate recovery is a from-scratch rerun, not a failure.
	dir := t.TempDir()
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 3}
	want, wrep, err := jacobi.RunPPM(distOpt(2), prm)
	if err != nil {
		t.Fatal(err)
	}
	m := runAppMesh(t, 2, ckptOpt(2, dir, 1, true), AppSpec{App: "jacobi", Jacobi: prm})
	sameF64(t, "u", m.Jacobi, want)
	samePerNode(t, m.PerNode, wrep.PerNode)
}

func TestRestoreFallsBackPastCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 4}
	want, wrep, err := jacobi.RunPPM(distOpt(2), prm)
	if err != nil {
		t.Fatal(err)
	}
	spec := AppSpec{App: "jacobi", Jacobi: prm}
	runAppMesh(t, 2, ckptOpt(2, dir, 1, false), spec)

	// Corrupt rank 0's newest checkpoint (tag 4) in the middle — the CRC
	// rejects it, so the fleet must agree on tag 3 (still whole on both
	// ranks) and replay sweep 4.
	path := filepath.Join(dir, ckptName(0, 4))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	m := runAppMesh(t, 2, ckptOpt(2, dir, 1, true), spec)
	sameF64(t, "u (fallback restore)", m.Jacobi, want)
	samePerNode(t, m.PerNode, wrep.PerNode)
}

func TestCheckpointNoopUnderSimulatorAndWhenUnconfigured(t *testing.T) {
	// The same checkpoint-aware program must run unchanged under the
	// simulator (gs.dist == nil) even with Checkpoint configured, and in
	// distributed mode with no Checkpoint at all.
	dir := t.TempDir()
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 3}
	opt := distOpt(2)
	opt.Checkpoint = &core.CheckpointConfig{Dir: dir, EveryPhases: 1, Restore: true}
	want, _, err := jacobi.RunPPM(distOpt(2), prm)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := jacobi.RunPPM(opt, prm) // simulator path
	if err != nil {
		t.Fatal(err)
	}
	sameF64(t, "u (simulator with checkpoint config)", got, want)
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Errorf("simulator run wrote %d checkpoint files; want none", len(ents))
	}
}

func ckptName(rank int, tag int64) string {
	return fmt.Sprintf("ckpt-r%d-t%d.ppmckpt", rank, tag)
}

func globCkpts(t *testing.T, dir string, rank int) []string {
	t.Helper()
	g, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("ckpt-r%d-t*.ppmckpt", rank)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRestoreFallsBackPastTruncatedCheckpoint(t *testing.T) {
	// A host that dies mid-write leaves a TRUNCATED file, not a
	// bit-flipped one — the header parse or the payload read fails before
	// any CRC runs. The fallback contract is the same: drop to the newest
	// tag whole on every rank and replay from there.
	dir := t.TempDir()
	prm := jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 4}
	want, wrep, err := jacobi.RunPPM(distOpt(2), prm)
	if err != nil {
		t.Fatal(err)
	}
	spec := AppSpec{App: "jacobi", Jacobi: prm}
	runAppMesh(t, 2, ckptOpt(2, dir, 1, false), spec)

	path := filepath.Join(dir, ckptName(1, 4))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/3); err != nil {
		t.Fatal(err)
	}

	m := runAppMesh(t, 2, ckptOpt(2, dir, 1, true), spec)
	sameF64(t, "u (truncation fallback)", m.Jacobi, want)
	samePerNode(t, m.PerNode, wrep.PerNode)
}
