package dist

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// A rank exiting with StopExitCode is an operator stop: the supervisor
// must report ErrOperatorStop and spend no restarts on it.
func TestSupervisorDoesNotRestartOperatorStop(t *testing.T) {
	dir := t.TempDir()
	fake := filepath.Join(dir, "fake-node")
	script := "#!/bin/sh\nexit 86\n"
	if err := os.WriteFile(fake, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	restarts := 0
	_, err := LaunchLocal(LaunchOpts{
		Nodes:       2,
		NodeBin:     fake,
		MaxRestarts: 3,
		Timeout:     30 * time.Second,
		Stderr:      io.Discard,
		OnRestart:   func(int, error) { restarts++ },
	})
	if !errors.Is(err, ErrOperatorStop) {
		t.Fatalf("err = %v, want ErrOperatorStop", err)
	}
	if restarts != 0 {
		t.Fatalf("supervisor restarted an operator-stopped fleet %d times", restarts)
	}
}

// An ordinary crash (non-stop exit code) must still consume the restart
// budget — the operator-stop carve-out must not swallow real failures.
func TestSupervisorStillRestartsCrashes(t *testing.T) {
	dir := t.TempDir()
	fake := filepath.Join(dir, "fake-node")
	script := "#!/bin/sh\nexit 3\n"
	if err := os.WriteFile(fake, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	restarts := 0
	_, err := LaunchLocal(LaunchOpts{
		Nodes:       2,
		NodeBin:     fake,
		MaxRestarts: 2,
		Timeout:     30 * time.Second,
		Stderr:      io.Discard,
		OnRestart:   func(int, error) { restarts++ },
	})
	if err == nil || errors.Is(err, ErrOperatorStop) {
		t.Fatalf("err = %v, want a plain launch failure", err)
	}
	if restarts != 2 {
		t.Fatalf("supervisor restarted %d times, want 2", restarts)
	}
}

// A job deadline on the engine aborts a too-slow distributed run with
// the rank and the in-flight operation named, and the launch surfaces
// that teardown as an error rather than hanging.
func TestJobDeadlineTearsDownFleet(t *testing.T) {
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	_, err := LaunchLocal(LaunchOpts{
		Nodes:   2,
		NodeBin: nodeBin,
		NodeArgs: []string{
			"-app", "cg", "-cores", "2",
			"-cg-grid", "24x24x48", "-cg-iters", "40",
			"-job-deadline", "30ms",
		},
		Timeout: 60 * time.Second,
		Stderr:  io.Discard,
	})
	if err == nil {
		t.Fatal("a 30ms deadline let a multi-second cg run pass")
	}
	if !strings.Contains(err.Error(), "job deadline") || !strings.Contains(err.Error(), "rank") {
		t.Fatalf("deadline error does not name the deadline and rank: %v", err)
	}
}
