package dist

import (
	"fmt"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/scatter"
	"ppm/internal/core"
	"ppm/internal/rng"
)

// Plan-cache equivalence on the distributed runtime. The cache's most
// dangerous surface is here: a warm phase open prefetches the recorded
// remote cover, and a warm commit replays recorded traffic deltas while
// the real commit bundles still flow. Every test in this file pins the
// same contract as the simulator tests: cache on and cache off must be
// bit-identical in outputs and in every modeled counter.

// planScatterSpec is the invalidation-heavy cousin of the scatter app:
// the remote read block's offset and width are re-drawn from a seeded
// stream every phase, so no iteration's plan survives to the next — on
// the distributed runtime each warm open prefetches a cover the commit
// then invalidates, exercising the cold-rebuild fallback under real
// wire traffic.
const (
	planScatterN     = 2400
	planScatterVPs   = 4
	planScatterIters = 4
)

func planScatterProg(out [][]float64) func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		g := core.AllocGlobal[float64](rt, "pc.acc", planScatterN)
		for it := 0; it < planScatterIters; it++ {
			iter := it
			rt.Do(planScatterVPs, func(vp *core.VP) {
				vp.GlobalPhase(func() {
					nodes := vp.Nodes()
					tgt := (vp.Node() + 1) % nodes
					rlo, rhi := core.ChunkRange(planScatterN, nodes, tgt)
					// Seeded, iteration-dependent read window: the shape
					// shifts every phase, defeating the recorded plan.
					rw := rng.New(11).Split(uint64(iter + 1))
					span := rhi - rlo
					width := 8 + int(rw.Uint64()%uint64(span/2))
					off := int(rw.Uint64() % uint64(span-width))
					buf := make([]float64, width)
					g.ReadBlock(vp, rlo+off, rlo+off+width, buf)
					var sum float64
					for _, v := range buf {
						sum += v
					}
					r := rng.New(17).Split(uint64(iter*512 + vp.GlobalRank()))
					for j, i := 0, rlo; j < 24 && i < rhi; j++ {
						g.Add(vp, i, sum*1e-6+r.NormFloat64())
						i += 1 + int(r.Uint64()%5)
					}
				})
			})
		}
		out[rt.NodeID()] = append([]float64(nil), g.Local(rt)...)
	}
}

// TestDistPlanCacheInvalidationScatter runs the shape-shifting seeded
// scatter-add at 2 and 3 distributed nodes, cache on and cache off, and
// against the simulator: all three must agree bit-for-bit.
func TestDistPlanCacheInvalidationScatter(t *testing.T) {
	for _, nodes := range []int{2, 3} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			runProg := func(noCache bool) ([][]float64, []core.NodeStats) {
				opt := distOpt(nodes)
				opt.NoPlanCache = noCache
				out := make([][]float64, nodes)
				stats := make([]core.NodeStats, nodes)
				runMesh(t, nodes, func(rank int, eng *Engine) error {
					rep, err := core.RunDist(opt, eng, planScatterProg(out))
					if err != nil {
						return err
					}
					stats[rank] = rep.PerNode[rank]
					return nil
				})
				return out, stats
			}
			simOut := make([][]float64, nodes)
			simRep, err := core.Run(distOpt(nodes), planScatterProg(simOut))
			if err != nil {
				t.Fatal(err)
			}
			on, onStats := runProg(false)
			off, offStats := runProg(true)
			for n := 0; n < nodes; n++ {
				sameF64(t, fmt.Sprintf("node %d cache-on vs sim", n), on[n], simOut[n])
				sameF64(t, fmt.Sprintf("node %d cache-off vs sim", n), off[n], simOut[n])
			}
			samePerNode(t, onStats, simRep.PerNode)
			samePerNode(t, offStats, simRep.PerNode)
		})
	}
}

// launchAppEnv is launchApp with extra environment entries for every
// forked node process.
func launchAppEnv(t *testing.T, nodes int, spec AppSpec, env []string, args ...string) *Merged {
	t.Helper()
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	results, err := LaunchLocal(LaunchOpts{
		Nodes:    nodes,
		NodeBin:  nodeBin,
		NodeArgs: append([]string{"-app", spec.App, "-cores", "2"}, args...),
		Env:      env,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(spec, results)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFleetPlanCacheEquivalence forks real ppm-node fleets with
// PPM_PLAN_CACHE=1 and PPM_PLAN_CACHE=0 and requires bit-identical
// application output and modeled counters from both, for a
// fetch-dominated app (cg), a halo app (jacobi), and the commit-plane
// scatter workload at three nodes.
func TestFleetPlanCacheEquivalence(t *testing.T) {
	t.Run("cg", func(t *testing.T) {
		spec := AppSpec{App: "cg", CG: cg.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 6}}
		args := []string{"-cg-grid", "8x8x8", "-cg-iters", "6"}
		on := launchAppEnv(t, 2, spec, []string{"PPM_PLAN_CACHE=1"}, args...)
		off := launchAppEnv(t, 2, spec, []string{"PPM_PLAN_CACHE=0"}, args...)
		if on.CG.Iters != off.CG.Iters ||
			fmt.Sprintf("%x", on.CG.Residual) != fmt.Sprintf("%x", off.CG.Residual) {
			t.Fatalf("cg fleets diverge: on iters=%d res=%v, off iters=%d res=%v",
				on.CG.Iters, on.CG.Residual, off.CG.Iters, off.CG.Residual)
		}
		sameF64(t, "x", on.CG.X, off.CG.X)
		samePerNode(t, on.PerNode, off.PerNode)
		var hits int64
		for _, s := range on.PerNode {
			hits += s.PlanCache.Hits
		}
		if hits == 0 {
			t.Error("cg: PPM_PLAN_CACHE=1 fleet reported no plan hits — the cache never engaged")
		}
	})
	t.Run("jacobi", func(t *testing.T) {
		spec := AppSpec{App: "jacobi", Jacobi: jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 5}}
		args := []string{"-jacobi-grid", "10x6x4", "-jacobi-sweeps", "5"}
		on := launchAppEnv(t, 2, spec, []string{"PPM_PLAN_CACHE=1"}, args...)
		off := launchAppEnv(t, 2, spec, []string{"PPM_PLAN_CACHE=0"}, args...)
		sameF64(t, "u", on.Jacobi, off.Jacobi)
		samePerNode(t, on.PerNode, off.PerNode)
	})
	t.Run("scatter", func(t *testing.T) {
		spec := AppSpec{App: "scatter", Scatter: scatter.Params{}.WithDefaults()}
		on := launchAppEnv(t, 3, spec, []string{"PPM_PLAN_CACHE=1"})
		off := launchAppEnv(t, 3, spec, []string{"PPM_PLAN_CACHE=0"})
		for n := range off.Scatter {
			sameF64(t, fmt.Sprintf("node %d partition", n), on.Scatter[n], off.Scatter[n])
		}
		samePerNode(t, on.PerNode, off.PerNode)
	})
}
