package dist

import (
	"fmt"
	"strings"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/colloc"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/nbody"
	"ppm/internal/apps/scatter"
	"ppm/internal/apps/search"
	"ppm/internal/core"
	"ppm/internal/partition"
)

// AppSpec names one of the repository's figure apps and its parameters.
// Only the parameter set matching App is consulted.
type AppSpec struct {
	App     string
	CG      cg.Params
	Colloc  colloc.Params
	Nbody   nbody.Params
	Jacobi  jacobi.Params
	Search  search.Params
	Scatter scatter.Params
}

// RowFrag is one matrix row owned by a node (colloc deals rows
// cyclically, so a fragment is a list of (index, row) pairs).
type RowFrag struct {
	I   int
	Row []colloc.Entry
}

// NbodyFrag is one node's block of the final particle state. M rides
// along on rank 0 only (every rank holds the full, identical masses).
type NbodyFrag struct {
	Lo, Hi                 int
	PX, PY, PZ, VX, VY, VZ []float64
	M                      []float64 `json:",omitempty"`
}

// NodeResult is what one node process reports back to the launcher: its
// runtime counters plus its fragment of the application result. It
// crosses the process boundary as JSON; float64 values survive that
// round trip bit-exactly (Go prints the shortest uniquely-decoding
// representation), which the equivalence tests rely on.
type NodeResult struct {
	Rank  int
	Err   string `json:",omitempty"`
	Stats core.NodeStats

	CG         *cg.Result `json:",omitempty"` // rank 0 only
	Jacobi     []float64  `json:",omitempty"` // rank 0 only
	CollocN    int        `json:",omitempty"`
	CollocRows []RowFrag  `json:",omitempty"`
	Nbody      *NbodyFrag `json:",omitempty"`
	Search     []int64    `json:",omitempty"`
	Scatter    []float64  `json:",omitempty"` // this rank's accumulator partition
}

// RunApp executes this process's share of the named app over the engine
// and packages the node-local result. It never returns an error: failures
// are carried in NodeResult.Err so the launcher can attribute them.
func RunApp(eng core.DistEngine, opt core.Options, spec AppSpec) *NodeResult {
	res := &NodeResult{Rank: eng.Rank()}
	runner := core.Runner(func(o core.Options, prog func(rt *core.Runtime)) (*core.Report, error) {
		return core.RunDist(o, eng, prog)
	})
	var rep *core.Report
	var err error
	switch spec.App {
	case "cg":
		var out *cg.Result
		out, rep, err = cg.RunPPMOn(runner, opt, spec.CG)
		if err == nil && eng.Rank() == 0 {
			res.CG = out
		}
	case "jacobi":
		var out []float64
		out, rep, err = jacobi.RunPPMOn(runner, opt, spec.Jacobi)
		if err == nil && eng.Rank() == 0 {
			res.Jacobi = out
		}
	case "colloc":
		var out *colloc.Matrix
		out, rep, err = colloc.RunPPMOn(runner, opt, spec.Colloc)
		if err == nil {
			res.CollocN = out.N
			for i := eng.Rank(); i < out.N; i += eng.Nodes() {
				res.CollocRows = append(res.CollocRows, RowFrag{I: i, Row: out.Rows[i]})
			}
		}
	case "nbody":
		var out *nbody.State
		out, rep, err = nbody.RunPPMOn(runner, opt, spec.Nbody)
		if err == nil {
			part := partition.NewBlock(spec.Nbody.N, eng.Nodes())
			lo, hi := part.Range(eng.Rank())
			f := &NbodyFrag{
				Lo: lo, Hi: hi,
				PX: out.PX[lo:hi], PY: out.PY[lo:hi], PZ: out.PZ[lo:hi],
				VX: out.VX[lo:hi], VY: out.VY[lo:hi], VZ: out.VZ[lo:hi],
			}
			if eng.Rank() == 0 {
				f.M = out.M
			}
			res.Nbody = f
		}
	case "search":
		var out [][]int64
		out, rep, err = search.RunPPMOn(runner, opt, spec.Search)
		if err == nil {
			res.Search = out[eng.Rank()]
		}
	case "scatter":
		var out [][]float64
		out, rep, err = scatter.RunPPMOn(runner, opt, spec.Scatter)
		if err == nil {
			res.Scatter = out[eng.Rank()]
		}
	default:
		err = fmt.Errorf("dist: unknown app %q (want cg, colloc, nbody, jacobi, search, or scatter)", spec.App)
	}
	if rep != nil && eng.Rank() < len(rep.PerNode) {
		res.Stats = rep.PerNode[eng.Rank()]
	}
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

// Merged is the reassembled cross-node result of a distributed run,
// shaped exactly like the corresponding RunPPM output.
type Merged struct {
	CG      *cg.Result
	Jacobi  []float64
	Colloc  *colloc.Matrix
	Nbody   *nbody.State
	Search  [][]int64
	Scatter [][]float64

	PerNode []core.NodeStats
	Totals  core.NodeStats
}

// Merge reassembles the per-node fragments into the full application
// result and aggregate statistics. Any node that reported an error makes
// Merge fail with every failing rank's message.
func Merge(spec AppSpec, results []NodeResult) (*Merged, error) {
	var errs []string
	for i, r := range results {
		if r.Rank != i {
			return nil, fmt.Errorf("dist: result %d is from rank %d — launcher order broken", i, r.Rank)
		}
		if r.Err != "" {
			errs = append(errs, fmt.Sprintf("rank %d: %s", r.Rank, r.Err))
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("dist: %d of %d nodes failed:\n  %s", len(errs), len(results), strings.Join(errs, "\n  "))
	}
	m := &Merged{PerNode: make([]core.NodeStats, len(results))}
	for i, r := range results {
		m.PerNode[i] = r.Stats
		m.Totals.Add(r.Stats)
	}
	switch spec.App {
	case "cg":
		m.CG = results[0].CG
		if m.CG == nil {
			return nil, fmt.Errorf("dist: rank 0 reported no cg result")
		}
	case "jacobi":
		m.Jacobi = results[0].Jacobi
		if m.Jacobi == nil {
			return nil, fmt.Errorf("dist: rank 0 reported no jacobi result")
		}
	case "colloc":
		n := results[0].CollocN
		out := &colloc.Matrix{N: n, Rows: make([][]colloc.Entry, n)}
		for _, r := range results {
			for _, f := range r.CollocRows {
				if f.I < 0 || f.I >= n {
					return nil, fmt.Errorf("dist: rank %d reported row %d of %d", r.Rank, f.I, n)
				}
				out.Rows[f.I] = f.Row
			}
		}
		m.Colloc = out
	case "nbody":
		n := spec.Nbody.N
		out := &nbody.State{
			PX: make([]float64, n), PY: make([]float64, n), PZ: make([]float64, n),
			VX: make([]float64, n), VY: make([]float64, n), VZ: make([]float64, n),
		}
		for _, r := range results {
			f := r.Nbody
			if f == nil || f.Hi-f.Lo != len(f.PX) {
				return nil, fmt.Errorf("dist: rank %d reported a malformed nbody fragment", r.Rank)
			}
			copy(out.PX[f.Lo:f.Hi], f.PX)
			copy(out.PY[f.Lo:f.Hi], f.PY)
			copy(out.PZ[f.Lo:f.Hi], f.PZ)
			copy(out.VX[f.Lo:f.Hi], f.VX)
			copy(out.VY[f.Lo:f.Hi], f.VY)
			copy(out.VZ[f.Lo:f.Hi], f.VZ)
			if f.M != nil {
				out.M = f.M
			}
		}
		m.Nbody = out
	case "search":
		m.Search = make([][]int64, len(results))
		for i, r := range results {
			m.Search[i] = r.Search
		}
	case "scatter":
		m.Scatter = make([][]float64, len(results))
		for i, r := range results {
			m.Scatter[i] = r.Scatter
		}
	default:
		return nil, fmt.Errorf("dist: unknown app %q", spec.App)
	}
	return m, nil
}
