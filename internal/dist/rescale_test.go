package dist

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppm/internal/apps/cg"
	"ppm/internal/apps/jacobi"
	"ppm/internal/apps/scatter"
	"ppm/internal/core"
	"ppm/internal/partition"
)

// Elastic-rescale recovery: checkpoints written by an N-rank fleet are
// restored onto M < N host processes (each hosting a block of logical
// ranks), and the result must stay bit-identical to an uninterrupted
// N-rank run — the logical mesh never changes, only where ranks live.

// runAppMeshPerRank is runAppMesh with per-rank Options: the rescale
// tests give each rank its own block-hosting checkpoint metadata.
func runAppMeshPerRank(t *testing.T, nodes int, opt func(rank int) core.Options, spec AppSpec) *Merged {
	t.Helper()
	results := make([]NodeResult, nodes)
	runMesh(t, nodes, func(rank int, eng *Engine) error {
		results[rank] = *RunApp(eng, opt(rank), spec)
		return nil
	})
	m, err := Merge(spec, results)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// rescaleSpecs are the three apps the ISSUE's acceptance names, all
// checkpoint-aware, small enough to run three meshes per subtest.
func rescaleSpecs() []AppSpec {
	return []AppSpec{
		{App: "cg", CG: cg.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 6}},
		{App: "jacobi", Jacobi: jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 8}},
		{App: "scatter", Scatter: scatter.Params{N: 400, VPs: 4, Iters: 4, Seed: 7}},
	}
}

// simReference runs spec on the simulator and returns the merged-shape
// reference output plus per-node stats.
func simReference(t *testing.T, nodes int, spec AppSpec) (*Merged, []core.NodeStats) {
	t.Helper()
	want := &Merged{}
	var rep *core.Report
	var err error
	switch spec.App {
	case "cg":
		want.CG, rep, err = cg.RunPPM(distOpt(nodes), spec.CG)
	case "jacobi":
		want.Jacobi, rep, err = jacobi.RunPPM(distOpt(nodes), spec.Jacobi)
	case "scatter":
		want.Scatter, rep, err = scatter.RunPPM(distOpt(nodes), spec.Scatter)
	default:
		t.Fatalf("rescale tests do not know app %q", spec.App)
	}
	if err != nil {
		t.Fatal(err)
	}
	return want, rep.PerNode
}

// sameAppOutput asserts the app payload of got is bit-identical to want.
func sameAppOutput(t *testing.T, spec AppSpec, got, want *Merged) {
	t.Helper()
	switch spec.App {
	case "cg":
		if got.CG.Iters != want.CG.Iters || math.Float64bits(got.CG.Residual) != math.Float64bits(want.CG.Residual) {
			t.Fatalf("cg = (%d, %v), want (%d, %v)", got.CG.Iters, got.CG.Residual, want.CG.Iters, want.CG.Residual)
		}
		sameF64(t, "x", got.CG.X, want.CG.X)
	case "jacobi":
		sameF64(t, "u", got.Jacobi, want.Jacobi)
	case "scatter":
		if len(got.Scatter) != len(want.Scatter) {
			t.Fatalf("scatter: %d VP rows, want %d", len(got.Scatter), len(want.Scatter))
		}
		for i := range want.Scatter {
			sameF64(t, "scatter row", got.Scatter[i], want.Scatter[i])
		}
	}
}

// TestRescaledRestoreBitIdentical is the in-process half of the ISSUE's
// acceptance: a 3-rank checkpointing run, then a restore where 2 host
// processes carry the 3 logical ranks (rank 2 moves onto host 1), must
// reproduce the uninterrupted run bit for bit — outputs and counters —
// for cg, jacobi, and scatter. The Rescale block must record the move
// without entering the equivalence surface.
func TestRescaledRestoreBitIdentical(t *testing.T) {
	const nodes, hostProcs = 3, 2
	hosts := partition.NewBlock(nodes, hostProcs)
	for _, spec := range rescaleSpecs() {
		t.Run(spec.App, func(t *testing.T) {
			want, wantPerNode := simReference(t, nodes, spec)
			dir := t.TempDir()

			m := runAppMesh(t, nodes, ckptOpt(nodes, dir, 2, false), spec)
			sameAppOutput(t, spec, m, want)
			samePerNode(t, m.PerNode, wantPerNode)

			m2 := runAppMeshPerRank(t, nodes, func(rank int) core.Options {
				opt := distOpt(nodes)
				opt.Checkpoint = &core.CheckpointConfig{
					Dir: dir, EveryPhases: 2, Restore: true,
					HostProcs: hostProcs, HostProc: hosts.Owner(rank),
				}
				return opt
			}, spec)
			sameAppOutput(t, spec, m2, want)
			samePerNode(t, m2.PerNode, wantPerNode)

			// The Rescale block is measurement, not result: 3 ranks on 2
			// hosts, one restore each, and ranks whose host index differs
			// from their rank (1 and 2 under a 3-over-2 block partition)
			// counted as moved with their local elements.
			for rank := 0; rank < nodes; rank++ {
				rs := m2.PerNode[rank].Rescale
				if rs.FromProcs != nodes || rs.ToProcs != hostProcs || rs.Restores != 1 {
					t.Errorf("rank %d Rescale = %+v, want From=3 To=2 Restores=1", rank, rs)
				}
				moved := hosts.Owner(rank) != rank
				if moved && (rs.RanksMoved != 1 || rs.ElemsMoved == 0) {
					t.Errorf("rank %d moved hosts but Rescale = %+v", rank, rs)
				}
				if !moved && (rs.RanksMoved != 0 || rs.ElemsMoved != 0) {
					t.Errorf("rank %d stayed put but Rescale = %+v", rank, rs)
				}
			}
		})
	}
}

// rescaleNodeArgs builds the ppm-node argument list for spec at 3 nodes.
func rescaleNodeArgs(t *testing.T, spec AppSpec) []string {
	t.Helper()
	var args []string
	switch spec.App {
	case "cg":
		args = []string{"-app", "cg", "-cores", "2", "-cg-grid", "8x8x8", "-cg-iters", "6"}
	case "jacobi":
		args = []string{"-app", "jacobi", "-cores", "2", "-jacobi-grid", "10x6x4", "-jacobi-sweeps", "8"}
	case "scatter":
		args = []string{"-app", "scatter", "-cores", "2",
			"-scatter-n", "400", "-scatter-vps", "4", "-scatter-iters", "4", "-scatter-seed", "7"}
	default:
		t.Fatalf("rescale tests do not know app %q", spec.App)
	}
	return append(args, detectorArgs...)
}

// TestSubprocessRescaleRecovery is the forked-fleet half: host process 2
// of a 3-process fleet dies permanently (killhost re-arms on every
// attempt), the supervisor exhausts its per-rank restart budget, rescales
// the fleet to 2 host processes, and the job finishes on them — with
// rank 2 restored from its checkpoint onto host 1 — bit-identical to an
// uninterrupted 3-rank run.
func TestSubprocessRescaleRecovery(t *testing.T) {
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	for _, spec := range rescaleSpecs() {
		t.Run(spec.App, func(t *testing.T) {
			want, wantPerNode := simReference(t, 3, spec)

			restarts := 0
			rescaledTo := 0
			results, err := LaunchLocal(LaunchOpts{
				Nodes:           3,
				NodeBin:         nodeBin,
				NodeArgs:        rescaleNodeArgs(t, spec),
				Env:             []string{"PPM_FAULT=killhost=2@phase:3"},
				MaxRestarts:     3,
				PerRankRestarts: 2,
				MinNodes:        2,
				CheckpointDir:   t.TempDir(),
				CheckpointEvery: 2,
				Stderr:          nopWriter{}, // the dying host and its survivors complain on purpose
				OnRestart:       func(int, error) { restarts++ },
				OnRescale:       func(procs int, _ error) { rescaledTo = procs },
			})
			if err != nil {
				t.Fatalf("supervised launch did not recover: %v", err)
			}
			if restarts == 0 {
				t.Fatal("fleet succeeded without restarting — the killhost fault never fired")
			}
			if rescaledTo != 2 {
				t.Fatalf("fleet rescaled to %d host processes, want 2", rescaledTo)
			}
			m, err := Merge(spec, results)
			if err != nil {
				t.Fatal(err)
			}
			sameAppOutput(t, spec, m, want)
			samePerNode(t, m.PerNode, wantPerNode)
		})
	}
}

// TestSubprocessRescaleFloor pins the MinNodes floor: a permanently dead
// host with nowhere left to shrink must surface a clean error naming the
// host and the floor, not loop forever.
func TestSubprocessRescaleFloor(t *testing.T) {
	if nodeBin == "" {
		t.Fatal("ppm-node binary was not built; see TestMain output")
	}
	_, err := LaunchLocal(LaunchOpts{
		Nodes:   2,
		NodeBin: nodeBin,
		NodeArgs: append([]string{"-app", "jacobi", "-cores", "2",
			"-jacobi-grid", "10x6x4", "-jacobi-sweeps", "8"}, detectorArgs...),
		Env:             []string{"PPM_FAULT=killhost=1@phase:3"},
		MaxRestarts:     4,
		PerRankRestarts: 2,
		MinNodes:        2, // the floor equals the fleet size: no rescale possible
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 2,
		Stderr:          nopWriter{},
	})
	if err == nil {
		t.Fatal("launch at the MinNodes floor reported success despite a permanently dead host")
	}
	if !strings.Contains(err.Error(), "permanently dead") || !strings.Contains(err.Error(), "MinNodes") {
		t.Errorf("floor error does not explain itself:\n%v", err)
	}
}

// TestRescaledCheckpointDirSurvivesHostDeath double-checks the file
// layout contract the supervisor relies on: the checkpoint files a dead
// host's ranks wrote are plain per-rank files any process can restore,
// so a rescaled host picks them up with no renaming or migration step.
func TestRescaledCheckpointDirSurvivesHostDeath(t *testing.T) {
	dir := t.TempDir()
	spec := AppSpec{App: "jacobi", Jacobi: jacobi.Params{NX: 10, NY: 6, NZ: 4, Sweeps: 4}}
	runAppMesh(t, 3, ckptOpt(3, dir, 1, false), spec)
	for rank := 0; rank < 3; rank++ {
		if _, err := os.Stat(filepath.Join(dir, ckptName(rank, 4))); err != nil {
			t.Errorf("rank %d final checkpoint missing: %v", rank, err)
		}
	}
}
